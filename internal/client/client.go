// Package client is a small Go client library for tpserverd's
// newline-delimited JSON protocol (internal/server). One Client is one
// session: the server keeps per-connection SET settings, so issue
// `SET strategy = ta` on the client whose queries should use it.
//
// A Client serializes its requests (one in flight at a time), matching
// the protocol's strict request/response ordering. Use one Client per
// goroutine — or rely on the internal mutex, which makes concurrent
// Query calls safe but sequential.
//
// EXPLAIN ANALYZE responses carry the structured per-operator tree in
// Response.Plan (rows, wall time, strategy stage counters and, for a
// query aborted by its timeout, the abort reason) besides the rendered
// text in Response.Message.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"tpjoin/internal/server"
)

// Client is one open session against a tpserverd instance.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder
	nextID uint64
	// broken records a transport failure. The protocol is strictly
	// request/response; once a send, receive or id match fails the stream
	// position is unknowable, so the session is poisoned rather than
	// risking a stale response being read as the answer to a later query.
	broken error
}

// Dial connects to a tpserverd at addr (host:port) with one attempt and
// no timeout. Prefer DialContext for anything beyond a local smoke test.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialContext connects to a tpserverd at addr, retrying failed dial
// attempts with jittered exponential backoff (50ms doubling to a 2s cap)
// until ctx expires. The ctx deadline doubles as the per-attempt connect
// timeout, so a black-holed address cannot outlive the caller's budget.
// With no deadline it retries until the server appears or ctx is
// canceled — the "wait for the server to come up" loop a restart-drain
// window needs.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	backoff := 50 * time.Millisecond
	// One timer reused across attempts: time.After in a retry loop leaks a
	// live timer per iteration until it fires (Reset after a receive needs
	// no drain since Go 1.23).
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return NewClient(conn), nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("client: dial %s: %w (last attempt: %v)", addr, ctx.Err(), err)
		}
		// Full backoff/2 base plus up to backoff/2 of jitter: a fleet of
		// clients re-dialing a restarted server spreads out instead of
		// stampeding in lockstep.
		timer.Reset(backoff/2 + rand.N(backoff/2+1))
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, fmt.Errorf("client: dial %s: %w (last attempt: %v)", addr, ctx.Err(), err)
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// NewClient wraps an established connection (useful for tests and custom
// transports).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

// Close hangs up the session.
func (c *Client) Close() error { return c.conn.Close() }

// Query sends one input line (SQL statement or backslash command) and
// waits for its response. A deadline on ctx bounds the network wait and
// is also forwarded to the server as the per-query execution timeout. A
// response with a non-empty Error is returned as a *ServerError so
// callers can distinguish query failures from transport failures.
// timeoutSlack is how much of the caller's deadline budget is reserved
// for the network round trip: the server is asked to time out this much
// earlier than the connection read deadline, so an execution timeout
// arrives as the server's clean error response instead of racing the
// client's own deadline (which would poison the session).
const timeoutSlack = 50 * time.Millisecond

func (c *Client) Query(ctx context.Context, query string) (*server.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, fmt.Errorf("client: session poisoned by earlier failure: %w", c.broken)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.nextID++
	req := server.Request{ID: c.nextID, Query: query}
	if dl, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(dl); err != nil {
			return nil, err
		}
		defer func() {
			// Once the session is poisoned the connection deadline must
			// stay in place: clearing it would let a later misuse block
			// forever on the dead stream, and a reset failure here must
			// not overwrite the original transport error — annotate the
			// poison instead.
			if c.broken != nil {
				return
			}
			if err := c.conn.SetDeadline(time.Time{}); err != nil {
				c.broken = fmt.Errorf("clearing connection deadline: %w", err)
			}
		}()
		exec := time.Until(dl) - timeoutSlack
		if min := time.Until(dl) / 2; exec < min {
			exec = min
		}
		if ms := exec.Milliseconds(); ms > 0 {
			req.TimeoutMS = ms
		}
	}
	// A cancellation mid-wait unblocks the pending read by expiring the
	// connection deadline; the session is then poisoned (the response is
	// still in flight), which is the only sound outcome on this strictly
	// ordered protocol.
	stop := context.AfterFunc(ctx, func() {
		c.conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	if err := c.enc.Encode(&req); err != nil {
		c.broken = err
		return nil, fmt.Errorf("client: send: %w", err)
	}
	var resp server.Response
	if err := c.dec.Decode(&resp); err != nil {
		c.broken = err
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("client: server closed the session")
		}
		return nil, fmt.Errorf("client: receive: %w", err)
	}
	if resp.ID != req.ID {
		c.broken = fmt.Errorf("response id %d for request %d", resp.ID, req.ID)
		return nil, fmt.Errorf("client: %w", c.broken)
	}
	if resp.Error != "" {
		return &resp, &ServerError{Msg: resp.Error, Usage: resp.Usage, ErrClass: resp.ErrClass}
	}
	return &resp, nil
}

// ServerError is a query-level failure reported by the server (parse
// error, unknown relation, execution timeout, ...). The session remains
// usable after it. Usage marks usage lines and unknown-command notices,
// which the REPL renders verbatim without an "error:" prefix. ErrClass
// carries the server's failure classification (see server.Response);
// "overloaded" means the statement was shed before planning and is safe
// to retry — IsOverloaded checks for it.
type ServerError struct {
	Msg      string
	Usage    bool
	ErrClass string
}

func (e *ServerError) Error() string { return e.Msg }

// IsOverloaded reports whether err is a server admission-control
// rejection: the statement never started executing, so retrying it (with
// backoff) is safe even for non-idempotent statements.
func IsOverloaded(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.ErrClass == server.ErrClassOverloaded
}

// Render writes resp to w exactly as the in-process shell would render
// the same statement.
func Render(w io.Writer, resp *server.Response) { server.RenderResponse(w, resp) }
