package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/client"
	"tpjoin/internal/server"
	"tpjoin/internal/shell"
)

// TestDialContextRetriesUntilServerUp: DialContext must keep redialing
// with backoff while the address refuses connections and succeed as soon
// as a server starts listening — the restart-drain window a deploy
// creates.
func TestDialContextRetriesUntilServerUp(t *testing.T) {
	// Reserve an address, then free it so the first dial attempts are
	// refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cat := catalog.New()
	shell.PreloadFig1a(cat)
	srv := server.New(cat, server.Config{})
	serveDone := make(chan error, 1)
	go func() {
		// The server comes up only after the client has started dialing.
		time.Sleep(100 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			serveDone <- err
			return
		}
		serveDone <- srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	c, err := client.DialContext(ctx, addr)
	if err != nil {
		t.Fatalf("DialContext never reached the late server: %v", err)
	}
	defer c.Close()
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Errorf("connected in %v; the first dials should have been refused", took)
	}
	if resp, err := c.Query(ctx, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"); err != nil || resp.RowCount == 0 {
		t.Fatalf("query on retried connection: rows=%v err=%v", resp, err)
	}
}

// TestDialContextDeadline: a dead address must fail within the context
// deadline, carrying both the context error and the last dial error.
func TestDialContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.DialContext(ctx, addr)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Errorf("DialContext took %v past a 200ms deadline", took)
	}
}

// TestIsOverloaded pins the retryability test to the wire error class.
func TestIsOverloaded(t *testing.T) {
	if !client.IsOverloaded(&client.ServerError{Msg: "x", ErrClass: "overloaded"}) {
		t.Error("overloaded ServerError not detected")
	}
	if client.IsOverloaded(&client.ServerError{Msg: "x", ErrClass: "budget"}) {
		t.Error("budget ServerError misread as overloaded")
	}
	if client.IsOverloaded(errors.New("x")) {
		t.Error("plain error misread as overloaded")
	}
}
