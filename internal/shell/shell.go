// Package shell implements the session logic behind cmd/tpquery and
// cmd/tpserverd: statement dispatch (SELECT / EXPLAIN / SET), backslash
// commands for catalog management, and result rendering. The dispatch and
// execution core (Core) is shared between the interactive REPL and the
// query server so the two surfaces cannot drift; Shell wraps a Core with
// a text renderer for the REPL.
package shell

import (
	"context"
	"fmt"
	"io"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/obs"
	"tpjoin/internal/plan"
)

// Shell is one interactive session: an evaluation core and an output
// sink.
type Shell struct {
	Core *Core
	Out  io.Writer
}

// Catalog returns the session's catalog.
func (sh *Shell) Catalog() *catalog.Catalog { return sh.Core.Catalog }

// Session returns the session's planner settings.
func (sh *Shell) Session() *plan.Session { return sh.Core.Session }

// New returns a shell with the paper's example relations (Fig. 1a)
// preloaded and a process-local metrics collector behind \metrics: the
// REPL sees the same counters, latency histograms and runtime gauges for
// its own statements that tpserverd exposes for its sessions, rendered
// through the identical obs path.
func New(out io.Writer) *Shell {
	cat := catalog.New()
	PreloadFig1a(cat)
	core := NewCore(cat)
	core.Metrics = obs.NewMetrics()
	// A process-local plan cache: the REPL gets the same PREPARE/EXECUTE
	// fast path (and the same tpserverd_plan_cache_* families in \metrics)
	// as a server session.
	core.PlanCache = plan.NewCache(plan.DefaultCacheSize)
	core.Metrics.SetPlanCache(core.PlanCache.Stats)
	return &Shell{Core: core, Out: out}
}

// Execute runs one input line (SQL statement or backslash command) and
// reports whether the session should terminate.
func (sh *Shell) Execute(line string) (quit bool) {
	start := time.Now()
	res, err := sh.Core.Eval(context.Background(), line)
	sh.observe(res, err, time.Since(start))
	if err != nil {
		if IsUsageError(err) {
			fmt.Fprintln(sh.Out, err.Error())
		} else {
			fmt.Fprintln(sh.Out, "error:", err)
		}
		return false
	}
	if res.Kind == KindQuit {
		return true
	}
	RenderResult(sh.Out, res)
	return false
}

// observe folds one evaluated line into the REPL's local metrics
// collector, with the same attribution rules (obs.QueryOutcome) the
// server applies to its sessions.
func (sh *Shell) observe(res Result, err error, elapsed time.Duration) {
	m := sh.Core.Metrics
	if m == nil {
		return
	}
	_, auto, planned := sh.Core.Session.PlannedJoin()
	o := obs.QueryOutcome{
		Strategy: obs.EffectiveStrategy(sh.Core.Session),
		AutoPick: planned && auto,
		RowsKind: res.Kind == KindRows,
		Elapsed:  elapsed,
		Err:      err,
		Plan:     res.Plan,
	}
	if o.RowsKind {
		o.Rows = res.Rel.Len()
	}
	m.ObserveQuery(o)
}

const helpText = `statements:
  SELECT ... FROM r TP [LEFT|RIGHT|FULL|ANTI|INNER] JOIN s ON ...
         [WHERE ...] [ORDER BY ...] [LIMIT n]
  SELECT ... FROM r TP UNION|INTERSECT|EXCEPT s
  CREATE TABLE name AS SELECT ...
  PREPARE name AS SELECT ...    parse and pin a statement for repeated
                                execution; ? or $1 placeholders may stand
                                for WHERE literals, bound per EXECUTE
  EXECUTE name [(v, ...)]       run a prepared statement with the values
                                bound; planning (stats, strategy pick) is
                                served from the shared plan cache until a
                                referenced relation changes
  DEALLOCATE name               discard a prepared statement
  EXPLAIN SELECT ...            show the operator tree and join strategy
  EXPLAIN [ANALYZE] EXECUTE name [(v, ...)]
                                like EXPLAIN SELECT, plus a first line
                                "plan: cached|fresh" reporting whether the
                                plan cache supplied the plan
  EXPLAIN ANALYZE SELECT ...    execute and show per-operator rows, wall
                                time and strategy stage counters; a query
                                aborted by its timeout reports the abort
                                reason per node
  SET strategy = auto|nj|ta|pnj|pta
                                auto (the default) picks the cheapest
                                strategy per join from catalog statistics;
                                nj/ta force a sequential pipeline, pnj/pta
                                their partitioned-parallel executors.
                                EXPLAIN shows the choice, per-strategy
                                cost estimates and the input stats used
  SET ta_nested_loop = on|off
  SET join_workers = <n>        PNJ/PTA workers (0 = one per CPU)
  SET calibration = '<file>'|default
                                load a cost-model calibration emitted by
                                tpbench -calibrate (default: the
                                checked-in measured constants)
  SET memory_budget = <bytes>|off|default
                                per-query memory budget (kb/mb/gb
                                suffixes ok); an over-budget query aborts
                                with error class "budget". default =
                                the server's -memory-budget
commands:
  \d                      list relations
  \prepared               list this session's prepared statements
  \stats <name>           relation statistics (tuples, per-column distinct
                          values and group sizes, temporal span/overlap) —
                          what the auto strategy picker uses
  \load <name> <file>     load CSV (base relations)
  \save <name> <file>     save CSV
  \loadb <name> <file>    load binary .tpr (derived relations, full lineage)
  \saveb <name> <file>    save binary .tpr
  \gen webkit|meteo <n>   generate synthetic workload
  \drop <name>            remove a relation
  \metrics                Prometheus-style counters, per-strategy latency
                          histograms and runtime gauges — the REPL shows
                          its own statements, tpserverd its sessions; the
                          server also serves the same text on HTTP
                          GET /metrics (-http)
  \q                      quit
`
