// Package shell implements the interactive session logic behind
// cmd/tpquery: statement dispatch (SELECT / EXPLAIN / SET), backslash
// commands for catalog management, and result rendering. It is separated
// from the command so the whole REPL surface is unit-testable.
package shell

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"tpjoin/internal/catalog"
	"tpjoin/internal/dataset"
	"tpjoin/internal/engine"
	"tpjoin/internal/interval"
	"tpjoin/internal/plan"
	"tpjoin/internal/sql"
	"tpjoin/internal/tp"
)

// Shell is one interactive session: a catalog, session settings and an
// output sink.
type Shell struct {
	Catalog *catalog.Catalog
	Session *plan.Session
	Out     io.Writer
}

// New returns a shell with the paper's example relations (Fig. 1a)
// preloaded.
func New(out io.Writer) *Shell {
	sh := &Shell{Catalog: catalog.New(), Session: &plan.Session{}, Out: out}
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	// The demo relations always satisfy the constraint; ignore error.
	_ = sh.Catalog.Register(a)
	_ = sh.Catalog.Register(b)
	return sh
}

// Execute runs one input line (SQL statement or backslash command) and
// reports whether the session should terminate.
func (sh *Shell) Execute(line string) (quit bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return false
	}
	if strings.HasPrefix(line, `\`) {
		return sh.command(line)
	}
	sh.statement(line)
	return false
}

func (sh *Shell) command(line string) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\q`, `\quit`:
		return true
	case `\d`:
		for _, n := range sh.Catalog.Names() {
			rel, err := sh.Catalog.Lookup(n)
			if err != nil {
				continue
			}
			fmt.Fprintf(sh.Out, "  %s(%s) — %d tuples\n", n, strings.Join(rel.Attrs, ", "), rel.Len())
		}
	case `\load`:
		if len(fields) != 3 {
			fmt.Fprintln(sh.Out, `usage: \load <name> <file.csv>`)
			return false
		}
		rel, err := catalog.LoadCSV(fields[2], fields[1])
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		if err := sh.Catalog.Register(rel); err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		fmt.Fprintf(sh.Out, "loaded %s: %d tuples\n", fields[1], rel.Len())
	case `\save`:
		if len(fields) != 3 {
			fmt.Fprintln(sh.Out, `usage: \save <name> <file.csv>`)
			return false
		}
		rel, err := sh.Catalog.Lookup(fields[1])
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		if err := catalog.SaveCSV(fields[2], rel); err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		fmt.Fprintf(sh.Out, "saved %s to %s\n", fields[1], fields[2])
	case `\saveb`:
		// Binary format: round-trips derived relations with full lineage.
		if len(fields) != 3 {
			fmt.Fprintln(sh.Out, `usage: \saveb <name> <file.tpr>`)
			return false
		}
		rel, err := sh.Catalog.Lookup(fields[1])
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		if err := catalog.SaveBinary(fields[2], rel); err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		fmt.Fprintf(sh.Out, "saved %s to %s (binary)\n", fields[1], fields[2])
	case `\loadb`:
		if len(fields) != 3 {
			fmt.Fprintln(sh.Out, `usage: \loadb <name> <file.tpr>`)
			return false
		}
		rel, err := catalog.LoadBinary(fields[2])
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		rel.Name = fields[1]
		if err := sh.Catalog.Register(rel); err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return false
		}
		fmt.Fprintf(sh.Out, "loaded %s: %d tuples\n", fields[1], rel.Len())
	case `\gen`:
		if len(fields) != 3 {
			fmt.Fprintln(sh.Out, `usage: \gen webkit|meteo <n>`)
			return false
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			fmt.Fprintln(sh.Out, "error: bad size", fields[2])
			return false
		}
		var r, s *tp.Relation
		switch fields[1] {
		case "webkit":
			r, s = dataset.Webkit(n, 1)
		case "meteo":
			r, s = dataset.Meteo(n, 1)
		default:
			fmt.Fprintln(sh.Out, "error: unknown workload", fields[1])
			return false
		}
		_ = sh.Catalog.Register(r)
		_ = sh.Catalog.Register(s)
		fmt.Fprintf(sh.Out, "generated r (%d tuples) and s (%d tuples); join on r.Key = s.Key\n",
			r.Len(), s.Len())
	case `\drop`:
		if len(fields) != 2 {
			fmt.Fprintln(sh.Out, `usage: \drop <name>`)
			return false
		}
		if sh.Catalog.Drop(fields[1]) {
			fmt.Fprintf(sh.Out, "dropped %s\n", fields[1])
		} else {
			fmt.Fprintf(sh.Out, "error: no relation %s\n", fields[1])
		}
	case `\help`, `\?`:
		fmt.Fprint(sh.Out, helpText)
	default:
		fmt.Fprintln(sh.Out, "unknown command", fields[0], `(try \help)`)
	}
	return false
}

const helpText = `statements:
  SELECT ... FROM r TP [LEFT|RIGHT|FULL|ANTI|INNER] JOIN s ON ...
         [WHERE ...] [ORDER BY ...] [LIMIT n]
  SELECT ... FROM r TP UNION|INTERSECT|EXCEPT s
  CREATE TABLE name AS SELECT ...
  EXPLAIN [ANALYZE] SELECT ...
  SET strategy = nj|ta
  SET ta_nested_loop = on|off
commands:
  \d                      list relations
  \load <name> <file>     load CSV (base relations)
  \save <name> <file>     save CSV
  \loadb <name> <file>    load binary .tpr (derived relations, full lineage)
  \saveb <name> <file>    save binary .tpr
  \gen webkit|meteo <n>   generate synthetic workload
  \drop <name>            remove a relation
  \q                      quit
`

func (sh *Shell) statement(line string) {
	st, err := sql.Parse(line)
	if err != nil {
		fmt.Fprintln(sh.Out, "error:", err)
		return
	}
	switch s := st.(type) {
	case *sql.Set:
		if err := sh.Session.ApplySet(s); err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
		} else {
			fmt.Fprintln(sh.Out, "ok")
		}
	case *sql.Explain:
		out, err := plan.Explain(s.Query, sh.Catalog, sh.Session, s.Analyze)
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return
		}
		fmt.Fprint(sh.Out, out)
	case *sql.CreateTableAs:
		op, err := plan.Build(s.Query, sh.Catalog, sh.Session)
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return
		}
		rel, err := engine.Run(op, s.Name)
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return
		}
		if err := sh.Catalog.Register(rel); err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return
		}
		fmt.Fprintf(sh.Out, "created %s: %d tuples\n", s.Name, rel.Len())
	case *sql.Select:
		op, err := plan.Build(s, sh.Catalog, sh.Session)
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return
		}
		rel, err := engine.Run(op, "result")
		if err != nil {
			fmt.Fprintln(sh.Out, "error:", err)
			return
		}
		sh.printResult(rel)
	}
}

func (sh *Shell) printResult(rel *tp.Relation) {
	fmt.Fprintf(sh.Out, "%s | λ | T | p\n", strings.Join(rel.Attrs, " | "))
	for _, t := range rel.Tuples {
		parts := make([]string, len(t.Fact))
		for i, v := range t.Fact {
			parts[i] = v.String()
		}
		fmt.Fprintf(sh.Out, "%s | %s | %s | %.4g\n", strings.Join(parts, " | "), t.Lineage, t.T, t.Prob)
	}
	fmt.Fprintf(sh.Out, "(%d rows)\n", rel.Len())
}
