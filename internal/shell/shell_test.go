package shell

import (
	"bytes"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func run(t *testing.T, sh *Shell, line string) string {
	t.Helper()
	buf := sh.Out.(*bytes.Buffer)
	buf.Reset()
	if quit := sh.Execute(line); quit {
		t.Fatalf("unexpected quit on %q", line)
	}
	return buf.String()
}

func newShell() *Shell { return New(&bytes.Buffer{}) }

func TestPreloadedExample(t *testing.T) {
	sh := newShell()
	out := run(t, sh, `\d`)
	if !strings.Contains(out, "a(Name, Loc) — 2 tuples") ||
		!strings.Contains(out, "b(Hotel, Loc) — 3 tuples") {
		t.Errorf("\\d output wrong:\n%s", out)
	}
}

func TestSelectFig1b(t *testing.T) {
	sh := newShell()
	out := run(t, sh, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "(7 rows)") {
		t.Errorf("expected 7 rows:\n%s", out)
	}
	if !strings.Contains(out, "a1 ∧ ¬(b3 ∨ b2)") || !strings.Contains(out, "0.084") {
		t.Errorf("missing the negated lineage row:\n%s", out)
	}
}

func TestSetAndExplain(t *testing.T) {
	sh := newShell()
	if out := run(t, sh, "SET strategy = ta"); !strings.Contains(out, "ok") {
		t.Errorf("SET failed: %s", out)
	}
	out := run(t, sh, "EXPLAIN SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "strategy=TA") {
		t.Errorf("strategy must show in EXPLAIN:\n%s", out)
	}
	out = run(t, sh, "EXPLAIN ANALYZE SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "rows=") {
		t.Errorf("ANALYZE must show rows:\n%s", out)
	}
}

func TestSetPNJAndWorkers(t *testing.T) {
	sh := newShell()
	if out := run(t, sh, "SET strategy = pnj"); !strings.Contains(out, "ok") {
		t.Errorf("SET strategy=pnj failed: %s", out)
	}
	if out := run(t, sh, "SET join_workers = 2"); !strings.Contains(out, "ok") {
		t.Errorf("SET join_workers failed: %s", out)
	}
	out := run(t, sh, "EXPLAIN SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "strategy=PNJ workers=2") {
		t.Errorf("PNJ must show in EXPLAIN:\n%s", out)
	}
	out = run(t, sh, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "(7 rows)") {
		t.Errorf("PNJ Fig. 1b query must return 7 rows:\n%s", out)
	}
}

func TestSetPTA(t *testing.T) {
	sh := newShell()
	if out := run(t, sh, "SET strategy = pta"); !strings.Contains(out, "ok") {
		t.Errorf("SET strategy=pta failed: %s", out)
	}
	if out := run(t, sh, "SET join_workers = 2"); !strings.Contains(out, "ok") {
		t.Errorf("SET join_workers failed: %s", out)
	}
	out := run(t, sh, "EXPLAIN SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "strategy=PTA workers=2") {
		t.Errorf("PTA must show in EXPLAIN:\n%s", out)
	}
	// PTA fragments time exactly like the sequential baseline (TA); only
	// the row order may differ (partition-major vs global union order).
	got := strings.Split(run(t, sh, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"), "\n")
	ta := newShell()
	run(t, ta, "SET strategy = ta")
	want := strings.Split(run(t, ta, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"), "\n")
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("PTA result differs from TA:\nPTA:\n%s\nTA:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	out = run(t, sh, "EXPLAIN ANALYZE SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	for _, want := range []string{"stage workers:", "stage partitions:", "stage align-passes:", "stage fragments:"} {
		if !strings.Contains(out, want) {
			t.Errorf("PTA ANALYZE missing %q:\n%s", want, out)
		}
	}
}

func TestErrorsAreReportedNotFatal(t *testing.T) {
	sh := newShell()
	for _, line := range []string{
		"SELECT * FROM missing",
		"SELEC nonsense",
		"SET bogus = 1",
		`\load too few`,
		`\load x /nonexistent/file.csv`,
		`\save missing /tmp/x.csv`,
		`\gen bogus 100`,
		`\gen webkit notanumber`,
		`\nosuchcmd`,
	} {
		out := run(t, sh, line)
		if !strings.Contains(out, "error") && !strings.Contains(out, "usage") &&
			!strings.Contains(out, "unknown") {
			t.Errorf("line %q should report an error, got: %s", line, out)
		}
	}
}

func TestQuit(t *testing.T) {
	sh := newShell()
	if !sh.Execute(`\q`) || !sh.Execute(`\quit`) {
		t.Errorf("\\q must quit")
	}
	if sh.Execute("") || sh.Execute("   ") {
		t.Errorf("blank lines must not quit")
	}
}

func TestGenAndQuery(t *testing.T) {
	sh := newShell()
	out := run(t, sh, `\gen webkit 400`)
	if !strings.Contains(out, "generated r") {
		t.Fatalf("gen failed: %s", out)
	}
	out = run(t, sh, "SELECT * FROM r TP ANTI JOIN s ON r.Key = s.Key LIMIT 3")
	if !strings.Contains(out, "(3 rows)") {
		t.Errorf("query over generated data failed:\n%s", out)
	}
}

func TestSaveLoadDrop(t *testing.T) {
	sh := newShell()
	path := filepath.Join(t.TempDir(), "a.csv")
	out := run(t, sh, `\save a `+path)
	if !strings.Contains(out, "saved a") {
		t.Fatalf("save failed: %s", out)
	}
	out = run(t, sh, `\load acopy `+path)
	if !strings.Contains(out, "loaded acopy: 2 tuples") {
		t.Fatalf("load failed: %s", out)
	}
	out = run(t, sh, "SELECT * FROM acopy")
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("loaded relation not queryable:\n%s", out)
	}
	out = run(t, sh, `\drop acopy`)
	if !strings.Contains(out, "dropped acopy") {
		t.Errorf("drop failed: %s", out)
	}
	out = run(t, sh, `\drop acopy`)
	if !strings.Contains(out, "error") {
		t.Errorf("double drop must error: %s", out)
	}
}

func TestHelp(t *testing.T) {
	sh := newShell()
	out := run(t, sh, `\help`)
	for _, want := range []string{"TP", "ANTI", "strategy", `\gen`} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

func TestProbabilityFilterEndToEnd(t *testing.T) {
	sh := newShell()
	out := run(t, sh, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE P >= 0.4")
	if !strings.Contains(out, "(4 rows)") {
		t.Errorf("probability filter via shell wrong:\n%s", out)
	}
}

func TestBinarySaveLoad(t *testing.T) {
	sh := newShell()
	// Materialize a derived relation, persist it in the binary format and
	// reload it — the workflow CSV cannot support (lineage loss).
	out := run(t, sh, "CREATE TABLE q AS SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "created q: 7 tuples") {
		t.Fatalf("CREATE TABLE AS failed: %s", out)
	}
	path := filepath.Join(t.TempDir(), "b.tpr")
	out = run(t, sh, `\saveb q `+path)
	if !strings.Contains(out, "saved q") {
		t.Fatalf("saveb failed: %s", out)
	}
	out = run(t, sh, `\loadb qcopy `+path)
	if !strings.Contains(out, "loaded qcopy: 7 tuples") {
		t.Fatalf("loadb failed: %s", out)
	}
	out = run(t, sh, "SELECT * FROM qcopy ORDER BY P DESC LIMIT 1")
	if !strings.Contains(out, "Jim") {
		t.Errorf("reloaded binary relation not queryable:\n%s", out)
	}
	// The reloaded derived relation keeps its composite lineages.
	out = run(t, sh, "SELECT * FROM qcopy WHERE Hotel IS NULL AND Tstart >= 5 LIMIT 1")
	if !strings.Contains(out, "¬") {
		t.Errorf("lineage lost in binary round trip:\n%s", out)
	}
	// Usage errors.
	if out := run(t, sh, `\saveb onlyone`); !strings.Contains(out, "usage") {
		t.Errorf("saveb usage: %s", out)
	}
	if out := run(t, sh, `\loadb x /nonexistent.tpr`); !strings.Contains(out, "error") {
		t.Errorf("loadb missing file: %s", out)
	}
}

func TestOrderByInShell(t *testing.T) {
	sh := newShell()
	out := run(t, sh, "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc ORDER BY P DESC LIMIT 1")
	if !strings.Contains(out, "Jim") {
		t.Errorf("most probable anti-join row must be Jim (0.8):\n%s", out)
	}
}

func TestStatsBuiltin(t *testing.T) {
	sh := newShell()
	out := run(t, sh, `\stats b`)
	for _, want := range []string{
		"b: 3 tuples, 2 columns",
		"Hotel: 3 distinct, 0 null, group mean 1.0 max 1",
		"Loc: 2 distinct, 0 null, group mean 1.5 max 2",
		"time: span [1,8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("\\stats missing %q:\n%s", want, out)
		}
	}
	if out := run(t, sh, `\stats`); !strings.Contains(out, "usage") {
		t.Errorf("\\stats without a name must print usage: %s", out)
	}
	if out := run(t, sh, `\stats nope`); !strings.Contains(out, "error") {
		t.Errorf("\\stats on a missing relation must error: %s", out)
	}
}

// TestQueryPanicBecomesError pins the REPL's panic containment, mirroring
// the server's: an engine panic (here tp.MergeProbs' conflicting
// base-event probabilities, the state a stale CREATE TABLE AS snapshot
// joined against a regenerated workload produces) becomes that query's
// error instead of killing the whole shell.
func TestQueryPanicBecomesError(t *testing.T) {
	sh := newShell()
	x := tp.NewRelation("x", "K")
	x.Append(tp.Strings("k"), interval.New(0, 5), 0.5)
	// y claims a different probability for x's base event x1: build it
	// under the name "x" (so Append assigns the same lineage variable)
	// and rename before registration.
	y := tp.NewRelation("x", "K")
	y.Append(tp.Strings("k"), interval.New(0, 5), 0.7)
	y.Name = "y"
	if err := sh.Catalog().Register(x); err != nil {
		t.Fatal(err)
	}
	if err := sh.Catalog().Register(y); err != nil {
		t.Fatal(err)
	}
	out := run(t, sh, "SELECT * FROM x TP JOIN y ON x.K = y.K")
	if !strings.Contains(out, "error: query panic:") ||
		!strings.Contains(out, "conflicting probabilities") {
		t.Errorf("panic must surface as a query error:\n%s", out)
	}
	// The session survives and keeps working.
	out = run(t, sh, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if !strings.Contains(out, "(7 rows)") {
		t.Errorf("shell did not survive the panic:\n%s", out)
	}
}
