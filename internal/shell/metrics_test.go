package shell

import (
	"context"
	"strings"
	"testing"

	"tpjoin/internal/catalog"
	"tpjoin/internal/obs"
)

// TestMetricsBuiltin covers the REPL surface of \metrics: the shell owns
// a process-local collector fed by the same accounting rules as the
// server, rendered through the identical obs path.
func TestMetricsBuiltin(t *testing.T) {
	sh := newShell()
	run(t, sh, "SET strategy = ta")
	run(t, sh, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	run(t, sh, "EXPLAIN ANALYZE SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
	out := run(t, sh, `\metrics`)
	if err := obs.ValidateExposition(out); err != nil {
		t.Fatalf("\\metrics exposition not well-formed: %v\n%s", err, out)
	}
	for _, want := range []string{
		// SET + SELECT + EXPLAIN ANALYZE evaluated before this scrape (the
		// \metrics line itself is counted only after it rendered).
		"tpserverd_queries_served_total 3",
		`tpserverd_strategy_queries_total{strategy="TA"} 1`,
		`tpserverd_query_seconds_bucket{strategy="TA",le="+Inf"} 1`,
		"tpserverd_rows_returned_total 9",
		`tpserverd_analyze_nodes_total{op="TPJoin"} 1`,
		"tpserverd_uptime_seconds ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("\\metrics missing %q:\n%s", want, out)
		}
	}
	// Failed statements count as served and as errors.
	run(t, sh, "SELECT * FROM nope TP LEFT JOIN b ON nope.Loc = b.Loc")
	out = run(t, sh, `\metrics`)
	if !strings.Contains(out, "tpserverd_query_errors_total 1") {
		t.Errorf("failed statement not counted:\n%s", out)
	}
}

// TestMetricsUnavailableWithoutCollector pins the bare-Core behavior: a
// surface that did not attach a collector (e.g. a server session, where
// the server intercepts \metrics itself) reports a usage error instead
// of panicking.
func TestMetricsUnavailableWithoutCollector(t *testing.T) {
	core := NewCore(catalog.New())
	_, err := core.Eval(context.Background(), `\metrics`)
	if err == nil || !IsUsageError(err) {
		t.Fatalf("bare core \\metrics: err = %v, want usage error", err)
	}
}
