package shell

import (
	"context"
	"strings"
	"testing"
)

func TestPrepareExecuteDeallocate(t *testing.T) {
	sh := newShell()
	out := run(t, sh, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc WHERE a.Loc = ?")
	if !strings.Contains(out, "prepared q (1 parameter(s))") {
		t.Fatalf("PREPARE output wrong:\n%s", out)
	}
	ref := run(t, sh, "SELECT * FROM a TP JOIN b ON a.Loc = b.Loc WHERE a.Loc = 'ZAK'")
	got := run(t, sh, "EXECUTE q ('ZAK')")
	if got != ref {
		t.Errorf("EXECUTE output differs from the inline SELECT:\n  inline  %q\n  execute %q", ref, got)
	}
	if out := run(t, sh, "EXECUTE q ('ZAK')"); out != ref {
		t.Errorf("repeated (cache-hot) EXECUTE output differs:\n%s", out)
	}
	if out := run(t, sh, "DEALLOCATE q"); !strings.Contains(out, "deallocated") {
		t.Errorf("DEALLOCATE output wrong:\n%s", out)
	}
	if out := run(t, sh, "EXECUTE q ('ZAK')"); !strings.Contains(out, "no prepared statement") {
		t.Errorf("EXECUTE after DEALLOCATE must fail:\n%s", out)
	}
}

func TestPrepareErrorsAreReportedNotFatal(t *testing.T) {
	sh := newShell()
	run(t, sh, "PREPARE q AS SELECT * FROM a WHERE Loc = $1")
	for line, want := range map[string]string{
		"PREPARE q AS SELECT * FROM b":  "already exists",
		"EXECUTE q":                     "wants 1 parameter(s), got 0",
		"EXECUTE nope ('x')":            "no prepared statement",
		"DEALLOCATE nope":               "no prepared statement",
		"SELECT * FROM a WHERE Loc = ?": "PREPARE",
	} {
		if out := run(t, sh, line); !strings.Contains(out, want) {
			t.Errorf("%s: output %q lacks %q", line, out, want)
		}
	}
	// The session survives every one of those; the statement still runs.
	if out := run(t, sh, "EXECUTE q ('ZAK')"); !strings.Contains(out, "(1 row") {
		t.Errorf("EXECUTE q after errors:\n%s", out)
	}
}

func TestPreparedBuiltinLists(t *testing.T) {
	sh := newShell()
	if out := run(t, sh, `\prepared`); !strings.Contains(out, "(none)") {
		t.Errorf("empty \\prepared:\n%s", out)
	}
	run(t, sh, "PREPARE beta AS SELECT * FROM b")
	run(t, sh, "PREPARE alpha AS SELECT * FROM a WHERE Loc = $1")
	out := run(t, sh, `\prepared`)
	ai, bi := strings.Index(out, "alpha"), strings.Index(out, "beta")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("\\prepared must list both, sorted:\n%s", out)
	}
	if !strings.Contains(out, "alpha (1 parameter(s))") {
		t.Errorf("\\prepared must show the parameter count:\n%s", out)
	}
}

func TestExplainExecuteReportsPlanSource(t *testing.T) {
	sh := newShell()
	run(t, sh, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc")
	out := run(t, sh, "EXPLAIN EXECUTE q")
	if !strings.Contains(out, "plan: fresh") {
		t.Errorf("first EXPLAIN EXECUTE must plan fresh:\n%s", out)
	}
	out = run(t, sh, "EXPLAIN EXECUTE q")
	if !strings.Contains(out, "plan: cached") {
		t.Errorf("second EXPLAIN EXECUTE must report the cache hit:\n%s", out)
	}
	out = run(t, sh, "EXPLAIN ANALYZE EXECUTE q")
	if !strings.Contains(out, "plan: cached") || !strings.Contains(out, "rows=") {
		t.Errorf("EXPLAIN ANALYZE EXECUTE must run and report the source:\n%s", out)
	}
	// Plain EXPLAIN SELECT carries no plan-source line: the cache serves
	// only the EXECUTE path.
	out = run(t, sh, "EXPLAIN SELECT * FROM a TP JOIN b ON a.Loc = b.Loc")
	if strings.Contains(out, "plan:") {
		t.Errorf("EXPLAIN SELECT must not claim a plan source:\n%s", out)
	}
}

// TestPlanCacheMetricsInREPL: the REPL's process-local collector exposes
// the same tpserverd_plan_cache_* families the server does.
func TestPlanCacheMetricsInREPL(t *testing.T) {
	sh := newShell()
	run(t, sh, "PREPARE q AS SELECT * FROM a")
	run(t, sh, "EXECUTE q")
	run(t, sh, "EXECUTE q")
	out := run(t, sh, `\metrics`)
	if !strings.Contains(out, "tpserverd_plan_cache_hits_total 1") ||
		!strings.Contains(out, "tpserverd_plan_cache_misses_total 1") {
		t.Errorf("\\metrics must carry the plan-cache counters:\n%s", out)
	}
}

// TestCatalogMutationForcesReplanViaShell pins the acceptance criterion
// end to end at the dialect level: a catalog mutation between two
// EXECUTEs forces a re-plan (the second EXECUTE misses).
func TestCatalogMutationForcesReplanViaShell(t *testing.T) {
	sh := newShell()
	core := sh.Core
	run(t, sh, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc")
	res, err := core.Eval(context.Background(), "EXECUTE q")
	if err != nil || res.PlanCache != "miss" {
		t.Fatalf("first EXECUTE: plan_cache=%q err=%v, want miss", res.PlanCache, err)
	}
	res, err = core.Eval(context.Background(), "EXECUTE q")
	if err != nil || res.PlanCache != "hit" {
		t.Fatalf("second EXECUTE: plan_cache=%q err=%v, want hit", res.PlanCache, err)
	}
	// CREATE TABLE ... AS over b's name replaces the relation wholesale.
	run(t, sh, "CREATE TABLE b AS SELECT * FROM b WHERE Loc = 'ZAK'")
	res, err = core.Eval(context.Background(), "EXECUTE q")
	if err != nil || res.PlanCache != "miss" {
		t.Fatalf("EXECUTE after catalog mutation: plan_cache=%q err=%v, want miss (re-plan)", res.PlanCache, err)
	}
	if st := core.PlanCache.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}
