package shell

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tpjoin/internal/catalog"
	"tpjoin/internal/dataset"
	"tpjoin/internal/engine"
	"tpjoin/internal/interval"
	"tpjoin/internal/mem"
	"tpjoin/internal/obs"
	"tpjoin/internal/plan"
	"tpjoin/internal/sql"
	"tpjoin/internal/tp"
)

// ResultKind classifies what a statement produced.
type ResultKind int

const (
	// KindNone: blank input, nothing to render.
	KindNone ResultKind = iota
	// KindQuit: the session asked to terminate (\q).
	KindQuit
	// KindMessage: Text carries a status message or listing.
	KindMessage
	// KindRows: Rel carries a result relation.
	KindRows
	// KindExplain: Text carries an EXPLAIN plan rendering.
	KindExplain
)

// Result is the structured outcome of evaluating one input line. The REPL
// renders it as text; the server encodes it on the wire.
type Result struct {
	Kind ResultKind
	Text string
	Rel  *tp.Relation
	// Plan carries the structured EXPLAIN [ANALYZE] tree when Kind is
	// KindExplain: per-operator rows, wall time and stage counters under
	// ANALYZE. Text is its canonical rendering; the server additionally
	// puts Plan on the wire as structured fields.
	Plan *plan.Tree
	// PlanCache reports how an EXECUTE (or EXPLAIN EXECUTE) got its plan:
	// "hit" (the shared plan cache skipped stats profiling and the
	// cost-model pick) or "miss" (planned fresh, entry published). Empty
	// for every other statement. The server forwards it on the wire;
	// tpcli -v prints it.
	PlanCache string
}

// Core is the statement dispatch/execution engine shared by the
// interactive REPL (cmd/tpquery) and the query server (cmd/tpserverd):
// one session's settings bound to a (possibly shared) catalog. Core
// itself is not safe for concurrent use — each session owns one Core —
// but distinct Cores may share a catalog, which is concurrency-safe.
type Core struct {
	Catalog *catalog.Catalog
	Session *plan.Session
	// Metrics, when non-nil, backs the \metrics builtin on this surface:
	// the REPL wires a process-local collector here (Shell.Execute records
	// every statement into it), while server sessions leave it nil — the
	// server intercepts \metrics itself and renders its shared collector
	// through the same obs Render path.
	Metrics *obs.Metrics
	// PlanCache, when non-nil, memoizes EXECUTE planning (stats profiling
	// and the cost-model strategy pick) across statements — and, on the
	// server, across sessions: tpserverd attaches its server-wide cache to
	// every session Core, the REPL a process-local one. Nil disables
	// caching; EXECUTE then plans fresh each time.
	PlanCache *plan.Cache
	// prepared is the session's PREPARE'd statements by name. Names are
	// session-local (like PostgreSQL's); the planning work behind them is
	// shared through PlanCache.
	prepared map[string]*plan.Prepared
}

// NewCore returns a session core over cat with default settings.
func NewCore(cat *catalog.Catalog) *Core {
	return &Core{Catalog: cat, Session: &plan.Session{}, prepared: make(map[string]*plan.Prepared)}
}

// PreloadFig1a registers the paper's running-example relations a and b
// (Fig. 1a) into cat.
func PreloadFig1a(cat *catalog.Catalog) {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	// The demo relations always satisfy the constraint; ignore error.
	_ = cat.Register(a)
	_ = cat.Register(b)
}

// Eval executes one input line (SQL statement or backslash command) under
// ctx and returns a structured result. Errors are returned, never
// rendered; cancellation or deadline expiry during query execution
// surfaces as ctx.Err().
//
// Eval contains panics: the engine panics on some invalid cross-relation
// states — e.g. joining a stale CREATE TABLE AS snapshot against a
// regenerated workload with conflicting base-event probabilities
// (tp.MergeProbs), or evaluating a derived lineage whose base events were
// dropped (prob.Evaluator). Those are per-query data problems, not
// session corruption, so every surface (the interactive REPL exactly like
// the server) converts them into that query's error and lives on.
func (c *Core) Eval(ctx context.Context, line string) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = Result{}, panicError{v: r}
		}
	}()
	// Clear the session's planned-join record before dispatch: inputs
	// that never reach plan.Build (SET, backslash commands, parse
	// errors) must not leak the previous statement's strategy pick into
	// per-query accounting.
	c.Session.ResetPlanned()
	line = strings.TrimSpace(line)
	if line == "" {
		return Result{Kind: KindNone}, nil
	}
	if strings.HasPrefix(line, `\`) {
		return c.command(line)
	}
	// Attach the session's memory budget unless the surface already did
	// (the server threads its own gauge, folding in the -memory-budget
	// default; the REPL relies on this attach).
	if b := c.Session.EffectiveMemBudget(0); b > 0 && mem.FromContext(ctx) == nil {
		ctx = mem.WithGauge(ctx, mem.NewGauge(b))
	}
	return c.statement(ctx, line)
}

// panicError wraps a recovered query panic; see Core.Eval and
// IsPanicError.
type panicError struct{ v any }

func (e panicError) Error() string { return fmt.Sprintf("query panic: %v", e.v) }

// IsPanicError reports whether err is a query panic converted by
// Core.Eval's containment. The server logs these — a panic is a data
// problem worth an operator's attention even though the session
// survives it.
func IsPanicError(err error) bool {
	var p panicError
	return errors.As(err, &p)
}

// usageError marks errors whose text is a usage line (or unknown-command
// notice) that the REPL prints verbatim, without the "error:" prefix.
type usageError string

func (e usageError) Error() string { return string(e) }

func usagef(format string, args ...any) error {
	return usageError(fmt.Sprintf(format, args...))
}

// IsUsageError reports whether err is a usage line or unknown-command
// notice, which every surface renders verbatim rather than with an
// "error:" prefix. The server forwards this distinction on the wire so
// remote rendering stays byte-identical to the REPL.
func IsUsageError(err error) bool {
	var u usageError
	return errors.As(err, &u)
}

func (c *Core) command(line string) (Result, error) {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\q`, `\quit`:
		return Result{Kind: KindQuit}, nil
	case `\d`:
		var b strings.Builder
		for _, n := range c.Catalog.Names() {
			rel, err := c.Catalog.Lookup(n)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "  %s(%s) — %d tuples\n", n, strings.Join(rel.Attrs, ", "), rel.Len())
		}
		return Result{Kind: KindMessage, Text: b.String()}, nil
	case `\load`:
		if len(fields) != 3 {
			return Result{}, usagef(`usage: \load <name> <file.csv>`)
		}
		rel, err := catalog.LoadCSV(fields[2], fields[1])
		if err != nil {
			return Result{}, err
		}
		if err := c.Catalog.Register(rel); err != nil {
			return Result{}, err
		}
		return message("loaded %s: %d tuples\n", fields[1], rel.Len()), nil
	case `\save`:
		if len(fields) != 3 {
			return Result{}, usagef(`usage: \save <name> <file.csv>`)
		}
		rel, err := c.Catalog.Lookup(fields[1])
		if err != nil {
			return Result{}, err
		}
		if err := catalog.SaveCSV(fields[2], rel); err != nil {
			return Result{}, err
		}
		return message("saved %s to %s\n", fields[1], fields[2]), nil
	case `\saveb`:
		// Binary format: round-trips derived relations with full lineage.
		if len(fields) != 3 {
			return Result{}, usagef(`usage: \saveb <name> <file.tpr>`)
		}
		rel, err := c.Catalog.Lookup(fields[1])
		if err != nil {
			return Result{}, err
		}
		if err := catalog.SaveBinary(fields[2], rel); err != nil {
			return Result{}, err
		}
		return message("saved %s to %s (binary)\n", fields[1], fields[2]), nil
	case `\loadb`:
		if len(fields) != 3 {
			return Result{}, usagef(`usage: \loadb <name> <file.tpr>`)
		}
		rel, err := catalog.LoadBinary(fields[2])
		if err != nil {
			return Result{}, err
		}
		rel.Name = fields[1]
		if err := c.Catalog.Register(rel); err != nil {
			return Result{}, err
		}
		return message("loaded %s: %d tuples\n", fields[1], rel.Len()), nil
	case `\gen`:
		if len(fields) != 3 {
			return Result{}, usagef(`usage: \gen webkit|meteo <n>`)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return Result{}, fmt.Errorf("bad size %s", fields[2])
		}
		var r, s *tp.Relation
		switch fields[1] {
		case "webkit":
			r, s = dataset.Webkit(n, 1)
		case "meteo":
			r, s = dataset.Meteo(n, 1)
		default:
			return Result{}, fmt.Errorf("unknown workload %s", fields[1])
		}
		_ = c.Catalog.Register(r)
		_ = c.Catalog.Register(s)
		return message("generated r (%d tuples) and s (%d tuples); join on r.Key = s.Key\n",
			r.Len(), s.Len()), nil
	case `\drop`:
		if len(fields) != 2 {
			return Result{}, usagef(`usage: \drop <name>`)
		}
		if !c.Catalog.Drop(fields[1]) {
			return Result{}, fmt.Errorf("no relation %s", fields[1])
		}
		return message("dropped %s\n", fields[1]), nil
	case `\stats`:
		// The statistics the cost-based strategy picker consumes,
		// computed lazily and cached on the catalog.
		if len(fields) != 2 {
			return Result{}, usagef(`usage: \stats <name>`)
		}
		rel, err := c.Catalog.Lookup(fields[1])
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: KindMessage, Text: c.Catalog.Stats(rel).Render(fields[1])}, nil
	case `\prepared`:
		// This session's prepared statements, sorted by name.
		names := make([]string, 0, len(c.prepared))
		for n := range c.prepared {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			p := c.prepared[n]
			fmt.Fprintf(&b, "  %s (%d parameter(s)) — %s\n", n, p.NumParams, p.Text)
		}
		if len(names) == 0 {
			b.WriteString("  (none)\n")
		}
		return Result{Kind: KindMessage, Text: b.String()}, nil
	case `\metrics`:
		// The same enriched snapshot and Render path as tpserverd's HTTP
		// /metrics endpoint; on the REPL the collector is process-local.
		if c.Metrics == nil {
			return Result{}, usagef(`\metrics is not available on this surface`)
		}
		return Result{Kind: KindMessage, Text: c.Metrics.Snapshot().Render()}, nil
	case `\help`, `\?`:
		return Result{Kind: KindMessage, Text: helpText}, nil
	default:
		return Result{}, usagef("unknown command %s (try \\help)", fields[0])
	}
}

func message(format string, args ...any) Result {
	return Result{Kind: KindMessage, Text: fmt.Sprintf(format, args...)}
}

// lookupPrepared resolves a session-local prepared-statement name.
func (c *Core) lookupPrepared(name string) (*plan.Prepared, error) {
	prep, ok := c.prepared[name]
	if !ok {
		return nil, fmt.Errorf("no prepared statement %q (PREPARE it first; \\prepared lists this session's)", name)
	}
	return prep, nil
}

func (c *Core) statement(ctx context.Context, line string) (Result, error) {
	st, err := sql.Parse(line)
	if err != nil {
		return Result{}, err
	}
	switch s := st.(type) {
	case *sql.Set:
		if err := c.Session.ApplySet(s); err != nil {
			return Result{}, err
		}
		return Result{Kind: KindMessage, Text: "ok\n"}, nil
	case *sql.Explain:
		if s.Exec != nil {
			prep, err := c.lookupPrepared(s.Exec.Name)
			if err != nil {
				return Result{}, err
			}
			tree, err := plan.ExplainPrepared(ctx, c.PlanCache, c.Catalog, c.Session, prep, s.Exec.Params, s.Analyze)
			if err != nil {
				return Result{}, err
			}
			res := Result{Kind: KindExplain, Text: tree.Render(), Plan: tree}
			if tree.PlanSource == "cached" {
				res.PlanCache = "hit"
			} else {
				res.PlanCache = "miss"
			}
			return res, nil
		}
		tree, err := plan.ExplainTree(ctx, s.Query, c.Catalog, c.Session, s.Analyze)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: KindExplain, Text: tree.Render(), Plan: tree}, nil
	case *sql.Prepare:
		if _, ok := c.prepared[s.Name]; ok {
			return Result{}, fmt.Errorf("prepared statement %q already exists (DEALLOCATE it first)", s.Name)
		}
		if c.prepared == nil {
			// Cores built as struct literals (tests) skip NewCore.
			c.prepared = make(map[string]*plan.Prepared)
		}
		c.prepared[s.Name] = plan.NewPrepared(s)
		return message("prepared %s (%d parameter(s))\n", s.Name, s.NumParams), nil
	case *sql.Execute:
		prep, err := c.lookupPrepared(s.Name)
		if err != nil {
			return Result{}, err
		}
		op, hit, err := plan.PlanPrepared(c.PlanCache, c.Catalog, c.Session, prep, s.Params)
		if err != nil {
			return Result{}, err
		}
		rel, err := engine.RunContext(ctx, op, "result")
		if err != nil {
			return Result{}, err
		}
		res := Result{Kind: KindRows, Rel: rel, PlanCache: "miss"}
		if hit {
			res.PlanCache = "hit"
		}
		return res, nil
	case *sql.Deallocate:
		if _, ok := c.prepared[s.Name]; !ok {
			return Result{}, fmt.Errorf("no prepared statement %q", s.Name)
		}
		delete(c.prepared, s.Name)
		return message("deallocated %s\n", s.Name), nil
	case *sql.CreateTableAs:
		op, err := plan.Build(s.Query, c.Catalog, c.Session)
		if err != nil {
			return Result{}, err
		}
		rel, err := engine.RunContext(ctx, op, s.Name)
		if err != nil {
			return Result{}, err
		}
		if err := c.Catalog.Register(rel); err != nil {
			return Result{}, err
		}
		return message("created %s: %d tuples\n", s.Name, rel.Len()), nil
	case *sql.Select:
		op, err := plan.Build(s, c.Catalog, c.Session)
		if err != nil {
			return Result{}, err
		}
		rel, err := engine.RunContext(ctx, op, "result")
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: KindRows, Rel: rel}, nil
	default:
		return Result{}, fmt.Errorf("unsupported statement %T", st)
	}
}

// RenderHeader, RenderRow and RenderFooter are the single definition of
// the tabular result format. Every surface — the local REPL
// (RenderTable) and the remote client (server.RenderResponse) — renders
// through these three functions, so their output cannot drift apart.

// RenderHeader writes the column header: the fact attributes plus the
// λ | T | p columns.
func RenderHeader(w io.Writer, attrs []string) {
	fmt.Fprintf(w, "%s | λ | T | p\n", strings.Join(attrs, " | "))
}

// RenderRow writes one tuple line from its rendered components.
func RenderRow(w io.Writer, fact []string, lineage string, iv interval.Interval, prob float64) {
	fmt.Fprintf(w, "%s | %s | %s | %.4g\n", strings.Join(fact, " | "), lineage, iv, prob)
}

// RenderFooter writes the row-count trailer.
func RenderFooter(w io.Writer, n int) {
	fmt.Fprintf(w, "(%d rows)\n", n)
}

// RenderTable writes rel in the shell's tabular format.
func RenderTable(w io.Writer, rel *tp.Relation) {
	RenderHeader(w, rel.Attrs)
	for _, t := range rel.Tuples {
		parts := make([]string, len(t.Fact))
		for i, v := range t.Fact {
			parts[i] = v.String()
		}
		RenderRow(w, parts, fmt.Sprintf("%s", t.Lineage), t.T, t.Prob)
	}
	RenderFooter(w, rel.Len())
}

// RenderResult writes res to w exactly as the interactive shell would.
func RenderResult(w io.Writer, res Result) {
	switch res.Kind {
	case KindMessage, KindExplain:
		io.WriteString(w, res.Text)
	case KindRows:
		RenderTable(w, res.Rel)
	}
}
