// Package lineage implements the propositional lineage formulas attached to
// temporal-probabilistic tuples.
//
// A lineage expression is built over base events (variables), each of which
// identifies one tuple of a base relation, e.g. a1 or b3 in the paper's
// running example. Derived tuples carry expressions combined with the
// lineage-concatenation functions of the paper:
//
//	and(λr, λs)    = λr ∧ λs          (overlapping windows)
//	andNot(λr, λs) = λr ∧ ¬λs         (negating windows)
//	λr                                 (unmatched windows)
//
// Expressions are immutable and structurally hashed; the constructors apply
// light simplification (identities, annihilators, flattening, duplicate
// removal, double negation) so that printed lineages match the compact form
// used in the paper, without performing expensive canonicalization.
package lineage

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies one base event: tuple ID within a base relation.
// It prints like the paper's tuple identifiers, e.g. {Rel: "a", ID: 1}
// prints "a1".
type Var struct {
	Rel string
	ID  int
}

// String returns the paper-style name of the variable, e.g. "b3".
func (v Var) String() string { return fmt.Sprintf("%s%d", v.Rel, v.ID) }

// Less orders variables by (Rel, ID).
func (v Var) Less(o Var) bool {
	if v.Rel != o.Rel {
		return v.Rel < o.Rel
	}
	return v.ID < o.ID
}

// Kind discriminates the node types of a lineage expression.
type Kind uint8

// The expression node kinds.
const (
	KindFalse Kind = iota
	KindTrue
	KindVar
	KindNot
	KindAnd
	KindOr
)

func (k Kind) String() string {
	switch k {
	case KindFalse:
		return "false"
	case KindTrue:
		return "true"
	case KindVar:
		return "var"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Expr is an immutable lineage expression. The zero value is not valid;
// use the constructors. A nil *Expr represents the paper's "null" lineage
// (absent λs of an unmatched window) and is distinct from False.
type Expr struct {
	kind Kind
	v    Var     // valid when kind == KindVar
	kids []*Expr // operands of Not (1), And, Or (>= 2)
	hash uint64
}

var (
	exprFalse = &Expr{kind: KindFalse, hash: fnvMix(0x0f)}
	exprTrue  = &Expr{kind: KindTrue, hash: fnvMix(0x1e)}
)

// False returns the constant-false lineage.
func False() *Expr { return exprFalse }

// True returns the constant-true lineage.
func True() *Expr { return exprTrue }

// NewVar returns the lineage consisting of the single base event (rel, id).
func NewVar(rel string, id int) *Expr { return VarExpr(Var{Rel: rel, ID: id}) }

// VarExpr returns the lineage consisting of the single base event v.
func VarExpr(v Var) *Expr {
	h := fnvMix(0x7a)
	for i := 0; i < len(v.Rel); i++ {
		h = fnvStep(h, uint64(v.Rel[i]))
	}
	h = fnvStep(h, uint64(v.ID)+0x9e3779b97f4a7c15)
	return &Expr{kind: KindVar, v: v, hash: h}
}

// Kind returns the node kind of e.
func (e *Expr) Kind() Kind { return e.kind }

// Variable returns the variable of a KindVar node; it panics otherwise.
func (e *Expr) Variable() Var {
	if e.kind != KindVar {
		panic("lineage: Variable called on " + e.kind.String())
	}
	return e.v
}

// Operands returns the child expressions (nil for leaves). The returned
// slice must not be modified.
func (e *Expr) Operands() []*Expr { return e.kids }

// IsFalse reports whether e is the constant false.
func (e *Expr) IsFalse() bool { return e != nil && e.kind == KindFalse }

// IsTrue reports whether e is the constant true.
func (e *Expr) IsTrue() bool { return e != nil && e.kind == KindTrue }

// Hash returns the structural hash of e.
func (e *Expr) Hash() uint64 { return e.hash }

// Not returns ¬e, simplifying constants and double negation.
func Not(e *Expr) *Expr {
	if e == nil {
		panic("lineage: Not(nil)")
	}
	switch e.kind {
	case KindFalse:
		return exprTrue
	case KindTrue:
		return exprFalse
	case KindNot:
		return e.kids[0]
	}
	return newNode(KindNot, []*Expr{e})
}

// And returns the conjunction of es, simplifying identities (true),
// annihilators (false), flattening nested conjunctions one level and
// removing duplicate operands. And() is True.
func And(es ...*Expr) *Expr { return nary(KindAnd, exprTrue, exprFalse, es) }

// Or returns the disjunction of es, simplifying identities (false),
// annihilators (true), flattening nested disjunctions one level and
// removing duplicate operands. Or() is False.
func Or(es ...*Expr) *Expr { return nary(KindOr, exprFalse, exprTrue, es) }

// AndNot returns λr ∧ ¬λs, the lineage-concatenation function of negating
// windows. When s is nil (the unmatched case) it returns r unchanged.
func AndNot(r, s *Expr) *Expr {
	if s == nil {
		return r
	}
	return And(r, Not(s))
}

func nary(kind Kind, identity, annihilator *Expr, es []*Expr) *Expr {
	flat := make([]*Expr, 0, len(es))
	for _, e := range es {
		if e == nil {
			panic("lineage: nil operand")
		}
		if e == identity || e.kind == identity.kind {
			continue
		}
		if e == annihilator || e.kind == annihilator.kind {
			return annihilator
		}
		if e.kind == kind {
			flat = append(flat, e.kids...)
		} else {
			flat = append(flat, e)
		}
	}
	// Remove duplicates, preserving first-occurrence order so printed
	// lineages follow the paper's reading order (e.g. b3 ∨ b2).
	uniq := flat[:0]
	for _, e := range flat {
		dup := false
		for _, u := range uniq {
			if u.Equal(e) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, e)
		}
	}
	switch len(uniq) {
	case 0:
		return identity
	case 1:
		return uniq[0]
	}
	kids := make([]*Expr, len(uniq))
	copy(kids, uniq)
	return newNode(kind, kids)
}

func newNode(kind Kind, kids []*Expr) *Expr {
	h := fnvMix(uint64(kind) + 0x51)
	// Combine child hashes order-independently for And/Or so that
	// structurally equal formulas that differ only in operand order get
	// the same hash (Equal treats them as equal multisets).
	if kind == KindAnd || kind == KindOr {
		var sum, xor uint64
		for _, k := range kids {
			sum += k.hash
			xor ^= rotl(k.hash, 17)
		}
		h = fnvStep(h, sum)
		h = fnvStep(h, xor)
		h = fnvStep(h, uint64(len(kids)))
	} else {
		for _, k := range kids {
			h = fnvStep(h, k.hash)
		}
	}
	return &Expr{kind: kind, kids: kids, hash: h}
}

// Equal reports whether e and o are structurally equal, treating And/Or
// operands as multisets (operand order is irrelevant).
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil {
		return false
	}
	if e.hash != o.hash || e.kind != o.kind || len(e.kids) != len(o.kids) {
		return false
	}
	switch e.kind {
	case KindFalse, KindTrue:
		return true
	case KindVar:
		return e.v == o.v
	case KindNot:
		return e.kids[0].Equal(o.kids[0])
	default: // And, Or: multiset comparison
		used := make([]bool, len(o.kids))
	outer:
		for _, ek := range e.kids {
			for j, ok := range o.kids {
				if !used[j] && ek.Equal(ok) {
					used[j] = true
					continue outer
				}
			}
			return false
		}
		return true
	}
}

// Eval evaluates e under the given truth assignment. Variables absent from
// the assignment are treated as false.
func (e *Expr) Eval(assign map[Var]bool) bool {
	switch e.kind {
	case KindFalse:
		return false
	case KindTrue:
		return true
	case KindVar:
		return assign[e.v]
	case KindNot:
		return !e.kids[0].Eval(assign)
	case KindAnd:
		for _, k := range e.kids {
			if !k.Eval(assign) {
				return false
			}
		}
		return true
	case KindOr:
		for _, k := range e.kids {
			if k.Eval(assign) {
				return true
			}
		}
		return false
	default:
		panic("lineage: invalid expression")
	}
}

// Vars returns the distinct variables of e, sorted by (Rel, ID).
func (e *Expr) Vars() []Var {
	set := make(map[Var]struct{})
	e.collectVars(set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (e *Expr) collectVars(set map[Var]struct{}) {
	if e.kind == KindVar {
		set[e.v] = struct{}{}
		return
	}
	for _, k := range e.kids {
		k.collectVars(set)
	}
}

// VarCount returns the number of variable occurrences (with multiplicity).
func (e *Expr) VarCount() int {
	switch e.kind {
	case KindVar:
		return 1
	case KindFalse, KindTrue:
		return 0
	}
	n := 0
	for _, k := range e.kids {
		n += k.VarCount()
	}
	return n
}

// Size returns the number of nodes of the expression tree.
func (e *Expr) Size() int {
	n := 1
	for _, k := range e.kids {
		n += k.Size()
	}
	return n
}

// Restrict returns e with variable v fixed to the truth value b (the
// Shannon cofactor e|v=b), simplified by the usual constructor rules.
func (e *Expr) Restrict(v Var, b bool) *Expr {
	switch e.kind {
	case KindFalse, KindTrue:
		return e
	case KindVar:
		if e.v == v {
			if b {
				return exprTrue
			}
			return exprFalse
		}
		return e
	case KindNot:
		k := e.kids[0].Restrict(v, b)
		if k == e.kids[0] {
			return e
		}
		return Not(k)
	case KindAnd, KindOr:
		changed := false
		kids := make([]*Expr, len(e.kids))
		for i, k := range e.kids {
			kids[i] = k.Restrict(v, b)
			if kids[i] != k {
				changed = true
			}
		}
		if !changed {
			return e
		}
		if e.kind == KindAnd {
			return And(kids...)
		}
		return Or(kids...)
	default:
		panic("lineage: invalid expression")
	}
}

// String renders the expression with the paper's connectives:
// a1 ∧ ¬(b3 ∨ b2). A nil expression renders as "null".
func (e *Expr) String() string {
	if e == nil {
		return "null"
	}
	var b strings.Builder
	e.render(&b, 0)
	return b.String()
}

// precedence levels: Or < And < Not < atom
func (e *Expr) render(b *strings.Builder, parentPrec int) {
	prec := e.prec()
	if prec < parentPrec {
		b.WriteByte('(')
		defer b.WriteByte(')')
	}
	switch e.kind {
	case KindFalse:
		b.WriteString("⊥")
	case KindTrue:
		b.WriteString("⊤")
	case KindVar:
		b.WriteString(e.v.String())
	case KindNot:
		b.WriteString("¬")
		e.kids[0].render(b, 3)
	case KindAnd:
		for i, k := range e.kids {
			if i > 0 {
				b.WriteString(" ∧ ")
			}
			k.render(b, 2)
		}
	case KindOr:
		for i, k := range e.kids {
			if i > 0 {
				b.WriteString(" ∨ ")
			}
			k.render(b, 1)
		}
	}
}

func (e *Expr) prec() int {
	switch e.kind {
	case KindOr:
		return 1
	case KindAnd:
		return 2
	default:
		return 4
	}
}

// --- hashing helpers (FNV-1a style mixing) ---

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvMix(x uint64) uint64 { return fnvStep(fnvOffset, x) }

func fnvStep(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }
