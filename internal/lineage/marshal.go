package lineage

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization of lineage expressions: a compact post-order
// encoding used by catalog's binary relation format, which — unlike CSV —
// can persist *derived* relations whose tuples carry arbitrary lineage.
//
// Wire format (all integers unsigned varints unless noted):
//
//	expr   := node*
//	node   := 0x00                      // false
//	        | 0x01                      // true
//	        | 0x02 relRef id            // var
//	        | 0x03                      // not   (pops 1)
//	        | 0x04 n                    // and   (pops n)
//	        | 0x05 n                    // or    (pops n)
//	relRef := varint index into the relation-name dictionary
//
// The relation-name dictionary is shared across expressions of one stream
// (see Encoder/Decoder) so that names are written once.

// Encoder writes expressions to a stream with a shared name dictionary.
type Encoder struct {
	w     io.Writer
	names map[string]uint64
	order []string
	buf   []byte
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, names: make(map[string]uint64)}
}

// Encode writes one expression. The name dictionary grows on demand; new
// names are emitted inline as (0xFF, len, bytes) before the node that
// first uses them.
func (enc *Encoder) Encode(e *Expr) error {
	if e == nil {
		return fmt.Errorf("lineage: cannot encode nil expression")
	}
	enc.buf = enc.buf[:0]
	if err := enc.encode(e); err != nil {
		return err
	}
	// Frame: total length then payload, so decoders can stream.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(enc.buf)))
	if _, err := enc.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := enc.w.Write(enc.buf)
	return err
}

func (enc *Encoder) encode(e *Expr) error {
	switch e.kind {
	case KindFalse:
		enc.buf = append(enc.buf, 0x00)
	case KindTrue:
		enc.buf = append(enc.buf, 0x01)
	case KindVar:
		ref, ok := enc.names[e.v.Rel]
		if !ok {
			ref = uint64(len(enc.order))
			enc.names[e.v.Rel] = ref
			enc.order = append(enc.order, e.v.Rel)
			enc.buf = append(enc.buf, 0xFF)
			enc.buf = appendUvarint(enc.buf, uint64(len(e.v.Rel)))
			enc.buf = append(enc.buf, e.v.Rel...)
		}
		enc.buf = append(enc.buf, 0x02)
		enc.buf = appendUvarint(enc.buf, ref)
		enc.buf = appendUvarint(enc.buf, uint64(e.v.ID))
	case KindNot:
		if err := enc.encode(e.kids[0]); err != nil {
			return err
		}
		enc.buf = append(enc.buf, 0x03)
	case KindAnd, KindOr:
		for _, k := range e.kids {
			if err := enc.encode(k); err != nil {
				return err
			}
		}
		op := byte(0x04)
		if e.kind == KindOr {
			op = 0x05
		}
		enc.buf = append(enc.buf, op)
		enc.buf = appendUvarint(enc.buf, uint64(len(e.kids)))
	default:
		return fmt.Errorf("lineage: cannot encode kind %v", e.kind)
	}
	return nil
}

func appendUvarint(b []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(b, tmp[:n]...)
}

// Decoder reads expressions written by an Encoder.
type Decoder struct {
	r     *countingReader
	names []string
}

type countingReader struct {
	r io.Reader
	b [1]byte
}

func (cr *countingReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(cr.r, cr.b[:]); err != nil {
		return 0, err
	}
	return cr.b[0], nil
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: &countingReader{r: r}}
}

// Decode reads the next expression.
func (dec *Decoder) Decode() (*Expr, error) {
	size, err := binary.ReadUvarint(dec.r)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(dec.r.r, payload); err != nil {
		return nil, err
	}
	var stack []*Expr
	i := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[i:])
		if n <= 0 {
			return 0, fmt.Errorf("lineage: corrupt varint at %d", i)
		}
		i += n
		return v, nil
	}
	pop := func(n int) ([]*Expr, error) {
		if len(stack) < n {
			return nil, fmt.Errorf("lineage: stack underflow")
		}
		kids := make([]*Expr, n)
		copy(kids, stack[len(stack)-n:])
		stack = stack[:len(stack)-n]
		return kids, nil
	}
	for i < len(payload) {
		op := payload[i]
		i++
		switch op {
		case 0x00:
			stack = append(stack, False())
		case 0x01:
			stack = append(stack, True())
		case 0x02:
			ref, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if ref >= uint64(len(dec.names)) {
				return nil, fmt.Errorf("lineage: undefined name reference %d", ref)
			}
			id, err := readUvarint()
			if err != nil {
				return nil, err
			}
			stack = append(stack, NewVar(dec.names[ref], int(id)))
		case 0x03:
			kids, err := pop(1)
			if err != nil {
				return nil, err
			}
			stack = append(stack, Not(kids[0]))
		case 0x04, 0x05:
			n, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if n > uint64(len(stack)) {
				return nil, fmt.Errorf("lineage: corrupt operand count %d", n)
			}
			kids, err := pop(int(n))
			if err != nil {
				return nil, err
			}
			if op == 0x04 {
				stack = append(stack, And(kids...))
			} else {
				stack = append(stack, Or(kids...))
			}
		case 0xFF:
			n, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if uint64(len(payload)-i) < n {
				return nil, fmt.Errorf("lineage: truncated name")
			}
			dec.names = append(dec.names, string(payload[i:i+int(n)]))
			i += int(n)
		default:
			return nil, fmt.Errorf("lineage: unknown opcode 0x%02x", op)
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("lineage: malformed expression (stack depth %d)", len(stack))
	}
	return stack[0], nil
}
