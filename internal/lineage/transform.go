package lineage

// NNF returns the negation normal form of e: negations appear only
// directly above variables, obtained by De Morgan rewriting. The result
// is logically equivalent to e (property-tested) and at most twice its
// size. Inference engines that case-split on the top-level connective
// (e.g. d-DNNF style compilers) expect this shape.
func NNF(e *Expr) *Expr {
	return nnf(e, false)
}

func nnf(e *Expr, negated bool) *Expr {
	switch e.kind {
	case KindFalse:
		if negated {
			return exprTrue
		}
		return e
	case KindTrue:
		if negated {
			return exprFalse
		}
		return e
	case KindVar:
		if negated {
			return Not(e)
		}
		return e
	case KindNot:
		return nnf(e.kids[0], !negated)
	case KindAnd, KindOr:
		kids := make([]*Expr, len(e.kids))
		for i, k := range e.kids {
			kids[i] = nnf(k, negated)
		}
		// De Morgan: negation flips the connective.
		if (e.kind == KindAnd) != negated {
			return And(kids...)
		}
		return Or(kids...)
	default:
		panic("lineage: invalid expression")
	}
}

// IsNNF reports whether negations in e occur only directly above
// variables.
func IsNNF(e *Expr) bool {
	switch e.kind {
	case KindFalse, KindTrue, KindVar:
		return true
	case KindNot:
		return e.kids[0].kind == KindVar
	default:
		for _, k := range e.kids {
			if !IsNNF(k) {
				return false
			}
		}
		return true
	}
}

// Substitute replaces every occurrence of the mapped variables by their
// images and re-simplifies bottom-up. This is lineage composition (view
// unfolding): if a derived relation's tuples were assigned fresh base
// events, substituting their true lineages yields the lineage over the
// original database. Unmapped variables are kept.
func Substitute(e *Expr, subst map[Var]*Expr) *Expr {
	switch e.kind {
	case KindFalse, KindTrue:
		return e
	case KindVar:
		if img, ok := subst[e.v]; ok {
			return img
		}
		return e
	case KindNot:
		k := Substitute(e.kids[0], subst)
		if k == e.kids[0] {
			return e
		}
		return Not(k)
	case KindAnd, KindOr:
		changed := false
		kids := make([]*Expr, len(e.kids))
		for i, k := range e.kids {
			kids[i] = Substitute(k, subst)
			if kids[i] != k {
				changed = true
			}
		}
		if !changed {
			return e
		}
		if e.kind == KindAnd {
			return And(kids...)
		}
		return Or(kids...)
	default:
		panic("lineage: invalid expression")
	}
}

// Literals returns the number of literal occurrences (variables, possibly
// negated) in e.
func Literals(e *Expr) int {
	switch e.kind {
	case KindVar:
		return 1
	case KindFalse, KindTrue:
		return 0
	case KindNot:
		return Literals(e.kids[0])
	default:
		n := 0
		for _, k := range e.kids {
			n += Literals(k)
		}
		return n
	}
}
