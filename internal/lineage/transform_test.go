package lineage

import (
	"math/rand"
	"testing"
)

func TestNNFBasics(t *testing.T) {
	x, y := v("a", 1), v("b", 2)
	e := Not(And(x, y))
	n := NNF(e)
	if n.String() != "¬a1 ∨ ¬b2" {
		t.Errorf("NNF(¬(x∧y)) = %q", n)
	}
	if !IsNNF(n) {
		t.Errorf("NNF output must be in NNF")
	}
	if !Equivalent(e, n) {
		t.Errorf("NNF must preserve semantics")
	}
	if NNF(Not(True())) != False() || NNF(Not(False())) != True() {
		t.Errorf("NNF of negated constants wrong")
	}
	if !IsNNF(x) || !IsNNF(Not(x)) {
		t.Errorf("literals are NNF")
	}
	if IsNNF(Not(And(x, y))) {
		t.Errorf("¬(x∧y) is not NNF")
	}
}

func TestNNFNested(t *testing.T) {
	a1, b2, b3 := v("a", 1), v("b", 2), v("b", 3)
	e := AndNot(a1, Or(b3, b2)) // a1 ∧ ¬(b3 ∨ b2)
	n := NNF(e)
	if n.String() != "a1 ∧ ¬b3 ∧ ¬b2" {
		t.Errorf("NNF = %q", n)
	}
	if !Equivalent(e, n) {
		t.Errorf("not equivalent")
	}
}

func TestNNFRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 300; trial++ {
		e := randExpr(rng, 4)
		n := NNF(e)
		if !IsNNF(n) {
			t.Fatalf("trial %d: not NNF: %v → %v", trial, e, n)
		}
		if !Equivalent(e, n) {
			t.Fatalf("trial %d: NNF changed semantics: %v vs %v", trial, e, n)
		}
	}
}

func TestSubstitute(t *testing.T) {
	x, y, z := v("a", 1), v("b", 2), v("c", 3)
	e := And(x, Not(y))
	// Unfold y as (x ∨ z).
	got := Substitute(e, map[Var]*Expr{{Rel: "b", ID: 2}: Or(x, z)})
	want := And(x, Not(Or(x, z)))
	if !got.Equal(want) {
		t.Errorf("Substitute = %v, want %v", got, want)
	}
	// Identity substitution returns the same node (no realloc).
	if Substitute(e, map[Var]*Expr{}) != e {
		t.Errorf("empty substitution must be identity")
	}
	if Substitute(e, map[Var]*Expr{{Rel: "z", ID: 9}: x}) != e {
		t.Errorf("irrelevant substitution must be identity")
	}
	// Constants pass through.
	if Substitute(True(), map[Var]*Expr{{Rel: "a", ID: 1}: y}) != True() {
		t.Errorf("constant substitution wrong")
	}
}

func TestSubstituteComposesProbability(t *testing.T) {
	// View unfolding: a derived event d1 ≡ a1 ∧ b1; substituting into
	// d1 ∨ c1 must be equivalent to (a1 ∧ b1) ∨ c1.
	a1, b1, c1, d1 := v("a", 1), v("b", 1), v("c", 1), v("d", 1)
	view := Or(d1, c1)
	unfolded := Substitute(view, map[Var]*Expr{{Rel: "d", ID: 1}: And(a1, b1)})
	if !Equivalent(unfolded, Or(And(a1, b1), c1)) {
		t.Errorf("unfolding wrong: %v", unfolded)
	}
}

func TestSubstituteSimplifies(t *testing.T) {
	x, y := v("a", 1), v("b", 2)
	// Substituting ⊥ must collapse conjunctions.
	got := Substitute(And(x, y), map[Var]*Expr{{Rel: "a", ID: 1}: False()})
	if got != False() {
		t.Errorf("⊥ substitution = %v", got)
	}
	got = Substitute(Or(x, y), map[Var]*Expr{{Rel: "a", ID: 1}: True()})
	if got != True() {
		t.Errorf("⊤ substitution = %v", got)
	}
}

func TestLiterals(t *testing.T) {
	x, y := v("a", 1), v("b", 2)
	if Literals(AndNot(x, Or(y, x))) != 3 {
		t.Errorf("Literals = %d, want 3", Literals(AndNot(x, Or(y, x))))
	}
	if Literals(True()) != 0 {
		t.Errorf("constants have no literals")
	}
	if Literals(Not(x)) != 1 {
		t.Errorf("negated literal counts once")
	}
}

func TestNNFSizeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rng, 4)
		n := NNF(e)
		if Literals(n) > Literals(e) {
			t.Fatalf("trial %d: NNF increased literal count: %d → %d (%v → %v)",
				trial, Literals(e), Literals(n), e, n)
		}
	}
}
