package lineage

// Equivalent reports whether a and b are logically equivalent, i.e. agree
// under every truth assignment to their variables. It enumerates all 2^n
// assignments over the union of the variable sets and is therefore only
// suitable for small formulas (validators, tests, the Table I window
// checkers); the join algorithms themselves never call it.
//
// nil (the paper's "null" lineage) is only equivalent to nil: null marks
// the *absence* of a lineage, which is semantically different from the
// constant false.
func Equivalent(a, b *Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Equal(b) {
		return true
	}
	vars := unionVars(a, b)
	if len(vars) > 24 {
		panic("lineage: Equivalent on too many variables")
	}
	assign := make(map[Var]bool, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return a.Eval(assign) == b.Eval(assign)
		}
		assign[vars[i]] = false
		if !rec(i + 1) {
			return false
		}
		assign[vars[i]] = true
		return rec(i + 1)
	}
	return rec(0)
}

// Tautology reports whether e is true under every assignment.
func Tautology(e *Expr) bool { return Equivalent(e, True()) }

// Unsatisfiable reports whether e is false under every assignment.
func Unsatisfiable(e *Expr) bool { return Equivalent(e, False()) }

func unionVars(a, b *Expr) []Var {
	set := make(map[Var]struct{})
	a.collectVars(set)
	b.collectVars(set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	// Deterministic order for reproducible enumeration.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Less(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
