package lineage

import (
	"sort"
	"strings"
)

// CanonicalString renders e like String, but with And/Or operand order
// normalized: operands are sorted by their own canonical rendering, so
// two structurally equal formulas (Equal treats And/Or operands as
// multisets) produce identical bytes regardless of construction order.
// The execution strategies build equal lineages in different operand
// orders (e.g. NJ's sweep discovers the negated disjunction in end-point
// order, TA's alignment in start order); the differential test harness
// compares their results byte-for-byte through this form.
func CanonicalString(e *Expr) string {
	if e == nil {
		return "null"
	}
	var b strings.Builder
	canonRender(e, &b, 0)
	return b.String()
}

func canonRender(e *Expr, b *strings.Builder, parentPrec int) {
	prec := e.prec()
	if prec < parentPrec {
		b.WriteByte('(')
		defer b.WriteByte(')')
	}
	switch e.kind {
	case KindFalse:
		b.WriteString("⊥")
	case KindTrue:
		b.WriteString("⊤")
	case KindVar:
		b.WriteString(e.v.String())
	case KindNot:
		b.WriteString("¬")
		canonRender(e.kids[0], b, 3)
	case KindAnd, KindOr:
		childPrec, sep := 2, " ∧ "
		if e.kind == KindOr {
			childPrec, sep = 1, " ∨ "
		}
		parts := make([]string, len(e.kids))
		for i, k := range e.kids {
			var kb strings.Builder
			canonRender(k, &kb, childPrec)
			parts[i] = kb.String()
		}
		sort.Strings(parts)
		b.WriteString(strings.Join(parts, sep))
	}
}
