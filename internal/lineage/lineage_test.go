package lineage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func v(rel string, id int) *Expr { return NewVar(rel, id) }

func TestVarString(t *testing.T) {
	if got := (Var{Rel: "a", ID: 1}).String(); got != "a1" {
		t.Errorf("Var.String = %q, want a1", got)
	}
	if got := v("b", 3).String(); got != "b3" {
		t.Errorf("Expr.String = %q, want b3", got)
	}
}

func TestVarLess(t *testing.T) {
	a1, a2, b1 := Var{"a", 1}, Var{"a", 2}, Var{"b", 1}
	if !a1.Less(a2) || !a1.Less(b1) || !a2.Less(b1) {
		t.Errorf("Var.Less ordering wrong")
	}
	if a2.Less(a1) || b1.Less(a1) {
		t.Errorf("Var.Less not antisymmetric")
	}
}

func TestConstants(t *testing.T) {
	if !False().IsFalse() || False().IsTrue() {
		t.Errorf("False misbehaves")
	}
	if !True().IsTrue() || True().IsFalse() {
		t.Errorf("True misbehaves")
	}
	var nilExpr *Expr
	if nilExpr.IsFalse() || nilExpr.IsTrue() {
		t.Errorf("nil must be neither true nor false")
	}
	if False().String() != "⊥" || True().String() != "⊤" {
		t.Errorf("constant rendering wrong: %q %q", False(), True())
	}
}

func TestNotSimplification(t *testing.T) {
	if Not(True()) != False() || Not(False()) != True() {
		t.Errorf("Not of constants wrong")
	}
	x := v("a", 1)
	if Not(Not(x)) != x {
		t.Errorf("double negation not eliminated")
	}
	if got := Not(x).String(); got != "¬a1" {
		t.Errorf("Not render = %q", got)
	}
}

func TestAndSimplification(t *testing.T) {
	x, y := v("a", 1), v("b", 2)
	if And() != True() {
		t.Errorf("empty And should be True")
	}
	if And(x) != x {
		t.Errorf("unary And should be the operand")
	}
	if And(x, True()) != x {
		t.Errorf("And identity not dropped")
	}
	if And(x, False()) != False() {
		t.Errorf("And annihilator not applied")
	}
	if got := And(x, x); got != x {
		t.Errorf("duplicate And operand kept: %v", got)
	}
	if got := And(And(x, y), v("c", 3)).String(); got != "a1 ∧ b2 ∧ c3" {
		t.Errorf("And flattening: %q", got)
	}
}

func TestOrSimplification(t *testing.T) {
	x, y := v("a", 1), v("b", 2)
	if Or() != False() {
		t.Errorf("empty Or should be False")
	}
	if Or(x) != x {
		t.Errorf("unary Or should be the operand")
	}
	if Or(x, False()) != x {
		t.Errorf("Or identity not dropped")
	}
	if Or(x, True()) != True() {
		t.Errorf("Or annihilator not applied")
	}
	if got := Or(Or(x, y), x); got.Kind() != KindOr || len(got.Operands()) != 2 {
		t.Errorf("Or dedup/flatten failed: %v", got)
	}
}

func TestAndNot(t *testing.T) {
	a1, b2, b3 := v("a", 1), v("b", 2), v("b", 3)
	got := AndNot(a1, Or(b3, b2))
	if got.String() != "a1 ∧ ¬(b3 ∨ b2)" {
		t.Errorf("AndNot render = %q, want paper form a1 ∧ ¬(b3 ∨ b2)", got)
	}
	if AndNot(a1, nil) != a1 {
		t.Errorf("AndNot with null should pass through λr")
	}
}

func TestPaperLineages(t *testing.T) {
	// All lineages of Fig. 1b must print in the paper's form.
	a1, a2 := v("a", 1), v("a", 2)
	b2, b3 := v("b", 2), v("b", 3)
	cases := []struct {
		e    *Expr
		want string
	}{
		{a1, "a1"},
		{And(a1, b3), "a1 ∧ b3"},
		{And(a1, b2), "a1 ∧ b2"},
		{AndNot(a1, b3), "a1 ∧ ¬b3"},
		{AndNot(a1, Or(b3, b2)), "a1 ∧ ¬(b3 ∨ b2)"},
		{AndNot(a1, b2), "a1 ∧ ¬b2"},
		{a2, "a2"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestRenderPrecedence(t *testing.T) {
	x, y, z := v("a", 1), v("b", 2), v("c", 3)
	if got := Or(And(x, y), z).String(); got != "a1 ∧ b2 ∨ c3" {
		t.Errorf("got %q", got)
	}
	if got := And(Or(x, y), z).String(); got != "(a1 ∨ b2) ∧ c3" {
		t.Errorf("got %q", got)
	}
	if got := Not(And(x, y)).String(); got != "¬(a1 ∧ b2)" {
		t.Errorf("got %q", got)
	}
}

func TestEqualMultiset(t *testing.T) {
	x, y, z := v("a", 1), v("b", 2), v("c", 3)
	if !Or(x, y, z).Equal(Or(z, y, x)) {
		t.Errorf("Or must compare as multiset")
	}
	if !And(x, y).Equal(And(y, x)) {
		t.Errorf("And must compare as multiset")
	}
	if Or(x, y).Equal(Or(x, z)) {
		t.Errorf("different operands must not be Equal")
	}
	if Or(x, y).Equal(And(x, y)) {
		t.Errorf("different kinds must not be Equal")
	}
	if x.Equal(nil) {
		t.Errorf("Equal(nil) must be false")
	}
	var n *Expr
	if n.Equal(x) {
		t.Errorf("nil.Equal(x) must be false")
	}
}

func TestHashOrderIndependence(t *testing.T) {
	x, y, z := v("a", 1), v("b", 2), v("c", 3)
	if Or(x, y, z).Hash() != Or(z, x, y).Hash() {
		t.Errorf("Or hash must be operand-order independent")
	}
	if And(x, y).Hash() != And(y, x).Hash() {
		t.Errorf("And hash must be operand-order independent")
	}
}

func TestEval(t *testing.T) {
	a1, b2, b3 := Var{"a", 1}, Var{"b", 2}, Var{"b", 3}
	e := AndNot(VarExpr(a1), Or(VarExpr(b3), VarExpr(b2)))
	cases := []struct {
		assign map[Var]bool
		want   bool
	}{
		{map[Var]bool{a1: true}, true}, // b's default false
		{map[Var]bool{a1: true, b3: true}, false},
		{map[Var]bool{a1: true, b2: true}, false},
		{map[Var]bool{a1: false}, false},
		{map[Var]bool{a1: true, b2: false, b3: false}, true},
	}
	for i, c := range cases {
		if got := e.Eval(c.assign); got != c.want {
			t.Errorf("case %d: Eval = %v, want %v", i, got, c.want)
		}
	}
}

func TestVars(t *testing.T) {
	e := AndNot(v("a", 1), Or(v("b", 3), v("b", 2)))
	vars := e.Vars()
	want := []Var{{"a", 1}, {"b", 2}, {"b", 3}}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range vars {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %v, want %v", i, vars[i], want[i])
		}
	}
	if got := e.VarCount(); got != 3 {
		t.Errorf("VarCount = %d, want 3", got)
	}
	if got := True().VarCount(); got != 0 {
		t.Errorf("True.VarCount = %d", got)
	}
}

func TestSize(t *testing.T) {
	if got := v("a", 1).Size(); got != 1 {
		t.Errorf("var Size = %d", got)
	}
	e := AndNot(v("a", 1), Or(v("b", 3), v("b", 2)))
	// And(a1, Not(Or(b3, b2))) = 1 + 1 + (1 + (1 + 1 + 1)) = 6
	if got := e.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
}

func TestRestrict(t *testing.T) {
	a1, b2, b3 := Var{"a", 1}, Var{"b", 2}, Var{"b", 3}
	e := AndNot(VarExpr(a1), Or(VarExpr(b3), VarExpr(b2)))
	if got := e.Restrict(a1, false); got != False() {
		t.Errorf("Restrict a1=false should collapse to ⊥, got %v", got)
	}
	g := e.Restrict(b3, true)
	if g != False() {
		t.Errorf("Restrict b3=true should collapse to ⊥ (¬(⊤∨b2)=⊥), got %v", g)
	}
	h := e.Restrict(b3, false)
	if h.String() != "a1 ∧ ¬b2" {
		t.Errorf("Restrict b3=false = %q, want a1 ∧ ¬b2", h)
	}
	// Restricting an absent variable returns the identical node.
	if e.Restrict(Var{"z", 9}, true) != e {
		t.Errorf("Restrict on absent variable should be identity")
	}
}

func TestRestrictAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		e := randExpr(rng, 3)
		vars := e.Vars()
		if len(vars) == 0 {
			continue
		}
		pick := vars[rng.Intn(len(vars))]
		val := rng.Intn(2) == 1
		r := e.Restrict(pick, val)
		// r must agree with e on every assignment consistent with pick=val.
		assign := make(map[Var]bool)
		for i := 0; i < 30; i++ {
			for _, vr := range vars {
				assign[vr] = rng.Intn(2) == 1
			}
			assign[pick] = val
			if e.Eval(assign) != r.Eval(assign) {
				t.Fatalf("trial %d: Restrict disagrees: e=%v r=%v assign=%v", trial, e, r, assign)
			}
		}
	}
}

func TestEquivalent(t *testing.T) {
	x, y := v("a", 1), v("b", 2)
	if !Equivalent(Not(And(x, y)), Or(Not(x), Not(y))) {
		t.Errorf("De Morgan must hold")
	}
	if !Equivalent(Or(x, And(x, y)), x) {
		t.Errorf("absorption must hold")
	}
	if Equivalent(x, y) {
		t.Errorf("distinct variables are not equivalent")
	}
	if !Equivalent(nil, nil) {
		t.Errorf("null ≡ null")
	}
	if Equivalent(nil, False()) {
		t.Errorf("null must not be equivalent to ⊥")
	}
	if !Tautology(Or(x, Not(x))) {
		t.Errorf("x ∨ ¬x is a tautology")
	}
	if !Unsatisfiable(And(x, Not(x))) {
		t.Errorf("x ∧ ¬x is unsatisfiable")
	}
}

func TestEqualImpliesEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		a := randExpr(rng, 3)
		b := randExpr(rng, 3)
		if a.Equal(b) && !Equivalent(a, b) {
			t.Fatalf("Equal formulas must be Equivalent: %v vs %v", a, b)
		}
	}
}

func TestHashEqualConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randExpr(rng, 3)
		b := randExpr(rng, 3)
		if a.Equal(b) && a.Hash() != b.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randExpr builds a random expression over variables a1..a4, b1..b4.
func randExpr(rng *rand.Rand, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		rel := "a"
		if rng.Intn(2) == 0 {
			rel = "b"
		}
		return NewVar(rel, 1+rng.Intn(4))
	}
	switch rng.Intn(4) {
	case 0:
		return Not(randExpr(rng, depth-1))
	case 1:
		return And(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 2:
		return Or(randExpr(rng, depth-1), randExpr(rng, depth-1))
	default:
		return Or(randExpr(rng, depth-1), And(randExpr(rng, depth-1), randExpr(rng, depth-1)))
	}
}
