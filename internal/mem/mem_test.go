package mem

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestGaugeCharge(t *testing.T) {
	g := NewGauge(1000)
	if err := g.Charge(600); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	if err := g.Charge(400); err != nil {
		t.Fatalf("charge to exactly the limit must pass: %v", err)
	}
	err := g.Charge(1)
	if err == nil {
		t.Fatal("charge past the limit must fail")
	}
	if !IsBudget(err) {
		t.Fatalf("want a budget error, got %T: %v", err, err)
	}
	// The overrun stays counted: every later charge fails too.
	if err := g.Charge(1); err == nil {
		t.Fatal("charges after an overrun must keep failing")
	}
	if g.Used() <= g.Limit() {
		t.Fatalf("used %d must exceed limit %d after overrun", g.Used(), g.Limit())
	}
}

func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	if err := g.Charge(1 << 40); err != nil {
		t.Fatalf("nil gauge must be unlimited: %v", err)
	}
	if g.Used() != 0 || g.Limit() != 0 {
		t.Fatal("nil gauge reports zero usage and limit")
	}
	if NewGauge(0) != nil || NewGauge(-1) != nil {
		t.Fatal("non-positive limits mean no gauge")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	g := NewGauge(1 << 40)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := g.Charge(3); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := g.Used(); got != 8*1000*3 {
		t.Fatalf("used = %d, want %d", got, 8*1000*3)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("background context carries no gauge")
	}
	if got := WithGauge(ctx, nil); FromContext(got) != nil {
		t.Fatal("attaching a nil gauge attaches nothing")
	}
	g := NewGauge(42)
	if got := FromContext(WithGauge(ctx, g)); got != g {
		t.Fatalf("FromContext = %p, want %p", got, g)
	}
}

func TestBudgetErrorWrapped(t *testing.T) {
	g := NewGauge(1)
	err := g.Charge(2)
	wrapped := fmt.Errorf("align: %w", err)
	if !IsBudget(wrapped) {
		t.Fatal("IsBudget must see through wrapping")
	}
	if IsBudget(fmt.Errorf("plain")) {
		t.Fatal("IsBudget on a plain error")
	}
}
