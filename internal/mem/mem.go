// Package mem implements per-query memory budgets: a Gauge threaded
// through the query context and charged at the executor's allocation
// choke points (the core batch-buffer pipeline, the alignment cover
// arena, result-buffer presizing and the materializing drain loops), so
// one runaway statement aborts with a budget error instead of OOMing the
// shared server process.
//
// The accounting is deliberately an estimate, not byte-exact allocator
// metering: the charge points piggyback on the existing cooperative
// cancellation checkpoints, so a budget overrun is detected within one
// checkpoint interval of the allocation that caused it — the same
// promptness contract the per-query timeout already has. The budget's job
// is to stop queries whose working set is orders of magnitude out of
// bounds, not to arbitrate the last kilobyte.
package mem

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Gauge tracks one query's estimated retained bytes against a fixed
// limit. All methods are safe on a nil receiver (a nil gauge is an
// unlimited budget) and for concurrent use — the parallel executors'
// partition workers charge the same gauge.
type Gauge struct {
	limit int64
	used  atomic.Int64
}

// NewGauge returns a gauge with the given byte limit. A non-positive
// limit returns nil: no gauge, no accounting, unlimited.
func NewGauge(limit int64) *Gauge {
	if limit <= 0 {
		return nil
	}
	return &Gauge{limit: limit}
}

// Charge adds n estimated bytes and fails with a *BudgetError once the
// total exceeds the limit. The overrunning charge stays counted — the
// query is aborting, and keeping the total monotonic means every
// concurrent worker of the same query fails its next checkpoint too
// instead of racing the rollback.
func (g *Gauge) Charge(n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	if used := g.used.Add(n); used > g.limit {
		return &BudgetError{Limit: g.limit, Used: used}
	}
	return nil
}

// Used returns the estimated bytes charged so far.
func (g *Gauge) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Limit returns the byte limit (0 for a nil gauge).
func (g *Gauge) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.limit
}

// BudgetError reports a query that charged past its memory budget.
type BudgetError struct {
	Limit int64 // the configured budget, bytes
	Used  int64 // estimated bytes at the failing charge
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("memory budget exceeded: query needs over %d bytes of an estimated %d-byte budget (raise SET memory_budget, or SET memory_budget = off)",
		e.Used, e.Limit)
}

// IsBudget reports whether err is (or wraps) a budget overrun.
func IsBudget(err error) bool {
	var b *BudgetError
	return errors.As(err, &b)
}

// ctxKey is the context key carrying the query's gauge.
type ctxKey struct{}

// WithGauge attaches g to ctx. Attaching nil is a no-op (the returned
// context reports no gauge), so callers can thread an optional budget
// without branching.
func WithGauge(ctx context.Context, g *Gauge) context.Context {
	if g == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, g)
}

// FromContext returns the query's gauge, or nil when the query runs
// without a budget.
func FromContext(ctx context.Context) *Gauge {
	g, _ := ctx.Value(ctxKey{}).(*Gauge)
	return g
}

// TupleBytes estimates the retained bytes of one materialized output
// tuple with the given fact arity: the tuple header (fact slice header,
// lineage pointer, interval, probability) plus one interned value per
// fact column. Charge points over tuple drains multiply this by their
// checkpoint interval.
func TupleBytes(arity int) int64 {
	return 96 + 24*int64(arity)
}
