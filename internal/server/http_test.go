package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tpjoin/internal/client"
	"tpjoin/internal/obs"
	"tpjoin/internal/server"
)

// startServerWithAdmin serves both the query protocol and the admin HTTP
// endpoint on loopback listeners and returns the dial address and the
// admin base URL. One cleanup closes the server and checks both serve
// goroutines exited cleanly.
func startServerWithAdmin(t testing.TB, cfg server.Config) (*server.Server, string, string) {
	t.Helper()
	qln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(testCatalog(t), cfg)
	done := make(chan error, 2)
	go func() { done <- srv.Serve(qln) }()
	go func() { done <- srv.ServeAdmin(aln) }()
	t.Cleanup(func() {
		srv.Close()
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				t.Errorf("serve goroutine: %v", err)
			}
		}
	})
	return srv, qln.Addr().String(), "http://" + aln.Addr().String()
}

// adminGet fetches one admin URL and returns status and body.
func adminGet(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// waitReady polls /readyz until the query listener registers (the serve
// goroutine races the first request).
func waitReady(t testing.TB, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := adminGet(t, base+"/readyz"); code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never turned 200")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdminEndpoints(t *testing.T) {
	_, addr, base := startServerWithAdmin(t, server.Config{})
	waitReady(t, base)

	if code, body := adminGet(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body := adminGet(t, base+"/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Errorf("readyz: %d %q", code, body)
	}

	// Run a query so the scrape carries a populated per-strategy latency
	// histogram.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Query(ctx, joinQueries[0]); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics content-type = %q", ct)
	}
	text := string(body)
	if err := obs.ValidateExposition(text); err != nil {
		t.Errorf("/metrics exposition not well-formed: %v", err)
	}
	for _, want := range []string{
		`tpserverd_query_seconds_bucket{strategy="NJ",le="+Inf"} 1`,
		`tpserverd_strategy_queries_total{strategy="NJ"} 1`,
		"tpserverd_queries_served_total 1",
		"tpserverd_sessions_active 1",
		"tpserverd_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// pprof is mounted on the admin mux.
	if code, body := adminGet(t, base+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine profile:") {
		t.Errorf("pprof goroutine: %d %.80q", code, body)
	}
}

func TestReadyzBeforeQueryListener(t *testing.T) {
	// Admin endpoint up, query listener never started: ready must be 503
	// while healthz (liveness) stays 200.
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(testCatalog(t), server.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.ServeAdmin(aln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeAdmin: %v", err)
		}
	})
	base := "http://" + aln.Addr().String()
	if code, _ := adminGet(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz before query listener: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := adminGet(t, base+"/readyz")
		if code == http.StatusServiceUnavailable && strings.Contains(body, "not accepting") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz = %d %q, want 503 not-accepting", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsNoDrift is the single-render-path regression: the \metrics
// builtin and GET /metrics must render the identical exposition, modulo
// the runtime gauge families that change between any two scrapes.
func TestMetricsNoDrift(t *testing.T) {
	_, addr, base := startServerWithAdmin(t, server.Config{})
	waitReady(t, base)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, q := range []string{"SET strategy = ta", joinQueries[0], joinQueries[3]} {
		if _, err := c.Query(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	// \metrics is a server builtin: it bumps no counters and takes no
	// query ID, so the two scrapes see identical counter state.
	resp, err := c.Query(ctx, `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueryID != 0 {
		t.Errorf("\\metrics carries query ID %d, want 0 (server builtin)", resp.QueryID)
	}
	code, httpText := adminGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}

	got, want := stripVolatile(httpText), stripVolatile(resp.Message)
	if got != want {
		t.Errorf("\\metrics and GET /metrics drifted:\n--- builtin ---\n%s\n--- http ---\n%s", want, got)
	}
	if !strings.Contains(got, `tpserverd_strategy_queries_total{strategy="TA"} 2`) {
		t.Errorf("stripped exposition lost real counters:\n%s", got)
	}
}

// stripVolatile drops the families whose values legitimately differ
// between two scrapes (uptime and Go runtime gauges); everything else
// must match byte for byte.
func stripVolatile(text string) string {
	volatile := []string{
		"tpserverd_uptime_seconds",
		"tpserverd_go_goroutines",
		"tpserverd_go_heap_inuse_bytes",
		"tpserverd_go_gc_pause_seconds_total",
	}
	var keep []string
line:
	for _, l := range strings.Split(text, "\n") {
		for _, v := range volatile {
			if strings.Contains(l, v) {
				continue line
			}
		}
		keep = append(keep, l)
	}
	return strings.Join(keep, "\n")
}

// syncBuffer lets the test read the query log the server session
// goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryWarnMatchesQueryID is the acceptance criterion: a query
// slower than the slow-query threshold emits exactly one WARN audit
// record, and its query_id equals the Response.QueryID the client
// received.
func TestSlowQueryWarnMatchesQueryID(t *testing.T) {
	var logBuf syncBuffer
	cfg := server.Config{
		QueryLog: obs.NewQueryLog(slog.NewJSONHandler(&logBuf, nil), time.Nanosecond),
	}
	_, addr := startServer(t, testCatalog(t), cfg)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(context.Background(), joinQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueryID == 0 {
		t.Fatal("response carries no query ID")
	}

	// The audit record is written before the response is encoded, so it
	// is complete by the time the client has the response.
	var warns []map[string]any
	dec := json.NewDecoder(strings.NewReader(logBuf.String()))
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("unparseable query-log line: %v\n%s", err, logBuf.String())
		}
		if rec["level"] == "WARN" {
			warns = append(warns, rec)
		}
	}
	if len(warns) != 1 {
		t.Fatalf("got %d WARN records, want exactly 1:\n%s", len(warns), logBuf.String())
	}
	w := warns[0]
	if got := w["query_id"]; got != float64(resp.QueryID) {
		t.Errorf("WARN query_id = %v, client saw %d", got, resp.QueryID)
	}
	if w["slow"] != true {
		t.Errorf("WARN record not flagged slow: %v", w)
	}
	if stmt, _ := w["stmt"].(string); stmt != joinQueries[0] {
		t.Errorf("WARN stmt = %q", stmt)
	}
	if sess, _ := w["session"].(string); !strings.HasPrefix(sess, "127.0.0.1:") {
		t.Errorf("WARN session = %q, want the remote address", sess)
	}
}

// TestQueryIDEndToEnd pins the identity plumbing: IDs are monotonic per
// process across sessions, the EXPLAIN ANALYZE trailer carries the same
// ID as the response (text and structured tree agree), and failed
// statements still get IDs.
func TestQueryIDEndToEnd(t *testing.T) {
	_, addr := startServer(t, testCatalog(t), server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	var last uint64
	for i := 0; i < 3; i++ {
		resp, err := c.Query(ctx, joinQueries[i])
		if err != nil {
			t.Fatal(err)
		}
		if resp.QueryID <= last {
			t.Fatalf("query ID %d after %d: not monotonic", resp.QueryID, last)
		}
		last = resp.QueryID
	}

	// A second session keeps drawing from the same per-process counter.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := c2.Query(ctx, "EXPLAIN ANALYZE "+joinQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueryID <= last {
		t.Errorf("cross-session query ID %d after %d: not monotonic", resp.QueryID, last)
	}
	tag := fmt.Sprintf("query_id=%d", resp.QueryID)
	if !strings.Contains(resp.Message, tag) {
		t.Errorf("ANALYZE trailer missing %q:\n%s", tag, resp.Message)
	}
	if resp.Plan == nil || resp.Plan.QueryID != resp.QueryID {
		t.Errorf("structured tree QueryID = %v, response = %d", resp.Plan, resp.QueryID)
	}

	// Failed statements are evaluated statements: they carry IDs too.
	failResp, err := c2.Query(ctx, "SELECT * FROM no_such_relation TP JOIN b ON no_such_relation.Loc = b.Loc")
	if err == nil {
		t.Fatal("query against a missing relation succeeded")
	}
	if _, ok := err.(*client.ServerError); !ok {
		t.Fatalf("want ServerError, got %T: %v", err, err)
	}
	if failResp == nil || failResp.QueryID <= resp.QueryID {
		t.Errorf("failed statement query ID = %+v, want > %d", failResp, resp.QueryID)
	}
}
