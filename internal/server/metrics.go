package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tpjoin/internal/engine"
	"tpjoin/internal/plan"
)

// strategyCount is the number of join strategies broken out in the
// per-strategy counters, taken from the engine's enum so a new strategy
// is counted from the day it exists.
const strategyCount = int(engine.NumStrategies)

// Metrics are the server's monotonic counters (plus the active-session
// gauge), updated atomically by the session goroutines. Snapshot returns
// a consistent-enough point-in-time copy; Render produces a
// Prometheus-style text exposition served by the \metrics builtin.
//
// Besides the totals, queries, rows and execution time are broken out per
// join strategy (the session's SET strategy at execution time), so NJ vs
// PNJ vs TA server-side throughput is observable without a profiler, and
// the last query's wall time and row count are exported as gauges.
type Metrics struct {
	sessionsOpened atomic.Int64
	sessionsActive atomic.Int64
	queriesServed  atomic.Int64
	queryErrors    atomic.Int64
	queryTimeouts  atomic.Int64
	rowsReturned   atomic.Int64
	execMicros     atomic.Int64

	// lastQuery holds both last-query values behind one pointer, so a
	// \metrics scrape never reports a torn pair (rows from one query,
	// seconds from another) under concurrent sessions.
	lastQuery atomic.Pointer[lastQuerySample]

	perStrategy [strategyCount]strategyMetrics

	// autoPicks counts, per physical strategy, how many TP joins the
	// cost-based picker (SET strategy = auto) routed there — the server's
	// view of which side of the paper's workload dichotomy its traffic
	// lands on.
	autoPicks [strategyCount]atomic.Int64

	// perOp aggregates the per-operator ANALYZE counters (rows produced
	// and inclusive wall time per operator kind) across every EXPLAIN
	// ANALYZE the server executed — the same counters the ANALYZE tree
	// reports per query, accumulated for \metrics. Guarded by opMu;
	// ANALYZE is a diagnostic path, so a mutex (not atomics) is fine.
	opMu  sync.Mutex
	perOp map[string]*opCounters
}

type opCounters struct {
	nodes  int64
	rows   int64
	micros int64
}

// recordAnalyze folds one executed ANALYZE plan into the per-operator
// counters, keyed by operator kind (the first token of the node
// description, e.g. "TPJoin", "Scan").
func (m *Metrics) recordAnalyze(t *plan.Tree) {
	if t == nil || !t.Analyze || t.Root == nil {
		return
	}
	m.opMu.Lock()
	defer m.opMu.Unlock()
	if m.perOp == nil {
		m.perOp = make(map[string]*opCounters)
	}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		kind, _, _ := strings.Cut(n.Desc, " ")
		c := m.perOp[kind]
		if c == nil {
			c = &opCounters{}
			m.perOp[kind] = c
		}
		c.nodes++
		c.rows += n.Rows
		c.micros += n.TimeUS
		for _, k := range n.Children {
			walk(k)
		}
	}
	walk(t.Root)
}

type lastQuerySample struct {
	micros int64
	rows   int64
}

type strategyMetrics struct {
	queries atomic.Int64
	rows    atomic.Int64
	micros  atomic.Int64
}

// recordAutoPick counts one cost-based strategy pick.
func (m *Metrics) recordAutoPick(strategy engine.Strategy) {
	if int(strategy) < strategyCount {
		m.autoPicks[strategy].Add(1)
	}
}

// recordQuery attributes one executed query to its join strategy and
// updates the last-query gauges.
func (m *Metrics) recordQuery(strategy engine.Strategy, rows int, micros int64) {
	m.lastQuery.Store(&lastQuerySample{micros: micros, rows: int64(rows)})
	if int(strategy) >= strategyCount {
		return
	}
	sm := &m.perStrategy[strategy]
	sm.queries.Add(1)
	sm.rows.Add(int64(rows))
	sm.micros.Add(micros)
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	SessionsOpened int64
	SessionsActive int64
	QueriesServed  int64
	QueryErrors    int64
	QueryTimeouts  int64
	RowsReturned   int64
	ExecMicros     int64

	LastQueryMicros int64
	LastQueryRows   int64

	PerStrategy [strategyCount]StrategySnapshot
	AutoPicks   [strategyCount]int64
	PerOperator map[string]OperatorSnapshot
}

// OperatorSnapshot is the per-operator-kind slice of the ANALYZE
// counters.
type OperatorSnapshot struct {
	Nodes  int64
	Rows   int64
	Micros int64
}

// StrategySnapshot is the per-strategy slice of the counters.
type StrategySnapshot struct {
	Queries int64
	Rows    int64
	Micros  int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		SessionsOpened: m.sessionsOpened.Load(),
		SessionsActive: m.sessionsActive.Load(),
		QueriesServed:  m.queriesServed.Load(),
		QueryErrors:    m.queryErrors.Load(),
		QueryTimeouts:  m.queryTimeouts.Load(),
		RowsReturned:   m.rowsReturned.Load(),
		ExecMicros:     m.execMicros.Load(),
	}
	if lq := m.lastQuery.Load(); lq != nil {
		s.LastQueryMicros = lq.micros
		s.LastQueryRows = lq.rows
	}
	for i := range m.perStrategy {
		s.PerStrategy[i] = StrategySnapshot{
			Queries: m.perStrategy[i].queries.Load(),
			Rows:    m.perStrategy[i].rows.Load(),
			Micros:  m.perStrategy[i].micros.Load(),
		}
		s.AutoPicks[i] = m.autoPicks[i].Load()
	}
	m.opMu.Lock()
	if len(m.perOp) > 0 {
		s.PerOperator = make(map[string]OperatorSnapshot, len(m.perOp))
		for k, c := range m.perOp {
			s.PerOperator[k] = OperatorSnapshot{Nodes: c.nodes, Rows: c.rows, Micros: c.micros}
		}
	}
	m.opMu.Unlock()
	return s
}

// Render writes the counters in Prometheus text-exposition style.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tpserverd_sessions_opened_total %d\n", s.SessionsOpened)
	fmt.Fprintf(&b, "tpserverd_sessions_active %d\n", s.SessionsActive)
	fmt.Fprintf(&b, "tpserverd_queries_served_total %d\n", s.QueriesServed)
	fmt.Fprintf(&b, "tpserverd_query_errors_total %d\n", s.QueryErrors)
	fmt.Fprintf(&b, "tpserverd_query_timeouts_total %d\n", s.QueryTimeouts)
	fmt.Fprintf(&b, "tpserverd_rows_returned_total %d\n", s.RowsReturned)
	fmt.Fprintf(&b, "tpserverd_exec_seconds_total %g\n", float64(s.ExecMicros)/1e6)
	fmt.Fprintf(&b, "tpserverd_last_query_seconds %g\n", float64(s.LastQueryMicros)/1e6)
	fmt.Fprintf(&b, "tpserverd_last_query_rows %d\n", s.LastQueryRows)
	for i, ss := range s.PerStrategy {
		label := engine.Strategy(i).String()
		fmt.Fprintf(&b, "tpserverd_strategy_queries_total{strategy=%q} %d\n", label, ss.Queries)
		fmt.Fprintf(&b, "tpserverd_strategy_rows_total{strategy=%q} %d\n", label, ss.Rows)
		fmt.Fprintf(&b, "tpserverd_strategy_exec_seconds_total{strategy=%q} %g\n", label, float64(ss.Micros)/1e6)
		fmt.Fprintf(&b, "tpserverd_auto_strategy_total{strategy=%q} %d\n", label, s.AutoPicks[i])
	}
	ops := make([]string, 0, len(s.PerOperator))
	for k := range s.PerOperator {
		ops = append(ops, k)
	}
	sort.Strings(ops)
	for _, k := range ops {
		os := s.PerOperator[k]
		fmt.Fprintf(&b, "tpserverd_analyze_nodes_total{op=%q} %d\n", k, os.Nodes)
		fmt.Fprintf(&b, "tpserverd_analyze_rows_total{op=%q} %d\n", k, os.Rows)
		fmt.Fprintf(&b, "tpserverd_analyze_seconds_total{op=%q} %g\n", k, float64(os.Micros)/1e6)
	}
	return b.String()
}
