package server

import "tpjoin/internal/obs"

// The metrics collector lives in internal/obs since the observability
// layer landed: the REPL's \metrics builtin and tpserverd's HTTP /metrics
// endpoint render through the same obs.MetricsSnapshot.Render path, so
// the type had to move below both surfaces. These aliases keep the
// server API spelling (server.MetricsSnapshot) stable.

// MetricsSnapshot is a point-in-time copy of the server counters; see
// obs.MetricsSnapshot.
type MetricsSnapshot = obs.MetricsSnapshot

// StrategySnapshot is the per-strategy slice of the counters.
type StrategySnapshot = obs.StrategySnapshot

// OperatorSnapshot is the per-operator-kind slice of the ANALYZE
// counters.
type OperatorSnapshot = obs.OperatorSnapshot
