package server

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Metrics are the server's monotonic counters (plus the active-session
// gauge), updated atomically by the session goroutines. Snapshot returns
// a consistent-enough point-in-time copy; Render produces a
// Prometheus-style text exposition served by the \metrics builtin.
type Metrics struct {
	sessionsOpened atomic.Int64
	sessionsActive atomic.Int64
	queriesServed  atomic.Int64
	queryErrors    atomic.Int64
	queryTimeouts  atomic.Int64
	rowsReturned   atomic.Int64
	execMicros     atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	SessionsOpened int64
	SessionsActive int64
	QueriesServed  int64
	QueryErrors    int64
	QueryTimeouts  int64
	RowsReturned   int64
	ExecMicros     int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		SessionsOpened: m.sessionsOpened.Load(),
		SessionsActive: m.sessionsActive.Load(),
		QueriesServed:  m.queriesServed.Load(),
		QueryErrors:    m.queryErrors.Load(),
		QueryTimeouts:  m.queryTimeouts.Load(),
		RowsReturned:   m.rowsReturned.Load(),
		ExecMicros:     m.execMicros.Load(),
	}
}

// Render writes the counters in Prometheus text-exposition style.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tpserverd_sessions_opened_total %d\n", s.SessionsOpened)
	fmt.Fprintf(&b, "tpserverd_sessions_active %d\n", s.SessionsActive)
	fmt.Fprintf(&b, "tpserverd_queries_served_total %d\n", s.QueriesServed)
	fmt.Fprintf(&b, "tpserverd_query_errors_total %d\n", s.QueryErrors)
	fmt.Fprintf(&b, "tpserverd_query_timeouts_total %d\n", s.QueryTimeouts)
	fmt.Fprintf(&b, "tpserverd_rows_returned_total %d\n", s.RowsReturned)
	fmt.Fprintf(&b, "tpserverd_exec_seconds_total %g\n", float64(s.ExecMicros)/1e6)
	return b.String()
}
