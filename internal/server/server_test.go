package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/client"
	"tpjoin/internal/dataset"
	"tpjoin/internal/server"
	"tpjoin/internal/shell"
)

// testCatalog builds the shared catalog: the paper's Fig. 1a relations
// plus synthetic Webkit and Meteo workloads.
func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	shell.PreloadFig1a(cat)
	wr, ws := dataset.Webkit(300, 1)
	wr.Name, ws.Name = "w_r", "w_s"
	mr, ms := dataset.Meteo(300, 1)
	mr.Name, ms.Name = "m_r", "m_s"
	if err := cat.Register(wr); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(ws); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(mr); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(ms); err != nil {
		t.Fatal(err)
	}
	return cat
}

// startServer serves cat on a loopback listener and returns the dial
// address. The server is shut down with the test.
func startServer(t testing.TB, cat *catalog.Catalog, cfg server.Config) (*server.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cat, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// The paper's joins with negation (LEFT / FULL / ANTI) over Fig. 1a and
// both synthetic workloads.
var joinQueries = []string{
	"SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc",
	"SELECT * FROM a TP FULL JOIN b ON a.Loc = b.Loc",
	"SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc",
	"SELECT * FROM w_r TP LEFT JOIN w_s ON w_r.Key = w_s.Key",
	"SELECT * FROM w_r TP ANTI JOIN w_s ON w_r.Key = w_s.Key",
	"SELECT * FROM m_r TP FULL JOIN m_s ON m_r.Key = m_s.Key",
	"SELECT * FROM m_r TP ANTI JOIN m_s ON m_r.Key = m_s.Key",
}

var strategies = []string{"nj", "ta", "pnj", "pta"}

// referenceOutputs renders every (strategy, query) pair through an
// in-process shell over the same catalog.
func referenceOutputs(t testing.TB, cat *catalog.Catalog) map[string]string {
	t.Helper()
	want := make(map[string]string)
	for _, strat := range strategies {
		var buf bytes.Buffer
		sh := &shell.Shell{Core: shell.NewCore(cat), Out: &buf}
		if quit := sh.Execute("SET strategy = " + strat); quit {
			t.Fatal("unexpected quit")
		}
		if got := buf.String(); got != "ok\n" {
			t.Fatalf("SET failed: %q", got)
		}
		for _, q := range joinQueries {
			buf.Reset()
			sh.Execute(q)
			out := buf.String()
			if strings.Contains(out, "error") {
				t.Fatalf("reference %s %q: %s", strat, q, out)
			}
			want[strat+"|"+q] = out
		}
	}
	return want
}

// TestConcurrentSessionsByteIdentical is the end-to-end acceptance test:
// ≥8 concurrent sessions on a loopback listener, each running TP
// LEFT/FULL/ANTI joins under both the NJ and TA strategies against the
// Fig. 1a relations and the Webkit/Meteo workloads, asserting the remote
// rendering is byte-identical to in-process shell execution.
func TestConcurrentSessionsByteIdentical(t *testing.T) {
	cat := testCatalog(t)
	want := referenceOutputs(t, cat)
	srv, addr := startServer(t, cat, server.Config{DefaultTimeout: time.Minute})

	const sessions = 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ctx := context.Background()
			// Half the sessions exercise ta first, half nj first, so both
			// strategies run concurrently at every moment.
			order := append([]string(nil), strategies...)
			if i%2 == 1 {
				order[0], order[1] = order[1], order[0]
			}
			for _, strat := range order {
				resp, err := c.Query(ctx, "SET strategy = "+strat)
				if err != nil {
					errs <- fmt.Errorf("session %d: SET %s: %w", i, strat, err)
					return
				}
				if resp.Kind != server.KindMessage || resp.Message != "ok\n" {
					errs <- fmt.Errorf("session %d: SET %s: %+v", i, strat, resp)
					return
				}
				for _, q := range joinQueries {
					resp, err := c.Query(ctx, q)
					if err != nil {
						errs <- fmt.Errorf("session %d: %s %q: %w", i, strat, q, err)
						return
					}
					var buf bytes.Buffer
					client.Render(&buf, resp)
					if got := buf.String(); got != want[strat+"|"+q] {
						errs <- fmt.Errorf("session %d: %s %q:\nserver:\n%s\nlocal:\n%s",
							i, strat, q, got, want[strat+"|"+q])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.Metrics()
	if m.SessionsOpened < sessions {
		t.Errorf("sessions opened = %d, want ≥ %d", m.SessionsOpened, sessions)
	}
	wantQueries := int64(sessions * len(strategies) * (len(joinQueries) + 1))
	if m.QueriesServed < wantQueries {
		t.Errorf("queries served = %d, want ≥ %d", m.QueriesServed, wantQueries)
	}
	if m.RowsReturned == 0 {
		t.Error("rows returned = 0")
	}
	if m.QueryErrors != 0 {
		t.Errorf("query errors = %d, want 0", m.QueryErrors)
	}
}

// TestSessionIsolationAndSharedDDL: per-session SET isolation, shared
// CREATE TABLE AS / \drop visibility across sessions, and EXPLAIN
// passthrough showing the session strategy.
func TestSessionIsolationAndSharedDDL(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx := context.Background()

	// SET on c1 must not leak into c2's plans.
	if _, err := c1.Query(ctx, "SET strategy = ta"); err != nil {
		t.Fatal(err)
	}
	r1, err := c1.Query(ctx, "EXPLAIN SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r1.Message, "strategy=TA") {
		t.Errorf("c1 explain lost its session setting:\n%s", r1.Message)
	}
	r2, err := c2.Query(ctx, "EXPLAIN SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r2.Message, "strategy=NJ") {
		t.Errorf("c2 must keep the default NJ strategy:\n%s", r2.Message)
	}

	// DDL on c2 is visible to c1 (shared catalog). c2 plans under NJ, so
	// the materialized result is the paper's 7-row Fig. 1b relation.
	if _, err := c2.Query(ctx, "CREATE TABLE shared_q AS SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"); err != nil {
		t.Fatal(err)
	}
	resp, err := c2.Query(ctx, "SELECT * FROM shared_q")
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != 7 {
		t.Errorf("shared_q rows = %d, want 7", resp.RowCount)
	}
	if _, err := c2.Query(ctx, `\drop shared_q`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Query(ctx, "SELECT * FROM shared_q"); err == nil {
		t.Error("dropped relation must be gone for every session")
	} else if _, ok := err.(*client.ServerError); !ok {
		t.Errorf("want ServerError, got %T: %v", err, err)
	}
	// The session survives a query error.
	if _, err := c1.Query(ctx, "SELECT * FROM a"); err != nil {
		t.Errorf("session must survive a failed query: %v", err)
	}

	// Usage lines keep their REPL-verbatim marking across the wire.
	_, err = c1.Query(ctx, `\load toofew`)
	var se *client.ServerError
	if !errors.As(err, &se) || !se.Usage || !strings.HasPrefix(se.Msg, "usage:") {
		t.Errorf("usage error lost its marking: %v", err)
	}
}

// TestConcurrentDDLChurn hammers the shared catalog with CREATE TABLE AS,
// SELECT and \drop from many sessions (run under -race).
func TestConcurrentDDLChurn(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	const sessions = 8
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			ctx := context.Background()
			private := fmt.Sprintf("t%d", i)
			for round := 0; round < 10; round++ {
				if _, err := c.Query(ctx, fmt.Sprintf(
					"CREATE TABLE %s AS SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc", private)); err != nil {
					t.Errorf("session %d: create: %v", i, err)
					return
				}
				// Everyone also churns one hot shared name.
				if _, err := c.Query(ctx,
					"CREATE TABLE hot AS SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"); err != nil {
					t.Errorf("session %d: create hot: %v", i, err)
					return
				}
				if resp, err := c.Query(ctx, "SELECT * FROM "+private); err != nil {
					t.Errorf("session %d: select: %v", i, err)
					return
				} else if resp.RowCount == 0 {
					t.Errorf("session %d: empty anti join", i)
					return
				}
				if _, err := c.Query(ctx, `\drop `+private); err != nil {
					t.Errorf("session %d: drop: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestPanicContainment: an engine panic triggered by one client (joining
// a stale CREATE TABLE snapshot against a regenerated workload whose
// base events carry conflicting probabilities) must become that query's
// error, not kill the server.
func TestPanicContainment(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, q := range []string{
		`\gen webkit 50`,
		"CREATE TABLE k AS SELECT * FROM r",
		`\gen meteo 50`,
	} {
		if _, err := c.Query(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	_, err = c.Query(ctx, "SELECT * FROM k TP LEFT JOIN r ON k.Key = r.Key")
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "panic") {
		t.Fatalf("want contained panic error, got %v", err)
	}
	// The session — and the server — survive.
	if resp, err := c.Query(ctx, "SELECT * FROM a"); err != nil || resp.RowCount != 2 {
		t.Fatalf("session dead after contained panic: %v", err)
	}
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("server dead after contained panic: %v", err)
	}
	c2.Close()
}

// TestQueryTimeout: with a vanishingly small default timeout every SELECT
// is cancelled by its context deadline, deterministically.
func TestQueryTimeout(t *testing.T) {
	cat := testCatalog(t)
	srv, addr := startServer(t, cat, server.Config{DefaultTimeout: time.Nanosecond})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	_, err = c.Query(ctx, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "context deadline exceeded") {
		t.Fatalf("want deadline-exceeded ServerError, got %v", err)
	}
	if m := srv.Metrics(); m.QueryTimeouts == 0 {
		t.Errorf("timeout counter not incremented: %+v", m)
	}
	// SET does not execute a query plan and still succeeds.
	if _, err := c.Query(ctx, "SET strategy = ta"); err != nil {
		t.Errorf("SET must not be subject to execution timeout: %v", err)
	}
}

// TestMetricsBuiltin checks the \metrics exposition.
func TestMetricsBuiltin(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Query(ctx, "SELECT * FROM a"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(ctx, `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tpserverd_sessions_active 1",
		"tpserverd_queries_served_total 1",
		"tpserverd_rows_returned_total 2",
		"tpserverd_last_query_rows 2",
		"tpserverd_last_query_seconds ",
		`tpserverd_strategy_queries_total{strategy="NJ"} 1`,
		`tpserverd_strategy_rows_total{strategy="NJ"} 2`,
	} {
		if !strings.Contains(resp.Message, want) {
			t.Errorf("\\metrics missing %q:\n%s", want, resp.Message)
		}
	}

	// Queries run after SET strategy = pnj are attributed to PNJ.
	if _, err := c.Query(ctx, "SET strategy = pnj"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Query(ctx, `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tpserverd_strategy_queries_total{strategy="PNJ"} 1`,
		`tpserverd_strategy_rows_total{strategy="PNJ"} 7`,
		`tpserverd_strategy_exec_seconds_total{strategy="PNJ"} `,
		"tpserverd_last_query_rows 7",
	} {
		if !strings.Contains(resp.Message, want) {
			t.Errorf("\\metrics missing %q:\n%s", want, resp.Message)
		}
	}
}

// TestQuitClosesSession: \q gets a quit response and the server hangs up.
func TestQuitClosesSession(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(context.Background(), `\q`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != server.KindQuit {
		t.Fatalf("kind = %s, want quit", resp.Kind)
	}
	if _, err := c.Query(context.Background(), "SELECT * FROM a"); err == nil {
		t.Error("query after \\q must fail: connection is closed")
	}
}

// TestAutoStrategyMetrics: the default (SET strategy = auto) session's
// cost-based picks are counted per physical strategy in
// tpserverd_auto_strategy_total, while forced SET strategies are not.
func TestAutoStrategyMetrics(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Join-free queries make no pick.
	if _, err := c.Query(ctx, "SELECT * FROM a"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(ctx, `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Message, `tpserverd_auto_strategy_total{strategy="NJ"} 0`) {
		t.Errorf("join-free query must not count a pick:\n%s", resp.Message)
	}

	// A Fig. 1a join under the default session: the picker chooses NJ
	// (tiny, selective input) and the pick is counted; EXPLAIN plans a
	// join too, so it also counts.
	if _, err := c.Query(ctx, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"); err != nil {
		t.Fatal(err)
	}
	r, err := c.Query(ctx, "EXPLAIN SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "strategy=NJ (auto)") || !strings.Contains(r.Message, "cost: NJ=") {
		t.Errorf("auto EXPLAIN must show the pick and the cost estimates:\n%s", r.Message)
	}
	resp, err = c.Query(ctx, `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Message, `tpserverd_auto_strategy_total{strategy="NJ"} 2`) {
		t.Errorf("auto picks not counted:\n%s", resp.Message)
	}

	// Forced strategies bypass the picker and the counter.
	if _, err := c.Query(ctx, "SET strategy = ta"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc"); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Query(ctx, `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Message, `tpserverd_auto_strategy_total{strategy="TA"} 0`) {
		t.Errorf("forced TA must not count as an auto pick:\n%s", resp.Message)
	}
	if !strings.Contains(resp.Message, `tpserverd_strategy_queries_total{strategy="TA"} 1`) {
		t.Errorf("forced TA query not attributed:\n%s", resp.Message)
	}
	// The NJ pick count must not have moved: SET statements, backslash
	// commands and forced queries plan no auto join, and a statement that
	// never reaches the planner must not leak the previous statement's
	// pick into the counter.
	if !strings.Contains(resp.Message, `tpserverd_auto_strategy_total{strategy="NJ"} 2`) {
		t.Errorf("stale planned-join state leaked into the auto counter:\n%s", resp.Message)
	}
}

// TestStatsBuiltinOverWire: \stats goes through the shared Core, so the
// remote surface renders it byte-identically to the REPL.
func TestStatsBuiltinOverWire(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(context.Background(), `\stats w_r`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"w_r: 150 tuples", "Key:", "group mean", "time: span"} {
		if !strings.Contains(resp.Message, want) {
			t.Errorf("\\stats over the wire missing %q:\n%s", want, resp.Message)
		}
	}
}
