package server

import (
	"fmt"
	"io"

	"tpjoin/internal/interval"
	"tpjoin/internal/plan"
	"tpjoin/internal/shell"
	"tpjoin/internal/tp"
)

// The wire protocol is newline-delimited JSON over a stream transport:
// the client writes one Request per line, the server answers with exactly
// one Response per Request, in order. One connection is one session: it
// owns its SET settings — `SET strategy = auto|nj|ta|pnj|pta` selects the
// physical join (pnj and pta are the partitioned-parallel executors of
// the NJ pipeline and the TA baseline), `SET join_workers = <n>` their
// worker count (0 = one per CPU), `SET ta_nested_loop = on|off` the TA
// plan shape, `SET calibration = '<file>'` the cost-model constants the
// auto picker prices with — and shares the server's catalog with every
// other session. `PREPARE name AS SELECT ...` (with `?` or `$1`
// placeholders), `EXECUTE name [(v, ...)]` and `DEALLOCATE name` manage
// session-local prepared statements; the planning behind EXECUTE (stats
// profiling, cost-model strategy pick) is memoized in a server-wide plan
// cache shared by all sessions, invalidated when a referenced relation's
// (length, Version) state changes — Response.PlanCache reports "hit" or
// "miss" per EXECUTE. The `\metrics` builtin reports per-strategy throughput
// (queries/rows/exec-seconds per NJ, TA, PNJ and PTA) plus the last
// query's wall time and row count, so strategy comparisons need no
// profiler.
// EXPLAIN ANALYZE responses carry the per-operator tree (rows, wall time,
// stage counters, abort reason) both rendered in Message and as the
// structured Plan field. Every evaluated statement additionally carries
// the server-assigned Response.QueryID, which joins the response to its
// structured query-log record and its EXPLAIN ANALYZE trailer.

// Request is one client → server message.
type Request struct {
	// ID is echoed back in the matching Response.
	ID uint64 `json:"id"`
	// Query is an input line in the shell dialect: a SQL statement or a
	// backslash command.
	Query string `json:"query"`
	// TimeoutMS overrides the server's default per-query timeout for this
	// request, in milliseconds. It is capped by the server's MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Result kinds on the wire.
const (
	KindNone    = "none"
	KindQuit    = "quit"
	KindMessage = "message"
	KindRows    = "rows"
	KindExplain = "explain"
)

// Row is one result tuple: the fact attribute values (rendered as
// strings), the lineage formula (rendered), the validity interval
// endpoints and the tuple probability.
type Row struct {
	Fact    []string `json:"fact"`
	Lineage string   `json:"lineage,omitempty"`
	TStart  int64    `json:"tstart"`
	TEnd    int64    `json:"tend"`
	Prob    float64  `json:"p"`
}

// The canonical Response.ErrClass vocabulary. Clients dispatch retry
// behavior on these strings (client.IsOverloaded), the query log and
// dashboards key alerts off them, so the set only ever grows — never
// rename a member. tplint's errclass analyzer rejects any other string
// flowing into an ErrClass field; packages below server in the import
// graph (internal/obs) repeat the literals and rely on that analyzer
// plus TestErrClassVocabularySync to stay in step.
const (
	// ErrClassOverloaded: rejected by admission control before any
	// planning — the statement never ran, safe to retry with backoff.
	ErrClassOverloaded = "overloaded"
	// ErrClassBudget: the query exceeded its SET memory_budget.
	ErrClassBudget = "budget"
	// ErrClassTimeout: the statement's deadline expired mid-run.
	ErrClassTimeout = "timeout"
	// ErrClassCanceled: the query context was canceled (client gone,
	// server draining).
	ErrClassCanceled = "canceled"
	// ErrClassUsage: malformed statement or unknown command; the message
	// is a usage line, not an error.
	ErrClassUsage = "usage"
	// ErrClassPanic: the engine panicked and containment converted it to
	// this query's error.
	ErrClassPanic = "panic"
	// ErrClassError: every other evaluation failure.
	ErrClassError = "error"
)

// Response is one server → client message.
type Response struct {
	ID    uint64 `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Usage marks Error as a usage line or unknown-command notice, which
	// the REPL renders verbatim (no "error:" prefix) — clients should do
	// the same.
	Usage bool `json:"usage,omitempty"`
	// ErrClass classifies Error so clients can react without parsing the
	// message: "overloaded" (rejected by admission control before any
	// planning — safe to retry with backoff; tpcli does), "budget" (the
	// query exceeded its SET memory_budget and was aborted), "timeout",
	// "canceled", "usage", "panic" or "error". Empty on success.
	ErrClass string   `json:"err_class,omitempty"`
	Kind     string   `json:"kind"`
	Message  string   `json:"message,omitempty"`
	Columns  []string `json:"columns,omitempty"`
	Rows     []Row    `json:"rows,omitempty"`
	// Plan carries the structured EXPLAIN [ANALYZE] tree for KindExplain
	// responses: per-operator rows, wall-time and stage counters under
	// ANALYZE, plus the abort reason when a timeout interrupted the run.
	// Message holds the same tree rendered as text.
	Plan     *plan.Tree `json:"plan,omitempty"`
	RowCount int        `json:"row_count"`
	// PlanCache reports how an EXECUTE (or EXPLAIN EXECUTE) statement got
	// its plan: "hit" — the server-wide plan cache supplied the memoized
	// statistics and strategy pick — or "miss" — planned fresh, entry
	// published for the next EXECUTE of the same shape (any session).
	// Empty for every other statement kind. tpcli prints it in verbose
	// mode.
	PlanCache string `json:"plan_cache,omitempty"`
	// QueryID is the server-assigned monotonic per-process query identity
	// for this statement (0 for server builtins like \metrics, which
	// evaluate no statement). The same ID appears on the statement's
	// structured query-log record and, for EXPLAIN ANALYZE, in the plan
	// trailer — the join key between a slow-query log line, its ANALYZE
	// tree and the latency histograms. tpcli prints it in verbose mode.
	QueryID   uint64 `json:"query_id,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// encodeResult converts a shell evaluation result into a Response body.
func encodeResult(res shell.Result) Response {
	resp := Response{OK: true, PlanCache: res.PlanCache}
	switch res.Kind {
	case shell.KindNone:
		resp.Kind = KindNone
	case shell.KindQuit:
		resp.Kind = KindQuit
	case shell.KindMessage:
		resp.Kind = KindMessage
		resp.Message = res.Text
	case shell.KindExplain:
		resp.Kind = KindExplain
		resp.Message = res.Text
		resp.Plan = res.Plan
	case shell.KindRows:
		resp.Kind = KindRows
		resp.Columns = append([]string(nil), res.Rel.Attrs...)
		resp.Rows = encodeRows(res.Rel)
		resp.RowCount = res.Rel.Len()
	}
	return resp
}

func encodeRows(rel *tp.Relation) []Row {
	rows := make([]Row, 0, rel.Len())
	for _, t := range rel.Tuples {
		fact := make([]string, len(t.Fact))
		for i, v := range t.Fact {
			fact[i] = v.String()
		}
		rows = append(rows, Row{
			Fact:    fact,
			Lineage: fmt.Sprintf("%s", t.Lineage),
			TStart:  t.T.Start,
			TEnd:    t.T.End,
			Prob:    t.Prob,
		})
	}
	return rows
}

// RenderResponse writes resp to w exactly as the in-process shell renders
// the same statement (shell.RenderResult): tabular rows for SELECT,
// verbatim text for messages and EXPLAIN. Remote and local output are
// byte-identical by construction — the same format verbs over the same
// values.
func RenderResponse(w io.Writer, resp *Response) {
	switch resp.Kind {
	case KindMessage, KindExplain:
		io.WriteString(w, resp.Message)
	case KindRows:
		shell.RenderHeader(w, resp.Columns)
		for _, r := range resp.Rows {
			shell.RenderRow(w, r.Fact, r.Lineage, interval.Interval{Start: r.TStart, End: r.TEnd}, r.Prob)
		}
		shell.RenderFooter(w, len(resp.Rows))
	}
}
