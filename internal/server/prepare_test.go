package server_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"tpjoin/internal/client"
	"tpjoin/internal/server"
)

// TestPrepareExecuteOverTheWire drives the PREPARE/EXECUTE/DEALLOCATE
// lifecycle through the NDJSON protocol: the plan-cache outcome travels
// in Response.PlanCache, repeated EXECUTEs hit, and the result rows stay
// identical to the inline SELECT on the same session.
func TestPrepareExecuteOverTheWire(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	resp, err := c.Query(ctx, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc WHERE a.Loc = $1")
	if err != nil || !strings.Contains(resp.Message, "prepared q (1 parameter(s))") {
		t.Fatalf("PREPARE: %v / %q", err, resp.Message)
	}
	if resp.PlanCache != "" {
		t.Errorf("PREPARE itself plans nothing, PlanCache = %q", resp.PlanCache)
	}

	ref, err := c.Query(ctx, "SELECT * FROM a TP JOIN b ON a.Loc = b.Loc WHERE a.Loc = 'ZAK'")
	if err != nil {
		t.Fatal(err)
	}
	if ref.PlanCache != "" {
		t.Errorf("plain SELECT must not touch the plan cache, PlanCache = %q", ref.PlanCache)
	}

	first, err := c.Query(ctx, "EXECUTE q ('ZAK')")
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCache != "miss" {
		t.Errorf("first EXECUTE: PlanCache = %q, want miss", first.PlanCache)
	}
	second, err := c.Query(ctx, "EXECUTE q ('ZAK')")
	if err != nil {
		t.Fatal(err)
	}
	if second.PlanCache != "hit" {
		t.Errorf("second EXECUTE: PlanCache = %q, want hit", second.PlanCache)
	}
	for name, got := range map[string]*server.Response{"cold": first, "hot": second} {
		if got.RowCount != ref.RowCount || len(got.Rows) != len(ref.Rows) {
			t.Fatalf("%s EXECUTE: %d rows, inline SELECT %d", name, got.RowCount, ref.RowCount)
		}
		for i := range ref.Rows {
			if fmt.Sprintf("%+v", ref.Rows[i]) != fmt.Sprintf("%+v", got.Rows[i]) {
				t.Errorf("%s EXECUTE row %d: %+v, want %+v", name, i, got.Rows[i], ref.Rows[i])
			}
		}
	}

	if resp, err = c.Query(ctx, "DEALLOCATE q"); err != nil {
		t.Fatalf("DEALLOCATE: %v (%q)", err, resp.Message)
	}
	if _, err = c.Query(ctx, "EXECUTE q ('ZAK')"); err == nil ||
		!strings.Contains(err.Error(), "no prepared statement") {
		t.Errorf("EXECUTE after DEALLOCATE: %v, want no-prepared-statement error", err)
	}
}

// TestPlanCacheSharedAcrossSessions: prepared-statement names are
// session-local, the planning behind them is not — a second session
// EXECUTE-ing the same shape hits the entry the first session planned.
func TestPlanCacheSharedAcrossSessions(t *testing.T) {
	cat := testCatalog(t)
	srv, addr := startServer(t, cat, server.Config{})
	ctx := context.Background()

	const prep = "PREPARE mine AS SELECT * FROM w_r TP JOIN w_s ON w_r.Key = w_s.Key"
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Query(ctx, prep); err != nil {
		t.Fatal(err)
	}
	if resp, err := c1.Query(ctx, "EXECUTE mine"); err != nil || resp.PlanCache != "miss" {
		t.Fatalf("session 1 first EXECUTE: %v / %q", err, resp.PlanCache)
	}

	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The name is session-local: session 2 cannot EXECUTE session 1's.
	if _, err := c2.Query(ctx, "EXECUTE mine"); err == nil {
		t.Error("prepared names must be session-local")
	}
	if _, err := c2.Query(ctx, prep); err != nil {
		t.Fatal(err)
	}
	if resp, err := c2.Query(ctx, "EXECUTE mine"); err != nil || resp.PlanCache != "hit" {
		t.Fatalf("session 2 EXECUTE must hit session 1's cached plan: %v / %q", err, resp.PlanCache)
	}
	if st := srv.PlanCache().Stats(); st.Hits < 1 || st.Misses < 1 {
		t.Errorf("server cache stats = %+v, want at least one hit and one miss", st)
	}
}

// TestPlanCacheDisabled: a negative PlanCacheSize turns the cache off;
// EXECUTE still works, always planning fresh.
func TestPlanCacheDisabled(t *testing.T) {
	cat := testCatalog(t)
	srv, addr := startServer(t, cat, server.Config{PlanCacheSize: -1})
	if srv.PlanCache() != nil {
		t.Fatal("negative PlanCacheSize must disable the cache")
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Query(ctx, "PREPARE q AS SELECT * FROM a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := c.Query(ctx, "EXECUTE q")
		if err != nil || resp.PlanCache != "miss" {
			t.Fatalf("EXECUTE %d without a cache: %v / %q, want miss", i, err, resp.PlanCache)
		}
	}
}

// TestPlanCacheMetricsOverHTTP: the plan-cache counters reach the
// \metrics builtin (and therefore GET /metrics, which renders the same
// snapshot).
func TestPlanCacheMetricsExposition(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, q := range []string{"PREPARE q AS SELECT * FROM a", "EXECUTE q", "EXECUTE q"} {
		if _, err := c.Query(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	resp, err := c.Query(ctx, `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tpserverd_plan_cache_hits_total 1",
		"tpserverd_plan_cache_misses_total 1",
		"tpserverd_plan_cache_entries 1",
	} {
		if !strings.Contains(resp.Message, want) {
			t.Errorf("\\metrics lacks %q:\n%s", want, resp.Message)
		}
	}
}
