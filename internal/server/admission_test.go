package server_test

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tpjoin/internal/client"
	"tpjoin/internal/fault"
	"tpjoin/internal/server"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOverloadSheddingE2E is the admission-control acceptance test: a
// server with 2 query slots and a 2-seat wait queue, hit with 8
// concurrent slow statements, must end up with exactly 2 running, 2
// queued and 4 rejected with ErrClass "overloaded" — and the metrics,
// /metrics exposition and /readyz must all agree with that accounting.
func TestOverloadSheddingE2E(t *testing.T) {
	expectGoroutines(t)
	srv, addr, base := startServerWithAdmin(t, server.Config{
		MaxInflight: 2,
		QueueDepth:  2,
		QueueWait:   time.Minute, // queued statements must outlive the assertions
	})
	waitReady(t, base)

	// The "server.handle" failpoint sits between the admission grant and
	// execution: blocking there holds the two slots deterministically
	// while the rest of the burst piles up behind the gate.
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	fault.Set("server.handle", func() error {
		entered <- struct{}{}
		<-release
		return nil
	})
	t.Cleanup(fault.Reset)
	// Unblock held statements before the server cleanup waits for the
	// session goroutines, even when an assertion above fails the test.
	t.Cleanup(releaseAll)

	const burst = 8
	type outcome struct {
		resp *server.Response
		err  error
	}
	results := make(chan outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				results <- outcome{nil, err}
				return
			}
			defer c.Close()
			resp, err := c.Query(context.Background(), joinQueries[0])
			results <- outcome{resp, err}
		}()
	}

	// Steady state under the blocked slots: 2 statements hold slots, 2
	// wait in the queue, and the other 4 are shed immediately.
	waitFor(t, "2 slot holders", func() bool { return len(entered) == 2 })
	waitFor(t, "4 rejections", func() bool { return srv.Metrics().AdmissionRejected == 4 })
	if m := srv.Metrics(); m.AdmissionAdmitted != 2 || m.AdmissionQueued != 0 || m.AdmissionInflight != 2 {
		t.Errorf("saturated snapshot = admitted %d queued %d inflight %d, want 2/0/2",
			m.AdmissionAdmitted, m.AdmissionQueued, m.AdmissionInflight)
	}
	// Every slot busy and every queue seat taken: readiness degrades so a
	// load balancer stops routing here.
	if code, body := adminGet(t, base+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "saturated") {
		t.Errorf("saturated readyz = %d %q, want 503 saturated", code, body)
	}

	releaseAll()
	wg.Wait()
	close(results)

	var served, shed int
	for r := range results {
		switch {
		case r.err == nil:
			served++
			if r.resp == nil || r.resp.RowCount == 0 {
				t.Errorf("served statement returned no rows: %+v", r.resp)
			}
		case client.IsOverloaded(r.err):
			shed++
			if !strings.Contains(r.err.Error(), "overloaded") {
				t.Errorf("rejection message %q does not say overloaded", r.err)
			}
			if r.resp == nil || r.resp.QueryID == 0 {
				t.Errorf("rejected statement carries no query ID: %+v", r.resp)
			}
			if r.resp.ErrClass != "overloaded" {
				t.Errorf("rejected ErrClass = %q", r.resp.ErrClass)
			}
		default:
			t.Errorf("unexpected failure: %v", r.err)
		}
	}
	if served != 4 || shed != 4 {
		t.Fatalf("served %d shed %d, want 4 served (2 immediate + 2 queued) and 4 shed", served, shed)
	}

	// Final accounting: the 2 queued statements were admitted when the
	// slot holders finished, nothing holds a slot anymore, and the
	// Prometheus exposition renders the same numbers.
	waitFor(t, "inflight to drain", func() bool { return srv.Metrics().AdmissionInflight == 0 })
	if m := srv.Metrics(); m.AdmissionAdmitted != 4 || m.AdmissionQueued != 2 || m.AdmissionRejected != 4 {
		t.Errorf("final snapshot = admitted %d queued %d rejected %d, want 4/2/4",
			m.AdmissionAdmitted, m.AdmissionQueued, m.AdmissionRejected)
	}
	_, text := adminGet(t, base+"/metrics")
	for _, line := range []string{
		"tpserverd_admission_admitted_total 4",
		"tpserverd_admission_queued_total 2",
		"tpserverd_admission_rejected_total 4",
		"tpserverd_admission_inflight 0",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
	if code, _ := adminGet(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after drain = %d, want 200", code)
	}
}

// TestAdmissionQueueWaitExpiry: a statement that waits longer than
// QueueWait for a slot is rejected as overloaded, not left hanging.
func TestAdmissionQueueWaitExpiry(t *testing.T) {
	_, addr := startServer(t, testCatalog(t), server.Config{
		MaxInflight: 1,
		QueueDepth:  1,
		QueueWait:   30 * time.Millisecond,
	})

	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	var holdOnce sync.Once
	releaseHold := func() { holdOnce.Do(func() { close(hold) }) }
	fault.Set("server.handle", func() error {
		select {
		case entered <- struct{}{}:
			<-hold // only the slot holder blocks
		default:
		}
		return nil
	})
	t.Cleanup(fault.Reset)
	t.Cleanup(releaseHold)

	holder, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	done := make(chan error, 1)
	go func() {
		_, err := holder.Query(context.Background(), joinQueries[0])
		done <- err
	}()
	waitFor(t, "slot holder", func() bool { return len(entered) == 1 })

	waiter, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	if _, err := waiter.Query(context.Background(), joinQueries[0]); !client.IsOverloaded(err) {
		t.Fatalf("queued statement past QueueWait: err = %v, want overloaded", err)
	} else if !strings.Contains(err.Error(), "queue wait") {
		t.Errorf("expiry message %q does not mention the queue wait", err)
	}

	releaseHold()
	if err := <-done; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
}

// TestMemoryBudgetE2E: a session-set memory budget aborts an
// over-budget query with ErrClass "budget" while the session — and the
// server — keep serving; SET memory_budget = off lifts it again.
func TestMemoryBudgetE2E(t *testing.T) {
	expectGoroutines(t)
	_, addr := startServer(t, testCatalog(t), server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// NJ charges its batch-pipeline working set up front, so a 16 KiB
	// budget rejects the join before it produces a row.
	for _, q := range []string{"SET strategy = nj", "SET memory_budget = 16kb"} {
		if _, err := c.Query(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	resp, err := c.Query(ctx, joinQueries[5])
	if err == nil {
		t.Fatal("16kb-budget join succeeded")
	}
	se, ok := err.(*client.ServerError)
	if !ok {
		t.Fatalf("want ServerError, got %T: %v", err, err)
	}
	if se.ErrClass != "budget" || resp.ErrClass != "budget" {
		t.Errorf("ErrClass = %q / %q, want budget", se.ErrClass, resp.ErrClass)
	}
	if !strings.Contains(se.Msg, "memory budget exceeded") {
		t.Errorf("budget error %q does not name the budget", se.Msg)
	}

	// The abort is per query: the same session lifts the budget and runs
	// the identical statement to completion.
	if _, err := c.Query(ctx, "SET memory_budget = off"); err != nil {
		t.Fatal(err)
	}
	if resp, err := c.Query(ctx, joinQueries[5]); err != nil || resp.RowCount == 0 {
		t.Fatalf("after SET memory_budget = off: rows=%v err=%v", resp, err)
	}
}

// TestMemoryBudgetServerDefault: the -memory-budget server default
// applies to sessions that never issue SET memory_budget, and a session
// override defeats it.
func TestMemoryBudgetServerDefault(t *testing.T) {
	_, addr := startServer(t, testCatalog(t), server.Config{MemoryBudget: 16 << 10})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Query(ctx, "SET strategy = nj"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(ctx, joinQueries[5])
	se, ok := err.(*client.ServerError)
	if !ok || se.ErrClass != "budget" {
		t.Fatalf("default-budget join: err = %v, want budget class", err)
	}
	if _, err := c.Query(ctx, "SET memory_budget = 1gb"); err != nil {
		t.Fatal(err)
	}
	if resp, err := c.Query(ctx, joinQueries[5]); err != nil || resp.RowCount == 0 {
		t.Fatalf("override did not defeat the server default: rows=%v err=%v", resp, err)
	}
}
