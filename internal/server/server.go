// Package server implements tpserverd's concurrent TP-SQL query service:
// a session manager multiplexing many client connections over one shared,
// concurrency-safe catalog, with per-session settings (SET strategy =
// auto|nj|ta|pnj|pta, SET ta_nested_loop, SET calibration), per-query
// context cancellation and timeouts (which abort even the blocking
// TA/PNJ/PTA strategies mid-Open), EXPLAIN /
// EXPLAIN ANALYZE passthrough with the per-operator tree as structured
// wire fields, and /metrics-style counters — including per-operator
// ANALYZE aggregates — exposed through the \metrics builtin.
//
// The wire protocol (proto.go) is newline-delimited JSON: one Request per
// line in, one Response per line out, strictly in order per connection.
// Each connection is one session backed by a shell.Core, so the server
// speaks exactly the REPL dialect — the two surfaces share one dispatch
// implementation and cannot drift.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/engine"
	"tpjoin/internal/plan"
	"tpjoin/internal/shell"
)

// Config carries the server knobs.
type Config struct {
	// DefaultTimeout bounds each query's execution when the request does
	// not ask for its own timeout. Zero means no default timeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (and the default). Zero
	// means uncapped.
	MaxTimeout time.Duration
	// Logf, when non-nil, receives one line per session open/close and
	// per protocol error.
	Logf func(format string, args ...any)
}

// Server serves TP-SQL sessions over a shared catalog.
type Server struct {
	cat     *catalog.Catalog
	cfg     Config
	metrics Metrics

	// baseCtx parents every per-query context; baseCancel fires on Close
	// so shutdown interrupts in-flight queries at their next cancellation
	// check instead of waiting them out.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	wg sync.WaitGroup
}

// New returns a server over cat. The catalog is shared by all sessions;
// callers typically preload it (shell.PreloadFig1a, \gen, \load).
func New(cat *catalog.Catalog, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{cat: cat, cfg: cfg, conns: make(map[net.Conn]struct{}),
		baseCtx: ctx, baseCancel: cancel}
}

// Metrics returns a snapshot of the server counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// Catalog returns the shared catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// ListenAndServe listens on the TCP address addr and serves sessions
// until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln, one session goroutine per connection,
// until Close. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("listening on %s", ln.Addr())
	var acceptDelay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.shutdown
			s.mu.Unlock()
			if closed {
				return nil
			}
			// Retry transient accept failures (fd exhaustion under load)
			// with backoff, like net/http.Server — a busy moment must not
			// stop the accept loop for good.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				s.logf("accept error (retrying in %v): %v", acceptDelay, err)
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		// Add must happen under the same lock that excludes Close's
		// Wait-after-drain, or a session could be spawned after Close
		// returned.
		s.wg.Add(1)
		s.mu.Unlock()
		go s.session(conn)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all live sessions and waits for their
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// session runs one connection: a shell.Core with private SET settings
// over the shared catalog, answering requests sequentially.
func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.metrics.sessionsActive.Add(-1)
		s.logf("session %s closed", conn.RemoteAddr())
	}()
	s.metrics.sessionsOpened.Add(1)
	s.metrics.sessionsActive.Add(1)
	s.logf("session %s opened", conn.RemoteAddr())

	core := shell.NewCore(s.cat)
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			// EOF and connection resets end the session silently; a
			// malformed line is unrecoverable mid-stream, so report it
			// and hang up.
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				_ = enc.Encode(Response{ID: req.ID, Kind: KindNone,
					Error: fmt.Sprintf("protocol: %v", err)})
			}
			return
		}
		resp := s.handle(core, &req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if resp.Kind == KindQuit {
			return
		}
	}
}

// handle evaluates one request on the session's core.
func (s *Server) handle(core *shell.Core, req *Request) Response {
	if resp, ok := s.builtin(req); ok {
		return resp
	}
	ctx, cancel := s.queryContext(req)
	defer cancel()
	start := time.Now()
	res, err := s.eval(core, ctx, req.Query)
	elapsed := time.Since(start)
	s.metrics.queriesServed.Add(1)
	s.metrics.execMicros.Add(elapsed.Microseconds())
	// Count cost-based strategy picks (SET strategy = auto) whenever the
	// statement planned a TP join — SELECT, CREATE TABLE AS and EXPLAIN
	// alike — feeding tpserverd_auto_strategy_total{strategy=...}.
	if strat, auto, ok := core.Session.PlannedJoin(); ok && auto {
		s.metrics.recordAutoPick(strat)
	}
	if err != nil {
		s.metrics.queryErrors.Add(1)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.queryTimeouts.Add(1)
		}
		return Response{ID: req.ID, Kind: KindNone, Error: err.Error(),
			Usage: shell.IsUsageError(err), ElapsedUS: elapsed.Microseconds()}
	}
	resp := encodeResult(res)
	resp.ID = req.ID
	resp.ElapsedUS = elapsed.Microseconds()
	s.metrics.rowsReturned.Add(int64(resp.RowCount))
	if resp.Plan != nil {
		// EXPLAIN ANALYZE responses feed the per-operator counters that
		// \metrics exposes (rows and wall time per operator kind).
		s.metrics.recordAnalyze(resp.Plan)
		// A timed-out ANALYZE is reported as a successful response with
		// the abort reason in the tree; keep it visible in the timeout
		// counter regardless, or the diagnostic queries users run when
		// investigating slowness would vanish from the metric.
		if resp.Plan.Abort != "" {
			s.metrics.queryTimeouts.Add(1)
		}
	}
	if resp.Kind == KindRows {
		// Attribute row-producing queries to the physical join strategy
		// the planner gave them — the cost model's pick under auto, the
		// forced SET strategy otherwise — so \metrics exposes per-strategy
		// throughput (NJ vs TA vs PNJ); SET and backslash commands are not
		// workload. Join-free queries fall back to the forced setting (or
		// the nominal NJ default under auto): no join ran, but the rows
		// still need a bucket.
		s.metrics.recordQuery(effectiveStrategy(core.Session), resp.RowCount, elapsed.Microseconds())
	}
	return resp
}

// effectiveStrategy resolves the strategy a just-executed statement should
// be attributed to; see the recordQuery call site.
func effectiveStrategy(sess *plan.Session) engine.Strategy {
	if strat, _, ok := sess.PlannedJoin(); ok {
		return strat
	}
	strat, _ := sess.Strategy.Physical()
	return strat
}

// eval runs one statement with panic containment: the engine panics on
// some invalid cross-relation states (e.g. joining a stale CREATE TABLE
// snapshot against a regenerated workload with conflicting base-event
// probabilities), and an untrusted client must not be able to take the
// shared server down with one. shell.Core.Eval converts the panic into
// that query's error (every surface shares the containment); the server
// additionally logs it — a panic is worth an operator's attention even
// though the session lives on — and keeps a last-resort recover for
// panics raised outside Core.Eval's own guard.
func (s *Server) eval(core *shell.Core, ctx context.Context, query string) (res shell.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("query panic: %v", r)
			res, err = shell.Result{}, fmt.Errorf("query panic: %v", r)
		}
	}()
	res, err = core.Eval(ctx, query)
	if shell.IsPanicError(err) {
		s.logf("%v", err)
	}
	return res, err
}

// builtin intercepts server-level commands that exist only on the remote
// surface.
func (s *Server) builtin(req *Request) (Response, bool) {
	switch strings.TrimSpace(req.Query) {
	case `\metrics`:
		return Response{ID: req.ID, OK: true, Kind: KindMessage,
			Message: s.Metrics().Render()}, true
	default:
		return Response{}, false
	}
}

// queryContext derives the per-query context from the server default and
// the request override, capped by MaxTimeout.
func (s *Server) queryContext(req *Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout <= 0 {
		return context.WithCancel(s.baseCtx)
	}
	return context.WithTimeout(s.baseCtx, timeout)
}
