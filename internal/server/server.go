// Package server implements tpserverd's concurrent TP-SQL query service:
// a session manager multiplexing many client connections over one shared,
// concurrency-safe catalog, with per-session settings (SET strategy =
// auto|nj|ta|pnj|pta, SET ta_nested_loop, SET calibration), per-query
// context cancellation and timeouts (which abort even the blocking
// TA/PNJ/PTA strategies mid-Open), EXPLAIN /
// EXPLAIN ANALYZE passthrough with the per-operator tree as structured
// wire fields, and the observability layer (internal/obs): every
// statement gets a monotonic per-process query ID echoed in
// Response.QueryID, stamped on the EXPLAIN ANALYZE trailer and attached
// to its structured query-log record, so an operator can join a
// slow-query log line to its ANALYZE tree and its latency-histogram
// bucket. Counters, per-strategy latency histograms and per-operator
// ANALYZE aggregates are exposed through the \metrics builtin and —
// identically, one render path — the HTTP admin endpoint (ServeAdmin:
// GET /metrics, /healthz, /readyz and net/http/pprof under
// /debug/pprof/).
//
// The wire protocol (proto.go) is newline-delimited JSON: one Request per
// line in, one Response per line out, strictly in order per connection.
// Each connection is one session backed by a shell.Core, so the server
// speaks exactly the REPL dialect — the two surfaces share one dispatch
// implementation and cannot drift.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/fault"
	"tpjoin/internal/mem"
	"tpjoin/internal/obs"
	"tpjoin/internal/plan"
	"tpjoin/internal/shell"
)

// Config carries the server knobs.
type Config struct {
	// DefaultTimeout bounds each query's execution when the request does
	// not ask for its own timeout. Zero means no default timeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (and the default). Zero
	// means uncapped.
	MaxTimeout time.Duration
	// Logf, when non-nil, receives one line per session open/close and
	// per protocol error.
	Logf func(format string, args ...any)
	// QueryLog, when non-nil, receives one structured audit record per
	// evaluated statement (query ID, session, statement, strategy, rows,
	// latency, error class); records slower than its slow-query threshold
	// log at WARN.
	QueryLog *obs.QueryLog

	// MaxInflight bounds concurrently executing statements (admission
	// control); 0 disables the gate. Statements beyond it wait in a
	// bounded FIFO queue of QueueDepth seats for up to QueueWait
	// (defaulting to 1s when the gate is on), then are rejected before
	// planning with ErrClass "overloaded".
	MaxInflight int
	QueueDepth  int
	QueueWait   time.Duration

	// MemoryBudget is the default per-query memory budget in bytes; 0
	// means unlimited. Sessions override it with SET memory_budget
	// (including `off`). Budget-exceeded queries abort with ErrClass
	// "budget".
	MemoryBudget int64

	// PlanCacheSize bounds the server-wide plan cache shared by every
	// session's PREPARE/EXECUTE path: 0 uses plan.DefaultCacheSize,
	// negative disables the cache (every EXECUTE plans fresh). The cache
	// is consulted only after admission, so shed statements cost no
	// planning either way.
	PlanCacheSize int
}

// Server serves TP-SQL sessions over a shared catalog.
type Server struct {
	cat     *catalog.Catalog
	cfg     Config
	metrics *obs.Metrics

	// planCache is the server-wide plan cache (nil when disabled): one
	// instance attached to every session Core, so a statement shape one
	// session prepared and planned is a cache hit for every other session
	// preparing the same text under the same settings.
	planCache *plan.Cache

	// nextQueryID hands out the monotonic per-process query identity
	// attached to every evaluated statement (Response.QueryID, the query
	// log, the EXPLAIN ANALYZE trailer).
	nextQueryID atomic.Uint64

	// baseCtx parents every per-query context; baseCancel fires on Close
	// so shutdown interrupts in-flight queries at their next cancellation
	// check instead of waiting them out.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// adm is the admission gate (nil when Config.MaxInflight is 0).
	adm *admission

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]*sessState
	admin *adminServer
	// draining is set by Shutdown: stop accepting, finish in-flight
	// statements, close sessions at their next statement boundary.
	// shutdown is the hard stop (Close).
	draining bool
	shutdown bool

	wg sync.WaitGroup
	// queryWG spans every in-flight statement from admission through
	// response encode; Shutdown waits on it up to the drain deadline.
	// Add happens under mu and only while !draining, so it cannot race
	// Shutdown's Wait.
	queryWG sync.WaitGroup
}

// sessState is the per-connection state the drain logic needs: whether
// the session is between Decode and response encode right now. Guarded
// by Server.mu.
type sessState struct {
	busy bool
}

// New returns a server over cat. The catalog is shared by all sessions;
// callers typically preload it (shell.PreloadFig1a, \gen, \load).
func New(cat *catalog.Catalog, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	m := obs.NewMetrics()
	s := &Server{cat: cat, cfg: cfg, metrics: m,
		adm:   newAdmission(m, cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait),
		conns: make(map[net.Conn]*sessState), baseCtx: ctx, baseCancel: cancel}
	if cfg.PlanCacheSize >= 0 {
		s.planCache = plan.NewCache(cfg.PlanCacheSize)
		m.SetPlanCache(s.planCache.Stats)
	}
	return s
}

// PlanCache returns the server-wide plan cache (nil when disabled).
func (s *Server) PlanCache() *plan.Cache { return s.planCache }

// Metrics returns a snapshot of the server counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// Catalog returns the shared catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// ListenAndServe listens on the TCP address addr and serves sessions
// until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln, one session goroutine per connection,
// until Close. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("listening on %s", ln.Addr())
	var acceptDelay time.Duration
	for {
		conn, err := ln.Accept()
		if err == nil {
			// Chaos hook: an armed "server.accept" failpoint turns a
			// successful accept into an accept error (the connection is
			// dropped), driving the transient-retry path below.
			if ferr := fault.Inject("server.accept"); ferr != nil {
				conn.Close()
				err = fmt.Errorf("accept: %w", ferr)
			}
		}
		if err != nil {
			s.mu.Lock()
			closed := s.shutdown || s.draining
			s.mu.Unlock()
			if closed {
				return nil
			}
			// Retry transient accept failures (fd exhaustion under load,
			// connections aborted in the backlog) with backoff, like
			// net/http.Server — a busy moment must not stop the accept
			// loop for good. The classification is explicit
			// (isTransientAccept) rather than the deprecated
			// net.Error.Temporary().
			if isTransientAccept(err) {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				s.logf("accept error (retrying in %v): %v", acceptDelay, err)
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		s.mu.Lock()
		if s.shutdown || s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		st := &sessState{}
		s.conns[conn] = st
		// Add must happen under the same lock that excludes Close's
		// Wait-after-drain, or a session could be spawned after Close
		// returned.
		s.wg.Add(1)
		s.mu.Unlock()
		go s.session(conn, st)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting (on both the query listener and the admin HTTP
// endpoint), closes all live sessions, hard-cancels in-flight statements
// (baseCancel) and waits for the session goroutines to drain. For a
// graceful stop that lets in-flight statements finish first, use
// Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	ln := s.ln
	admin := s.admin
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	var err error
	if ln != nil {
		// Shutdown closes the listener before falling back to Close;
		// net.ErrClosed here is that, not a failure.
		if err = ln.Close(); errors.Is(err, net.ErrClosed) {
			err = nil
		}
	}
	if admin != nil {
		admin.close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, flips /readyz to 503, closes idle sessions, and lets
// statements already in flight — and sessions mid-statement — finish and
// deliver their responses. Sessions end at their next statement boundary.
// When every in-flight statement has completed, or ctx expires
// (-drain-timeout), Shutdown falls back to Close: the remaining
// statements are hard-cancelled through the per-query context exactly as
// a plain Close would. It returns ctx's error if the drain deadline
// forced the fallback, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	already := s.draining
	s.draining = true
	ln := s.ln
	if !already {
		// Idle sessions (not between Decode and response encode) have
		// nothing to deliver; close them now. Busy ones are closed by
		// their own session loop right after the in-flight response is
		// written.
		for c, st := range s.conns {
			if !st.busy {
				c.Close()
			}
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close() // Serve observes draining and returns nil
	}
	s.logf("draining: waiting for in-flight statements")
	done := make(chan struct{})
	go func() { s.queryWG.Wait(); close(done) }()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.logf("drain deadline expired; cancelling in-flight statements")
	}
	if err := s.Close(); drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// beginStatement marks st busy and registers the statement with the
// drain accounting. It refuses (false) once the server is draining or
// closed — the session loop then exits without answering, and the
// connection is torn down.
func (s *Server) beginStatement(st *sessState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown || s.draining {
		return false
	}
	st.busy = true
	s.queryWG.Add(1)
	return true
}

// endStatement is beginStatement's counterpart, called after the
// response encode so a drain sweeping idle connections cannot close one
// whose response is still being written.
func (s *Server) endStatement(st *sessState) {
	s.mu.Lock()
	st.busy = false
	s.mu.Unlock()
	s.queryWG.Done()
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// session runs one connection: a shell.Core with private SET settings
// over the shared catalog, answering requests sequentially.
func (s *Server) session(conn net.Conn, st *sessState) {
	defer s.wg.Done()
	remote := conn.RemoteAddr().String()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.metrics.SessionClosed()
		s.logf("session %s closed", remote)
	}()
	// Last-resort containment for panics escaping the per-statement
	// guards (and the "server.session" chaos failpoint): one session's
	// panic must never take the shared process down. Registered after the
	// cleanup defer above, so unwinding still runs the cleanup.
	defer func() {
		if r := recover(); r != nil {
			s.logf("session %s panic (contained, session dropped): %v", remote, r)
		}
	}()
	s.metrics.SessionOpened()
	s.logf("session %s opened", remote)
	if err := fault.Inject("server.session"); err != nil {
		s.logf("session %s: injected fault: %v", remote, err)
		return
	}

	core := shell.NewCore(s.cat)
	// Every session shares the server-wide plan cache. The lookup runs
	// inside Core.Eval, i.e. after handle()'s admission acquire — a shed
	// statement never touches the cache, let alone the planner.
	core.PlanCache = s.planCache
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			// EOF and connection resets end the session silently; a
			// malformed line is unrecoverable mid-stream, so report it
			// and hang up.
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				_ = enc.Encode(Response{ID: req.ID, Kind: KindNone,
					Error: fmt.Sprintf("protocol: %v", err)})
			}
			return
		}
		// Chaos hook: a decode-side wire fault hangs up mid-stream, like
		// a peer vanishing between request and response.
		if err := fault.Inject("server.wire.decode"); err != nil {
			s.logf("session %s: injected decode fault: %v", remote, err)
			return
		}
		if s.serveOne(core, st, &req, remote, enc) {
			return
		}
	}
}

// serveOne answers one decoded request and reports whether the session
// should end (quit, encode failure, drain, or injected wire fault). The
// busy window — beginStatement through the deferred endStatement — spans
// the response encode, so a drain never closes a connection whose
// response is in flight.
func (s *Server) serveOne(core *shell.Core, st *sessState, req *Request, remote string, enc *json.Encoder) (stop bool) {
	if !s.beginStatement(st) {
		return true
	}
	defer s.endStatement(st)
	resp := s.handle(core, req, remote)
	// Chaos hook: an encode-side wire fault drops the connection
	// mid-response — the query ran, the client never hears back.
	if err := fault.Inject("server.wire.encode"); err != nil {
		s.logf("session %s: injected encode fault: %v", remote, err)
		return true
	}
	if err := enc.Encode(&resp); err != nil {
		return true
	}
	return resp.Kind == KindQuit || s.isDraining()
}

// handle evaluates one request on the session's core: passes the
// admission gate, assigns the query ID, runs the statement under its
// context (carrying the session's memory budget), folds the outcome into
// the metrics and the query log, and stamps the ID on the response (and
// on the EXPLAIN ANALYZE trailer, re-rendered so the text and the
// structured tree agree).
func (s *Server) handle(core *shell.Core, req *Request, remote string) Response {
	if resp, ok := s.builtin(req); ok {
		// Server builtins (\metrics) bypass admission: the metrics must
		// stay reachable exactly when the gate is shedding load.
		return resp
	}
	qid := s.nextQueryID.Add(1)
	admitStart := time.Now()
	if err := s.adm.acquire(s.baseCtx); err != nil {
		// Rejected before planning: no execution context, no eval — the
		// whole point of admission control is spending nothing on shed
		// load. The rejection still gets a query ID, an audit record
		// (with the queue wait, classed overloaded/canceled) and a
		// metrics observation, so shed load is visible everywhere a
		// served query would be.
		return s.reject(core, req, remote, qid, err, time.Since(admitStart))
	}
	defer s.adm.release()
	queueWait := time.Since(admitStart)

	// Chaos hook between admission and execution: tests park statements
	// here (a blocking behavior) to hold slots deterministically, or fail
	// them to exercise the post-admission error path.
	if ferr := fault.Inject("server.handle"); ferr != nil {
		resp := Response{ID: req.ID, Kind: KindNone, Error: ferr.Error(),
			ErrClass: errClass(ferr), QueryID: qid}
		return resp
	}

	ctx, cancel := s.queryContext(req)
	defer cancel()
	if b := core.Session.EffectiveMemBudget(s.cfg.MemoryBudget); b > 0 {
		ctx = mem.WithGauge(ctx, mem.NewGauge(b))
	}
	start := time.Now()
	res, err := s.eval(core, ctx, req.Query)
	elapsed := time.Since(start)

	var resp Response
	if err != nil {
		resp = Response{ID: req.ID, Kind: KindNone, Error: err.Error(),
			Usage: shell.IsUsageError(err), ErrClass: errClass(err)}
	} else {
		resp = encodeResult(res)
		resp.ID = req.ID
		if res.Plan != nil {
			// Stamp the query ID on the plan tree; ANALYZE renders it in
			// the trailer, so re-render the message to keep the text and
			// the structured tree in agreement.
			res.Plan.QueryID = qid
			if res.Plan.Analyze {
				resp.Message = res.Plan.Render()
			}
		}
	}
	resp.QueryID = qid
	resp.ElapsedUS = elapsed.Microseconds()

	// One QueryOutcome feeds the counters and histograms; the accounting
	// rules (per-strategy attribution, auto-pick tallies, ANALYZE
	// aggregates, timeout classification) live in obs and are shared with
	// the REPL surface.
	strategy := obs.EffectiveStrategy(core.Session)
	_, auto, planned := core.Session.PlannedJoin()
	s.metrics.ObserveQuery(obs.QueryOutcome{
		Strategy: strategy,
		AutoPick: planned && auto,
		RowsKind: resp.Kind == KindRows,
		Rows:     resp.RowCount,
		Elapsed:  elapsed,
		Err:      err,
		Plan:     resp.Plan,
	})
	if s.cfg.QueryLog != nil {
		rec := obs.QueryRecord{
			ID:        qid,
			Session:   remote,
			Statement: req.Query,
			Strategy:  strategy.String(),
			Auto:      planned && auto,
			Rows:      resp.RowCount,
			Elapsed:   elapsed,
			QueueWait: queueWait,
			ErrClass:  errClass(err),
		}
		if err != nil {
			rec.Err = err.Error()
		}
		s.cfg.QueryLog.Record(rec)
	}
	return resp
}

// reject builds the response and accounting for a statement the
// admission gate refused: Elapsed is zero (nothing executed) and the
// audit record carries the queue wait separately, so overload shows up
// as admission latency, never as engine slowness.
func (s *Server) reject(core *shell.Core, req *Request, remote string, qid uint64, err error, wait time.Duration) Response {
	resp := Response{ID: req.ID, Kind: KindNone, Error: err.Error(),
		ErrClass: errClass(err), QueryID: qid}
	strategy := obs.EffectiveStrategy(core.Session)
	s.metrics.ObserveQuery(obs.QueryOutcome{Strategy: strategy, Err: err})
	if s.cfg.QueryLog != nil {
		s.cfg.QueryLog.Record(obs.QueryRecord{
			ID:        qid,
			Session:   remote,
			Statement: req.Query,
			Strategy:  strategy.String(),
			QueueWait: wait,
			ErrClass:  errClass(err),
			Err:       err.Error(),
		})
	}
	return resp
}

// errClass maps an evaluation error to its query-log class.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case isOverload(err):
		// Retryable: the statement never ran; tpcli backs off and resends.
		return ErrClassOverloaded
	case mem.IsBudget(err):
		return ErrClassBudget
	case errors.Is(err, context.DeadlineExceeded):
		return ErrClassTimeout
	case errors.Is(err, context.Canceled):
		return ErrClassCanceled
	case shell.IsUsageError(err):
		return ErrClassUsage
	case shell.IsPanicError(err):
		return ErrClassPanic
	default:
		return ErrClassError
	}
}

// eval runs one statement with panic containment: the engine panics on
// some invalid cross-relation states (e.g. joining a stale CREATE TABLE
// snapshot against a regenerated workload with conflicting base-event
// probabilities), and an untrusted client must not be able to take the
// shared server down with one. shell.Core.Eval converts the panic into
// that query's error (every surface shares the containment); the server
// additionally logs it — a panic is worth an operator's attention even
// though the session lives on — and keeps a last-resort recover for
// panics raised outside Core.Eval's own guard.
func (s *Server) eval(core *shell.Core, ctx context.Context, query string) (res shell.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("query panic: %v", r)
			res, err = shell.Result{}, fmt.Errorf("query panic: %v", r)
		}
	}()
	res, err = core.Eval(ctx, query)
	if shell.IsPanicError(err) {
		s.logf("%v", err)
	}
	return res, err
}

// builtin intercepts server-level commands that exist only on the remote
// surface.
func (s *Server) builtin(req *Request) (Response, bool) {
	switch strings.TrimSpace(req.Query) {
	case `\metrics`:
		return Response{ID: req.ID, OK: true, Kind: KindMessage,
			Message: s.Metrics().Render()}, true
	default:
		return Response{}, false
	}
}

// queryContext derives the per-query context from the server default and
// the request override, capped by MaxTimeout.
func (s *Server) queryContext(req *Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout <= 0 {
		return context.WithCancel(s.baseCtx)
	}
	return context.WithTimeout(s.baseCtx, timeout)
}
