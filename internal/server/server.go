// Package server implements tpserverd's concurrent TP-SQL query service:
// a session manager multiplexing many client connections over one shared,
// concurrency-safe catalog, with per-session settings (SET strategy =
// auto|nj|ta|pnj|pta, SET ta_nested_loop, SET calibration), per-query
// context cancellation and timeouts (which abort even the blocking
// TA/PNJ/PTA strategies mid-Open), EXPLAIN /
// EXPLAIN ANALYZE passthrough with the per-operator tree as structured
// wire fields, and the observability layer (internal/obs): every
// statement gets a monotonic per-process query ID echoed in
// Response.QueryID, stamped on the EXPLAIN ANALYZE trailer and attached
// to its structured query-log record, so an operator can join a
// slow-query log line to its ANALYZE tree and its latency-histogram
// bucket. Counters, per-strategy latency histograms and per-operator
// ANALYZE aggregates are exposed through the \metrics builtin and —
// identically, one render path — the HTTP admin endpoint (ServeAdmin:
// GET /metrics, /healthz, /readyz and net/http/pprof under
// /debug/pprof/).
//
// The wire protocol (proto.go) is newline-delimited JSON: one Request per
// line in, one Response per line out, strictly in order per connection.
// Each connection is one session backed by a shell.Core, so the server
// speaks exactly the REPL dialect — the two surfaces share one dispatch
// implementation and cannot drift.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/obs"
	"tpjoin/internal/shell"
)

// Config carries the server knobs.
type Config struct {
	// DefaultTimeout bounds each query's execution when the request does
	// not ask for its own timeout. Zero means no default timeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (and the default). Zero
	// means uncapped.
	MaxTimeout time.Duration
	// Logf, when non-nil, receives one line per session open/close and
	// per protocol error.
	Logf func(format string, args ...any)
	// QueryLog, when non-nil, receives one structured audit record per
	// evaluated statement (query ID, session, statement, strategy, rows,
	// latency, error class); records slower than its slow-query threshold
	// log at WARN.
	QueryLog *obs.QueryLog
}

// Server serves TP-SQL sessions over a shared catalog.
type Server struct {
	cat     *catalog.Catalog
	cfg     Config
	metrics *obs.Metrics

	// nextQueryID hands out the monotonic per-process query identity
	// attached to every evaluated statement (Response.QueryID, the query
	// log, the EXPLAIN ANALYZE trailer).
	nextQueryID atomic.Uint64

	// baseCtx parents every per-query context; baseCancel fires on Close
	// so shutdown interrupts in-flight queries at their next cancellation
	// check instead of waiting them out.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	admin    *adminServer
	shutdown bool

	wg sync.WaitGroup
}

// New returns a server over cat. The catalog is shared by all sessions;
// callers typically preload it (shell.PreloadFig1a, \gen, \load).
func New(cat *catalog.Catalog, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{cat: cat, cfg: cfg, metrics: obs.NewMetrics(),
		conns: make(map[net.Conn]struct{}), baseCtx: ctx, baseCancel: cancel}
}

// Metrics returns a snapshot of the server counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// Catalog returns the shared catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// ListenAndServe listens on the TCP address addr and serves sessions
// until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln, one session goroutine per connection,
// until Close. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("listening on %s", ln.Addr())
	var acceptDelay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.shutdown
			s.mu.Unlock()
			if closed {
				return nil
			}
			// Retry transient accept failures (fd exhaustion under load,
			// connections aborted in the backlog) with backoff, like
			// net/http.Server — a busy moment must not stop the accept
			// loop for good. The classification is explicit
			// (isTransientAccept) rather than the deprecated
			// net.Error.Temporary().
			if isTransientAccept(err) {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				s.logf("accept error (retrying in %v): %v", acceptDelay, err)
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		// Add must happen under the same lock that excludes Close's
		// Wait-after-drain, or a session could be spawned after Close
		// returned.
		s.wg.Add(1)
		s.mu.Unlock()
		go s.session(conn)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting (on both the query listener and the admin HTTP
// endpoint), closes all live sessions and waits for their goroutines to
// drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	ln := s.ln
	admin := s.admin
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if admin != nil {
		admin.close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// session runs one connection: a shell.Core with private SET settings
// over the shared catalog, answering requests sequentially.
func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	remote := conn.RemoteAddr().String()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.metrics.SessionClosed()
		s.logf("session %s closed", remote)
	}()
	s.metrics.SessionOpened()
	s.logf("session %s opened", remote)

	core := shell.NewCore(s.cat)
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			// EOF and connection resets end the session silently; a
			// malformed line is unrecoverable mid-stream, so report it
			// and hang up.
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				_ = enc.Encode(Response{ID: req.ID, Kind: KindNone,
					Error: fmt.Sprintf("protocol: %v", err)})
			}
			return
		}
		resp := s.handle(core, &req, remote)
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if resp.Kind == KindQuit {
			return
		}
	}
}

// handle evaluates one request on the session's core: assigns the query
// ID, runs the statement under its context, folds the outcome into the
// metrics and the query log, and stamps the ID on the response (and on
// the EXPLAIN ANALYZE trailer, re-rendered so the text and the
// structured tree agree).
func (s *Server) handle(core *shell.Core, req *Request, remote string) Response {
	if resp, ok := s.builtin(req); ok {
		return resp
	}
	qid := s.nextQueryID.Add(1)
	ctx, cancel := s.queryContext(req)
	defer cancel()
	start := time.Now()
	res, err := s.eval(core, ctx, req.Query)
	elapsed := time.Since(start)

	var resp Response
	if err != nil {
		resp = Response{ID: req.ID, Kind: KindNone, Error: err.Error(),
			Usage: shell.IsUsageError(err)}
	} else {
		resp = encodeResult(res)
		resp.ID = req.ID
		if res.Plan != nil {
			// Stamp the query ID on the plan tree; ANALYZE renders it in
			// the trailer, so re-render the message to keep the text and
			// the structured tree in agreement.
			res.Plan.QueryID = qid
			if res.Plan.Analyze {
				resp.Message = res.Plan.Render()
			}
		}
	}
	resp.QueryID = qid
	resp.ElapsedUS = elapsed.Microseconds()

	// One QueryOutcome feeds the counters and histograms; the accounting
	// rules (per-strategy attribution, auto-pick tallies, ANALYZE
	// aggregates, timeout classification) live in obs and are shared with
	// the REPL surface.
	strategy := obs.EffectiveStrategy(core.Session)
	_, auto, planned := core.Session.PlannedJoin()
	s.metrics.ObserveQuery(obs.QueryOutcome{
		Strategy: strategy,
		AutoPick: planned && auto,
		RowsKind: resp.Kind == KindRows,
		Rows:     resp.RowCount,
		Elapsed:  elapsed,
		Err:      err,
		Plan:     resp.Plan,
	})
	if s.cfg.QueryLog != nil {
		rec := obs.QueryRecord{
			ID:        qid,
			Session:   remote,
			Statement: req.Query,
			Strategy:  strategy.String(),
			Auto:      planned && auto,
			Rows:      resp.RowCount,
			Elapsed:   elapsed,
			ErrClass:  errClass(err),
		}
		if err != nil {
			rec.Err = err.Error()
		}
		s.cfg.QueryLog.Record(rec)
	}
	return resp
}

// errClass maps an evaluation error to its query-log class.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case shell.IsUsageError(err):
		return "usage"
	case shell.IsPanicError(err):
		return "panic"
	default:
		return "error"
	}
}

// eval runs one statement with panic containment: the engine panics on
// some invalid cross-relation states (e.g. joining a stale CREATE TABLE
// snapshot against a regenerated workload with conflicting base-event
// probabilities), and an untrusted client must not be able to take the
// shared server down with one. shell.Core.Eval converts the panic into
// that query's error (every surface shares the containment); the server
// additionally logs it — a panic is worth an operator's attention even
// though the session lives on — and keeps a last-resort recover for
// panics raised outside Core.Eval's own guard.
func (s *Server) eval(core *shell.Core, ctx context.Context, query string) (res shell.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("query panic: %v", r)
			res, err = shell.Result{}, fmt.Errorf("query panic: %v", r)
		}
	}()
	res, err = core.Eval(ctx, query)
	if shell.IsPanicError(err) {
		s.logf("%v", err)
	}
	return res, err
}

// builtin intercepts server-level commands that exist only on the remote
// surface.
func (s *Server) builtin(req *Request) (Response, bool) {
	switch strings.TrimSpace(req.Query) {
	case `\metrics`:
		return Response{ID: req.ID, OK: true, Kind: KindMessage,
			Message: s.Metrics().Render()}, true
	default:
		return Response{}, false
	}
}

// queryContext derives the per-query context from the server default and
// the request override, capped by MaxTimeout.
func (s *Server) queryContext(req *Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout <= 0 {
		return context.WithCancel(s.baseCtx)
	}
	return context.WithTimeout(s.baseCtx, timeout)
}
