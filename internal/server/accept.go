package server

import (
	"errors"
	"net"
	"syscall"
)

// isTransientAccept reports whether an Accept error is worth retrying
// with backoff instead of stopping the accept loop. This replaces the
// deprecated net.Error.Temporary() check with an explicit classification:
// Temporary() was deprecated precisely because "temporary" had no defined
// meaning, so the retry set is spelled out.
//
// Transient:
//   - ECONNABORTED / ECONNRESET: the connection died in the backlog
//     before we accepted it — the listener is fine.
//   - EMFILE / ENFILE: process/system fd exhaustion under load; sessions
//     closing will free descriptors, so backing off and retrying is the
//     only behavior that survives a burst.
//   - ENOBUFS / ENOMEM: transient kernel resource exhaustion.
//   - EINTR: interrupted syscall.
//   - Timeouts (net.Error.Timeout()), e.g. from a listener deadline.
//
// Everything else — notably net.ErrClosed and EBADF/EINVAL from a closed
// or broken listener — is permanent: retrying would spin forever on a
// listener that can never accept again.
func isTransientAccept(err error) bool {
	if err == nil || errors.Is(err, net.ErrClosed) {
		return false
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.ECONNABORTED, syscall.ECONNRESET,
			syscall.EMFILE, syscall.ENFILE,
			syscall.ENOBUFS, syscall.ENOMEM,
			syscall.EINTR:
			return true
		}
		return false
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
