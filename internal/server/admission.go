package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tpjoin/internal/obs"
)

// Admission control bounds the server's concurrent query execution: a
// semaphore of MaxInflight slots with a bounded FIFO wait queue in front
// of it. A statement that cannot get a slot immediately waits in the
// queue up to QueueWait; when the queue itself is full — or the wait
// expires — the statement is rejected *before planning* with the
// wire-level error class "overloaded", which clients may treat as
// retryable (tpcli retries it with backoff). The gate sits after the
// server builtins (\metrics must stay reachable under overload — that is
// when it is needed) and before the query ID's context/planning work, so
// a melted server spends no execution resources on the load it sheds.

// overloadError is the rejection an admission gate returns; it maps to
// ErrClass "overloaded" on the wire.
type overloadError struct{ msg string }

func (e *overloadError) Error() string { return e.msg }

// isOverload reports whether err is an admission-control rejection.
func isOverload(err error) bool {
	var o *overloadError
	return errors.As(err, &o)
}

// admission is the gate. A nil *admission (MaxInflight <= 0) admits
// everything for free — the single-user and test default.
type admission struct {
	metrics *obs.Metrics
	// slots is the query-slot semaphore, pre-filled with capacity tokens.
	slots chan struct{}
	depth int
	wait  time.Duration
	// waiting is the current queue length, bounded by depth with a CAS
	// loop so a burst of arrivals cannot overshoot the queue: the
	// overload e2e contract is exact (slots running + depth queued,
	// everything else rejected).
	waiting atomic.Int64
}

// newAdmission builds a gate of maxInflight slots with a depth-long wait
// queue and per-statement wait budget. maxInflight <= 0 disables
// admission control (returns nil).
func newAdmission(m *obs.Metrics, maxInflight, depth int, wait time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if depth < 0 {
		depth = 0
	}
	if wait <= 0 {
		wait = time.Second
	}
	a := &admission{metrics: m, slots: make(chan struct{}, maxInflight), depth: depth, wait: wait}
	for i := 0; i < maxInflight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire obtains a query slot or rejects the statement. base is the
// server's lifetime context: a hard shutdown aborts queued waiters with
// its error (classed "canceled", not "overloaded" — the server is going
// away, not shedding load).
func (a *admission) acquire(base context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case <-a.slots:
		a.metrics.AdmissionAdmitted(false, 0)
		return nil
	default:
	}
	// No free slot: take a queue seat or reject. The CAS loop keeps the
	// queue length exactly bounded by depth under concurrent arrivals.
	for {
		w := a.waiting.Load()
		if w >= int64(a.depth) {
			a.metrics.AdmissionRejected(0)
			return &overloadError{msg: fmt.Sprintf(
				"server overloaded: all %d query slots busy and the admission queue is full (retryable)",
				cap(a.slots))}
		}
		if a.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	start := time.Now()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	defer a.waiting.Add(-1)
	select {
	case <-a.slots:
		a.metrics.AdmissionAdmitted(true, time.Since(start))
		return nil
	case <-timer.C:
		a.metrics.AdmissionRejected(time.Since(start))
		return &overloadError{msg: fmt.Sprintf(
			"server overloaded: no query slot freed within the %v admission queue wait (retryable)",
			a.wait)}
	case <-base.Done():
		a.metrics.AdmissionRejected(time.Since(start))
		return base.Err()
	}
}

// release returns an acquired slot.
func (a *admission) release() {
	if a == nil {
		return
	}
	a.slots <- struct{}{}
	a.metrics.AdmissionReleased()
}

// saturated reports whether the gate is shedding load right now: every
// slot busy and the wait queue at capacity. /readyz degrades to 503 on
// it, steering load balancers away before clients burn round trips on
// rejections.
func (a *admission) saturated() bool {
	if a == nil {
		return false
	}
	return len(a.slots) == 0 && a.waiting.Load() >= int64(a.depth)
}
