package server

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The HTTP admin endpoint is tpserverd's window for standard ops tooling:
// a Prometheus scraper, curl, or `go tool pprof` against a live server.
// It serves on its own listener (typically a different port than the
// query protocol, and like it loopback-bound by default — pprof exposes
// heap contents, so the same trust caveats apply):
//
//	GET /metrics                 Prometheus text exposition — byte-identical
//	                             to the \metrics builtin (one Render path)
//	GET /healthz                 liveness: 200 while the process serves HTTP
//	GET /readyz                  readiness: 200 once the query listener is
//	                             accepting (the catalog is preloaded before
//	                             that); 503 while shutting down, draining,
//	                             or with the admission queue saturated —
//	                             load balancers steer new work elsewhere
//	                             before clients burn round trips on
//	                             "overloaded" rejections
//	/debug/pprof/...             net/http/pprof: CPU/heap/goroutine/etc.
//	                             profiles of the live server

// adminServer tracks one admin HTTP listener for shutdown.
type adminServer struct {
	srv *http.Server
	ln  net.Listener
}

func (a *adminServer) close() {
	// http.Server.Close closes the listener and all active connections —
	// admin requests are short reads, nothing worth draining gracefully
	// while queries are being cancelled anyway.
	_ = a.srv.Close()
}

// AdminHandler returns the admin endpoint's handler (its own mux, not
// http.DefaultServeMux, so importing net/http/pprof side effects from
// other packages cannot widen the surface).
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.Metrics().Render())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.mu.Lock()
		serving, down, draining := s.ln != nil, s.shutdown, s.draining
		s.mu.Unlock()
		switch {
		case down:
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
		case draining:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !serving:
			http.Error(w, "query listener not accepting yet", http.StatusServiceUnavailable)
		case s.adm.saturated():
			http.Error(w, "admission queue saturated", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ready")
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin serves the admin HTTP endpoint on ln until Close. Like
// Serve, it always closes ln; a Close-initiated shutdown returns nil.
func (s *Server) ServeAdmin(ln net.Listener) error {
	a := &adminServer{
		srv: &http.Server{
			Handler: s.AdminHandler(),
			// The admin port must not be a trivial slowloris hold on the
			// process: requests are tiny, so tight header/idle budgets
			// cost nothing.
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       time.Minute,
		},
		ln: ln,
	}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.admin = a
	s.mu.Unlock()
	s.logf("admin http listening on %s", ln.Addr())
	err := a.srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServeAdmin listens on the TCP address addr and serves the
// admin endpoint until Close.
func (s *Server) ListenAndServeAdmin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeAdmin(ln)
}

// AdminAddr returns the admin listener address (nil before ServeAdmin).
func (s *Server) AdminAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.admin == nil {
		return nil
	}
	return s.admin.ln.Addr()
}
