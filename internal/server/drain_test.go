package server_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/client"
	"tpjoin/internal/dataset"
	"tpjoin/internal/fault"
	"tpjoin/internal/server"
	"tpjoin/internal/shell"
)

// TestShutdownDrainsInFlight: a statement already executing when
// Shutdown begins must complete and deliver a byte-identical response,
// while /readyz flips to 503 and new connections are refused; the drain
// then finishes cleanly (Shutdown returns nil).
func TestShutdownDrainsInFlight(t *testing.T) {
	srv, addr, base := startServerWithAdmin(t, server.Config{})
	waitReady(t, base)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Reference bytes: the same statement on the same session, rendered
	// before any drain starts.
	ref, err := c.Query(ctx, joinQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	client.Render(&want, ref)
	if want.Len() == 0 {
		t.Fatal("reference render is empty")
	}

	// Hold the next statement mid-execution at the server.handle
	// failpoint so Shutdown provably starts while it is in flight.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	fault.Set("server.handle", func() error {
		entered <- struct{}{}
		<-release
		return nil
	})
	t.Cleanup(fault.Reset)
	t.Cleanup(releaseAll)

	inflight := make(chan struct {
		resp *server.Response
		err  error
	}, 1)
	go func() {
		resp, err := c.Query(ctx, joinQueries[1])
		inflight <- struct {
			resp *server.Response
			err  error
		}{resp, err}
	}()
	<-entered

	drainDone := make(chan error, 1)
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer drainCancel()
	go func() { drainDone <- srv.Shutdown(drainCtx) }()

	// Draining: readiness degrades and the listener stops accepting.
	waitFor(t, "readyz to report draining", func() bool {
		code, body := adminGet(t, base+"/readyz")
		return code == http.StatusServiceUnavailable && strings.Contains(body, "draining")
	})
	waitFor(t, "new connections to be refused", func() bool {
		c2, err := client.Dial(addr)
		if err != nil {
			return true
		}
		// The listener may already have accepted the conn before it
		// closed; a refused session dies on its first statement.
		_, qerr := c2.Query(ctx, joinQueries[0])
		c2.Close()
		return qerr != nil && !client.IsOverloaded(qerr)
	})

	// The in-flight statement still completes, byte-identical to the
	// pre-drain run.
	releaseAll()
	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight statement failed during drain: %v", res.err)
	}
	var got bytes.Buffer
	client.Render(&got, res.resp)
	if got.String() != want.String() {
		t.Errorf("drained response drifted from reference:\n--- want ---\n%s\n--- got ---\n%s",
			want.String(), got.String())
	}

	if err := <-drainDone; err != nil {
		t.Errorf("clean drain returned %v, want nil", err)
	}
	// The drained session was closed at its statement boundary.
	if _, err := c.Query(ctx, joinQueries[0]); err == nil {
		t.Error("statement after drain succeeded; session should be closed")
	}
}

// TestShutdownDeadlineCancelsInFlight: when in-flight statements outlive
// the drain budget, Shutdown falls back to the hard-cancel path — the
// multi-second query aborts through its context and the whole shutdown
// completes within ~2s.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	cat := catalog.New()
	shell.PreloadFig1a(cat)
	// Large enough that the join cannot finish inside the drain budget.
	mr, ms := dataset.Meteo(20000, 1)
	mr.Name, ms.Name = "big_r", "big_s"
	if err := cat.Register(mr); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(ms); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, cat, server.Config{})

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pass-through observer: signals when the statement is in flight
	// without altering its behavior.
	entered := make(chan struct{}, 1)
	fault.Set("server.handle", func() error {
		select {
		case entered <- struct{}{}:
		default:
		}
		return nil
	})
	t.Cleanup(fault.Reset)

	queryDone := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(),
			"SELECT * FROM big_r TP LEFT JOIN big_s ON big_r.Key = big_s.Key")
		queryDone <- err
	}()
	<-entered

	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(drainCtx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired drain returned %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("deadline-forced shutdown took %v, want ≤ 2s", took)
	}
	qerr := <-queryDone
	if qerr == nil {
		t.Error("multi-second query survived the forced shutdown")
	} else if !strings.Contains(qerr.Error(), "cancel") && !strings.Contains(qerr.Error(), "closed") &&
		!strings.Contains(qerr.Error(), "deadline") && !strings.Contains(qerr.Error(), "EOF") {
		t.Errorf("cancelled query error = %v", qerr)
	}
}

// TestShutdownAfterClose: Shutdown on an already-closed server reports
// it instead of hanging or double-closing.
func TestShutdownAfterClose(t *testing.T) {
	srv := server.New(testCatalog(t), server.Config{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown after Close returned nil, want an error")
	}
}
