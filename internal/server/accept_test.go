package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"tpjoin/internal/catalog"
)

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return false }

func TestIsTransientAccept(t *testing.T) {
	wrap := func(errno syscall.Errno) error {
		// Accept errors surface wrapped like the runtime wraps them:
		// *net.OpError around *os.SyscallError around the errno.
		return &net.OpError{Op: "accept", Net: "tcp",
			Err: os.NewSyscallError("accept", errno)}
	}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"ErrClosed", net.ErrClosed, false},
		{"wrapped ErrClosed", &net.OpError{Op: "accept", Err: net.ErrClosed}, false},
		{"ECONNABORTED", wrap(syscall.ECONNABORTED), true},
		{"ECONNRESET", wrap(syscall.ECONNRESET), true},
		{"EMFILE", wrap(syscall.EMFILE), true},
		{"ENFILE", wrap(syscall.ENFILE), true},
		{"ENOBUFS", wrap(syscall.ENOBUFS), true},
		{"ENOMEM", wrap(syscall.ENOMEM), true},
		{"EINTR", wrap(syscall.EINTR), true},
		{"bare EMFILE", syscall.EMFILE, true},
		{"EBADF", wrap(syscall.EBADF), false},
		{"EINVAL", wrap(syscall.EINVAL), false},
		{"plain error", errors.New("boom"), false},
		{"timeout net.Error", timeoutErr{}, true},
		{"wrapped timeout", &net.OpError{Op: "accept", Err: timeoutErr{}}, true},
	}
	for _, c := range cases {
		if got := isTransientAccept(c.err); got != c.want {
			t.Errorf("%s: isTransientAccept = %v, want %v", c.name, got, c.want)
		}
	}
}

// scriptedListener replays a sequence of Accept errors, then a permanent
// one; it never yields a connection.
type scriptedListener struct {
	errs  []error
	calls int
	done  chan struct{}
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	if l.calls >= len(l.errs) {
		<-l.done // keep any over-call parked instead of panicking
		return nil, net.ErrClosed
	}
	err := l.errs[l.calls]
	l.calls++
	return nil, err
}
func (l *scriptedListener) Close() error   { close(l.done); return nil }
func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestServeAcceptBackoff pins the accept-retry contract: transient errors
// are retried with exponential backoff (5ms, 10ms, 20ms, ...), a
// permanent error stops Serve and is returned.
func TestServeAcceptBackoff(t *testing.T) {
	transient := &net.OpError{Op: "accept",
		Err: os.NewSyscallError("accept", syscall.EMFILE)}
	permanent := fmt.Errorf("listener wedged: %w", syscall.EINVAL)
	ln := &scriptedListener{
		errs: []error{transient, transient, transient, permanent},
		done: make(chan struct{}),
	}
	srv := New(catalog.New(), Config{})
	defer srv.Close()
	start := time.Now()
	err := srv.Serve(ln)
	elapsed := time.Since(start)
	if !errors.Is(err, syscall.EINVAL) {
		t.Fatalf("Serve returned %v, want the permanent error", err)
	}
	if ln.calls != 4 {
		t.Errorf("accept called %d times, want 4 (3 retries + permanent)", ln.calls)
	}
	// Three transient failures back off 5 + 10 + 20 = 35ms before the
	// fourth accept; sleeps are lower bounds, so assert only the floor.
	if elapsed < 35*time.Millisecond {
		t.Errorf("Serve returned after %v, want >= 35ms of backoff", elapsed)
	}
}
