package server_test

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"tpjoin/internal/client"
	"tpjoin/internal/fault"
	"tpjoin/internal/server"
)

// The chaos tests arm internal/fault failpoints inside the server's
// production code paths and assert the process keeps serving: injected
// accept errors, mid-response connection drops, worker-pool panics and
// session-goroutine panics must each be contained to the statement or
// session they hit — no crashed process, no leaked goroutines, no
// poisoned metrics.

// expectGoroutines records the goroutine count now and, at test end
// (after the server cleanup), polls until the count settles back. The
// helper must be called before startServer so its cleanup runs last.
func expectGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Keep-alive admin HTTP connections are pooled goroutines, not
		// leaks; drop them before counting.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before+3 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutines leaked: %d, want ≤ %d (+3 slack)\n%s",
					runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// queryOnFreshConn dials, runs one statement and hangs up, returning the
// query error (or the dial error).
func queryOnFreshConn(t *testing.T, addr, q string) error {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Query(context.Background(), q)
	return err
}

// TestChaosAcceptErrors: transient accept failures (here injected as
// ECONNABORTED, dropping the first three connections) must be retried by
// the accept loop, not end it — connections after the fault quota serve
// normally.
func TestChaosAcceptErrors(t *testing.T) {
	expectGoroutines(t)
	fault.Set("server.accept", fault.Times(3, fault.Errorf("injected accept failure: %w", syscall.ECONNABORTED)))
	t.Cleanup(fault.Reset)
	srv, addr := startServer(t, testCatalog(t), server.Config{})

	dropped, served := 0, 0
	for i := 0; i < 10 && served == 0; i++ {
		if err := queryOnFreshConn(t, addr, joinQueries[0]); err != nil {
			dropped++
			continue
		}
		served++
	}
	if served == 0 {
		t.Fatal("no connection served after the injected accept errors")
	}
	if dropped != 3 {
		t.Errorf("dropped %d connections, want exactly the 3 injected", dropped)
	}
	// The surviving server's accounting is sane: the served statement is
	// counted and no session is stuck open.
	if m := srv.Metrics(); m.QueriesServed == 0 {
		t.Error("served query not counted after chaos")
	}
	waitFor(t, "sessions to close", func() bool { return srv.Metrics().SessionsActive == 0 })
}

// TestChaosWireDrops: a connection dropped between request and response
// (decode-side and encode-side faults) kills only that session; the
// statement's fate differs — a decode drop never evaluates it, an encode
// drop evaluates it but loses the response — and either way the next
// connection serves normally.
func TestChaosWireDrops(t *testing.T) {
	expectGoroutines(t)
	srv, addr := startServer(t, testCatalog(t), server.Config{})
	baseline, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()
	if _, err := baseline.Query(context.Background(), joinQueries[0]); err != nil {
		t.Fatal(err)
	}
	servedBefore := srv.Metrics().QueriesServed

	fault.Set("server.wire.decode", fault.Times(1, fault.Errorf("injected decode drop")))
	t.Cleanup(fault.Reset)
	if err := queryOnFreshConn(t, addr, joinQueries[0]); err == nil {
		t.Error("decode-dropped statement returned a response")
	}
	if got := srv.Metrics().QueriesServed; got != servedBefore {
		t.Errorf("decode drop evaluated the statement (served %d → %d)", servedBefore, got)
	}

	fault.Set("server.wire.encode", fault.Times(1, fault.Errorf("injected encode drop")))
	if err := queryOnFreshConn(t, addr, joinQueries[0]); err == nil {
		t.Error("encode-dropped statement returned a response")
	}
	waitFor(t, "encode drop to be counted", func() bool {
		return srv.Metrics().QueriesServed == servedBefore+1
	})

	// The surviving sessions keep serving and nothing is stuck.
	if _, err := baseline.Query(context.Background(), joinQueries[0]); err != nil {
		t.Errorf("pre-existing session broken by wire chaos: %v", err)
	}
	if err := queryOnFreshConn(t, addr, joinQueries[0]); err != nil {
		t.Errorf("fresh session broken by wire chaos: %v", err)
	}
	waitFor(t, "sessions to close", func() bool { return srv.Metrics().SessionsActive == 1 })
}

// TestChaosWorkerPanic: a panic inside the parallel worker pool surfaces
// as that query's error (class "panic") on the same session, which —
// like the server — keeps working once the fault is cleared.
func TestChaosWorkerPanic(t *testing.T) {
	expectGoroutines(t)
	srv, addr := startServer(t, testCatalog(t), server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, q := range []string{"SET strategy = pnj", "SET join_workers = 3"} {
		if _, err := c.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	fault.Set("par.worker", fault.Panicf("chaos in worker"))
	t.Cleanup(fault.Reset)
	resp, err := c.Query(ctx, joinQueries[0])
	se, ok := err.(*client.ServerError)
	if !ok {
		t.Fatalf("worker panic surfaced as %T (%v), want ServerError", err, err)
	}
	if se.ErrClass != "panic" || !strings.Contains(se.Msg, "chaos in worker") {
		t.Errorf("worker panic error = class %q msg %q", se.ErrClass, se.Msg)
	}
	if resp == nil || resp.QueryID == 0 {
		t.Errorf("panicked query carries no query ID: %+v", resp)
	}

	fault.Clear("par.worker")
	if resp, err := c.Query(ctx, joinQueries[0]); err != nil || resp.RowCount == 0 {
		t.Fatalf("session dead after contained worker panic: rows=%v err=%v", resp, err)
	}
	if m := srv.Metrics(); m.AdmissionInflight != 0 {
		t.Errorf("inflight gauge poisoned by panic: %d", m.AdmissionInflight)
	}
}

// TestChaosSessionPanic: a panic on the session goroutine itself (outside
// any statement) drops that session — cleanup still runs, the gauge
// returns to zero — and the process accepts the next connection.
func TestChaosSessionPanic(t *testing.T) {
	expectGoroutines(t)
	srv, addr := startServer(t, testCatalog(t), server.Config{})

	fault.Set("server.session", fault.Times(1, fault.Panicf("chaos in session")))
	t.Cleanup(fault.Reset)
	if err := queryOnFreshConn(t, addr, joinQueries[0]); err == nil {
		t.Error("statement served on a panicked session")
	}
	waitFor(t, "panicked session to be cleaned up", func() bool {
		return srv.Metrics().SessionsActive == 0
	})

	if err := queryOnFreshConn(t, addr, joinQueries[0]); err != nil {
		t.Fatalf("server dead after contained session panic: %v", err)
	}
}

// TestChaosUnderAdmission: worker panics with the admission gate on must
// release their slots — a panicking statement cannot leak capacity.
func TestChaosUnderAdmission(t *testing.T) {
	expectGoroutines(t)
	srv, addr := startServer(t, testCatalog(t), server.Config{
		MaxInflight: 1, QueueDepth: 0, QueueWait: time.Second,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, q := range []string{"SET strategy = pnj", "SET join_workers = 2"} {
		if _, err := c.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	fault.Set("par.worker", fault.Times(2, fault.Panicf("chaos")))
	t.Cleanup(fault.Reset)
	for i := 0; i < 2; i++ {
		if _, err := c.Query(ctx, joinQueries[0]); err == nil {
			t.Fatal("panic-injected query succeeded")
		}
	}
	// Both slots released despite the panics: the next statement is
	// admitted immediately and succeeds.
	if resp, err := c.Query(ctx, joinQueries[0]); err != nil || resp.RowCount == 0 {
		t.Fatalf("slot leaked by panicked statement: rows=%v err=%v", resp, err)
	}
	if m := srv.Metrics(); m.AdmissionInflight != 0 || m.AdmissionRejected != 0 {
		t.Errorf("admission accounting after panics: inflight %d rejected %d, want 0/0",
			m.AdmissionInflight, m.AdmissionRejected)
	}
}
