package server_test

// Race and leak coverage for the EXPLAIN ANALYZE instrumentation: many
// concurrent sessions running ANALYZE queries (each feeds the shared
// per-operator \metrics counters) interleaved with \metrics scrapes, and
// a goroutine-leak check after PNJ queries cancelled mid-Open by their
// per-request timeout. CI runs this package under -race, which is what
// makes the concurrent counter updates meaningful coverage.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tpjoin/internal/catalog"
	"tpjoin/internal/client"
	"tpjoin/internal/dataset"
	"tpjoin/internal/server"
	"tpjoin/internal/shell"
)

// TestConcurrentAnalyzeSessions: 8 sessions × 6 ANALYZE queries across
// all three strategies, racing against \metrics scrapes. Every response
// must carry the structured plan with per-operator rows, and the final
// \metrics must expose the per-operator aggregates.
func TestConcurrentAnalyzeSessions(t *testing.T) {
	cat := testCatalog(t)
	_, addr := startServer(t, cat, server.Config{})

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions+1)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ctx := context.Background()
			strat := strategies[i%len(strategies)]
			if _, err := c.Query(ctx, "SET strategy = "+strat); err != nil {
				errs <- fmt.Errorf("SET %s: %w", strat, err)
				return
			}
			for q := 0; q < 6; q++ {
				query := joinQueries[(i+q)%len(joinQueries)]
				resp, err := c.Query(ctx, "EXPLAIN ANALYZE "+query)
				if err != nil {
					errs <- fmt.Errorf("session %d (%s): %w", i, strat, err)
					return
				}
				if resp.Plan == nil || !resp.Plan.Analyze || resp.Plan.Root == nil {
					errs <- fmt.Errorf("session %d: ANALYZE response without structured plan", i)
					return
				}
				if resp.Plan.Root.Rows == 0 {
					errs <- fmt.Errorf("session %d: ANALYZE root reports 0 rows for %q", i, query)
					return
				}
				if !strings.Contains(resp.Message, "rows=") || !strings.Contains(resp.Message, "time=") {
					errs <- fmt.Errorf("session %d: rendering lacks rows/time:\n%s", i, resp.Message)
					return
				}
			}
		}(i)
	}
	// A scraper races the ANALYZE recorders on the shared counters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for i := 0; i < 20; i++ {
			if _, err := c.Query(context.Background(), `\metrics`); err != nil {
				errs <- fmt.Errorf("scrape: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(context.Background(), `\metrics`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tpserverd_analyze_nodes_total{op="TPJoin"}`,
		`tpserverd_analyze_rows_total{op="Scan"}`,
		`tpserverd_analyze_seconds_total{op="TPJoin"}`,
	} {
		if !strings.Contains(resp.Message, want) {
			t.Errorf("\\metrics lacks %s:\n%s", want, resp.Message)
		}
	}
}

// TestCancelledPNJLeavesNoWorkers: PNJ queries aborted mid-Open by the
// per-request timeout must not leak partition worker goroutines in the
// server process.
func TestCancelledPNJLeavesNoWorkers(t *testing.T) {
	cat := catalog.New()
	shell.PreloadFig1a(cat)
	// Large enough that the join cannot finish inside the timeout.
	mr, ms := dataset.Meteo(20000, 1)
	mr.Name, ms.Name = "big_r", "big_s"
	if err := cat.Register(mr); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(ms); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, cat, server.Config{DefaultTimeout: 80 * time.Millisecond})

	before := runtime.NumGoroutine()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, q := range []string{"SET strategy = pnj", "SET join_workers = 3"} {
		if _, err := c.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		_, err := c.Query(context.Background(),
			"SELECT * FROM big_r TP LEFT JOIN big_s ON big_r.Key = big_s.Key")
		if err == nil {
			t.Fatal("query finished inside the timeout; workload too small to prove cancellation")
		}
		if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "cancel") {
			t.Fatalf("err = %v, want a context deadline/cancellation", err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after cancelled PNJ queries: %d, want ≤ %d (+3 slack)",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
