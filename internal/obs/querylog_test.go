package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// logRecords runs fn against a QueryLog writing JSON to a buffer and
// returns the decoded records.
func logRecords(t *testing.T, slow time.Duration, fn func(*QueryLog)) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	fn(NewQueryLog(slog.NewJSONHandler(&buf, nil), slow))
	var recs []map[string]any
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("bad log line: %v\n%s", err, buf.String())
		}
		recs = append(recs, m)
	}
	return recs
}

func TestQueryLogLevels(t *testing.T) {
	recs := logRecords(t, 100*time.Millisecond, func(l *QueryLog) {
		l.Record(QueryRecord{ID: 1, Session: "127.0.0.1:9", Statement: "SELECT 1", Strategy: "NJ", Rows: 1, Elapsed: time.Millisecond})
		l.Record(QueryRecord{ID: 2, Statement: "slow", Strategy: "TA", Elapsed: 200 * time.Millisecond})
		l.Record(QueryRecord{ID: 3, Statement: "boom", ErrClass: "error", Err: "boom", Elapsed: time.Millisecond})
		l.Record(QueryRecord{ID: 4, Statement: "\\nope", ErrClass: "usage", Err: "unknown command", Elapsed: time.Millisecond})
		l.Record(QueryRecord{ID: 5, Statement: "late", ErrClass: "timeout", Err: "context deadline exceeded", Elapsed: time.Millisecond})
	})
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	wantLevel := []string{"INFO", "WARN", "WARN", "INFO", "WARN"}
	for i, r := range recs {
		if r["level"] != wantLevel[i] {
			t.Errorf("record %d: level = %v, want %s (%v)", i+1, r["level"], wantLevel[i], r)
		}
		if r["query_id"] != float64(i+1) {
			t.Errorf("record %d: query_id = %v", i+1, r["query_id"])
		}
		if r["msg"] != "query" {
			t.Errorf("record %d: msg = %v", i+1, r["msg"])
		}
	}
	// The fast successful record carries the full attribute set.
	first := recs[0]
	for k, want := range map[string]any{
		"session": "127.0.0.1:9", "stmt": "SELECT 1", "strategy": "NJ",
		"auto": false, "rows": float64(1),
	} {
		if first[k] != want {
			t.Errorf("record 1: %s = %v, want %v", k, first[k], want)
		}
	}
	if _, ok := first["slow"]; ok {
		t.Error("fast query marked slow")
	}
	if _, ok := first["err_class"]; ok {
		t.Error("successful query carries err_class")
	}
	// The slow record is flagged, the error records classed.
	if recs[1]["slow"] != true {
		t.Errorf("slow query not flagged: %v", recs[1])
	}
	if recs[2]["err_class"] != "error" || recs[2]["err"] != "boom" {
		t.Errorf("error record missing class/message: %v", recs[2])
	}
}

func TestQueryLogSlowDisabled(t *testing.T) {
	recs := logRecords(t, 0, func(l *QueryLog) {
		l.Record(QueryRecord{ID: 1, Statement: "x", Elapsed: time.Hour})
	})
	if recs[0]["level"] != "INFO" {
		t.Errorf("slow=0 must never promote by latency: %v", recs[0])
	}
}

func TestQueryLogNilSafe(t *testing.T) {
	var l *QueryLog
	l.Record(QueryRecord{ID: 1}) // must not panic
}

func TestTruncateStatement(t *testing.T) {
	if got := TruncateStatement("short"); got != "short" {
		t.Errorf("short statement altered: %q", got)
	}
	long := strings.Repeat("x", StatementTruncateLen+100)
	got := TruncateStatement(long)
	if len(got) != StatementTruncateLen+len("…") {
		t.Errorf("truncated length = %d", len(got))
	}
	if !strings.HasSuffix(got, "…") {
		t.Errorf("no ellipsis: %q", got[len(got)-8:])
	}
	// Truncation never splits a rune: a multi-byte char straddling the
	// limit is dropped whole.
	runes := strings.Repeat("é", StatementTruncateLen) // 2 bytes each
	got = TruncateStatement(runes)
	if !strings.HasSuffix(got, "…") || strings.ContainsRune(got, '�') {
		t.Errorf("rune split in truncation: %q", got[len(got)-8:])
	}
	for _, r := range got {
		if r != 'é' && r != '…' {
			t.Errorf("mangled rune %q in truncation", r)
		}
	}
	// The record path truncates too.
	recs := logRecords(t, 0, func(l *QueryLog) {
		l.Record(QueryRecord{ID: 1, Statement: long})
	})
	if s, _ := recs[0]["stmt"].(string); len(s) > StatementTruncateLen+len("…") {
		t.Errorf("Record did not truncate: %d bytes", len(s))
	}
}
