package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramObserveBuckets(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	// One observation per bucket region: below the first bound, inside a
	// middle bucket, above the last bound.
	h.Observe(0.00005) // ≤ 0.0001
	h.Observe(0.005)   // (0.00316, 0.01]
	h.Observe(250)     // +Inf bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if got := s.Sum; math.Abs(got-250.00505) > 1e-9 {
		t.Errorf("sum = %v, want 250.00505", got)
	}
	if s.Counts[0] != 1 {
		t.Errorf("first bucket = %d, want 1", s.Counts[0])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket sum %d != count %d", total, s.Count)
	}

	// A value exactly on a bound lands in that bound's bucket (le
	// semantics: inclusive upper bound).
	h2 := NewHistogram([]float64{1, 10})
	h2.Observe(1)
	if s2 := h2.Snapshot(); s2.Counts[0] != 1 {
		t.Errorf("boundary value not in its le bucket: %v", s2.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all in (0.00316, 0.01]
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		got := s.Quantile(q)
		if got < 0.00316 || got > 0.01 {
			t.Errorf("Quantile(%v) = %v, want within the (0.00316, 0.01] bucket", q, got)
		}
	}
	// Empty histogram.
	if got := NewHistogram(LatencyBounds()).Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// Overflow rank reports the highest finite bound (a lower bound on
	// the true quantile).
	h2 := NewHistogram(LatencyBounds())
	h2.Observe(1000)
	if got := h2.Snapshot().Quantile(0.99); got != 100 {
		t.Errorf("overflow quantile = %v, want 100", got)
	}
	// Quantiles are monotone in q across buckets.
	h3 := NewHistogram(LatencyBounds())
	for i := 0; i < 90; i++ {
		h3.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h3.Observe(5)
	}
	s3 := h3.Snapshot()
	if p50, p99 := s3.Quantile(0.5), s3.Quantile(0.99); p50 >= p99 {
		t.Errorf("p50 %v >= p99 %v", p50, p99)
	} else if p99 < 3.16 || p99 > 10 {
		t.Errorf("p99 = %v, want within (3.16, 10]", p99)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := NewHistogram(LatencyBounds()), NewHistogram(LatencyBounds())
	a.Observe(0.005)
	a.Observe(0.2)
	b.Observe(0.005)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 {
		t.Errorf("merged count = %d, want 3", m.Count)
	}
	if math.Abs(m.Sum-0.21) > 1e-9 {
		t.Errorf("merged sum = %v, want 0.21", m.Sum)
	}
	var total int64
	for _, c := range m.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("merged bucket sum = %d, want 3", total)
	}

	defer func() {
		if recover() == nil {
			t.Error("merging mismatched bucket schemes must panic")
		}
	}()
	_ = a.Snapshot().Merge(NewHistogram(RowBounds()).Snapshot())
}

// TestHistogramConcurrentObserve drives concurrent Observes against
// snapshots; run under -race this pins the lock-free scheme, and the
// final totals prove no increment was lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w+1) * 0.001)
			}
		}(w)
	}
	// Concurrent scrapes while observers run.
	for i := 0; i < 100; i++ {
		_ = h.Snapshot()
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(workers * perWorker); s.Count != want {
		t.Errorf("count = %d, want %d", s.Count, want)
	}
	var wantSum float64
	for w := 0; w < workers; w++ {
		wantSum += float64(w+1) * 0.001 * perWorker
	}
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v (lost updates?)", s.Sum, wantSum)
	}
}
