package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"tpjoin/internal/engine"
	"tpjoin/internal/plan"
)

// populatedMetrics builds a collector exercising every family: sessions,
// successes across strategies, an error, a timeout and an ANALYZE tree.
func populatedMetrics() *Metrics {
	m := NewMetrics()
	m.SessionOpened()
	m.SessionOpened()
	m.SessionClosed()
	for s := engine.Strategy(0); s < engine.NumStrategies; s++ {
		m.ObserveQuery(QueryOutcome{
			Strategy: s, AutoPick: s%2 == 0, RowsKind: true,
			Rows: 10 * int(s+1), Elapsed: time.Duration(s+1) * time.Millisecond,
		})
	}
	m.ObserveQuery(QueryOutcome{Strategy: engine.StrategyNJ, Err: errors.New("boom"), Elapsed: time.Millisecond})
	m.ObserveQuery(QueryOutcome{Strategy: engine.StrategyTA, Err: context.DeadlineExceeded, Elapsed: time.Second})
	m.ObserveQuery(QueryOutcome{
		Strategy: engine.StrategyNJ, RowsKind: false, Elapsed: time.Millisecond,
		Plan: &plan.Tree{Analyze: true, Root: &plan.Node{
			Desc: "TPJoin [INNER] strategy=NJ", Rows: 7, TimeUS: 1200,
			Children: []*plan.Node{{Desc: "Scan a (2 tuples)", Rows: 2}},
		}},
	})
	return m
}

// TestRenderWellFormed is the parser-based exposition regression: every
// line of Render must be well-formed, every family HELP/TYPE'd before its
// samples and contiguous, no duplicate series, histogram buckets
// cumulative with +Inf == _count.
func TestRenderWellFormed(t *testing.T) {
	text := populatedMetrics().Snapshot().Render()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition not well-formed: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE tpserverd_query_seconds histogram",
		`tpserverd_query_seconds_bucket{strategy="NJ",le="0.00316"} 1`,
		`tpserverd_query_seconds_bucket{strategy="NJ",le="+Inf"} 1`,
		`tpserverd_query_seconds_count{strategy="NJ"} 1`,
		`tpserverd_query_rows_bucket{le="31"} 3`,
		"tpserverd_uptime_seconds ",
		"tpserverd_go_goroutines ",
		"tpserverd_go_heap_inuse_bytes ",
		"tpserverd_go_gc_pause_seconds_total ",
		"tpserverd_query_errors_total 2",
		"tpserverd_query_timeouts_total 1",
		"tpserverd_sessions_active 1",
		`tpserverd_analyze_rows_total{op="Scan"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// The runtime gauges are real readings, not zeros.
	s := populatedMetrics().Snapshot()
	if s.Goroutines <= 0 || s.HeapInuseBytes <= 0 || s.UptimeSeconds < 0 {
		t.Errorf("runtime gauges not populated: %+v", s)
	}
}

// TestValidateExpositionRejects pins the validator's teeth: hand-broken
// expositions must fail, or the format test proves nothing.
func TestValidateExpositionRejects(t *testing.T) {
	for name, text := range map[string]string{
		"sample before HELP/TYPE": "x_total 1\n",
		"bad value":               "# HELP x_total h\n# TYPE x_total counter\nx_total one\n",
		"duplicate series":        "# HELP x_total h\n# TYPE x_total counter\nx_total 1\nx_total 2\n",
		"invalid type":            "# HELP x h\n# TYPE x summary2\nx 1\n",
		"non-contiguous family":   "# HELP x h\n# TYPE x counter\n# HELP y h\n# TYPE y counter\nx 1\ny 1\nx{a=\"b\"} 1\n",
		"unterminated labels":     "# HELP x h\n# TYPE x counter\nx{a=\"b 1\n",
		"histogram without count": "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"non-cumulative buckets":  "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count":            "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
	} {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: validator accepted broken exposition:\n%s", name, text)
		}
	}
	// And the happy path with a labelled histogram stays accepted.
	ok := "# HELP h h\n# TYPE h histogram\n" +
		"h_bucket{s=\"a\",le=\"1\"} 1\nh_bucket{s=\"a\",le=\"+Inf\"} 2\nh_sum{s=\"a\"} 3\nh_count{s=\"a\"} 2\n" +
		"h_bucket{s=\"b\",le=\"1\"} 0\nh_bucket{s=\"b\",le=\"+Inf\"} 0\nh_sum{s=\"b\"} 0\nh_count{s=\"b\"} 0\n"
	if err := ValidateExposition(ok); err != nil {
		t.Errorf("validator rejected well-formed exposition: %v", err)
	}
}

// TestConcurrentObserveVsRender races histogram records and counter
// updates against /metrics-style scrapes; meaningful under -race (CI
// runs this package in the race job), and every scrape must stay
// parseable mid-flight.
func TestConcurrentObserveVsRender(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.ObserveQuery(QueryOutcome{
					Strategy: engine.Strategy(i % int(engine.NumStrategies)),
					RowsKind: true, Rows: i % 1000,
					Elapsed: time.Duration(i%50) * time.Millisecond,
				})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if err := ValidateExposition(m.Snapshot().Render()); err != nil {
			t.Errorf("scrape %d unparseable during concurrent records: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := ValidateExposition(m.Snapshot().Render()); err != nil {
		t.Errorf("final scrape unparseable: %v", err)
	}
}

// TestLiveExposition validates a running server's /metrics endpoint when
// METRICS_URL is set (the CI e2e job sets it after starting tpserverd
// with -http); otherwise it skips. This is the "fail on unparseable
// exposition output" gate.
func TestLiveExposition(t *testing.T) {
	url := os.Getenv("METRICS_URL")
	if url == "" {
		t.Skip("METRICS_URL not set; live exposition check runs in the CI e2e job")
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(string(body)); err != nil {
		t.Fatalf("live exposition not well-formed: %v", err)
	}
	for _, want := range []string{
		"tpserverd_query_seconds_bucket{strategy=",
		"tpserverd_uptime_seconds",
		"tpserverd_queries_served_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("live exposition missing %q", want)
		}
	}
	fmt.Printf("live exposition ok: %d bytes\n", len(body))
}
