package obs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpjoin/internal/engine"
	"tpjoin/internal/plan"
)

// strategyCount is the number of join strategies broken out in the
// per-strategy counters, taken from the engine's enum so a new strategy
// is counted from the day it exists.
const strategyCount = int(engine.NumStrategies)

// Metrics is the metrics collector shared by tpserverd and the REPL:
// monotonic counters, gauges and lock-free latency/row-count histograms,
// updated atomically by session goroutines. Snapshot returns a
// consistent-enough point-in-time copy (plus runtime gauges read at
// snapshot time); Snapshot().Render() produces the Prometheus text
// exposition served identically by the \metrics builtin and the HTTP
// /metrics endpoint.
//
// Besides the totals, queries, rows and execution time are broken out per
// join strategy (the strategy the planner attributed to the statement),
// per-strategy latency histograms make p50/p99 under concurrent sessions
// observable, and the last query's wall time and row count are exported
// as gauges. Construct with NewMetrics — the histograms need their bucket
// arrays.
type Metrics struct {
	start time.Time

	sessionsOpened atomic.Int64
	sessionsActive atomic.Int64
	queriesServed  atomic.Int64
	queryErrors    atomic.Int64
	queryTimeouts  atomic.Int64
	rowsReturned   atomic.Int64
	execMicros     atomic.Int64

	// lastQuery holds both last-query values behind one pointer, so a
	// \metrics scrape never reports a torn pair (rows from one query,
	// seconds from another) under concurrent sessions.
	lastQuery atomic.Pointer[lastQuerySample]

	// Admission-control accounting: every statement that reaches the
	// admission gate is either admitted (queued counts the subset that
	// waited for a slot first) or rejected as overloaded; queueWait
	// buckets the time spent at the gate either way, and admInflight
	// gauges the statements currently holding a slot.
	admAdmitted atomic.Int64
	admQueued   atomic.Int64
	admRejected atomic.Int64
	admInflight atomic.Int64
	queueWait   *Histogram

	perStrategy [strategyCount]strategyMetrics

	// latency buckets every attributed query's wall time per strategy
	// (tpserverd_query_seconds); queryRows buckets result cardinalities
	// (tpserverd_query_rows).
	latency   [strategyCount]*Histogram
	queryRows *Histogram

	// autoPicks counts, per physical strategy, how many TP joins the
	// cost-based picker (SET strategy = auto) routed there — the server's
	// view of which side of the paper's workload dichotomy its traffic
	// lands on.
	autoPicks [strategyCount]atomic.Int64

	// perOp aggregates the per-operator ANALYZE counters (rows produced
	// and inclusive wall time per operator kind) across every EXPLAIN
	// ANALYZE executed — the same counters the ANALYZE tree reports per
	// query, accumulated for \metrics. Guarded by opMu; ANALYZE is a
	// diagnostic path, so a mutex (not atomics) is fine.
	opMu  sync.Mutex
	perOp map[string]*opCounters

	// planCache, when set (SetPlanCache), supplies the plan-cache counters
	// at snapshot time — the cache keeps its own atomics; the collector
	// only reads a point-in-time copy. Nil omits the families entirely
	// (surfaces without a cache).
	planCache atomic.Pointer[func() plan.CacheStats]
}

// SetPlanCache wires the plan-cache counter source (typically
// plan.Cache.Stats) into the exposition; the tpserverd_plan_cache_*
// families appear in every subsequent Snapshot.
func (m *Metrics) SetPlanCache(stats func() plan.CacheStats) {
	m.planCache.Store(&stats)
}

// NewMetrics returns a collector with the standard bucket schemes,
// anchored at the current time for the uptime gauge.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now(), queryRows: NewHistogram(RowBounds()),
		queueWait: NewHistogram(LatencyBounds())}
	for i := range m.latency {
		m.latency[i] = NewHistogram(LatencyBounds())
	}
	return m
}

type opCounters struct {
	nodes  int64
	rows   int64
	micros int64
}

type lastQuerySample struct {
	micros int64
	rows   int64
}

type strategyMetrics struct {
	queries atomic.Int64
	rows    atomic.Int64
	micros  atomic.Int64
}

// SessionOpened counts one session open (total + active gauge).
func (m *Metrics) SessionOpened() {
	m.sessionsOpened.Add(1)
	m.sessionsActive.Add(1)
}

// SessionClosed decrements the active-session gauge.
func (m *Metrics) SessionClosed() { m.sessionsActive.Add(-1) }

// AdmissionAdmitted counts one statement admitted through the gate:
// queued marks that it waited for a slot first, wait is the time it spent
// waiting (zero for an immediate grant — recorded in the histogram
// regardless, so the queue-wait distribution reflects every admitted
// statement, not only the unlucky ones). Pair with AdmissionReleased when
// the statement finishes.
func (m *Metrics) AdmissionAdmitted(queued bool, wait time.Duration) {
	m.admAdmitted.Add(1)
	if queued {
		m.admQueued.Add(1)
	}
	m.admInflight.Add(1)
	m.queueWait.Observe(wait.Seconds())
}

// AdmissionReleased returns one admitted statement's slot to the gauge.
func (m *Metrics) AdmissionReleased() { m.admInflight.Add(-1) }

// AdmissionRejected counts one statement rejected as overloaded (queue
// full or queue wait expired) after waiting for the given time.
func (m *Metrics) AdmissionRejected(wait time.Duration) {
	m.admRejected.Add(1)
	m.queueWait.Observe(wait.Seconds())
}

// QueryOutcome describes one evaluated statement for accounting: the
// strategy it is attributed to, whether the cost-based picker chose it,
// what it produced and how it ended. Both surfaces (tpserverd's handler
// and the REPL) build one of these per statement and feed it to
// ObserveQuery, so the accounting rules cannot drift between them.
type QueryOutcome struct {
	// Strategy is the physical strategy the statement is attributed to:
	// the planner's pick when a TP join was planned, the session's forced
	// setting otherwise (see EffectiveStrategy).
	Strategy engine.Strategy
	// AutoPick marks a planned join routed by the cost-based picker
	// (SET strategy = auto), counted in tpserverd_auto_strategy_total.
	AutoPick bool
	// RowsKind marks statements that produced a result relation; only
	// those update the per-strategy throughput counters and histograms
	// (SET and backslash commands are not workload).
	RowsKind bool
	Rows     int
	Elapsed  time.Duration
	Err      error
	// Plan carries the EXPLAIN [ANALYZE] tree, if the statement produced
	// one, for the per-operator aggregates.
	Plan *plan.Tree
}

// ObserveQuery folds one statement outcome into the counters. Safe for
// concurrent use.
func (m *Metrics) ObserveQuery(o QueryOutcome) {
	m.queriesServed.Add(1)
	m.execMicros.Add(o.Elapsed.Microseconds())
	if o.AutoPick && int(o.Strategy) < strategyCount {
		m.autoPicks[o.Strategy].Add(1)
	}
	if o.Err != nil {
		m.queryErrors.Add(1)
		if errors.Is(o.Err, context.DeadlineExceeded) || errors.Is(o.Err, context.Canceled) {
			m.queryTimeouts.Add(1)
		}
	} else {
		m.rowsReturned.Add(int64(o.Rows))
		if o.RowsKind {
			m.recordQuery(o.Strategy, o.Rows, o.Elapsed)
		}
	}
	if o.Plan != nil {
		m.recordAnalyze(o.Plan)
		// A timed-out ANALYZE is reported as a successful response with
		// the abort reason in the tree; keep it visible in the timeout
		// counter regardless, or the diagnostic queries users run when
		// investigating slowness would vanish from the metric.
		if o.Plan.Abort != "" {
			m.queryTimeouts.Add(1)
		}
	}
}

// EffectiveStrategy resolves the strategy a just-executed statement is
// attributed to: the planner's recorded pick when the statement planned a
// TP join, the session's forced physical setting otherwise (join-free
// queries still need a bucket; under auto that is the nominal NJ
// default).
func EffectiveStrategy(sess *plan.Session) engine.Strategy {
	if strat, _, ok := sess.PlannedJoin(); ok {
		return strat
	}
	strat, _ := sess.Strategy.Physical()
	return strat
}

// recordQuery attributes one executed query to its join strategy,
// updates the last-query gauges and buckets the latency and cardinality
// histograms.
func (m *Metrics) recordQuery(strategy engine.Strategy, rows int, elapsed time.Duration) {
	m.lastQuery.Store(&lastQuerySample{micros: elapsed.Microseconds(), rows: int64(rows)})
	m.queryRows.Observe(float64(rows))
	if int(strategy) >= strategyCount {
		return
	}
	sm := &m.perStrategy[strategy]
	sm.queries.Add(1)
	sm.rows.Add(int64(rows))
	sm.micros.Add(elapsed.Microseconds())
	m.latency[strategy].Observe(elapsed.Seconds())
}

// recordAnalyze folds one executed ANALYZE plan into the per-operator
// counters, keyed by operator kind (the first token of the node
// description, e.g. "TPJoin", "Scan").
func (m *Metrics) recordAnalyze(t *plan.Tree) {
	if t == nil || !t.Analyze || t.Root == nil {
		return
	}
	m.opMu.Lock()
	defer m.opMu.Unlock()
	if m.perOp == nil {
		m.perOp = make(map[string]*opCounters)
	}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		kind, _, _ := strings.Cut(n.Desc, " ")
		c := m.perOp[kind]
		if c == nil {
			c = &opCounters{}
			m.perOp[kind] = c
		}
		c.nodes++
		c.rows += n.Rows
		c.micros += n.TimeUS
		for _, k := range n.Children {
			walk(k)
		}
	}
	walk(t.Root)
}

// MetricsSnapshot is a point-in-time copy of the counters plus runtime
// gauges (uptime, goroutines, heap, GC pause total) read at snapshot
// time.
type MetricsSnapshot struct {
	SessionsOpened int64
	SessionsActive int64
	QueriesServed  int64
	QueryErrors    int64
	QueryTimeouts  int64
	RowsReturned   int64
	ExecMicros     int64

	AdmissionAdmitted int64
	AdmissionQueued   int64
	AdmissionRejected int64
	AdmissionInflight int64
	QueueWait         HistogramSnapshot

	LastQueryMicros int64
	LastQueryRows   int64

	UptimeSeconds  float64
	Goroutines     int64
	HeapInuseBytes int64
	GCPauseSeconds float64

	PerStrategy [strategyCount]StrategySnapshot
	AutoPicks   [strategyCount]int64
	Latency     [strategyCount]HistogramSnapshot
	QueryRows   HistogramSnapshot
	PerOperator map[string]OperatorSnapshot

	// PlanCache carries the shared plan cache's counters when the surface
	// wired one (SetPlanCache); HasPlanCache gates the families so
	// collectors without a cache render unchanged.
	PlanCache    plan.CacheStats
	HasPlanCache bool
}

// OperatorSnapshot is the per-operator-kind slice of the ANALYZE
// counters.
type OperatorSnapshot struct {
	Nodes  int64
	Rows   int64
	Micros int64
}

// StrategySnapshot is the per-strategy slice of the counters.
type StrategySnapshot struct {
	Queries int64
	Rows    int64
	Micros  int64
}

// Snapshot copies the counters and reads the runtime gauges.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		SessionsOpened: m.sessionsOpened.Load(),
		SessionsActive: m.sessionsActive.Load(),
		QueriesServed:  m.queriesServed.Load(),
		QueryErrors:    m.queryErrors.Load(),
		QueryTimeouts:  m.queryTimeouts.Load(),
		RowsReturned:   m.rowsReturned.Load(),
		ExecMicros:     m.execMicros.Load(),
		UptimeSeconds:  time.Since(m.start).Seconds(),
		Goroutines:     int64(runtime.NumGoroutine()),
		QueryRows:      m.queryRows.Snapshot(),

		AdmissionAdmitted: m.admAdmitted.Load(),
		AdmissionQueued:   m.admQueued.Load(),
		AdmissionRejected: m.admRejected.Load(),
		AdmissionInflight: m.admInflight.Load(),
		QueueWait:         m.queueWait.Snapshot(),
	}
	if f := m.planCache.Load(); f != nil {
		s.PlanCache = (*f)()
		s.HasPlanCache = true
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.HeapInuseBytes = int64(ms.HeapInuse)
	s.GCPauseSeconds = float64(ms.PauseTotalNs) / 1e9
	if lq := m.lastQuery.Load(); lq != nil {
		s.LastQueryMicros = lq.micros
		s.LastQueryRows = lq.rows
	}
	for i := range m.perStrategy {
		s.PerStrategy[i] = StrategySnapshot{
			Queries: m.perStrategy[i].queries.Load(),
			Rows:    m.perStrategy[i].rows.Load(),
			Micros:  m.perStrategy[i].micros.Load(),
		}
		s.AutoPicks[i] = m.autoPicks[i].Load()
		s.Latency[i] = m.latency[i].Snapshot()
	}
	m.opMu.Lock()
	if len(m.perOp) > 0 {
		s.PerOperator = make(map[string]OperatorSnapshot, len(m.perOp))
		for k, c := range m.perOp {
			s.PerOperator[k] = OperatorSnapshot{Nodes: c.nodes, Rows: c.rows, Micros: c.micros}
		}
	}
	m.opMu.Unlock()
	return s
}

// family writes one metric family's # HELP/# TYPE header. The text
// exposition format requires all samples of a family grouped behind its
// header, so Render emits strictly family by family.
func family(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// fnum renders a float sample value without exponent noise for integral
// values (Prometheus accepts both; plain decimals keep the output
// greppable).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes the full Prometheus text exposition (version 0.0.4):
// every counter and gauge with # HELP/# TYPE metadata, the per-strategy
// families, the latency/row-count histograms and the per-operator ANALYZE
// aggregates. This is the single render path behind the \metrics builtin
// and the HTTP /metrics endpoint.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	gauge := func(name, help string, val string) {
		family(&b, name, "gauge", help)
		fmt.Fprintf(&b, "%s %s\n", name, val)
	}
	counter := func(name, help string, val string) {
		family(&b, name, "counter", help)
		fmt.Fprintf(&b, "%s %s\n", name, val)
	}
	gauge("tpserverd_uptime_seconds", "Seconds since the metrics collector started.", fnum(s.UptimeSeconds))
	gauge("tpserverd_go_goroutines", "Live goroutines in the process.", fmt.Sprint(s.Goroutines))
	gauge("tpserverd_go_heap_inuse_bytes", "Heap bytes in use (runtime.MemStats.HeapInuse).", fmt.Sprint(s.HeapInuseBytes))
	counter("tpserverd_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause seconds.", fnum(s.GCPauseSeconds))
	counter("tpserverd_sessions_opened_total", "Sessions opened since start.", fmt.Sprint(s.SessionsOpened))
	gauge("tpserverd_sessions_active", "Currently open sessions.", fmt.Sprint(s.SessionsActive))
	counter("tpserverd_queries_served_total", "Statements evaluated (including failed ones).", fmt.Sprint(s.QueriesServed))
	counter("tpserverd_query_errors_total", "Statements that returned an error.", fmt.Sprint(s.QueryErrors))
	counter("tpserverd_query_timeouts_total", "Statements aborted by deadline or cancellation.", fmt.Sprint(s.QueryTimeouts))
	counter("tpserverd_rows_returned_total", "Result rows returned to clients.", fmt.Sprint(s.RowsReturned))
	counter("tpserverd_exec_seconds_total", "Total statement execution wall time.", fnum(float64(s.ExecMicros)/1e6))
	counter("tpserverd_admission_admitted_total", "Statements granted a query slot by admission control.", fmt.Sprint(s.AdmissionAdmitted))
	counter("tpserverd_admission_queued_total", "Admitted statements that waited in the admission queue first.", fmt.Sprint(s.AdmissionQueued))
	counter("tpserverd_admission_rejected_total", "Statements rejected as overloaded (admission queue full or wait expired).", fmt.Sprint(s.AdmissionRejected))
	gauge("tpserverd_admission_inflight", "Statements currently holding a query slot.", fmt.Sprint(s.AdmissionInflight))
	family(&b, "tpserverd_admission_queue_wait_seconds", "histogram", "Time statements spent at the admission gate before a slot grant or rejection.")
	renderHistogram(&b, "tpserverd_admission_queue_wait_seconds", "", s.QueueWait)
	gauge("tpserverd_last_query_seconds", "Wall time of the most recent row-producing query.", fnum(float64(s.LastQueryMicros)/1e6))
	gauge("tpserverd_last_query_rows", "Row count of the most recent row-producing query.", fmt.Sprint(s.LastQueryRows))
	if s.HasPlanCache {
		counter("tpserverd_plan_cache_hits_total", "EXECUTE statements planned from the shared plan cache (stats profiling and strategy pick skipped).", fmt.Sprint(s.PlanCache.Hits))
		counter("tpserverd_plan_cache_misses_total", "EXECUTE statements planned fresh (no valid cache entry).", fmt.Sprint(s.PlanCache.Misses))
		counter("tpserverd_plan_cache_evictions_total", "Plan-cache entries evicted by the LRU capacity bound.", fmt.Sprint(s.PlanCache.Evictions))
		counter("tpserverd_plan_cache_invalidations_total", "Plan-cache entries dropped because a referenced relation changed (length/Version/identity).", fmt.Sprint(s.PlanCache.Invalidations))
		gauge("tpserverd_plan_cache_entries", "Plan-cache entries currently resident.", fmt.Sprint(s.PlanCache.Entries))
	}

	labels := make([]string, strategyCount)
	for i := range labels {
		labels[i] = engine.Strategy(i).String()
	}
	family(&b, "tpserverd_strategy_queries_total", "counter", "Row-producing queries per attributed join strategy.")
	for i, l := range labels {
		fmt.Fprintf(&b, "tpserverd_strategy_queries_total{strategy=%q} %d\n", l, s.PerStrategy[i].Queries)
	}
	family(&b, "tpserverd_strategy_rows_total", "counter", "Result rows per attributed join strategy.")
	for i, l := range labels {
		fmt.Fprintf(&b, "tpserverd_strategy_rows_total{strategy=%q} %d\n", l, s.PerStrategy[i].Rows)
	}
	family(&b, "tpserverd_strategy_exec_seconds_total", "counter", "Execution wall time per attributed join strategy.")
	for i, l := range labels {
		fmt.Fprintf(&b, "tpserverd_strategy_exec_seconds_total{strategy=%q} %g\n", l, float64(s.PerStrategy[i].Micros)/1e6)
	}
	family(&b, "tpserverd_auto_strategy_total", "counter", "TP joins the cost-based picker (SET strategy = auto) routed to each physical strategy.")
	for i, l := range labels {
		fmt.Fprintf(&b, "tpserverd_auto_strategy_total{strategy=%q} %d\n", l, s.AutoPicks[i])
	}

	family(&b, "tpserverd_query_seconds", "histogram", "Latency of row-producing queries per attributed join strategy.")
	for i, l := range labels {
		renderHistogram(&b, "tpserverd_query_seconds", fmt.Sprintf("strategy=%q,", l), s.Latency[i])
	}
	family(&b, "tpserverd_query_rows", "histogram", "Result-row cardinality of row-producing queries.")
	renderHistogram(&b, "tpserverd_query_rows", "", s.QueryRows)

	if len(s.PerOperator) > 0 {
		ops := make([]string, 0, len(s.PerOperator))
		for k := range s.PerOperator {
			ops = append(ops, k)
		}
		sort.Strings(ops)
		family(&b, "tpserverd_analyze_nodes_total", "counter", "EXPLAIN ANALYZE plan nodes executed, per operator kind.")
		for _, k := range ops {
			fmt.Fprintf(&b, "tpserverd_analyze_nodes_total{op=%q} %d\n", k, s.PerOperator[k].Nodes)
		}
		family(&b, "tpserverd_analyze_rows_total", "counter", "Rows produced under EXPLAIN ANALYZE, per operator kind.")
		for _, k := range ops {
			fmt.Fprintf(&b, "tpserverd_analyze_rows_total{op=%q} %d\n", k, s.PerOperator[k].Rows)
		}
		family(&b, "tpserverd_analyze_seconds_total", "counter", "Inclusive operator wall time under EXPLAIN ANALYZE, per operator kind.")
		for _, k := range ops {
			fmt.Fprintf(&b, "tpserverd_analyze_seconds_total{op=%q} %g\n", k, float64(s.PerOperator[k].Micros)/1e6)
		}
	}
	return b.String()
}

// renderHistogram writes one histogram series (cumulative le buckets,
// _sum and _count) with an optional leading label prefix like
// `strategy="NJ",`.
func renderHistogram(b *strings.Builder, name, labelPrefix string, h HistogramSnapshot) {
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, labelPrefix, fnum(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, h.Count)
	if labelPrefix != "" {
		labelPrefix = "{" + strings.TrimSuffix(labelPrefix, ",") + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelPrefix, fnum(h.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelPrefix, h.Count)
}
