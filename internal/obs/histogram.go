// Package obs is tpjoin's observability layer: lock-free log-bucketed
// histograms, the server/REPL metrics collector with its Prometheus text
// exposition (one Render path shared by the \metrics builtin and the HTTP
// /metrics endpoint, so the surfaces cannot drift), and the slog-based
// structured query log that gives every statement a joinable identity
// (query ID, session, strategy, latency, error class).
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket, log-scale histogram safe for concurrent
// use without locks: Observe is an atomic add on one bucket counter plus
// a CAS loop on the running sum, so recording on the query hot path costs
// a few uncontended atomics and never blocks a /metrics scrape.
//
// The zero value is unusable; construct with NewHistogram (the bucket
// bounds are fixed for the histogram's lifetime, which is what makes the
// lock-free scheme sound).
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets in
	// ascending order; an implicit +Inf bucket catches the overflow.
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits of the running sum
	count  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// LatencyBounds is the query-latency bucket scheme: two buckets per
// decade (×√10 steps, rounded to three significant digits so the le
// labels render cleanly) from 100µs to 100s. Values in seconds.
func LatencyBounds() []float64 {
	return []float64{
		0.0001, 0.000316,
		0.001, 0.00316,
		0.01, 0.0316,
		0.1, 0.316,
		1, 3.16,
		10, 31.6,
		100,
	}
}

// RowBounds is the result-cardinality bucket scheme: two buckets per
// decade from 1 row to 1M rows.
func RowBounds() []float64 {
	return []float64{1, 3, 10, 31, 100, 316, 1000, 3160, 10000, 31600, 100000, 316000, 1e6}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is ≥ v; len(bounds) is the +Inf
	// bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot copies the histogram state. Bucket counters are read
// individually, so a snapshot taken during concurrent Observes may be off
// by in-flight increments (consistent with the rest of the metrics
// counters) but never torn within one counter. Count is clamped to at
// least the bucket total: Observe bumps the bucket before the count, so
// a scrape can land between the two, and rendering a +Inf bucket below
// the last finite cumulative bucket would violate the exposition's
// histogram invariant.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	var total int64
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		total += s.Counts[i]
	}
	s.Count = h.count.Load()
	if s.Count < total {
		s.Count = total
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: per-bucket
// (non-cumulative) counts, the observation sum and the observation count.
// Snapshots with identical bounds are mergeable, which is what a
// scatter–gather tier needs to aggregate per-node histograms.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1, last is the +Inf bucket
	Sum    float64
	Count  int64
}

// Merge returns the bucket-wise sum of s and o. It panics if the bucket
// schemes differ — merging histograms of different shapes is a bug, not a
// recoverable condition.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) != len(o.Bounds) {
		panic("obs: merging histograms with different bucket schemes")
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			panic("obs: merging histograms with different bucket schemes")
		}
	}
	m := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Sum:    s.Sum + o.Sum,
		Count:  s.Count + o.Count,
	}
	for i := range s.Counts {
		m.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return m
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts
// using log-linear interpolation inside the selected bucket — the natural
// interpolation for log-spaced bounds. An empty histogram reports 0; a
// rank landing in the +Inf bucket reports the highest finite bound (the
// estimate is then a lower bound).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		upper := s.Bounds[i]
		lower := upper / math.Sqrt(10) // one log step below
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower * math.Pow(upper/lower, frac)
	}
	return s.Bounds[len(s.Bounds)-1]
}
