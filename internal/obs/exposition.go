package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks that text is well-formed Prometheus text
// exposition (version 0.0.4) as produced by MetricsSnapshot.Render:
//
//   - every line is a # HELP / # TYPE comment or a `name{labels} value`
//     sample with a valid metric name, parseable labels and a float value;
//   - every sample's family has # HELP and # TYPE emitted before its
//     first sample, with a valid type (counter, gauge or histogram);
//   - all samples of a family are contiguous (the format requires
//     grouping) and no series (name + label set) appears twice;
//   - histogram families carry cumulative, non-decreasing buckets whose
//     +Inf bucket equals the _count sample, per label set.
//
// It returns the first violation found, or nil. The CI e2e job and the
// format regression tests share this single definition of "parseable".
func ValidateExposition(text string) error {
	p := expositionParser{
		types:  map[string]string{},
		helped: map[string]bool{},
		closed: map[string]bool{},
		series: map[string]bool{},
		hists:  map[string]*histSeries{},
	}
	for i, line := range strings.Split(text, "\n") {
		if err := p.line(line); err != nil {
			return fmt.Errorf("line %d: %w: %q", i+1, err, line)
		}
	}
	return p.finish()
}

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

type histSeries struct {
	labels   string // series key without the le label
	bad      bool   // bucket order or cumulativity violated
	lastCum  float64
	lastLe   float64
	infCount float64
	hasInf   bool
	count    float64
	hasCount bool
}

type expositionParser struct {
	types  map[string]string // family → counter|gauge|histogram
	helped map[string]bool
	closed map[string]bool // family had samples and a later family started
	series map[string]bool // duplicate-series detection
	hists  map[string]*histSeries
	cur    string // family currently emitting samples
}

func (p *expositionParser) line(line string) error {
	if line == "" {
		return nil
	}
	if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
		name, _, ok := strings.Cut(rest, " ")
		if !ok || !metricName.MatchString(name) {
			return fmt.Errorf("malformed HELP")
		}
		p.helped[name] = true
		return nil
	}
	if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
		name, typ, ok := strings.Cut(rest, " ")
		if !ok || !metricName.MatchString(name) {
			return fmt.Errorf("malformed TYPE")
		}
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			return fmt.Errorf("invalid type %q", typ)
		}
		if _, dup := p.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for family %s", name)
		}
		p.types[name] = typ
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return fmt.Errorf("unknown comment")
	}
	return p.sample(line)
}

// sample parses one `name{labels} value` line.
func (p *expositionParser) sample(line string) error {
	nameAndLabels, valueText, ok := strings.Cut(line, " ")
	if !ok || valueText == "" || strings.Contains(valueText, " ") {
		return fmt.Errorf("want 'name value'")
	}
	value, err := strconv.ParseFloat(valueText, 64)
	if err != nil {
		return fmt.Errorf("bad value: %v", err)
	}
	name := nameAndLabels
	labels := map[string]string{}
	if open := strings.IndexByte(nameAndLabels, '{'); open >= 0 {
		if !strings.HasSuffix(nameAndLabels, "}") {
			return fmt.Errorf("unterminated label set")
		}
		name = nameAndLabels[:open]
		if err := parseLabels(nameAndLabels[open+1:len(nameAndLabels)-1], labels); err != nil {
			return err
		}
	}
	if !metricName.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}

	family, sampleKind := name, ""
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && p.types[base] == "histogram" {
			family, sampleKind = base, suffix
			break
		}
	}
	if !p.helped[family] {
		return fmt.Errorf("sample before # HELP %s", family)
	}
	typ, ok := p.types[family]
	if !ok {
		return fmt.Errorf("sample before # TYPE %s", family)
	}
	if typ == "histogram" && sampleKind == "" {
		return fmt.Errorf("bare sample %s in histogram family %s", name, family)
	}
	if typ != "histogram" && len(labels) > 0 {
		// Label sets on plain families are fine — but an le label is the
		// histogram convention and would mean a TYPE mismatch.
		if _, hasLe := labels["le"]; hasLe {
			return fmt.Errorf("le label on non-histogram family %s", family)
		}
	}

	// Grouping: once another family has emitted samples, this family must
	// not reappear.
	if p.cur != family {
		if p.closed[family] {
			return fmt.Errorf("family %s not contiguous", family)
		}
		if p.cur != "" {
			p.closed[p.cur] = true
		}
		p.cur = family
	}

	key := seriesKey(name, labels)
	if p.series[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	p.series[key] = true

	if typ == "histogram" {
		p.histSample(family, sampleKind, labels, value)
	}
	if typ == "counter" && value < 0 {
		return fmt.Errorf("negative counter")
	}
	return nil
}

// histSample tracks per-label-set bucket monotonicity and the
// +Inf-equals-count invariant.
func (p *expositionParser) histSample(family, kind string, labels map[string]string, value float64) {
	le := labels["le"]
	delete(labels, "le")
	hkey := seriesKey(family, labels)
	h := p.hists[hkey]
	if h == nil {
		h = &histSeries{labels: hkey, lastLe: -1}
		p.hists[hkey] = h
	}
	switch kind {
	case "_bucket":
		if le == "+Inf" {
			h.infCount, h.hasInf = value, true
			return
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil || bound <= h.lastLe {
			h.bad = true
		}
		if value < h.lastCum {
			h.bad = true
		} else {
			h.lastCum = value
		}
		h.lastLe = bound
	case "_count":
		h.count, h.hasCount = value, true
	}
}

func (p *expositionParser) finish() error {
	for key, h := range p.hists {
		if h.bad {
			return fmt.Errorf("histogram %s: buckets not cumulative/ordered", key)
		}
		if !h.hasInf || !h.hasCount {
			return fmt.Errorf("histogram %s: missing +Inf bucket or _count", key)
		}
		if h.infCount != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", key, h.infCount, h.count)
		}
		if h.infCount < h.lastCum {
			return fmt.Errorf("histogram %s: +Inf bucket below last finite bucket", key)
		}
	}
	return nil
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	for s != "" {
		k, rest, ok := strings.Cut(s, "=")
		if !ok || !metricName.MatchString(k) {
			return fmt.Errorf("bad label name in %q", s)
		}
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", s)
		}
		v := rest[1 : 1+end]
		if _, dup := dst[k]; dup {
			return fmt.Errorf("duplicate label %s", k)
		}
		dst[k] = v
		s = rest[2+end:]
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
