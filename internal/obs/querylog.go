package obs

import (
	"context"
	"log/slog"
	"time"
	"unicode/utf8"
)

// StatementTruncateLen bounds the statement text carried by a query-log
// record: long enough to identify any realistic statement, short enough
// that a pathological multi-megabyte query cannot bloat the audit log.
const StatementTruncateLen = 512

// QueryLog is the structured query/audit log: one slog record per
// evaluated statement, carrying the query ID (joinable against the
// Response.QueryID the client received and the EXPLAIN ANALYZE trailer),
// the session's remote address, the truncated statement, the attributed
// strategy, row count, wall time and error class. Records log at INFO;
// queries slower than the slow threshold — and failed queries — are
// promoted to WARN so a slow-query log is one level filter away.
//
// QueryLog is safe for concurrent use (slog handlers are).
type QueryLog struct {
	logger *slog.Logger
	slow   time.Duration
}

// NewQueryLog returns a query log writing through h. slow is the
// slow-query threshold; 0 disables WARN promotion by latency.
func NewQueryLog(h slog.Handler, slow time.Duration) *QueryLog {
	return &QueryLog{logger: slog.New(h), slow: slow}
}

// SlowThreshold returns the configured slow-query threshold.
func (l *QueryLog) SlowThreshold() time.Duration { return l.slow }

// QueryRecord is one statement's audit entry.
type QueryRecord struct {
	// ID is the server-assigned per-process query ID, echoed to the
	// client in Response.QueryID.
	ID uint64
	// Session identifies the issuing session (remote address, or "repl").
	Session string
	// Statement is the input line; Record truncates it for the log.
	Statement string
	// Strategy is the attributed physical join strategy; Auto marks a
	// cost-based pick (vs a forced SET strategy).
	Strategy string
	Auto     bool
	Rows     int
	// Elapsed is execution wall time only; time spent waiting at the
	// admission gate is reported separately as QueueWait, so a statement
	// that queued behind a saturated server is not logged as a slow query
	// and blamed on the engine.
	Elapsed time.Duration
	// QueueWait is the time the statement spent waiting for an admission
	// slot (zero when admission control is off or the grant was
	// immediate). It is logged as its own attribute and never feeds the
	// slow-query promotion.
	QueueWait time.Duration
	// ErrClass classifies the failure: "" (success), "timeout",
	// "canceled", "usage", "panic", "overloaded" (rejected by admission
	// control before planning — retryable), "budget" (aborted by the
	// per-query memory budget) or "error". Err carries the message.
	ErrClass string
	Err      string
}

// Record writes one audit record.
func (l *QueryLog) Record(r QueryRecord) {
	if l == nil {
		return
	}
	slow := l.slow > 0 && r.Elapsed >= l.slow
	level := slog.LevelInfo
	// Usage mistakes are client noise, not service degradation; every
	// other failure class — and every slow query — is operator-relevant.
	if slow || (r.ErrClass != "" && r.ErrClass != "usage") {
		level = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.Uint64("query_id", r.ID),
		slog.String("session", r.Session),
		slog.String("stmt", TruncateStatement(r.Statement)),
		slog.String("strategy", r.Strategy),
		slog.Bool("auto", r.Auto),
		slog.Int("rows", r.Rows),
		slog.Duration("elapsed", r.Elapsed),
	}
	if r.QueueWait > 0 {
		attrs = append(attrs, slog.Duration("queue_wait", r.QueueWait))
	}
	if slow {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	if r.ErrClass != "" {
		attrs = append(attrs, slog.String("err_class", r.ErrClass), slog.String("err", r.Err))
	}
	l.logger.LogAttrs(context.Background(), level, "query", attrs...)
}

// TruncateStatement clips s to StatementTruncateLen bytes on a rune
// boundary, marking the cut with an ellipsis.
func TruncateStatement(s string) string {
	if len(s) <= StatementTruncateLen {
		return s
	}
	cut := StatementTruncateLen
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "…"
}
