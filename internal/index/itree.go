// Package index provides a static centered interval tree over tuple
// validity intervals. The paper's evaluation runs without indexes (and so
// do the default benchmarks), but an interval index is the natural access
// path for the overlap join's probe side; OverlapJoinIndexed in
// internal/core uses one tree per join-key bucket, and an ablation
// benchmark quantifies the difference against the default sorted-bucket
// scan.
//
// The tree is built once over a fixed set of intervals (ids are caller
// payloads, typically tuple indexes) and answers stabbing/overlap queries
// in O(log n + k).
package index

import (
	"sort"

	"tpjoin/internal/interval"
)

// Entry is one indexed interval with its caller payload.
type Entry struct {
	T  interval.Interval
	ID int
}

// Tree is a static centered interval tree.
type Tree struct {
	root *node
	n    int
}

type node struct {
	center  interval.Time
	byStart []Entry // entries overlapping center, ascending start
	byEnd   []Entry // same entries, descending end
	left    *node
	right   *node
}

// Build constructs a tree over the entries (empty intervals are dropped).
// The input slice is not retained.
func Build(entries []Entry) *Tree {
	es := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if !e.T.Empty() {
			es = append(es, e)
		}
	}
	t := &Tree{n: len(es)}
	t.root = build(es)
	return t
}

// Len returns the number of indexed intervals.
func (t *Tree) Len() int { return t.n }

func build(es []Entry) *node {
	if len(es) == 0 {
		return nil
	}
	// Center: median of all endpoint midpoints — median start is simple
	// and gives balanced trees for typical workloads.
	points := make([]interval.Time, len(es))
	for i, e := range es {
		points[i] = e.T.Start + (e.T.End-e.T.Start)/2
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	center := points[len(points)/2]

	nd := &node{center: center}
	var left, right []Entry
	for _, e := range es {
		switch {
		case e.T.End <= center:
			left = append(left, e)
		case e.T.Start > center:
			right = append(right, e)
		default:
			nd.byStart = append(nd.byStart, e)
		}
	}
	nd.byEnd = append([]Entry(nil), nd.byStart...)
	sort.Slice(nd.byStart, func(i, j int) bool { return nd.byStart[i].T.Start < nd.byStart[j].T.Start })
	sort.Slice(nd.byEnd, func(i, j int) bool { return nd.byEnd[i].T.End > nd.byEnd[j].T.End })
	nd.left = build(left)
	nd.right = build(right)
	return nd
}

// Overlapping calls fn for every indexed interval overlapping q, in
// unspecified order. fn returning false stops the traversal early.
func (t *Tree) Overlapping(q interval.Interval, fn func(Entry) bool) {
	if q.Empty() {
		return
	}
	visit(t.root, q, fn)
}

func visit(nd *node, q interval.Interval, fn func(Entry) bool) bool {
	if nd == nil {
		return true
	}
	switch {
	case q.End <= nd.center:
		// Query entirely left of center: node entries overlap iff their
		// start is before q.End.
		for _, e := range nd.byStart {
			if e.T.Start >= q.End {
				break
			}
			if !fn(e) {
				return false
			}
		}
		return visit(nd.left, q, fn)
	case q.Start > nd.center:
		// Entirely right: node entries overlap iff their end is after
		// q.Start.
		for _, e := range nd.byEnd {
			if e.T.End <= q.Start {
				break
			}
			if !fn(e) {
				return false
			}
		}
		return visit(nd.right, q, fn)
	default:
		// Query straddles the center: all node entries overlap (they all
		// contain the center point, which lies in q... careful: center in
		// [q.Start, q.End) since q.Start <= center < q.End; every node
		// entry contains center, hence overlaps q).
		for _, e := range nd.byStart {
			if !fn(e) {
				return false
			}
		}
		if !visit(nd.left, q, fn) {
			return false
		}
		return visit(nd.right, q, fn)
	}
}

// Stab returns the ids of all intervals containing the time point p.
func (t *Tree) Stab(p interval.Time) []int {
	var out []int
	t.Overlapping(interval.Interval{Start: p, End: p + 1}, func(e Entry) bool {
		out = append(out, e.ID)
		return true
	})
	return out
}

// CollectOverlapping returns all entries overlapping q.
func (t *Tree) CollectOverlapping(q interval.Interval) []Entry {
	var out []Entry
	t.Overlapping(q, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}
