package index

import (
	"math/rand"
	"sort"
	"testing"

	"tpjoin/internal/interval"
)

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.CollectOverlapping(interval.New(0, 10)); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	// Empty intervals are dropped.
	tr = Build([]Entry{{T: interval.Interval{}, ID: 1}})
	if tr.Len() != 0 {
		t.Errorf("empty interval must be dropped")
	}
}

func TestBasicOverlap(t *testing.T) {
	tr := Build([]Entry{
		{T: interval.New(0, 5), ID: 0},
		{T: interval.New(3, 8), ID: 1},
		{T: interval.New(10, 12), ID: 2},
	})
	got := ids(tr.CollectOverlapping(interval.New(4, 6)))
	want := []int{0, 1}
	assertIDs(t, got, want)
	got = ids(tr.CollectOverlapping(interval.New(8, 10)))
	assertIDs(t, got, nil)
	got = ids(tr.CollectOverlapping(interval.New(11, 20)))
	assertIDs(t, got, []int{2})
}

func TestStab(t *testing.T) {
	tr := Build([]Entry{
		{T: interval.New(0, 5), ID: 0},
		{T: interval.New(3, 8), ID: 1},
	})
	assertIDs(t, tr.Stab(4), []int{0, 1})
	assertIDs(t, tr.Stab(0), []int{0})
	assertIDs(t, tr.Stab(5), []int{1})
	assertIDs(t, tr.Stab(8), nil)
}

func TestEarlyStop(t *testing.T) {
	tr := Build([]Entry{
		{T: interval.New(0, 10), ID: 0},
		{T: interval.New(0, 10), ID: 1},
		{T: interval.New(0, 10), ID: 2},
	})
	calls := 0
	tr.Overlapping(interval.New(1, 2), func(Entry) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("early stop failed: %d calls", calls)
	}
	// Query with empty interval: no calls.
	tr.Overlapping(interval.Interval{}, func(Entry) bool { t.Fatal("called"); return false })
}

func TestAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 150; trial++ {
		n := rng.Intn(60)
		entries := make([]Entry, n)
		for i := range entries {
			s := interval.Time(rng.Intn(100))
			entries[i] = Entry{T: interval.New(s, s+1+interval.Time(rng.Intn(20))), ID: i}
		}
		tr := Build(entries)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 20; q++ {
			qs := interval.Time(rng.Intn(110)) - 5
			qiv := interval.New(qs, qs+interval.Time(rng.Intn(15)))
			var want []int
			for _, e := range entries {
				if e.T.Overlaps(qiv) {
					want = append(want, e.ID)
				}
			}
			got := ids(tr.CollectOverlapping(qiv))
			assertIDs(t, got, want)
		}
	}
}

func TestDuplicateIntervals(t *testing.T) {
	// Many identical intervals (common with chained revisions).
	entries := make([]Entry, 50)
	for i := range entries {
		entries[i] = Entry{T: interval.New(5, 10), ID: i}
	}
	tr := Build(entries)
	got := tr.CollectOverlapping(interval.New(7, 8))
	if len(got) != 50 {
		t.Errorf("got %d entries, want 50", len(got))
	}
}

func ids(es []Entry) []int {
	var out []int
	for _, e := range es {
		out = append(out, e.ID)
	}
	return out
}

func assertIDs(t *testing.T, got, want []int) {
	t.Helper()
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
}
