// Package interval provides the discrete-time interval algebra used by the
// temporal-probabilistic data model: half-open intervals [Start, End) over
// int64 time points.
//
// The conventions follow the paper "Outer and Anti Joins in
// Temporal-Probabilistic Databases" (ICDE 2019): time is a linearly ordered
// set of discrete time points (chronons), a tuple is valid at every time
// point t with Start <= t < End, and an interval is non-empty iff
// Start < End.
package interval

import (
	"fmt"
	"math"
)

// Time is a discrete time point (chronon).
type Time = int64

// Reserved sentinel points for open-ended horizons. They are ordinary
// values of Time; the algebra treats them like any other point, which keeps
// all operations total.
const (
	// MinTime is the smallest representable time point.
	MinTime Time = math.MinInt64
	// MaxTime is the largest representable time point; an interval that
	// ends at MaxTime is conventionally "until forever".
	MaxTime Time = math.MaxInt64
)

// Interval is a half-open interval [Start, End) of discrete time points.
// The zero value is the empty interval [0, 0).
type Interval struct {
	Start Time
	End   Time
}

// New returns the interval [start, end). It panics if start > end, which
// always indicates a programming error in callers (the data model never
// produces reversed intervals).
func New(start, end Time) Interval {
	if start > end {
		panic(fmt.Sprintf("interval: reversed interval [%d,%d)", start, end))
	}
	return Interval{Start: start, End: end}
}

// Empty reports whether iv contains no time points.
func (iv Interval) Empty() bool { return iv.Start >= iv.End }

// Duration returns the number of time points in iv (zero when empty).
func (iv Interval) Duration() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.End - iv.Start
}

// Contains reports whether time point t lies inside iv.
func (iv Interval) Contains(t Time) bool { return iv.Start <= t && t < iv.End }

// ContainsInterval reports whether other is fully inside iv. The empty
// interval is contained in every interval.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether iv and other share at least one time point.
// This is the overlap predicate θo used by the overlap join r ⟕_{θo∧θ} s.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the intersection of iv and other. When the intervals
// are disjoint the result is empty (and its bounds are unspecified beyond
// Empty() being true).
func (iv Interval) Intersect(other Interval) Interval {
	s := max64(iv.Start, other.Start)
	e := min64(iv.End, other.End)
	if s >= e {
		return Interval{}
	}
	return Interval{Start: s, End: e}
}

// Union returns the smallest interval covering both iv and other.
// It panics if the intervals are disjoint and non-adjacent, since the
// result would not be an interval.
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	if iv.End < other.Start || other.End < iv.Start {
		panic(fmt.Sprintf("interval: union of disjoint intervals %v and %v", iv, other))
	}
	return Interval{Start: min64(iv.Start, other.Start), End: max64(iv.End, other.End)}
}

// Before reports whether iv ends at or before the start of other
// (Allen's before-or-meets).
func (iv Interval) Before(other Interval) bool { return iv.End <= other.Start }

// Meets reports whether iv ends exactly where other starts.
func (iv Interval) Meets(other Interval) bool { return iv.End == other.Start }

// Adjacent reports whether the two intervals meet in either direction.
func (iv Interval) Adjacent(other Interval) bool {
	return iv.End == other.Start || other.End == iv.Start
}

// Equal reports whether the two intervals contain exactly the same time
// points. All empty intervals are equal.
func (iv Interval) Equal(other Interval) bool {
	if iv.Empty() && other.Empty() {
		return true
	}
	return iv == other
}

// Less orders intervals by (Start, End). It is the canonical sort order for
// sweep algorithms.
func (iv Interval) Less(other Interval) bool {
	if iv.Start != other.Start {
		return iv.Start < other.Start
	}
	return iv.End < other.End
}

// Compare returns -1, 0 or +1 comparing (Start, End) lexicographically.
func (iv Interval) Compare(other Interval) int {
	switch {
	case iv.Start < other.Start:
		return -1
	case iv.Start > other.Start:
		return 1
	case iv.End < other.End:
		return -1
	case iv.End > other.End:
		return 1
	default:
		return 0
	}
}

// Subtract returns the parts of iv not covered by other: zero, one or two
// intervals, in temporal order.
func (iv Interval) Subtract(other Interval) []Interval {
	if iv.Empty() {
		return nil
	}
	x := iv.Intersect(other)
	if x.Empty() {
		return []Interval{iv}
	}
	var out []Interval
	if iv.Start < x.Start {
		out = append(out, Interval{Start: iv.Start, End: x.Start})
	}
	if x.End < iv.End {
		out = append(out, Interval{Start: x.End, End: iv.End})
	}
	return out
}

// String renders the interval in the paper's [s,e) notation.
func (iv Interval) String() string {
	if iv.Empty() {
		return "[)"
	}
	return fmt.Sprintf("[%s,%s)", fmtTime(iv.Start), fmtTime(iv.End))
}

func fmtTime(t Time) string {
	switch t {
	case MinTime:
		return "-inf"
	case MaxTime:
		return "+inf"
	default:
		return fmt.Sprintf("%d", t)
	}
}

func min64(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

func max64(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
