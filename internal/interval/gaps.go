package interval

import "sort"

// Gaps returns the maximal subintervals of span that are not covered by any
// interval in cover. The cover intervals may overlap each other and need not
// be sorted; empty cover intervals are ignored. The result is in temporal
// order. This is the set-level specification of what the LAWAU sweep
// computes incrementally, and is used as a test oracle for it.
func Gaps(span Interval, cover []Interval) []Interval {
	if span.Empty() {
		return nil
	}
	cs := make([]Interval, 0, len(cover))
	for _, c := range cover {
		c = c.Intersect(span)
		if !c.Empty() {
			cs = append(cs, c)
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })

	var out []Interval
	cur := span.Start
	for _, c := range cs {
		if c.Start > cur {
			out = append(out, Interval{Start: cur, End: c.Start})
		}
		if c.End > cur {
			cur = c.End
		}
	}
	if cur < span.End {
		out = append(out, Interval{Start: cur, End: span.End})
	}
	return out
}

// Coalesce merges overlapping or adjacent intervals into the minimal set of
// maximal disjoint intervals, in temporal order. Empty inputs are dropped.
func Coalesce(ivs []Interval) []Interval {
	cs := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			cs = append(cs, iv)
		}
	}
	if len(cs) == 0 {
		return nil
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
	out := []Interval{cs[0]}
	for _, iv := range cs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// Elementary splits the region covered by ivs at every interval boundary,
// returning the elementary intervals in temporal order. Within one
// elementary interval the set of covering input intervals is constant.
// This is the set-level specification of the interval structure of
// negating windows (LAWAN) and of temporal alignment's normalization.
func Elementary(ivs []Interval) []Interval {
	points := make([]Time, 0, 2*len(ivs))
	for _, iv := range ivs {
		if iv.Empty() {
			continue
		}
		points = append(points, iv.Start, iv.End)
	}
	if len(points) == 0 {
		return nil
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	uniq := make([]Time, 0, len(points))
	uniq = append(uniq, points[0])
	for _, p := range points[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	var out []Interval
	for i := 0; i+1 < len(uniq); i++ {
		cand := Interval{Start: uniq[i], End: uniq[i+1]}
		for _, iv := range ivs {
			if iv.Overlaps(cand) {
				out = append(out, cand)
				break
			}
		}
	}
	return out
}
