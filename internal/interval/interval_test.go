package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndEmpty(t *testing.T) {
	iv := New(2, 8)
	if iv.Empty() {
		t.Fatalf("New(2,8) reported empty")
	}
	if got := iv.Duration(); got != 6 {
		t.Fatalf("Duration = %d, want 6", got)
	}
	if !New(3, 3).Empty() {
		t.Fatalf("New(3,3) should be empty")
	}
	var zero Interval
	if !zero.Empty() {
		t.Fatalf("zero value should be empty")
	}
	if zero.Duration() != 0 {
		t.Fatalf("empty duration must be 0")
	}
}

func TestNewPanicsOnReversed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(5,2) did not panic")
		}
	}()
	New(5, 2)
}

func TestContains(t *testing.T) {
	iv := New(2, 8)
	cases := []struct {
		t    Time
		want bool
	}{
		{1, false}, {2, true}, {5, true}, {7, true}, {8, false}, {9, false},
	}
	for _, c := range cases {
		if got := iv.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	iv := New(2, 8)
	if !iv.ContainsInterval(New(2, 8)) {
		t.Errorf("interval should contain itself")
	}
	if !iv.ContainsInterval(New(3, 5)) {
		t.Errorf("[2,8) should contain [3,5)")
	}
	if iv.ContainsInterval(New(1, 5)) {
		t.Errorf("[2,8) should not contain [1,5)")
	}
	if iv.ContainsInterval(New(5, 9)) {
		t.Errorf("[2,8) should not contain [5,9)")
	}
	if !iv.ContainsInterval(Interval{}) {
		t.Errorf("every interval contains the empty interval")
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	cases := []struct {
		a, b     Interval
		overlap  bool
		isectDur int64
	}{
		{New(2, 8), New(4, 6), true, 2},
		{New(2, 8), New(5, 12), true, 3},
		{New(2, 8), New(8, 12), false, 0}, // meets: half-open, no shared point
		{New(2, 8), New(9, 12), false, 0},
		{New(4, 6), New(2, 8), true, 2},
		{New(7, 10), New(2, 8), true, 1},
		{New(3, 3), New(2, 8), false, 0}, // empty never overlaps
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.overlap)
		}
		if got := c.a.Intersect(c.b).Duration(); got != c.isectDur {
			t.Errorf("%v.Intersect(%v).Duration = %d, want %d", c.a, c.b, got, c.isectDur)
		}
	}
}

func TestOverlapsSymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := ordered(Time(a1), Time(a2))
		b := ordered(Time(b1), Time(b2))
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectMatchesPointwise(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a := ordered(Time(a1), Time(a2))
		b := ordered(Time(b1), Time(b2))
		x := a.Intersect(b)
		for p := Time(-130); p <= 130; p++ {
			if x.Contains(p) != (a.Contains(p) && b.Contains(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	if got := New(2, 5).Union(New(4, 9)); got != New(2, 9) {
		t.Errorf("Union = %v, want [2,9)", got)
	}
	if got := New(2, 5).Union(New(5, 9)); got != New(2, 9) {
		t.Errorf("adjacent Union = %v, want [2,9)", got)
	}
	if got := New(2, 5).Union(Interval{}); got != New(2, 5) {
		t.Errorf("Union with empty = %v, want [2,5)", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Union of disjoint non-adjacent did not panic")
		}
	}()
	New(2, 4).Union(New(6, 9))
}

func TestBeforeMeetsAdjacent(t *testing.T) {
	a, b := New(2, 5), New(5, 9)
	if !a.Before(b) || b.Before(a) {
		t.Errorf("Before wrong for %v, %v", a, b)
	}
	if !a.Meets(b) || b.Meets(a) {
		t.Errorf("Meets wrong for %v, %v", a, b)
	}
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Errorf("Adjacent should be symmetric")
	}
	if a.Adjacent(New(6, 7)) {
		t.Errorf("[2,5) not adjacent to [6,7)")
	}
}

func TestEqualLessCompare(t *testing.T) {
	if !New(2, 5).Equal(New(2, 5)) {
		t.Errorf("identical intervals must be Equal")
	}
	if !New(3, 3).Equal(New(7, 7)) {
		t.Errorf("all empty intervals are Equal")
	}
	if New(2, 5).Equal(New(2, 6)) {
		t.Errorf("[2,5) != [2,6)")
	}
	if !New(2, 5).Less(New(2, 6)) || !New(2, 5).Less(New(3, 4)) {
		t.Errorf("Less ordering wrong")
	}
	if New(2, 5).Compare(New(2, 5)) != 0 {
		t.Errorf("Compare equal failed")
	}
	if New(2, 5).Compare(New(2, 6)) != -1 || New(2, 6).Compare(New(2, 5)) != 1 {
		t.Errorf("Compare end tiebreak failed")
	}
	if New(1, 9).Compare(New(2, 3)) != -1 || New(3, 4).Compare(New(2, 9)) != 1 {
		t.Errorf("Compare start ordering failed")
	}
}

func TestSubtract(t *testing.T) {
	cases := []struct {
		a, b Interval
		want []Interval
	}{
		{New(2, 8), New(4, 6), []Interval{New(2, 4), New(6, 8)}},
		{New(2, 8), New(2, 8), nil},
		{New(2, 8), New(1, 9), nil},
		{New(2, 8), New(6, 12), []Interval{New(2, 6)}},
		{New(2, 8), New(0, 4), []Interval{New(4, 8)}},
		{New(2, 8), New(10, 12), []Interval{New(2, 8)}},
		{Interval{}, New(1, 2), nil},
	}
	for _, c := range cases {
		got := c.a.Subtract(c.b)
		if len(got) != len(c.want) {
			t.Errorf("%v.Subtract(%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v.Subtract(%v)[%d] = %v, want %v", c.a, c.b, i, got[i], c.want[i])
			}
		}
	}
}

func TestSubtractPointwise(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a := ordered(Time(a1), Time(a2))
		b := ordered(Time(b1), Time(b2))
		parts := a.Subtract(b)
		for p := Time(-130); p <= 130; p++ {
			want := a.Contains(p) && !b.Contains(p)
			got := false
			for _, pt := range parts {
				if pt.Contains(p) {
					got = true
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := New(2, 8).String(); got != "[2,8)" {
		t.Errorf("String = %q", got)
	}
	if got := (Interval{}).String(); got != "[)" {
		t.Errorf("empty String = %q", got)
	}
	if got := New(0, MaxTime).String(); got != "[0,+inf)" {
		t.Errorf("open-ended String = %q", got)
	}
	if got := New(MinTime, 0).String(); got != "[-inf,0)" {
		t.Errorf("open-start String = %q", got)
	}
}

func TestGapsBasic(t *testing.T) {
	span := New(2, 8)
	cover := []Interval{New(4, 6), New(5, 8)}
	got := Gaps(span, cover)
	want := []Interval{New(2, 4)}
	assertIntervals(t, got, want)
}

func TestGapsNoCover(t *testing.T) {
	got := Gaps(New(7, 10), nil)
	assertIntervals(t, got, []Interval{New(7, 10)})
}

func TestGapsFullCover(t *testing.T) {
	got := Gaps(New(2, 8), []Interval{New(0, 10)})
	assertIntervals(t, got, nil)
}

func TestGapsMiddleAndTail(t *testing.T) {
	got := Gaps(New(0, 10), []Interval{New(2, 3), New(5, 6)})
	assertIntervals(t, got, []Interval{New(0, 2), New(3, 5), New(6, 10)})
}

func TestGapsIgnoresOutside(t *testing.T) {
	got := Gaps(New(2, 8), []Interval{New(10, 20), New(-5, 1)})
	assertIntervals(t, got, []Interval{New(2, 8)})
}

func TestGapsPointwiseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		span := randIv(rng, 50)
		n := rng.Intn(6)
		cover := make([]Interval, n)
		for i := range cover {
			cover[i] = randIv(rng, 50)
		}
		gaps := Gaps(span, cover)
		for p := Time(0); p < 50; p++ {
			covered := false
			for _, c := range cover {
				if c.Contains(p) {
					covered = true
				}
			}
			want := span.Contains(p) && !covered
			got := false
			for _, g := range gaps {
				if g.Contains(p) {
					got = true
				}
			}
			if got != want {
				t.Fatalf("trial %d: span=%v cover=%v gaps=%v point=%d got=%v want=%v",
					trial, span, cover, gaps, p, got, want)
			}
		}
		// Gaps must be maximal: no two adjacent.
		for i := 0; i+1 < len(gaps); i++ {
			if gaps[i].End >= gaps[i+1].Start {
				t.Fatalf("gaps not disjoint/maximal: %v", gaps)
			}
		}
	}
}

func TestCoalesce(t *testing.T) {
	got := Coalesce([]Interval{New(5, 7), New(1, 3), New(2, 4), New(7, 9), {}})
	assertIntervals(t, got, []Interval{New(1, 4), New(5, 9)})
	if Coalesce(nil) != nil {
		t.Errorf("Coalesce(nil) should be nil")
	}
}

func TestElementary(t *testing.T) {
	// The negating-window structure of the paper's example: b3=[4,6), b2=[5,8).
	got := Elementary([]Interval{New(4, 6), New(5, 8)})
	assertIntervals(t, got, []Interval{New(4, 5), New(5, 6), New(6, 8)})
}

func TestElementaryWithHole(t *testing.T) {
	got := Elementary([]Interval{New(1, 3), New(5, 7)})
	assertIntervals(t, got, []Interval{New(1, 3), New(5, 7)})
}

func TestElementaryEmpty(t *testing.T) {
	if got := Elementary(nil); got != nil {
		t.Errorf("Elementary(nil) = %v", got)
	}
	if got := Elementary([]Interval{{}}); got != nil {
		t.Errorf("Elementary(empty) = %v", got)
	}
}

func TestElementaryCoversSameRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		ivs := make([]Interval, n)
		for i := range ivs {
			ivs[i] = randIv(rng, 40)
		}
		elem := Elementary(ivs)
		for p := Time(0); p < 40; p++ {
			in := false
			for _, iv := range ivs {
				if iv.Contains(p) {
					in = true
				}
			}
			out := false
			for _, e := range elem {
				if e.Contains(p) {
					out = true
				}
			}
			if in != out {
				t.Fatalf("trial %d: region mismatch at %d: ivs=%v elem=%v", trial, p, ivs, elem)
			}
		}
		// Within an elementary interval, the covering set must be constant.
		for _, e := range elem {
			for _, iv := range ivs {
				x := iv.Intersect(e)
				if !x.Empty() && !x.Equal(e) {
					t.Fatalf("elementary %v straddles boundary of %v", e, iv)
				}
			}
		}
	}
}

func randIv(rng *rand.Rand, horizon int64) Interval {
	s := rng.Int63n(horizon)
	d := rng.Int63n(horizon / 2)
	return New(s, s+d)
}

func ordered(a, b Time) Interval {
	if a > b {
		a, b = b, a
	}
	return New(a, b)
}

func assertIntervals(t *testing.T, got, want []Interval) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("index %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
