package tp

// KeyGroups groups values under hashed fact keys with exact-equality
// collision resolution: a 64-bit key hash addresses a bucket, and the
// group inside the bucket is resolved by comparing against the group's
// first fact with a caller-supplied equality (Fact.KeyEqual for whole
// facts, EquiTheta.SKeyEqual/KeyMatch for equi-key columns). Groups keep
// first-seen order. It is the shared building block for the simple
// grouping call sites (validation, projection, the TA baseline's build
// side); the hash join's hot path uses its own flat keyTable instead.
type KeyGroups[V any] struct {
	byHash map[uint64][]int32
	groups []KeyGroup[V]
}

// KeyGroup is one distinct key: the first fact seen with it and the
// values added under it.
type KeyGroup[V any] struct {
	Fact Fact
	Vals []V
}

// NewKeyGroups returns an empty grouping.
func NewKeyGroups[V any]() *KeyGroups[V] {
	return &KeyGroups[V]{byHash: make(map[uint64][]int32)}
}

// Find returns the index of f's group under hash h, or -1. eq compares
// a group's stored fact against f; it must be consistent with h (facts
// it calls equal hash identically).
func (g *KeyGroups[V]) Find(h uint64, f Fact, eq func(group, probe Fact) bool) int {
	for _, gi := range g.byHash[h] {
		if eq(g.groups[gi].Fact, f) {
			return int(gi)
		}
	}
	return -1
}

// Group returns f's group under hash h, creating it if absent. The
// returned pointer is valid only until the next Group call (which may
// grow the backing array): use it immediately, do not hold it across
// insertions.
func (g *KeyGroups[V]) Group(h uint64, f Fact, eq func(group, probe Fact) bool) *KeyGroup[V] {
	gi := g.Find(h, f, eq)
	if gi < 0 {
		gi = len(g.groups)
		g.groups = append(g.groups, KeyGroup[V]{Fact: f})
		g.byHash[h] = append(g.byHash[h], int32(gi))
	}
	return &g.groups[gi]
}

// Groups returns all groups in first-seen order. The slice aliases the
// internal storage and is invalidated by further Group calls.
func (g *KeyGroups[V]) Groups() []KeyGroup[V] { return g.groups }

// Reset empties the grouping for reuse, keeping the hash buckets' backing
// storage (pooled callers rebuild similar-sized groupings repeatedly).
func (g *KeyGroups[V]) Reset() {
	clear(g.byHash)
	g.groups = g.groups[:0]
}
