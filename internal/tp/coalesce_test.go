package tp

import (
	"math/rand"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
)

func TestCoalesceMergesAdjacent(t *testing.T) {
	r := NewRelation("r", "K")
	lam := lineage.NewVar("r", 1)
	r.Probs[lineage.Var{Rel: "r", ID: 1}] = 0.5
	r.AppendDerived(Strings("x"), lam, interval.New(0, 3), 0.5)
	r.AppendDerived(Strings("x"), lam, interval.New(3, 6), 0.5)
	r.AppendDerived(Strings("x"), lam, interval.New(8, 9), 0.5)
	c := Coalesce(r)
	if c.Len() != 2 {
		t.Fatalf("coalesced to %d tuples, want 2: %v", c.Len(), c)
	}
	if !c.Tuples[0].T.Equal(interval.New(0, 6)) {
		t.Errorf("merged interval = %v, want [0,6)", c.Tuples[0].T)
	}
	if !c.Tuples[1].T.Equal(interval.New(8, 9)) {
		t.Errorf("gap must not merge: %v", c.Tuples[1].T)
	}
}

func TestCoalesceRespectsLineage(t *testing.T) {
	r := NewRelation("r", "K")
	r.Append(Strings("x"), interval.New(0, 3), 0.5) // r1
	r.Append(Strings("x"), interval.New(3, 6), 0.5) // r2: different lineage
	c := Coalesce(r)
	if c.Len() != 2 {
		t.Errorf("different lineages must not merge: %v", c)
	}
}

func TestCoalesceRespectsFacts(t *testing.T) {
	r := NewRelation("r", "K")
	lam := lineage.NewVar("e", 1)
	r.AppendDerived(Strings("x"), lam, interval.New(0, 3), 0.5)
	r.AppendDerived(Strings("y"), lam, interval.New(3, 6), 0.5)
	if c := Coalesce(r); c.Len() != 2 {
		t.Errorf("different facts must not merge: %v", c)
	}
}

func TestCoalesceEmpty(t *testing.T) {
	if c := Coalesce(NewRelation("r", "K")); c.Len() != 0 {
		t.Errorf("empty coalesce wrong")
	}
}

func TestCoalescePreservesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		r := NewRelation("r", "K")
		// Random chunks of one fact with one of two lineages; overlapping
		// chunks of the same lineage are fine for coalescing but must be
		// disjoint per (fact, lineage) pair to keep Expand happy — use
		// distinct facts per lineage instead.
		for i := 0; i < 8; i++ {
			k := []string{"x", "y"}[rng.Intn(2)]
			id := rng.Intn(2) + 1
			lam := lineage.NewVar("e", id)
			r.Probs[lineage.Var{Rel: "e", ID: id}] = 0.5
			s := interval.Time(rng.Intn(12))
			r.AppendDerived(Strings(k+lam.String()), lam, interval.New(s, s+1+interval.Time(rng.Intn(4))), 0.5)
		}
		// Drop overlapping duplicates first (coalesce merges them anyway,
		// but Expand on the input would fail); compare coalesced output
		// against a set of covered points.
		c := Coalesce(r)
		covered := func(rel *Relation, key string, t interval.Time) bool {
			for _, tu := range rel.Tuples {
				if tu.Fact.Key() == key && tu.T.Contains(t) {
					return true
				}
			}
			return false
		}
		for tt := interval.Time(0); tt < 20; tt++ {
			for _, key := range []string{Strings("xe1").Key(), Strings("ye2").Key()} {
				if covered(r, key, tt) != covered(c, key, tt) {
					t.Fatalf("trial %d: coverage changed at (%q,%d)", trial, key, tt)
				}
			}
		}
		// Coalesced tuples of the same (fact, lineage) must be maximal.
		for i, a := range c.Tuples {
			for j, b := range c.Tuples {
				if i != j && a.Fact.Equal(b.Fact) && a.Lineage.Equal(b.Lineage) {
					if a.T.Start <= b.T.End && b.T.Start <= a.T.End {
						t.Fatalf("trial %d: non-maximal coalescing: %v and %v", trial, a.T, b.T)
					}
				}
			}
		}
	}
}

func TestTimeslice(t *testing.T) {
	r := NewRelation("r", "K")
	r.Append(Strings("x"), interval.New(0, 5), 0.5)
	r.Append(Strings("y"), interval.New(5, 9), 0.6)
	s := Timeslice(r, 4)
	if s.Len() != 1 || !s.Tuples[0].T.Equal(interval.New(4, 5)) {
		t.Errorf("timeslice wrong: %v", s)
	}
	if Timeslice(r, 9).Len() != 0 {
		t.Errorf("timeslice past end must be empty")
	}
}

func TestWindowRestriction(t *testing.T) {
	r := NewRelation("r", "K")
	r.Append(Strings("x"), interval.New(0, 10), 0.5)
	r.Append(Strings("y"), interval.New(12, 15), 0.6)
	w := Window(r, 4, 13)
	if w.Len() != 2 {
		t.Fatalf("window wrong: %v", w)
	}
	if !w.Tuples[0].T.Equal(interval.New(4, 10)) || !w.Tuples[1].T.Equal(interval.New(12, 13)) {
		t.Errorf("clipping wrong: %v", w)
	}
	if Window(r, 10, 12).Len() != 0 {
		t.Errorf("gap window must be empty")
	}
}
