package tp

import "sort"

// Coalesce returns a copy of rel in which value-equivalent tuples with
// adjacent or overlapping intervals are merged: tuples merge when they
// have the same fact and *structurally equal* lineage (and hence equal
// probability). Join results chunk time at window boundaries; coalescing
// restores maximal intervals where the chunks carry identical lineage —
// e.g. the fragmented pairings produced by the Temporal Alignment
// baseline coalesce back into the maximal overlap intervals NJ emits
// directly.
//
// Coalescing with *equivalent* (rather than structurally equal) lineages
// would require exponential-time equivalence checks; structural equality
// is the standard compromise and is complete for the outputs of the
// operators in this module, whose lineage construction is deterministic.
func Coalesce(rel *Relation) *Relation {
	out := &Relation{
		Name:  rel.Name,
		Attrs: append([]string(nil), rel.Attrs...),
		Probs: rel.Probs,
	}
	if rel.Len() == 0 {
		return out
	}
	tuples := append([]Tuple(nil), rel.Tuples...)
	sort.SliceStable(tuples, func(i, j int) bool {
		a, b := tuples[i], tuples[j]
		if c := a.Fact.Compare(b.Fact); c != 0 {
			return c < 0
		}
		la, lb := uint64(0), uint64(0)
		if a.Lineage != nil {
			la = a.Lineage.Hash()
		}
		if b.Lineage != nil {
			lb = b.Lineage.Hash()
		}
		if la != lb {
			return la < lb
		}
		return a.T.Less(b.T)
	})
	cur := tuples[0]
	for _, t := range tuples[1:] {
		if cur.Fact.Equal(t.Fact) && lineageEqual(cur, t) && t.T.Start <= cur.T.End {
			if t.T.End > cur.T.End {
				cur.T.End = t.T.End
			}
			continue
		}
		out.Tuples = append(out.Tuples, cur)
		cur = t
	}
	out.Tuples = append(out.Tuples, cur)
	return out
}

func lineageEqual(a, b Tuple) bool {
	if a.Lineage == nil || b.Lineage == nil {
		return a.Lineage == b.Lineage
	}
	return a.Lineage.Equal(b.Lineage)
}

// Timeslice returns the tuples of rel valid at time point t, with their
// intervals clipped to [t, t+1) — the classic timeslice operator τ_t.
func Timeslice(rel *Relation, t int64) *Relation {
	out := &Relation{
		Name:  rel.Name,
		Attrs: append([]string(nil), rel.Attrs...),
		Probs: rel.Probs,
	}
	for _, tu := range rel.Tuples {
		if tu.T.Contains(t) {
			clipped := tu
			clipped.T.Start = t
			clipped.T.End = t + 1
			out.Tuples = append(out.Tuples, clipped)
		}
	}
	return out
}

// Window returns the tuples of rel overlapping the interval [start, end),
// clipped to it — the range-restriction operator.
func Window(rel *Relation, start, end int64) *Relation {
	out := &Relation{
		Name:  rel.Name,
		Attrs: append([]string(nil), rel.Attrs...),
		Probs: rel.Probs,
	}
	for _, tu := range rel.Tuples {
		if tu.T.Start < end && start < tu.T.End {
			clipped := tu
			if clipped.T.Start < start {
				clipped.T.Start = start
			}
			if clipped.T.End > end {
				clipped.T.End = end
			}
			out.Tuples = append(out.Tuples, clipped)
		}
	}
	return out
}
