package tp

import "strings"

// Fact is the vector of non-temporal attribute values of a TP tuple — the
// F component of the paper's schema (F, λ, T, p).
type Fact []Value

// Strings builds a fact of string values.
func Strings(vals ...string) Fact {
	f := make(Fact, len(vals))
	for i, s := range vals {
		f[i] = String_(s)
	}
	return f
}

// Nulls returns a fact of n NULL values (the missing side of an outer join).
func Nulls(n int) Fact {
	return make(Fact, n)
}

// Key returns a canonical string encoding of the fact, injective over
// facts, usable as a map key for grouping and hashing.
func (f Fact) Key() string {
	var b strings.Builder
	for _, v := range f {
		v.appendKey(&b)
	}
	return b.String()
}

// KeyHash returns a 64-bit FNV-1a hash of the fact's canonical key
// encoding without allocating. Two facts with equal Key() strings always
// hash equal; hash collisions between distinct keys are possible, so
// grouping by KeyHash must resolve buckets with KeyEqual.
func (f Fact) KeyHash() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range f {
		h = v.hashKey(h)
	}
	return h
}

// KeyEqual reports whether f and o have identical canonical keys — the
// exact relation Key() string equality encodes. It is stricter than Equal:
// Int(2) and Float(2) compare Equal but not KeyEqual.
func (f Fact) KeyEqual(o Fact) bool {
	if len(f) != len(o) {
		return false
	}
	for i := range f {
		if !f[i].keyEqual(o[i]) {
			return false
		}
	}
	return true
}

// Equal reports attribute-wise equality (NULLs compare equal, as grouping
// requires).
func (f Fact) Equal(o Fact) bool {
	if len(f) != len(o) {
		return false
	}
	for i := range f {
		if !f[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders facts attribute-wise.
func (f Fact) Compare(o Fact) int {
	n := len(f)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := f[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(f) < len(o):
		return -1
	case len(f) > len(o):
		return 1
	default:
		return 0
	}
}

// Concat returns the concatenation of f and o as a new fact.
func (f Fact) Concat(o Fact) Fact {
	out := make(Fact, 0, len(f)+len(o))
	out = append(out, f...)
	out = append(out, o...)
	return out
}

// Clone returns a copy of f.
func (f Fact) Clone() Fact {
	out := make(Fact, len(f))
	copy(out, f)
	return out
}

// String renders the fact as comma-separated values, e.g. "Ann, ZAK, -".
func (f Fact) String() string {
	parts := make([]string, len(f))
	for i, v := range f {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}
