// Package tp defines the temporal-probabilistic data model: typed values,
// facts (the non-temporal attributes of a tuple), TP tuples (F, λ, T, p)
// and TP relations, together with validation and the point-wise expansion
// used as a semantic oracle in tests.
package tp

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind discriminates the attribute value types.
type ValueKind uint8

// The supported attribute value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single attribute value. The zero value is SQL NULL, which is
// what outer joins emit for the attributes of the non-matching side (the
// "-" of the paper's Fig. 1b).
type Value struct {
	kind ValueKind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String_ returns a string value. (The name avoids colliding with the
// fmt.Stringer method.)
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Kind returns the kind of v.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it panics for other kinds.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("tp: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the float payload (ints widen); it panics for other kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("tp: AsFloat on " + v.kind.String())
}

// AsString returns the string payload; it panics for other kinds.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("tp: AsString on " + v.kind.String())
	}
	return v.s
}

// Equal implements SQL-style equality except that NULL = NULL is true,
// which is what fact identity (grouping) requires. Numeric values compare
// across int/float kinds.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return v.kind == o.kind
	}
	if (v.kind == KindInt || v.kind == KindFloat) && (o.kind == KindInt || o.kind == KindFloat) {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	return v.s == o.s
}

// Compare returns -1, 0, +1 with NULL first, then by kind, then by payload.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == KindNull && o.kind == KindNull:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if (v.kind == KindInt || v.kind == KindFloat) && (o.kind == KindInt || o.kind == KindFloat) {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	return strings.Compare(v.s, o.s)
}

// String renders the value; NULL renders as "-" following Fig. 1b.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "-"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

// FNV-1a 64-bit parameters, used by the allocation-free hashed keys.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey folds a canonical encoding of v into the running FNV-1a hash h.
// The encoding mirrors appendKey: it starts with the kind tag and, for
// strings, includes the length before the bytes, so that the hash of a
// value sequence is prefix-free. Unlike appendKey it allocates nothing.
func (v Value) hashKey(h uint64) uint64 {
	h = (h ^ uint64(v.kind)) * fnvPrime64
	switch v.kind {
	case KindInt:
		h = hashUint64(h, uint64(v.i))
	case KindFloat:
		h = hashUint64(h, math.Float64bits(v.f))
	case KindString:
		h = hashUint64(h, uint64(len(v.s)))
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * fnvPrime64
		}
	}
	return h
}

func hashUint64(h, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (u & 0xff)) * fnvPrime64
		u >>= 8
	}
	return h
}

// keyEqual reports whether v and o have identical key encodings: the exact
// equality hashKey (and appendKey) discriminate by. It is stricter than
// Equal — Int(2) and Float(2) compare Equal but have distinct keys, and
// NULLs (which compare Equal) are keyEqual too.
func (v Value) keyEqual(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return math.Float64bits(v.f) == math.Float64bits(o.f)
	case KindString:
		return v.s == o.s
	default:
		return true
	}
}

// appendKey writes a canonical, injective encoding of v to b, used to build
// hashable fact keys.
func (v Value) appendKey(b *strings.Builder) {
	switch v.kind {
	case KindNull:
		b.WriteByte('N')
	case KindInt:
		b.WriteByte('I')
		b.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		b.WriteByte('F')
		b.WriteString(strconv.FormatFloat(v.f, 'b', -1, 64))
	case KindString:
		b.WriteByte('S')
		b.WriteString(strconv.Itoa(len(v.s)))
		b.WriteByte(':')
		b.WriteString(v.s)
	}
	b.WriteByte(';')
}
