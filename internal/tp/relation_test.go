package tp

import (
	"strings"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
)

// PaperRelations builds the base relations a (wantsToVisit) and
// b (hotelAvailability) of Fig. 1a. Shared by several test packages via
// export_test-style helpers in each package; duplicated knowingly.
func paperA() *Relation {
	a := NewRelation("a", "Name", "Loc")
	a.Append(Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	return a
}

func paperB() *Relation {
	b := NewRelation("b", "Hotel", "Loc")
	b.Append(Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	return b
}

func TestAppendAssignsVariables(t *testing.T) {
	a := paperA()
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	if got := a.Tuples[0].Lineage.String(); got != "a1" {
		t.Errorf("first lineage = %q, want a1", got)
	}
	if got := a.Tuples[1].Lineage.String(); got != "a2" {
		t.Errorf("second lineage = %q, want a2", got)
	}
	if p := a.Probs[lineage.Var{Rel: "a", ID: 2}]; p != 0.8 {
		t.Errorf("prob of a2 = %g, want 0.8", p)
	}
	if a.Arity() != 2 {
		t.Errorf("Arity = %d", a.Arity())
	}
}

func TestAppendValidation(t *testing.T) {
	r := NewRelation("r", "X")
	cases := []func(){
		func() { r.Append(Strings("a", "b"), interval.New(0, 1), 0.5) }, // arity
		func() { r.Append(Strings("a"), interval.New(0, 1), 1.5) },      // prob
		func() { r.Append(Strings("a"), interval.New(3, 3), 0.5) },      // empty interval
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValidateSequenced(t *testing.T) {
	a := paperA()
	if err := a.ValidateSequenced(); err != nil {
		t.Errorf("paper relation a must be valid: %v", err)
	}
	b := paperB()
	if err := b.ValidateSequenced(); err != nil {
		t.Errorf("paper relation b must be valid: %v", err)
	}

	bad := NewRelation("r", "X")
	bad.Append(Strings("k"), interval.New(0, 5), 0.5)
	bad.Append(Strings("k"), interval.New(3, 8), 0.5)
	if err := bad.ValidateSequenced(); err == nil {
		t.Errorf("overlapping same-fact tuples must be rejected")
	}

	ok := NewRelation("r", "X")
	ok.Append(Strings("k"), interval.New(0, 5), 0.5)
	ok.Append(Strings("k"), interval.New(5, 8), 0.5) // adjacent is fine
	ok.Append(Strings("m"), interval.New(0, 8), 0.5) // other fact overlaps fine
	if err := ok.ValidateSequenced(); err != nil {
		t.Errorf("adjacent/different facts must be accepted: %v", err)
	}
}

func TestValidateNullLineage(t *testing.T) {
	r := NewRelation("r", "X")
	r.AppendDerived(Strings("k"), nil, interval.New(0, 1), 0)
	if err := r.ValidateSequenced(); err == nil || !strings.Contains(err.Error(), "null lineage") {
		t.Errorf("null lineage must be rejected, got %v", err)
	}
}

func TestSortByFactStart(t *testing.T) {
	r := NewRelation("r", "X")
	r.Append(Strings("b"), interval.New(5, 6), 0.5)
	r.Append(Strings("a"), interval.New(7, 9), 0.5)
	r.Append(Strings("a"), interval.New(2, 4), 0.5)
	r.SortByFactStart()
	want := []string{"a", "a", "b"}
	starts := []interval.Time{2, 7, 5}
	for i, tu := range r.Tuples {
		if tu.Fact[0].AsString() != want[i] || tu.T.Start != starts[i] {
			t.Fatalf("sorted order wrong: %v", r.Tuples)
		}
	}
}

func TestSortByStart(t *testing.T) {
	r := NewRelation("r", "X")
	r.Append(Strings("b"), interval.New(5, 6), 0.5)
	r.Append(Strings("a"), interval.New(2, 9), 0.5)
	r.SortByStart()
	if r.Tuples[0].T.Start != 2 {
		t.Fatalf("SortByStart wrong")
	}
}

func TestComputeProbs(t *testing.T) {
	a := paperA()
	out := NewRelation("q", "Name", "Loc")
	out.Probs = a.Probs.Clone()
	out.AppendDerived(Strings("Ann", "ZAK"), lineage.Not(lineage.NewVar("a", 1)), interval.New(0, 1), 0)
	out.ComputeProbs()
	if got := out.Tuples[0].Prob; got < 0.2999 || got > 0.3001 {
		t.Errorf("ComputeProbs = %g, want 0.3", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := paperA()
	c := a.Clone()
	c.Append(Strings("X", "Y"), interval.New(0, 1), 0.1)
	c.Attrs[0] = "Changed"
	if a.Len() != 2 || a.Attrs[0] != "Name" {
		t.Errorf("Clone aliases the original")
	}
}

func TestMergeProbs(t *testing.T) {
	a, b := paperA(), paperB()
	m := MergeProbs(a, b)
	if len(m) != 5 {
		t.Errorf("merged probs size = %d, want 5", len(m))
	}
	if m[lineage.Var{Rel: "b", ID: 3}] != 0.7 {
		t.Errorf("b3 prob wrong")
	}
}

func TestMergeProbsConflictPanics(t *testing.T) {
	r1 := NewRelation("x", "A")
	r1.Append(Strings("k"), interval.New(0, 1), 0.5)
	r2 := NewRelation("x", "A")
	r2.Append(Strings("k"), interval.New(0, 1), 0.6)
	defer func() {
		if recover() == nil {
			t.Fatalf("conflicting probabilities must panic")
		}
	}()
	MergeProbs(r1, r2)
}

func TestRelationString(t *testing.T) {
	a := paperA()
	s := a.String()
	if !strings.Contains(s, "a(Name, Loc)") || !strings.Contains(s, "'Ann, ZAK', a1, [2,8), 0.7") {
		t.Errorf("String rendering unexpected:\n%s", s)
	}
}

func TestThetaEqui(t *testing.T) {
	theta := Equi(1, 1) // Loc = Loc
	ann := Strings("Ann", "ZAK")
	h1 := Strings("hotel1", "ZAK")
	h3 := Strings("hotel3", "SOR")
	if !theta.Match(ann, h1) {
		t.Errorf("ZAK = ZAK must match")
	}
	if theta.Match(ann, h3) {
		t.Errorf("ZAK = SOR must not match")
	}
	if theta.Match(Fact{String_("Ann"), Null()}, h1) {
		t.Errorf("NULL must not match anything")
	}
	k1, ok1 := theta.RKey(ann)
	k2, ok2 := theta.SKey(h1)
	if !ok1 || !ok2 || k1 != k2 {
		t.Errorf("equal keys expected: %q vs %q", k1, k2)
	}
	if _, ok := theta.RKey(Fact{String_("x"), Null()}); ok {
		t.Errorf("NULL key must be reported unmatchable")
	}
	k3, _ := theta.SKey(h3)
	if k1 == k3 {
		t.Errorf("different join values must produce different keys")
	}
}

func TestThetaMultiColumn(t *testing.T) {
	theta := EquiTheta{RCols: []int{0, 1}, SCols: []int{1, 0}}
	if !theta.Match(Strings("x", "y"), Strings("y", "x")) {
		t.Errorf("cross-column equality failed")
	}
	if theta.Match(Strings("x", "y"), Strings("x", "y")) {
		t.Errorf("should not match")
	}
}

func TestFuncAndTrueTheta(t *testing.T) {
	neq := FuncTheta(func(r, s Fact) bool { return !r[0].Equal(s[0]) })
	if neq.Match(Strings("a"), Strings("a")) || !neq.Match(Strings("a"), Strings("b")) {
		t.Errorf("FuncTheta wrong")
	}
	if !(TrueTheta{}).Match(Strings("a"), Strings("b")) {
		t.Errorf("TrueTheta must match")
	}
}

func TestExpand(t *testing.T) {
	a := paperA()
	pm, err := Expand(a)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	annKey := Strings("Ann", "ZAK").Key()
	if len(pm[annKey]) != 6 {
		t.Errorf("Ann valid over 6 points, got %d", len(pm[annKey]))
	}
	row := pm[annKey][3]
	if row.Prob != 0.7 {
		t.Errorf("prob at t=3 = %g", row.Prob)
	}
	// Duplicate at a time point must error.
	bad := NewRelation("r", "X")
	bad.Append(Strings("k"), interval.New(0, 5), 0.5)
	bad.Append(Strings("k"), interval.New(3, 8), 0.5)
	if _, err := Expand(bad); err == nil {
		t.Errorf("Expand must reject duplicated fact/time")
	}
}

func TestEqualProb(t *testing.T) {
	a := paperA()
	pm1, _ := Expand(a)
	pm2, _ := Expand(paperA())
	if err := pm1.EqualProb(pm2, 1e-12); err != nil {
		t.Errorf("identical expansions must be equal: %v", err)
	}
	// Perturb.
	b := paperA()
	b.Tuples[0].Prob = 0.7 // Prob field is ignored by Expand; change interval instead
	b.Tuples[0].T = interval.New(2, 9)
	pm3, _ := Expand(b)
	if err := pm1.EqualProb(pm3, 1e-12); err == nil {
		t.Errorf("different expansions must differ")
	}
}

func TestRefJoinPaperExample(t *testing.T) {
	a, b := paperA(), paperB()
	theta := Equi(1, 1)
	got := RefJoin(OpLeft, a, b, theta)

	// Fig. 1b, checked point-wise.
	check := func(f Fact, tt interval.Time, wantP float64) {
		t.Helper()
		row, ok := got[f.Key()][tt]
		if !ok {
			t.Fatalf("missing fact '%s' at %d", f, tt)
		}
		if d := row.Prob - wantP; d < -1e-9 || d > 1e-9 {
			t.Fatalf("fact '%s' at %d: prob %g, want %g", f, tt, row.Prob, wantP)
		}
	}
	annNull := Strings("Ann", "ZAK").Concat(Nulls(2))
	annH1 := Strings("Ann", "ZAK").Concat(Strings("hotel1", "ZAK"))
	annH2 := Strings("Ann", "ZAK").Concat(Strings("hotel2", "ZAK"))
	jimNull := Strings("Jim", "WEN").Concat(Nulls(2))

	check(annNull, 2, 0.70)
	check(annNull, 3, 0.70)
	check(annH1, 4, 0.49)
	check(annH1, 5, 0.49)
	check(annH2, 5, 0.42)
	check(annH2, 7, 0.42)
	check(annNull, 4, 0.21)
	check(annNull, 5, 0.084)
	check(annNull, 6, 0.28)
	check(annNull, 7, 0.28)
	for tt := interval.Time(7); tt < 10; tt++ {
		check(jimNull, tt, 0.80)
	}
	// Nothing for Ann outside [2,8).
	if _, ok := got[annNull.Key()][8]; ok {
		t.Errorf("Ann must not be in result at t=8")
	}
}

func TestRefJoinAnti(t *testing.T) {
	a, b := paperA(), paperB()
	got := RefJoin(OpAnti, a, b, Equi(1, 1))
	ann := Strings("Ann", "ZAK")
	row, ok := got[ann.Key()][5]
	if !ok {
		t.Fatalf("anti join must retain Ann at t=5")
	}
	if d := row.Prob - 0.084; d < -1e-9 || d > 1e-9 {
		t.Errorf("anti prob at 5 = %g, want 0.084", row.Prob)
	}
	// Anti join output facts have r's arity only.
	if len(row.Fact) != 2 {
		t.Errorf("anti join fact arity = %d, want 2", len(row.Fact))
	}
	// No pairings in an anti join result.
	annH1 := ann.Concat(Strings("hotel1", "ZAK"))
	if _, ok := got[annH1.Key()]; ok {
		t.Errorf("anti join must not contain pairings")
	}
}

func TestRefJoinFullSymmetry(t *testing.T) {
	a, b := paperA(), paperB()
	theta := Equi(1, 1)
	full := RefJoin(OpFull, a, b, theta)
	// hotel3 (SOR) matches nothing: present with its own lineage.
	h3 := Nulls(2).Concat(Strings("hotel3", "SOR"))
	row, ok := full[h3.Key()][2]
	if !ok {
		t.Fatalf("full outer join must preserve hotel3")
	}
	if row.Prob != 0.9 {
		t.Errorf("hotel3 prob = %g", row.Prob)
	}
	// hotel1 under Ann's validity: negated by a1 → 0.7·0.3 = 0.21.
	h1 := Nulls(2).Concat(Strings("hotel1", "ZAK"))
	row, ok = full[h1.Key()][4]
	if !ok {
		t.Fatalf("full outer join must have negated hotel1 at t=4")
	}
	if d := row.Prob - 0.7*0.3; d < -1e-9 || d > 1e-9 {
		t.Errorf("negated hotel1 prob = %g, want 0.21", row.Prob)
	}
}

func TestRefJoinInner(t *testing.T) {
	a, b := paperA(), paperB()
	inner := RefJoin(OpInner, a, b, Equi(1, 1))
	annNull := Strings("Ann", "ZAK").Concat(Nulls(2))
	if _, ok := inner[annNull.Key()]; ok {
		t.Errorf("inner join must not contain unmatched/negated rows")
	}
	annH1 := Strings("Ann", "ZAK").Concat(Strings("hotel1", "ZAK"))
	if _, ok := inner[annH1.Key()][4]; !ok {
		t.Errorf("inner join must contain the pairing at t=4")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpInner: "inner", OpAnti: "anti", OpLeft: "left-outer",
		OpRight: "right-outer", OpFull: "full-outer",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("Op(%d).String = %q, want %q", op, op.String(), want)
		}
	}
}
