package tp

import (
	"fmt"
	"sort"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/prob"
)

// This file implements the *declarative* point-wise semantics of TP joins
// with negation, directly transcribing the paper's Section I: at each time
// point, the result of a join with negation contains, for every valid
// tuple of the positive relation, its pairings with the valid matching
// tuples of the negative relation, and the probability that it matches
// none of them. It is deliberately simple and quadratic; the sweep
// algorithms in internal/core and the alignment baseline in internal/align
// are both validated against it.

// Op enumerates the TP join operators with negation (Table II).
type Op uint8

// The TP join operators.
const (
	OpInner Op = iota // r ⋈ s   (overlapping windows only; no negation)
	OpAnti            // r ▷ s
	OpLeft            // r ⟕ s
	OpRight           // r ⟖ s
	OpFull            // r ⟗ s
)

func (o Op) String() string {
	switch o {
	case OpInner:
		return "inner"
	case OpAnti:
		return "anti"
	case OpLeft:
		return "left-outer"
	case OpRight:
		return "right-outer"
	case OpFull:
		return "full-outer"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// PointRow is the lineage (and probability) of one output fact at one time
// point.
type PointRow struct {
	Fact    Fact
	Lineage *lineage.Expr
	Prob    float64
}

// PointMap is the point-wise view of a TP relation: fact key → time point →
// row. It is the canonical form in which two results are compared for
// semantic equality, independent of how they chunk time into intervals.
type PointMap map[string]map[interval.Time]PointRow

// Expand converts a relation into its point-wise view, computing Pr(λ) with
// the relation's base-event probabilities. It returns an error if the same
// fact occurs twice at the same time point (a violation of the sequenced-TP
// constraint that every valid result must satisfy).
func Expand(r *Relation) (PointMap, error) {
	ev := prob.NewEvaluator(r.Probs)
	out := make(PointMap)
	for _, t := range r.Tuples {
		k := t.Fact.Key()
		m := out[k]
		if m == nil {
			m = make(map[interval.Time]PointRow)
			out[k] = m
		}
		p := ev.Prob(t.Lineage)
		for tt := t.T.Start; tt < t.T.End; tt++ {
			if prev, dup := m[tt]; dup {
				return nil, fmt.Errorf("tp: fact '%s' duplicated at time %d (lineages %v and %v)",
					t.Fact, tt, prev.Lineage, t.Lineage)
			}
			m[tt] = PointRow{Fact: t.Fact, Lineage: t.Lineage, Prob: p}
		}
	}
	return out, nil
}

// EqualProb compares two point-wise views by probability with tolerance
// tol, returning a descriptive error at the first difference.
func (m PointMap) EqualProb(o PointMap, tol float64) error {
	if err := m.subsetProb(o, tol, "left"); err != nil {
		return err
	}
	return o.subsetProb(m, tol, "right")
}

func (m PointMap) subsetProb(o PointMap, tol float64, side string) error {
	for k, times := range m {
		oTimes, ok := o[k]
		if !ok {
			var any PointRow
			for _, r := range times {
				any = r
				break
			}
			return fmt.Errorf("fact '%s' only on %s side", any.Fact, side)
		}
		for t, row := range times {
			orow, ok := oTimes[t]
			if !ok {
				return fmt.Errorf("fact '%s' at time %d only on %s side", row.Fact, t, side)
			}
			d := row.Prob - orow.Prob
			if d < -tol || d > tol {
				return fmt.Errorf("fact '%s' at time %d: prob %g vs %g", row.Fact, t, row.Prob, orow.Prob)
			}
		}
	}
	return nil
}

// EqualLineage compares two point-wise views by logical equivalence of the
// lineages (exponential in variable count; small inputs only).
func (m PointMap) EqualLineage(o PointMap) error {
	for k, times := range m {
		for t, row := range times {
			orow, ok := o[k][t]
			if !ok {
				return fmt.Errorf("fact '%s' at time %d missing on right side", row.Fact, t)
			}
			if !lineage.Equivalent(row.Lineage, orow.Lineage) {
				return fmt.Errorf("fact '%s' at time %d: lineage %v vs %v not equivalent",
					row.Fact, t, row.Lineage, orow.Lineage)
			}
		}
	}
	for k, times := range o {
		for t, row := range times {
			if _, ok := m[k][t]; !ok {
				return fmt.Errorf("fact '%s' at time %d missing on left side", row.Fact, t)
			}
		}
	}
	return nil
}

// RefJoin computes the point-wise reference result of a TP join with
// negation, per the paper's semantics. Output facts are r.F ∘ s.F for
// pairings, r.F ∘ NULLs (or plain r.F for the anti join) for negated and
// unmatched outputs, and symmetrically for the right/full variants.
func RefJoin(op Op, r, s *Relation, theta Theta) PointMap {
	probs := MergeProbs(r, s)
	ev := prob.NewEvaluator(probs)
	out := make(PointMap)

	add := func(f Fact, t interval.Time, lam *lineage.Expr) {
		k := f.Key()
		m := out[k]
		if m == nil {
			m = make(map[interval.Time]PointRow)
			out[k] = m
		}
		if _, dup := m[t]; dup {
			panic(fmt.Sprintf("tp: reference semantics produced duplicate fact '%s' at %d", f, t))
		}
		m[t] = PointRow{Fact: f, Lineage: lam, Prob: ev.Prob(lam)}
	}

	horizon := relevantPoints(r, s)

	// Positive side r against negative side s.
	if op != OpRight {
		for _, t := range horizon {
			for _, rt := range r.Tuples {
				if !rt.T.Contains(t) {
					continue
				}
				var matches []*lineage.Expr
				for _, st := range s.Tuples {
					if st.T.Contains(t) && theta.Match(rt.Fact, st.Fact) {
						matches = append(matches, st.Lineage)
						if op == OpLeft || op == OpFull || op == OpInner {
							add(rt.Fact.Concat(st.Fact), t, lineage.And(rt.Lineage, st.Lineage))
						}
					}
				}
				if op == OpInner {
					continue
				}
				negFact := rt.Fact.Concat(Nulls(len(s.Attrs)))
				if op == OpAnti {
					negFact = rt.Fact
				}
				if len(matches) == 0 {
					add(negFact, t, rt.Lineage) // unmatched
				} else {
					add(negFact, t, lineage.AndNot(rt.Lineage, lineage.Or(matches...))) // negating
				}
			}
		}
	}

	// Symmetric side for right/full outer joins.
	if op == OpRight || op == OpFull {
		for _, t := range horizon {
			for _, st := range s.Tuples {
				if !st.T.Contains(t) {
					continue
				}
				var matches []*lineage.Expr
				for _, rt := range r.Tuples {
					if rt.T.Contains(t) && theta.Match(rt.Fact, st.Fact) {
						matches = append(matches, rt.Lineage)
						if op == OpRight {
							add(rt.Fact.Concat(st.Fact), t, lineage.And(rt.Lineage, st.Lineage))
						}
					}
				}
				negFact := Nulls(len(r.Attrs)).Concat(st.Fact)
				if len(matches) == 0 {
					add(negFact, t, st.Lineage)
				} else {
					add(negFact, t, lineage.AndNot(st.Lineage, lineage.Or(matches...)))
				}
			}
		}
	}
	return out
}

// relevantPoints returns every time point at which some tuple of r or s is
// valid. Reference semantics only; test inputs are small.
func relevantPoints(r, s *Relation) []interval.Time {
	set := make(map[interval.Time]struct{})
	for _, rel := range []*Relation{r, s} {
		for _, t := range rel.Tuples {
			for tt := t.T.Start; tt < t.T.End; tt++ {
				set[tt] = struct{}{}
			}
		}
	}
	out := make([]interval.Time, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
