package tp

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	if !Null().IsNull() || Null().Kind() != KindNull {
		t.Errorf("Null misbehaves")
	}
	if Int(42).AsInt() != 42 || Int(42).Kind() != KindInt {
		t.Errorf("Int misbehaves")
	}
	if Float(2.5).AsFloat() != 2.5 || Float(2.5).Kind() != KindFloat {
		t.Errorf("Float misbehaves")
	}
	if String_("x").AsString() != "x" || String_("x").Kind() != KindString {
		t.Errorf("String misbehaves")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Errorf("int should widen to float")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null().AsInt() },
		func() { String_("x").AsFloat() },
		func() { Int(1).AsString() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null(), Null(), true},
		{Null(), Int(0), false},
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(3), Float(3.0), true},
		{Float(2.5), Float(2.5), true},
		{String_("a"), String_("a"), true},
		{String_("a"), String_("b"), false},
		{String_("3"), Int(3), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{Null(), Int(-5), Int(3), Float(3.5), String_("a"), String_("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	if Null().String() != "-" {
		t.Errorf("NULL must render as '-' per Fig. 1b, got %q", Null().String())
	}
	if Int(7).String() != "7" || Float(0.5).String() != "0.5" || String_("ZAK").String() != "ZAK" {
		t.Errorf("rendering wrong")
	}
}

func TestFactKeyInjective(t *testing.T) {
	cases := [][2]Fact{
		{Strings("ab", "c"), Strings("a", "bc")},
		{Strings("a"), Fact{Null()}},
		{Fact{Int(1)}, Fact{String_("1")}},
		{Fact{Int(1), Null()}, Fact{Int(1)}},
		{Fact{Float(1.5)}, Fact{String_("1.5")}},
	}
	for _, c := range cases {
		if c[0].Key() == c[1].Key() {
			t.Errorf("Key collision between %v and %v", c[0], c[1])
		}
	}
	if Strings("a", "b").Key() != Strings("a", "b").Key() {
		t.Errorf("Key must be deterministic")
	}
	// Int and equal-valued Float must key differently (Equal treats them
	// equal for matching but key is structural; grouping uses facts from a
	// single schema, so kinds are homogeneous).
	if (Fact{Int(2)}).Key() == (Fact{Float(2)}).Key() {
		t.Errorf("structural key should distinguish kinds")
	}
}

func TestFactOps(t *testing.T) {
	f := Strings("Ann", "ZAK")
	g := f.Concat(Nulls(1))
	if g.String() != "Ann, ZAK, -" {
		t.Errorf("Concat/String = %q", g)
	}
	if !f.Equal(Strings("Ann", "ZAK")) {
		t.Errorf("Equal failed")
	}
	if f.Equal(Strings("Ann")) {
		t.Errorf("arity mismatch must not be Equal")
	}
	if f.Compare(Strings("Ann", "ZAK")) != 0 {
		t.Errorf("Compare equal failed")
	}
	if f.Compare(Strings("Ann", "ZAL")) >= 0 {
		t.Errorf("Compare order failed")
	}
	if f.Compare(Strings("Ann")) <= 0 {
		t.Errorf("longer fact must compare greater on prefix tie")
	}
	cl := f.Clone()
	cl[0] = String_("Bob")
	if f[0].AsString() != "Ann" {
		t.Errorf("Clone must not alias")
	}
}

func TestNullsFact(t *testing.T) {
	n := Nulls(3)
	if len(n) != 3 {
		t.Fatalf("Nulls arity")
	}
	for _, v := range n {
		if !v.IsNull() {
			t.Errorf("Nulls must be NULL")
		}
	}
}

// Property tests on the core value/fact data structures (testing/quick).

func TestValueCompareTotalOrderQuick(t *testing.T) {
	gen := func(sel, i int, f float64, s string) Value {
		switch ((sel % 4) + 4) % 4 {
		case 0:
			return Null()
		case 1:
			return Int(int64(i % 100))
		case 2:
			return Float(float64(int(f*8)) / 4)
		default:
			return String_(s)
		}
	}
	antisym := func(s1, i1 int, f1 float64, st1 string, s2, i2 int, f2 float64, st2 string) bool {
		a, b := gen(s1, i1, f1, st1), gen(s2, i2, f2, st2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(s1, i1 int, f1 float64, st1 string,
		s2, i2 int, f2 float64, st2 string,
		s3, i3 int, f3 float64, st3 string) bool {
		a, b, c := gen(s1, i1, f1, st1), gen(s2, i2, f2, st2), gen(s3, i3, f3, st3)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("transitivity: %v", err)
	}
	consistent := func(s1, i1 int, f1 float64, st1 string, s2, i2 int, f2 float64, st2 string) bool {
		a, b := gen(s1, i1, f1, st1), gen(s2, i2, f2, st2)
		if a.Equal(b) {
			return a.Compare(b) == 0
		}
		return true
	}
	if err := quick.Check(consistent, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("Equal/Compare consistency: %v", err)
	}
}

func TestFactKeyEqualConsistencyQuick(t *testing.T) {
	// Facts over string values: Key equality must coincide with Equal.
	f := func(a1, a2, b1, b2 string) bool {
		fa := Strings(a1, a2)
		fb := Strings(b1, b2)
		return (fa.Key() == fb.Key()) == fa.Equal(fb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFactCompareMatchesKeyOrderQuick(t *testing.T) {
	// Compare must be a total order agreeing with Equal.
	f := func(a1, b1 string, x, y int8) bool {
		fa := Fact{String_(a1), Int(int64(x))}
		fb := Fact{String_(b1), Int(int64(y))}
		c := fa.Compare(fb)
		if fa.Equal(fb) {
			return c == 0
		}
		return c != 0 && c == -fb.Compare(fa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
