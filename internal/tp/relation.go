package tp

import (
	"fmt"
	"sort"
	"strings"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/prob"
)

// Tuple is a temporal-probabilistic tuple (F, λ, T, p): a fact F valid over
// the half-open interval T, true with probability p = Pr(λ), where λ is a
// lineage formula over independent base events.
type Tuple struct {
	Fact    Fact
	Lineage *lineage.Expr
	T       interval.Interval
	Prob    float64
}

// String renders the tuple in the layout of the paper's figures:
// ('Ann, ZAK', a1, [2,8), 0.7).
func (t Tuple) String() string {
	return fmt.Sprintf("('%s', %s, %s, %.6g)", t.Fact, t.Lineage, t.T, t.Prob)
}

// Relation is a TP relation: a named list of TP tuples over a fixed set of
// non-temporal attributes, together with the probabilities of the base
// events that its lineages mention.
type Relation struct {
	Name   string
	Attrs  []string
	Tuples []Tuple
	// Probs maps every base event appearing in the lineages of Tuples to
	// its probability. For a base relation these are exactly the tuple
	// probabilities; derived relations inherit the union of their inputs'.
	Probs prob.Probs
	// Transient marks a per-query temporary (a drained subplan, a
	// parallel-join partition): the execution engine skips its
	// per-relation derived-structure caches for transient relations,
	// whose entries could never be re-hit.
	Transient bool

	// version counts structure-changing mutations through this package's
	// methods (appends, sorts); derived-structure caches use it together
	// with the length to detect staleness. Direct writes to Tuples bypass
	// it — see the in-place mutation caveat below.
	version uint64
}

// Version reports the relation's mutation counter; see Relation.version.
func (r *Relation) Version() uint64 { return r.version }

// NewRelation returns an empty relation with the given name and attribute
// names. The name doubles as the lineage-variable prefix for base tuples.
func NewRelation(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: attrs, Probs: make(prob.Probs)}
}

// Append adds a base tuple with the next base-event variable (name,
// len(Tuples)+1), registering its probability. It returns the assigned
// variable for convenience.
func (r *Relation) Append(f Fact, t interval.Interval, p float64) lineage.Var {
	if len(f) != len(r.Attrs) {
		panic(fmt.Sprintf("tp: fact arity %d does not match schema %v", len(f), r.Attrs))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("tp: probability %g out of [0,1]", p))
	}
	if t.Empty() {
		panic("tp: tuple with empty interval")
	}
	v := lineage.Var{Rel: r.Name, ID: len(r.Tuples) + 1}
	r.Tuples = append(r.Tuples, Tuple{Fact: f, Lineage: lineage.VarExpr(v), T: t, Prob: p})
	r.Probs[v] = p
	r.version++
	return v
}

// AppendDerived adds a tuple with an explicit lineage; the caller must make
// sure the base events of the lineage are registered in Probs.
func (r *Relation) AppendDerived(f Fact, e *lineage.Expr, t interval.Interval, p float64) {
	r.Tuples = append(r.Tuples, Tuple{Fact: f, Lineage: e, T: t, Prob: p})
	r.version++
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Arity returns the number of non-temporal attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Clone returns a deep copy of the relation (tuples share immutable facts
// and lineages).
func (r *Relation) Clone() *Relation {
	out := &Relation{
		Name:   r.Name,
		Attrs:  append([]string(nil), r.Attrs...),
		Tuples: append([]Tuple(nil), r.Tuples...),
		Probs:  r.Probs.Clone(),
	}
	return out
}

// In-place mutation caveat: the execution engine caches derived
// structures (start-sorted orders, interned-key dictionaries) per
// relation identity, invalidated by the (length, Version) pair. The
// mutating methods of this package bump Version, so appends and sorts
// are detected; direct writes through the exported Tuples slice are
// not. Treat a relation as immutable once it has been used as a join
// input, or Clone before mutating it by hand.

// SortByFactStart sorts tuples by (fact, interval) — the canonical order
// for grouping operators. See the in-place mutation caveat above.
func (r *Relation) SortByFactStart() {
	r.version++
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		ti, tj := r.Tuples[i], r.Tuples[j]
		if c := ti.Fact.Compare(tj.Fact); c != 0 {
			return c < 0
		}
		return ti.T.Less(tj.T)
	})
}

// SortByStart sorts tuples by interval (Start, End). See the in-place
// mutation caveat above.
func (r *Relation) SortByStart() {
	r.version++
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].T.Less(r.Tuples[j].T)
	})
}

// ValidateSequenced checks the sequenced-TP integrity constraint: within
// the relation, tuples with the same fact must have pairwise disjoint
// intervals, so that every fact has at most one probability at each time
// point. It returns a descriptive error for the first violation.
func (r *Relation) ValidateSequenced() error {
	byFact := NewKeyGroups[interval.Interval]()
	for i, t := range r.Tuples {
		if t.T.Empty() {
			return fmt.Errorf("tp: %s tuple %d has empty interval", r.Name, i)
		}
		if t.Lineage == nil {
			return fmt.Errorf("tp: %s tuple %d has null lineage", r.Name, i)
		}
		g := byFact.Group(t.Fact.KeyHash(), t.Fact, Fact.KeyEqual)
		for _, iv := range g.Vals {
			if iv.Overlaps(t.T) {
				return fmt.Errorf("tp: %s fact '%s' has overlapping intervals %v and %v",
					r.Name, t.Fact, iv, t.T)
			}
		}
		g.Vals = append(g.Vals, t.T)
	}
	return nil
}

// ComputeProbs fills in Prob = Pr(λ) for every tuple, using the base-event
// probabilities of the relation. It returns the relation for chaining.
func (r *Relation) ComputeProbs() *Relation {
	ev := prob.NewEvaluator(r.Probs)
	for i := range r.Tuples {
		r.Tuples[i].Prob = ev.Prob(r.Tuples[i].Lineage)
	}
	return r
}

// String renders the relation as a small table, for examples and debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)\n", r.Name, strings.Join(r.Attrs, ", "))
	for _, t := range r.Tuples {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}

// MergeProbs returns the union of the base-event probability maps of rs.
// It panics when the same base event is registered with two different
// probabilities, which indicates relations from inconsistent databases.
func MergeProbs(rs ...*Relation) prob.Probs {
	out := make(prob.Probs)
	for _, r := range rs {
		for v, p := range r.Probs {
			if q, ok := out[v]; ok && q != p {
				panic(fmt.Sprintf("tp: base event %v has conflicting probabilities %g and %g", v, q, p))
			}
			out[v] = p
		}
	}
	return out
}
