package tp

import "strings"

// Theta is a join condition θ over the non-temporal attributes of two
// relations: Match reports whether the pair (r, s) of facts satisfies θ.
type Theta interface {
	Match(r, s Fact) bool
}

// EquiTheta is a conjunction of column equalities r[RCols[i]] = s[SCols[i]].
// It is the common case (the paper's experiments use a.Loc = b.Loc) and
// supports hash partitioning: facts with different keys can never match.
// SQL semantics apply: a NULL never matches anything.
type EquiTheta struct {
	RCols []int
	SCols []int
}

// Equi returns the single-column equality condition r[rCol] = s[sCol].
func Equi(rCol, sCol int) EquiTheta {
	return EquiTheta{RCols: []int{rCol}, SCols: []int{sCol}}
}

// Match implements Theta.
func (e EquiTheta) Match(r, s Fact) bool {
	for i := range e.RCols {
		rv, sv := r[e.RCols[i]], s[e.SCols[i]]
		if rv.IsNull() || sv.IsNull() {
			return false
		}
		if !rv.Equal(sv) {
			return false
		}
	}
	return true
}

// RKey returns the partition key of an r fact; facts whose key differs from
// an s fact's SKey can never satisfy θ. The bool is false when the key
// involves a NULL (such facts match nothing).
func (e EquiTheta) RKey(f Fact) (string, bool) { return equiKey(f, e.RCols) }

// SKey returns the partition key of an s fact; see RKey.
func (e EquiTheta) SKey(f Fact) (string, bool) { return equiKey(f, e.SCols) }

func equiKey(f Fact, cols []int) (string, bool) {
	var b strings.Builder
	for _, c := range cols {
		if f[c].IsNull() {
			return "", false
		}
		f[c].appendKey(&b)
	}
	return b.String(), true
}

// RKeyHash is the allocation-free fast path of RKey: a 64-bit FNV-1a hash
// of the r fact's equi-key columns. Facts with equal RKey strings always
// hash equal; distinct keys may collide, so hash buckets must be resolved
// with KeyMatch (probe vs. build side) or RKeyEqual/SKeyEqual (same side)
// before tuples are paired.
func (e EquiTheta) RKeyHash(f Fact) (uint64, bool) { return equiKeyHash(f, e.RCols) }

// SKeyHash is the hashed fast path of SKey; see RKeyHash.
func (e EquiTheta) SKeyHash(f Fact) (uint64, bool) { return equiKeyHash(f, e.SCols) }

func equiKeyHash(f Fact, cols []int) (uint64, bool) {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		if f[c].IsNull() {
			return 0, false
		}
		h = f[c].hashKey(h)
	}
	return h, true
}

// KeyMatch reports whether an r fact and an s fact have identical equi
// keys under the strict (kind-exact) equality that the canonical key
// encoding discriminates by — the relation RKey(r) == SKey(s) computes on
// strings, without the allocation. Note this is deliberately NOT Match:
// hash-partitioned equi joins pair tuples by key identity, under which
// Int(2) and Float(2) differ even though Match widens numeric kinds.
func (e EquiTheta) KeyMatch(r, s Fact) bool {
	for i := range e.RCols {
		if !r[e.RCols[i]].keyEqual(s[e.SCols[i]]) {
			return false
		}
	}
	return true
}

// RKeyEqual reports strict key equality of the equi-key columns of two r
// facts (used to resolve hash collisions when grouping one relation).
func (e EquiTheta) RKeyEqual(a, b Fact) bool { return colsKeyEqual(a, b, e.RCols) }

// SKeyEqual reports strict key equality of the equi-key columns of two s
// facts; see RKeyEqual.
func (e EquiTheta) SKeyEqual(a, b Fact) bool { return colsKeyEqual(a, b, e.SCols) }

func colsKeyEqual(a, b Fact, cols []int) bool {
	for _, c := range cols {
		if !a[c].keyEqual(b[c]) {
			return false
		}
	}
	return true
}

// FuncTheta adapts an arbitrary predicate to Theta (general θ conditions:
// inequalities, band joins, ...). It cannot be hash-partitioned.
type FuncTheta func(r, s Fact) bool

// Match implements Theta.
func (f FuncTheta) Match(r, s Fact) bool { return f(r, s) }

// TrueTheta matches every pair (temporal cross product).
type TrueTheta struct{}

// Match implements Theta.
func (TrueTheta) Match(r, s Fact) bool { return true }

// Swap returns θ with the roles of the two sides exchanged, preserving the
// hash-partitioning capability of equi conditions. Used by the right/full
// outer join variants, which run the window pipeline with swapped inputs.
func Swap(t Theta) Theta {
	switch e := t.(type) {
	case EquiTheta:
		return EquiTheta{RCols: e.SCols, SCols: e.RCols}
	case swappedTheta:
		return e.inner
	default:
		return swappedTheta{inner: t}
	}
}

type swappedTheta struct{ inner Theta }

func (s swappedTheta) Match(r, t Fact) bool { return s.inner.Match(t, r) }
