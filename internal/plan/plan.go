// Package plan turns parsed SQL statements (internal/sql) into executable
// operator trees (internal/engine): name resolution against the catalog,
// column binding, θ-condition construction, physical join-strategy
// selection — forced per session like the paper's PostgreSQL GUC
// (SET strategy = nj|ta|pnj|pta), or chosen per join by the cost model
// over catalog statistics (SET strategy = auto, the default; see cost.go)
// priced by a measured calibration (calibration.go) — and EXPLAIN
// rendering.
package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tpjoin/internal/align"
	"tpjoin/internal/catalog"
	"tpjoin/internal/core"
	"tpjoin/internal/engine"
	"tpjoin/internal/sql"
	"tpjoin/internal/tp"
)

// MaxJoinWorkers caps SET join_workers. PNJ over-partitions by 4× the
// worker count and spawns one goroutine per partition, so an unbounded
// value would let a single (possibly remote, on tpserverd) session
// allocate partitions and goroutines without limit; beyond a few times
// the CPU count extra workers only add overhead anyway. The executor
// clamps to the same bound (core.MaxWorkers), so the two layers cannot
// drift apart.
const MaxJoinWorkers = core.MaxWorkers

// Strategy is the session's join-strategy setting: one of the engine's
// physical strategies, forced for every join, or StrategyAuto (the zero
// value and therefore every surface's default), under which the cost
// model (EstimateJoin) picks the cheapest physical strategy per join from
// catalog statistics.
type Strategy uint8

// The SET strategy values.
const (
	StrategyAuto Strategy = iota
	StrategyNJ
	StrategyTA
	StrategyPNJ
	StrategyPTA
)

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNJ:
		return "NJ"
	case StrategyTA:
		return "TA"
	case StrategyPNJ:
		return "PNJ"
	case StrategyPTA:
		return "PTA"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Physical returns the forced engine strategy; forced is false for
// StrategyAuto (the returned strategy is then the nominal NJ default).
func (s Strategy) Physical() (strat engine.Strategy, forced bool) {
	switch s {
	case StrategyNJ:
		return engine.StrategyNJ, true
	case StrategyTA:
		return engine.StrategyTA, true
	case StrategyPNJ:
		return engine.StrategyPNJ, true
	case StrategyPTA:
		return engine.StrategyPTA, true
	default:
		return engine.StrategyNJ, false
	}
}

// Session carries the per-connection settings that influence planning.
type Session struct {
	// Strategy selects the physical TP join implementation, or
	// StrategyAuto (the default) for cost-based per-join selection.
	Strategy Strategy
	// TANestedLoop forces the nested-loop plan for the TA baseline
	// (the plan PostgreSQL chose in the paper's evaluation).
	TANestedLoop bool
	// Workers is the parallel-executor worker count for PNJ and PTA
	// (SET join_workers); 0 means one worker per CPU (GOMAXPROCS).
	Workers int
	// Calib overrides the cost model's measured calibration
	// (SET calibration = '<file>'); nil means the checked-in default.
	Calib *Calibration
	// MemBudget is the per-query memory budget in bytes
	// (SET memory_budget): 0 inherits the surface default (tpserverd's
	// -memory-budget; unlimited on the REPL), negative disables the
	// budget explicitly (SET memory_budget = off), positive is the
	// budget. The executor charges it at its allocation choke points and
	// aborts the query with a budget error on overrun.
	MemBudget int64

	// planned records the TP join of the session's most recent Build:
	// the physical strategy it got and whether the cost model (rather
	// than a forced SET strategy) chose it. The server reads it to
	// attribute per-strategy and auto-pick metrics.
	planned struct {
		strat engine.Strategy
		auto  bool
		join  bool
	}
}

// PlannedJoin reports the physical strategy of the TP join planned by the
// session's most recent statement and whether the cost-based picker chose
// it; ok is false when that statement planned no TP join.
func (s *Session) PlannedJoin() (strat engine.Strategy, auto, ok bool) {
	return s.planned.strat, s.planned.auto, s.planned.join
}

// ResetPlanned clears the planned-join record. Surfaces call it at the
// start of every evaluated input line, so statements that never reach
// Build (SET, backslash commands, parse errors) cannot leak the previous
// statement's pick into per-query accounting.
func (s *Session) ResetPlanned() { s.planned.join = false }

// EffectiveMemBudget resolves the session's memory budget against the
// surface default def (tpserverd's -memory-budget; 0 on the REPL): an
// unset session budget inherits def, an explicit `SET memory_budget =
// off` (negative) disables the budget even when the server configures a
// default, and the result is 0 for "no budget" or the positive byte
// count.
func (s *Session) EffectiveMemBudget(def int64) int64 {
	switch {
	case s.MemBudget < 0:
		return 0
	case s.MemBudget > 0:
		return s.MemBudget
	default:
		return max(def, 0)
	}
}

// ApplySet updates the session from a SET statement. Setting names and
// values are case-insensitive (calibration file paths excepted).
// Supported settings: strategy = auto|nj|ta|pnj|pta,
// ta_nested_loop = on|off, join_workers = <n>,
// calibration = '<file.json>'|default,
// memory_budget = <bytes>[kb|mb|gb]|off|default.
func (s *Session) ApplySet(st *sql.Set) error {
	name := strings.ToLower(st.Name)
	value := strings.ToLower(st.Value)
	switch name {
	case "strategy":
		switch value {
		case "auto":
			s.Strategy = StrategyAuto
		case "nj":
			s.Strategy = StrategyNJ
		case "ta":
			s.Strategy = StrategyTA
		case "pnj":
			s.Strategy = StrategyPNJ
		case "pta":
			s.Strategy = StrategyPTA
		default:
			return fmt.Errorf("plan: unknown strategy %q (want auto, nj, ta, pnj or pta)", value)
		}
	case "join_workers":
		n, err := strconv.Atoi(st.Value)
		if err != nil || n < 0 || n > MaxJoinWorkers {
			return fmt.Errorf("plan: join_workers wants an integer in [0,%d], got %q", MaxJoinWorkers, st.Value)
		}
		s.Workers = n
	case "ta_nested_loop":
		switch value {
		case "on", "true", "1":
			s.TANestedLoop = true
		case "off", "false", "0":
			s.TANestedLoop = false
		default:
			return fmt.Errorf("plan: ta_nested_loop wants on or off (also true/false, 1/0), got %q", value)
		}
	case "calibration":
		// The file path is taken verbatim (SET calibration = 'cal.json');
		// the keyword "default" restores the checked-in calibration.
		if value == "default" {
			s.Calib = nil
			return nil
		}
		cal, err := LoadCalibration(st.Value)
		if err != nil {
			return fmt.Errorf("plan: calibration: %w", err)
		}
		s.Calib = cal
	case "memory_budget":
		switch value {
		case "default":
			s.MemBudget = 0
		case "off", "unlimited":
			s.MemBudget = -1
		default:
			n, err := ParseByteSize(value)
			if err != nil {
				return fmt.Errorf("plan: memory_budget wants a positive byte count (kb/mb/gb suffixes ok), off or default, got %q", st.Value)
			}
			s.MemBudget = n
		}
	default:
		return fmt.Errorf("plan: unknown setting %q (want strategy, join_workers, ta_nested_loop, calibration or memory_budget)", name)
	}
	return nil
}

// ParseByteSize parses a positive byte count with an optional binary
// suffix: "65536", "64kb", "256mb", "2gb" (also the one-letter forms).
// Shared by SET memory_budget and tpserverd's -memory-budget flag, which
// must accept byte-identical inputs — so the normalization (case folding,
// whitespace trimming: "256MB", "64 kb") lives here, not in the callers.
func ParseByteSize(v string) (int64, error) {
	v = strings.ToLower(strings.TrimSpace(v))
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30}, {"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30}} {
		if strings.HasSuffix(v, suf.s) {
			v, mult = strings.TrimSuffix(v, suf.s), suf.m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return 0, err
	}
	if n <= 0 || n > (1<<62)/mult {
		return 0, fmt.Errorf("out of range")
	}
	return n * mult, nil
}

// binding maps column references to indexes of the combined output fact.
type binding struct {
	// tables in fact order: each with its binding name and attrs.
	parts []boundTable
}

type boundTable struct {
	name   string // alias or table name
	attrs  []string
	offset int
}

func (b *binding) arity() int {
	n := 0
	for _, p := range b.parts {
		n += len(p.attrs)
	}
	return n
}

func (b *binding) attrs() []string {
	var out []string
	for _, p := range b.parts {
		out = append(out, p.attrs...)
	}
	return out
}

// resolve finds the fact index of a column reference, enforcing SQL
// ambiguity rules.
func (b *binding) resolve(c sql.ColRef) (int, error) {
	found := -1
	for _, p := range b.parts {
		if c.Table != "" && !strings.EqualFold(c.Table, p.name) {
			continue
		}
		for i, a := range p.attrs {
			if strings.EqualFold(a, c.Column) {
				if found >= 0 {
					return 0, fmt.Errorf("plan: ambiguous column %q", c)
				}
				found = p.offset + i
			}
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %q", c)
	}
	return found, nil
}

// Build compiles a SELECT into an operator tree. TP joins get their
// physical strategy here: the session's forced SET strategy, or — under
// SET strategy = auto, the default — the cost model's cheapest estimate
// over the catalog statistics of the join inputs (see EstimateJoin).
func Build(sel *sql.Select, cat *catalog.Catalog, sess *Session) (engine.Operator, error) {
	op, _, err := build(sel, cat, sess, nil, nil)
	return op, err
}

// build is Build plus the prepared-statement machinery: params binds
// placeholder literals (EXECUTE), and a non-nil cached entry short-cuts
// the statistics profiling and cost-model estimation with the memoized
// pick — the expensive half of planning. The returned entry describes
// what this build planned against (relation snapshots, join estimate) so
// PlanPrepared can publish it to the cache.
func build(sel *sql.Select, cat *catalog.Catalog, sess *Session, params []sql.Literal, cached *Entry) (engine.Operator, *Entry, error) {
	sess.ResetPlanned()
	entry := &Entry{}
	left, err := cat.Lookup(sel.From.Name)
	if err != nil {
		return nil, nil, err
	}
	entry.snapshot(sel.From.Name, left)
	b := &binding{parts: []boundTable{{name: sel.From.Binding(), attrs: left.Attrs}}}
	var op engine.Operator = engine.NewScan(left)

	if sel.SetOp != nil {
		right, err := cat.Lookup(sel.SetOp.Right.Name)
		if err != nil {
			return nil, nil, err
		}
		entry.snapshot(sel.SetOp.Right.Name, right)
		if right.Arity() != left.Arity() {
			return nil, nil, fmt.Errorf("plan: %s and %s are not union-compatible (%d vs %d attributes)",
				sel.From.Name, sel.SetOp.Right.Name, left.Arity(), right.Arity())
		}
		var kind engine.SetOpKind
		switch sel.SetOp.Kind {
		case sql.SetUnion:
			kind = engine.SetUnion
		case sql.SetIntersect:
			kind = engine.SetIntersect
		default:
			kind = engine.SetExcept
		}
		op = engine.NewTPSetOp(kind, op, engine.NewScan(right))
	}

	if sel.Join != nil {
		right, err := cat.Lookup(sel.Join.Right.Name)
		if err != nil {
			return nil, nil, err
		}
		entry.snapshot(sel.Join.Right.Name, right)
		lb := &binding{parts: []boundTable{{name: sel.From.Binding(), attrs: left.Attrs}}}
		rb := &binding{parts: []boundTable{{name: sel.Join.Right.Binding(), attrs: right.Attrs}}}
		theta, err := buildTheta(sel.Join.On, lb, rb)
		if err != nil {
			return nil, nil, err
		}
		cfg := align.Config{NestedLoop: sess.TANestedLoop}
		// Score the strategies on the inputs' catalog statistics. When a
		// set operation precedes the join, the left statistics describe
		// its base relation rather than the set-op output — an accepted
		// approximation (set ops only fragment time, they do not change
		// the key distribution materially). A cache hit replays the
		// memoized estimate instead: its validity against the inputs'
		// (length, Version) state was just checked by Cache.get.
		strategy, forced := sess.Strategy.Physical()
		var est Estimate
		if cached != nil && cached.est != nil {
			est = *cached.est
		} else {
			est = EstimateJoin(sel.From.Binding(), cat.Stats(left),
				sel.Join.Right.Binding(), cat.Stats(right), theta, sess.Workers, sess.TANestedLoop, sess.Calib)
		}
		entry.est = &est
		if !forced {
			strategy = est.Chosen
		}
		join := engine.NewTPJoin(sel.Join.Op, op, engine.NewScan(right), theta, strategy, cfg)
		join.SetWorkers(sess.Workers)
		join.SetAutoPick(est.autoPickRecord(!forced))
		sess.planned.strat, sess.planned.auto, sess.planned.join = strategy, !forced, true
		op = join
		if sel.Join.Op == tp.OpAnti {
			// Output schema stays the left table's.
		} else {
			b.parts = append(b.parts, boundTable{
				name:   sel.Join.Right.Binding(),
				attrs:  right.Attrs,
				offset: len(left.Attrs),
			})
		}
	}

	if len(sel.Where) > 0 {
		pred, err := buildPredicate(sel.Where, b, params)
		if err != nil {
			return nil, nil, err
		}
		op = engine.NewFilter(op, pred)
	}

	if !sel.Star {
		cols := make([]int, len(sel.Projs))
		names := make([]string, len(sel.Projs))
		for i, c := range sel.Projs {
			idx, err := b.resolve(c)
			if err != nil {
				return nil, nil, err
			}
			cols[i] = idx
			names[i] = c.Column
		}
		if sel.Distinct {
			op, err = engine.NewLineageDistinct(op, cols, names)
		} else {
			op, err = engine.NewProject(op, cols, names)
		}
		if err != nil {
			return nil, nil, err
		}
	} else if sel.Distinct {
		cols := make([]int, b.arity())
		for i := range cols {
			cols[i] = i
		}
		op, err = engine.NewLineageDistinct(op, cols, b.attrs())
		if err != nil {
			return nil, nil, err
		}
	}

	if len(sel.OrderBy) > 0 {
		// ORDER BY is resolved against the pre-projection binding when the
		// projection keeps the referenced columns, else against the
		// projected schema. For simplicity (and matching the dialect docs)
		// it resolves against the *output* schema of the preceding stage.
		less, err := buildOrder(sel.OrderBy, op.Attrs())
		if err != nil {
			return nil, nil, err
		}
		op = engine.NewSort(op, less)
	}

	if sel.Limit >= 0 {
		op = engine.NewLimit(op, sel.Limit)
	}
	return op, entry, nil
}

// buildOrder compiles ORDER BY keys against the output attribute names,
// supporting the Tstart/Tend/P pseudo-columns.
func buildOrder(keys []sql.OrderKey, attrs []string) (engine.TupleLess, error) {
	type cKey struct {
		idx    int
		pseudo int
		desc   bool
	}
	cks := make([]cKey, len(keys))
	for i, k := range keys {
		ck := cKey{idx: -1, desc: k.Desc}
		if k.Col.Table == "" {
			ck.pseudo = pseudoColumn(k.Col)
		}
		if ck.pseudo == pseudoNone {
			for j, a := range attrs {
				if strings.EqualFold(a, k.Col.Column) {
					if ck.idx >= 0 {
						return nil, fmt.Errorf("plan: ambiguous ORDER BY column %q", k.Col)
					}
					ck.idx = j
				}
			}
			if ck.idx < 0 {
				return nil, fmt.Errorf("plan: unknown ORDER BY column %q", k.Col)
			}
		}
		cks[i] = ck
	}
	return func(a, b tp.Tuple) bool {
		for _, ck := range cks {
			var c int
			switch ck.pseudo {
			case pseudoProb:
				c = cmpFloat(a.Prob, b.Prob)
			case pseudoTstart:
				c = cmpFloat(float64(a.T.Start), float64(b.T.Start))
			case pseudoTend:
				c = cmpFloat(float64(a.T.End), float64(b.T.End))
			default:
				c = a.Fact[ck.idx].Compare(b.Fact[ck.idx])
			}
			if ck.desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	}, nil
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// buildTheta converts ON equalities into an EquiTheta, resolving each side
// against the proper table (either order is accepted per conjunct).
func buildTheta(on []sql.OnEq, lb, rb *binding) (tp.Theta, error) {
	eq := tp.EquiTheta{}
	for _, c := range on {
		li, lerr := lb.resolve(c.L)
		ri, rerr := rb.resolve(c.R)
		if lerr == nil && rerr == nil {
			eq.RCols = append(eq.RCols, li)
			eq.SCols = append(eq.SCols, ri)
			continue
		}
		// Try the swapped orientation: right.col = left.col.
		li2, lerr2 := lb.resolve(c.R)
		ri2, rerr2 := rb.resolve(c.L)
		if lerr2 == nil && rerr2 == nil {
			eq.RCols = append(eq.RCols, li2)
			eq.SCols = append(eq.SCols, ri2)
			continue
		}
		if lerr != nil {
			return nil, lerr
		}
		return nil, rerr
	}
	if len(eq.RCols) == 0 {
		return nil, fmt.Errorf("plan: join needs at least one ON equality")
	}
	return eq, nil
}

// pseudo-columns available in WHERE besides the fact attributes: the
// tuple probability and the interval endpoints.
const (
	pseudoNone = iota
	pseudoProb
	pseudoTstart
	pseudoTend
)

func pseudoColumn(c sql.ColRef) int {
	if c.Table != "" {
		return pseudoNone
	}
	switch strings.ToLower(c.Column) {
	case "p", "prob":
		return pseudoProb
	case "tstart":
		return pseudoTstart
	case "tend":
		return pseudoTend
	default:
		return pseudoNone
	}
}

// buildPredicate compiles WHERE conjuncts. params binds placeholder
// literals (Literal.Param > 0) positionally — the EXECUTE path; a plain
// SELECT never contains placeholders (the parser rejects them outside
// PREPARE), so params is nil there.
func buildPredicate(conds []sql.Condition, b *binding, params []sql.Literal) (engine.Predicate, error) {
	type compiled struct {
		idx    int
		pseudo int
		cond   sql.Condition
		litVal tp.Value
	}
	cs := make([]compiled, len(conds))
	for i, c := range conds {
		if p := c.Lit.Param; p > 0 && !c.IsNull {
			if p > len(params) {
				return nil, fmt.Errorf("plan: unbound parameter $%d", p)
			}
			// Substitute the bound value; everything below sees a plain
			// constant, so a parameter behaves exactly like its inline
			// literal (the differential harness pins this).
			c.Lit = params[p-1]
		}
		idx, err := b.resolve(c.Col)
		if err != nil {
			// Fact attributes shadow pseudo-columns; only unresolvable
			// names fall through to P / Tstart / Tend.
			if ps := pseudoColumn(c.Col); ps != pseudoNone {
				if c.IsNull {
					return nil, fmt.Errorf("plan: %s cannot be NULL", c.Col)
				}
				if c.Lit.IsString {
					return nil, fmt.Errorf("plan: %s compares to numbers, got %s", c.Col, c.Lit)
				}
				cs[i] = compiled{pseudo: ps, cond: c}
				continue
			}
			return nil, err
		}
		cs[i] = compiled{idx: idx, cond: c, litVal: c.Lit.Value()}
	}
	cmpOK := func(op string, cmp int) bool {
		switch op {
		case "=":
			return cmp == 0
		case "<>":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		default:
			return false
		}
	}
	return func(t tp.Tuple) bool {
		for _, c := range cs {
			if c.pseudo != pseudoNone {
				var val float64
				switch c.pseudo {
				case pseudoProb:
					val = t.Prob
				case pseudoTstart:
					val = float64(t.T.Start)
				case pseudoTend:
					val = float64(t.T.End)
				}
				cmp := 0
				switch {
				case val < c.cond.Lit.Num:
					cmp = -1
				case val > c.cond.Lit.Num:
					cmp = 1
				}
				if !cmpOK(c.cond.Op, cmp) {
					return false
				}
				continue
			}
			v := t.Fact[c.idx]
			if c.cond.IsNull {
				if v.IsNull() != !c.cond.Negate {
					return false
				}
				continue
			}
			if v.IsNull() {
				return false // SQL: NULL compares to nothing
			}
			if c.cond.Op == "=" && !v.Equal(c.litVal) {
				return false
			}
			if c.cond.Op == "<>" && v.Equal(c.litVal) {
				return false
			}
			if c.cond.Op != "=" && c.cond.Op != "<>" && !cmpOK(c.cond.Op, v.Compare(c.litVal)) {
				return false
			}
		}
		return true
	}, nil
}

// Node is one operator of an EXPLAIN [ANALYZE] plan tree. Desc is the
// operator description (the line EXPLAIN prints); the counters are only
// populated under ANALYZE. The JSON shape is the structured EXPLAIN
// representation the query server puts on the wire.
type Node struct {
	Desc string `json:"desc"`
	// Rows is the number of tuples the operator produced; TimeUS the
	// inclusive wall time (operator + inputs) in microseconds; OpenUS
	// the part of it spent in Open, where blocking operators do their
	// work.
	Rows   int64 `json:"rows"`
	TimeUS int64 `json:"time_us"`
	OpenUS int64 `json:"open_us,omitempty"`
	// Stages are strategy-specific detail counters of a TP join: window
	// pipeline stages under NJ, alignment counters under TA, partition
	// counters under PNJ.
	Stages []Stage `json:"stages,omitempty"`
	// Pick is the planner's cost-model record for a TP join planned from
	// the SQL surface: the per-strategy cost estimates, the input
	// statistics they were derived from, and whether the cost-based
	// picker (SET strategy = auto) made the choice.
	Pick *PickInfo `json:"pick,omitempty"`
	// Abort is the context error that interrupted this operator's
	// blocking Open, if any.
	Abort    string  `json:"abort,omitempty"`
	Children []*Node `json:"children,omitempty"`
}

// Stage is one strategy-specific detail counter of an ANALYZE'd TP join.
type Stage struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	Batches int64  `json:"batches,omitempty"`
}

// PickInfo is the structured cost-model record of one TP join: the model
// cost per applicable strategy and the input statistics used. Auto is
// true when the picker chose the strategy, false when SET strategy forced
// it (the estimates are still reported for comparison).
type PickInfo struct {
	Auto   bool       `json:"auto,omitempty"`
	Costs  []PickCost `json:"costs"`
	Inputs []string   `json:"inputs,omitempty"`
}

// PickCost is one strategy's model cost estimate, in model milliseconds.
type PickCost struct {
	Strategy string  `json:"strategy"`
	Millis   float64 `json:"millis"`
}

// Tree is a complete EXPLAIN [ANALYZE] result: the operator tree plus,
// under ANALYZE, whole-query totals and the abort reason when the run was
// cancelled mid-flight.
type Tree struct {
	Root    *Node `json:"root"`
	Analyze bool  `json:"analyze,omitempty"`
	// TotalUS is the wall time of the ANALYZE execution; AllocBytes the
	// approximate heap allocation during it (process-wide delta, so
	// concurrent queries inflate it).
	TotalUS    int64 `json:"total_us,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Abort is the context error that aborted the ANALYZE execution
	// (timeout or cancellation); the per-operator counters then reflect
	// the work done up to the abort.
	Abort string `json:"abort,omitempty"`
	// QueryID is the server-assigned query identity, stamped by tpserverd
	// after execution so the ANALYZE trailer can be joined against the
	// structured query log and Response.QueryID. Zero on surfaces without
	// query IDs (the in-process REPL), and then omitted from the
	// rendering.
	QueryID uint64 `json:"query_id,omitempty"`
	// PlanSource reports where an EXPLAIN [ANALYZE] EXECUTE got its plan:
	// "cached" (the plan cache supplied the memoized stats/pick) or
	// "fresh" (planned from scratch, entry published). Empty for plain
	// EXPLAIN SELECT, which never consults the cache.
	PlanSource string `json:"plan_source,omitempty"`
}

// Explain renders the operator tree of a SELECT, annotated with the join
// strategy. With analyze, the query is executed and per-operator rows and
// wall times are included.
func Explain(sel *sql.Select, cat *catalog.Catalog, sess *Session, analyze bool) (string, error) {
	return ExplainContext(context.Background(), sel, cat, sess, analyze)
}

// ExplainContext is Explain with a context governing the ANALYZE
// execution; see ExplainTree for the cancellation semantics.
func ExplainContext(ctx context.Context, sel *sql.Select, cat *catalog.Catalog, sess *Session, analyze bool) (string, error) {
	t, err := ExplainTree(ctx, sel, cat, sess, analyze)
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// ExplainTree compiles (and, with analyze, executes) a SELECT and returns
// the structured plan tree. Under ANALYZE every operator is wrapped in an
// accounting iterator (engine.Instrument) before execution, so the tree
// carries actual rows, wall time and strategy-level stage counters; a
// context cancellation or deadline during the run is not an error — the
// tree is returned with the counters accumulated up to the abort and the
// abort reason on Tree.Abort (and on the Node whose blocking Open was
// interrupted). Without analyze the query is not executed.
func ExplainTree(ctx context.Context, sel *sql.Select, cat *catalog.Catalog, sess *Session, analyze bool) (*Tree, error) {
	op, err := Build(sel, cat, sess)
	if err != nil {
		return nil, err
	}
	return explainOp(ctx, op, analyze)
}

// ExplainPrepared is ExplainTree for EXECUTE: the prepared statement is
// planned through the cache (PlanPrepared), the tree is annotated with
// the plan source ("cached" or "fresh"), and under ANALYZE the bound
// query is executed like any other.
func ExplainPrepared(ctx context.Context, cache *Cache, cat *catalog.Catalog, sess *Session, p *Prepared, params []sql.Literal, analyze bool) (*Tree, error) {
	op, hit, err := PlanPrepared(cache, cat, sess, p, params)
	if err != nil {
		return nil, err
	}
	t, err := explainOp(ctx, op, analyze)
	if err != nil {
		return nil, err
	}
	if hit {
		t.PlanSource = "cached"
	} else {
		t.PlanSource = "fresh"
	}
	return t, nil
}

// explainOp instruments (under analyze), executes and renders one built
// operator tree; the shared tail of ExplainTree and ExplainPrepared.
func explainOp(ctx context.Context, op engine.Operator, analyze bool) (*Tree, error) {
	t := &Tree{Analyze: analyze}
	if analyze {
		root := engine.Instrument(op)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		_, runErr := engine.RunContext(ctx, root, "explain")
		t.TotalUS = time.Since(start).Microseconds()
		runtime.ReadMemStats(&after)
		t.AllocBytes = int64(after.TotalAlloc - before.TotalAlloc)
		if runErr != nil {
			if !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
				return nil, runErr
			}
			t.Abort = runErr.Error()
		}
		op = root
	}
	t.Root = buildNode(op, analyze)
	return t, nil
}

// buildNode converts one (possibly Instrumented) operator into its plan
// node, recursing over the children.
func buildNode(op engine.Operator, analyze bool) *Node {
	inner := op
	inst, _ := op.(*engine.Instrumented)
	if inst != nil {
		inner = inst.Inner()
	}
	n := &Node{}
	var kids []engine.Operator
	switch o := inner.(type) {
	case *engine.Scan:
		n.Desc = fmt.Sprintf("Scan %s (%d tuples)", o.Relation().Name, o.Relation().Len())
	case *engine.Filter:
		n.Desc = "Filter"
		kids = []engine.Operator{childOf(o)}
	case *engine.Project:
		n.Desc = fmt.Sprintf("Project (%s)", strings.Join(inner.Attrs(), ", "))
		kids = []engine.Operator{childOf(o)}
	case *engine.Limit:
		n.Desc = "Limit"
		kids = []engine.Operator{childOf(o)}
	case *engine.TPJoin:
		n.Desc = fmt.Sprintf("TPJoin [%s] strategy=%s", joinName(o), o.Strategy())
		if o.Strategy() == engine.StrategyPNJ || o.Strategy() == engine.StrategyPTA {
			if w := o.Workers(); w > 0 {
				n.Desc += fmt.Sprintf(" workers=%d", w)
			} else {
				n.Desc += " workers=auto"
			}
		}
		if p := o.AutoPick(); p != nil {
			if p.Auto {
				n.Desc += " (auto)"
			}
			n.Pick = &PickInfo{Auto: p.Auto, Inputs: p.Inputs}
			for s := engine.Strategy(0); s < engine.NumStrategies; s++ {
				if c := p.Costs[s]; !math.IsInf(c, 0) && !math.IsNaN(c) {
					n.Pick.Costs = append(n.Pick.Costs,
						PickCost{Strategy: s.String(), Millis: c / 1e6})
				}
			}
		}
		if analyze {
			for _, st := range o.Stages() {
				n.Stages = append(n.Stages, Stage{Name: st.Name, Count: st.Count, Batches: st.Batches})
			}
			if err := o.AbortErr(); err != nil {
				n.Abort = err.Error()
			}
		}
		kids = o.Children()
	case *engine.TPSetOp:
		n.Desc = fmt.Sprintf("TPSetOp [%s]", o.Kind())
		kids = o.Children()
	case *engine.LineageDistinct:
		n.Desc = fmt.Sprintf("LineageDistinct (%s)", strings.Join(inner.Attrs(), ", "))
		kids = []engine.Operator{o.Child()}
	default:
		n.Desc = fmt.Sprintf("%T", inner)
	}
	if analyze {
		if inst != nil {
			st := inst.OpStats()
			n.Rows = st.Rows
			n.TimeUS = st.WallNanos / 1e3
			n.OpenUS = st.OpenNanos / 1e3
		} else {
			n.Rows = inner.Stats().Rows
		}
	}
	for _, k := range kids {
		if k != nil {
			n.Children = append(n.Children, buildNode(k, analyze))
		}
	}
	return n
}

// Render writes the tree in EXPLAIN's indented text form; ANALYZE trees
// include the actual rows/time columns, per-join stage lines and the
// whole-query trailer.
func (t *Tree) Render() string {
	var b strings.Builder
	if t.PlanSource != "" {
		fmt.Fprintf(&b, "plan: %s\n", t.PlanSource)
	}
	renderNode(&b, t.Root, 0, t.Analyze)
	if t.Analyze {
		fmt.Fprintf(&b, "total: time=%.3fms alloc=%dKB",
			float64(t.TotalUS)/1e3, t.AllocBytes/1024)
		if t.QueryID != 0 {
			fmt.Fprintf(&b, " query_id=%d", t.QueryID)
		}
		b.WriteByte('\n')
		if t.Abort != "" {
			fmt.Fprintf(&b, "aborted: %s\n", t.Abort)
		}
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, depth int, analyze bool) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteString(n.Desc)
	if analyze {
		fmt.Fprintf(b, "  rows=%d time=%.3fms", n.Rows, float64(n.TimeUS)/1e3)
		if n.OpenUS > 0 {
			fmt.Fprintf(b, " open=%.3fms", float64(n.OpenUS)/1e3)
		}
		if n.Abort != "" {
			fmt.Fprintf(b, " (aborted: %s)", n.Abort)
		}
	}
	b.WriteByte('\n')
	if n.Pick != nil {
		fmt.Fprintf(b, "%s  cost:", indent)
		for _, c := range n.Pick.Costs {
			fmt.Fprintf(b, " %s=%.3gms", c.Strategy, c.Millis)
		}
		b.WriteByte('\n')
		for _, in := range n.Pick.Inputs {
			fmt.Fprintf(b, "%s  stats %s\n", indent, in)
		}
	}
	for _, st := range n.Stages {
		fmt.Fprintf(b, "%s  stage %s: %d", indent, st.Name, st.Count)
		if st.Batches > 0 {
			fmt.Fprintf(b, " (batches=%d)", st.Batches)
		}
		b.WriteByte('\n')
	}
	for _, k := range n.Children {
		renderNode(b, k, depth+1, analyze)
	}
}

func joinName(j *engine.TPJoin) string { return j.Op().String() }

func childOf(op engine.Operator) engine.Operator {
	type hasChild interface{ Child() engine.Operator }
	if h, ok := op.(hasChild); ok {
		return h.Child()
	}
	return nil
}
