package plan

// The cost model's calibration: the per-primitive constants EstimateJoin
// prices the physical strategies with, measured on a real host rather
// than assumed. `tpbench -calibrate` micro-benchmarks the primitives
// (internal/bench.Calibrate) — the NJ pipeline per tuple and per
// window-pair unit, the alignment baseline per tuple, per fragment and
// per nested-loop pair, and the partitioned executors' per-tuple and
// per-worker overheads — and emits this struct as JSON. The checked-in
// calibration.json (regenerated whenever a perf PR shifts the constants;
// embedded below) is the default every session prices with;
// SET calibration = '<file>' loads a host-specific one at runtime.
//
// The constants are in model nanoseconds: fitted from full-operator
// measurements via the same JoinShape terms the estimator uses, so a
// strategy's estimate approximates its actual runtime on the calibration
// host. What makes the paper's Fig. 5/7 ordering (Webkit → NJ, Meteo →
// TA) emerge is therefore measurement, not construction: NJ's window term
// grows with the per-key concurrency squared while TA's fragment term is
// linear in it, and the measured constants decide where the curves cross.

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
)

// Calibration holds the measured per-primitive costs (model nanoseconds)
// plus the parallel-efficiency policy and the provenance of the
// measurement.
type Calibration struct {
	// NJTuple is the NJ pipeline cost per input tuple; NJWindow the cost
	// per overlapping same-key pair scaled by the active-set size (the
	// window fan-out term, ∝ concurrency²).
	NJTuple  float64 `json:"nj_tuple_ns"`
	NJWindow float64 `json:"nj_window_ns"`
	// TATuple is the alignment baseline's cost per input tuple (key
	// grouping, event lists, union share); TAFrag its cost per
	// overlapping same-key pair (fragmentation, covers, output rows);
	// TANLPair the nested-loop plan's cost per tuple pair.
	TATuple  float64 `json:"ta_tuple_ns"`
	TAFrag   float64 `json:"ta_frag_ns"`
	TANLPair float64 `json:"ta_nl_pair_ns"`
	// ParTuple is the partitioned executors' extra cost per input tuple
	// (hash partitioning, result concatenation); ParSetup their per-worker
	// setup charge (goroutines, partition buffers). Shared by PNJ and PTA.
	ParTuple float64 `json:"par_tuple_ns"`
	ParSetup float64 `json:"par_setup_ns"`
	// ParEfficiency and ParMaxSpeedup are the parallel-amortization
	// policy: marginal speedup per extra worker and its ceiling (skew,
	// materialization, memory bandwidth). They are carried in the
	// calibration so a host with measured scaling can override them, but
	// the calibrator keeps them at their defaults — scaling cannot be
	// measured meaningfully on arbitrary (possibly single-CPU) hosts.
	ParEfficiency float64 `json:"par_efficiency"`
	ParMaxSpeedup float64 `json:"par_max_speedup"`

	// Provenance of the measurement. Notes carries the calibrator's
	// caveats (constants that hit the fitter's floor, single-CPU hosts
	// whose parallel overheads are not transferable) so a degenerate fit
	// is visible in the file, not just in the command output.
	Label      string `json:"label,omitempty"`
	Notes      string `json:"notes,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	CPUs       int    `json:"cpus,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
}

//go:embed calibration.json
var defaultCalibrationJSON []byte

var defaultCalibration = func() *Calibration {
	c, err := ParseCalibration(defaultCalibrationJSON)
	if err != nil {
		panic(fmt.Sprintf("plan: embedded calibration.json is invalid: %v", err))
	}
	return c
}()

// DefaultCalibration returns the checked-in calibration the cost model
// prices with when the session loaded none. The returned value is shared;
// callers must not mutate it.
func DefaultCalibration() *Calibration { return defaultCalibration }

// Validate checks that every constant is usable: the cost terms positive
// and finite, the efficiency in (0, 1], the speedup ceiling ≥ 1.
func (c *Calibration) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"nj_tuple_ns", c.NJTuple}, {"nj_window_ns", c.NJWindow},
		{"ta_tuple_ns", c.TATuple}, {"ta_frag_ns", c.TAFrag},
		{"ta_nl_pair_ns", c.TANLPair},
		{"par_tuple_ns", c.ParTuple}, {"par_setup_ns", c.ParSetup},
	}
	for _, ch := range checks {
		if !(ch.v > 0) || ch.v > 1e12 {
			return fmt.Errorf("calibration: %s = %g, want positive finite", ch.name, ch.v)
		}
	}
	if !(c.ParEfficiency > 0) || c.ParEfficiency > 1 {
		return fmt.Errorf("calibration: par_efficiency = %g, want in (0, 1]", c.ParEfficiency)
	}
	if !(c.ParMaxSpeedup >= 1) || c.ParMaxSpeedup > 1e6 {
		return fmt.Errorf("calibration: par_max_speedup = %g, want ≥ 1", c.ParMaxSpeedup)
	}
	return nil
}

// ParseCalibration decodes and validates a calibration JSON document.
// Unknown fields are rejected so a typo in a hand-edited file fails
// loudly instead of silently keeping a default of zero.
func ParseCalibration(data []byte) (*Calibration, error) {
	var c Calibration
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadCalibration reads a calibration file emitted by tpbench -calibrate.
func LoadCalibration(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseCalibration(data)
}

// MarshalIndent renders the calibration in the checked-in file's layout.
func (c *Calibration) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
