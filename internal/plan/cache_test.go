package plan

import (
	"fmt"
	"strings"
	"testing"

	"tpjoin/internal/catalog"
	"tpjoin/internal/dataset"
	"tpjoin/internal/engine"
	"tpjoin/internal/sql"
	"tpjoin/internal/tp"
)

// mustPrepare parses a PREPARE statement and pins it.
func mustPrepare(t *testing.T, src string) *Prepared {
	t.Helper()
	st, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p, ok := st.(*sql.Prepare)
	if !ok {
		t.Fatalf("parse %q: got %T, want *sql.Prepare", src, st)
	}
	return NewPrepared(p)
}

// runPrepared plans and executes one EXECUTE of p, reporting the cache
// outcome.
func runPrepared(t *testing.T, cache *Cache, cat *catalog.Catalog, sess *Session, p *Prepared, params ...sql.Literal) (*tp.Relation, bool) {
	t.Helper()
	op, cached, err := PlanPrepared(cache, cat, sess, p, params)
	if err != nil {
		t.Fatalf("PlanPrepared(%s): %v", p.Name, err)
	}
	out, err := engine.Run(op, "result")
	if err != nil {
		t.Fatalf("run %s: %v", p.Name, err)
	}
	return out, cached
}

func TestPlanCacheHitOnRepeatedExecute(t *testing.T) {
	cat := demoCatalog(t)
	cache := NewCache(8)
	sess := &Session{}
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc")

	first, cached := runPrepared(t, cache, cat, sess, p)
	if cached {
		t.Fatal("first EXECUTE must miss the empty cache")
	}
	second, cached := runPrepared(t, cache, cat, sess, p)
	if !cached {
		t.Fatal("second EXECUTE of an unchanged catalog must hit")
	}
	f, s := canonical(first), canonical(second)
	if len(f) == 0 || fmt.Sprint(f) != fmt.Sprint(s) {
		t.Errorf("cached plan changed the result:\n  fresh  %v\n  cached %v", f, s)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Invalidations != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestPlanCacheVersionBumpInvalidates pins the staleness contract: a
// mutation that changes a referenced relation's Version without changing
// its length (an in-place sort) must force a re-plan.
func TestPlanCacheVersionBumpInvalidates(t *testing.T) {
	cat := demoCatalog(t)
	cache := NewCache(8)
	sess := &Session{}
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc")

	if _, cached := runPrepared(t, cache, cat, sess, p); cached {
		t.Fatal("first EXECUTE must miss")
	}
	b, err := cat.Lookup("b")
	if err != nil {
		t.Fatal(err)
	}
	lenBefore, verBefore := b.Len(), b.Version()
	b.SortByStart() // version-only bump: length is unchanged
	if b.Len() != lenBefore || b.Version() == verBefore {
		t.Fatalf("test premise broken: len %d→%d version %d→%d",
			lenBefore, b.Len(), verBefore, b.Version())
	}
	if _, cached := runPrepared(t, cache, cat, sess, p); cached {
		t.Fatal("EXECUTE after a version-only bump must re-plan")
	}
	st := cache.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	// The re-published entry is valid again for the mutated relation.
	if _, cached := runPrepared(t, cache, cat, sess, p); !cached {
		t.Error("EXECUTE after the re-plan must hit the fresh entry")
	}
}

// TestPlanCacheReRegisterInvalidates pins the identity half of the
// contract: replacing a relation under the same name invalidates even
// when the replacement happens to match the old (length, Version) pair —
// the weak pointer no longer resolves to the catalog's current relation.
func TestPlanCacheReRegisterInvalidates(t *testing.T) {
	cat := demoCatalog(t)
	cache := NewCache(8)
	sess := &Session{}
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc")
	if _, cached := runPrepared(t, cache, cat, sess, p); cached {
		t.Fatal("first EXECUTE must miss")
	}

	old, err := cat.Lookup("b")
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild b tuple by tuple: the same Append sequence yields the same
	// (length, Version) pair, so only pointer identity can tell them apart.
	repl := tp.NewRelation("b", old.Attrs...)
	for _, tu := range old.Tuples {
		repl.Append(tu.Fact, tu.T, tu.Prob)
	}
	if repl.Len() != old.Len() || repl.Version() != old.Version() {
		t.Fatalf("test premise broken: clone (len,version) differs: (%d,%d) vs (%d,%d)",
			repl.Len(), repl.Version(), old.Len(), old.Version())
	}
	if err := cat.Register(repl); err != nil {
		t.Fatal(err)
	}
	if _, cached := runPrepared(t, cache, cat, sess, p); cached {
		t.Fatal("EXECUTE after a same-name re-registration must re-plan")
	}
	if st := cache.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestPlanCacheDropInvalidates(t *testing.T) {
	cat := demoCatalog(t)
	cache := NewCache(8)
	sess := &Session{}
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM a")
	runPrepared(t, cache, cat, sess, p)
	cat.Drop("a")
	if _, _, err := PlanPrepared(cache, cat, sess, p, nil); err == nil {
		t.Fatal("EXECUTE over a dropped relation must fail, not serve the stale plan")
	}
	if st := cache.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

// TestPlanCacheKeyIncludesSessionSettings: two sessions differing in a
// plan-relevant setting must not share an entry.
func TestPlanCacheKeyIncludesSessionSettings(t *testing.T) {
	cat := demoCatalog(t)
	cache := NewCache(8)
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM a TP JOIN b ON a.Loc = b.Loc")

	runPrepared(t, cache, cat, &Session{Strategy: StrategyNJ}, p)
	if _, cached := runPrepared(t, cache, cat, &Session{Strategy: StrategyTA}, p); cached {
		t.Error("a different forced strategy must plan its own entry")
	}
	if _, cached := runPrepared(t, cache, cat, &Session{Strategy: StrategyNJ}, p); !cached {
		t.Error("the NJ entry must survive the TA plan alongside it")
	}
	if cache.Len() != 2 {
		t.Errorf("entries = %d, want 2 (one per strategy)", cache.Len())
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	cat := demoCatalog(t)
	cache := NewCache(2)
	sess := &Session{}
	ps := []*Prepared{
		mustPrepare(t, "PREPARE q1 AS SELECT * FROM a"),
		mustPrepare(t, "PREPARE q2 AS SELECT * FROM b"),
		mustPrepare(t, "PREPARE q3 AS SELECT * FROM a WHERE Loc = 'ZAK'"),
	}
	for _, p := range ps {
		runPrepared(t, cache, cat, sess, p)
	}
	st := cache.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	// q1 was the least recently used: it re-plans, q3 still hits.
	if _, cached := runPrepared(t, cache, cat, sess, ps[2]); !cached {
		t.Error("most recent entry must have survived eviction")
	}
	if _, cached := runPrepared(t, cache, cat, sess, ps[0]); cached {
		t.Error("least recently used entry must have been evicted")
	}
}

func TestPlanPreparedBindErrors(t *testing.T) {
	cat := demoCatalog(t)
	sess := &Session{}
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM a WHERE Loc = $1")
	_, _, err := PlanPrepared(nil, cat, sess, p, nil)
	if err == nil || !strings.Contains(err.Error(), "wants 1 parameter(s), got 0") {
		t.Errorf("unbound EXECUTE: %v, want parameter-count error", err)
	}
	_, _, err = PlanPrepared(nil, cat, sess, p, []sql.Literal{
		{IsString: true, Str: "ZAK"}, {Num: 2},
	})
	if err == nil || !strings.Contains(err.Error(), "wants 1 parameter(s), got 2") {
		t.Errorf("over-bound EXECUTE: %v, want parameter-count error", err)
	}
}

func TestPlanPreparedNilCachePlansFresh(t *testing.T) {
	cat := demoCatalog(t)
	sess := &Session{}
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM a WHERE Loc = $1")
	for i := 0; i < 2; i++ {
		op, cached, err := PlanPrepared(nil, cat, sess, p, []sql.Literal{{IsString: true, Str: "ZAK"}})
		if err != nil || cached {
			t.Fatalf("nil cache run %d: cached=%t err=%v, want fresh plan", i, cached, err)
		}
		out, err := engine.Run(op, "r")
		if err != nil || out.Len() != 1 {
			t.Fatalf("nil cache run %d: %v (rows %d)", i, err, out.Len())
		}
	}
}

// TestDifferentialExecuteVsInlineSelect is the EXECUTE column of the
// differential harness: across every forced strategy and both synthetic
// workloads, a parameterized EXECUTE — cold and cache-hot — must stay
// byte-identical to the equivalent inline SELECT with the literal spelled
// out.
func TestDifferentialExecuteVsInlineSelect(t *testing.T) {
	strategies := map[string]Strategy{
		"nj": StrategyNJ, "ta": StrategyTA, "pnj": StrategyPNJ, "pta": StrategyPTA,
	}
	workloads := []struct {
		name string
		r, s *tp.Relation
	}{}
	r, s := dataset.Webkit(1500, 7)
	workloads = append(workloads, struct {
		name string
		r, s *tp.Relation
	}{"webkit", r, s})
	r, s = dataset.Meteo(1500, 7)
	workloads = append(workloads, struct {
		name string
		r, s *tp.Relation
	}{"meteo", r, s})

	const inline = "SELECT * FROM r TP JOIN s ON r.Key = s.Key WHERE p >= 0.25"
	p := mustPrepare(t, "PREPARE q AS SELECT * FROM r TP JOIN s ON r.Key = s.Key WHERE p >= ?")
	param := sql.Literal{Num: 0.25}

	for _, in := range workloads {
		cat := catalog.New()
		if err := cat.Register(in.r); err != nil {
			t.Fatal(err)
		}
		if err := cat.Register(in.s); err != nil {
			t.Fatal(err)
		}
		cache := NewCache(8)
		for name, strat := range strategies {
			sess := &Session{Strategy: strat, Workers: 2}
			ref := canonical(runSQLJoin(t, cat, sess, inline))
			if len(ref) == 0 {
				t.Fatalf("%s/%s: empty reference result", in.name, name)
			}
			cold, cached := runPrepared(t, cache, cat, sess, p, param)
			if cached {
				t.Fatalf("%s/%s: first EXECUTE must be cold", in.name, name)
			}
			hot, cached := runPrepared(t, cache, cat, sess, p, param)
			if !cached {
				t.Fatalf("%s/%s: second EXECUTE must hit", in.name, name)
			}
			for run, rel := range map[string]*tp.Relation{"cold": cold, "hot": hot} {
				got := canonical(rel)
				if len(got) != len(ref) {
					t.Errorf("%s/%s %s EXECUTE: %d vs %d coalesced tuples",
						in.name, name, run, len(got), len(ref))
					continue
				}
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("%s/%s %s EXECUTE: line %d differs:\n  want %s\n  got  %s",
							in.name, name, run, i, ref[i], got[i])
					}
				}
			}
		}
	}
}

// TestParseByteSizeNormalization is the regression test for the
// flag-vs-SET divergence: ParseByteSize used to lower-case only inside
// SET handling, so `-memory-budget 256MB` failed while
// `SET memory_budget = 256mb` worked. The normalization now lives in
// ParseByteSize itself, making the two surfaces byte-identical.
func TestParseByteSizeNormalization(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"65536", 65536, true},
		{"64kb", 64 << 10, true},
		{"64KB", 64 << 10, true},
		{"256mb", 256 << 20, true},
		{"256MB", 256 << 20, true}, // the -memory-budget 256MB regression
		{"256Mb", 256 << 20, true},
		{"2gb", 2 << 30, true},
		{"2G", 2 << 30, true},
		{"  64 kb  ", 64 << 10, true}, // embedded + surrounding whitespace
		{"1k", 1 << 10, true},
		{"1m", 1 << 20, true},
		{"", 0, false},
		{"kb", 0, false},                    // suffix only
		{"-1", 0, false},                    // negative
		{"0", 0, false},                     // zero
		{"4611686018427387903kb", 0, false}, // (1<<62)/1024 + overflow
		{"9223372036854775807", 0, false},   // > 1<<62
		{"12.5mb", 0, false},                // no fractional sizes
		{"64qb", 0, false},                  // unknown suffix
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error", c.in, got)
		}
	}
	// The two surfaces accept byte-identical spellings: whatever the flag
	// parses, SET memory_budget parses to the same budget.
	for _, v := range []string{"256MB", "256mb", "64 kb", "2G"} {
		want, err := ParseByteSize(v)
		if err != nil {
			t.Fatalf("ParseByteSize(%q): %v", v, err)
		}
		s := &Session{}
		if err := s.ApplySet(&sql.Set{Name: "memory_budget", Value: v}); err != nil {
			t.Errorf("SET memory_budget = %s: %v", v, err)
		} else if s.MemBudget != want {
			t.Errorf("SET memory_budget = %s: budget %d, flag parses %d", v, s.MemBudget, want)
		}
	}
}
