package plan

// The strategy=auto column of the cross-strategy differential harness.
// internal/engine's TestDifferentialStrategies proves NJ, TA, PNJ and
// PTA byte-identical after canonicalization; this file closes the loop
// over the planning layer: whatever physical strategy the cost-based
// picker — priced by the checked-in measured calibration — routes a
// workload to, the result a default (SET strategy = auto) session
// computes must stay byte-identical to the forced-NJ reference — on
// workloads the picker sends each way (Webkit → NJ/PNJ, larger Meteo →
// TA/PTA). CI gates on this test by name; keep it runnable in isolation.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tpjoin/internal/catalog"
	"tpjoin/internal/dataset"
	"tpjoin/internal/engine"
	"tpjoin/internal/lineage"
	"tpjoin/internal/sql"
	"tpjoin/internal/tp"
)

// canonical renders a join result in strategy-independent form (the
// engine harness's canonicalization: coalesce, canonical lineage, probs
// rounded to 6 decimals, sorted).
func canonical(rel *tp.Relation) []string {
	co := tp.Coalesce(rel)
	lines := make([]string, 0, co.Len())
	for _, tu := range co.Tuples {
		parts := make([]string, len(tu.Fact))
		for i, v := range tu.Fact {
			parts[i] = v.String()
		}
		lines = append(lines, fmt.Sprintf("%s | %s | %s | %.6f",
			strings.Join(parts, " | "), lineage.CanonicalString(tu.Lineage), tu.T, tu.Prob))
	}
	sort.Strings(lines)
	return lines
}

func runSQLJoin(t *testing.T, cat *catalog.Catalog, sess *Session, src string) *tp.Relation {
	t.Helper()
	st, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	op, err := Build(st.(*sql.Select), cat, sess)
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	out, err := engine.Run(op, "diff")
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return out
}

func TestDifferentialAutoStrategy(t *testing.T) {
	workloads := []struct {
		name string
		r, s *tp.Relation
	}{}
	for _, seed := range []int64{3, 11} {
		r, s := dataset.Webkit(3000, seed)
		workloads = append(workloads, struct {
			name string
			r, s *tp.Relation
		}{fmt.Sprintf("webkit/seed=%d", seed), r, s})
	}
	// 8000 tuples is past the measured calibration's Meteo crossover, so
	// the auto column exercises the alignment pick (TA or PTA, pinned
	// below) — in the sequential regime; the sessions pin join_workers=1
	// because with many workers the model may legitimately amortize NJ
	// past TA (see DESIGN.md §Cost model) and 0 resolves to the host's
	// GOMAXPROCS.
	for _, seed := range []int64{3, 11} {
		r, s := dataset.Meteo(8000, seed)
		workloads = append(workloads, struct {
			name string
			r, s *tp.Relation
		}{fmt.Sprintf("meteo/seed=%d", seed), r, s})
	}
	joins := map[string]string{
		"inner": "SELECT * FROM r TP JOIN s ON r.Key = s.Key",
		"left":  "SELECT * FROM r TP LEFT JOIN s ON r.Key = s.Key",
		"full":  "SELECT * FROM r TP FULL JOIN s ON r.Key = s.Key",
		"anti":  "SELECT * FROM r TP ANTI JOIN s ON r.Key = s.Key",
	}
	sawAlign := false
	for _, in := range workloads {
		cat := catalog.New()
		if err := cat.Register(in.r); err != nil {
			t.Fatal(err)
		}
		if err := cat.Register(in.s); err != nil {
			t.Fatal(err)
		}
		for op, src := range joins {
			ref := canonical(runSQLJoin(t, cat, &Session{Strategy: StrategyNJ}, src))
			if len(ref) == 0 {
				t.Fatalf("%s %s: empty reference result", in.name, op)
			}
			auto := &Session{Workers: 1}
			got := canonical(runSQLJoin(t, cat, auto, src))
			strat, isAuto, ok := auto.PlannedJoin()
			if !ok || !isAuto {
				t.Fatalf("%s %s: auto session did not record a pick", in.name, op)
			}
			if strat == engine.StrategyTA || strat == engine.StrategyPTA {
				sawAlign = true
			}
			if len(ref) != len(got) {
				t.Errorf("%s %s auto(%v): %d vs %d coalesced tuples", in.name, op, strat, len(ref), len(got))
				continue
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("%s %s auto(%v): line %d differs:\n  want %s\n  got  %s",
						in.name, op, strat, i, ref[i], got[i])
				}
			}
		}
	}
	if !sawAlign {
		t.Error("no workload exercised the TA/PTA pick — the auto column lost its cross-strategy coverage")
	}
}
