// Plan cache: PREPARE/EXECUTE and the server-wide memoization of
// planning work. A Prepared statement pins the parsed AST (no re-lex, no
// re-parse per EXECUTE); the Cache additionally memoizes the expensive
// half of Build — the statistics profiling and cost-model estimation
// behind the auto strategy picker — keyed by the normalized statement
// text plus every plan-relevant session setting, and invalidated by the
// same (length, Version) staleness contract the statistics cache uses, so
// a catalog mutation of any referenced relation forces a re-plan while
// untouched shapes keep their pick.
package plan

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"weak"

	"tpjoin/internal/catalog"
	"tpjoin/internal/engine"
	"tpjoin/internal/sql"
	"tpjoin/internal/tp"
)

// DefaultCacheSize is the plan-cache capacity surfaces use unless
// configured otherwise (tpserverd -plan-cache). Entries are a few hundred
// bytes each — the cap bounds pinned weak references and LRU bookkeeping,
// not result data.
const DefaultCacheSize = 256

// Prepared is one prepared statement: the parsed SELECT body of a
// PREPARE, pinned for repeated EXECUTE. Sessions own their prepared maps
// (names are session-local, like PostgreSQL's); the planning work is
// shared across sessions through the Cache.
type Prepared struct {
	// Name is the session-local statement name.
	Name string
	// Text is the canonical rendering of the SELECT (sql.Select.String),
	// which normalizes whitespace, keyword case and placeholder style —
	// the statement-text component of the cache key.
	Text string
	// Query is the parsed body; placeholder literals carry their 1-based
	// parameter index.
	Query *sql.Select
	// NumParams is how many parameters an EXECUTE must supply.
	NumParams int
}

// NewPrepared pins a parsed PREPARE statement for execution.
func NewPrepared(p *sql.Prepare) *Prepared {
	return &Prepared{Name: p.Name, Text: p.Query.String(), Query: p.Query, NumParams: p.NumParams}
}

// bindCheck validates the EXECUTE-supplied parameter count.
func (p *Prepared) bindCheck(params []sql.Literal) error {
	if len(params) != p.NumParams {
		return fmt.Errorf("plan: prepared statement %q wants %d parameter(s), got %d",
			p.Name, p.NumParams, len(params))
	}
	return nil
}

// relSnap records the identity and staleness pair of one relation a
// cached plan was built against. The pointer is weak — the cache must not
// keep replaced relations alive — and identity is checked against a fresh
// catalog lookup, so a same-name re-registration invalidates even if the
// new relation happens to match the old (length, Version) pair.
type relSnap struct {
	name    string
	rel     weak.Pointer[tp.Relation]
	length  int
	version uint64
}

// Entry is one cached plan: the memoized strategy estimate of the
// statement's TP join (nil when it plans none) plus the snapshots of
// every relation the plan referenced. Entries are immutable once
// published.
type Entry struct {
	est  *Estimate
	rels []relSnap
}

// snapshot appends rel's snapshot to the entry under its catalog name.
func (e *Entry) snapshot(name string, rel *tp.Relation) {
	e.rels = append(e.rels, relSnap{
		name: name, rel: weak.Make(rel), length: rel.Len(), version: rel.Version(),
	})
}

// valid reports whether every referenced relation is still the one the
// plan was built against, at the same (length, Version).
func (e *Entry) valid(cat *catalog.Catalog) bool {
	for _, sn := range e.rels {
		cur, err := cat.Lookup(sn.name)
		if err != nil || cur != sn.rel.Value() ||
			cur.Len() != sn.length || cur.Version() != sn.version {
			return false
		}
	}
	return true
}

// Cache is the shared plan cache: a bounded LRU from (normalized
// statement text, plan-relevant session settings) to memoized planning
// results, validated per hit against the referenced relations' current
// catalog state. Safe for concurrent use; tpserverd attaches one Cache to
// every session, the REPL keeps a process-local one.
type Cache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *cacheItem
	items map[string]*list.Element

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type cacheItem struct {
	key   string
	entry *Entry
}

// NewCache returns a plan cache holding up to capacity entries
// (DefaultCacheSize when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{cap: capacity, lru: list.New(), items: make(map[string]*list.Element)}
}

// cacheKey composes the lookup key: the normalized statement text plus
// every session setting that changes the plan shape — forced strategy,
// the TA plan form, the worker count the estimates were priced for, and
// the calibration identity. Parameter values are deliberately absent:
// they bind per EXECUTE and do not move the strategy pick. MemBudget is
// absent too — it gates execution, not planning.
func cacheKey(text string, sess *Session) string {
	return fmt.Sprintf("%s\x00strategy=%s nl=%t workers=%d calib=%p",
		text, sess.Strategy, sess.TANestedLoop, sess.Workers, sess.Calib)
}

// get returns the entry under key if present and still valid. An entry
// whose referenced relations changed is removed and counted as an
// invalidation (plus the miss the caller experiences).
func (c *Cache) get(key string, cat *catalog.Catalog) (*Entry, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var e *Entry
	if ok {
		c.lru.MoveToFront(el)
		e = el.Value.(*cacheItem).entry
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	// Validate outside the cache lock — catalog lookups take their own.
	if !e.valid(cat) {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.lru.Remove(el)
			delete(c.items, key)
		}
		c.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e, true
}

// put publishes an entry, evicting the least recently used one beyond
// capacity.
func (c *Cache) put(key string, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).entry = e
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&cacheItem{key: key, entry: e})
	if c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.items, back.Value.(*cacheItem).key)
		c.evictions.Add(1)
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is a point-in-time copy of the cache counters, exposed as
// the tpserverd_plan_cache_* metric families.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Entries       int
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
	}
}

// PlanPrepared compiles a prepared statement with params bound,
// consulting cache (nil disables caching — every EXECUTE then plans
// fresh). It reports whether the plan came from the cache: a hit skips
// statistics profiling and cost-model estimation entirely and re-binds
// only the cheap operator construction; parse was already skipped by
// PREPARE.
func PlanPrepared(cache *Cache, cat *catalog.Catalog, sess *Session, p *Prepared, params []sql.Literal) (op engine.Operator, cached bool, err error) {
	if err := p.bindCheck(params); err != nil {
		return nil, false, err
	}
	if cache == nil {
		op, _, err := build(p.Query, cat, sess, params, nil)
		return op, false, err
	}
	key := cacheKey(p.Text, sess)
	if e, ok := cache.get(key, cat); ok {
		op, _, err := build(p.Query, cat, sess, params, e)
		return op, true, err
	}
	op, e, err := build(p.Query, cat, sess, params, nil)
	if err != nil {
		return nil, false, err
	}
	cache.put(key, e)
	return op, false, nil
}
