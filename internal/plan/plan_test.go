package plan

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tpjoin/internal/catalog"
	"tpjoin/internal/engine"
	"tpjoin/internal/interval"
	"tpjoin/internal/sql"
	"tpjoin/internal/tp"
)

func demoCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	c := catalog.New()
	if err := c.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b); err != nil {
		t.Fatal(err)
	}
	return c
}

func mustRun(t *testing.T, src string, sess *Session, cat *catalog.Catalog) *tp.Relation {
	t.Helper()
	st, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	op, err := Build(st.(*sql.Select), cat, sess)
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	out, err := engine.Run(op, "q")
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return out
}

func TestPaperQueryViaSQL(t *testing.T) {
	cat := demoCatalog(t)
	sess := &Session{}
	out := mustRun(t, "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc", sess, cat)
	if out.Len() != 7 {
		t.Fatalf("Fig. 1b query returned %d tuples, want 7:\n%v", out.Len(), out)
	}
	// TA strategy must agree point-wise.
	sess.Strategy = StrategyTA
	outTA := mustRun(t, "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc", sess, cat)
	pm1, err := tp.Expand(out)
	if err != nil {
		t.Fatal(err)
	}
	pm2, err := tp.Expand(outTA)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm1.EqualProb(pm2, 1e-9); err != nil {
		t.Errorf("NJ and TA via SQL disagree: %v", err)
	}
}

func TestPNJViaSQL(t *testing.T) {
	cat := demoCatalog(t)
	nj := mustRun(t, "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc", &Session{}, cat)
	sess := &Session{Strategy: StrategyPNJ, Workers: 2}
	pnj := mustRun(t, "SELECT * FROM a TP LEFT OUTER JOIN b ON a.Loc = b.Loc", sess, cat)
	if pnj.Len() != nj.Len() {
		t.Fatalf("PNJ returned %d tuples, NJ %d", pnj.Len(), nj.Len())
	}
	pm1, err := tp.Expand(nj)
	if err != nil {
		t.Fatal(err)
	}
	pm2, err := tp.Expand(pnj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm1.EqualProb(pm2, 1e-9); err != nil {
		t.Errorf("NJ and PNJ via SQL disagree: %v", err)
	}
}

func TestExplainPNJShowsWorkers(t *testing.T) {
	cat := demoCatalog(t)
	st, err := sql.Parse("EXPLAIN SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if err != nil {
		t.Fatal(err)
	}
	ex := st.(*sql.Explain)
	out, err := Explain(ex.Query, cat, &Session{Strategy: StrategyPNJ, Workers: 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy=PNJ workers=3") {
		t.Errorf("EXPLAIN missing PNJ worker annotation:\n%s", out)
	}
	out, err = Explain(ex.Query, cat, &Session{Strategy: StrategyPNJ}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy=PNJ workers=auto") {
		t.Errorf("EXPLAIN missing auto worker annotation:\n%s", out)
	}
}

func TestSwappedOnOrientation(t *testing.T) {
	cat := demoCatalog(t)
	out := mustRun(t, "SELECT * FROM a TP LEFT JOIN b ON b.Loc = a.Loc", &Session{}, cat)
	if out.Len() != 7 {
		t.Errorf("swapped ON orientation must work, got %d tuples", out.Len())
	}
}

func TestWhereAndProjection(t *testing.T) {
	cat := demoCatalog(t)
	out := mustRun(t, "SELECT Name FROM a WHERE Loc = 'ZAK'", &Session{}, cat)
	if out.Len() != 1 || out.Tuples[0].Fact.String() != "Ann" {
		t.Errorf("filtered projection wrong: %v", out)
	}
	out = mustRun(t,
		"SELECT Name, Hotel FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Hotel IS NULL", &Session{}, cat)
	for _, tu := range out.Tuples {
		if !tu.Fact[1].IsNull() {
			t.Errorf("IS NULL filter leaked %v", tu.Fact)
		}
	}
	if out.Len() != 5 {
		t.Errorf("IS NULL rows = %d, want 5", out.Len())
	}
	out = mustRun(t,
		"SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc LIMIT 2", &Session{}, cat)
	if out.Len() != 2 || len(out.Attrs) != 2 {
		t.Errorf("anti join via SQL wrong: %v", out)
	}
}

func TestNumericComparisons(t *testing.T) {
	cat := catalog.New()
	r := tp.NewRelation("nums", "V")
	r.Append(tp.Fact{tp.String_("5")}, interval.New(0, 1), 0.5)
	if err := cat.Register(r); err != nil {
		t.Fatal(err)
	}
	out := mustRun(t, "SELECT * FROM nums WHERE V >= '3'", &Session{}, cat)
	if out.Len() != 1 {
		t.Errorf("string comparison wrong")
	}
	out = mustRun(t, "SELECT * FROM nums WHERE V <> '5'", &Session{}, cat)
	if out.Len() != 0 {
		t.Errorf("<> wrong")
	}
}

func TestBuildErrors(t *testing.T) {
	cat := demoCatalog(t)
	sess := &Session{}
	bad := []string{
		"SELECT * FROM nope",
		"SELECT * FROM a TP JOIN nope ON a.Loc = nope.Loc",
		"SELECT Missing FROM a",
		"SELECT * FROM a WHERE Missing = 1",
		"SELECT * FROM a TP JOIN b ON a.Name = a.Loc",  // both sides left
		"SELECT Loc FROM a TP JOIN b ON a.Loc = b.Loc", // ambiguous Loc
	}
	for _, src := range bad {
		st, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(st.(*sql.Select), cat, sess); err == nil {
			t.Errorf("Build(%q) must fail", src)
		}
	}
}

func TestAliasResolution(t *testing.T) {
	cat := demoCatalog(t)
	out := mustRun(t,
		"SELECT x.Name FROM a AS x TP LEFT JOIN b AS y ON x.Loc = y.Loc WHERE y.Hotel IS NOT NULL",
		&Session{}, cat)
	if out.Len() != 2 {
		t.Errorf("alias query rows = %d, want 2 (the two pairings)", out.Len())
	}
}

func TestApplySet(t *testing.T) {
	var s Session
	if s.Strategy != StrategyAuto {
		t.Errorf("zero-value session strategy = %v, want auto (the default)", s.Strategy)
	}
	if err := s.ApplySet(&sql.Set{Name: "strategy", Value: "ta"}); err != nil || s.Strategy != StrategyTA {
		t.Errorf("SET strategy=ta failed: %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "strategy", Value: "nj"}); err != nil || s.Strategy != StrategyNJ {
		t.Errorf("SET strategy=nj failed: %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "strategy", Value: "pnj"}); err != nil || s.Strategy != StrategyPNJ {
		t.Errorf("SET strategy=pnj failed: %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "strategy", Value: "pta"}); err != nil || s.Strategy != StrategyPTA {
		t.Errorf("SET strategy=pta failed: %v", err)
	}
	// Case-insensitive names and values, and the auto round-trip.
	if err := s.ApplySet(&sql.Set{Name: "Strategy", Value: "AUTO"}); err != nil || s.Strategy != StrategyAuto {
		t.Errorf("SET Strategy=AUTO failed: %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "STRATEGY", Value: "Pnj"}); err != nil || s.Strategy != StrategyPNJ {
		t.Errorf("SET STRATEGY=Pnj failed: %v", err)
	}
	// Keyword values (the lexer upper-cases keywords) and unknown
	// names/values must produce errors that list the accepted
	// alternatives, not confusing downstream failures.
	if err := s.ApplySet(&sql.Set{Name: "strategy", Value: "SELECT"}); err == nil ||
		!strings.Contains(err.Error(), "want auto, nj, ta, pnj or pta") {
		t.Errorf("SET strategy=select error must list alternatives, got %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "strateg", Value: "nj"}); err == nil ||
		!strings.Contains(err.Error(), "want strategy, join_workers, ta_nested_loop, calibration or memory_budget") {
		t.Errorf("unknown setting error must list setting names, got %v", err)
	}
	// memory_budget: plain bytes, binary suffixes, off, default — and the
	// resolution against a surface default.
	if err := s.ApplySet(&sql.Set{Name: "memory_budget", Value: "65536"}); err != nil || s.MemBudget != 65536 {
		t.Errorf("SET memory_budget=65536: %v (budget %d)", err, s.MemBudget)
	}
	if err := s.ApplySet(&sql.Set{Name: "MEMORY_BUDGET", Value: "64MB"}); err != nil || s.MemBudget != 64<<20 {
		t.Errorf("SET memory_budget=64MB: %v (budget %d)", err, s.MemBudget)
	}
	if s.EffectiveMemBudget(1<<30) != 64<<20 {
		t.Errorf("a set budget must override the surface default")
	}
	if err := s.ApplySet(&sql.Set{Name: "memory_budget", Value: "off"}); err != nil || s.MemBudget != -1 {
		t.Errorf("SET memory_budget=off: %v (budget %d)", err, s.MemBudget)
	}
	if s.EffectiveMemBudget(1<<30) != 0 {
		t.Errorf("memory_budget=off must defeat the surface default")
	}
	if err := s.ApplySet(&sql.Set{Name: "memory_budget", Value: "default"}); err != nil || s.MemBudget != 0 {
		t.Errorf("SET memory_budget=default: %v (budget %d)", err, s.MemBudget)
	}
	if s.EffectiveMemBudget(1<<30) != 1<<30 {
		t.Errorf("an unset budget must inherit the surface default")
	}
	for _, bad := range []string{"0", "-5", "nope", "12tb"} {
		if err := s.ApplySet(&sql.Set{Name: "memory_budget", Value: bad}); err == nil ||
			!strings.Contains(err.Error(), "memory_budget wants") {
			t.Errorf("SET memory_budget=%s must error with the accepted forms, got %v", bad, err)
		}
	}
	if err := s.ApplySet(&sql.Set{Name: "ta_nested_loop", Value: "on"}); err != nil || !s.TANestedLoop {
		t.Errorf("SET ta_nested_loop failed: %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "join_workers", Value: "4"}); err != nil || s.Workers != 4 {
		t.Errorf("SET join_workers=4 failed: %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "join_workers", Value: "0"}); err != nil || s.Workers != 0 {
		t.Errorf("SET join_workers=0 (auto) failed: %v", err)
	}
	if err := s.ApplySet(&sql.Set{Name: "join_workers", Value: "-1"}); err == nil {
		t.Errorf("negative join_workers must error")
	}
	if err := s.ApplySet(&sql.Set{Name: "join_workers", Value: "lots"}); err == nil {
		t.Errorf("non-numeric join_workers must error")
	}
	if err := s.ApplySet(&sql.Set{Name: "join_workers", Value: "1000000000"}); err == nil {
		t.Errorf("join_workers beyond MaxJoinWorkers must error (shared-server protection)")
	}
	if err := s.ApplySet(&sql.Set{Name: "strategy", Value: "bogus"}); err == nil {
		t.Errorf("bad strategy must error")
	}
	if err := s.ApplySet(&sql.Set{Name: "bogus", Value: "x"}); err == nil {
		t.Errorf("unknown setting must error")
	}
	if err := s.ApplySet(&sql.Set{Name: "ta_nested_loop", Value: "maybe"}); err == nil {
		t.Errorf("bad boolean must error")
	}
	if err := s.ApplySet(&sql.Set{Name: "calibration", Value: "/no/such/file.json"}); err == nil {
		t.Errorf("missing calibration file must error")
	}
	if s.Calib != nil {
		t.Errorf("failed calibration load must not change the session")
	}
}

// TestApplySetCalibration round-trips a calibration file through SET:
// loading installs it, "default" restores the embedded one.
func TestApplySetCalibration(t *testing.T) {
	cal := *DefaultCalibration()
	cal.TATuple = 12345
	data, err := cal.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var s Session
	if err := s.ApplySet(&sql.Set{Name: "calibration", Value: path}); err != nil {
		t.Fatalf("SET calibration = %q: %v", path, err)
	}
	if s.Calib == nil || s.Calib.TATuple != 12345 {
		t.Fatalf("loaded calibration not installed: %+v", s.Calib)
	}
	if err := s.ApplySet(&sql.Set{Name: "calibration", Value: "DEFAULT"}); err != nil || s.Calib != nil {
		t.Fatalf("SET calibration = default must restore the embedded calibration: %v (%+v)", err, s.Calib)
	}
	// A file with a typo'd field is rejected, not silently zero-filled.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nj_tuple_nanos": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplySet(&sql.Set{Name: "calibration", Value: bad}); err == nil {
		t.Error("invalid calibration file must error")
	}
}

func TestExplain(t *testing.T) {
	cat := demoCatalog(t)
	st, err := sql.Parse("EXPLAIN SELECT Name FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Hotel IS NULL LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	ex := st.(*sql.Explain)
	out, err := Explain(ex.Query, cat, &Session{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Limit", "Project", "Filter", "TPJoin [left-outer] strategy=NJ", "Scan a", "Scan b"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	// ANALYZE includes row counts.
	out, err = Explain(ex.Query, cat, &Session{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows=") {
		t.Errorf("EXPLAIN ANALYZE missing rows:\n%s", out)
	}
}

func TestPseudoColumns(t *testing.T) {
	cat := demoCatalog(t)
	// Probability filter: Fig. 1b rows with p >= 0.4.
	out := mustRun(t,
		"SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE P >= 0.4", &Session{}, cat)
	if out.Len() != 4 {
		t.Errorf("P >= 0.4 rows = %d, want 4 (0.70, 0.49, 0.42, 0.80):\n%v", out.Len(), out)
	}
	for _, tu := range out.Tuples {
		if tu.Prob < 0.4 {
			t.Errorf("probability filter leaked %v", tu)
		}
	}
	// Temporal filter on start point.
	out = mustRun(t, "SELECT * FROM a WHERE Tstart >= 7", &Session{}, cat)
	if out.Len() != 1 || out.Tuples[0].Fact[0].AsString() != "Jim" {
		t.Errorf("Tstart filter wrong: %v", out)
	}
	out = mustRun(t, "SELECT * FROM b WHERE Tend <= 4", &Session{}, cat)
	if out.Len() != 1 || out.Tuples[0].Fact[0].AsString() != "hotel3" {
		t.Errorf("Tend filter wrong: %v", out)
	}
}

func TestPseudoColumnErrors(t *testing.T) {
	cat := demoCatalog(t)
	for _, src := range []string{
		"SELECT * FROM a WHERE P = 'high'", // string literal
		"SELECT * FROM a WHERE P IS NULL",  // NULL check
		"SELECT * FROM a WHERE a.P = 0.5",  // qualified: not a pseudo-col
	} {
		st, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(st.(*sql.Select), cat, &Session{}); err == nil {
			t.Errorf("Build(%q) must fail", src)
		}
	}
}

func TestFactColumnShadowsPseudo(t *testing.T) {
	// A real attribute named P wins over the pseudo-column.
	c := catalog.New()
	r := tp.NewRelation("odd", "P")
	r.Append(tp.Strings("boom"), interval.New(0, 1), 0.5)
	if err := c.Register(r); err != nil {
		t.Fatal(err)
	}
	out := mustRun(t, "SELECT * FROM odd WHERE P = 'boom'", &Session{}, c)
	if out.Len() != 1 {
		t.Errorf("fact attribute P must shadow the pseudo-column")
	}
}

func TestSetOpsViaSQL(t *testing.T) {
	cat := catalog.New()
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("x"), interval.New(0, 6), 0.8)
	s := tp.NewRelation("s", "K")
	s.Append(tp.Strings("x"), interval.New(3, 9), 0.4)
	if err := cat.Register(r); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(s); err != nil {
		t.Fatal(err)
	}
	out := mustRun(t, "SELECT * FROM r TP UNION s", &Session{}, cat)
	if out.Len() != 3 {
		t.Errorf("union rows = %d, want 3 ([0,3) [3,6) [6,9)):\n%v", out.Len(), out)
	}
	out = mustRun(t, "SELECT * FROM r TP INTERSECT s", &Session{}, cat)
	if out.Len() != 1 || !out.Tuples[0].T.Equal(interval.New(3, 6)) {
		t.Errorf("intersect wrong:\n%v", out)
	}
	out = mustRun(t, "SELECT * FROM r TP EXCEPT s", &Session{}, cat)
	if out.Len() != 2 {
		t.Errorf("except rows = %d, want 2:\n%v", out.Len(), out)
	}
	// Incompatible arities must fail at build time.
	two := tp.NewRelation("two", "A", "B")
	if err := cat.Register(two); err != nil {
		t.Fatal(err)
	}
	st, err := sql.Parse("SELECT * FROM r TP UNION two")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(st.(*sql.Select), cat, &Session{}); err == nil {
		t.Errorf("union-incompatible relations must fail")
	}
}

func TestDistinctViaSQL(t *testing.T) {
	cat := demoCatalog(t)
	// DISTINCT Loc over b: ZAK availability merges hotel1/hotel2 with OR
	// lineage; at [5,6) the probability is 1-0.4·0.3 = 0.88.
	out := mustRun(t, "SELECT DISTINCT Loc FROM b", &Session{}, cat)
	found := false
	for _, tu := range out.Tuples {
		if tu.Fact.String() == "ZAK" && tu.T.Equal(interval.New(5, 6)) {
			found = true
			if tu.Prob < 0.8799 || tu.Prob > 0.8801 {
				t.Errorf("merged ZAK prob = %g, want 0.88", tu.Prob)
			}
		}
	}
	if !found {
		t.Errorf("DISTINCT missing merged ZAK row:\n%v", out)
	}
	// DISTINCT * passes all columns through the lineage projection.
	out = mustRun(t, "SELECT DISTINCT * FROM a", &Session{}, cat)
	if out.Len() != 2 {
		t.Errorf("DISTINCT * over a must keep 2 rows, got %d", out.Len())
	}
	// EXPLAIN shows the distinct node.
	st, _ := sql.Parse("EXPLAIN SELECT DISTINCT Loc FROM b")
	txt, err := Explain(st.(*sql.Explain).Query, cat, &Session{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "LineageDistinct (Loc)") {
		t.Errorf("EXPLAIN missing LineageDistinct:\n%s", txt)
	}
}

func TestOrderByViaSQL(t *testing.T) {
	cat := demoCatalog(t)
	out := mustRun(t, "SELECT * FROM b ORDER BY Hotel", &Session{}, cat)
	hotels := []string{"hotel1", "hotel2", "hotel3"}
	for i, tu := range out.Tuples {
		if tu.Fact[0].AsString() != hotels[i] {
			t.Fatalf("ORDER BY Hotel wrong at %d: %v", i, out)
		}
	}
	out = mustRun(t, "SELECT * FROM b ORDER BY P DESC", &Session{}, cat)
	if out.Tuples[0].Prob != 0.9 || out.Tuples[2].Prob != 0.6 {
		t.Errorf("ORDER BY P DESC wrong: %v", out)
	}
	out = mustRun(t, "SELECT * FROM b ORDER BY Tstart", &Session{}, cat)
	if !out.Tuples[0].T.Equal(interval.New(1, 4)) {
		t.Errorf("ORDER BY Tstart wrong: %v", out)
	}
	// Composite key with LIMIT: top-2 most probable rows of the join.
	out = mustRun(t,
		"SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc ORDER BY P DESC, Name LIMIT 2",
		&Session{}, cat)
	if out.Len() != 2 || out.Tuples[0].Prob != 0.8 || out.Tuples[1].Prob != 0.7 {
		t.Errorf("top-2 wrong: %v", out)
	}
	// Unknown column errors.
	st, _ := sql.Parse("SELECT * FROM b ORDER BY Nope")
	if _, err := Build(st.(*sql.Select), cat, &Session{}); err == nil {
		t.Errorf("unknown ORDER BY column must fail")
	}
}

// TestExplainAnalyzeStructured pins the structured ANALYZE tree: rows and
// wall time per node, strategy stage counters on the join, and their text
// rendering.
func TestExplainAnalyzeStructured(t *testing.T) {
	cat := demoCatalog(t)
	st, err := sql.Parse("EXPLAIN ANALYZE SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ExplainTree(context.Background(), st.(*sql.Explain).Query, cat, &Session{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Analyze || tree.Root == nil {
		t.Fatalf("malformed tree: %+v", tree)
	}
	if tree.Root.Rows != 7 {
		t.Errorf("root rows = %d, want 7 (Fig. 1b left outer join)", tree.Root.Rows)
	}
	if len(tree.Root.Stages) != 5 {
		t.Errorf("NJ join stages = %v, want overlap/lawau/lawan + prob-batches/memo-hits", tree.Root.Stages)
	}
	if n := len(tree.Root.Stages); n >= 2 {
		if got := tree.Root.Stages[n-2].Name; got != "prob-batches" {
			t.Errorf("stage[%d] = %q, want prob-batches", n-2, got)
		}
		// 7 output rows fit in one probability batch.
		if got := tree.Root.Stages[n-2].Count; got != 1 {
			t.Errorf("prob-batches = %d, want 1", got)
		}
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("join children = %d, want 2 scans", len(tree.Root.Children))
	}
	// Scan inputs of a join are borrowed zero-copy (never pulled), in
	// instrumented and plain execution alike; rows=0 pins that ANALYZE
	// measures the real plan instead of draining copies of the inputs.
	if got := tree.Root.Children[0].Rows; got != 0 {
		t.Errorf("Scan a rows = %d, want 0 (zero-copy borrow)", got)
	}
	out := tree.Render()
	for _, want := range []string{"rows=7", "time=", "stage overlap: 3", "stage lawan: 7", "total: time="} {
		if !strings.Contains(out, want) {
			t.Errorf("ANALYZE rendering lacks %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeCancelledReportsAbort: a cancelled ANALYZE is not an
// error — the tree comes back with the abort reason, so the diagnostic
// shows where the time went before the deadline hit.
func TestExplainAnalyzeCancelledReportsAbort(t *testing.T) {
	cat := demoCatalog(t)
	st, err := sql.Parse("EXPLAIN ANALYZE SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree, err := ExplainTree(ctx, st.(*sql.Explain).Query, cat, &Session{}, true)
	if err != nil {
		t.Fatalf("cancelled ANALYZE must return the tree, got error %v", err)
	}
	if tree.Abort == "" {
		t.Fatal("tree.Abort empty on a cancelled run")
	}
	if out := tree.Render(); !strings.Contains(out, "aborted: context canceled") {
		t.Errorf("rendering lacks the abort trailer:\n%s", out)
	}
}
