package plan

// The planner's cost model for physical TP-join strategy selection
// (SET strategy = auto). The paper's central evaluation result is that no
// strategy dominates: the lineage-aware NJ pipeline wins on selective
// workloads with small per-key groups (Webkit), temporal alignment wins on
// non-selective workloads with large per-key groups (Meteo, by one to two
// orders of magnitude), and the partitioned-parallel executor amortizes NJ
// across workers when the key cardinality admits partitioning. The model
// reproduces that ordering from catalog statistics (internal/stats):
//
//   - NJ pays a per-tuple pipeline cost plus a window term that grows
//     with the per-key group size *squared*: the sweep materializes one
//     window per overlapping same-key pair (pairs ≈ n·λ, with λ the
//     partner side's per-key temporal concurrency) and maintains an
//     active set of ~λ tuples per window, so the term is ∝ n·λ².
//   - TA pays partitioning/sorting per input tuple plus alignment work
//     linear in the fragments it produces (each tuple splits at the
//     boundaries of overlapping same-key partners: fragments ≈ n·λ).
//   - PNJ is NJ with the window term amortized across join_workers
//     partitions when the key cardinality is at least the worker count
//     (a key's group is indivisible), with partitioning overhead per
//     tuple, a per-worker setup charge, and sublinear parallel
//     efficiency (skew, materialization, memory bandwidth).
//
// The constants are calibrated to the figure shapes tracked in
// BENCH_1.json (input-size scaling per panel) and to the paper's reported
// orderings across the two dataset profiles. NOTE: on this Go substrate
// the TA baseline's constant factors are measurably worse than the
// paper's PostgreSQL implementation (BENCH_1.json records NJ ahead on
// every measured panel), so the model deliberately prices TA at the
// paper's relative constants rather than this host's — see DESIGN.md
// §cost model for the rationale and the re-calibration procedure.

import (
	"fmt"
	"math"
	"runtime"

	"tpjoin/internal/engine"
	"tpjoin/internal/stats"
	"tpjoin/internal/tp"
)

// The calibration constants, in model nanoseconds. Re-calibrate after
// perf PRs per DESIGN.md §cost model.
const (
	costNJTuple  = 150  // NJ pipeline cost per input tuple
	costNJWindow = 800  // NJ cost per window, scaled by the active-set size
	costTATuple  = 1000 // TA partition+sort cost per input tuple
	costTAFrag   = 400  // TA alignment cost per fragment
	costTANLPair = 40   // TA nested-loop cost per tuple pair (ta_nested_loop;
	// BENCH_1.json Fig. 7a measured ≈39ns/pair on the seed substrate)
	costPNJTuple  = 80    // PNJ partitioning cost per input tuple
	costPNJSetup  = 75000 // PNJ per-worker setup (goroutines, partition buffers)
	pnjEfficiency = 0.5   // marginal speedup per extra PNJ worker
	pnjMaxSpeedup = 5     // parallel-speedup ceiling (skew, materialization)
)

// Estimate is the cost model's verdict on one TP join: the estimated cost
// per physical strategy (model nanoseconds, indexed by engine.Strategy)
// and the cheapest choice.
type Estimate struct {
	Chosen engine.Strategy
	Costs  [engine.NumStrategies]float64
	// Inputs holds one human-readable summary line per join input with
	// the statistics the model consumed; EXPLAIN prints them.
	Inputs []string
}

// EstimateJoin scores the physical strategies for a join of the two
// relations summarized by ls and rs under theta. workers is the session's
// join_workers setting (0 = one per CPU); taNestedLoop prices the TA
// baseline's nested-loop plan instead of its hash plan. Non-equi
// conditions (unreachable from the SQL dialect, which only builds ON
// equalities) are treated as a single all-matching key and exclude PNJ.
func EstimateJoin(lname string, ls *stats.Stats, rname string, rs *stats.Stats, theta tp.Theta, workers int, taNestedLoop bool) Estimate {
	nl, nr := float64(ls.Tuples), float64(rs.Tuples)
	var lk, rk stats.KeyInfo
	equi := false
	if eq, ok := theta.(tp.EquiTheta); ok {
		lk, rk = ls.Key(eq.RCols), rs.Key(eq.SCols)
		equi = true
	} else {
		lk, rk = ls.Key(nil), rs.Key(nil)
	}

	// Overlapping same-key pairs, counted from both sides: each tuple
	// meets the partner side's per-key concurrency. This is the shared
	// driver of NJ windows and TA fragments.
	pairs := nl*rk.Concurrency + nr*lk.Concurrency
	// NJ's active set per window; never below one tuple.
	active := math.Max(1, (lk.Concurrency+rk.Concurrency)/2)

	var e Estimate
	e.Costs[engine.StrategyNJ] = costNJTuple*(nl+nr) + costNJWindow*pairs*active

	if taNestedLoop {
		e.Costs[engine.StrategyTA] = costTATuple*(nl+nr) + costTANLPair*nl*nr
	} else {
		e.Costs[engine.StrategyTA] = costTATuple*(nl+nr) + costTAFrag*pairs
	}

	if equi {
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > MaxJoinWorkers {
			w = MaxJoinWorkers
		}
		// A key's group is indivisible across partitions, so parallelism
		// is bounded by the matched-key cardinality.
		if m := min(lk.Distinct, rk.Distinct); w > m {
			w = m
		}
		if w < 1 {
			w = 1
		}
		speedup := math.Min(pnjMaxSpeedup, 1+float64(w-1)*pnjEfficiency)
		e.Costs[engine.StrategyPNJ] = (costNJTuple+costPNJTuple)*(nl+nr) +
			costNJWindow*pairs*active/speedup + costPNJSetup*float64(w)
	} else {
		e.Costs[engine.StrategyPNJ] = math.Inf(1)
	}

	e.Chosen = engine.StrategyNJ
	for s := engine.Strategy(0); s < engine.NumStrategies; s++ {
		if e.Costs[s] < e.Costs[e.Chosen] {
			e.Chosen = s
		}
	}
	e.Inputs = []string{
		inputSummary(lname, ls, lk),
		inputSummary(rname, rs, rk),
	}
	return e
}

func inputSummary(name string, s *stats.Stats, k stats.KeyInfo) string {
	return fmt.Sprintf("%s: %d tuples, %d join keys, group mean %.1f max %d, concurrency %.2f",
		name, s.Tuples, k.Distinct, k.MeanGroup, k.MaxGroup, k.Concurrency)
}

// autoPickRecord converts an Estimate into the engine-side record EXPLAIN
// renders.
func (e Estimate) autoPickRecord(auto bool) *engine.AutoPick {
	return &engine.AutoPick{Auto: auto, Costs: e.Costs, Inputs: e.Inputs}
}
