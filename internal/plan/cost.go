package plan

// The planner's cost model for physical TP-join strategy selection
// (SET strategy = auto). The paper's central evaluation result is that no
// strategy dominates: the lineage-aware NJ pipeline wins on selective
// workloads with small per-key groups (Webkit), temporal alignment wins
// on non-selective workloads with large per-key groups (Meteo), and the
// partitioned-parallel executors amortize either across workers when the
// key cardinality admits partitioning. The model reproduces that ordering
// from catalog statistics (internal/stats):
//
//   - NJ pays a per-tuple pipeline cost plus a window term that grows
//     with the per-key group size *squared*: the sweep materializes one
//     window per overlapping same-key pair (pairs ≈ n·λ, with λ the
//     partner side's per-key temporal concurrency) and maintains an
//     active set of ~λ tuples per window, so the term is ∝ n·λ².
//   - TA pays key grouping and event-list construction per input tuple
//     plus alignment work linear in the fragments and pairings it
//     produces (≈ pairs) — linear, not quadratic, in λ, which is why
//     alignment takes over as the per-key concurrency grows.
//   - PNJ and PTA amortize the respective pair term across join_workers
//     partitions when the key cardinality is at least the worker count
//     (a key's group is indivisible), with partitioning overhead per
//     tuple, a per-worker setup charge, and sublinear parallel
//     efficiency (skew, materialization, memory bandwidth).
//
// The constants are *measured*, not assumed: plan.Calibration carries the
// per-primitive costs fitted by `tpbench -calibrate` on a real host (the
// checked-in calibration.json by default, a session override via
// SET calibration = '<file>'). Since the alignment baseline was rebuilt
// on the batched execution core, its measured constants stand on their
// own — the model no longer needs the paper's relative constants to
// reproduce the paper's workload dichotomy (DESIGN.md §Cost model).

import (
	"fmt"
	"math"
	"runtime"

	"tpjoin/internal/engine"
	"tpjoin/internal/stats"
	"tpjoin/internal/tp"
)

// Estimate is the cost model's verdict on one TP join: the estimated cost
// per physical strategy (model nanoseconds, indexed by engine.Strategy)
// and the cheapest choice.
type Estimate struct {
	Chosen engine.Strategy
	Costs  [engine.NumStrategies]float64
	// Inputs holds one human-readable summary line per join input with
	// the statistics the model consumed; EXPLAIN prints them.
	Inputs []string
}

// JoinShape derives the two workload terms every strategy's cost is built
// from: pairs, the expected number of overlapping same-key tuple pairs
// (counted from both sides — each tuple meets the partner side's per-key
// temporal concurrency), and active, NJ's mean active-set size per window
// (never below one tuple). The calibrator fits its constants through this
// same function, so fitted constants and estimates share one unit system.
func JoinShape(ls, rs *stats.Stats, theta tp.Theta) (pairs, active float64) {
	lk, rk := keyInfos(ls, rs, theta)
	nl, nr := float64(ls.Tuples), float64(rs.Tuples)
	pairs = nl*rk.Concurrency + nr*lk.Concurrency
	active = math.Max(1, (lk.Concurrency+rk.Concurrency)/2)
	return pairs, active
}

func keyInfos(ls, rs *stats.Stats, theta tp.Theta) (lk, rk stats.KeyInfo) {
	if eq, ok := theta.(tp.EquiTheta); ok {
		return ls.Key(eq.RCols), rs.Key(eq.SCols)
	}
	// Non-equi conditions (unreachable from the SQL dialect, which only
	// builds ON equalities) are treated as a single all-matching key.
	return ls.Key(nil), rs.Key(nil)
}

// EstimateJoin scores the physical strategies for a join of the two
// relations summarized by ls and rs under theta, priced by cal (nil means
// the checked-in default calibration). workers is the session's
// join_workers setting (0 = one per CPU); taNestedLoop prices the TA
// baseline's nested-loop plan instead of its hash plan. Non-equi
// conditions exclude the partitioned strategies (PNJ, PTA).
func EstimateJoin(lname string, ls *stats.Stats, rname string, rs *stats.Stats, theta tp.Theta, workers int, taNestedLoop bool, cal *Calibration) Estimate {
	if cal == nil {
		cal = DefaultCalibration()
	}
	nl, nr := float64(ls.Tuples), float64(rs.Tuples)
	lk, rk := keyInfos(ls, rs, theta)
	_, equi := theta.(tp.EquiTheta)
	pairs, active := JoinShape(ls, rs, theta)

	var e Estimate
	e.Costs[engine.StrategyNJ] = cal.NJTuple*(nl+nr) + cal.NJWindow*pairs*active

	// The TA pair term: alignment work linear in the overlapping same-key
	// pairs under the hash plan, the full cross product under the forced
	// nested-loop plan (Fig. 7a's shape).
	taPairTerm := cal.TAFrag * pairs
	if taNestedLoop {
		taPairTerm = cal.TANLPair * nl * nr
	}
	e.Costs[engine.StrategyTA] = cal.TATuple*(nl+nr) + taPairTerm

	if equi {
		// A key's group is indivisible across partitions, so parallelism
		// is bounded by the matched-key cardinality.
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > MaxJoinWorkers {
			w = MaxJoinWorkers
		}
		if m := min(lk.Distinct, rk.Distinct); w > m {
			w = m
		}
		if w < 1 {
			w = 1
		}
		speedup := math.Min(cal.ParMaxSpeedup, 1+float64(w-1)*cal.ParEfficiency)
		par := cal.ParTuple*(nl+nr) + cal.ParSetup*float64(w)
		e.Costs[engine.StrategyPNJ] = cal.NJTuple*(nl+nr) + cal.NJWindow*pairs*active/speedup + par
		e.Costs[engine.StrategyPTA] = cal.TATuple*(nl+nr) + taPairTerm/speedup + par
	} else {
		e.Costs[engine.StrategyPNJ] = math.Inf(1)
		e.Costs[engine.StrategyPTA] = math.Inf(1)
	}

	e.Chosen = engine.StrategyNJ
	for s := engine.Strategy(0); s < engine.NumStrategies; s++ {
		if e.Costs[s] < e.Costs[e.Chosen] {
			e.Chosen = s
		}
	}
	e.Inputs = []string{
		inputSummary(lname, ls, lk),
		inputSummary(rname, rs, rk),
	}
	return e
}

func inputSummary(name string, s *stats.Stats, k stats.KeyInfo) string {
	return fmt.Sprintf("%s: %d tuples, %d join keys, group mean %.1f max %d, concurrency %.2f",
		name, s.Tuples, k.Distinct, k.MeanGroup, k.MaxGroup, k.Concurrency)
}

// autoPickRecord converts an Estimate into the engine-side record EXPLAIN
// renders.
func (e Estimate) autoPickRecord(auto bool) *engine.AutoPick {
	return &engine.AutoPick{Auto: auto, Costs: e.Costs, Inputs: e.Inputs}
}
