package plan

import (
	"context"
	"strings"
	"testing"

	"tpjoin/internal/catalog"
	"tpjoin/internal/dataset"
	"tpjoin/internal/engine"
	"tpjoin/internal/sql"
	"tpjoin/internal/stats"
)

// TestAutoPickerPaperOrdering pins the cost model's verdict on the two
// evaluation presets to the paper's Fig. 5/6 ordering: the lineage-aware
// NJ pipeline (or its partitioned-parallel PNJ variant) on Webkit's
// selective, small-group profile; temporal alignment on Meteo's
// non-selective, large-group profile. The pin holds across preset sizes,
// seeds and worker settings, so a host's CPU count cannot flip it.
func TestAutoPickerPaperOrdering(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		for _, n := range []int{10000, 20000} {
			for _, w := range []int{0, 1, 4, 16} {
				r, s := dataset.Webkit(n, seed)
				e := EstimateJoin(r.Name, stats.Compute(r), s.Name, stats.Compute(s),
					dataset.WebkitTheta(), w, false)
				if e.Chosen != engine.StrategyNJ && e.Chosen != engine.StrategyPNJ {
					t.Errorf("webkit n=%d seed=%d w=%d: picked %v, want NJ or PNJ (costs %v)",
						n, seed, w, e.Chosen, e.Costs)
				}

				r, s = dataset.Meteo(n, seed)
				e = EstimateJoin(r.Name, stats.Compute(r), s.Name, stats.Compute(s),
					dataset.MeteoTheta(), w, false)
				if e.Chosen != engine.StrategyTA {
					t.Errorf("meteo n=%d seed=%d w=%d: picked %v, want TA (costs %v)",
						n, seed, w, e.Chosen, e.Costs)
				}
			}
		}
	}
}

// TestEstimateShape pins the model's qualitative behavior rather than its
// constants: forcing the TA nested-loop plan makes TA quadratic (never
// the pick), and every returned cost is positive and finite for equi
// joins.
func TestEstimateShape(t *testing.T) {
	r, s := dataset.Meteo(10000, 1)
	rs, ss := stats.Compute(r), stats.Compute(s)
	nl := EstimateJoin(r.Name, rs, s.Name, ss, dataset.MeteoTheta(), 0, true)
	if nl.Chosen == engine.StrategyTA {
		t.Errorf("ta_nested_loop=on must price TA out, picked %v (costs %v)", nl.Chosen, nl.Costs)
	}
	hash := EstimateJoin(r.Name, rs, s.Name, ss, dataset.MeteoTheta(), 0, false)
	for st, c := range hash.Costs {
		if !(c > 0) {
			t.Errorf("cost[%v] = %v, want positive finite", engine.Strategy(st), c)
		}
	}
	if nl.Costs[engine.StrategyTA] <= hash.Costs[engine.StrategyTA] {
		t.Errorf("nested-loop TA (%g) must cost more than hash TA (%g)",
			nl.Costs[engine.StrategyTA], hash.Costs[engine.StrategyTA])
	}
	if len(hash.Inputs) != 2 || !strings.Contains(hash.Inputs[0], "join keys") {
		t.Errorf("input summaries malformed: %q", hash.Inputs)
	}
}

// TestAutoEndToEnd drives the picker through the full planning surface:
// SET strategy = auto (the default session) routes the Meteo preset to TA
// and EXPLAIN reports the choice, the per-strategy cost estimates and the
// input statistics; a forced SET strategy overrides the picker but keeps
// the estimates visible; PlannedJoin exposes the decision for the
// server's metrics.
func TestAutoEndToEnd(t *testing.T) {
	r, s := dataset.Meteo(10000, 1)
	cat := catalog.New()
	if err := cat.Register(r); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(s); err != nil {
		t.Fatal(err)
	}
	st, err := sql.Parse("EXPLAIN SELECT * FROM r TP JOIN s ON r.Key = s.Key")
	if err != nil {
		t.Fatal(err)
	}
	sess := &Session{}
	tree, err := ExplainTree(context.Background(), st.(*sql.Explain).Query, cat, sess, false)
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render()
	for _, want := range []string{"strategy=TA (auto)", "cost: NJ=", " TA=", " PNJ=", "stats r:", "stats s:", "join keys"} {
		if !strings.Contains(out, want) {
			t.Errorf("auto EXPLAIN missing %q:\n%s", want, out)
		}
	}
	if strat, auto, ok := sess.PlannedJoin(); !ok || !auto || strat != engine.StrategyTA {
		t.Errorf("PlannedJoin = (%v, %v, %v), want (TA, true, true)", strat, auto, ok)
	}

	// Forcing overrides the pick but the estimates stay visible.
	sess.Strategy = StrategyNJ
	tree, err = ExplainTree(context.Background(), st.(*sql.Explain).Query, cat, sess, false)
	if err != nil {
		t.Fatal(err)
	}
	out = tree.Render()
	if !strings.Contains(out, "strategy=NJ") || strings.Contains(out, "(auto)") {
		t.Errorf("forced strategy must not be marked auto:\n%s", out)
	}
	if !strings.Contains(out, "cost: NJ=") {
		t.Errorf("forced EXPLAIN must still show the model estimates:\n%s", out)
	}
	if strat, auto, ok := sess.PlannedJoin(); !ok || auto || strat != engine.StrategyNJ {
		t.Errorf("forced PlannedJoin = (%v, %v, %v), want (NJ, false, true)", strat, auto, ok)
	}

	// A join-free statement clears the record.
	sel, err := sql.Parse("SELECT * FROM r LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(sel.(*sql.Select), cat, sess); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := sess.PlannedJoin(); ok {
		t.Error("join-free statement must clear PlannedJoin")
	}
}
