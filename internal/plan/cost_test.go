package plan

import (
	"context"
	"strings"
	"testing"

	"tpjoin/internal/catalog"
	"tpjoin/internal/dataset"
	"tpjoin/internal/engine"
	"tpjoin/internal/sql"
	"tpjoin/internal/stats"
)

// alignFamily reports whether the picker routed to the alignment
// baseline (sequential or partitioned-parallel).
func alignFamily(s engine.Strategy) bool {
	return s == engine.StrategyTA || s == engine.StrategyPTA
}

// njFamily reports whether the picker routed to the lineage-aware NJ
// pipeline (sequential or partitioned-parallel).
func njFamily(s engine.Strategy) bool {
	return s == engine.StrategyNJ || s == engine.StrategyPNJ
}

// TestAutoPickerPaperOrdering pins the cost model's verdict — under the
// checked-in measured calibration — to the paper's Fig. 5/7 ordering:
// the NJ pipeline (or its partitioned PNJ variant) on Webkit's
// selective, small-group profile at any worker setting; temporal
// alignment on Meteo's non-selective, large-group profile. The paper has
// no parallel baseline, so the Meteo pin comes in two parts: at
// sequential worker settings the pick must be the alignment family
// (TA or PTA), and at any worker setting the *sequential* dichotomy must
// hold (TA priced below NJ) and sequential NJ must never be the pick —
// with many workers the model may legitimately route Meteo to PNJ,
// because NJ's window term is the larger amortizable share (see
// DESIGN.md §Cost model). Worker counts are explicit (0 would resolve to
// the host's GOMAXPROCS and make the pin host-dependent).
func TestAutoPickerPaperOrdering(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		for _, n := range []int{10000, 20000} {
			for _, w := range []int{1, 4, 16} {
				r, s := dataset.Webkit(n, seed)
				e := EstimateJoin(r.Name, stats.Compute(r), s.Name, stats.Compute(s),
					dataset.WebkitTheta(), w, false, nil)
				if !njFamily(e.Chosen) {
					t.Errorf("webkit n=%d seed=%d w=%d: picked %v, want NJ or PNJ (costs %v)",
						n, seed, w, e.Chosen, e.Costs)
				}

				r, s = dataset.Meteo(n, seed)
				e = EstimateJoin(r.Name, stats.Compute(r), s.Name, stats.Compute(s),
					dataset.MeteoTheta(), w, false, nil)
				if e.Costs[engine.StrategyTA] >= e.Costs[engine.StrategyNJ] {
					t.Errorf("meteo n=%d seed=%d w=%d: sequential dichotomy lost: TA=%g ≥ NJ=%g",
						n, seed, w, e.Costs[engine.StrategyTA], e.Costs[engine.StrategyNJ])
				}
				if w == 1 && !alignFamily(e.Chosen) {
					t.Errorf("meteo n=%d seed=%d w=%d: picked %v, want TA or PTA (costs %v)",
						n, seed, w, e.Chosen, e.Costs)
				}
				if e.Chosen == engine.StrategyNJ {
					t.Errorf("meteo n=%d seed=%d w=%d: sequential NJ must never win Meteo (costs %v)",
						n, seed, w, e.Costs)
				}
			}
		}
	}
}

// TestEstimateShape pins the model's qualitative behavior rather than its
// constants: forcing the TA nested-loop plan prices the whole alignment
// family up (quadratic pair term, never the sequential-TA pick), and
// every returned cost is positive and finite for equi joins.
func TestEstimateShape(t *testing.T) {
	r, s := dataset.Meteo(10000, 1)
	rs, ss := stats.Compute(r), stats.Compute(s)
	nl := EstimateJoin(r.Name, rs, s.Name, ss, dataset.MeteoTheta(), 0, true, nil)
	if nl.Chosen == engine.StrategyTA {
		t.Errorf("ta_nested_loop=on must price sequential TA out, picked %v (costs %v)", nl.Chosen, nl.Costs)
	}
	hash := EstimateJoin(r.Name, rs, s.Name, ss, dataset.MeteoTheta(), 0, false, nil)
	for st, c := range hash.Costs {
		if !(c > 0) {
			t.Errorf("cost[%v] = %v, want positive finite", engine.Strategy(st), c)
		}
	}
	if nl.Costs[engine.StrategyTA] <= hash.Costs[engine.StrategyTA] {
		t.Errorf("nested-loop TA (%g) must cost more than hash TA (%g)",
			nl.Costs[engine.StrategyTA], hash.Costs[engine.StrategyTA])
	}
	if nl.Costs[engine.StrategyPTA] <= hash.Costs[engine.StrategyPTA] {
		t.Errorf("nested-loop PTA (%g) must cost more than hash PTA (%g)",
			nl.Costs[engine.StrategyPTA], hash.Costs[engine.StrategyPTA])
	}
	if len(hash.Inputs) != 2 || !strings.Contains(hash.Inputs[0], "join keys") {
		t.Errorf("input summaries malformed: %q", hash.Inputs)
	}
}

// TestEstimateUsesCalibration pins that the calibration actually prices
// the estimates: scaling one strategy's constants scales its cost and can
// flip the pick.
func TestEstimateUsesCalibration(t *testing.T) {
	// workers=1: the sequential regime, where the Meteo pick is pinned to
	// the alignment family.
	r, s := dataset.Meteo(10000, 1)
	rs, ss := stats.Compute(r), stats.Compute(s)
	base := EstimateJoin(r.Name, rs, s.Name, ss, dataset.MeteoTheta(), 1, false, nil)
	if !alignFamily(base.Chosen) {
		t.Fatalf("meteo baseline pick = %v, want alignment family", base.Chosen)
	}
	skewed := *DefaultCalibration()
	skewed.TATuple *= 1000
	skewed.TAFrag *= 1000
	e := EstimateJoin(r.Name, rs, s.Name, ss, dataset.MeteoTheta(), 1, false, &skewed)
	if e.Costs[engine.StrategyTA] <= base.Costs[engine.StrategyTA] {
		t.Errorf("inflated calibration did not inflate the TA estimate: %g vs %g",
			e.Costs[engine.StrategyTA], base.Costs[engine.StrategyTA])
	}
	if alignFamily(e.Chosen) {
		t.Errorf("with TA priced 1000× up the picker still chose %v (costs %v)", e.Chosen, e.Costs)
	}
}

// TestAutoEndToEnd drives the picker through the full planning surface:
// SET strategy = auto (the default session) routes the Meteo preset to
// the alignment family and EXPLAIN reports the choice, the per-strategy
// cost estimates and the input statistics; a forced SET strategy
// overrides the picker but keeps the estimates visible; PlannedJoin
// exposes the decision for the server's metrics.
func TestAutoEndToEnd(t *testing.T) {
	r, s := dataset.Meteo(10000, 1)
	cat := catalog.New()
	if err := cat.Register(r); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(s); err != nil {
		t.Fatal(err)
	}
	st, err := sql.Parse("EXPLAIN SELECT * FROM r TP JOIN s ON r.Key = s.Key")
	if err != nil {
		t.Fatal(err)
	}
	// join_workers=1 keeps the pick in the sequential regime regardless
	// of the host's CPU count (workers=0 resolves to GOMAXPROCS, where
	// the model may amortize NJ past TA on Meteo).
	sess := &Session{Workers: 1}
	tree, err := ExplainTree(context.Background(), st.(*sql.Explain).Query, cat, sess, false)
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render()
	for _, want := range []string{"(auto)", "cost: NJ=", " TA=", " PNJ=", " PTA=", "stats r:", "stats s:", "join keys"} {
		if !strings.Contains(out, want) {
			t.Errorf("auto EXPLAIN missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "strategy=TA (auto)") && !strings.Contains(out, "strategy=PTA (auto)") {
		t.Errorf("auto EXPLAIN must pick the alignment family on Meteo:\n%s", out)
	}
	if strat, auto, ok := sess.PlannedJoin(); !ok || !auto || !alignFamily(strat) {
		t.Errorf("PlannedJoin = (%v, %v, %v), want (TA or PTA, true, true)", strat, auto, ok)
	}

	// Forcing overrides the pick but the estimates stay visible.
	sess.Strategy = StrategyNJ
	tree, err = ExplainTree(context.Background(), st.(*sql.Explain).Query, cat, sess, false)
	if err != nil {
		t.Fatal(err)
	}
	out = tree.Render()
	if !strings.Contains(out, "strategy=NJ") || strings.Contains(out, "(auto)") {
		t.Errorf("forced strategy must not be marked auto:\n%s", out)
	}
	if !strings.Contains(out, "cost: NJ=") {
		t.Errorf("forced EXPLAIN must still show the model estimates:\n%s", out)
	}
	if strat, auto, ok := sess.PlannedJoin(); !ok || auto || strat != engine.StrategyNJ {
		t.Errorf("forced PlannedJoin = (%v, %v, %v), want (NJ, false, true)", strat, auto, ok)
	}

	// A forced PTA runs end to end through the planner too.
	sess.Strategy = StrategyPTA
	sel, err := sql.Parse("SELECT * FROM r TP LEFT JOIN s ON r.Key = s.Key LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	op, err := Build(sel.(*sql.Select), cat, sess)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := engine.Run(op, "out")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 {
		t.Errorf("forced-PTA SELECT returned %d rows, want 5", rel.Len())
	}
	if strat, auto, ok := sess.PlannedJoin(); !ok || auto || strat != engine.StrategyPTA {
		t.Errorf("forced-PTA PlannedJoin = (%v, %v, %v), want (PTA, false, true)", strat, auto, ok)
	}

	// A join-free statement on the same session clears the record the
	// forced-PTA join just left behind.
	sel, err = sql.Parse("SELECT * FROM r LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(sel.(*sql.Select), cat, sess); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := sess.PlannedJoin(); ok {
		t.Error("join-free statement must clear PlannedJoin")
	}
}
