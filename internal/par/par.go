// Package par is the shared scaffolding of the partitioned-parallel
// executors (core.ParallelJoin / PNJ and align.ParallelJoin / PTA): key
// hash partitioning of relations and a bounded worker pool with the
// cancellation, error and panic semantics blocking query operators need.
// It sits below both executor packages so the subtle concurrency code
// exists exactly once.
package par

import (
	"context"
	"sync"
	"sync/atomic"

	"tpjoin/internal/fault"
	"tpjoin/internal/tp"
)

// MaxWorkers bounds the goroutine and partition count of the partitioned
// executors regardless of the caller's request; plan.MaxJoinWorkers
// applies the same cap at SET time so rejected values never reach an
// executor.
const MaxWorkers = 1024

// Run executes run(p) for every partition index in [0, parts) on a
// worker pool of the given size:
//
//   - cancellation is observed between partitions — once ctx is done (or
//     any partition failed) no further partition starts, and every
//     started worker is joined before Run returns, so no goroutine
//     outlives the call;
//   - the first worker error is captured and returned (ctx.Err() takes
//     precedence when the context is done, so cancelled runs surface the
//     context error whatever a worker reported);
//   - a worker panic (e.g. the documented evaluator panics on
//     conflicting base-event probabilities) is captured and re-raised on
//     the *calling* goroutine after all workers joined — the query
//     surfaces' panic-to-error containment recovers on the query
//     goroutine, so sequential and parallel execution fail identically
//     instead of a worker panic killing the process.
func Run(ctx context.Context, parts, workers int, run func(p int) error) error {
	var wg sync.WaitGroup
	var aborted atomic.Bool
	var firstErr atomic.Pointer[error]
	var firstPanic atomic.Pointer[any]
	sem := make(chan struct{}, workers)
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					firstPanic.CompareAndSwap(nil, &r)
					aborted.Store(true)
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			if aborted.Load() {
				return
			}
			if ctx.Err() != nil {
				aborted.Store(true)
				return
			}
			// Chaos hook: an armed "par.worker" failpoint fails this
			// partition like a worker error would (or panics, exercising
			// the re-raise path below).
			if err := fault.Inject("par.worker"); err != nil {
				firstErr.CompareAndSwap(nil, &err)
				aborted.Store(true)
				return
			}
			if err := run(p); err != nil {
				firstErr.CompareAndSwap(nil, &err)
				aborted.Store(true)
			}
		}(p)
	}
	wg.Wait()
	if r := firstPanic.Load(); r != nil {
		panic(*r)
	}
	if aborted.Load() {
		if err := ctx.Err(); err != nil {
			return err
		}
		// A worker failed for a non-context reason; surface its error
		// rather than reporting success.
		return *firstErr.Load()
	}
	return nil
}

// PartitionByKey splits rel into parts sub-relations by the hash of the
// join-key columns (interned key hashing, so facts with equal keys land
// together). Tuples whose key contains NULL match nothing; they still
// must flow through a join (outer/anti semantics keep them), so they are
// assigned round-robin by tuple index — deterministically, so repeated
// partitionings of one relation agree. The partitions are marked
// Transient (per-call temporaries outside the derived-structure caches).
func PartitionByKey(rel *tp.Relation, cols []int, parts int) []*tp.Relation {
	out := make([]*tp.Relation, parts)
	for i := range out {
		out[i] = &tp.Relation{Name: rel.Name, Attrs: rel.Attrs, Probs: rel.Probs, Transient: true}
	}
	eq := tp.EquiTheta{RCols: cols, SCols: cols}
	for i := range rel.Tuples {
		t := &rel.Tuples[i]
		var p int
		if h, ok := eq.RKeyHash(t.Fact); ok {
			p = int(h % uint64(parts))
		} else {
			p = i % parts
		}
		out[p].Tuples = append(out[p].Tuples, *t)
	}
	return out
}
