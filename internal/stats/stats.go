// Package stats computes per-relation statistics for the planner's
// cost-based join-strategy picker (SET strategy = auto) and the \stats
// builtin: tuple counts, per-column distinct cardinalities and group
// sizes, and the temporal profile (interval span, durations, overlap
// density). Everything is derived in one pass over the tuples and cached
// per relation, invalidated by the relation's (length, Version) pair —
// the same staleness contract the execution engine's derived-structure
// caches use — so statistics are rebuilt lazily on first use after a
// mutation.
package stats

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"weak"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// ColStats describes the value distribution of one fact column.
type ColStats struct {
	// Name is the attribute name.
	Name string
	// Distinct is the number of distinct non-NULL values.
	Distinct int
	// Nulls is the number of NULL values.
	Nulls int
	// MaxGroup is the size of the largest per-value group.
	MaxGroup int
	// MeanGroup is the mean per-value group size
	// ((Tuples − Nulls) / Distinct); 0 for an all-NULL or empty column.
	MeanGroup float64
}

// Stats is the statistics profile of one relation.
type Stats struct {
	// Tuples is the relation's cardinality.
	Tuples int
	// Cols holds one entry per fact attribute, in schema order.
	Cols []ColStats

	// Span is the hull of all tuple intervals (zero for an empty
	// relation).
	Span interval.Interval
	// MeanDur and MaxDur describe the interval durations.
	MeanDur float64
	MaxDur  int64
	// Density is the temporal overlap factor: the expected number of
	// tuples whose interval covers a uniformly random instant of the
	// span (Σ durations / span length). It is the relation-wide
	// concurrency; divide by a key cardinality for the per-key value.
	Density float64

	// (length, version) of the relation at computation time; the cache
	// uses the pair to detect staleness.
	len     int
	version uint64
}

// Compute derives the full statistics profile of rel in one pass over its
// tuples.
func Compute(rel *tp.Relation) *Stats {
	st := &Stats{
		Tuples:  rel.Len(),
		Cols:    make([]ColStats, rel.Arity()),
		len:     rel.Len(),
		version: rel.Version(),
	}
	counts := make([]map[tp.Value]int, rel.Arity())
	for c := range counts {
		st.Cols[c].Name = rel.Attrs[c]
		counts[c] = make(map[tp.Value]int)
	}
	var sumDur int64
	for i := range rel.Tuples {
		t := &rel.Tuples[i]
		for c, v := range t.Fact {
			if v.IsNull() {
				st.Cols[c].Nulls++
				continue
			}
			counts[c][v]++
		}
		d := t.T.Duration()
		sumDur += d
		if d > st.MaxDur {
			st.MaxDur = d
		}
		// Hull of all intervals (interval.Union rejects disjoint pairs).
		if i == 0 {
			st.Span = t.T
		} else {
			if t.T.Start < st.Span.Start {
				st.Span.Start = t.T.Start
			}
			if t.T.End > st.Span.End {
				st.Span.End = t.T.End
			}
		}
	}
	for c, m := range counts {
		st.Cols[c].Distinct = len(m)
		for _, n := range m {
			if n > st.Cols[c].MaxGroup {
				st.Cols[c].MaxGroup = n
			}
		}
		if len(m) > 0 {
			st.Cols[c].MeanGroup = float64(st.Tuples-st.Cols[c].Nulls) / float64(len(m))
		}
	}
	if st.Tuples > 0 {
		st.MeanDur = float64(sumDur) / float64(st.Tuples)
	}
	if span := st.Span.Duration(); span > 0 {
		st.Density = float64(sumDur) / float64(span)
	}
	return st
}

// KeyInfo summarizes the grouping structure of a join-key column set, the
// quantities the cost model consumes.
type KeyInfo struct {
	// Distinct is the key cardinality: exact for a single-column key,
	// the product of the per-column cardinalities capped at the tuple
	// count otherwise (the standard independence upper bound).
	Distinct int
	// MeanGroup and MaxGroup are the per-key group sizes. For
	// multi-column keys MaxGroup is the smallest per-column maximum (a
	// composite key can only split groups further).
	MeanGroup float64
	MaxGroup  int
	// Concurrency is the per-key temporal overlap factor
	// (Density / Distinct): the mean number of same-key tuples valid at
	// one instant. It is the group-size axis that drives the NJ window
	// fan-out.
	Concurrency float64
}

// Key derives the KeyInfo for the given column set. Out-of-range columns
// are ignored (the caller resolved them against this schema already);
// an empty or fully unknown column set is treated as a single key
// spanning the whole relation.
func (s *Stats) Key(cols []int) KeyInfo {
	k := KeyInfo{Distinct: 1, MaxGroup: s.Tuples}
	first := true
	for _, c := range cols {
		if c < 0 || c >= len(s.Cols) {
			continue
		}
		cs := &s.Cols[c]
		d := cs.Distinct
		if d < 1 {
			d = 1
		}
		if first {
			k.Distinct = d
			k.MaxGroup = cs.MaxGroup
			first = false
		} else {
			if k.Distinct > s.Tuples/d { // cap the product at Tuples
				k.Distinct = s.Tuples
			} else {
				k.Distinct *= d
			}
			if cs.MaxGroup < k.MaxGroup {
				k.MaxGroup = cs.MaxGroup
			}
		}
	}
	if k.Distinct < 1 {
		k.Distinct = 1
	}
	if k.Distinct > s.Tuples && s.Tuples > 0 {
		k.Distinct = s.Tuples
	}
	if s.Tuples > 0 {
		k.MeanGroup = float64(s.Tuples) / float64(k.Distinct)
		k.Concurrency = s.Density / float64(k.Distinct)
	}
	return k
}

// Render writes the profile in the \stats builtin's layout.
func (s *Stats) Render(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d tuples, %d columns\n", name, s.Tuples, len(s.Cols))
	for _, c := range s.Cols {
		fmt.Fprintf(&b, "  %s: %d distinct, %d null, group mean %.1f max %d\n",
			c.Name, c.Distinct, c.Nulls, c.MeanGroup, c.MaxGroup)
	}
	fmt.Fprintf(&b, "  time: span %s, mean duration %.1f, max %d, overlap %.2f\n",
		s.Span, s.MeanDur, s.MaxDur, s.Density)
	return b.String()
}

// Cache memoizes one Stats per relation, invalidated by the relation's
// (length, Version) pair: statistics are computed lazily on first use and
// rebuilt on first use after a mutating method touched the relation.
// Relation keys are held weakly with a cleanup (the execution engine's
// derived-structure cache idiom), so dropped relations do not pin their
// statistics. Transient relations (per-query temporaries) bypass the
// cache. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[weak.Pointer[tp.Relation]]*Stats
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[weak.Pointer[tp.Relation]]*Stats)}
}

// Get returns rel's statistics, computing (and caching) them if the cache
// has no current entry.
func (c *Cache) Get(rel *tp.Relation) *Stats {
	if rel.Transient {
		return Compute(rel)
	}
	key := weak.Make(rel)
	c.mu.Lock()
	if e := c.entries[key]; e != nil && e.len == rel.Len() && e.version == rel.Version() {
		c.mu.Unlock()
		return e
	}
	c.mu.Unlock()
	st := Compute(rel)
	c.mu.Lock()
	fresh := c.entries[key] == nil
	c.entries[key] = st
	c.mu.Unlock()
	if fresh {
		runtime.AddCleanup(rel, func(k weak.Pointer[tp.Relation]) {
			c.mu.Lock()
			delete(c.entries, k)
			c.mu.Unlock()
		}, key)
	}
	return st
}
