package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// randomRelation builds a relation with mixed value kinds, NULLs and
// arbitrary (not necessarily sequenced) intervals — stats must not depend
// on the sequenced constraint.
func randomRelation(rng *rand.Rand, name string) *tp.Relation {
	arity := 1 + rng.Intn(3)
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("c%d", i)
	}
	rel := tp.NewRelation(name, attrs...)
	n := rng.Intn(300)
	for i := 0; i < n; i++ {
		f := make(tp.Fact, arity)
		for c := range f {
			switch rng.Intn(4) {
			case 0:
				f[c] = tp.Null()
			case 1:
				f[c] = tp.Int(int64(rng.Intn(8)))
			case 2:
				f[c] = tp.Float(float64(rng.Intn(5)) / 2)
			default:
				f[c] = tp.String_(fmt.Sprintf("v%d", rng.Intn(10)))
			}
		}
		start := int64(rng.Intn(1000))
		rel.Append(f, interval.New(start, start+1+int64(rng.Intn(50))), 0.5)
	}
	return rel
}

// bruteForce recomputes every statistic with independent, naive code.
func bruteForce(rel *tp.Relation) *Stats {
	st := &Stats{Tuples: rel.Len(), Cols: make([]ColStats, rel.Arity())}
	for c := range st.Cols {
		st.Cols[c].Name = rel.Attrs[c]
		counts := make(map[string]int)
		for _, t := range rel.Tuples {
			v := t.Fact[c]
			if v.IsNull() {
				st.Cols[c].Nulls++
				continue
			}
			counts[fmt.Sprintf("%v|%v", v.Kind(), v)]++
		}
		st.Cols[c].Distinct = len(counts)
		for _, n := range counts {
			if n > st.Cols[c].MaxGroup {
				st.Cols[c].MaxGroup = n
			}
		}
		if len(counts) > 0 {
			st.Cols[c].MeanGroup = float64(st.Tuples-st.Cols[c].Nulls) / float64(len(counts))
		}
	}
	var sumDur int64
	for i, t := range rel.Tuples {
		d := t.T.Duration()
		sumDur += d
		if d > st.MaxDur {
			st.MaxDur = d
		}
		if i == 0 {
			st.Span = t.T
		} else {
			if t.T.Start < st.Span.Start {
				st.Span.Start = t.T.Start
			}
			if t.T.End > st.Span.End {
				st.Span.End = t.T.End
			}
		}
	}
	if st.Tuples > 0 {
		st.MeanDur = float64(sumDur) / float64(st.Tuples)
	}
	if sp := st.Span.Duration(); sp > 0 {
		st.Density = float64(sumDur) / float64(sp)
	}
	return st
}

func closeEnough(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestComputeMatchesBruteForce is the property test: for generated
// relations, the one-pass Compute must agree with a naive recomputation
// on every statistic.
func TestComputeMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rel := randomRelation(rng, fmt.Sprintf("rel%d", seed))
		got, want := Compute(rel), bruteForce(rel)
		if got.Tuples != want.Tuples {
			t.Fatalf("seed %d: tuples %d vs %d", seed, got.Tuples, want.Tuples)
		}
		if !got.Span.Equal(want.Span) || got.MaxDur != want.MaxDur ||
			!closeEnough(got.MeanDur, want.MeanDur) || !closeEnough(got.Density, want.Density) {
			t.Errorf("seed %d: temporal stats differ:\n got %+v\nwant %+v", seed, got, want)
		}
		for c := range want.Cols {
			g, w := got.Cols[c], want.Cols[c]
			if g.Distinct != w.Distinct || g.Nulls != w.Nulls || g.MaxGroup != w.MaxGroup ||
				!closeEnough(g.MeanGroup, w.MeanGroup) {
				t.Errorf("seed %d col %d: %+v vs %+v", seed, c, g, w)
			}
		}
	}
}

func TestKeyInfo(t *testing.T) {
	rel := tp.NewRelation("k", "A", "B")
	for i := 0; i < 12; i++ {
		rel.Append(tp.Strings(fmt.Sprintf("a%d", i%3), fmt.Sprintf("b%d", i%2)),
			interval.New(int64(i*10), int64(i*10+5)), 0.5)
	}
	st := Compute(rel)
	one := st.Key([]int{0})
	if one.Distinct != 3 || one.MaxGroup != 4 || !closeEnough(one.MeanGroup, 4) {
		t.Errorf("single-column key info wrong: %+v", one)
	}
	// Multi-column: cardinality is the per-column product, the max group
	// is bounded by the smallest per-column maximum (a composite key only
	// splits groups further).
	both := st.Key([]int{0, 1})
	if both.Distinct != 6 || both.MaxGroup != 4 || !closeEnough(both.MeanGroup, 2) {
		t.Errorf("multi-column key info wrong: %+v", both)
	}
	// Concurrency = Density / Distinct.
	if !closeEnough(one.Concurrency, st.Density/3) {
		t.Errorf("concurrency %g, want %g", one.Concurrency, st.Density/3)
	}
	// Degenerate column sets behave as one whole-relation key.
	whole := st.Key(nil)
	if whole.Distinct != 1 || whole.MaxGroup != 12 {
		t.Errorf("empty key info wrong: %+v", whole)
	}
}

// TestCacheInvalidation pins the caching contract: a current entry is
// served as-is, and any Version bump — even one that does not change the
// length, like a sort — forces a rebuild on next use.
func TestCacheInvalidation(t *testing.T) {
	c := NewCache()
	rel := tp.NewRelation("r", "K")
	rel.Append(tp.Strings("x"), interval.New(0, 5), 0.5)
	rel.Append(tp.Strings("y"), interval.New(3, 9), 0.5)

	s1 := c.Get(rel)
	if s2 := c.Get(rel); s2 != s1 {
		t.Fatal("unchanged relation must be served from the cache")
	}
	// Version bump without length change (sort) invalidates.
	rel.SortByStart()
	s3 := c.Get(rel)
	if s3 == s1 {
		t.Fatal("Version bump must force a stats rebuild")
	}
	// Mutation through Append is picked up lazily on next use.
	rel.Append(tp.Strings("z"), interval.New(10, 12), 0.5)
	if s4 := c.Get(rel); s4 == s3 || s4.Tuples != 3 {
		t.Fatalf("stats stale after append: %+v", c.Get(rel))
	}
	// Transient relations bypass the cache.
	rel.Transient = true
	if c.Get(rel) == c.Get(rel) {
		t.Fatal("transient relations must not be cached")
	}
}
