package align

// This file is the streaming side of the TA reduction: the fused
// alignment drain that replaced the materialize-then-unionDistinct tail
// for the indexed (hash) plan.
//
// The reference implementation (align.go, still run for the nested-loop
// plan and non-equi θ, and kept as the byte-identity oracle) evaluates a
// join with negation as two sub-queries over the same alignment — the
// aligned outer join (A: pairings + unmatched fragments) and the negated
// part (B: negated + unmatched fragments again) — materializes both row
// sets with fully formed facts, sorts them, and duplicate-eliminates.
// Both sub-queries enumerate the *same* fragment stream in the *same*
// order off the per-direction endpoint index, so the fused drain merges
// them at the frontier instead: one enumeration emits A's rows and B's
// rows together, and the duplicated unmatched fragments — identical
// (fact, interval, lineage) rows by construction — are emitted once and
// counted in Stats.DupAvoided. Row formation is deferred too: a streamed
// row carries an interned fact id instead of a materialized fact slice,
// so the union sorts by a precomputed integer rank (one comparison sort
// over the small fact table) rather than lexicographically comparing
// facts row by row, and output tuples share the interned fact slices.
//
// Merge-order invariant: every streamed row carries ord = (sub-query,
// emission index) — A rows order before B rows before the mirror pass's
// rows, each in drain order, and the fused unmatched row takes its A
// ordinal while the B ordinal is still consumed. This makes the union's
// (fact, interval, lineage-hash, ord) sort a permutation-identical
// replay of the reference's concatenate-then-sort order, which is what
// keeps the streamed join byte-identical to the scalar oracle (row
// order, lineage rendering, probabilities) — property-tested in
// equiv_test.go and stream_test.go.
//
// The tail is batched as well: surviving rows are evaluated through
// prob.BatchEvaluator in probBatchSize chunks (shared memo across the
// join, counters surfaced as prob-batches / memo-hits in EXPLAIN
// ANALYZE), with a cancellation + memory-budget checkpoint per chunk.

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"unsafe"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/mem"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// probBatchSize is how many union survivors are evaluated per
// probability batch — matching the core pipeline's window batch size, so
// the whole query runs on one batch granularity.
const probBatchSize = 256

// maxStreamPresize clamps the presized row buffer (entries): the memory
// gauge is the budget guard, but an uncharged pathological workload must
// not commit the process to one near-unbounded allocation either. The
// clamp sits well above the realistic workloads (4M rows ≈ 160 MiB), so
// the exact counted presize normally allocates once; beyond it, append
// growth takes over.
const maxStreamPresize = 1 << 22

// srow is one not-yet-deduplicated streamed row. fid indexes the join's
// interned fact table (streamUnion.facts); ord encodes (sub-query,
// emission index) and reproduces the reference path's concatenation
// order as the union's final tiebreaker.
type srow struct {
	lam *lineage.Expr
	t   interval.Interval
	ord uint64
	fid int32
}

// ord layout: the sub-query tag in the high bits, the per-sub-query
// emission index below. 2^40 rows per sub-query is far beyond the int32
// fact table the union indexes.
const ordSegShift = 40

const (
	segOuter  uint64 = iota // sub-query A: pairings + unmatched
	segNeg                  // sub-query B: negated + unmatched
	segMirror               // full outer join's mirrored sub-query B
)

// streamUnion accumulates the streamed rows and the interned fact table
// of one join.
type streamUnion struct {
	rows  []srow
	facts []tp.Fact
}

// drainMode selects which of the reference sub-queries a fused drain
// emits.
type drainMode uint8

const (
	// drainPairsOnly emits only sub-query A's pairing rows (inner join:
	// the reference materializes unmatched rows and filters them out;
	// the stream never forms them).
	drainPairsOnly drainMode = iota
	// drainFused emits sub-queries A and B merged: pairings, negated
	// fragments, and each unmatched fragment once (the reference emits
	// it per sub-query; the duplicate dies at the frontier).
	drainFused
	// drainNegOnly emits only sub-query B: negated + unmatched
	// fragments (anti join, and the full outer join's mirror pass,
	// where no pairing rows accompany the drain).
	drainNegOnly
)

// fusedDrain is the per-drain emission state: the drained (outer) and
// indexed (inner) relations, the fact-interning tables, and the
// per-sub-query ordinal counters.
type fusedDrain struct {
	su     *streamUnion
	outer  *tp.Relation
	inner  *tp.Relation
	mode   drainMode
	mirror bool // inner fact left of outer fact; nulls lead unmatched facts
	anti   bool // unmatched/negated rows keep the outer schema (no nulls)

	nulls    tp.Fact // shared null pad, allocated once per drain
	outerFid []int32 // per outer tuple: interned fid of its padded fact
	pairs    map[uint64]pairEnt
	orMemo   map[uint64][]orEnt

	segPair, segNeg uint64 // ord tags for this drain's A / B rows
	aSeq, bSeq      uint64
	parts           []*lineage.Expr // scratch for ∨λs
	dupAvoided      int64
}

// pairEnt interns one (outer, inner) pairing: its concatenated output
// fact and its ∧ lineage, shared by every fragment of the pair.
type pairEnt struct {
	fid int32
	lam *lineage.Expr
}

// orEnt interns one cover's ∨λs disjunction, keyed by the cover's
// content hash. The cover is copied: indexed drains borrow arena slices,
// the scalar fallback reuses a scratch buffer.
type orEnt struct {
	cover []int32
	or    *lineage.Expr
}

func newFusedDrain(su *streamUnion, outer, inner *tp.Relation, mode drainMode, mirror, anti bool, segPair, segNeg uint64) *fusedDrain {
	d := &fusedDrain{
		su: su, outer: outer, inner: inner,
		mode: mode, mirror: mirror, anti: anti,
		segPair: segPair, segNeg: segNeg,
	}
	if mode != drainPairsOnly {
		d.outerFid = make([]int32, len(outer.Tuples))
		for i := range d.outerFid {
			d.outerFid[i] = -1
		}
		d.orMemo = make(map[uint64][]orEnt)
		if !anti {
			d.nulls = tp.Nulls(inner.Arity())
		}
	}
	if mode != drainNegOnly {
		d.pairs = make(map[uint64]pairEnt)
	}
	return d
}

// outerFidOf interns the outer tuple's unmatched/negated output fact:
// the fact padded with nulls on the inner side (outer schema alone for
// the anti join). One fact serves every fragment of the tuple — and
// both sub-queries, where the reference allocated one per row.
func (d *fusedDrain) outerFidOf(ri int, rt *tp.Tuple) int32 {
	if fid := d.outerFid[ri]; fid >= 0 {
		return fid
	}
	var fact tp.Fact
	switch {
	case d.anti:
		fact = rt.Fact
	case d.mirror:
		fact = d.nulls.Concat(rt.Fact)
	default:
		fact = rt.Fact.Concat(d.nulls)
	}
	fid := int32(len(d.su.facts))
	d.su.facts = append(d.su.facts, fact)
	d.outerFid[ri] = fid
	return fid
}

// pairOf interns the pairing of (outer ri, inner si): its concatenated
// fact and its ∧ lineage. A pair split into k fragments re-uses one fact
// and one lineage node where the reference concatenated and rebuilt k
// times — and the shared node turns the probability memo's Equal checks
// into pointer comparisons.
func (d *fusedDrain) pairOf(ri int, si int32, rt, st *tp.Tuple) pairEnt {
	key := uint64(uint32(ri))<<32 | uint64(uint32(si))
	if ent, ok := d.pairs[key]; ok {
		return ent
	}
	var fact tp.Fact
	if d.mirror {
		fact = st.Fact.Concat(rt.Fact)
	} else {
		fact = rt.Fact.Concat(st.Fact)
	}
	ent := pairEnt{fid: int32(len(d.su.facts)), lam: lineage.And(rt.Lineage, st.Lineage)}
	d.su.facts = append(d.su.facts, fact)
	d.pairs[key] = ent
	return ent
}

// orOf interns the ∨λs disjunction of a cover by content: outer tuples
// of one key group repeat the same elementary segments, so their negated
// fragments share one disjunction node instead of rebuilding (and
// re-hashing) a k-ary Or per fragment.
func (d *fusedDrain) orOf(cover []int32) *lineage.Expr {
	h := coverHash(cover)
	for _, e := range d.orMemo[h] {
		if slices.Equal(e.cover, cover) {
			return e.or
		}
	}
	d.parts = d.parts[:0]
	for _, si := range cover {
		d.parts = append(d.parts, d.inner.Tuples[si].Lineage)
	}
	or := lineage.Or(d.parts...)
	d.orMemo[h] = append(d.orMemo[h], orEnt{cover: slices.Clone(cover), or: or})
	return or
}

// coverHash is FNV-1a over the cover's tuple indexes.
func coverHash(cover []int32) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range cover {
		h ^= uint64(uint32(c))
		h *= 1099511628211
	}
	return h
}

// emit translates one aligned fragment into streamed rows. The ordinal
// bookkeeping mirrors the reference exactly: aSeq advances for every
// sub-query-A row (pairings and unmatched), bSeq for every fragment's
// sub-query-B row — including the fused unmatched row, whose B ordinal
// is consumed even though the duplicate row is never formed.
func (d *fusedDrain) emit(ri int, t interval.Interval, cover []int32) error {
	rt := &d.outer.Tuples[ri]
	su := d.su
	if len(cover) == 0 {
		switch d.mode {
		case drainPairsOnly:
			// Inner join: the reference forms the unmatched row and
			// filters it before the union; the stream skips it outright.
		case drainFused:
			su.rows = append(su.rows, srow{
				lam: rt.Lineage, t: t,
				ord: d.segPair<<ordSegShift | d.aSeq,
				fid: d.outerFidOf(ri, rt),
			})
			d.aSeq++
			d.bSeq++ // sub-query B's duplicate, killed at the frontier
			d.dupAvoided++
		case drainNegOnly:
			su.rows = append(su.rows, srow{
				lam: rt.Lineage, t: t,
				ord: d.segNeg<<ordSegShift | d.bSeq,
				fid: d.outerFidOf(ri, rt),
			})
			d.bSeq++
		}
		return nil
	}
	if d.mode != drainNegOnly {
		for _, si := range cover {
			ent := d.pairOf(ri, si, rt, &d.inner.Tuples[si])
			su.rows = append(su.rows, srow{
				lam: ent.lam, t: t,
				ord: d.segPair<<ordSegShift | d.aSeq,
				fid: ent.fid,
			})
			d.aSeq++
		}
	}
	if d.mode != drainPairsOnly {
		su.rows = append(su.rows, srow{
			lam: lineage.AndNot(rt.Lineage, d.orOf(cover)), t: t,
			ord: d.segNeg<<ordSegShift | d.bSeq,
			fid: d.outerFidOf(ri, rt),
		})
		d.bSeq++
	}
	return nil
}

// run drains al over the outer relation through emit, accounting one
// alignment pass. A fused drain counts as one pass: the reference's two
// sub-query enumerations are merged into it, which is the point.
func (d *fusedDrain) run(ctx context.Context, al aligner, stats *Stats) error {
	frags := int64(0)
	err := al.drain(ctx, d.outer, func(ri int, t interval.Interval, cover []int32) error {
		frags++
		return d.emit(ri, t, cover)
	})
	if err != nil {
		return err
	}
	if stats != nil {
		stats.AlignPasses++
		stats.Fragments += frags
		stats.DupAvoided += d.dupAvoided
	}
	d.dupAvoided = 0
	return nil
}

// drainCounts sizes one drain's row production without forming rows.
type drainCounts struct {
	pairs     int // sub-query A pairing rows
	unmatched int // fragments with an empty cover
	covered   int // fragments with a non-empty cover (sub-query B negated rows)
}

// countDrain runs the counting pass for one drain direction. Counting
// gates on cheapCount: the indexed pipeline re-drains its event index
// for near-free, while the nested-loop reference would pay a full extra
// scan — those plans must never pay the counting pass (ok=false; the
// caller falls back to append growth).
func countDrain(ctx context.Context, al aligner, outer *tp.Relation) (c drainCounts, ok bool, err error) {
	if !al.cheapCount() {
		return drainCounts{}, false, nil
	}
	err = al.drain(ctx, outer, func(ri int, t interval.Interval, cover []int32) error {
		if len(cover) == 0 {
			c.unmatched++
		} else {
			c.pairs += len(cover)
			c.covered++
		}
		return nil
	})
	return c, err == nil, err
}

// rowsFor is the exact pre-union row count of a counted drain under the
// given mode — presize equals materialized rows, instead of the
// reference sizing's outRows+frags over-count (which billed the fused
// path for duplicates it never forms).
func (c drainCounts) rowsFor(mode drainMode) int {
	switch mode {
	case drainPairsOnly:
		return c.pairs
	case drainFused:
		return c.pairs + c.covered + c.unmatched
	default: // drainNegOnly
		return c.covered + c.unmatched
	}
}

// presizeStream allocates the streamed row buffer for n expected rows,
// charging it against the query's memory budget. n <= 0 (an uncounted
// drain) yields a nil buffer and append growth takes over.
func presizeStream(ctx context.Context, n int) ([]srow, error) {
	if n <= 0 {
		return nil, nil
	}
	if n > maxStreamPresize {
		n = maxStreamPresize
	}
	if err := mem.FromContext(ctx).Charge(int64(n) * int64(unsafe.Sizeof(srow{}))); err != nil {
		return nil, err
	}
	return make([]srow, 0, n), nil
}

// union orders the streamed rows by (fact rank, interval, lineage hash,
// ord) and collapses adjacent equal (fact, interval, lineage) rows — the
// duplicate-eliminating union of the paper on interned facts. Because
// ord replays the reference's concatenation order and the fact ranks
// replay fact.Compare, the surviving rows and their order are exactly
// the reference union's output.
//
// The ordering is two-level: a counting sort scatters the rows into their
// fact-rank buckets in O(n) (stable, though stability is moot — ord makes
// the within-bucket comparator a total order), and each bucket is then
// sorted by (interval, hash, ord) alone. This replaces the reference's
// global comparison sort, whose comparator re-compared facts
// lexicographically on every probe, with one linear scatter plus many
// small cache-resident sorts that never look at a fact again.
func (su *streamUnion) union(ctx context.Context, stats *Stats) ([]srow, error) {
	if stats != nil {
		stats.Rows += int64(len(su.rows))
	}
	if len(su.rows) < 2 {
		return su.rows, nil
	}
	rank, nRanks := su.rankFacts()
	if err := mem.FromContext(ctx).Charge(int64(len(su.rows))*int64(unsafe.Sizeof(srow{})) +
		int64(nRanks+1)*int64(unsafe.Sizeof(int32(0)))); err != nil {
		return nil, err
	}
	// Counting sort by fact rank: bucket offsets, then scatter.
	off := make([]int32, nRanks+1)
	for i := range su.rows {
		off[rank[su.rows[i].fid]+1]++
	}
	for r := 0; r < nRanks; r++ {
		off[r+1] += off[r]
	}
	next := make([]int32, nRanks)
	copy(next, off[:nRanks])
	sorted := make([]srow, len(su.rows))
	for i := range su.rows {
		r := rank[su.rows[i].fid]
		sorted[next[r]] = su.rows[i]
		next[r]++
	}
	// Order each rank bucket by (interval, lineage hash, ord); facts are
	// settled by the bucketing.
	for r := 0; r < nRanks; r++ {
		if b := sorted[off[r]:off[r+1]]; len(b) > 1 {
			slices.SortFunc(b, cmpWithinRank)
		}
	}
	// Collapse adjacent equal rows in place. Equal-comparing facts can
	// carry unequal fids (fact.Compare treats NULL like a value,
	// fact.Equal does not necessarily — the rank check keeps the
	// reference's exact collapse condition).
	out := sorted[:1]
	for n := 1; n < len(sorted); n++ {
		rw := &sorted[n]
		prev := &out[len(out)-1]
		if (prev.fid == rw.fid || su.facts[prev.fid].Equal(su.facts[rw.fid])) &&
			prev.t.Equal(rw.t) && prev.lam.Equal(rw.lam) {
			continue
		}
		out = append(out, *rw)
	}
	return out, nil
}

// cmpWithinRank orders two rows of one fact-rank bucket: interval, then
// lineage hash, then ord (the reference's input-index tiebreak).
func cmpWithinRank(a, b srow) int {
	if c := a.t.Compare(b.t); c != 0 {
		return c
	}
	ha, hb := a.lam.Hash(), b.lam.Hash()
	switch {
	case ha < hb:
		return -1
	case ha > hb:
		return 1
	default:
		return cmp.Compare(a.ord, b.ord)
	}
}

// rankFacts orders the interned fact table once by fact.Compare and
// assigns each fact its equivalence-class rank (facts comparing equal
// share a rank; the union still verifies Equal before collapsing, like
// the reference). It returns the per-fid rank table and the number of
// rank classes.
func (su *streamUnion) rankFacts() ([]int32, int) {
	n := len(su.facts)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, func(i, j int32) int {
		if c := su.facts[i].Compare(su.facts[j]); c != 0 {
			return c
		}
		return cmp.Compare(i, j)
	})
	rank := make([]int32, n)
	r := int32(0)
	for k, fi := range perm {
		if k > 0 && su.facts[perm[k-1]].Compare(su.facts[fi]) != 0 {
			r++
		}
		rank[fi] = r
	}
	if n == 0 {
		return rank, 0
	}
	return rank, int(r) + 1
}

// finish forms the output relation from the union survivors, evaluating
// probabilities in probBatchSize chunks through prob.BatchEvaluator (one
// memo across the join; Stats.ProbBatches / Stats.MemoHits surface the
// batching in EXPLAIN ANALYZE). Output tuples alias the interned fact
// slices — facts are immutable, and duplicates of one source tuple share
// storage instead of repeating it.
func (su *streamUnion) finish(ctx context.Context, name string, attrs []string, probs prob.Probs, rows []srow, stats *Stats) (*tp.Relation, error) {
	rel := &tp.Relation{Name: name, Attrs: attrs, Probs: probs}
	if err := mem.FromContext(ctx).Charge(int64(len(rows)) * int64(unsafe.Sizeof(tp.Tuple{}))); err != nil {
		return nil, err
	}
	rel.Tuples = make([]tp.Tuple, len(rows))
	bev := prob.NewBatchEvaluator(probs)
	var lams [probBatchSize]*lineage.Expr
	var ps [probBatchSize]float64
	// The drains intern lineages, and the union orders fragments of one
	// pairing adjacently — runs of pointer-identical lineages are common,
	// and one evaluation serves the whole run.
	var prevLam *lineage.Expr
	var prevP float64
	for lo := 0; lo < len(rows); lo += probBatchSize {
		// Per-batch cancellation checkpoint: a timeout or disconnect
		// aborts between probability batches, not after the whole tail.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+probBatchSize, len(rows))
		m := 0
		last := prevLam
		for i := lo; i < hi; i++ {
			if rows[i].lam != last {
				last = rows[i].lam
				lams[m] = last
				m++
			}
		}
		if m > 0 {
			bev.EvalBatch(lams[:m], ps[:])
		}
		k := 0
		for i := lo; i < hi; i++ {
			rw := &rows[i]
			if rw.lam != prevLam {
				prevLam = rw.lam
				prevP = ps[k]
				k++
			}
			rel.Tuples[i] = tp.Tuple{Fact: su.facts[rw.fid], Lineage: rw.lam, T: rw.t, Prob: prevP}
		}
	}
	if stats != nil {
		stats.ProbBatches += bev.Batches()
		stats.MemoHits += bev.MemoHits()
	}
	return rel, nil
}

// --- streamed join paths (indexed aligners; dispatched by cheapCount) ---

func streamInner(ctx context.Context, al aligner, r, s *tp.Relation, stats *Stats) (*tp.Relation, error) {
	c, counted, err := countDrain(ctx, al, r)
	if err != nil {
		return nil, err
	}
	su := &streamUnion{}
	if counted {
		if su.rows, err = presizeStream(ctx, c.rowsFor(drainPairsOnly)); err != nil {
			return nil, err
		}
	}
	d := newFusedDrain(su, r, s, drainPairsOnly, false, false, segOuter, segNeg)
	if err := d.run(ctx, al, stats); err != nil {
		return nil, err
	}
	rows, err := su.union(ctx, stats)
	if err != nil {
		return nil, err
	}
	return su.finish(ctx, fmt.Sprintf("%s_join_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows, stats)
}

func streamAnti(ctx context.Context, al aligner, r, s *tp.Relation, stats *Stats) (*tp.Relation, error) {
	c, counted, err := countDrain(ctx, al, r)
	if err != nil {
		return nil, err
	}
	su := &streamUnion{}
	if counted {
		if su.rows, err = presizeStream(ctx, c.rowsFor(drainNegOnly)); err != nil {
			return nil, err
		}
	}
	d := newFusedDrain(su, r, s, drainNegOnly, false, true, segOuter, segNeg)
	if err := d.run(ctx, al, stats); err != nil {
		return nil, err
	}
	rows, err := su.union(ctx, stats)
	if err != nil {
		return nil, err
	}
	return su.finish(ctx, fmt.Sprintf("%s_anti_%s", r.Name, s.Name),
		append([]string(nil), r.Attrs...), tp.MergeProbs(r, s), rows, stats)
}

// streamOuter serves the left outer join (mirror=false: drains r against
// the index over s) and its mirror, the right outer join (mirror=true:
// drains s against the index over r; outer/inner arrive pre-swapped).
func streamOuter(ctx context.Context, al aligner, outer, inner *tp.Relation, mirror bool, name string, attrs []string, probs prob.Probs, stats *Stats) (*tp.Relation, error) {
	c, counted, err := countDrain(ctx, al, outer)
	if err != nil {
		return nil, err
	}
	su := &streamUnion{}
	if counted {
		if su.rows, err = presizeStream(ctx, c.rowsFor(drainFused)); err != nil {
			return nil, err
		}
	}
	d := newFusedDrain(su, outer, inner, drainFused, mirror, false, segOuter, segNeg)
	if err := d.run(ctx, al, stats); err != nil {
		return nil, err
	}
	rows, err := su.union(ctx, stats)
	if err != nil {
		return nil, err
	}
	return su.finish(ctx, name, attrs, probs, rows, stats)
}

func streamFull(ctx context.Context, fwd, mir aligner, r, s *tp.Relation, stats *Stats) (*tp.Relation, error) {
	cf, countedF, err := countDrain(ctx, fwd, r)
	if err != nil {
		return nil, err
	}
	cm, countedM, err := countDrain(ctx, mir, s)
	if err != nil {
		return nil, err
	}
	su := &streamUnion{}
	if countedF && countedM {
		// Both directions counted: the presize covers the mirror pass's
		// rows too, which the reference sizing never did.
		if su.rows, err = presizeStream(ctx, cf.rowsFor(drainFused)+cm.rowsFor(drainNegOnly)); err != nil {
			return nil, err
		}
	}
	d := newFusedDrain(su, r, s, drainFused, false, false, segOuter, segNeg)
	if err := d.run(ctx, fwd, stats); err != nil {
		return nil, err
	}
	dm := newFusedDrain(su, s, r, drainNegOnly, true, false, segMirror, segMirror)
	if err := dm.run(ctx, mir, stats); err != nil {
		return nil, err
	}
	rows, err := su.union(ctx, stats)
	if err != nil {
		return nil, err
	}
	return su.finish(ctx, fmt.Sprintf("%s_fouter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows, stats)
}
