package align

import (
	"context"
	"testing"

	"tpjoin/internal/dataset"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// Allocation-regression pins for the refactored alignment path, the TA
// counterpart of core's PR-2 pins: one alignment pass over a built index
// must not allocate per tuple, per fragment or per cover entry, and the
// whole count path (index build included) must stay flat in the input
// size — the former implementation allocated a points slice and a sort
// per outer tuple plus a cover slice per fragment, O(n) and worse.

// TestAlignPassAllocsPinned pins a drain over a prebuilt index to zero
// allocations regardless of workload size.
func TestAlignPassAllocsPinned(t *testing.T) {
	for _, n := range []int{4000, 16000} {
		r, s := dataset.Meteo(n, 11)
		theta := dataset.MeteoTheta()
		al := newAligner(s, theta, Config{})
		defer al.release()
		count := 0
		emit := func(ri int, iv interval.Interval, cover []int32) error {
			count += len(cover) + 1
			return nil
		}
		// Warm-up builds the index (and proves the drain works).
		if err := al.drain(context.Background(), r, emit); err != nil || count == 0 {
			t.Fatalf("n=%d: warm-up drain: count=%d err=%v", n, count, err)
		}
		if allocs := testing.AllocsPerRun(5, func() {
			_ = al.drain(context.Background(), r, emit)
		}); allocs > 0 {
			t.Errorf("n=%d: alignment pass allocates %v per drain, want 0", n, allocs)
		}
	}
}

// TestCountPathAllocsFlat pins the full CountWUO/CountNegating operation
// (index build + both passes' enumeration) to a small constant ceiling at
// two input sizes: the ceiling covers the per-key-group bookkeeping (the
// Meteo profile has a fixed key population), so a regression back to
// per-tuple or per-fragment allocation fails at the larger size.
func TestCountPathAllocsFlat(t *testing.T) {
	const ceiling = 600 // measured ≈170 (key grouping + arena growth); generous headroom
	for _, n := range []int{4000, 16000} {
		r, s := dataset.Meteo(n, 11)
		theta := dataset.MeteoTheta()
		if rows := CountWUO(r, s, theta, Config{}); rows < n {
			t.Fatalf("n=%d: workload too small to be meaningful: %d rows", n, rows)
		}
		if allocs := testing.AllocsPerRun(5, func() {
			CountWUO(r, s, theta, Config{})
		}); allocs > ceiling {
			t.Errorf("n=%d: CountWUO allocates %v per run, want ≤ %d (flat in n)", n, allocs, ceiling)
		}
		if allocs := testing.AllocsPerRun(5, func() {
			CountNegating(r, s, theta, Config{})
		}); allocs > ceiling {
			t.Errorf("n=%d: CountNegating allocates %v per run, want ≤ %d (flat in n)", n, allocs, ceiling)
		}
	}
}

// TestKeyGroupsResetKeepsStorage guards the pooling contract the aligner
// relies on: a Reset grouping accepts new groups without leaking the old
// ones.
func TestKeyGroupsResetKeepsStorage(t *testing.T) {
	g := tp.NewKeyGroups[int32]()
	f1 := tp.Strings("a")
	g.Group(1, f1, func(a, b tp.Fact) bool { return true }).Vals = append(g.Group(1, f1, func(a, b tp.Fact) bool { return true }).Vals, 7)
	g.Reset()
	if len(g.Groups()) != 0 {
		t.Fatalf("Reset left %d groups", len(g.Groups()))
	}
	f2 := tp.Strings("b")
	grp := g.Group(2, f2, func(a, b tp.Fact) bool { return true })
	if len(grp.Vals) != 0 {
		t.Fatalf("new group after Reset carries stale values: %v", grp.Vals)
	}
	if g.Find(1, f1, func(a, b tp.Fact) bool { return true }) >= 0 {
		t.Fatal("Reset did not clear the hash buckets")
	}
}
