// Package align implements the Temporal Alignment (TA) baseline the paper
// compares against: the approach of Dignös, Böhlen, Gamper and Jensen
// ("Extending the Kernel of a Relational DBMS with Comprehensive Support
// for Sequenced Temporal Queries", TODS 41(4), 2016), adapted to
// temporal-probabilistic joins with negation as described in the paper's
// Section IV.
//
// TA reduces a temporal join to a conventional join over *aligned* inputs:
//
//  1. every tuple of the outer relation is split (replicated) at the
//     starting and ending points of the matching tuples of the inner
//     relation — one conventional join;
//  2. a second conventional join matches each fragment with the tuples
//     covering it, producing pairings, negated fragments (λr ∧ ¬∨λs) and
//     unmatched fragments;
//  3. joins with negation additionally require a second sub-query for the
//     negated part, and a union that eliminates the unmatched fragments
//     computed by both sub-queries.
//
// The structural redundancies relative to the paper's NJ approach are kept
// deliberately, because they are precisely what the evaluation measures:
// tuple replication in step 1, the per-fragment cover computation of
// step 2, re-computation of both joins' *output* by the second sub-query
// in step 3, and the duplicate-eliminating union. Config's NestedLoop flag
// mirrors the plan PostgreSQL's optimizer chose for TA in the paper's
// experiments (a nested loop for r ⟕_{θo∧θ} s); hash partitioning can be
// enabled for ablations.
//
// Since the batched-substrate refactor the hash path runs on the same
// allocation-lean machinery as internal/core's NJ pipeline: the inner
// relation is hash-partitioned once per join by its interned equi key
// (tp.KeyGroups over tp.EquiTheta.SKeyHash), and each key group is
// compiled into an endpoint event list — the group's sorted unique
// interval endpoints plus, per elementary segment between consecutive
// endpoints, the covering tuples in one flat arena. Both conventional
// joins of an alignment pass then stream off that index (split points by
// binary search, covers as borrowed arena slices), and the index is built
// once per join direction and reused across both alignment passes of an
// outer join and both sub-queries of a negation join. What stays per pass
// is exactly what the paper measures — every pass re-enumerates its
// fragments, re-emits the unmatched rows, and the union re-deduplicates
// them; what is gone is the incidental churn (per-tuple sort, per-fragment
// cover allocations, per-probe rescans). The pre-refactor implementation
// is retained as ScalarAlign (scalar.go) and the two are property-tested
// byte-identical; the nested-loop plan and non-equi θ still execute the
// scalar path, whose full rescans are the measured cost.
//
// ParallelJoin (parallel.go) is the partitioned-parallel TA executor
// (engine strategy "pta"): the PNJ parallelism model applied to the
// alignment baseline.
//
// The produced relations are point-wise equal to internal/core's results
// (property-tested), differing only in how pairings are fragmented.
package align

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"
	"unsafe"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/mem"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// Config controls the physical behaviour of the baseline.
type Config struct {
	// NestedLoop forces nested-loop evaluation of the conventional joins,
	// matching the plan the PostgreSQL optimizer selected for TA in the
	// paper's evaluation. When false, equi conditions are hash-partitioned.
	NestedLoop bool
}

// Stats accounts one TA join for EXPLAIN ANALYZE: how many aligned
// fragments the alignment passes produced and how many times the
// alignment (both conventional joins) ran — joins with negation re-run it
// per sub-query, which is exactly the redundancy the paper measures.
// Under the parallel executor (ParallelJoin) Workers and Partitions
// additionally record the partitioning, and the other counters aggregate
// over all partitions.
type Stats struct {
	// Fragments is the total fragment count across alignment passes.
	Fragments int64
	// AlignPasses is how many times the two conventional joins ran. The
	// streaming path (stream.go) merges both sub-queries of a negation
	// join into one fused drain, so an indexed left outer join reports 1
	// where the reference reports 2.
	AlignPasses int64
	// Rows is the output row count before the duplicate-eliminating
	// union (the rows actually materialized).
	Rows int64
	// DupAvoided counts unmatched fragments whose duplicate second
	// materialization the streaming union killed at the merge frontier —
	// rows the reference path materializes, sorts and then eliminates.
	DupAvoided int64
	// ProbBatches is how many probability batches the batched evaluation
	// tail served; MemoHits how many sub-lineages it answered from the
	// shared memo instead of re-evaluating. Both are zero on the scalar
	// reference path.
	ProbBatches int64
	MemoHits    int64
	// Workers is the effective worker count of a ParallelJoin (0 for the
	// sequential baseline).
	Workers int64
	// Partitions is the partition count of a ParallelJoin.
	Partitions int64
}

// alignCancelCheck is how many outer tuples an alignment pass processes
// between context checks. The per-tuple work of the two conventional
// joins dwarfs the (atomic-load) check, so cancellation bites within a
// few tuples' worth of work without showing up in profiles.
const alignCancelCheck = 64

// drainCancelWork bounds the work (fragments plus cover entries plus
// candidate scans) done between context checks *inside* one outer tuple's
// fragment drain. The per-64-tuples check alone is not enough: one outer
// tuple against a single huge key group drains λ·fragments rows before
// the next tuple boundary, so a pathological one-key relation would
// otherwise run a cancelled alignment to completion.
const drainCancelWork = 4096

// Fragment is one aligned piece of an outer tuple together with the inner
// tuples covering it. It corresponds to one replicated tuple of the TODS
// normalize/align step.
type Fragment struct {
	RID   int               // outer tuple index
	T     interval.Interval // aligned subinterval
	Cover []int             // indexes of matching inner tuples covering T
}

// emitFunc receives one aligned fragment: the outer tuple index, the
// fragment interval and the covering inner tuple indexes. The cover slice
// is borrowed — valid only until emit returns.
type emitFunc func(ri int, t interval.Interval, cover []int32) error

// aligner runs the two conventional joins of one alignment direction,
// streaming every fragment to emit in outer-tuple order. A non-nil error
// from emit (or from the query context) aborts the drain. release returns
// pooled buffers; the aligner must not be used afterwards. cheapCount
// reports whether an extra counting drain is nearly free (the indexed
// pipeline) or re-runs the full conventional joins (the nested-loop
// reference, where an extra pass would inflate the measured plan by half).
type aligner interface {
	drain(ctx context.Context, r *tp.Relation, emit emitFunc) error
	cheapCount() bool
	release()
}

// newAligner builds the probe-side index for one join direction: the
// indexed event-list pipeline for hash-partitionable conditions, the
// scalar reference for the nested-loop plan and non-equi θ.
func newAligner(s *tp.Relation, theta tp.Theta, cfg Config) aligner {
	if eq, ok := theta.(tp.EquiTheta); ok && !cfg.NestedLoop {
		return newIndexedAligner(s, eq)
	}
	return newScalarAligner(s, theta, cfg)
}

// groupMeta locates one key group's compiled event list inside the
// indexedAligner's flat arenas.
type groupMeta struct {
	bLo int32 // start of the group's bounds span
	bN  int32 // number of bounds (segments = bN-1)
	oLo int32 // start of the group's bN segment offsets in segOff
}

// indexedAligner is the batched-substrate alignment pipeline for one join
// direction (inner relation s under an equi θ). Building it costs one
// pass to hash-group s by its interned key plus, per group, an endpoint
// sort and a counting-sort of the segment covers into flat arenas;
// draining an outer relation against it is then output-linear — split
// points by binary search into the group's bounds, covers as borrowed
// arena slices — with no per-tuple or per-fragment allocations. One
// instance serves every alignment pass of a join (sub-queries A and B
// re-drain it; the re-enumeration is the measured redundancy, the index
// reuse is not).
type indexedAligner struct {
	s      *tp.Relation
	eq     tp.EquiTheta
	groups *tp.KeyGroups[int32]
	gmeta  []groupMeta
	bounds []interval.Time // per group: sorted unique interval endpoints
	segOff []int32         // per group: bN offsets into cover (segment j spans segOff[j]..segOff[j+1])
	cover  []int32         // per segment: covering tuple indexes, ascending

	// build scratch, reused across groups
	scratch []interval.Time
	diff    []int32
	cur     []int32
	built   bool

	// fallback replaces the index when building it would be pathological
	// (see maxCoverArena): the scalar reference computes the same
	// fragments in O(n) extra memory.
	fallback *scalarAligner
}

// maxCoverArena bounds the cover arena (entries): the per-segment covers
// total Σ active ≈ the overlapping same-key pairs, which a skewed one-key
// relation makes quadratic — unbounded, the arena would exhaust memory
// (and overflow its int32 offsets) where the scalar reference needs only
// O(n) extra space. Past the bound the aligner falls back to the scalar
// path for the whole join; it is a var so tests can exercise the
// fallback cheaply.
var maxCoverArena = int64(1) << 26

// alignerPool recycles indexedAligner arenas across joins (a query's
// outer join builds one per direction; the pool makes repeated queries
// against catalog relations allocation-lean). Oversized arenas are
// dropped on release so a one-off huge join does not pin its memory.
var alignerPool = sync.Pool{New: func() any {
	return &indexedAligner{groups: tp.NewKeyGroups[int32]()}
}}

// poolArenaCap bounds the cover-arena capacity (entries) an aligner may
// carry back into the pool.
const poolArenaCap = 1 << 20

func newIndexedAligner(s *tp.Relation, eq tp.EquiTheta) *indexedAligner {
	ix := alignerPool.Get().(*indexedAligner)
	ix.s, ix.eq = s, eq
	ix.groups.Reset()
	ix.gmeta = ix.gmeta[:0]
	ix.bounds = ix.bounds[:0]
	ix.segOff = ix.segOff[:0]
	ix.cover = ix.cover[:0]

	// Hash-group the inner relation by its interned equi key. Tuples with
	// NULL key columns match nothing and never cover anything; empty
	// intervals can neither split nor cover. Both are excluded here, which
	// is exactly how the scalar reference's overlap/containment checks
	// treat them.
	for i := range s.Tuples {
		t := &s.Tuples[i]
		if t.T.Empty() {
			continue
		}
		h, ok := eq.SKeyHash(t.Fact)
		if !ok {
			continue
		}
		g := ix.groups.Group(h, t.Fact, eq.SKeyEqual)
		g.Vals = append(g.Vals, int32(i))
	}
	return ix
}

func (ix *indexedAligner) cheapCount() bool { return true }

func (ix *indexedAligner) release() {
	ix.s = nil
	ix.built = false
	ix.fallback = nil
	if cap(ix.cover) > poolArenaCap {
		return // drop oversized arenas instead of pinning them in the pool
	}
	alignerPool.Put(ix)
}

// build compiles every key group's endpoint event list. It is separated
// from construction so the (potentially large) arena build observes the
// query context: the cover arena scales with the overlapping same-key
// pairs, which a pathological one-key relation makes quadratic — past
// maxCoverArena the aligner switches to the scalar fallback instead.
func (ix *indexedAligner) build(ctx context.Context) error {
	if ix.built {
		return nil
	}
	groups := ix.groups.Groups()
	ix.gmeta = slices.Grow(ix.gmeta, len(groups))
	gauge := mem.FromContext(ctx)
	work := 0
	for gi := range groups {
		vals := groups[gi].Vals

		// Sorted unique endpoints of the group's tuples.
		ix.scratch = ix.scratch[:0]
		for _, si := range vals {
			t := ix.s.Tuples[si].T
			ix.scratch = append(ix.scratch, t.Start, t.End)
		}
		slices.Sort(ix.scratch)
		bounds := dedupTimes(ix.scratch) // defined in scalar.go, shared
		m := groupMeta{bLo: int32(len(ix.bounds)), bN: int32(len(bounds)), oLo: int32(len(ix.segOff))}
		ix.bounds = append(ix.bounds, bounds...)
		segs := int(m.bN) - 1

		// Counting pass: per elementary segment, how many tuples are
		// active (difference array over the tuples' segment spans).
		// Reuse the scratch in place — no per-group temporaries. The
		// 64-bit span total guards the arena: the per-segment covers sum
		// to the overlapping same-key pairs, which a skewed one-key
		// relation makes quadratic — past maxCoverArena (or anywhere near
		// the arenas' int32 offsets) the whole join falls back to the
		// scalar path, which computes the same fragments in O(n) extra
		// memory.
		ix.diff = slices.Grow(ix.diff[:0], segs+1)[:segs+1]
		clear(ix.diff)
		b := ix.bounds[m.bLo : m.bLo+m.bN]
		spanTotal := int64(len(ix.cover))
		for _, si := range vals {
			t := ix.s.Tuples[si].T
			a, _ := slices.BinarySearch(b, t.Start)
			e, _ := slices.BinarySearch(b, t.End)
			ix.diff[a]++
			ix.diff[e]--
			spanTotal += int64(e - a)
		}
		if spanTotal > maxCoverArena {
			ix.fallback = newScalarAligner(ix.s, ix.eq, Config{})
			ix.bounds = ix.bounds[:0]
			ix.segOff = ix.segOff[:0]
			ix.cover = ix.cover[:0]
			ix.gmeta = ix.gmeta[:0]
			ix.built = true
			return nil
		}
		// Prefix-sum into cover offsets (absolute into the arena).
		off := int32(len(ix.cover))
		run := int32(0)
		ix.cur = ix.cur[:0]
		for j := 0; j < segs; j++ {
			ix.segOff = append(ix.segOff, off)
			ix.cur = append(ix.cur, off)
			run += ix.diff[j]
			off += run
		}
		ix.segOff = append(ix.segOff, off)
		// Fill pass: scatter each tuple into its segments. Iterating vals
		// in ascending tuple order keeps every segment's cover sorted —
		// the order the scalar reference's candidate scan produces. The
		// arena extension needs no zeroing: the cursors write every slot
		// of the new span exactly once. The growth is the aligner's
		// dominant allocation (quadratic on skewed keys), so it is where
		// the per-query memory budget bites first.
		if err := gauge.Charge(int64(int(off)-len(ix.cover)) * int64(unsafe.Sizeof(ix.cover[0]))); err != nil {
			return err
		}
		ix.cover = slices.Grow(ix.cover, int(off)-len(ix.cover))[:off]
		for _, si := range vals {
			t := ix.s.Tuples[si].T
			a, _ := slices.BinarySearch(b, t.Start)
			e, _ := slices.BinarySearch(b, t.End)
			for j := a; j < e; j++ {
				ix.cover[ix.cur[j]] = si
				ix.cur[j]++
			}
			if work += e - a + 1; work >= drainCancelWork {
				work = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		ix.gmeta = append(ix.gmeta, m)
	}
	ix.built = true
	return nil
}

func (ix *indexedAligner) drain(ctx context.Context, r *tp.Relation, emit emitFunc) error {
	if err := ix.build(ctx); err != nil {
		return err
	}
	if ix.fallback != nil {
		return ix.fallback.drain(ctx, r, emit)
	}
	work := 0
	for ri := range r.Tuples {
		if ri%alignCancelCheck == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rt := &r.Tuples[ri]
		if rt.T.Empty() {
			continue // no fragments, matching the scalar reference
		}
		var m groupMeta
		found := false
		if h, ok := ix.eq.RKeyHash(rt.Fact); ok {
			gi := ix.groups.Find(h, rt.Fact, func(group, probe tp.Fact) bool {
				return ix.eq.KeyMatch(probe, group)
			})
			if gi >= 0 {
				m = ix.gmeta[gi]
				found = true
			}
		}
		if !found {
			if err := emit(ri, rt.T, nil); err != nil {
				return err
			}
			continue
		}

		// Fragment boundaries: the group endpoints strictly inside the
		// tuple's interval (all of them belong to overlapping, matching
		// tuples — an endpoint inside (start,end) implies overlap, and
		// group membership implies θ). Each fragment lies within one
		// elementary segment of the group's endpoint partition, so its
		// cover is that segment's precomputed active list.
		b := ix.bounds[m.bLo : m.bLo+m.bN]
		lo := sort.Search(len(b), func(i int) bool { return b[i] > rt.T.Start })
		p := rt.T.Start
		seg := lo - 1
		for k := lo; k < len(b) && b[k] < rt.T.End; k++ {
			cov := ix.segCover(m, seg)
			if err := emit(ri, interval.Interval{Start: p, End: b[k]}, cov); err != nil {
				return err
			}
			if work += len(cov) + 1; work >= drainCancelWork {
				work = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			p = b[k]
			seg = k
		}
		cov := ix.segCover(m, seg)
		if err := emit(ri, interval.Interval{Start: p, End: rt.T.End}, cov); err != nil {
			return err
		}
		if work += len(cov) + 1; work >= drainCancelWork {
			work = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// segCover returns the covering tuples of elementary segment seg of the
// group, nil when the fragment lies outside the group's endpoint range.
func (ix *indexedAligner) segCover(m groupMeta, seg int) []int32 {
	if seg < 0 || seg >= int(m.bN)-1 {
		return nil
	}
	return ix.cover[ix.segOff[m.oLo+int32(seg)]:ix.segOff[m.oLo+int32(seg)+1]]
}

// materializeFragments drains al over r into a Fragment slice (the
// compatibility shape of Align/ScalarAlign; the join paths stream
// instead).
func materializeFragments(al aligner, r *tp.Relation) []Fragment {
	var out []Fragment
	_ = al.drain(context.Background(), r, func(ri int, t interval.Interval, cover []int32) error {
		f := Fragment{RID: ri, T: t}
		if len(cover) > 0 {
			f.Cover = make([]int, len(cover))
			for i, si := range cover {
				f.Cover[i] = int(si)
			}
		}
		out = append(out, f)
		return nil
	})
	return out
}

// Align performs the two conventional joins of the TA reduction for one
// direction: it splits every outer tuple at the boundaries of its matching
// inner tuples (join 1) and computes, for every fragment, the covering
// matching inner tuples (join 2). The fragments of each outer tuple
// partition its validity interval. Align materializes the fragments for
// inspection; the join paths stream them instead.
func Align(r, s *tp.Relation, theta tp.Theta, cfg Config) []Fragment {
	al := newAligner(s, theta, cfg)
	defer al.release()
	return materializeFragments(al, r)
}

// row is one not-yet-deduplicated output tuple.
type row struct {
	fact tp.Fact
	lam  *lineage.Expr
	t    interval.Interval
	pair bool // true for pairing rows (both sides present)
}

// outerRowsStream is sub-query A of the TA reduction: the aligned outer
// join. It appends the pairing fragments and the unmatched fragments to
// rows.
func outerRowsStream(ctx context.Context, al aligner, r, s *tp.Relation, cfg Config, mirror bool, stats *Stats, rows []row) ([]row, error) {
	frags := int64(0)
	err := al.drain(ctx, r, func(ri int, t interval.Interval, cover []int32) error {
		frags++
		rt := &r.Tuples[ri]
		if len(cover) == 0 {
			fact := rt.Fact.Concat(tp.Nulls(s.Arity()))
			if mirror {
				fact = tp.Nulls(s.Arity()).Concat(rt.Fact)
			}
			rows = append(rows, row{fact: fact, lam: rt.Lineage, t: t})
			return nil
		}
		for _, si := range cover {
			st := &s.Tuples[si]
			fact := rt.Fact.Concat(st.Fact)
			if mirror {
				fact = st.Fact.Concat(rt.Fact)
			}
			rows = append(rows, row{fact: fact, lam: lineage.And(rt.Lineage, st.Lineage), t: t, pair: true})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if stats != nil {
		stats.AlignPasses++
		stats.Fragments += frags
	}
	return rows, nil
}

// negRowsStream is sub-query B of the TA reduction: the negated part. It
// re-drains the alignment (re-enumerating every fragment) and appends the
// negated fragments — and, unavoidably, the unmatched fragments a second
// time; the final union removes those duplicates.
func negRowsStream(ctx context.Context, al aligner, r, s *tp.Relation, cfg Config, mirror, antiSchema bool, stats *Stats, rows []row) ([]row, error) {
	frags := int64(0)
	var parts []*lineage.Expr
	err := al.drain(ctx, r, func(ri int, t interval.Interval, cover []int32) error {
		frags++
		rt := &r.Tuples[ri]
		fact := rt.Fact.Concat(tp.Nulls(s.Arity()))
		switch {
		case antiSchema:
			fact = rt.Fact
		case mirror:
			fact = tp.Nulls(s.Arity()).Concat(rt.Fact)
		}
		if len(cover) == 0 {
			rows = append(rows, row{fact: fact, lam: rt.Lineage, t: t})
			return nil
		}
		parts = parts[:0]
		for _, si := range cover {
			parts = append(parts, s.Tuples[si].Lineage)
		}
		rows = append(rows, row{fact: fact, lam: lineage.AndNot(rt.Lineage, lineage.Or(parts...)), t: t})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if stats != nil {
		stats.AlignPasses++
		stats.Fragments += frags
	}
	return rows, nil
}

// unionDistinct implements the duplicate-eliminating union the paper
// describes: the rows are sorted and equal (fact, interval, lineage) rows
// are collapsed. This sort-based pass is part of TA's measured cost — but
// it runs on the batched substrate's terms: a stable sort over an index
// permutation (generic, no reflection, no fat-struct swaps) with the same
// (fact, interval, lineage-hash) order and input-order tie-breaking the
// reference sort.SliceStable produced, so the output is byte-identical.
func unionDistinct(rows []row) []row {
	if len(rows) < 2 {
		return rows
	}
	idx := make([]int32, len(rows))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(i, j int32) int {
		a, b := &rows[i], &rows[j]
		if c := a.fact.Compare(b.fact); c != 0 {
			return c
		}
		if c := a.t.Compare(b.t); c != 0 {
			return c
		}
		ha, hb := a.lam.Hash(), b.lam.Hash()
		switch {
		case ha < hb:
			return -1
		case ha > hb:
			return 1
		default:
			// The input index as the final tiebreaker makes the unstable
			// sort reproduce the reference's stable order exactly.
			return int(i) - int(j)
		}
	})
	out := make([]row, 0, len(rows))
	for n, i := range idx {
		rw := &rows[i]
		if n > 0 {
			prev := &out[len(out)-1]
			if prev.fact.Equal(rw.fact) && prev.t.Equal(rw.t) && prev.lam.Equal(rw.lam) {
				continue
			}
		}
		out = append(out, *rw)
	}
	return out
}

func finish(name string, attrs []string, probs prob.Probs, rows []row) *tp.Relation {
	rel := &tp.Relation{Name: name, Attrs: attrs, Probs: probs}
	ev := prob.NewEvaluator(probs)
	rel.Tuples = make([]tp.Tuple, 0, len(rows))
	for _, rw := range rows {
		rel.Tuples = append(rel.Tuples, tp.Tuple{
			Fact: rw.fact, Lineage: rw.lam, T: rw.t, Prob: ev.Prob(rw.lam),
		})
	}
	return rel
}

func joinAttrs(r, s *tp.Relation) []string {
	attrs := make([]string, 0, len(r.Attrs)+len(s.Attrs))
	attrs = append(attrs, r.Attrs...)
	attrs = append(attrs, s.Attrs...)
	return attrs
}

// InnerJoin computes r ⋈Tp s with the alignment strategy: only the
// pairing rows of the aligned outer join.
func InnerJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := innerJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func innerJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	al := newAligner(s, theta, cfg)
	defer al.release()
	if al.cheapCount() {
		return streamInner(ctx, al, r, s, stats)
	}
	outer, err := outerRowsStream(ctx, al, r, s, cfg, false, stats, nil)
	if err != nil {
		return nil, err
	}
	rows := outer[:0]
	for _, rw := range outer {
		if rw.pair {
			rows = append(rows, rw)
		}
	}
	rows = dedup(rows, stats)
	return finish(fmt.Sprintf("%s_join_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// AntiJoin computes r ▷Tp s with the alignment strategy: only sub-query B,
// over r's schema.
func AntiJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := antiJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func antiJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	al := newAligner(s, theta, cfg)
	defer al.release()
	if al.cheapCount() {
		return streamAnti(ctx, al, r, s, stats)
	}
	neg, err := negRowsStream(ctx, al, r, s, cfg, false, true, stats, nil)
	if err != nil {
		return nil, err
	}
	rows := dedup(neg, stats)
	return finish(fmt.Sprintf("%s_anti_%s", r.Name, s.Name),
		append([]string(nil), r.Attrs...), tp.MergeProbs(r, s), rows), nil
}

// LeftOuterJoin computes r ⟕Tp s with the alignment strategy: sub-queries
// A and B, both re-enumerating the aligned fragments, combined by the
// duplicate-eliminating union.
func LeftOuterJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := leftOuterJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func leftOuterJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	al := newAligner(s, theta, cfg)
	defer al.release()
	if al.cheapCount() {
		return streamOuter(ctx, al, r, s, false,
			fmt.Sprintf("%s_louter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), stats)
	}
	rows, err := outerRowsStream(ctx, al, r, s, cfg, false, stats, nil)
	if err != nil {
		return nil, err
	}
	rows, err = negRowsStream(ctx, al, r, s, cfg, false, false, stats, rows)
	if err != nil {
		return nil, err
	}
	rows = dedup(rows, stats)
	return finish(fmt.Sprintf("%s_louter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// RightOuterJoin computes r ⟖Tp s: the mirrored left outer join.
func RightOuterJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := rightOuterJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func rightOuterJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	swapped := tp.Swap(theta)
	al := newAligner(r, swapped, cfg)
	defer al.release()
	if al.cheapCount() {
		return streamOuter(ctx, al, s, r, true,
			fmt.Sprintf("%s_router_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), stats)
	}
	rows, err := outerRowsStream(ctx, al, s, r, cfg, true, stats, nil)
	if err != nil {
		return nil, err
	}
	rows, err = negRowsStream(ctx, al, s, r, cfg, true, false, stats, rows)
	if err != nil {
		return nil, err
	}
	rows = dedup(rows, stats)
	return finish(fmt.Sprintf("%s_router_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// FullOuterJoin computes r ⟗Tp s: pairings from the forward direction,
// negated/unmatched fragments from both, unioned with dedup.
func FullOuterJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := fullOuterJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func fullOuterJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	fwd := newAligner(s, theta, cfg)
	defer fwd.release()
	mir := newAligner(r, tp.Swap(theta), cfg)
	defer mir.release()
	if fwd.cheapCount() && mir.cheapCount() {
		return streamFull(ctx, fwd, mir, r, s, stats)
	}
	rows, err := outerRowsStream(ctx, fwd, r, s, cfg, false, stats, nil)
	if err != nil {
		return nil, err
	}
	rows, err = negRowsStream(ctx, fwd, r, s, cfg, false, false, stats, rows)
	if err != nil {
		return nil, err
	}
	rows, err = negRowsStream(ctx, mir, s, r, cfg, true, false, stats, rows)
	if err != nil {
		return nil, err
	}
	rows = dedup(rows, stats)
	return finish(fmt.Sprintf("%s_fouter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// dedup records the pre-union row count and applies the
// duplicate-eliminating union.
func dedup(rows []row, stats *Stats) []row {
	if stats != nil {
		stats.Rows += int64(len(rows))
	}
	return unionDistinct(rows)
}

// CountWUO runs sub-query A (the aligned outer join) and returns the
// number of produced rows without forming output tuples or probabilities.
// It is the TA counterpart of draining core.LAWAU, used by the Fig. 5
// benchmark: TA pays both conventional joins of the alignment step where
// NJ pays one.
func CountWUO(r, s *tp.Relation, theta tp.Theta, cfg Config) int {
	al := newAligner(s, theta, cfg)
	defer al.release()
	n := 0
	_ = al.drain(context.Background(), r, func(ri int, t interval.Interval, cover []int32) error {
		if len(cover) == 0 {
			n++
		} else {
			n += len(cover)
		}
		return nil
	})
	return n
}

// CountNegating runs sub-query B (the negated part) and returns the number
// of produced rows without forming output tuples. It is the TA counterpart
// of the LAWAN sweep, used by the Fig. 6 benchmark: TA re-enumerates the
// aligned fragments to derive the negated part.
func CountNegating(r, s *tp.Relation, theta tp.Theta, cfg Config) int {
	al := newAligner(s, theta, cfg)
	defer al.release()
	n := 0
	_ = al.drain(context.Background(), r, func(ri int, t interval.Interval, cover []int32) error {
		n++
		return nil
	})
	return n
}

// Join dispatches on the operator.
func Join(op tp.Op, r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := JoinContext(context.Background(), op, r, s, theta, cfg, nil)
	return out
}

// JoinContext is Join under a query context: the alignment passes (the
// blocking part of the baseline) observe ctx every alignCancelCheck outer
// tuples and every drainCancelWork units of work inside one tuple's
// fragment drain, so a per-query timeout or client disconnect aborts the
// materializing Open mid-alignment instead of running both conventional
// joins to completion — even when all the work sits in one key group. On
// cancellation the result is nil and the error is ctx.Err(). A non-nil
// stats additionally accounts fragments, alignment passes and pre-union
// rows for EXPLAIN ANALYZE.
func JoinContext(ctx context.Context, op tp.Op, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	switch op {
	case tp.OpInner:
		return innerJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpAnti:
		return antiJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpLeft:
		return leftOuterJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpRight:
		return rightOuterJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpFull:
		return fullOuterJoinCtx(ctx, r, s, theta, cfg, stats)
	default:
		panic(fmt.Sprintf("align: unknown operator %v", op))
	}
}
