// Package align implements the Temporal Alignment (TA) baseline the paper
// compares against: the approach of Dignös, Böhlen, Gamper and Jensen
// ("Extending the Kernel of a Relational DBMS with Comprehensive Support
// for Sequenced Temporal Queries", TODS 41(4), 2016), adapted to
// temporal-probabilistic joins with negation as described in the paper's
// Section IV.
//
// TA reduces a temporal join to a conventional join over *aligned* inputs:
//
//  1. every tuple of the outer relation is split (replicated) at the
//     starting and ending points of the matching tuples of the inner
//     relation — one conventional join;
//  2. a second conventional join matches each fragment with the tuples
//     covering it, producing pairings, negated fragments (λr ∧ ¬∨λs) and
//     unmatched fragments;
//  3. joins with negation additionally require a second sub-query for the
//     negated part, and a union that eliminates the unmatched fragments
//     computed by both sub-queries.
//
// The structural redundancies relative to the paper's NJ approach are kept
// deliberately, because they are precisely what the evaluation measures:
// tuple replication in step 1, a second execution of the expensive
// conventional join in step 2, re-computation of both joins by the second
// sub-query in step 3, and the duplicate-eliminating union. Config's
// NestedLoop flag mirrors the plan PostgreSQL's optimizer chose for TA in
// the paper's experiments (a nested loop for r ⟕_{θo∧θ} s); hash
// partitioning can be enabled for ablations.
//
// The produced relations are point-wise equal to internal/core's results
// (property-tested), differing only in how pairings are fragmented.
package align

import (
	"context"
	"fmt"
	"sort"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// Config controls the physical behaviour of the baseline.
type Config struct {
	// NestedLoop forces nested-loop evaluation of the conventional joins,
	// matching the plan the PostgreSQL optimizer selected for TA in the
	// paper's evaluation. When false, equi conditions are hash-partitioned.
	NestedLoop bool
}

// Stats accounts one TA join for EXPLAIN ANALYZE: how many aligned
// fragments the alignment passes produced and how many times the
// alignment (both conventional joins) ran — joins with negation re-run it
// per sub-query, which is exactly the redundancy the paper measures.
type Stats struct {
	// Fragments is the total fragment count across alignment passes.
	Fragments int64
	// AlignPasses is how many times the two conventional joins ran.
	AlignPasses int64
	// Rows is the output row count before the duplicate-eliminating
	// union.
	Rows int64
}

// alignCancelCheck is how many outer tuples an alignment pass processes
// between context checks. The per-tuple work of the two conventional
// joins dwarfs the (atomic-load) check, so cancellation bites within a
// few tuples' worth of work without showing up in profiles.
const alignCancelCheck = 64

// Fragment is one aligned piece of an outer tuple together with the inner
// tuples covering it. It corresponds to one replicated tuple of the TODS
// normalize/align step.
type Fragment struct {
	RID   int               // outer tuple index
	T     interval.Interval // aligned subinterval
	Cover []int             // indexes of matching inner tuples covering T
}

// indexedInner is the probe-side access path shared by both joins: either
// hashed equi-key groups (tp.KeyGroups over the interned keys) or a plain
// slice (nested loop).
type indexedInner struct {
	s       *tp.Relation
	eq      tp.EquiTheta
	hasEq   bool
	buckets *tp.KeyGroups[int]
	all     []int // identity permutation for the nested-loop path
}

func buildInner(s *tp.Relation, theta tp.Theta, cfg Config) *indexedInner {
	ix := &indexedInner{s: s}
	if eq, ok := theta.(tp.EquiTheta); ok && !cfg.NestedLoop {
		ix.eq = eq
		ix.hasEq = true
		ix.buckets = tp.NewKeyGroups[int]()
		for i := range s.Tuples {
			h, ok := eq.SKeyHash(s.Tuples[i].Fact)
			if !ok {
				continue
			}
			g := ix.buckets.Group(h, s.Tuples[i].Fact, eq.SKeyEqual)
			g.Vals = append(g.Vals, i)
		}
		return ix
	}
	ix.all = make([]int, len(s.Tuples))
	for i := range ix.all {
		ix.all[i] = i
	}
	return ix
}

// candidates returns the inner tuple indexes that can possibly match the
// fact (all of them under nested loop).
func (ix *indexedInner) candidates(f tp.Fact) []int {
	if ix.hasEq {
		h, ok := ix.eq.RKeyHash(f)
		if !ok {
			return nil
		}
		// Group facts are s facts; compare s key columns against the
		// probe's r key columns.
		gi := ix.buckets.Find(h, f, func(group, probe tp.Fact) bool {
			return ix.eq.KeyMatch(probe, group)
		})
		if gi < 0 {
			return nil
		}
		return ix.buckets.Groups()[gi].Vals
	}
	return ix.all
}

// Align performs the two conventional joins of the TA reduction for one
// direction: it splits every outer tuple at the boundaries of its matching
// inner tuples (join 1) and computes, for every fragment, the covering
// matching inner tuples (join 2). The fragments of each outer tuple
// partition its validity interval.
func Align(r, s *tp.Relation, theta tp.Theta, cfg Config) []Fragment {
	out, _ := alignCtx(context.Background(), r, s, theta, cfg)
	return out
}

// alignCtx is Align under a query context: the outer loop observes ctx
// every alignCancelCheck tuples, so a timeout or disconnect aborts the
// blocking alignment mid-pass instead of running it to completion.
func alignCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config) ([]Fragment, error) {
	ix := buildInner(s, theta, cfg)
	var out []Fragment

	for ri := range r.Tuples {
		if ri%alignCancelCheck == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rt := &r.Tuples[ri]

		// Conventional join 1: collect the split points of the matching,
		// overlapping inner tuples. This is where TA replicates tuples.
		points := []interval.Time{rt.T.Start, rt.T.End}
		for _, si := range ix.candidates(rt.Fact) {
			st := &s.Tuples[si]
			if !st.T.Overlaps(rt.T) || !theta.Match(rt.Fact, st.Fact) {
				continue
			}
			if st.T.Start > rt.T.Start {
				points = append(points, st.T.Start)
			}
			if st.T.End < rt.T.End {
				points = append(points, st.T.End)
			}
		}
		sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
		points = dedupTimes(points)

		// Conventional join 2: re-probe the inner relation for every
		// fragment to find its covering tuples. TA pays this second join;
		// NJ derives the same information from the single overlap join.
		for i := 0; i+1 < len(points); i++ {
			frag := Fragment{RID: ri, T: interval.New(points[i], points[i+1])}
			for _, si := range ix.candidates(rt.Fact) {
				st := &s.Tuples[si]
				if st.T.ContainsInterval(frag.T) && theta.Match(rt.Fact, st.Fact) {
					frag.Cover = append(frag.Cover, si)
				}
			}
			out = append(out, frag)
		}
	}
	return out, nil
}

func dedupTimes(ts []interval.Time) []interval.Time {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// row is one not-yet-deduplicated output tuple.
type row struct {
	fact tp.Fact
	lam  *lineage.Expr
	t    interval.Interval
	pair bool // true for pairing rows (both sides present)
}

// outerRows is sub-query A of the TA reduction: the aligned outer join.
// It produces the pairing fragments and the unmatched fragments.
func outerRows(r, s *tp.Relation, theta tp.Theta, cfg Config, mirror bool) []row {
	rows, _ := outerRowsCtx(context.Background(), r, s, theta, cfg, mirror, nil)
	return rows
}

func outerRowsCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, mirror bool, stats *Stats) ([]row, error) {
	frags, err := alignCtx(ctx, r, s, theta, cfg)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		stats.AlignPasses++
		stats.Fragments += int64(len(frags))
	}
	var rows []row
	for _, f := range frags {
		rt := &r.Tuples[f.RID]
		if len(f.Cover) == 0 {
			fact := rt.Fact.Concat(tp.Nulls(s.Arity()))
			if mirror {
				fact = tp.Nulls(s.Arity()).Concat(rt.Fact)
			}
			rows = append(rows, row{fact: fact, lam: rt.Lineage, t: f.T})
			continue
		}
		for _, si := range f.Cover {
			st := &s.Tuples[si]
			fact := rt.Fact.Concat(st.Fact)
			if mirror {
				fact = st.Fact.Concat(rt.Fact)
			}
			rows = append(rows, row{fact: fact, lam: lineage.And(rt.Lineage, st.Lineage), t: f.T, pair: true})
		}
	}
	return rows, nil
}

// negRows is sub-query B of the TA reduction: the negated part. It aligns
// the inputs *again* (re-running both conventional joins) and produces the
// negated fragments — and, unavoidably, the unmatched fragments a second
// time; the final union removes those duplicates.
func negRows(r, s *tp.Relation, theta tp.Theta, cfg Config, mirror, antiSchema bool) []row {
	rows, _ := negRowsCtx(context.Background(), r, s, theta, cfg, mirror, antiSchema, nil)
	return rows
}

func negRowsCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, mirror, antiSchema bool, stats *Stats) ([]row, error) {
	frags, err := alignCtx(ctx, r, s, theta, cfg)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		stats.AlignPasses++
		stats.Fragments += int64(len(frags))
	}
	var rows []row
	for _, f := range frags {
		rt := &r.Tuples[f.RID]
		fact := rt.Fact.Concat(tp.Nulls(s.Arity()))
		switch {
		case antiSchema:
			fact = rt.Fact
		case mirror:
			fact = tp.Nulls(s.Arity()).Concat(rt.Fact)
		}
		if len(f.Cover) == 0 {
			rows = append(rows, row{fact: fact, lam: rt.Lineage, t: f.T})
			continue
		}
		parts := make([]*lineage.Expr, len(f.Cover))
		for i, si := range f.Cover {
			parts[i] = s.Tuples[si].Lineage
		}
		rows = append(rows, row{fact: fact, lam: lineage.AndNot(rt.Lineage, lineage.Or(parts...)), t: f.T})
	}
	return rows, nil
}

// unionDistinct implements the duplicate-eliminating union the paper
// describes: the rows are sorted and equal (fact, interval, lineage) rows
// are collapsed. This sort-based pass is part of TA's measured cost.
func unionDistinct(rows []row) []row {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if c := a.fact.Compare(b.fact); c != 0 {
			return c < 0
		}
		if c := a.t.Compare(b.t); c != 0 {
			return c < 0
		}
		return a.lam.Hash() < b.lam.Hash()
	})
	out := rows[:0]
	for i, rw := range rows {
		if i > 0 {
			prev := out[len(out)-1]
			if prev.fact.Equal(rw.fact) && prev.t.Equal(rw.t) && prev.lam.Equal(rw.lam) {
				continue
			}
		}
		out = append(out, rw)
	}
	return out
}

func finish(name string, attrs []string, probs prob.Probs, rows []row) *tp.Relation {
	rel := &tp.Relation{Name: name, Attrs: attrs, Probs: probs}
	ev := prob.NewEvaluator(probs)
	for _, rw := range rows {
		rel.Tuples = append(rel.Tuples, tp.Tuple{
			Fact: rw.fact, Lineage: rw.lam, T: rw.t, Prob: ev.Prob(rw.lam),
		})
	}
	return rel
}

func joinAttrs(r, s *tp.Relation) []string {
	attrs := make([]string, 0, len(r.Attrs)+len(s.Attrs))
	attrs = append(attrs, r.Attrs...)
	attrs = append(attrs, s.Attrs...)
	return attrs
}

// InnerJoin computes r ⋈Tp s with the alignment strategy: only the
// pairing rows of the aligned outer join.
func InnerJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := innerJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func innerJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	outer, err := outerRowsCtx(ctx, r, s, theta, cfg, false, stats)
	if err != nil {
		return nil, err
	}
	var rows []row
	for _, rw := range outer {
		if rw.pair {
			rows = append(rows, rw)
		}
	}
	rows = dedup(rows, stats)
	return finish(fmt.Sprintf("%s_join_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// AntiJoin computes r ▷Tp s with the alignment strategy: only sub-query B,
// over r's schema.
func AntiJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := antiJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func antiJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	neg, err := negRowsCtx(ctx, r, s, theta, cfg, false, true, stats)
	if err != nil {
		return nil, err
	}
	rows := dedup(neg, stats)
	return finish(fmt.Sprintf("%s_anti_%s", r.Name, s.Name),
		append([]string(nil), r.Attrs...), tp.MergeProbs(r, s), rows), nil
}

// LeftOuterJoin computes r ⟕Tp s with the alignment strategy: sub-queries
// A and B, both re-running the conventional joins, combined by the
// duplicate-eliminating union.
func LeftOuterJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := leftOuterJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func leftOuterJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	rows, err := outerRowsCtx(ctx, r, s, theta, cfg, false, stats)
	if err != nil {
		return nil, err
	}
	neg, err := negRowsCtx(ctx, r, s, theta, cfg, false, false, stats)
	if err != nil {
		return nil, err
	}
	rows = dedup(append(rows, neg...), stats)
	return finish(fmt.Sprintf("%s_louter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// RightOuterJoin computes r ⟖Tp s: the mirrored left outer join.
func RightOuterJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := rightOuterJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func rightOuterJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	rows, err := outerRowsCtx(ctx, s, r, tp.Swap(theta), cfg, true, stats)
	if err != nil {
		return nil, err
	}
	neg, err := negRowsCtx(ctx, s, r, tp.Swap(theta), cfg, true, false, stats)
	if err != nil {
		return nil, err
	}
	rows = dedup(append(rows, neg...), stats)
	return finish(fmt.Sprintf("%s_router_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// FullOuterJoin computes r ⟗Tp s: pairings from the forward direction,
// negated/unmatched fragments from both, unioned with dedup.
func FullOuterJoin(r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := fullOuterJoinCtx(context.Background(), r, s, theta, cfg, nil)
	return out
}

func fullOuterJoinCtx(ctx context.Context, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	rows, err := outerRowsCtx(ctx, r, s, theta, cfg, false, stats)
	if err != nil {
		return nil, err
	}
	neg, err := negRowsCtx(ctx, r, s, theta, cfg, false, false, stats)
	if err != nil {
		return nil, err
	}
	rows = append(rows, neg...)
	neg, err = negRowsCtx(ctx, s, r, tp.Swap(theta), cfg, true, false, stats)
	if err != nil {
		return nil, err
	}
	rows = dedup(append(rows, neg...), stats)
	return finish(fmt.Sprintf("%s_fouter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), rows), nil
}

// dedup records the pre-union row count and applies the
// duplicate-eliminating union.
func dedup(rows []row, stats *Stats) []row {
	if stats != nil {
		stats.Rows += int64(len(rows))
	}
	return unionDistinct(rows)
}

// CountWUO runs sub-query A (the aligned outer join) and returns the
// number of produced rows without forming output tuples or probabilities.
// It is the TA counterpart of draining core.LAWAU, used by the Fig. 5
// benchmark: TA pays both conventional joins of the alignment step where
// NJ pays one.
func CountWUO(r, s *tp.Relation, theta tp.Theta, cfg Config) int {
	return len(outerRows(r, s, theta, cfg, false))
}

// CountNegating runs sub-query B (the negated part) and returns the number
// of produced rows without forming output tuples. It is the TA counterpart
// of the LAWAN sweep, used by the Fig. 6 benchmark: TA re-runs the two
// alignment joins to derive the negated fragments.
func CountNegating(r, s *tp.Relation, theta tp.Theta, cfg Config) int {
	return len(negRows(r, s, theta, cfg, false, false))
}

// Join dispatches on the operator.
func Join(op tp.Op, r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	out, _ := JoinContext(context.Background(), op, r, s, theta, cfg, nil)
	return out
}

// JoinContext is Join under a query context: the alignment passes (the
// blocking part of the baseline) observe ctx every alignCancelCheck outer
// tuples, so a per-query timeout or client disconnect aborts the
// materializing Open mid-alignment instead of running both conventional
// joins to completion. On cancellation the result is nil and the error is
// ctx.Err(). A non-nil stats additionally accounts fragments, alignment
// passes and pre-union rows for EXPLAIN ANALYZE.
func JoinContext(ctx context.Context, op tp.Op, r, s *tp.Relation, theta tp.Theta, cfg Config, stats *Stats) (*tp.Relation, error) {
	switch op {
	case tp.OpInner:
		return innerJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpAnti:
		return antiJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpLeft:
		return leftOuterJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpRight:
		return rightOuterJoinCtx(ctx, r, s, theta, cfg, stats)
	case tp.OpFull:
		return fullOuterJoinCtx(ctx, r, s, theta, cfg, stats)
	default:
		panic(fmt.Sprintf("align: unknown operator %v", op))
	}
}
