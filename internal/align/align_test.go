package align

import (
	"math/rand"
	"testing"

	"tpjoin/internal/core"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func paperA() *tp.Relation {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	return a
}

func paperB() *tp.Relation {
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	return b
}

var theta = tp.Equi(1, 1)

func TestAlignFragmentsPaperExample(t *testing.T) {
	a, b := paperA(), paperB()
	frags := Align(a, b, theta, Config{})
	// Ann [2,8) splits at 4, 5, 6 → [2,4) [4,5) [5,6) [6,8); Jim [7,10) stays whole.
	var ann, jim []Fragment
	for _, f := range frags {
		if f.RID == 0 {
			ann = append(ann, f)
		} else {
			jim = append(jim, f)
		}
	}
	if len(ann) != 4 {
		t.Fatalf("Ann fragments = %d, want 4: %v", len(ann), ann)
	}
	wantT := []interval.Interval{interval.New(2, 4), interval.New(4, 5), interval.New(5, 6), interval.New(6, 8)}
	wantCover := [][]int{nil, {2}, {1, 2}, {1}}
	for i, f := range ann {
		if !f.T.Equal(wantT[i]) {
			t.Errorf("fragment %d interval %v, want %v", i, f.T, wantT[i])
		}
		if len(f.Cover) != len(wantCover[i]) {
			t.Errorf("fragment %d cover %v, want %v", i, f.Cover, wantCover[i])
			continue
		}
		got := map[int]bool{}
		for _, c := range f.Cover {
			got[c] = true
		}
		for _, c := range wantCover[i] {
			if !got[c] {
				t.Errorf("fragment %d missing cover %d", i, c)
			}
		}
	}
	if len(jim) != 1 || !jim[0].T.Equal(interval.New(7, 10)) || len(jim[0].Cover) != 0 {
		t.Errorf("Jim fragment wrong: %v", jim)
	}
}

func TestFragmentsPartitionTupleInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		r := randRelation(rng, "r")
		s := randRelation(rng, "s")
		for _, cfg := range []Config{{}, {NestedLoop: true}} {
			frags := Align(r, s, tp.Equi(0, 0), cfg)
			byRID := make(map[int][]Fragment)
			for _, f := range frags {
				byRID[f.RID] = append(byRID[f.RID], f)
			}
			for ri := range r.Tuples {
				fs := byRID[ri]
				if len(fs) == 0 {
					t.Fatalf("trial %d: tuple %d has no fragments", trial, ri)
				}
				cur := r.Tuples[ri].T.Start
				for _, f := range fs {
					if f.T.Start != cur {
						t.Fatalf("trial %d: fragments not contiguous: %v", trial, fs)
					}
					cur = f.T.End
				}
				if cur != r.Tuples[ri].T.End {
					t.Fatalf("trial %d: fragments do not cover tuple: %v", trial, fs)
				}
			}
		}
	}
}

func TestLeftOuterMatchesReferencePaper(t *testing.T) {
	a, b := paperA(), paperB()
	for _, cfg := range []Config{{}, {NestedLoop: true}} {
		q := LeftOuterJoin(a, b, theta, cfg)
		pm, err := tp.Expand(q)
		if err != nil {
			t.Fatalf("cfg %+v: invalid result: %v\n%v", cfg, err, q)
		}
		ref := tp.RefJoin(tp.OpLeft, a, b, theta)
		if err := pm.EqualProb(ref, 1e-9); err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestDuplicateEliminationHappens(t *testing.T) {
	// Sub-queries A and B both produce the unmatched fragments; the raw
	// row count before union must exceed the deduplicated result.
	a, b := paperA(), paperB()
	raw := CountWUO(a, b, theta, Config{}) + CountNegating(a, b, theta, Config{})
	q := LeftOuterJoin(a, b, theta, Config{})
	if raw <= q.Len() {
		t.Errorf("expected duplicates before union: raw=%d result=%d", raw, q.Len())
	}
	// Specifically the two unmatched fragments (Ann [2,4), Jim [7,10)) are
	// duplicated: raw = result + 2.
	if raw != q.Len()+2 {
		t.Errorf("raw=%d result=%d, want difference of exactly 2", raw, q.Len())
	}
}

func TestAllOperatorsMatchCoreRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	eq := tp.Equi(0, 0)
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	for trial := 0; trial < 100; trial++ {
		r := randRelation(rng, "r")
		s := randRelation(rng, "s")
		op := ops[trial%len(ops)]
		cfg := Config{NestedLoop: trial%2 == 1}

		ta := Join(op, r, s, eq, cfg)
		taPM, err := tp.Expand(ta)
		if err != nil {
			t.Fatalf("trial %d %v: TA produced invalid result: %v\nr=%v\ns=%v\nta=%v",
				trial, op, err, r, s, ta)
		}
		nj := core.Join(op, r, s, eq)
		njPM, err := tp.Expand(nj)
		if err != nil {
			t.Fatalf("trial %d %v: NJ produced invalid result: %v", trial, op, err)
		}
		if err := taPM.EqualProb(njPM, 1e-9); err != nil {
			t.Fatalf("trial %d %v: TA and NJ disagree: %v\nr=%v\ns=%v\nta=%v\nnj=%v",
				trial, op, err, r, s, ta, nj)
		}
		ref := tp.RefJoin(op, r, s, eq)
		if err := taPM.EqualProb(ref, 1e-9); err != nil {
			t.Fatalf("trial %d %v: TA differs from reference: %v", trial, op, err)
		}
	}
}

func TestAntiJoinSchema(t *testing.T) {
	a, b := paperA(), paperB()
	q := AntiJoin(a, b, theta, Config{})
	if len(q.Attrs) != 2 {
		t.Errorf("anti join schema must be r's, got %v", q.Attrs)
	}
	for _, tu := range q.Tuples {
		if len(tu.Fact) != 2 {
			t.Errorf("anti join fact arity = %d", len(tu.Fact))
		}
	}
}

func TestJoinPanicsOnUnknownOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Join(tp.Op(42), paperA(), paperB(), theta, Config{})
}

func TestReplicationIsMeasurable(t *testing.T) {
	// TA replicates: fragment count strictly exceeds tuple count when
	// tuples partially overlap matching tuples.
	a, b := paperA(), paperB()
	frags := Align(a, b, theta, Config{})
	if len(frags) <= a.Len() {
		t.Errorf("expected replication: %d fragments for %d tuples", len(frags), a.Len())
	}
}

func randRelation(rng *rand.Rand, name string) *tp.Relation {
	keys := []string{"k1", "k2", "k3"}
	rel := tp.NewRelation(name, "K")
	type span struct{ s, e interval.Time }
	used := make(map[string][]span)
	n := rng.Intn(7)
	for i := 0; i < n; i++ {
		k := keys[rng.Intn(len(keys))]
		st := interval.Time(rng.Intn(18))
		e := st + 1 + interval.Time(rng.Intn(8))
		ok := true
		for _, u := range used[k] {
			if st < u.e && u.s < e {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		used[k] = append(used[k], span{st, e})
		rel.Append(tp.Strings(k), interval.New(st, e), 0.1+0.8*rng.Float64())
	}
	return rel
}
