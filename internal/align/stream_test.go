package align

// Tests pinning the streaming union's contracts beyond byte-identity
// (equiv_test.go): the counting pass is gated on cheapCount so nested-loop
// plans never pay it, the counted presize covers the materialized rows
// exactly, the streamed join paths match the pre-refactor
// materialize-then-unionDistinct implementation on the seeded benchmark
// workloads, and the new EXPLAIN counters are populated.

import (
	"context"
	"testing"

	"tpjoin/internal/dataset"
	"tpjoin/internal/tp"
)

// probeAligner reports cheapCount false and fails the test if anything
// drains it — the stand-in for a nested-loop aligner whose counting pass
// would re-run the full conventional joins.
type probeAligner struct {
	t       *testing.T
	drained bool
}

func (p *probeAligner) drain(context.Context, *tp.Relation, emitFunc) error {
	p.drained = true
	p.t.Error("countDrain ran a drain on an aligner without cheap counting")
	return nil
}
func (p *probeAligner) cheapCount() bool { return false }
func (p *probeAligner) release()         {}

// TestCountDrainSkipsExpensiveAligners pins the presize gate: a plan whose
// aligner cannot count cheaply (the nested-loop reference) must not pay a
// counting pass — countDrain returns not-ok without draining, and the
// union falls back to append growth.
func TestCountDrainSkipsExpensiveAligners(t *testing.T) {
	r, _ := dataset.Webkit(50, 1)
	probe := &probeAligner{t: t}
	c, ok, err := countDrain(context.Background(), probe, r)
	if err != nil {
		t.Fatalf("countDrain: %v", err)
	}
	if ok {
		t.Fatal("countDrain reported ok on a cheapCount()==false aligner")
	}
	if c != (drainCounts{}) {
		t.Fatalf("countDrain returned non-zero counts %+v without draining", c)
	}
	if probe.drained {
		t.Fatal("counting pass ran the drain")
	}
	// The real nested-loop aligner is in the same class.
	if newScalarAligner(r, tp.Equi(0, 0), Config{NestedLoop: true}).cheapCount() {
		t.Fatal("scalar aligner claims cheap counting")
	}
}

// streamPresize recomputes the row-buffer presize exactly as the streamed
// join paths do: counting drains per direction, combined by drain mode.
func streamPresize(t *testing.T, op tp.Op, r, s *tp.Relation, theta tp.Theta) int {
	t.Helper()
	ctx := context.Background()
	count := func(inner, outer *tp.Relation, th tp.Theta) drainCounts {
		al := newAligner(inner, th, Config{})
		defer al.release()
		c, ok, err := countDrain(ctx, al, outer)
		if err != nil || !ok {
			t.Fatalf("countDrain(%v): ok=%v err=%v", op, ok, err)
		}
		return c
	}
	switch op {
	case tp.OpInner:
		return count(s, r, theta).rowsFor(drainPairsOnly)
	case tp.OpAnti:
		return count(s, r, theta).rowsFor(drainNegOnly)
	case tp.OpLeft:
		return count(s, r, theta).rowsFor(drainFused)
	case tp.OpRight:
		return count(r, s, tp.Swap(theta)).rowsFor(drainFused)
	case tp.OpFull:
		return count(s, r, theta).rowsFor(drainFused) +
			count(r, s, tp.Swap(theta)).rowsFor(drainNegOnly)
	default:
		panic("unknown op")
	}
}

// TestStreamPresizeCoversRows pins the counting pass to the materialized
// reality on every join shape: the presize equals the pre-union row count
// the drains actually emit (no append regrowth mid-drain) and therefore
// bounds the post-union output.
func TestStreamPresizeCoversRows(t *testing.T) {
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	for _, gen := range []struct {
		name string
		mk   func() (*tp.Relation, *tp.Relation)
	}{
		{"webkit", func() (*tp.Relation, *tp.Relation) { return dataset.Webkit(400, 7) }},
		{"meteo", func() (*tp.Relation, *tp.Relation) { return dataset.Meteo(300, 7) }},
	} {
		r, s := gen.mk()
		theta := dataset.WebkitTheta()
		for _, op := range ops {
			presize := streamPresize(t, op, r, s, theta)
			var st Stats
			out, err := JoinContext(context.Background(), op, r, s, theta, Config{}, &st)
			if err != nil {
				t.Fatalf("%s %v: %v", gen.name, op, err)
			}
			if int64(presize) != st.Rows {
				t.Errorf("%s %v: presize %d != materialized pre-union rows %d",
					gen.name, op, presize, st.Rows)
			}
			if int64(out.Len()) > st.Rows {
				t.Errorf("%s %v: output %d rows exceeds pre-union count %d",
					gen.name, op, out.Len(), st.Rows)
			}
		}
	}
}

// TestStreamMatchesUnionDistinctOnWorkloads pins the streamed paths to the
// pre-refactor implementation (materialize both sub-queries, then
// unionDistinct) byte-for-byte on the seeded benchmark workloads — the
// workload-scale counterpart of TestJoinByteIdenticalToScalar's random
// relations, where per-key chains and group structure are realistic.
func TestStreamMatchesUnionDistinctOnWorkloads(t *testing.T) {
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	for _, gen := range []struct {
		name string
		mk   func() (*tp.Relation, *tp.Relation)
	}{
		{"webkit", func() (*tp.Relation, *tp.Relation) { return dataset.Webkit(250, 13) }},
		{"meteo", func() (*tp.Relation, *tp.Relation) { return dataset.Meteo(200, 13) }},
	} {
		r, s := gen.mk()
		theta := dataset.WebkitTheta()
		for _, op := range ops {
			want := renderRows(scalarJoin(op, r, s, theta, Config{}))
			got := renderRows(Join(op, r, s, theta, Config{}))
			if len(want) != len(got) {
				t.Fatalf("%s %v: %d vs %d rows", gen.name, op, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s %v: row %d differs:\n  want %s\n  got  %s",
						gen.name, op, i, want[i], got[i])
				}
			}
		}
	}
}

// TestStreamStatsCounters pins the semantics of the counters the streaming
// union added to Stats: a fused left outer join runs one alignment pass
// (the reference runs two), kills at least one duplicate unmatched
// fragment at the merge frontier on a workload with partial coverage, and
// evaluates probabilities in batches; the nested-loop reference path
// reports zero for the streaming-only counters.
func TestStreamStatsCounters(t *testing.T) {
	r, s := dataset.Meteo(300, 5)
	theta := dataset.MeteoTheta()

	var st Stats
	if _, err := JoinContext(context.Background(), tp.OpLeft, r, s, theta, Config{}, &st); err != nil {
		t.Fatal(err)
	}
	if st.AlignPasses != 1 {
		t.Errorf("fused left outer: AlignPasses = %d, want 1", st.AlignPasses)
	}
	if st.DupAvoided == 0 {
		t.Error("fused left outer on meteo: DupAvoided = 0, want > 0")
	}
	if st.ProbBatches == 0 {
		t.Error("streamed left outer: ProbBatches = 0, want > 0")
	}

	var full Stats
	if _, err := JoinContext(context.Background(), tp.OpFull, r, s, theta, Config{}, &full); err != nil {
		t.Fatal(err)
	}
	if full.AlignPasses != 2 {
		t.Errorf("fused full outer: AlignPasses = %d, want 2", full.AlignPasses)
	}

	var nl Stats
	if _, err := JoinContext(context.Background(), tp.OpLeft, r, s, theta, Config{NestedLoop: true}, &nl); err != nil {
		t.Fatal(err)
	}
	if nl.DupAvoided != 0 || nl.ProbBatches != 0 || nl.MemoHits != 0 {
		t.Errorf("nested-loop reference path reported streaming counters: %+v", nl)
	}
	if nl.AlignPasses != 2 {
		t.Errorf("reference left outer: AlignPasses = %d, want 2", nl.AlignPasses)
	}
}
