package align

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"tpjoin/internal/dataset"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// TestParallelMatchesSequential: the partitioned executor must produce
// the same row multiset as the sequential baseline for every operator
// (order is partition-major, so rows are compared sorted).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	theta := tp.Equi(0, 0)
	for trial := 0; trial < 50; trial++ {
		r := denseRandRelation(rng, "r", rng.Intn(30))
		s := denseRandRelation(rng, "s", rng.Intn(30))
		op := ops[trial%len(ops)]
		workers := 1 + trial%4
		want := renderRows(Join(op, r, s, theta, Config{}))
		got := renderRows(ParallelJoin(op, r, s, theta, Config{}, workers))
		sort.Strings(want)
		sort.Strings(got)
		if len(want) != len(got) {
			t.Fatalf("trial %d %v w=%d: %d vs %d rows", trial, op, workers, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d %v w=%d: row %d differs:\n  want %s\n  got  %s",
					trial, op, workers, i, want[i], got[i])
			}
		}
	}
}

// TestParallelOnWorkloads runs the same multiset pin on the seeded
// benchmark workloads, with stats accounting checked against the
// sequential run.
func TestParallelOnWorkloads(t *testing.T) {
	r, s := dataset.Meteo(600, 7)
	theta := dataset.MeteoTheta()
	var seq, par Stats
	want := renderRows(func() *tp.Relation {
		out, err := JoinContext(context.Background(), tp.OpLeft, r, s, theta, Config{}, &seq)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}())
	got := renderRows(func() *tp.Relation {
		out, err := ParallelJoinContext(context.Background(), tp.OpLeft, r, s, theta, Config{}, 3, &par)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}())
	sort.Strings(want)
	sort.Strings(got)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("parallel meteo left join diverges from sequential")
	}
	if par.Workers != 3 || par.Partitions != 12 {
		t.Errorf("parallel stats workers=%d partitions=%d, want 3/12", par.Workers, par.Partitions)
	}
	// The partitions together run the same passes over the same tuples:
	// fragment and pre-union row totals match the sequential run exactly
	// (fragments are per outer tuple, and every tuple lands in exactly one
	// partition). Pass counts multiply by the partition count.
	if par.Fragments != seq.Fragments || par.Rows != seq.Rows {
		t.Errorf("parallel counters fragments=%d rows=%d, sequential %d/%d",
			par.Fragments, par.Rows, seq.Fragments, seq.Rows)
	}
	if par.AlignPasses != seq.AlignPasses*par.Partitions {
		t.Errorf("align passes = %d, want %d per partition × %d", par.AlignPasses, seq.AlignPasses, par.Partitions)
	}
}

// TestParallelCancelledJoinsWorkers: a cancelled parallel TA returns
// ctx.Err() with all workers joined (the function does not return until
// wg.Wait), within the regression bound.
func TestParallelCancelledMidOpen(t *testing.T) {
	r, s := dataset.Meteo(12000, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	out, err := ParallelJoinContext(ctx, tp.OpLeft, r, s, dataset.MeteoTheta(), Config{}, 2, nil)
	if out != nil || (!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)) {
		t.Fatalf("cancelled parallel TA: out=%v err=%v, want nil + context error", out, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want ≤ 2s", elapsed)
	}
}

// TestParallelWorkerPanicPropagates pins the containment contract: a
// query panic inside a partition worker (here the documented MergeProbs
// panic on conflicting base-event probabilities) must re-surface on the
// calling goroutine, where the surfaces' panic-to-error recovery can
// catch it — a panic left on the worker goroutine would kill the whole
// shared server process. If propagation regresses, this test crashes the
// test binary rather than failing politely, which is the point.
func TestParallelWorkerPanicPropagates(t *testing.T) {
	mk := func(p float64) *tp.Relation {
		rel := tp.NewRelation("x", "Key")
		rel.Append(tp.Strings("k"), interval.New(0, 10), p)
		return rel
	}
	// Same relation name ⇒ same base-event variables; different
	// probabilities ⇒ the per-partition MergeProbs in finish panics
	// inside a worker.
	r, s := mk(0.5), mk(0.6)
	defer func() {
		if rec := recover(); rec == nil {
			t.Fatal("expected the worker panic to propagate to the caller")
		}
	}()
	ParallelJoin(tp.OpLeft, r, s, tp.Equi(0, 0), Config{}, 2)
}

// TestSingleKeyDrainCancels pins the mid-drain cancellation fix: a
// pathological relation whose tuples all share one join key concentrates
// the entire alignment in a single key group — the per-64-outer-tuples
// check alone would only fire after each tuple drained its λ·fragments
// rows. The work-budget checks inside the index build and the fragment
// drain must abort it within the regression bound.
func TestSingleKeyDrainCancels(t *testing.T) {
	mk := func(name string, n int) *tp.Relation {
		rel := tp.NewRelation(name, "Key", "ID")
		for i := 0; i < n; i++ {
			// All tuples share the key and mutually overlap; the ID column
			// keeps facts distinct so the sequenced constraint holds.
			rel.Append(tp.Strings("k", fmt.Sprintf("%s%06d", name, i)),
				interval.New(interval.Time(i), interval.Time(i+n)), 0.5)
		}
		return rel
	}
	r, s := mk("r", 2500), mk("s", 2500)
	theta := tp.Equi(0, 0)
	for _, cfg := range []Config{{}, {NestedLoop: true}} {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		start := time.Now()
		_, err := JoinContext(ctx, tp.OpLeft, r, s, theta, cfg, nil)
		cancel()
		elapsed := time.Since(start)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cfg %+v: err = %v, want DeadlineExceeded (finished in %v?)", cfg, err, elapsed)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("cfg %+v: single-key alignment took %v to observe cancellation, want ≤ 2s", cfg, elapsed)
		}
	}
}
