package align

import (
	"context"
	"runtime"

	"tpjoin/internal/par"
	"tpjoin/internal/tp"
)

// ParallelJoin evaluates a TA join with equi-θ by hash-partitioning both
// inputs on the join key and running the full alignment reduction (both
// conventional joins, both sub-queries of a negation join, and the
// duplicate-eliminating union) on every partition concurrently — the PNJ
// parallelism model (core.ParallelJoin) applied to the alignment
// baseline, on the same shared scaffolding (internal/par). Facts with
// different keys never match, split or cover one another, and the
// union's duplicates (the unmatched fragments
// computed by both sub-queries) always stem from one outer tuple, so
// per-partition dedup equals global dedup and partition results simply
// concatenate. Output tuple order is deterministic (partition-major,
// union order within a partition) but differs from the sequential
// baseline's global union order.
func ParallelJoin(op tp.Op, r, s *tp.Relation, eq tp.EquiTheta, cfg Config, workers int) *tp.Relation {
	out, _ := ParallelJoinContext(context.Background(), op, r, s, eq, cfg, workers, nil)
	return out
}

// ParallelJoinContext is ParallelJoin under a query context: the
// partition workers observe ctx between partitions (par.Run)
// and inside the alignment drains (every alignCancelCheck outer tuples
// and every drainCancelWork units within one tuple's fragment drain), so
// a timeout or client disconnect aborts the materializing Open
// mid-alignment. On cancellation all workers are joined before
// returning, the result is nil and the error is ctx.Err(); a worker
// panic re-surfaces on the calling goroutine, where the query surfaces'
// panic-to-error containment catches it. A non-nil st records the
// effective worker and partition counts and aggregates the
// per-partition alignment counters (passes, fragments, pre-union rows)
// for EXPLAIN ANALYZE.
func ParallelJoinContext(ctx context.Context, op tp.Op, r, s *tp.Relation, eq tp.EquiTheta, cfg Config, workers int, st *Stats) (*tp.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > par.MaxWorkers {
		workers = par.MaxWorkers
	}
	parts := workers * 4 // over-partition to smooth skew, like core.ParallelJoin
	if parts < 1 {
		parts = 1
	}
	if st != nil {
		st.Workers = int64(workers)
		st.Partitions = int64(parts)
	}

	rParts := par.PartitionByKey(r, eq.RCols, parts)
	sParts := par.PartitionByKey(s, eq.SCols, parts)

	results := make([]*tp.Relation, parts)
	partStats := make([]Stats, parts)
	err := par.Run(ctx, parts, workers, func(p int) error {
		var ps *Stats
		if st != nil {
			ps = &partStats[p]
		}
		res, err := JoinContext(ctx, op, rParts[p], sParts[p], eq, cfg, ps)
		if err != nil {
			return err
		}
		results[p] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &tp.Relation{
		Name:  results[0].Name,
		Attrs: results[0].Attrs,
		Probs: tp.MergeProbs(r, s),
	}
	n := 0
	for _, res := range results {
		n += res.Len()
	}
	out.Tuples = make([]tp.Tuple, 0, n)
	for _, res := range results {
		out.Tuples = append(out.Tuples, res.Tuples...)
	}
	if st != nil {
		for p := range partStats {
			st.AlignPasses += partStats[p].AlignPasses
			st.Fragments += partStats[p].Fragments
			st.Rows += partStats[p].Rows
			st.DupAvoided += partStats[p].DupAvoided
			st.ProbBatches += partStats[p].ProbBatches
			st.MemoHits += partStats[p].MemoHits
		}
	}
	return out, nil
}
