package align

// The scalar reference implementation of the alignment step: the
// pre-batched-substrate algorithm kept verbatim in behaviour — per outer
// tuple, collect the split points of the matching overlapping inner
// tuples (conventional join 1), sort them, and re-probe the inner
// relation once per fragment for its covering tuples (conventional
// join 2). The indexed pipeline in align.go is property-tested
// byte-identical against this code (TestIndexedMatchesScalarAlign), the
// same way core's batched window transport is pinned against its scalar
// path.
//
// Besides serving as the reference, this path still executes two real
// configurations: Config.NestedLoop — the plan PostgreSQL's optimizer
// chose for TA in the paper's evaluation, whose full per-tuple re-scan
// of the inner relation is exactly the measured cost — and non-equi θ
// conditions, which cannot be hash-partitioned.

import (
	"context"
	"sort"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// scalarInner is the probe-side access path of the scalar aligner:
// either hashed equi-key groups (tp.KeyGroups over the interned keys) or
// a plain slice (nested loop).
type scalarInner struct {
	s       *tp.Relation
	eq      tp.EquiTheta
	hasEq   bool
	buckets *tp.KeyGroups[int32]
	all     []int32 // identity permutation for the nested-loop path
}

func buildScalarInner(s *tp.Relation, theta tp.Theta, cfg Config) *scalarInner {
	ix := &scalarInner{s: s}
	if eq, ok := theta.(tp.EquiTheta); ok && !cfg.NestedLoop {
		ix.eq = eq
		ix.hasEq = true
		ix.buckets = tp.NewKeyGroups[int32]()
		for i := range s.Tuples {
			h, ok := eq.SKeyHash(s.Tuples[i].Fact)
			if !ok {
				continue
			}
			g := ix.buckets.Group(h, s.Tuples[i].Fact, eq.SKeyEqual)
			g.Vals = append(g.Vals, int32(i))
		}
		return ix
	}
	ix.all = make([]int32, len(s.Tuples))
	for i := range ix.all {
		ix.all[i] = int32(i)
	}
	return ix
}

// candidates returns the inner tuple indexes that can possibly match the
// fact (all of them under nested loop).
func (ix *scalarInner) candidates(f tp.Fact) []int32 {
	if ix.hasEq {
		h, ok := ix.eq.RKeyHash(f)
		if !ok {
			return nil
		}
		// Group facts are s facts; compare s key columns against the
		// probe's r key columns.
		gi := ix.buckets.Find(h, f, func(group, probe tp.Fact) bool {
			return ix.eq.KeyMatch(probe, group)
		})
		if gi < 0 {
			return nil
		}
		return ix.buckets.Groups()[gi].Vals
	}
	return ix.all
}

// scalarAligner adapts the reference algorithm to the streaming aligner
// contract. The points and cover buffers are reused across tuples, which
// changes nothing observable (the emitted fragments are identical); the
// nested-loop path inherits the reference's full per-fragment re-scan of
// the inner relation, because that redundancy is what the paper's Fig. 7a
// measures.
type scalarAligner struct {
	s      *tp.Relation
	theta  tp.Theta
	ix     *scalarInner
	points []interval.Time
	cover  []int32
}

func newScalarAligner(s *tp.Relation, theta tp.Theta, cfg Config) *scalarAligner {
	return &scalarAligner{s: s, theta: theta, ix: buildScalarInner(s, theta, cfg)}
}

func (a *scalarAligner) cheapCount() bool { return false }

func (a *scalarAligner) release() {}

func (a *scalarAligner) drain(ctx context.Context, r *tp.Relation, emit emitFunc) error {
	work := 0
	for ri := range r.Tuples {
		if ri%alignCancelCheck == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rt := &r.Tuples[ri]
		cand := a.ix.candidates(rt.Fact)

		// Conventional join 1: collect the split points of the matching,
		// overlapping inner tuples. This is where TA replicates tuples.
		a.points = append(a.points[:0], rt.T.Start, rt.T.End)
		for _, si := range cand {
			st := &a.s.Tuples[si]
			if !st.T.Overlaps(rt.T) || !a.theta.Match(rt.Fact, st.Fact) {
				continue
			}
			if st.T.Start > rt.T.Start {
				a.points = append(a.points, st.T.Start)
			}
			if st.T.End < rt.T.End {
				a.points = append(a.points, st.T.End)
			}
		}
		sort.Slice(a.points, func(i, j int) bool { return a.points[i] < a.points[j] })
		points := dedupTimes(a.points)

		// Conventional join 2: re-probe the inner relation for every
		// fragment to find its covering tuples. TA pays this second join;
		// NJ derives the same information from the single overlap join.
		for i := 0; i+1 < len(points); i++ {
			frag := interval.New(points[i], points[i+1])
			a.cover = a.cover[:0]
			for _, si := range cand {
				st := &a.s.Tuples[si]
				if st.T.ContainsInterval(frag) && a.theta.Match(rt.Fact, st.Fact) {
					a.cover = append(a.cover, si)
				}
			}
			if err := emit(ri, frag, a.cover); err != nil {
				return err
			}
			// A single outer tuple against a huge candidate set re-scans
			// the inner relation once per fragment; observe ctx inside
			// that drain too, or a one-key pathological relation would
			// only hit the per-64-tuples check above.
			if work += len(cand) + len(a.cover) + 1; work >= drainCancelWork {
				work = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func dedupTimes(ts []interval.Time) []interval.Time {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// ScalarAlign is the reference alignment: the two conventional joins of
// the TA reduction executed tuple-at-a-time with per-fragment re-probes,
// exactly as the baseline ran before the batched refactor. Align must
// produce byte-identical fragments (property-tested); ScalarAlign exists
// so that equivalence stays checkable.
func ScalarAlign(r, s *tp.Relation, theta tp.Theta, cfg Config) []Fragment {
	a := newScalarAligner(s, theta, cfg)
	return materializeFragments(a, r)
}
