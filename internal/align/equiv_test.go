package align

// Byte-identity pins between the indexed (batched-substrate) alignment
// pipeline and the scalar reference it replaced: same fragments in the
// same order with identically ordered covers, and — through the join
// paths — identical output relations down to the lineage rendering and
// row order. This is the align counterpart of core's batch/scalar
// equivalence tests: any hot-path change that reorders or drops a
// fragment fails here before it can skew the evaluation.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tpjoin/internal/dataset"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// denseRandRelation generates relations whose same-key tuples overlap
// (distinct group column keeps the sequenced constraint), exercising
// multi-tuple covers and shared split points.
func denseRandRelation(rng *rand.Rand, name string, n int) *tp.Relation {
	keys := []string{"k1", "k2", "k3", "k4"}
	rel := tp.NewRelation(name, "K", "G")
	for i := 0; i < n; i++ {
		k := keys[rng.Intn(len(keys))]
		st := interval.Time(rng.Intn(40))
		e := st + 1 + interval.Time(rng.Intn(15))
		rel.Append(tp.Strings(k, fmt.Sprintf("g%d", i)), interval.New(st, e), 0.1+0.8*rng.Float64())
	}
	return rel
}

func fragmentsEqual(t *testing.T, label string, want, got []Fragment) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d fragments", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.RID != g.RID || !w.T.Equal(g.T) {
			t.Fatalf("%s: fragment %d: want RID=%d %v, got RID=%d %v", label, i, w.RID, w.T, g.RID, g.T)
		}
		if len(w.Cover) != len(g.Cover) {
			t.Fatalf("%s: fragment %d cover: want %v, got %v", label, i, w.Cover, g.Cover)
		}
		for j := range w.Cover {
			if w.Cover[j] != g.Cover[j] {
				t.Fatalf("%s: fragment %d cover[%d]: want %v, got %v", label, i, j, w.Cover, g.Cover)
			}
		}
	}
}

// TestIndexedMatchesScalarAlign pins the indexed pipeline to the scalar
// reference fragment-for-fragment (including cover order) on random
// relations, sparse and dense.
func TestIndexedMatchesScalarAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	theta := tp.Equi(0, 0)
	for trial := 0; trial < 150; trial++ {
		var r, s *tp.Relation
		if trial%2 == 0 {
			r, s = randRelation(rng, "r"), randRelation(rng, "s")
		} else {
			r = denseRandRelation(rng, "r", rng.Intn(30))
			s = denseRandRelation(rng, "s", rng.Intn(30))
		}
		want := ScalarAlign(r, s, theta, Config{})
		got := Align(r, s, theta, Config{})
		fragmentsEqual(t, fmt.Sprintf("trial %d", trial), want, got)
	}
}

// TestIndexedMatchesScalarOnWorkloads runs the same pin on slices of the
// seeded benchmark workloads, where per-key chains and group structure
// are realistic.
func TestIndexedMatchesScalarOnWorkloads(t *testing.T) {
	for _, gen := range []struct {
		name string
		mk   func() (*tp.Relation, *tp.Relation)
	}{
		{"webkit", func() (*tp.Relation, *tp.Relation) { return dataset.Webkit(800, 5) }},
		{"meteo", func() (*tp.Relation, *tp.Relation) { return dataset.Meteo(600, 5) }},
	} {
		r, s := gen.mk()
		theta := dataset.WebkitTheta()
		fragmentsEqual(t, gen.name, ScalarAlign(r, s, theta, Config{}), Align(r, s, theta, Config{}))
		// Mirror direction too (the full outer join drains it).
		sw := tp.Swap(theta)
		fragmentsEqual(t, gen.name+"/mirror", ScalarAlign(s, r, sw, Config{}), Align(s, r, sw, Config{}))
	}
}

// TestCoverArenaGuardFallsBack pins the pathological-workload guard: when
// the cover arena would exceed maxCoverArena (quadratic in a skewed key
// group), the indexed aligner must fall back to the scalar path and still
// produce byte-identical fragments.
func TestCoverArenaGuardFallsBack(t *testing.T) {
	old := maxCoverArena
	maxCoverArena = 64
	defer func() { maxCoverArena = old }()
	rng := rand.New(rand.NewSource(71))
	theta := tp.Equi(0, 0)
	for trial := 0; trial < 20; trial++ {
		r := denseRandRelation(rng, "r", 10+rng.Intn(20))
		s := denseRandRelation(rng, "s", 10+rng.Intn(20))
		want := ScalarAlign(r, s, theta, Config{})
		got := Align(r, s, theta, Config{})
		fragmentsEqual(t, fmt.Sprintf("guard trial %d", trial), want, got)
		// The join paths route through the same guard.
		wantRows := renderRows(scalarJoin(tp.OpLeft, r, s, theta, Config{}))
		gotRows := renderRows(Join(tp.OpLeft, r, s, theta, Config{}))
		if fmt.Sprint(wantRows) != fmt.Sprint(gotRows) {
			t.Fatalf("guard trial %d: join rows diverge under fallback", trial)
		}
	}
}

// scalarJoin computes a TA join forcing the scalar aligner for every
// pass, independent of Config — the pre-refactor implementation of the
// whole operator.
func scalarJoin(op tp.Op, r, s *tp.Relation, theta tp.Theta, cfg Config) *tp.Relation {
	ctx := context.Background()
	build := func(inner *tp.Relation, th tp.Theta) aligner { return newScalarAligner(inner, th, cfg) }
	switch op {
	case tp.OpInner:
		al := build(s, theta)
		outer, _ := outerRowsStream(ctx, al, r, s, cfg, false, nil, nil)
		var rows []row
		for _, rw := range outer {
			if rw.pair {
				rows = append(rows, rw)
			}
		}
		return finish(fmt.Sprintf("%s_join_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), unionDistinct(rows))
	case tp.OpAnti:
		al := build(s, theta)
		rows, _ := negRowsStream(ctx, al, r, s, cfg, false, true, nil, nil)
		return finish(fmt.Sprintf("%s_anti_%s", r.Name, s.Name), append([]string(nil), r.Attrs...), tp.MergeProbs(r, s), unionDistinct(rows))
	case tp.OpLeft:
		al := build(s, theta)
		rows, _ := outerRowsStream(ctx, al, r, s, cfg, false, nil, nil)
		rows, _ = negRowsStream(ctx, al, r, s, cfg, false, false, nil, rows)
		return finish(fmt.Sprintf("%s_louter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), unionDistinct(rows))
	case tp.OpRight:
		al := build(r, tp.Swap(theta))
		rows, _ := outerRowsStream(ctx, al, s, r, cfg, true, nil, nil)
		rows, _ = negRowsStream(ctx, al, s, r, cfg, true, false, nil, rows)
		return finish(fmt.Sprintf("%s_router_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), unionDistinct(rows))
	case tp.OpFull:
		fwd := build(s, theta)
		rows, _ := outerRowsStream(ctx, fwd, r, s, cfg, false, nil, nil)
		rows, _ = negRowsStream(ctx, fwd, r, s, cfg, false, false, nil, rows)
		mir := build(r, tp.Swap(theta))
		rows, _ = negRowsStream(ctx, mir, s, r, cfg, true, false, nil, rows)
		return finish(fmt.Sprintf("%s_fouter_%s", r.Name, s.Name), joinAttrs(r, s), tp.MergeProbs(r, s), unionDistinct(rows))
	default:
		panic("unknown op")
	}
}

func renderRows(rel *tp.Relation) []string {
	out := make([]string, 0, rel.Len())
	for _, tu := range rel.Tuples {
		out = append(out, fmt.Sprintf("%v | %s | %s | %.17g", tu.Fact, tu.Lineage, tu.T, tu.Prob))
	}
	return out
}

// TestJoinByteIdenticalToScalar pins the whole operator: the production
// join paths (indexed aligners under the hash config) must produce the
// same relation — row order, lineage rendering, probabilities — as the
// scalar-path join.
func TestJoinByteIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	theta := tp.Equi(0, 0)
	for trial := 0; trial < 60; trial++ {
		r := denseRandRelation(rng, "r", rng.Intn(25))
		s := denseRandRelation(rng, "s", rng.Intn(25))
		op := ops[trial%len(ops)]
		want := renderRows(scalarJoin(op, r, s, theta, Config{}))
		got := renderRows(Join(op, r, s, theta, Config{}))
		if len(want) != len(got) {
			t.Fatalf("trial %d %v: %d vs %d rows", trial, op, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d %v: row %d differs:\n  want %s\n  got  %s", trial, op, i, want[i], got[i])
			}
		}
	}
}
