package engine

import (
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func setopDemo() (*tp.Relation, *tp.Relation) {
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("x"), interval.New(0, 6), 0.8)
	s := tp.NewRelation("s", "K")
	s.Append(tp.Strings("x"), interval.New(3, 9), 0.4)
	return r, s
}

func TestTPSetOpUnion(t *testing.T) {
	r, s := setopDemo()
	op := NewTPSetOp(SetUnion, NewScan(r), NewScan(s))
	out, err := Run(op, "u")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("union rows = %d, want 3:\n%v", out.Len(), out)
	}
	if op.Kind() != SetUnion || len(op.Children()) != 2 {
		t.Errorf("accessors wrong")
	}
	if op.Stats().Rows != 3 {
		t.Errorf("stats rows = %d", op.Stats().Rows)
	}
	if len(op.Probs()) != 2 {
		t.Errorf("probs must merge both sides")
	}
}

func TestTPSetOpIntersectExcept(t *testing.T) {
	r, s := setopDemo()
	out, err := Run(NewTPSetOp(SetIntersect, NewScan(r), NewScan(s)), "i")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Tuples[0].T.Equal(interval.New(3, 6)) {
		t.Errorf("intersect wrong: %v", out)
	}
	out, err = Run(NewTPSetOp(SetExcept, NewScan(r), NewScan(s)), "e")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("except wrong: %v", out)
	}
}

func TestTPSetOpIncompatible(t *testing.T) {
	r, _ := setopDemo()
	two := tp.NewRelation("two", "A", "B")
	op := NewTPSetOp(SetUnion, NewScan(r), NewScan(two))
	if err := op.Open(); err == nil {
		t.Errorf("union-incompatible inputs must fail at Open")
	}
}

func TestTPSetOpOverDerivedChild(t *testing.T) {
	r, s := setopDemo()
	f := NewFilter(NewScan(r), func(tp.Tuple) bool { return true })
	out, err := Run(NewTPSetOp(SetUnion, f, NewScan(s)), "u")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("derived-child union wrong: %v", out)
	}
}

func TestLineageDistinct(t *testing.T) {
	b := paperB()
	d, err := NewLineageDistinct(NewScan(b), []int{1}, []string{"Loc"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(d, "d")
	if err != nil {
		t.Fatal(err)
	}
	// ZAK availability merges: elementary [4,5) [5,6) [6,8) plus SOR [1,4).
	if out.Len() != 4 {
		t.Fatalf("distinct rows = %d, want 4:\n%v", out.Len(), out)
	}
	if d.Child() == nil {
		t.Errorf("Child accessor wrong")
	}
	if len(d.Probs()) != 3 {
		t.Errorf("probs must flow through")
	}
}

func TestLineageDistinctValidation(t *testing.T) {
	b := paperB()
	if _, err := NewLineageDistinct(NewScan(b), []int{0, 1}, []string{"x"}); err == nil {
		t.Errorf("arity mismatch must error")
	}
	if _, err := NewLineageDistinct(NewScan(b), []int{9}, []string{"x"}); err == nil {
		t.Errorf("out-of-range column must error")
	}
}

func TestSetOpKindString(t *testing.T) {
	if SetUnion.String() != "union" || SetIntersect.String() != "intersect" ||
		SetExcept.String() != "except" {
		t.Errorf("kind names wrong")
	}
}
