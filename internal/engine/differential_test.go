package engine

// The cross-strategy differential harness: every physical join strategy
// (NJ, TA, PNJ, PTA) must compute the same temporal-probabilistic result
// for every join operator on seeded random workloads. The strategies differ
// in output order and in how they fragment time (TA chunks at alignment
// boundaries, NJ at window boundaries), so results are compared in
// canonical form: coalesced (tp.Coalesce merges value-equivalent adjacent
// intervals with structurally equal lineage), sorted, and rendered with
// canonical lineage (lineage.CanonicalString normalizes And/Or operand
// order). After canonicalization the comparison is byte-exact — including
// the lineage formulas — which is what lets future perf PRs refactor any
// one strategy's hot path without silently diverging the semantics the
// paper defines.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tpjoin/internal/align"
	"tpjoin/internal/dataset"
	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
)

// differentialWorkloads are the seeded workloads the harness sweeps: the
// generators behind cmd/tpgen (internal/dataset), two seeds each so the
// comparison is not an artifact of one PRNG stream. Sizes are chosen to
// produce tens of thousands of windows while keeping the TA baseline
// (the slowest strategy by one to two orders of magnitude) testable.
func differentialWorkloads() []struct {
	name  string
	r, s  *tp.Relation
	theta tp.EquiTheta
} {
	type w = struct {
		name  string
		r, s  *tp.Relation
		theta tp.EquiTheta
	}
	var out []w
	for _, seed := range []int64{3, 11} {
		r, s := dataset.Webkit(3000, seed)
		out = append(out, w{fmt.Sprintf("webkit/seed=%d", seed), r, s, dataset.WebkitTheta()})
	}
	for _, seed := range []int64{3, 11} {
		r, s := dataset.Meteo(900, seed)
		out = append(out, w{fmt.Sprintf("meteo/seed=%d", seed), r, s, dataset.MeteoTheta()})
	}
	return out
}

var differentialOps = []tp.Op{tp.OpInner, tp.OpLeft, tp.OpFull, tp.OpAnti}

// runStrategy executes one TP join through the executor under the given
// strategy and returns the result relation.
func runStrategy(t *testing.T, strat Strategy, op tp.Op, r, s *tp.Relation, theta tp.Theta) *tp.Relation {
	return runStrategyCfg(t, strat, op, r, s, theta, align.Config{})
}

func runStrategyCfg(t *testing.T, strat Strategy, op tp.Op, r, s *tp.Relation, theta tp.Theta, cfg align.Config) *tp.Relation {
	t.Helper()
	j := NewTPJoin(op, NewScan(r), NewScan(s), theta, strat, cfg)
	if strat == StrategyPNJ || strat == StrategyPTA {
		j.SetWorkers(3)
	}
	out, err := Run(j, "diff")
	if err != nil {
		t.Fatalf("%v/%v: %v", strat, op, err)
	}
	return out
}

// canonicalize renders a join result in strategy-independent form: one
// line per coalesced tuple — fact, canonical lineage, interval and the
// probability rounded to 6 decimals (the strategies sum the same terms in
// different orders, so the last float ulps may differ) — sorted.
func canonicalize(rel *tp.Relation) []string {
	co := tp.Coalesce(rel)
	lines := make([]string, 0, co.Len())
	for _, tu := range co.Tuples {
		parts := make([]string, len(tu.Fact))
		for i, v := range tu.Fact {
			parts[i] = v.String()
		}
		lines = append(lines, fmt.Sprintf("%s | %s | %s | %.6f",
			strings.Join(parts, " | "), lineage.CanonicalString(tu.Lineage), tu.T, tu.Prob))
	}
	sort.Strings(lines)
	return lines
}

func diffLines(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d vs %d coalesced tuples", label, len(want), len(got))
	}
	n := 0
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			t.Errorf("%s: line %d differs:\n  want %s\n  got  %s", label, i, want[i], got[i])
			if n++; n >= 3 {
				t.Fatalf("%s: too many differences, stopping", label)
			}
		}
	}
}

// TestDifferentialStrategies is the harness: NJ is the reference; TA,
// PNJ and PTA must match it byte-for-byte after canonicalization for
// every join operator on every seeded workload.
func TestDifferentialStrategies(t *testing.T) {
	for _, in := range differentialWorkloads() {
		for _, op := range differentialOps {
			ref := canonicalize(runStrategy(t, StrategyNJ, op, in.r, in.s, in.theta))
			if len(ref) == 0 {
				t.Fatalf("%s %v: empty reference result, workload too small", in.name, op)
			}
			for _, strat := range []Strategy{StrategyTA, StrategyPNJ, StrategyPTA} {
				got := canonicalize(runStrategy(t, strat, op, in.r, in.s, in.theta))
				diffLines(t, fmt.Sprintf("%s %v %v-vs-NJ", in.name, op, strat), ref, got)
			}
			// TA under the nested-loop plan takes the pre-streaming path
			// (materialize both sub-queries, then unionDistinct), pinning
			// the streamed union against the reference implementation at
			// the executor level too.
			nl := canonicalize(runStrategyCfg(t, StrategyTA, op, in.r, in.s, in.theta,
				align.Config{NestedLoop: true}))
			diffLines(t, fmt.Sprintf("%s %v TA/nl-vs-NJ", in.name, op), ref, nl)
		}
	}
}
