package engine

import (
	"errors"
	"fmt"
	"testing"

	"tpjoin/internal/align"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// faulty is an operator that fails at a chosen point in its lifecycle,
// used to verify error propagation through every composite operator.
type faulty struct {
	base
	inner    Operator
	failOpen bool
	failAt   int // fail on the n-th Next (1-based); 0 disables
	calls    int
}

var errInjected = errors.New("injected failure")

func newFaulty(inner Operator, failOpen bool, failAt int) *faulty {
	return &faulty{base: base{attrs: inner.Attrs()}, inner: inner, failOpen: failOpen, failAt: failAt}
}

func (f *faulty) Open() error {
	if f.failOpen {
		return fmt.Errorf("open: %w", errInjected)
	}
	f.calls = 0
	return f.inner.Open()
}

func (f *faulty) Next() (tp.Tuple, bool, error) {
	f.calls++
	if f.failAt > 0 && f.calls >= f.failAt {
		return tp.Tuple{}, false, fmt.Errorf("next: %w", errInjected)
	}
	return f.inner.Next()
}

func (f *faulty) Close() error      { return f.inner.Close() }
func (f *faulty) Probs() prob.Probs { return f.inner.Probs() }

func TestErrorPropagation(t *testing.T) {
	mk := func() Operator { return newFaulty(NewScan(paperA()), false, 1) }
	mkOpen := func() Operator { return newFaulty(NewScan(paperA()), true, 0) }

	composites := map[string]func(Operator) Operator{
		"Filter": func(in Operator) Operator {
			return NewFilter(in, func(tp.Tuple) bool { return true })
		},
		"Project": func(in Operator) Operator {
			p, err := NewProject(in, []int{0}, []string{"Name"})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"Limit": func(in Operator) Operator { return NewLimit(in, 10) },
		"Sort":  func(in Operator) Operator { return NewSort(in, ByStart) },
		"Distinct": func(in Operator) Operator {
			return NewDistinct(in)
		},
	}
	for name, wrap := range composites {
		// Failure during Next.
		if _, err := Run(wrap(mk()), "q"); !errors.Is(err, errInjected) {
			t.Errorf("%s: Next failure not propagated: %v", name, err)
		}
		// Failure during Open.
		if _, err := Run(wrap(mkOpen()), "q"); !errors.Is(err, errInjected) {
			t.Errorf("%s: Open failure not propagated: %v", name, err)
		}
	}
}

func TestErrorPropagationUnion(t *testing.T) {
	u, err := NewUnionAll(NewScan(paperA()), newFaulty(NewScan(paperA()), false, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(u, "q"); !errors.Is(err, errInjected) {
		t.Errorf("union must propagate child failure: %v", err)
	}
	u2, err := NewUnionAll(newFaulty(NewScan(paperA()), true, 0), NewScan(paperA()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(u2, "q"); !errors.Is(err, errInjected) {
		t.Errorf("union must propagate child Open failure: %v", err)
	}
}

func TestErrorPropagationTPJoin(t *testing.T) {
	// A faulty derived child fails while the join materializes it at Open.
	f := newFaulty(NewFilter(NewScan(paperA()), func(tp.Tuple) bool { return true }), false, 1)
	j := NewTPJoin(tp.OpLeft, f, NewScan(paperB()), theta, StrategyNJ, align.Config{})
	if _, err := Run(j, "q"); !errors.Is(err, errInjected) {
		t.Errorf("TPJoin must propagate child failure: %v", err)
	}
}

func TestErrorPropagationTPSetOp(t *testing.T) {
	f := newFaulty(NewFilter(NewScan(paperA()), func(tp.Tuple) bool { return true }), false, 1)
	s := NewTPSetOp(SetUnion, f, NewScan(paperA()))
	if _, err := Run(s, "q"); !errors.Is(err, errInjected) {
		t.Errorf("TPSetOp must propagate child failure: %v", err)
	}
}

func TestErrorPropagationLineageDistinct(t *testing.T) {
	f := newFaulty(NewFilter(NewScan(paperA()), func(tp.Tuple) bool { return true }), false, 2)
	d, err := NewLineageDistinct(f, []int{0}, []string{"Name"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, "q"); !errors.Is(err, errInjected) {
		t.Errorf("LineageDistinct must propagate child failure: %v", err)
	}
}
