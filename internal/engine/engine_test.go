package engine

import (
	"strings"
	"testing"

	"tpjoin/internal/align"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func paperA() *tp.Relation {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	return a
}

func paperB() *tp.Relation {
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	return b
}

var theta = tp.Equi(1, 1)

func TestScan(t *testing.T) {
	a := paperA()
	s := NewScan(a)
	out, err := Run(s, "q")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Len() != 2 || s.Stats().Rows != 2 {
		t.Errorf("scan rows = %d stats = %d", out.Len(), s.Stats().Rows)
	}
	if len(out.Probs) != 2 {
		t.Errorf("probs must flow through Run")
	}
	// Re-open resets.
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Next(); !ok {
		t.Errorf("re-opened scan must produce tuples")
	}
}

func TestFilter(t *testing.T) {
	f := NewFilter(NewScan(paperA()), func(tu tp.Tuple) bool {
		return tu.Fact[1].AsString() == "ZAK"
	})
	out, err := Run(f, "q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0].Fact[0].AsString() != "Ann" {
		t.Errorf("filter wrong: %v", out)
	}
}

func TestProject(t *testing.T) {
	p, err := NewProject(NewScan(paperA()), []int{1}, []string{"Loc"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(p, "q")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Attrs) != 1 || out.Attrs[0] != "Loc" {
		t.Errorf("project attrs wrong: %v", out.Attrs)
	}
	if out.Tuples[0].Fact.String() != "ZAK" {
		t.Errorf("project fact wrong: %v", out.Tuples[0].Fact)
	}
}

func TestProjectValidation(t *testing.T) {
	if _, err := NewProject(NewScan(paperA()), []int{0, 1}, []string{"x"}); err == nil {
		t.Errorf("arity mismatch must error")
	}
	if _, err := NewProject(NewScan(paperA()), []int{5}, []string{"x"}); err == nil {
		t.Errorf("out-of-range column must error")
	}
}

func TestLimit(t *testing.T) {
	l := NewLimit(NewScan(paperB()), 2)
	out, err := Run(l, "q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("limit produced %d", out.Len())
	}
}

func TestSortOperator(t *testing.T) {
	s := NewSort(NewScan(paperB()), ByStart)
	out, err := Run(s, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tuples[0].T.Equal(interval.New(1, 4)) {
		t.Errorf("sort wrong: %v", out.Tuples[0])
	}
	s2 := NewSort(NewScan(paperB()), ByFactStart)
	out2, _ := Run(s2, "q")
	if out2.Tuples[0].Fact[0].AsString() != "hotel1" {
		t.Errorf("fact sort wrong: %v", out2.Tuples[0])
	}
}

func TestDistinct(t *testing.T) {
	a := paperA()
	u, err := NewUnionAll(NewScan(a), NewScan(a))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDistinct(u)
	out, err := Run(d, "q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("distinct kept %d, want 2", out.Len())
	}
}

func TestUnionAllValidation(t *testing.T) {
	if _, err := NewUnionAll(); err == nil {
		t.Errorf("empty union must error")
	}
	one, err := NewProject(NewScan(paperA()), []int{0}, []string{"Name"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUnionAll(NewScan(paperA()), one); err == nil {
		t.Errorf("arity mismatch must error")
	}
}

func TestTPJoinNJMatchesCore(t *testing.T) {
	for _, op := range []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull} {
		j := NewTPJoin(op, NewScan(paperA()), NewScan(paperB()), theta, StrategyNJ, align.Config{})
		out, err := Run(j, "q")
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		pm, err := tp.Expand(out)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		ref := tp.RefJoin(op, paperA(), paperB(), theta)
		if err := pm.EqualProb(ref, 1e-9); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

func TestTPJoinTAMatchesReference(t *testing.T) {
	j := NewTPJoin(tp.OpLeft, NewScan(paperA()), NewScan(paperB()), theta, StrategyTA, align.Config{})
	out, err := Run(j, "q")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := tp.Expand(out)
	if err != nil {
		t.Fatal(err)
	}
	ref := tp.RefJoin(tp.OpLeft, paperA(), paperB(), theta)
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Errorf("TA join: %v", err)
	}
}

func TestTPJoinPNJMatchesReference(t *testing.T) {
	for _, op := range []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull} {
		j := NewTPJoin(op, NewScan(paperA()), NewScan(paperB()), theta, StrategyPNJ, align.Config{})
		j.SetWorkers(3)
		out, err := Run(j, "q")
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		pm, err := tp.Expand(out)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		ref := tp.RefJoin(op, paperA(), paperB(), theta)
		if err := pm.EqualProb(ref, 1e-9); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

func TestTPJoinPNJDeterministicOrder(t *testing.T) {
	mk := func() *TPJoin {
		j := NewTPJoin(tp.OpLeft, NewScan(paperA()), NewScan(paperB()), theta, StrategyPNJ, align.Config{})
		j.SetWorkers(4)
		return j
	}
	a, err := Run(mk(), "q")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(), "q")
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Fact.Equal(b.Tuples[i].Fact) || !a.Tuples[i].T.Equal(b.Tuples[i].T) {
			t.Fatalf("tuple %d order differs between runs", i)
		}
	}
}

func TestTPJoinPNJRequiresEquiTheta(t *testing.T) {
	anyMatch := tp.FuncTheta(func(r, s tp.Fact) bool { return true })
	j := NewTPJoin(tp.OpLeft, NewScan(paperA()), NewScan(paperB()), anyMatch, StrategyPNJ, align.Config{})
	if _, err := Run(j, "q"); err == nil {
		t.Fatalf("PNJ over a non-equi θ must error at Open")
	}
}

func TestTPJoinOverDerivedChild(t *testing.T) {
	// Join whose left child is a filter (not a bare scan): the child is
	// drained into a temporary relation carrying its probs.
	f := NewFilter(NewScan(paperA()), func(tu tp.Tuple) bool {
		return tu.Fact[0].AsString() == "Ann"
	})
	j := NewTPJoin(tp.OpLeft, f, NewScan(paperB()), theta, StrategyNJ, align.Config{})
	out, err := Run(j, "q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Errorf("Ann-only left join must have 6 tuples (Fig. 1b minus Jim), got %d:\n%v", out.Len(), out)
	}
}

func TestTPJoinAntiSchema(t *testing.T) {
	j := NewTPJoin(tp.OpAnti, NewScan(paperA()), NewScan(paperB()), theta, StrategyNJ, align.Config{})
	if len(j.Attrs()) != 2 {
		t.Errorf("anti join schema must be left child's, got %v", j.Attrs())
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyNJ.String() != "NJ" || StrategyTA.String() != "TA" ||
		StrategyPNJ.String() != "PNJ" || StrategyPTA.String() != "PTA" {
		t.Errorf("strategy names wrong")
	}
	// NumStrategies must track the enum: every strategy below it has a
	// real name, the first value at it does not. A failure here means a
	// strategy was added without updating NumStrategies (which sizes the
	// per-strategy metrics arrays in internal/server).
	for s := Strategy(0); s < NumStrategies; s++ {
		if strings.HasPrefix(s.String(), "strategy(") {
			t.Errorf("strategy %d below NumStrategies has no name", s)
		}
	}
	if got := Strategy(NumStrategies).String(); !strings.HasPrefix(got, "strategy(") {
		t.Errorf("NumStrategies (%d) is smaller than the enum: Strategy(NumStrategies) = %q", NumStrategies, got)
	}
}

func TestPipelineComposition(t *testing.T) {
	// SELECT Name FROM (a TP LEFT JOIN b ON Loc=Loc) WHERE Hotel IS NULL LIMIT 3
	j := NewTPJoin(tp.OpLeft, NewScan(paperA()), NewScan(paperB()), theta, StrategyNJ, align.Config{})
	f := NewFilter(j, func(tu tp.Tuple) bool { return tu.Fact[2].IsNull() })
	p, err := NewProject(f, []int{0}, []string{"Name"})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLimit(p, 3)
	out, err := Run(l, "q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("pipeline produced %d tuples, want 3", out.Len())
	}
	for _, tu := range out.Tuples {
		if len(tu.Fact) != 1 {
			t.Errorf("projection not applied: %v", tu.Fact)
		}
	}
}
