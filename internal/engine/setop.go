package engine

import (
	"context"
	"fmt"

	"tpjoin/internal/core"
	"tpjoin/internal/prob"
	"tpjoin/internal/setops"
	"tpjoin/internal/tp"
)

// SetOpKind enumerates the TP set operations at the executor level.
type SetOpKind uint8

// The executor-level set operations.
const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetExcept
)

func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "union"
	case SetIntersect:
		return "intersect"
	case SetExcept:
		return "except"
	default:
		return fmt.Sprintf("setop(%d)", uint8(k))
	}
}

// TPSetOp is the executor node for TP set operations (∪, ∩, −). Set
// operations need both inputs as relations; the node materializes its
// children at Open (cheap for the common bare-scan case) and streams the
// result.
type TPSetOp struct {
	base
	kind  SetOpKind
	left  Operator
	right Operator

	ctx   context.Context // bound by RunContext; nil = Background
	mat   *tp.Relation
	mi    int
	probs prob.Probs
}

// BindContext implements ContextBinder: the materializing Open drains its
// children under the query context.
func (s *TPSetOp) BindContext(ctx context.Context) { s.ctx = ctx }

// NewTPSetOp builds a set-operation node; the children must be
// union-compatible (checked at Open).
func NewTPSetOp(kind SetOpKind, left, right Operator) *TPSetOp {
	return &TPSetOp{base: base{attrs: left.Attrs()}, kind: kind, left: left, right: right}
}

// Kind returns the set operation kind.
func (s *TPSetOp) Kind() SetOpKind { return s.kind }

// Children returns the node's inputs.
func (s *TPSetOp) Children() []Operator { return []Operator{s.left, s.right} }

func (s *TPSetOp) Open() error {
	s.stats = Stats{}
	s.mi = 0
	ctx := s.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r, err := childRelation(ctx, s.left, "l")
	if err != nil {
		return err
	}
	t, err := childRelation(ctx, s.right, "r")
	if err != nil {
		return err
	}
	s.probs = tp.MergeProbs(r, t)
	switch s.kind {
	case SetUnion:
		s.mat, err = setops.Union(r, t)
	case SetIntersect:
		s.mat, err = setops.Intersect(r, t)
	case SetExcept:
		s.mat, err = setops.Difference(r, t)
	default:
		return fmt.Errorf("engine: unknown set operation %v", s.kind)
	}
	return err
}

func (s *TPSetOp) Next() (tp.Tuple, bool, error) {
	if s.mat == nil || s.mi >= len(s.mat.Tuples) {
		return tp.Tuple{}, false, nil
	}
	t := s.mat.Tuples[s.mi]
	s.mi++
	s.stats.Rows++
	return t, true, nil
}

func (s *TPSetOp) Close() error {
	errL := s.left.Close()
	errR := s.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Probs implements Operator.
func (s *TPSetOp) Probs() prob.Probs {
	if s.probs != nil {
		return s.probs
	}
	return tp.MergeProbs(
		&tp.Relation{Probs: s.left.Probs()},
		&tp.Relation{Probs: s.right.Probs()},
	)
}

// LineageDistinct is the executor node for SELECT DISTINCT: the
// temporal-probabilistic projection with duplicate elimination
// (core.ProjectLineage) over the given columns of its input. Blocking.
type LineageDistinct struct {
	base
	in   Operator
	cols []int

	ctx context.Context // bound by RunContext; nil = Background
	mat *tp.Relation
	mi  int
}

// BindContext implements ContextBinder.
func (d *LineageDistinct) BindContext(ctx context.Context) { d.ctx = ctx }

// NewLineageDistinct projects in to cols (named names) with TP duplicate
// elimination.
func NewLineageDistinct(in Operator, cols []int, names []string) (*LineageDistinct, error) {
	if len(cols) != len(names) {
		return nil, fmt.Errorf("engine: distinct arity mismatch")
	}
	inAttrs := in.Attrs()
	for _, c := range cols {
		if c < 0 || c >= len(inAttrs) {
			return nil, fmt.Errorf("engine: distinct column %d out of range", c)
		}
	}
	return &LineageDistinct{base: base{attrs: names}, in: in, cols: cols}, nil
}

// Child returns the input operator.
func (d *LineageDistinct) Child() Operator { return d.in }

func (d *LineageDistinct) Open() error {
	d.stats = Stats{}
	d.mi = 0
	ctx := d.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	rel, err := childRelation(ctx, d.in, "d")
	if err != nil {
		return err
	}
	d.mat = core.ProjectLineage(rel, d.cols, d.attrs)
	return nil
}

func (d *LineageDistinct) Next() (tp.Tuple, bool, error) {
	if d.mat == nil || d.mi >= len(d.mat.Tuples) {
		return tp.Tuple{}, false, nil
	}
	t := d.mat.Tuples[d.mi]
	d.mi++
	d.stats.Rows++
	return t, true, nil
}

func (d *LineageDistinct) Close() error { return d.in.Close() }

// Probs implements Operator.
func (d *LineageDistinct) Probs() prob.Probs { return d.in.Probs() }
