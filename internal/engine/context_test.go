package engine

import (
	"context"
	"errors"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func TestRunContextCancelled(t *testing.T) {
	r := tp.NewRelation("r", "K")
	for i := 0; i < 10; i++ {
		r.Append(tp.Strings("x"), interval.New(int64(i), int64(i)+1), 0.5)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, NewScan(r), "out"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
	// A live context behaves exactly like Run.
	rel, err := RunContext(context.Background(), NewScan(r), "out")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 10 {
		t.Fatalf("got %d tuples, want 10", rel.Len())
	}
}
