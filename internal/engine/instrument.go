package engine

import (
	"context"
	"time"

	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// This file is the executor side of EXPLAIN ANALYZE: an accounting
// decorator that times Open/Next/Close per operator, and the context
// binding that hands the query context to operators whose Open blocks
// (the TA baseline and the PNJ partition barrier both materialize there).
// Instrumentation is opt-in per query — plain execution never pays the
// two time.Now calls per tuple.

// OpStats are the ANALYZE counters of one instrumented operator.
type OpStats struct {
	// Rows is the number of tuples the operator produced.
	Rows int64
	// WallNanos is the wall time spent inside the operator and its
	// inputs (inclusive, like PostgreSQL's "actual time"): Open + all
	// Next calls.
	WallNanos int64
	// OpenNanos is the part of WallNanos spent in Open; a blocking
	// operator (TA, PNJ, Sort, set operations) does nearly all of its
	// work there.
	OpenNanos int64
}

// Instrumented decorates an operator with ANALYZE accounting. It forwards
// the Operator contract unchanged; plan rendering unwraps it via Inner to
// describe the node and reads OpStats for the actual rows/time columns.
type Instrumented struct {
	op    Operator
	stats OpStats
}

// Instrument wraps every node of the operator tree in an accounting
// decorator and returns the wrapped root. The tree is rewired in place:
// each operator's children become their wrapped counterparts, so interior
// drains (a join materializing its build side) are accounted too. Joins
// additionally get their strategy-level stage accounting enabled
// (window-pipeline counters under NJ, alignment counters under TA,
// partition counters under PNJ).
func Instrument(op Operator) *Instrumented {
	switch o := op.(type) {
	case *Filter:
		o.in = Instrument(o.in)
	case *Project:
		o.in = Instrument(o.in)
	case *Limit:
		o.in = Instrument(o.in)
	case *Sort:
		o.in = Instrument(o.in)
	case *Distinct:
		o.in = Instrument(o.in)
	case *LineageDistinct:
		o.in = Instrument(o.in)
	case *UnionAll:
		for i := range o.ins {
			o.ins[i] = Instrument(o.ins[i])
		}
	case *TPSetOp:
		o.left = Instrument(o.left)
		o.right = Instrument(o.right)
	case *TPJoin:
		o.left = Instrument(o.left)
		o.right = Instrument(o.right)
		o.instr = true
	}
	return &Instrumented{op: op}
}

// Inner returns the decorated operator.
func (i *Instrumented) Inner() Operator { return i.op }

// OpStats returns the counters accumulated since the last Open.
func (i *Instrumented) OpStats() OpStats { return i.stats }

// Open implements Operator, timing the inner Open and resetting the
// counters.
func (i *Instrumented) Open() error {
	i.stats = OpStats{}
	start := time.Now()
	err := i.op.Open()
	i.stats.OpenNanos = int64(time.Since(start))
	i.stats.WallNanos = i.stats.OpenNanos
	return err
}

// Next implements Operator.
func (i *Instrumented) Next() (tp.Tuple, bool, error) {
	start := time.Now()
	t, ok, err := i.op.Next()
	i.stats.WallNanos += int64(time.Since(start))
	if ok {
		i.stats.Rows++
	}
	return t, ok, err
}

// Close implements Operator.
func (i *Instrumented) Close() error { return i.op.Close() }

// Attrs implements Operator.
func (i *Instrumented) Attrs() []string { return i.op.Attrs() }

// Probs implements Operator.
func (i *Instrumented) Probs() prob.Probs { return i.op.Probs() }

// Stats implements Operator, reporting the decorator's own row count (the
// inner count matches; reading it here avoids a virtual hop).
func (i *Instrumented) Stats() Stats { return Stats{Rows: i.stats.Rows} }

// ContextBinder is implemented by operators whose Open must observe the
// query context: materializing strategies (TA, PNJ) check it between
// build batches/partitions so cancellation aborts mid-Open rather than at
// the next tuple boundary. RunContext binds the context over the whole
// tree before Open; operators that never block may ignore it.
type ContextBinder interface {
	BindContext(ctx context.Context)
}

// BindContext hands ctx to every ContextBinder in the operator tree
// (including operators wrapped by Instrumented).
func BindContext(ctx context.Context, op Operator) {
	if i, ok := op.(*Instrumented); ok {
		BindContext(ctx, i.op)
		return
	}
	if b, ok := op.(ContextBinder); ok {
		b.BindContext(ctx)
	}
	for _, k := range childrenOf(op) {
		if k != nil {
			BindContext(ctx, k)
		}
	}
}

// childrenOf enumerates an operator's inputs through the Child/Children
// accessors every composite node exposes.
func childrenOf(op Operator) []Operator {
	switch o := op.(type) {
	case interface{ Children() []Operator }:
		return o.Children()
	case interface{ Child() Operator }:
		return []Operator{o.Child()}
	}
	return nil
}
