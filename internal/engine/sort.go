package engine

import (
	"context"
	"sort"

	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// TupleLess orders tuples; used by Sort and Distinct.
type TupleLess func(a, b tp.Tuple) bool

// ByFactStart is the canonical (fact, interval) order.
func ByFactStart(a, b tp.Tuple) bool {
	if c := a.Fact.Compare(b.Fact); c != 0 {
		return c < 0
	}
	return a.T.Less(b.T)
}

// ByStart orders by interval only.
func ByStart(a, b tp.Tuple) bool { return a.T.Less(b.T) }

// Sort is a blocking operator that materializes and orders its input.
type Sort struct {
	base
	in   Operator
	less TupleLess
	ctx  context.Context // bound by RunContext; nil = Background
	buf  []tp.Tuple
	i    int
}

// NewSort sorts in by less.
func NewSort(in Operator, less TupleLess) *Sort {
	return &Sort{base: base{attrs: in.Attrs()}, in: in, less: less}
}

// BindContext implements ContextBinder: the materializing Open drains its
// input under the query context.
func (s *Sort) BindContext(ctx context.Context) { s.ctx = ctx }

func (s *Sort) Open() error {
	s.stats = Stats{}
	s.buf = s.buf[:0]
	s.i = 0
	ctx := s.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.in.Open(); err != nil {
		return err
	}
	for n := 0; ; n++ {
		if n%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		t, ok, err := s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.buf = append(s.buf, t)
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	return nil
}

func (s *Sort) Next() (tp.Tuple, bool, error) {
	if s.i >= len(s.buf) {
		return tp.Tuple{}, false, nil
	}
	t := s.buf[s.i]
	s.i++
	s.stats.Rows++
	return t, true, nil
}

func (s *Sort) Close() error { return s.in.Close() }

// Probs implements Operator.
func (s *Sort) Probs() prob.Probs { return s.in.Probs() }

// Distinct is a blocking operator eliminating duplicate
// (fact, interval, lineage) tuples — the duplicate-removing union step of
// the TA baseline expressed as an executor node.
type Distinct struct {
	base
	in  Operator
	ctx context.Context // bound by RunContext; nil = Background
	buf []tp.Tuple
	i   int
}

// NewDistinct deduplicates in.
func NewDistinct(in Operator) *Distinct {
	return &Distinct{base: base{attrs: in.Attrs()}, in: in}
}

// BindContext implements ContextBinder.
func (d *Distinct) BindContext(ctx context.Context) { d.ctx = ctx }

func (d *Distinct) Open() error {
	d.stats = Stats{}
	d.buf = d.buf[:0]
	d.i = 0
	ctx := d.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := d.in.Open(); err != nil {
		return err
	}
	for n := 0; ; n++ {
		if n%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		t, ok, err := d.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		d.buf = append(d.buf, t)
	}
	sort.SliceStable(d.buf, func(i, j int) bool {
		a, b := d.buf[i], d.buf[j]
		if c := a.Fact.Compare(b.Fact); c != 0 {
			return c < 0
		}
		if c := a.T.Compare(b.T); c != 0 {
			return c < 0
		}
		la, lb := uint64(0), uint64(0)
		if a.Lineage != nil {
			la = a.Lineage.Hash()
		}
		if b.Lineage != nil {
			lb = b.Lineage.Hash()
		}
		return la < lb
	})
	out := d.buf[:0]
	for i, t := range d.buf {
		if i > 0 {
			p := out[len(out)-1]
			if p.Fact.Equal(t.Fact) && p.T.Equal(t.T) && lineageEq(p, t) {
				continue
			}
		}
		out = append(out, t)
	}
	d.buf = out
	return nil
}

func lineageEq(a, b tp.Tuple) bool {
	if a.Lineage == nil || b.Lineage == nil {
		return a.Lineage == b.Lineage
	}
	return a.Lineage.Equal(b.Lineage)
}

func (d *Distinct) Next() (tp.Tuple, bool, error) {
	if d.i >= len(d.buf) {
		return tp.Tuple{}, false, nil
	}
	t := d.buf[d.i]
	d.i++
	d.stats.Rows++
	return t, true, nil
}

func (d *Distinct) Close() error { return d.in.Close() }

// Probs implements Operator.
func (d *Distinct) Probs() prob.Probs { return d.in.Probs() }
