package engine

import (
	"fmt"

	"tpjoin/internal/align"
	"tpjoin/internal/core"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// Strategy selects the physical implementation of a TP join.
type Strategy uint8

// The available join strategies.
const (
	// StrategyNJ is the paper's approach: pipelined lineage-aware window
	// computation (OverlapJoin → LAWAU → LAWAN).
	StrategyNJ Strategy = iota
	// StrategyTA is the Temporal Alignment baseline: blocking, with tuple
	// replication and a duplicate-eliminating union.
	StrategyTA
	// StrategyPNJ is the partitioned-parallel NJ executor: both inputs are
	// hash-partitioned on the equi key and the NJ pipeline runs on every
	// partition concurrently (core.ParallelJoin). Output order is
	// deterministic (partition-major) but differs from StrategyNJ's. It
	// requires an equi-join condition and materializes at Open.
	StrategyPNJ

	// NumStrategies is the number of defined strategies. Keep it in sync
	// with the enum above (TestStrategyString guards this): per-strategy
	// metrics arrays are sized by it, so a strategy beyond it would be
	// silently dropped from \metrics.
	NumStrategies = iota
)

func (s Strategy) String() string {
	switch s {
	case StrategyNJ:
		return "NJ"
	case StrategyTA:
		return "TA"
	case StrategyPNJ:
		return "PNJ"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// TPJoin is the executor node for temporal-probabilistic joins with
// negation. Under StrategyNJ the result streams tuple-by-tuple out of the
// window pipeline; under StrategyTA the result is materialized at Open
// (alignment is inherently blocking) and then scanned.
type TPJoin struct {
	base
	op       tp.Op
	left     Operator
	right    Operator
	theta    tp.Theta
	strategy Strategy
	taCfg    align.Config
	workers  int // PNJ worker count; 0 means GOMAXPROCS

	stream core.TupleIterator // NJ
	mat    *tp.Relation       // TA / PNJ
	mi     int
	probs  prob.Probs
}

// NewTPJoin builds a TP join node over two children.
func NewTPJoin(op tp.Op, left, right Operator, theta tp.Theta, strategy Strategy, taCfg align.Config) *TPJoin {
	j := &TPJoin{
		op: op, left: left, right: right, theta: theta,
		strategy: strategy, taCfg: taCfg,
	}
	if op == tp.OpAnti {
		j.attrs = append([]string(nil), left.Attrs()...)
	} else {
		j.attrs = append(append([]string(nil), left.Attrs()...), right.Attrs()...)
	}
	return j
}

// SetWorkers sets the PNJ worker count (0 = GOMAXPROCS). It has no effect
// on the other strategies.
func (j *TPJoin) SetWorkers(n int) { j.workers = n }

// Workers returns the configured PNJ worker count.
func (j *TPJoin) Workers() int { return j.workers }

func (j *TPJoin) Open() error {
	j.stats = Stats{}
	j.stream = nil
	j.mat = nil
	j.mi = 0
	r, err := childRelation(j.left, "l")
	if err != nil {
		return err
	}
	s, err := childRelation(j.right, "r")
	if err != nil {
		return err
	}
	j.probs = tp.MergeProbs(r, s)
	switch j.strategy {
	case StrategyNJ:
		j.stream, _ = core.JoinStream(j.op, r, s, j.theta)
	case StrategyTA:
		j.mat = align.Join(j.op, r, s, j.theta, j.taCfg)
	case StrategyPNJ:
		eq, ok := j.theta.(tp.EquiTheta)
		if !ok {
			return fmt.Errorf("engine: PNJ strategy requires an equi-join condition (got %T)", j.theta)
		}
		j.mat = core.ParallelJoin(j.op, r, s, eq, j.workers)
	default:
		return fmt.Errorf("engine: unknown join strategy %v", j.strategy)
	}
	return nil
}

func (j *TPJoin) Next() (tp.Tuple, bool, error) {
	switch j.strategy {
	case StrategyNJ:
		t, ok := j.stream.Next()
		if !ok {
			return tp.Tuple{}, false, nil
		}
		j.stats.Rows++
		return t, true, nil
	default:
		if j.mi >= len(j.mat.Tuples) {
			return tp.Tuple{}, false, nil
		}
		t := j.mat.Tuples[j.mi]
		j.mi++
		j.stats.Rows++
		return t, true, nil
	}
}

func (j *TPJoin) Close() error {
	errL := j.left.Close()
	errR := j.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Probs implements Operator.
func (j *TPJoin) Probs() prob.Probs {
	if j.probs != nil {
		return j.probs
	}
	return tp.MergeProbs(
		&tp.Relation{Probs: j.left.Probs()},
		&tp.Relation{Probs: j.right.Probs()},
	)
}

// childRelation obtains the child's tuples as a relation. A bare Scan
// passes its relation through without copying (the common case, keeping
// the NJ pipeline zero-copy); any other child is drained once into a
// per-query temporary, marked Transient so downstream operators skip the
// per-relation derived-structure caches for it.
func childRelation(op Operator, tag string) (*tp.Relation, error) {
	if sc, ok := op.(*Scan); ok {
		return sc.Relation(), nil
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := &tp.Relation{
		Name:      "tmp_" + tag,
		Attrs:     append([]string(nil), op.Attrs()...),
		Probs:     op.Probs(),
		Transient: true,
	}
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Tuples = append(out.Tuples, t)
	}
}
