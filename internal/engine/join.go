package engine

import (
	"context"
	"fmt"

	"tpjoin/internal/align"
	"tpjoin/internal/core"
	"tpjoin/internal/mem"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// Strategy selects the physical implementation of a TP join.
type Strategy uint8

// The available join strategies.
const (
	// StrategyNJ is the paper's approach: pipelined lineage-aware window
	// computation (OverlapJoin → LAWAU → LAWAN).
	StrategyNJ Strategy = iota
	// StrategyTA is the Temporal Alignment baseline: blocking, with tuple
	// replication and a duplicate-eliminating union.
	StrategyTA
	// StrategyPNJ is the partitioned-parallel NJ executor: both inputs are
	// hash-partitioned on the equi key and the NJ pipeline runs on every
	// partition concurrently (core.ParallelJoin). Output order is
	// deterministic (partition-major) but differs from StrategyNJ's. It
	// requires an equi-join condition and materializes at Open.
	StrategyPNJ
	// StrategyPTA is the partitioned-parallel TA executor: the PNJ
	// parallelism model applied to the alignment baseline
	// (align.ParallelJoin). Like PNJ it requires an equi-join condition,
	// materializes at Open and produces deterministic partition-major
	// output order.
	StrategyPTA

	// NumStrategies is the number of defined strategies. Keep it in sync
	// with the enum above (TestStrategyString guards this): per-strategy
	// metrics arrays are sized by it, so a strategy beyond it would be
	// silently dropped from \metrics.
	NumStrategies = iota
)

func (s Strategy) String() string {
	switch s {
	case StrategyNJ:
		return "NJ"
	case StrategyTA:
		return "TA"
	case StrategyPNJ:
		return "PNJ"
	case StrategyPTA:
		return "PTA"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// TPJoin is the executor node for temporal-probabilistic joins with
// negation. Under StrategyNJ the result streams tuple-by-tuple out of the
// window pipeline; under the blocking strategies (TA and the two
// partitioned-parallel executors PNJ/PTA) the result is materialized at
// Open and then scanned.
type TPJoin struct {
	base
	op       tp.Op
	left     Operator
	right    Operator
	theta    tp.Theta
	strategy Strategy
	taCfg    align.Config
	workers  int // PNJ worker count; 0 means GOMAXPROCS

	// ctx is the query context bound by RunContext (see ContextBinder):
	// the blocking strategies observe it during their materializing Open.
	// nil means context.Background().
	ctx context.Context
	// instr enables strategy-level stage accounting (set by Instrument);
	// abort records the context error that interrupted a blocking Open,
	// for EXPLAIN ANALYZE's abort annotation.
	instr bool
	abort error

	njInstr  *core.JoinInstr     // NJ stage counters (instr only)
	taStats  *align.Stats        // TA alignment counters (instr only)
	pnjStats *core.ParallelStats // PNJ partition counters (instr only)

	// pick is the planner's cost-model record for this join (nil when the
	// planner attached none, e.g. for hand-built trees); the engine
	// carries it only so EXPLAIN can render the decision.
	pick *AutoPick

	stream core.TupleIterator // NJ
	mat    *tp.Relation       // TA / PNJ
	mi     int
	probs  prob.Probs
}

// StageStat is one strategy-specific ANALYZE detail counter of a TPJoin —
// a window-pipeline stage under NJ, an alignment counter under TA/PTA, a
// partition counter under PNJ/PTA. Batches is only meaningful for batched
// stages and is 0 otherwise.
type StageStat struct {
	Name    string
	Count   int64
	Batches int64
}

// NewTPJoin builds a TP join node over two children.
func NewTPJoin(op tp.Op, left, right Operator, theta tp.Theta, strategy Strategy, taCfg align.Config) *TPJoin {
	j := &TPJoin{
		op: op, left: left, right: right, theta: theta,
		strategy: strategy, taCfg: taCfg,
	}
	if op == tp.OpAnti {
		j.attrs = append([]string(nil), left.Attrs()...)
	} else {
		j.attrs = append(append([]string(nil), left.Attrs()...), right.Attrs()...)
	}
	return j
}

// AutoPick records the planner's cost-model view of one TP join for
// EXPLAIN: the model's estimated cost per physical strategy (indexed by
// Strategy, in model nanoseconds) and one summary line per input of the
// statistics the model consumed. Auto reports whether the cost-based
// picker chose the strategy (as opposed to a forced SET strategy).
type AutoPick struct {
	Auto   bool
	Costs  [NumStrategies]float64
	Inputs []string
}

// SetAutoPick attaches the planner's cost-model record; see AutoPick.
func (j *TPJoin) SetAutoPick(p *AutoPick) { j.pick = p }

// AutoPick returns the planner's cost-model record, or nil.
func (j *TPJoin) AutoPick() *AutoPick { return j.pick }

// SetWorkers sets the worker count of the partitioned-parallel strategies
// (PNJ, PTA; 0 = GOMAXPROCS). It has no effect on the other strategies.
func (j *TPJoin) SetWorkers(n int) { j.workers = n }

// Workers returns the configured parallel worker count.
func (j *TPJoin) Workers() int { return j.workers }

// BindContext implements ContextBinder: the blocking strategies (TA,
// PNJ, PTA) observe ctx during their materializing Open, so a per-query
// timeout or client disconnect aborts mid-Open instead of at the next
// tuple boundary.
func (j *TPJoin) BindContext(ctx context.Context) { j.ctx = ctx }

// AbortErr returns the context error that interrupted the last Open, or
// nil if it ran to completion. EXPLAIN ANALYZE reports it as the node's
// abort reason.
func (j *TPJoin) AbortErr() error { return j.abort }

func (j *TPJoin) Open() error {
	j.stats = Stats{}
	j.stream = nil
	j.mat = nil
	j.mi = 0
	j.abort = nil
	j.njInstr, j.taStats, j.pnjStats = nil, nil, nil
	ctx := j.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r, err := childRelation(ctx, j.left, "l")
	if err != nil {
		j.abort = ctx.Err()
		return err
	}
	s, err := childRelation(ctx, j.right, "r")
	if err != nil {
		j.abort = ctx.Err()
		return err
	}
	j.probs = tp.MergeProbs(r, s)
	switch j.strategy {
	case StrategyNJ:
		// The NJ stream's pooled batch buffers are the strategy's only
		// allocation beyond the result drain (which RunContext charges);
		// budget them up front at checkout size.
		if err := mem.FromContext(ctx).Charge(core.PipelineBytes(j.op)); err != nil {
			return err
		}
		if j.instr {
			j.stream, _, j.njInstr = core.JoinStreamInstrumented(j.op, r, s, j.theta)
		} else {
			j.stream, _ = core.JoinStream(j.op, r, s, j.theta)
		}
	case StrategyTA:
		if j.instr {
			j.taStats = &align.Stats{}
		}
		j.mat, err = align.JoinContext(ctx, j.op, r, s, j.theta, j.taCfg, j.taStats)
		if err != nil {
			j.abort = err
			return err
		}
	case StrategyPNJ:
		eq, ok := j.theta.(tp.EquiTheta)
		if !ok {
			return fmt.Errorf("engine: PNJ strategy requires an equi-join condition (got %T)", j.theta)
		}
		if j.instr {
			j.pnjStats = &core.ParallelStats{}
		}
		j.mat, err = core.ParallelJoinContext(ctx, j.op, r, s, eq, j.workers, j.pnjStats)
		if err != nil {
			j.abort = err
			return err
		}
	case StrategyPTA:
		eq, ok := j.theta.(tp.EquiTheta)
		if !ok {
			return fmt.Errorf("engine: PTA strategy requires an equi-join condition (got %T)", j.theta)
		}
		if j.instr {
			j.taStats = &align.Stats{}
		}
		j.mat, err = align.ParallelJoinContext(ctx, j.op, r, s, eq, j.taCfg, j.workers, j.taStats)
		if err != nil {
			j.abort = err
			return err
		}
	default:
		return fmt.Errorf("engine: unknown join strategy %v", j.strategy)
	}
	return nil
}

// Stages returns the strategy-level ANALYZE detail counters of the last
// run: window-pipeline stages (windows/batches) plus probability batching
// (prob-batches/memo-hits) under NJ, alignment passes/fragments/pre-union
// rows plus the streaming union's dup-avoided and probability batching
// under TA (prefixed by workers/partitions under PTA),
// workers/partitions/tuples under PNJ. It returns nil when the join was
// not instrumented.
func (j *TPJoin) Stages() []StageStat {
	switch {
	case j.njInstr != nil:
		out := make([]StageStat, 0, len(j.njInstr.Stages)+2)
		for _, st := range j.njInstr.Stages {
			out = append(out, StageStat{Name: st.Name, Count: st.Windows, Batches: st.Batches})
		}
		return append(out,
			StageStat{Name: "prob-batches", Count: j.njInstr.ProbBatches},
			StageStat{Name: "memo-hits", Count: j.njInstr.MemoHits})
	case j.taStats != nil:
		out := make([]StageStat, 0, 8)
		if j.taStats.Workers > 0 {
			// The parallel executor (PTA) additionally reports its
			// partitioning; the alignment counters below then aggregate
			// over all partitions.
			out = append(out,
				StageStat{Name: "workers", Count: j.taStats.Workers},
				StageStat{Name: "partitions", Count: j.taStats.Partitions})
		}
		return append(out,
			StageStat{Name: "align-passes", Count: j.taStats.AlignPasses},
			StageStat{Name: "fragments", Count: j.taStats.Fragments},
			StageStat{Name: "pre-union rows", Count: j.taStats.Rows},
			StageStat{Name: "dup-avoided", Count: j.taStats.DupAvoided},
			StageStat{Name: "prob-batches", Count: j.taStats.ProbBatches},
			StageStat{Name: "memo-hits", Count: j.taStats.MemoHits})
	case j.pnjStats != nil:
		return []StageStat{
			{Name: "workers", Count: j.pnjStats.Workers},
			{Name: "partitions", Count: j.pnjStats.Partitions},
			{Name: "partitions-done", Count: j.pnjStats.PartitionsDone.Load()},
			{Name: "partition-tuples", Count: j.pnjStats.Tuples.Load()},
		}
	}
	return nil
}

func (j *TPJoin) Next() (tp.Tuple, bool, error) {
	switch j.strategy {
	case StrategyNJ:
		t, ok := j.stream.Next()
		if !ok {
			return tp.Tuple{}, false, nil
		}
		j.stats.Rows++
		return t, true, nil
	default:
		if j.mi >= len(j.mat.Tuples) {
			return tp.Tuple{}, false, nil
		}
		t := j.mat.Tuples[j.mi]
		j.mi++
		j.stats.Rows++
		return t, true, nil
	}
}

func (j *TPJoin) Close() error {
	errL := j.left.Close()
	errR := j.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Probs implements Operator.
func (j *TPJoin) Probs() prob.Probs {
	if j.probs != nil {
		return j.probs
	}
	return tp.MergeProbs(
		&tp.Relation{Probs: j.left.Probs()},
		&tp.Relation{Probs: j.right.Probs()},
	)
}

// childRelation obtains the child's tuples as a relation. A bare Scan
// passes its relation through without copying (the common case, keeping
// the NJ pipeline zero-copy); any other child is drained once into a
// per-query temporary, marked Transient so downstream operators skip the
// per-relation derived-structure caches for it. The drain observes ctx
// every cancelCheckInterval tuples, so a materializing Open over a large
// subplan aborts promptly too.
func childRelation(ctx context.Context, op Operator, tag string) (*tp.Relation, error) {
	if sc, ok := bareScan(op); ok {
		return sc.Relation(), nil
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := &tp.Relation{
		Name:      "tmp_" + tag,
		Attrs:     append([]string(nil), op.Attrs()...),
		Probs:     op.Probs(),
		Transient: true,
	}
	gauge := mem.FromContext(ctx)
	perCheck := cancelCheckInterval * mem.TupleBytes(len(out.Attrs))
	for n := 0; ; n++ {
		if n%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if n > 0 {
				if err := gauge.Charge(perCheck); err != nil {
					return nil, err
				}
			}
		}
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Tuples = append(out.Tuples, t)
	}
}

// bareScan unwraps the ANALYZE accounting decorator when looking for the
// zero-copy Scan fast path: a scan input is borrowed without copying in
// instrumented and plain execution alike, so EXPLAIN ANALYZE measures the
// same plan a plain query runs (no input copies, no bypass of the
// per-relation derived-structure caches). The borrowed scan node then
// reports rows=0 — it was never pulled, which is exactly what happened.
func bareScan(op Operator) (*Scan, bool) {
	if i, ok := op.(*Instrumented); ok {
		op = i.op
	}
	sc, ok := op.(*Scan)
	return sc, ok
}
