// Package engine is a small Volcano-style (pull-based iterator) query
// executor over temporal-probabilistic relations. It plays the role the
// modified PostgreSQL executor plays in the paper: the NJ join operators
// (internal/core) plug into it as ordinary pipelined operators, which is
// the paper's integration claim — lineage-aware window computation needs
// no tuple replication and no materialization barriers beyond those of a
// conventional hash join.
//
// Operators follow the classic Open/Next/Close contract and report
// per-operator statistics (rows produced) for EXPLAIN ANALYZE-style
// output.
package engine

import (
	"context"
	"fmt"

	"tpjoin/internal/mem"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// Operator is a pull-based executor node producing TP tuples.
type Operator interface {
	// Open prepares the operator (and its children) for execution.
	Open() error
	// Next returns the next tuple. ok is false at end of stream.
	Next() (t tp.Tuple, ok bool, err error)
	// Close releases resources. It is safe to call after exhaustion.
	Close() error
	// Attrs returns the output attribute names.
	Attrs() []string
	// Probs returns the probabilities of the base events that may appear
	// in the lineages of produced tuples.
	Probs() prob.Probs
	// Stats returns the rows produced so far.
	Stats() Stats
}

// Stats carries per-operator runtime counters.
type Stats struct {
	Rows int64
}

// base provides common bookkeeping for operators.
type base struct {
	attrs []string
	stats Stats
}

func (b *base) Attrs() []string { return b.attrs }
func (b *base) Stats() Stats    { return b.stats }

// Run drains op into a relation named name, opening and closing it.
func Run(op Operator, name string) (*tp.Relation, error) {
	return RunContext(context.Background(), op, name)
}

// cancelCheckInterval is how many tuples RunContext drains between
// context checks: frequent enough that per-query timeouts bite within
// microseconds on the pipelined NJ operators, rare enough that the check
// never shows up in profiles.
const cancelCheckInterval = 256

// RunContext drains op into a relation named name, opening and closing
// it, and aborts with ctx.Err() when the context is cancelled or its
// deadline passes. Cancellation is observed before Open, inside blocking
// Opens (ctx is bound over the tree first, so the TA baseline checks it
// between alignment batches and the PNJ partition workers between
// partitions — see ContextBinder), and then every cancelCheckInterval
// tuples while draining. A memory budget on ctx (mem.WithGauge) is
// charged for the materialized result at the same checkpoints, so a
// runaway result set aborts with a budget error as promptly as a timeout
// would fire.
func RunContext(ctx context.Context, op Operator, name string) (*tp.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	BindContext(ctx, op)
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := &tp.Relation{
		Name:  name,
		Attrs: append([]string(nil), op.Attrs()...),
		Probs: op.Probs(),
	}
	gauge := mem.FromContext(ctx)
	perCheck := cancelCheckInterval * mem.TupleBytes(len(out.Attrs))
	for n := 0; ; n++ {
		if n%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if n > 0 {
				if err := gauge.Charge(perCheck); err != nil {
					return nil, err
				}
			}
		}
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Tuples = append(out.Tuples, t)
	}
}

// --- Scan ---

// Scan produces the tuples of a materialized relation.
type Scan struct {
	base
	rel *tp.Relation
	i   int
}

// NewScan returns a scan over rel.
func NewScan(rel *tp.Relation) *Scan {
	return &Scan{base: base{attrs: rel.Attrs}, rel: rel}
}

func (s *Scan) Open() error {
	s.i = 0
	s.stats = Stats{}
	return nil
}

func (s *Scan) Next() (tp.Tuple, bool, error) {
	if s.i >= len(s.rel.Tuples) {
		return tp.Tuple{}, false, nil
	}
	t := s.rel.Tuples[s.i]
	s.i++
	s.stats.Rows++
	return t, true, nil
}

func (s *Scan) Close() error { return nil }

// Relation exposes the scanned relation (used by join operators that need
// the base-event probabilities).
func (s *Scan) Relation() *tp.Relation { return s.rel }

// Probs implements Operator.
func (s *Scan) Probs() prob.Probs { return s.rel.Probs }

// --- Filter ---

// Predicate decides whether an output tuple passes a filter.
type Predicate func(tp.Tuple) bool

// Filter passes through tuples satisfying the predicate.
type Filter struct {
	base
	in   Operator
	pred Predicate
}

// NewFilter wraps in with a predicate.
func NewFilter(in Operator, pred Predicate) *Filter {
	return &Filter{base: base{attrs: in.Attrs()}, in: in, pred: pred}
}

func (f *Filter) Open() error { f.stats = Stats{}; return f.in.Open() }

func (f *Filter) Next() (tp.Tuple, bool, error) {
	for {
		t, ok, err := f.in.Next()
		if err != nil || !ok {
			return tp.Tuple{}, false, err
		}
		if f.pred(t) {
			f.stats.Rows++
			return t, true, nil
		}
	}
}

func (f *Filter) Close() error { return f.in.Close() }

// Probs implements Operator.
func (f *Filter) Probs() prob.Probs { return f.in.Probs() }

// --- Project ---

// Project selects (and reorders) fact attributes by index.
type Project struct {
	base
	in   Operator
	cols []int
}

// NewProject returns a projection of in to the given column indexes, named
// by names (which must have the same length as cols).
func NewProject(in Operator, cols []int, names []string) (*Project, error) {
	if len(cols) != len(names) {
		return nil, fmt.Errorf("engine: project arity mismatch: %d cols, %d names", len(cols), len(names))
	}
	inAttrs := in.Attrs()
	for _, c := range cols {
		if c < 0 || c >= len(inAttrs) {
			return nil, fmt.Errorf("engine: project column %d out of range (input has %d)", c, len(inAttrs))
		}
	}
	return &Project{base: base{attrs: names}, in: in, cols: cols}, nil
}

func (p *Project) Open() error { p.stats = Stats{}; return p.in.Open() }

func (p *Project) Next() (tp.Tuple, bool, error) {
	t, ok, err := p.in.Next()
	if err != nil || !ok {
		return tp.Tuple{}, false, err
	}
	f := make(tp.Fact, len(p.cols))
	for i, c := range p.cols {
		f[i] = t.Fact[c]
	}
	t.Fact = f
	p.stats.Rows++
	return t, true, nil
}

func (p *Project) Close() error { return p.in.Close() }

// Probs implements Operator.
func (p *Project) Probs() prob.Probs { return p.in.Probs() }

// --- Limit ---

// Limit passes through at most n tuples.
type Limit struct {
	base
	in   Operator
	n    int
	seen int
}

// NewLimit caps in at n tuples.
func NewLimit(in Operator, n int) *Limit {
	return &Limit{base: base{attrs: in.Attrs()}, in: in, n: n}
}

func (l *Limit) Open() error { l.seen = 0; l.stats = Stats{}; return l.in.Open() }

func (l *Limit) Next() (tp.Tuple, bool, error) {
	if l.seen >= l.n {
		return tp.Tuple{}, false, nil
	}
	t, ok, err := l.in.Next()
	if err != nil || !ok {
		return tp.Tuple{}, false, err
	}
	l.seen++
	l.stats.Rows++
	return t, true, nil
}

func (l *Limit) Close() error { return l.in.Close() }

// Probs implements Operator.
func (l *Limit) Probs() prob.Probs { return l.in.Probs() }

// --- UnionAll ---

// UnionAll concatenates the streams of its children (schemas must match in
// arity; names are taken from the first child).
type UnionAll struct {
	base
	ins []Operator
	cur int
}

// NewUnionAll concatenates ins.
func NewUnionAll(ins ...Operator) (*UnionAll, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("engine: union of nothing")
	}
	arity := len(ins[0].Attrs())
	for _, in := range ins[1:] {
		if len(in.Attrs()) != arity {
			return nil, fmt.Errorf("engine: union arity mismatch: %d vs %d", arity, len(in.Attrs()))
		}
	}
	return &UnionAll{base: base{attrs: ins[0].Attrs()}, ins: ins}, nil
}

func (u *UnionAll) Open() error {
	u.cur = 0
	u.stats = Stats{}
	for _, in := range u.ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *UnionAll) Next() (tp.Tuple, bool, error) {
	for u.cur < len(u.ins) {
		t, ok, err := u.ins[u.cur].Next()
		if err != nil {
			return tp.Tuple{}, false, err
		}
		if ok {
			u.stats.Rows++
			return t, true, nil
		}
		u.cur++
	}
	return tp.Tuple{}, false, nil
}

func (u *UnionAll) Close() error {
	var first error
	for _, in := range u.ins {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Probs implements Operator, merging the children's base events.
func (u *UnionAll) Probs() prob.Probs {
	out := make(prob.Probs)
	for _, in := range u.ins {
		for v, p := range in.Probs() {
			out[v] = p
		}
	}
	return out
}
