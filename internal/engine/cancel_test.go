package engine

// Cancellation regression tests for the blocking join strategies: TA and
// PNJ materialize their result at Open, and before the query context was
// propagated into them a per-query timeout only fired at the next tuple
// boundary — i.e. after the whole blocking Open ran to completion
// (minutes on the large Meteo workloads). These tests pin the contract
// that a context cancelled mid-Open surfaces as context.Canceled /
// DeadlineExceeded within a tight deadline, and that no partition worker
// goroutine outlives a cancelled PNJ.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"tpjoin/internal/align"
	"tpjoin/internal/dataset"
	"tpjoin/internal/tp"
)

// cancelGrace is how long after cancellation a blocking Open may take to
// surface the context error. The uncancelled joins below run for several
// seconds (see BENCH_1.json: TA meteo-20000 ≈ 9 s, NJ meteo-20000 ≈ 2 s
// single-threaded), so returning within the grace proves the abort
// happened mid-Open, not at completion. Generous because CI machines are
// slow, strict enough to be meaningless if the strategy ignored ctx.
const cancelGrace = 2 * time.Second

// cancelAfter is the head start the blocking Open gets before the
// context fires, enough to be deep inside the materialization.
const cancelAfter = 100 * time.Millisecond

func requireCtxErr(t *testing.T, label string, err error, elapsed time.Duration) {
	t.Helper()
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("%s: err = %v, want context.Canceled or DeadlineExceeded (join finished before the cancel? elapsed %v)",
			label, err, elapsed)
	}
	if elapsed > cancelAfter+cancelGrace {
		t.Fatalf("%s: took %v to observe cancellation, want ≤ %v after the cancel",
			label, elapsed, cancelGrace)
	}
}

// TestTACancelledMidOpen: a TA join over a large build side must abort
// mid-alignment. Meteo at this size takes several seconds under TA
// (non-selective θ, large per-key groups); the test cancels after 100 ms.
func TestTACancelledMidOpen(t *testing.T) {
	r, s := dataset.Meteo(20000, 1)
	ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
	defer cancel()
	j := NewTPJoin(tp.OpLeft, NewScan(r), NewScan(s), dataset.MeteoTheta(), StrategyTA, align.Config{})
	start := time.Now()
	_, err := RunContext(ctx, j, "out")
	requireCtxErr(t, "TA", err, time.Since(start))
}

// TestPNJCancelledMidOpen: a PNJ with more than one worker must abort
// between partition batches; the partition workers are joined before the
// error returns, so no goroutine outlives the query (checked below).
func TestPNJCancelledMidOpen(t *testing.T) {
	r, s := dataset.Meteo(20000, 1)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
	defer cancel()
	j := NewTPJoin(tp.OpLeft, NewScan(r), NewScan(s), dataset.MeteoTheta(), StrategyPNJ, align.Config{})
	j.SetWorkers(2)
	start := time.Now()
	_, err := RunContext(ctx, j, "out")
	requireCtxErr(t, "PNJ", err, time.Since(start))

	// Goroutine-leak check: the partition workers must be gone. NumGoroutine
	// counts unrelated runtime goroutines too, so allow settling time and a
	// small slack for background scavenging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after cancelled PNJ: %d, want ≤ %d (+2 slack): partition workers leaked",
				runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPTACancelledMidOpen: the partitioned-parallel TA executor must
// abort mid-alignment like its sequential counterpart, with all partition
// workers joined before the error returns.
func TestPTACancelledMidOpen(t *testing.T) {
	r, s := dataset.Meteo(20000, 1)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
	defer cancel()
	j := NewTPJoin(tp.OpLeft, NewScan(r), NewScan(s), dataset.MeteoTheta(), StrategyPTA, align.Config{})
	j.SetWorkers(2)
	start := time.Now()
	_, err := RunContext(ctx, j, "out")
	requireCtxErr(t, "PTA", err, time.Since(start))

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after cancelled PTA: %d, want ≤ %d (+2 slack): partition workers leaked",
				runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExplainAnalyzeReportsAbort: the plan layer turns a mid-Open abort
// into ANALYZE output rather than an error; here we only pin the engine
// side — the join records the abort reason for the renderer.
func TestJoinRecordsAbortReason(t *testing.T) {
	r, s := dataset.Meteo(20000, 1)
	ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
	defer cancel()
	j := NewTPJoin(tp.OpLeft, NewScan(r), NewScan(s), dataset.MeteoTheta(), StrategyTA, align.Config{})
	if _, err := RunContext(ctx, j, "out"); err == nil {
		t.Fatal("expected a context error")
	}
	if err := j.AbortErr(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AbortErr = %v, want DeadlineExceeded", err)
	}
}
