package engine

import "tpjoin/internal/tp"

// Child accessors used by EXPLAIN rendering (internal/plan).

// Child returns the input operator.
func (f *Filter) Child() Operator { return f.in }

// Child returns the input operator.
func (p *Project) Child() Operator { return p.in }

// Child returns the input operator.
func (l *Limit) Child() Operator { return l.in }

// Child returns the input operator.
func (s *Sort) Child() Operator { return s.in }

// Child returns the input operator.
func (d *Distinct) Child() Operator { return d.in }

// Children returns the union's inputs.
func (u *UnionAll) Children() []Operator { return u.ins }

// Op returns the join operator kind.
func (j *TPJoin) Op() tp.Op { return j.op }

// Strategy returns the physical strategy of the join.
func (j *TPJoin) Strategy() Strategy { return j.strategy }

// Children returns the join's inputs.
func (j *TPJoin) Children() []Operator { return []Operator{j.left, j.right} }
