// Package catalog manages named temporal-probabilistic relations and their
// persistence as CSV files. The CSV layout is one row per tuple:
//
//	attr1,...,attrN,tstart,tend,prob
//
// with a header row naming the fact attributes followed by the fixed
// columns Tstart, Tend, P. Loading assigns fresh base-event variables in
// file order, exactly like Relation.Append.
package catalog

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"

	"tpjoin/internal/interval"
	"tpjoin/internal/stats"
	"tpjoin/internal/tp"
)

// Catalog is a registry of named relations. It is safe for concurrent use
// by multiple sessions: the name → relation map is guarded by an RWMutex
// and registration replaces relations wholesale (pointer swap), so a
// *tp.Relation obtained from Lookup is a stable snapshot — readers holding
// it are unaffected by a later CREATE TABLE or drop of the same name.
// Relations must therefore be treated as immutable once registered;
// Register copies nothing, it publishes the pointer.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*tp.Relation

	// stats caches per-relation statistics for the cost-based strategy
	// picker and the \stats builtin, invalidated by each relation's
	// (length, Version) pair so they are rebuilt lazily on first use
	// after a mutation.
	stats *stats.Cache
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{rels: make(map[string]*tp.Relation), stats: stats.NewCache()}
}

// Stats returns rel's statistics profile, computed lazily and cached on
// the catalog. rel need not be registered (per-query temporaries are
// computed without caching); registered relations share one cached
// profile across all sessions.
func (c *Catalog) Stats(rel *tp.Relation) *stats.Stats {
	return c.stats.Get(rel)
}

// Register adds (or replaces) a relation under its name. The relation must
// satisfy the sequenced-TP integrity constraint. Validation runs outside
// the lock: the relation is not yet shared.
func (c *Catalog) Register(rel *tp.Relation) error {
	if rel.Name == "" {
		return fmt.Errorf("catalog: relation has no name")
	}
	if err := rel.ValidateSequenced(); err != nil {
		return fmt.Errorf("catalog: refusing to register %s: %w", rel.Name, err)
	}
	c.mu.Lock()
	c.rels[rel.Name] = rel
	c.mu.Unlock()
	return nil
}

// Lookup returns the relation with the given name. The returned relation
// is a stable snapshot: concurrent re-registration under the same name
// swaps the map entry but never mutates a published relation.
func (c *Catalog) Lookup(name string) (*tp.Relation, error) {
	c.mu.RLock()
	rel, ok := c.rels[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q (have %v)", name, c.Names())
	}
	return rel, nil
}

// Names lists the registered relation names in sorted order. The slice is
// a copy and remains valid after concurrent catalog changes.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Snapshot returns a copy-on-read view of the whole catalog: relation
// pointers keyed by name at one instant. Mutating the returned map does
// not affect the catalog.
func (c *Catalog) Snapshot() map[string]*tp.Relation {
	c.mu.RLock()
	out := make(map[string]*tp.Relation, len(c.rels))
	for n, r := range c.rels {
		out[n] = r
	}
	c.mu.RUnlock()
	return out
}

// Drop removes a relation; it reports whether the relation existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	_, ok := c.rels[name]
	delete(c.rels, name)
	c.mu.Unlock()
	return ok
}

// WriteCSV writes rel to w.
func WriteCSV(w io.Writer, rel *tp.Relation) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), rel.Attrs...), "Tstart", "Tend", "P")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range rel.Tuples {
		for i, v := range t.Fact {
			row[i] = v.String()
		}
		n := len(rel.Attrs)
		row[n] = strconv.FormatInt(t.T.Start, 10)
		row[n+1] = strconv.FormatInt(t.T.End, 10)
		row[n+2] = strconv.FormatFloat(t.Prob, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes rel to the named file.
func SaveCSV(path string, rel *tp.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSV reads a relation named name from r. All fact attributes are
// loaded as strings; the trailing three columns are start, end and
// probability.
func ReadCSV(rd io.Reader, name string) (*tp.Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("catalog: reading header: %w", err)
	}
	if len(header) < 4 {
		return nil, fmt.Errorf("catalog: header needs at least one attribute plus Tstart,Tend,P, got %v", header)
	}
	attrs := header[:len(header)-3]
	rel := tp.NewRelation(name, attrs...)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("catalog: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("catalog: line %d: %d fields, want %d", line, len(rec), len(header))
		}
		n := len(attrs)
		start, err := strconv.ParseInt(rec[n], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("catalog: line %d: bad Tstart %q", line, rec[n])
		}
		end, err := strconv.ParseInt(rec[n+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("catalog: line %d: bad Tend %q", line, rec[n+1])
		}
		if start >= end {
			return nil, fmt.Errorf("catalog: line %d: empty interval [%d,%d)", line, start, end)
		}
		p, err := strconv.ParseFloat(rec[n+2], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("catalog: line %d: bad probability %q", line, rec[n+2])
		}
		fact := make(tp.Fact, n)
		for i := 0; i < n; i++ {
			fact[i] = tp.String_(rec[i])
		}
		rel.Append(fact, interval.New(start, end), p)
	}
	return rel, nil
}

// LoadCSV reads the named file into a relation called name.
func LoadCSV(path, name string) (*tp.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name)
}
