package catalog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// Binary relation format (.tpr): unlike CSV, it round-trips *derived*
// relations — full lineage expressions, typed attribute values and the
// base-event probability map.
//
// Layout (integers little-endian fixed or uvarint as noted):
//
//	magic    "TPR1"
//	name     uvarint len + bytes
//	attrs    uvarint count, each uvarint len + bytes
//	probs    uvarint count, each: rel name (uvarint len + bytes),
//	         uvarint id, float64 bits
//	tuples   uvarint count, each:
//	           fact values (typed; tag byte + payload)
//	           int64 start, int64 end (varint, zig-zag)
//	           float64 prob bits
//	           lineage (lineage.Encoder framing, shared dictionary)

const binaryMagic = "TPR1"

// SaveBinary writes rel to the named file in the binary format.
func SaveBinary(path string, rel *tp.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := WriteBinary(w, rel); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a relation from the named file.
func LoadBinary(path string) (*tp.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(bufio.NewReader(f))
}

// WriteBinary serializes rel to w.
func WriteBinary(w io.Writer, rel *tp.Relation) error {
	if _, err := io.WriteString(w, binaryMagic); err != nil {
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(w, uint64(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	}
	if err := writeString(rel.Name); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(rel.Attrs))); err != nil {
		return err
	}
	for _, a := range rel.Attrs {
		if err := writeString(a); err != nil {
			return err
		}
	}
	// Probability map, sorted for deterministic output.
	vars := make([]lineage.Var, 0, len(rel.Probs))
	for v := range rel.Probs {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Less(vars[j]) })
	if err := writeUvarint(w, uint64(len(vars))); err != nil {
		return err
	}
	for _, v := range vars {
		if err := writeString(v.Rel); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(v.ID)); err != nil {
			return err
		}
		if err := writeFloat(w, rel.Probs[v]); err != nil {
			return err
		}
	}
	if err := writeUvarint(w, uint64(len(rel.Tuples))); err != nil {
		return err
	}
	enc := lineage.NewEncoder(w)
	for i := range rel.Tuples {
		t := &rel.Tuples[i]
		if len(t.Fact) != len(rel.Attrs) {
			return fmt.Errorf("catalog: tuple %d arity %d != schema %d", i, len(t.Fact), len(rel.Attrs))
		}
		for _, v := range t.Fact {
			if err := writeValue(w, v); err != nil {
				return err
			}
		}
		if err := writeVarint(w, t.T.Start); err != nil {
			return err
		}
		if err := writeVarint(w, t.T.End); err != nil {
			return err
		}
		if err := writeFloat(w, t.Prob); err != nil {
			return err
		}
		if t.Lineage == nil {
			return fmt.Errorf("catalog: tuple %d has nil lineage", i)
		}
		if err := enc.Encode(t.Lineage); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary deserializes a relation from r.
func ReadBinary(r io.Reader) (*tp.Relation, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		return nil, fmt.Errorf("catalog: reader must implement io.ByteReader (wrap in bufio.Reader)")
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("catalog: bad magic %q", magic)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("catalog: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	name, err := readString()
	if err != nil {
		return nil, err
	}
	nAttrs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	attrs := make([]string, nAttrs)
	for i := range attrs {
		if attrs[i], err = readString(); err != nil {
			return nil, err
		}
	}
	rel := &tp.Relation{Name: name, Attrs: attrs, Probs: make(prob.Probs)}
	nProbs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nProbs; i++ {
		relName, err := readString()
		if err != nil {
			return nil, err
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		p, err := readFloat(r)
		if err != nil {
			return nil, err
		}
		rel.Probs[lineage.Var{Rel: relName, ID: int(id)}] = p
	}
	nTuples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	dec := lineage.NewDecoder(r)
	for i := uint64(0); i < nTuples; i++ {
		fact := make(tp.Fact, nAttrs)
		for j := range fact {
			if fact[j], err = readValue(r, br); err != nil {
				return nil, err
			}
		}
		start, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		end, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		if start >= end {
			return nil, fmt.Errorf("catalog: tuple %d has empty interval [%d,%d)", i, start, end)
		}
		p, err := readFloat(r)
		if err != nil {
			return nil, err
		}
		lam, err := dec.Decode()
		if err != nil {
			return nil, err
		}
		rel.Tuples = append(rel.Tuples, tp.Tuple{
			Fact: fact, Lineage: lam,
			T: interval.New(start, end), Prob: p,
		})
	}
	return rel, nil
}

// --- value encoding: tag byte + payload ---

func writeValue(w io.Writer, v tp.Value) error {
	switch v.Kind() {
	case tp.KindNull:
		_, err := w.Write([]byte{0})
		return err
	case tp.KindInt:
		if _, err := w.Write([]byte{1}); err != nil {
			return err
		}
		return writeVarint(w, v.AsInt())
	case tp.KindFloat:
		if _, err := w.Write([]byte{2}); err != nil {
			return err
		}
		return writeFloat(w, v.AsFloat())
	default:
		if _, err := w.Write([]byte{3}); err != nil {
			return err
		}
		s := v.AsString()
		if err := writeUvarint(w, uint64(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	}
}

func readValue(r io.Reader, br io.ByteReader) (tp.Value, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return tp.Value{}, err
	}
	switch tag {
	case 0:
		return tp.Null(), nil
	case 1:
		i, err := binary.ReadVarint(br)
		if err != nil {
			return tp.Value{}, err
		}
		return tp.Int(i), nil
	case 2:
		f, err := readFloat(r)
		if err != nil {
			return tp.Value{}, err
		}
		return tp.Float(f), nil
	case 3:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return tp.Value{}, err
		}
		if n > 1<<24 {
			return tp.Value{}, fmt.Errorf("catalog: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return tp.Value{}, err
		}
		return tp.String_(string(b)), nil
	default:
		return tp.Value{}, fmt.Errorf("catalog: unknown value tag %d", tag)
	}
}

func writeUvarint(w io.Writer, x uint64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	_, err := w.Write(b[:n])
	return err
}

func writeVarint(w io.Writer, x int64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], x)
	_, err := w.Write(b[:n])
	return err
}

func writeFloat(w io.Writer, f float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	_, err := w.Write(b[:])
	return err
}

func readFloat(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}
