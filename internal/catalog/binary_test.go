package catalog

import (
	"bufio"
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tpjoin/internal/core"
	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
)

func paperRelations() (*tp.Relation, *tp.Relation) {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	return a, b
}

func assertRelationsEqual(t *testing.T, got, want *tp.Relation) {
	t.Helper()
	if got.Name != want.Name || len(got.Attrs) != len(want.Attrs) {
		t.Fatalf("header mismatch: %s%v vs %s%v", got.Name, got.Attrs, want.Name, want.Attrs)
	}
	for i, a := range want.Attrs {
		if got.Attrs[i] != a {
			t.Fatalf("attr %d: %q vs %q", i, got.Attrs[i], a)
		}
	}
	if len(got.Probs) != len(want.Probs) {
		t.Fatalf("probs size %d vs %d", len(got.Probs), len(want.Probs))
	}
	for v, p := range want.Probs {
		if got.Probs[v] != p {
			t.Fatalf("prob of %v: %g vs %g", v, got.Probs[v], p)
		}
	}
	if got.Len() != want.Len() {
		t.Fatalf("tuple count %d vs %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		g, w := got.Tuples[i], want.Tuples[i]
		if !g.Fact.Equal(w.Fact) || !g.T.Equal(w.T) || g.Prob != w.Prob {
			t.Fatalf("tuple %d differs: %v vs %v", i, g, w)
		}
		if !g.Lineage.Equal(w.Lineage) {
			t.Fatalf("tuple %d lineage: %v vs %v", i, g.Lineage, w.Lineage)
		}
	}
}

func TestBinaryRoundTripBase(t *testing.T) {
	a, _ := paperRelations()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertRelationsEqual(t, got, a)
}

func TestBinaryRoundTripDerived(t *testing.T) {
	// The whole point of the binary format: a join result with composite
	// lineages and NULLs survives the round trip. CSV cannot do this.
	a, b := paperRelations()
	q := core.LeftOuterJoin(a, b, tp.Equi(1, 1))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, q); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertRelationsEqual(t, got, q)
	// The reloaded relation is fully functional: joins again correctly.
	q2 := core.AntiJoin(got, b, tp.Equi(1, 1))
	pm, err := tp.Expand(q2)
	if err != nil {
		t.Fatalf("reloaded relation not joinable: %v", err)
	}
	ref := tp.RefJoin(tp.OpAnti, q, b, tp.Equi(1, 1))
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Fatalf("reloaded relation joins differently: %v", err)
	}
}

func TestBinaryRoundTripTypedValues(t *testing.T) {
	r := &tp.Relation{Name: "typed", Attrs: []string{"A", "B", "C", "D"}}
	r.Probs = map[lineage.Var]float64{{Rel: "e", ID: 1}: 0.5}
	r.AppendDerived(
		tp.Fact{tp.Int(-42), tp.Float(2.75), tp.String_("héllo"), tp.Null()},
		lineage.NewVar("e", 1), interval.New(-5, 5), 0.5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, r); err != nil {
		t.Fatalf("%v", err)
	}
	got, err := ReadBinary(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("%v", err)
	}
	assertRelationsEqual(t, got, r)
	if got.Tuples[0].Fact[0].AsInt() != -42 || got.Tuples[0].Fact[1].AsFloat() != 2.75 {
		t.Errorf("typed values corrupted: %v", got.Tuples[0].Fact)
	}
	if !got.Tuples[0].Fact[3].IsNull() {
		t.Errorf("NULL lost")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	a, b := paperRelations()
	q := core.FullOuterJoin(a, b, tp.Equi(1, 1))
	path := filepath.Join(t.TempDir(), "q.tpr")
	if err := SaveBinary(path, q); err != nil {
		t.Fatalf("SaveBinary: %v", err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatalf("LoadBinary: %v", err)
	}
	assertRelationsEqual(t, got, q)
}

func TestBinaryRejectsCorruption(t *testing.T) {
	a, _ := paperRelations()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Bad magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := ReadBinary(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Errorf("bad magic must fail")
	}
	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := ReadBinary(bufio.NewReader(bytes.NewReader(data[:cut]))); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
}

func TestBinaryFuzzRandomLineages(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		e := randLineage(rng, 4)
		var buf bytes.Buffer
		enc := lineage.NewEncoder(&buf)
		if err := enc.Encode(e); err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec := lineage.NewDecoder(&buf)
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Equal(e) {
			t.Fatalf("trial %d: round trip changed expression: %v vs %v", trial, got, e)
		}
	}
}

func TestEncoderSharedDictionary(t *testing.T) {
	// Encoding many expressions over the same relation names must not
	// repeat the names.
	var buf bytes.Buffer
	enc := lineage.NewEncoder(&buf)
	for i := 1; i <= 100; i++ {
		if err := enc.Encode(lineage.NewVar("relation_with_long_name", i)); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() > 100*8+64 {
		t.Errorf("dictionary not shared: %d bytes for 100 vars", buf.Len())
	}
	dec := lineage.NewDecoder(&buf)
	for i := 1; i <= 100; i++ {
		e, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if e.Variable().ID != i || e.Variable().Rel != "relation_with_long_name" {
			t.Fatalf("decode %d wrong: %v", i, e)
		}
	}
}

func TestWriteBinaryRejectsNilLineage(t *testing.T) {
	r := &tp.Relation{Name: "r", Attrs: []string{"K"}}
	r.AppendDerived(tp.Strings("x"), nil, interval.New(0, 1), 0)
	var buf bytes.Buffer
	err := WriteBinary(&buf, r)
	if err == nil || !strings.Contains(err.Error(), "nil lineage") {
		t.Errorf("nil lineage must be rejected, got %v", err)
	}
}

func randLineage(rng *rand.Rand, depth int) *lineage.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		rel := []string{"a", "b", "rel-x"}[rng.Intn(3)]
		return lineage.NewVar(rel, rng.Intn(50))
	}
	switch rng.Intn(4) {
	case 0:
		return lineage.Not(randLineage(rng, depth-1))
	case 1:
		return lineage.And(randLineage(rng, depth-1), randLineage(rng, depth-1))
	case 2:
		return lineage.Or(randLineage(rng, depth-1), randLineage(rng, depth-1), randLineage(rng, depth-1))
	default:
		return lineage.AndNot(randLineage(rng, depth-1), randLineage(rng, depth-1))
	}
}
