package catalog

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func paperA() *tp.Relation {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	return a
}

func TestRegisterLookupDrop(t *testing.T) {
	c := New()
	if err := c.Register(paperA()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	rel, err := c.Lookup("a")
	if err != nil || rel.Len() != 2 {
		t.Fatalf("Lookup: %v", err)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Errorf("unknown relation must error")
	}
	if got := c.Names(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Names = %v", got)
	}
	if !c.Drop("a") || c.Drop("a") {
		t.Errorf("Drop semantics wrong")
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	c := New()
	bad := tp.NewRelation("bad", "X")
	bad.Append(tp.Strings("k"), interval.New(0, 5), 0.5)
	bad.Append(tp.Strings("k"), interval.New(3, 9), 0.5)
	if err := c.Register(bad); err == nil {
		t.Errorf("overlapping same-fact relation must be rejected")
	}
	if err := c.Register(tp.NewRelation("", "X")); err == nil {
		t.Errorf("unnamed relation must be rejected")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := paperA()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, "a")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != a.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), a.Len())
	}
	for i := range a.Tuples {
		if !got.Tuples[i].Fact.Equal(a.Tuples[i].Fact) ||
			!got.Tuples[i].T.Equal(a.Tuples[i].T) ||
			got.Tuples[i].Prob != a.Tuples[i].Prob {
			t.Errorf("tuple %d mismatch: %v vs %v", i, got.Tuples[i], a.Tuples[i])
		}
	}
	if len(got.Probs) != 2 {
		t.Errorf("base events not registered on load")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.csv")
	if err := SaveCSV(path, paperA()); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	got, err := LoadCSV(path, "a2")
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if got.Name != "a2" || got.Len() != 2 {
		t.Errorf("loaded %s with %d tuples", got.Name, got.Len())
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv"), "x"); err == nil {
		t.Errorf("missing file must error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                 // no header
		"OnlyOne\n",                        // too few columns
		"K,Tstart,Tend,P\nx,a,5,0.5\n",     // bad start
		"K,Tstart,Tend,P\nx,1,b,0.5\n",     // bad end
		"K,Tstart,Tend,P\nx,5,5,0.5\n",     // empty interval
		"K,Tstart,Tend,P\nx,1,5,1.5\n",     // bad prob
		"K,Tstart,Tend,P\nx,1,5,0.5,zzz\n", // wrong arity
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), "x"); err == nil {
			t.Errorf("ReadCSV(%q) must fail", src)
		}
	}
}
