package catalog

import (
	"fmt"
	"sync"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func demoRelation(name string) *tp.Relation {
	r := tp.NewRelation(name, "K", "V")
	r.Append(tp.Strings("x", "1"), interval.New(0, 5), 0.5)
	r.Append(tp.Strings("y", "2"), interval.New(3, 9), 0.9)
	return r
}

// TestConcurrentAccess hammers one catalog from many goroutines mixing
// CREATE TABLE-style registration, lookups (SELECT), listing and drops —
// the access pattern of concurrent tpserverd sessions. It is meaningful
// mainly under `go test -race`.
func TestConcurrentAccess(t *testing.T) {
	c := New()
	if err := c.Register(demoRelation("shared")); err != nil {
		t.Fatal(err)
	}
	const (
		sessions = 16
		rounds   = 200
	)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			private := fmt.Sprintf("t%d", s)
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0: // CREATE TABLE private
					if err := c.Register(demoRelation(private)); err != nil {
						t.Errorf("register %s: %v", private, err)
					}
				case 1: // CREATE TABLE shared (replace under contention)
					if err := c.Register(demoRelation("shared")); err != nil {
						t.Errorf("register shared: %v", err)
					}
				case 2: // SELECT: lookup + full read of the snapshot
					rel, err := c.Lookup("shared")
					if err != nil {
						t.Errorf("lookup shared: %v", err)
						continue
					}
					n := 0
					for _, tu := range rel.Tuples {
						n += len(tu.Fact)
					}
					if n == 0 {
						t.Error("shared relation read empty")
					}
				case 3: // \d
					if names := c.Names(); len(names) == 0 {
						t.Error("names empty")
					}
					if snap := c.Snapshot(); snap["shared"] == nil {
						t.Error("snapshot lost shared")
					}
				case 4: // \drop private
					c.Drop(private)
				}
			}
		}(s)
	}
	wg.Wait()
	if _, err := c.Lookup("shared"); err != nil {
		t.Fatalf("shared relation must survive: %v", err)
	}
}

// TestLookupSnapshotStable checks the copy-on-read contract: a relation
// obtained before a same-name re-registration keeps its contents.
func TestLookupSnapshotStable(t *testing.T) {
	c := New()
	r1 := demoRelation("r")
	if err := c.Register(r1); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("r")
	if err != nil {
		t.Fatal(err)
	}
	r2 := tp.NewRelation("r", "K", "V")
	r2.Append(tp.Strings("z", "9"), interval.New(1, 2), 0.1)
	if err := c.Register(r2); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("old snapshot mutated: %d tuples, want 2", got.Len())
	}
	now, err := c.Lookup("r")
	if err != nil {
		t.Fatal(err)
	}
	if now.Len() != 1 {
		t.Errorf("new registration not visible: %d tuples, want 1", now.Len())
	}
}
