// Package fault is a tiny failpoint registry for chaos testing the
// server tier: named injection points compiled into production code paths
// (the accept loop, the wire encoder/decoder, the session goroutine, the
// parallel worker pool) that do nothing until a test — or the TPFAULT
// environment variable — arms them.
//
// The disarmed fast path is one atomic load and a branch, so leaving the
// hooks compiled into release binaries costs nothing measurable; there is
// no build tag to forget. Armed behaviors either return an error (the
// injection point surfaces it through its normal error handling) or panic
// (exercising the containment layers: par.Run's worker recovery,
// shell.Core.Eval's panic-to-error conversion, the server's session
// recover).
package fault

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// armedCount is the number of registered failpoints. Inject's fast path
// loads it once and returns when zero — the production state.
var armedCount atomic.Int32

var (
	mu     sync.RWMutex
	points = map[string]func() error{}
)

// Inject fires the failpoint name if one is armed: it returns the
// injected error (or panics, for a panic-mode failpoint). With nothing
// armed — the production state — it is a single atomic load.
func Inject(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.RLock()
	f := points[name]
	mu.RUnlock()
	if f == nil {
		return nil
	}
	return f()
}

// Set arms the failpoint name with behavior f, replacing any previous
// behavior. f may return an error, panic, block (a test-controlled
// barrier), or return nil to observe the hook without failing it.
func Set(name string, f func() error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armedCount.Add(1)
	}
	points[name] = f
}

// Clear disarms the failpoint name.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armedCount.Add(-1)
	}
}

// Reset disarms every failpoint (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	clear(points)
	armedCount.Store(0)
}

// Errorf returns a behavior that always fails with the formatted error.
func Errorf(format string, args ...any) func() error {
	err := fmt.Errorf(format, args...)
	return func() error { return err }
}

// Panicf returns a behavior that always panics with the formatted
// message, for driving the panic-containment paths.
func Panicf(format string, args ...any) func() error {
	msg := fmt.Sprintf(format, args...)
	return func() error { panic("fault: " + msg) }
}

// Times limits f to its first n firings; afterwards the failpoint is a
// no-op. The counter is atomic, so concurrent injection points (accept
// loop vs sessions) share the quota exactly.
func Times(n int64, f func() error) func() error {
	var fired atomic.Int64
	return func() error {
		if fired.Add(1) > n {
			return nil
		}
		return f()
	}
}

// Arm parses and registers an environment-style failpoint spec:
// semicolon-separated entries of the form
//
//	<point>=error[:message]
//	<point>=panic[:message]
//
// e.g. TPFAULT='server.accept=error:injected;par.worker=panic'. Unknown
// modes are an error; point names are not validated (a typo arms a
// failpoint nothing fires, which Inject treats as disarmed).
func Arm(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, behavior, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("fault: bad spec entry %q (want <point>=<mode>[:message])", entry)
		}
		mode, msg, _ := strings.Cut(behavior, ":")
		if msg == "" {
			msg = "injected fault at " + name
		}
		switch mode {
		case "error":
			Set(name, Errorf("%s", msg))
		case "panic":
			Set(name, Panicf("%s", msg))
		default:
			return fmt.Errorf("fault: unknown mode %q in %q (want error or panic)", mode, entry)
		}
	}
	return nil
}
