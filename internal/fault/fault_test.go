package fault

import (
	"strings"
	"sync"
	"testing"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if err := Inject("anything"); err != nil {
		t.Fatalf("disarmed Inject: %v", err)
	}
}

func TestSetClearReset(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Errorf("boom"))
	if err := Inject("p"); err == nil || err.Error() != "boom" {
		t.Fatalf("armed Inject = %v, want boom", err)
	}
	if err := Inject("other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	Clear("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
	Set("a", Errorf("x"))
	Set("b", Errorf("y"))
	Reset()
	if err := Inject("a"); err != nil {
		t.Fatalf("Reset left a armed: %v", err)
	}
	if err := Inject("b"); err != nil {
		t.Fatalf("Reset left b armed: %v", err)
	}
}

func TestPanicf(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Panicf("kaboom"))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic-mode failpoint did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "kaboom") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	Inject("p")
}

func TestTimes(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Times(3, Errorf("boom")))
	var fired int
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if Inject("p") != nil {
				mu.Lock()
				fired++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fired != 3 {
		t.Fatalf("Times(3) fired %d times", fired)
	}
}

func TestArm(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("server.accept=error:injected accept; par.worker=panic"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("server.accept"); err == nil || err.Error() != "injected accept" {
		t.Fatalf("server.accept = %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("par.worker should panic")
			}
		}()
		Inject("par.worker")
	}()
	if err := Arm("bad"); err == nil {
		t.Fatal("entry without '=' must be rejected")
	}
	if err := Arm("p=explode"); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
}
