package window

import (
	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
)

// This file contains the set-level specification of the three window sets,
// constructing each directly from its definition in Table I. The functions
// are quadratic and materialize everything; they are the reference the
// pipelined sweep algorithms (internal/core) are tested against.

// SpecOverlapping returns WO(r;s,θ): one window per pair (r, s) of tuples
// that overlap temporally and satisfy θ, spanning T = r.T ∩ s.T.
func SpecOverlapping(r, s *tp.Relation, theta tp.Theta) []Window {
	var out []Window
	for ri, rt := range r.Tuples {
		for _, st := range s.Tuples {
			if !rt.T.Overlaps(st.T) || !theta.Match(rt.Fact, st.Fact) {
				continue
			}
			out = append(out, Window{
				Fr: rt.Fact, Fs: st.Fact,
				T:  rt.T.Intersect(st.T),
				Lr: rt.Lineage, Ls: st.Lineage,
				RID: ri, RT: rt.T,
			})
		}
	}
	return out
}

// SpecUnmatched returns WU(r;s,θ): for every tuple of r, the maximal
// subintervals of its validity during which no tuple of s is valid or
// satisfies θ.
func SpecUnmatched(r, s *tp.Relation, theta tp.Theta) []Window {
	var out []Window
	for ri, rt := range r.Tuples {
		var cover []interval.Interval
		for _, st := range s.Tuples {
			if theta.Match(rt.Fact, st.Fact) {
				cover = append(cover, st.T)
			}
		}
		for _, gap := range interval.Gaps(rt.T, cover) {
			out = append(out, Window{
				Fr: rt.Fact, Fs: nil,
				T:  gap,
				Lr: rt.Lineage, Ls: nil,
				RID: ri, RT: rt.T,
			})
		}
	}
	return out
}

// SpecNegating returns WN(r;s,θ): for every tuple of r, the elementary
// subintervals of its validity during which at least one matching s tuple
// is valid, with λs the disjunction of all of their lineages. A window ends
// whenever a matching s tuple starts or stops being valid (within r's
// interval), so λs is constant over each window and the interval is
// maximal for that λs.
func SpecNegating(r, s *tp.Relation, theta tp.Theta) []Window {
	var out []Window
	for ri, rt := range r.Tuples {
		type match struct {
			t   interval.Interval
			lam *lineage.Expr
		}
		var ms []match
		var clipped []interval.Interval
		for _, st := range s.Tuples {
			if !theta.Match(rt.Fact, st.Fact) {
				continue
			}
			x := st.T.Intersect(rt.T)
			if x.Empty() {
				continue
			}
			ms = append(ms, match{t: x, lam: st.Lineage})
			clipped = append(clipped, x)
		}
		for _, elem := range interval.Elementary(clipped) {
			var active []*lineage.Expr
			for _, m := range ms {
				if m.t.ContainsInterval(elem) {
					active = append(active, m.lam)
				}
			}
			if len(active) == 0 {
				continue
			}
			out = append(out, Window{
				Fr: rt.Fact, Fs: nil,
				T:  elem,
				Lr: rt.Lineage, Ls: lineage.Or(active...),
				RID: ri, RT: rt.T,
			})
		}
	}
	return out
}
