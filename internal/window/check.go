package window

import (
	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
)

// This file transcribes the three window definitions of Table I into
// executable checkers. They are used as oracles: every window emitted by
// the algorithms must pass its class's checker, and no window passing a
// checker may be missing from the output.
//
// One deliberate deviation: Table I states the maximality condition of
// negating windows as ∀t′ ∉ w.T, which read literally is violated by the
// paper's own windows whenever the same λs recurs on both sides of an
// intervening change (e.g. s₁ valid over [0,10) and s₂ over [2,4) yields
// negating windows [0,2) and [4,10) with identical λs = s₁). Section III.C
// ("a new window is created at every starting and ending point in group")
// shows the intended reading is *local* maximality at the window's
// endpoints, exactly like the unmatched-window condition, and that is what
// CheckNegating implements.

// lamS computes λ^{s,θ}_t for fact Fr: the disjunction of the lineages of
// the tuples of s valid at time t that satisfy θ against Fr. It returns
// nil (the paper's null) when there is no such tuple.
func lamS(s *tp.Relation, theta tp.Theta, fr tp.Fact, t interval.Time) *lineage.Expr {
	var parts []*lineage.Expr
	for _, st := range s.Tuples {
		if st.T.Contains(t) && theta.Match(fr, st.Fact) {
			parts = append(parts, st.Lineage)
		}
	}
	if len(parts) == 0 {
		return nil
	}
	return lineage.Or(parts...)
}

// existsR reports whether some tuple of r valid at t has fact Fr and a
// lineage equivalent to Lr.
func existsR(r *tp.Relation, fr tp.Fact, lr *lineage.Expr, t interval.Time) bool {
	for _, rt := range r.Tuples {
		if rt.T.Contains(t) && rt.Fact.Equal(fr) && lineage.Equivalent(rt.Lineage, lr) {
			return true
		}
	}
	return false
}

// CheckOverlapping reports whether w satisfies the overlapping-window
// definition: some pair (r, s) of tuples with w's facts and lineages
// satisfies θ and w.T = r.T ∩ s.T.
func CheckOverlapping(w Window, r, s *tp.Relation, theta tp.Theta) bool {
	if w.Fs == nil || w.Ls == nil {
		return false
	}
	for _, rt := range r.Tuples {
		if !rt.Fact.Equal(w.Fr) || !lineage.Equivalent(rt.Lineage, w.Lr) {
			continue
		}
		for _, st := range s.Tuples {
			if !st.Fact.Equal(w.Fs) || !lineage.Equivalent(st.Lineage, w.Ls) {
				continue
			}
			if theta.Match(rt.Fact, st.Fact) && w.T.Equal(rt.T.Intersect(st.T)) && !w.T.Empty() {
				return true
			}
		}
	}
	return false
}

// CheckUnmatched reports whether w satisfies the unmatched-window
// definition: λs and Fs are null; at every point of w.T some r tuple with
// w's fact and lineage is valid while λ^{s,θ} is null; and w.T is maximal
// (at both boundary points, either the r tuple is not valid or some
// matching s tuple is).
func CheckUnmatched(w Window, r, s *tp.Relation, theta tp.Theta) bool {
	if w.Fs != nil || w.Ls != nil || w.T.Empty() {
		return false
	}
	for t := w.T.Start; t < w.T.End; t++ {
		if !existsR(r, w.Fr, w.Lr, t) {
			return false
		}
		if lamS(s, theta, w.Fr, t) != nil {
			return false
		}
	}
	for _, t := range []interval.Time{w.T.Start - 1, w.T.End} {
		if existsR(r, w.Fr, w.Lr, t) && lamS(s, theta, w.Fr, t) == nil {
			return false // could be extended: not maximal
		}
	}
	return true
}

// CheckNegating reports whether w satisfies the negating-window
// definition: Fs is null; at every point of w.T some r tuple with w's fact
// and lineage is valid, λ^{s,θ} is non-null and equivalent to w.λs; and
// w.T is maximal at its endpoints (either the r tuple stops being valid or
// λ^{s,θ} changes).
func CheckNegating(w Window, r, s *tp.Relation, theta tp.Theta) bool {
	if w.Fs != nil || w.Ls == nil || w.T.Empty() {
		return false
	}
	for t := w.T.Start; t < w.T.End; t++ {
		if !existsR(r, w.Fr, w.Lr, t) {
			return false
		}
		ls := lamS(s, theta, w.Fr, t)
		if ls == nil || !lineage.Equivalent(w.Ls, ls) {
			return false
		}
	}
	for _, t := range []interval.Time{w.T.Start - 1, w.T.End} {
		if !existsR(r, w.Fr, w.Lr, t) {
			continue // maximal because r stops
		}
		ls := lamS(s, theta, w.Fr, t)
		if ls != nil && lineage.Equivalent(w.Ls, ls) {
			return false // could be extended: not maximal
		}
	}
	return true
}

// Check dispatches to the checker matching w's class.
func Check(w Window, r, s *tp.Relation, theta tp.Theta) bool {
	switch w.Class() {
	case Overlapping:
		return CheckOverlapping(w, r, s, theta)
	case Unmatched:
		return CheckUnmatched(w, r, s, theta)
	default:
		return CheckNegating(w, r, s, theta)
	}
}
