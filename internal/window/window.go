// Package window defines generalized lineage-aware temporal windows, the
// central mechanism of the paper: a window binds an interval to the facts
// and lineages of all matching valid tuples of each input relation.
//
// A window has schema (Fr, Fs, T, λr, λs) and belongs to exactly one of
// three disjoint sets (paper, Table I):
//
//   - overlapping WO(r;s,θ): maximal interval where one tuple of r and one
//     tuple of s overlap and satisfy θ;
//   - unmatched  WU(r;s,θ): maximal (sub)interval of a tuple of r where no
//     tuple of s is valid or satisfies θ (Fs = null, λs = null);
//   - negating   WN(r;s,θ): elementary subinterval where a tuple of r and
//     at least one matching tuple of s are valid; λs is the disjunction of
//     all matching valid s lineages (Fs = null).
//
// Besides the Window type itself, this package provides two *independent*
// formalizations used to validate the sweep algorithms of internal/core:
// declarative per-window checkers that transcribe Table I verbatim, and a
// set-level specification (Spec*) that constructs each window set directly
// from its definition. Both are deliberately naive (quadratic); the
// pipelined algorithms must agree with them exactly.
package window

import (
	"fmt"
	"sort"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
)

// Class discriminates the three disjoint window sets.
type Class uint8

// The window classes.
const (
	Overlapping Class = iota
	Unmatched
	Negating
)

func (c Class) String() string {
	switch c {
	case Overlapping:
		return "overlapping"
	case Unmatched:
		return "unmatched"
	case Negating:
		return "negating"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Window is a generalized lineage-aware temporal window (Fr, Fs, T, λr, λs).
//
// Fs is nil for unmatched and negating windows; Ls is nil for unmatched
// windows only (the paper's null lineage). RID identifies the tuple of the
// outer relation r that the window was created for, and RT carries that
// tuple's original validity interval — the enhancement the overlap join
// adds so that LAWAU can sweep each tuple's interval without revisiting r.
type Window struct {
	Fr tp.Fact
	Fs tp.Fact
	T  interval.Interval
	Lr *lineage.Expr
	Ls *lineage.Expr

	RID int               // index of the r tuple this window belongs to
	RT  interval.Interval // original interval of that r tuple
}

// Class returns the window's class, derived from the null pattern of
// (Fs, λs) exactly as Table I prescribes.
func (w Window) Class() Class {
	switch {
	case w.Fs != nil:
		return Overlapping
	case w.Ls == nil:
		return Unmatched
	default:
		return Negating
	}
}

// String renders the window like the paper's examples, e.g.
// ('Ann, ZAK', null, [5,6), a1, b3 ∨ b2).
func (w Window) String() string {
	fs := "null"
	if w.Fs != nil {
		fs = "'" + w.Fs.String() + "'"
	}
	return fmt.Sprintf("('%s', %s, %s, %s, %s)", w.Fr, fs, w.T, w.Lr, w.Ls)
}

// Equal reports deep equality of two windows including their r-tuple
// binding (used by tests to compare algorithm output against the spec).
func (w Window) Equal(o Window) bool {
	if w.RID != o.RID || !w.T.Equal(o.T) || !w.RT.Equal(o.RT) {
		return false
	}
	if !w.Fr.Equal(o.Fr) {
		return false
	}
	if (w.Fs == nil) != (o.Fs == nil) || (w.Fs != nil && !w.Fs.Equal(o.Fs)) {
		return false
	}
	if !exprEq(w.Lr, o.Lr) || !exprEq(w.Ls, o.Ls) {
		return false
	}
	return true
}

func exprEq(a, b *lineage.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}

// Sort orders windows canonically by (RID, T, Fs) — the grouping order the
// sweep algorithms consume and produce.
func Sort(ws []Window) {
	sort.SliceStable(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.RID != b.RID {
			return a.RID < b.RID
		}
		if c := a.T.Compare(b.T); c != 0 {
			return c < 0
		}
		switch {
		case a.Fs == nil && b.Fs != nil:
			return true
		case a.Fs != nil && b.Fs == nil:
			return false
		case a.Fs == nil:
			return false
		default:
			return a.Fs.Compare(b.Fs) < 0
		}
	})
}

// SetEqual reports whether two window multisets are equal up to order.
func SetEqual(a, b []Window) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, wa := range a {
		for j := range b {
			if !used[j] && wa.Equal(b[j]) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}
