package window

import (
	"math/rand"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
)

func paperA() *tp.Relation {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	return a
}

func paperB() *tp.Relation {
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	return b
}

var theta = tp.Equi(1, 1)

func lv(rel string, id int) *lineage.Expr { return lineage.NewVar(rel, id) }

func TestClass(t *testing.T) {
	ov := Window{Fs: tp.Strings("x"), Ls: lv("b", 1)}
	un := Window{}
	ng := Window{Ls: lv("b", 1)}
	if ov.Class() != Overlapping || un.Class() != Unmatched || ng.Class() != Negating {
		t.Errorf("Class derivation wrong: %v %v %v", ov.Class(), un.Class(), ng.Class())
	}
	if Overlapping.String() != "overlapping" || Unmatched.String() != "unmatched" || Negating.String() != "negating" {
		t.Errorf("Class names wrong")
	}
}

func TestWindowString(t *testing.T) {
	w := Window{
		Fr: tp.Strings("Ann", "ZAK"), Fs: nil,
		T:  interval.New(5, 6),
		Lr: lv("a", 1), Ls: lineage.Or(lv("b", 3), lv("b", 2)),
	}
	want := "('Ann, ZAK', null, [5,6), a1, b3 ∨ b2)"
	if got := w.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// TestSpecPaperFig2 verifies that the three Spec functions produce exactly
// the seven windows w1..w7 of the paper's Fig. 2.
func TestSpecPaperFig2(t *testing.T) {
	a, b := paperA(), paperB()
	a1, a2 := lv("a", 1), lv("a", 2)
	b2, b3 := lv("b", 2), lv("b", 3)
	ann, jim := tp.Strings("Ann", "ZAK"), tp.Strings("Jim", "WEN")
	h1, h2 := tp.Strings("hotel1", "ZAK"), tp.Strings("hotel2", "ZAK")
	annT, jimT := interval.New(2, 8), interval.New(7, 10)

	wantWU := []Window{
		{Fr: ann, T: interval.New(2, 4), Lr: a1, RID: 0, RT: annT},  // w1
		{Fr: jim, T: interval.New(7, 10), Lr: a2, RID: 1, RT: jimT}, // w2
	}
	wantWO := []Window{
		{Fr: ann, Fs: h2, T: interval.New(5, 8), Lr: a1, Ls: b2, RID: 0, RT: annT}, // w4
		{Fr: ann, Fs: h1, T: interval.New(4, 6), Lr: a1, Ls: b3, RID: 0, RT: annT}, // w3
	}
	wantWN := []Window{
		{Fr: ann, T: interval.New(4, 5), Lr: a1, Ls: b3, RID: 0, RT: annT},                 // w5
		{Fr: ann, T: interval.New(5, 6), Lr: a1, Ls: lineage.Or(b3, b2), RID: 0, RT: annT}, // w6
		{Fr: ann, T: interval.New(6, 8), Lr: a1, Ls: b2, RID: 0, RT: annT},                 // w7
	}

	if got := SpecUnmatched(a, b, theta); !SetEqual(got, wantWU) {
		t.Errorf("SpecUnmatched:\n got %v\nwant %v", got, wantWU)
	}
	if got := SpecOverlapping(a, b, theta); !SetEqual(got, wantWO) {
		t.Errorf("SpecOverlapping:\n got %v\nwant %v", got, wantWO)
	}
	if got := SpecNegating(a, b, theta); !SetEqual(got, wantWN) {
		t.Errorf("SpecNegating:\n got %v\nwant %v", got, wantWN)
	}
}

// TestCheckersAcceptSpec verifies that every spec window passes its
// class's Table I checker, on the paper example and on random inputs.
func TestCheckersAcceptSpec(t *testing.T) {
	verify := func(t *testing.T, r, s *tp.Relation, th tp.Theta) {
		t.Helper()
		for _, w := range SpecOverlapping(r, s, th) {
			if w.Class() != Overlapping || !Check(w, r, s, th) {
				t.Fatalf("spec overlapping window fails checker: %v\nr=%v\ns=%v", w, r, s)
			}
		}
		for _, w := range SpecUnmatched(r, s, th) {
			if w.Class() != Unmatched || !Check(w, r, s, th) {
				t.Fatalf("spec unmatched window fails checker: %v\nr=%v\ns=%v", w, r, s)
			}
		}
		for _, w := range SpecNegating(r, s, th) {
			if w.Class() != Negating || !Check(w, r, s, th) {
				t.Fatalf("spec negating window fails checker: %v\nr=%v\ns=%v", w, r, s)
			}
		}
	}
	verify(t, paperA(), paperB(), theta)

	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		r, s := randRelations(rng)
		verify(t, r, s, tp.Equi(0, 0))
	}
}

func TestCheckersRejectPerturbations(t *testing.T) {
	a, b := paperA(), paperB()
	a1 := lv("a", 1)
	b2, b3 := lv("b", 2), lv("b", 3)
	ann := tp.Strings("Ann", "ZAK")
	annT := interval.New(2, 8)

	// Valid w6, then perturbations.
	w6 := Window{Fr: ann, T: interval.New(5, 6), Lr: a1, Ls: lineage.Or(b3, b2), RID: 0, RT: annT}
	if !CheckNegating(w6, a, b, theta) {
		t.Fatalf("w6 must pass CheckNegating")
	}
	badT := w6
	badT.T = interval.New(5, 7) // crosses b3's end
	if CheckNegating(badT, a, b, theta) {
		t.Errorf("interval crossing an event point must fail")
	}
	shortT := w6
	shortT.T = interval.New(5, 5) // empty
	if CheckNegating(shortT, a, b, theta) {
		t.Errorf("empty window must fail")
	}
	badL := w6
	badL.Ls = b3 // wrong λs over [5,6)
	if CheckNegating(badL, a, b, theta) {
		t.Errorf("wrong λs must fail")
	}
	notMax := Window{Fr: ann, T: interval.New(6, 7), Lr: a1, Ls: b2, RID: 0, RT: annT}
	if CheckNegating(notMax, a, b, theta) {
		t.Errorf("non-maximal negating window must fail (extends to [6,8))")
	}

	// Unmatched.
	w1 := Window{Fr: ann, T: interval.New(2, 4), Lr: a1, RID: 0, RT: annT}
	if !CheckUnmatched(w1, a, b, theta) {
		t.Fatalf("w1 must pass CheckUnmatched")
	}
	badU := w1
	badU.T = interval.New(2, 5) // t=4 has b3 valid
	if CheckUnmatched(badU, a, b, theta) {
		t.Errorf("unmatched overlapping a match must fail")
	}
	shortU := w1
	shortU.T = interval.New(2, 3) // not maximal, extends to 4
	if CheckUnmatched(shortU, a, b, theta) {
		t.Errorf("non-maximal unmatched window must fail")
	}
	wrongFact := w1
	wrongFact.Fr = tp.Strings("Bob", "ZAK")
	if CheckUnmatched(wrongFact, a, b, theta) {
		t.Errorf("fact not in r must fail")
	}

	// Overlapping.
	h1 := tp.Strings("hotel1", "ZAK")
	w3 := Window{Fr: ann, Fs: h1, T: interval.New(4, 6), Lr: a1, Ls: b3, RID: 0, RT: annT}
	if !CheckOverlapping(w3, a, b, theta) {
		t.Fatalf("w3 must pass CheckOverlapping")
	}
	badO := w3
	badO.T = interval.New(4, 5) // not the full intersection
	if CheckOverlapping(badO, a, b, theta) {
		t.Errorf("partial intersection must fail")
	}
	badPair := w3
	badPair.Fs = tp.Strings("hotel3", "SOR") // θ violated
	if CheckOverlapping(badPair, a, b, theta) {
		t.Errorf("θ-violating pair must fail")
	}
}

func TestWindowSetsAreDisjointClasses(t *testing.T) {
	// A window passing one checker must not pass another.
	a, b := paperA(), paperB()
	all := append(append(SpecOverlapping(a, b, theta), SpecUnmatched(a, b, theta)...),
		SpecNegating(a, b, theta)...)
	for _, w := range all {
		n := 0
		if CheckOverlapping(w, a, b, theta) {
			n++
		}
		if CheckUnmatched(w, a, b, theta) {
			n++
		}
		if CheckNegating(w, a, b, theta) {
			n++
		}
		if n != 1 {
			t.Errorf("window %v passes %d checkers, want exactly 1", w, n)
		}
	}
}

func TestSortAndSetEqual(t *testing.T) {
	a, b := paperA(), paperB()
	ws := SpecOverlapping(a, b, theta)
	shuffled := append([]Window(nil), ws...)
	shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
	if !SetEqual(ws, shuffled) {
		t.Errorf("SetEqual must ignore order")
	}
	Sort(shuffled)
	if !shuffled[0].T.Equal(interval.New(4, 6)) {
		t.Errorf("Sort by (RID, T) wrong: %v", shuffled)
	}
	if SetEqual(ws, ws[:1]) {
		t.Errorf("different sizes must not be SetEqual")
	}
	other := append([]Window(nil), ws...)
	other[0].RID = 99
	if SetEqual(ws, other) {
		t.Errorf("different RID must not be SetEqual")
	}
}

// randRelations builds small random base relations for property tests.
func randRelations(rng *rand.Rand) (*tp.Relation, *tp.Relation) {
	keys := []string{"k1", "k2", "k3"}
	build := func(name string, n int) *tp.Relation {
		rel := tp.NewRelation(name, "K")
		type span struct{ s, e interval.Time }
		used := make(map[string][]span)
		for i := 0; i < n; i++ {
			k := keys[rng.Intn(len(keys))]
			s := interval.Time(rng.Intn(20))
			e := s + 1 + interval.Time(rng.Intn(8))
			ok := true
			for _, u := range used[k] {
				if s < u.e && u.s < e {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[k] = append(used[k], span{s, e})
			rel.Append(tp.Strings(k), interval.New(s, e), 0.1+0.8*rng.Float64())
		}
		return rel
	}
	return build("r", 1+rng.Intn(5)), build("s", 1+rng.Intn(5))
}
