package core

import (
	"tpjoin/internal/window"
)

// This file is the window-pipeline side of EXPLAIN ANALYZE: a counting
// iterator that interposes between pipeline stages (OverlapJoin → LAWAU →
// LAWAN) and accounts windows and batch hops per stage. The counters are
// plain fields written by the single goroutine that owns the pipeline;
// nothing here runs unless instrumentation was explicitly requested, so
// the hot path of an uninstrumented join is untouched.

// StageStats accounts one window-pipeline stage under EXPLAIN ANALYZE:
// how many windows left the stage and in how many batch hops (a scalar
// Next call counts as a batch of one). The ratio Windows/Batches shows
// how full the batched transport runs; a stage stuck near 1 is pulling
// scalar.
type StageStats struct {
	// Name identifies the stage, e.g. "overlap", "lawau", "lawan"; the
	// mirrored phase of a full outer join appends "/mirror".
	Name string
	// Windows is the number of windows the stage emitted.
	Windows int64
	// Batches is the number of Next/NextBatch calls that returned at
	// least one window.
	Batches int64
}

// JoinInstr collects the per-stage accounting of one instrumented NJ
// window pipeline. Stages appear in pipeline order (upstream first); a
// full outer join contributes the mirrored phase's stages after the
// forward phase's.
type JoinInstr struct {
	Stages []*StageStats
	// ProbBatches is how many probability batches the batched tail
	// evaluated, and MemoHits how many sub-lineages it answered from the
	// shared memo instead of re-evaluating. Both stay zero on the scalar
	// reference path, which evaluates per tuple.
	ProbBatches int64
	MemoHits    int64
}

// stage wraps it with a counting iterator feeding a new named StageStats.
func (ji *JoinInstr) stage(name string, it Iterator) Iterator {
	st := &StageStats{Name: name}
	ji.Stages = append(ji.Stages, st)
	return &countingIterator{it: it, st: st}
}

// countingIterator forwards Next/NextBatch to the wrapped iterator,
// accounting emitted windows and batch hops. It implements BatchIterator
// so interposing it keeps the batched transport intact.
type countingIterator struct {
	it Iterator
	st *StageStats
}

func (c *countingIterator) Next() (window.Window, bool) {
	w, ok := c.it.Next()
	if ok {
		c.st.Windows++
		c.st.Batches++
	}
	return w, ok
}

// NextBatch implements BatchIterator.
func (c *countingIterator) NextBatch(buf []window.Window) int {
	n := NextBatch(c.it, buf)
	if n > 0 {
		c.st.Windows += int64(n)
		c.st.Batches++
	}
	return n
}
