package core

import (
	"math/rand"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

func paperA() *tp.Relation {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)
	return a
}

func paperB() *tp.Relation {
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	return b
}

var theta = tp.Equi(1, 1)

// loopTheta forces the nested-loop overlap join for the same predicate.
func loopTheta(eq tp.EquiTheta) tp.Theta {
	return tp.FuncTheta(func(r, s tp.Fact) bool { return eq.Match(r, s) })
}

func TestOverlapJoinMatchesSpec(t *testing.T) {
	a, b := paperA(), paperB()
	for name, th := range map[string]tp.Theta{"hash": theta, "loop": loopTheta(theta)} {
		got := Drain(OverlapJoin(a, b, th))
		// Expected: spec overlapping windows + base unmatched for Jim.
		want := window.SpecOverlapping(a, b, theta)
		want = append(want, window.Window{
			Fr: tp.Strings("Jim", "WEN"), T: interval.New(7, 10),
			Lr: lineage.NewVar("a", 2), RID: 1, RT: interval.New(7, 10),
		})
		if !window.SetEqual(got, want) {
			t.Errorf("%s: OverlapJoin:\n got %v\nwant %v", name, got, want)
		}
	}
}

func TestOverlapJoinGroupedAndSorted(t *testing.T) {
	a, b := paperA(), paperB()
	got := Drain(OverlapJoin(a, b, theta))
	seen := make(map[int]bool)
	lastRID := -1
	var lastStart interval.Time
	for _, w := range got {
		if w.RID != lastRID {
			if seen[w.RID] {
				t.Fatalf("group %d appears twice in stream", w.RID)
			}
			seen[w.RID] = true
			lastRID = w.RID
			lastStart = w.T.Start
			continue
		}
		if w.T.Start < lastStart {
			t.Fatalf("group %d not sorted by start: %v", w.RID, got)
		}
		lastStart = w.T.Start
	}
}

func TestLAWAUPaperExample(t *testing.T) {
	a, b := paperA(), paperB()
	got := Drain(LAWAU(OverlapJoin(a, b, theta)))
	want := append(window.SpecOverlapping(a, b, theta), window.SpecUnmatched(a, b, theta)...)
	if !window.SetEqual(got, want) {
		t.Errorf("LAWAU:\n got %v\nwant %v", got, want)
	}
}

func TestLAWANPaperExample(t *testing.T) {
	a, b := paperA(), paperB()
	got := Drain(LAWAN(LAWAU(OverlapJoin(a, b, theta))))
	want := append(window.SpecOverlapping(a, b, theta), window.SpecUnmatched(a, b, theta)...)
	want = append(want, window.SpecNegating(a, b, theta)...)
	if !window.SetEqual(got, want) {
		t.Errorf("LAWAN:\n got %v\nwant %v", got, want)
	}
}

// TestPaperExampleFig1b is the golden test: the TP left outer join of the
// running example must produce exactly the seven tuples of Fig. 1b.
func TestPaperExampleFig1b(t *testing.T) {
	a, b := paperA(), paperB()
	q := LeftOuterJoin(a, b, theta)

	type row struct {
		fact string
		lam  string
		iv   string
		p    float64
	}
	want := []row{
		{"Ann, ZAK, -, -", "a1", "[2,4)", 0.70},
		{"Ann, ZAK, hotel1, ZAK", "a1 ∧ b3", "[4,6)", 0.49},
		{"Ann, ZAK, hotel2, ZAK", "a1 ∧ b2", "[5,8)", 0.42},
		{"Ann, ZAK, -, -", "a1 ∧ ¬b3", "[4,5)", 0.21},
		{"Ann, ZAK, -, -", "a1 ∧ ¬(b3 ∨ b2)", "[5,6)", 0.084},
		{"Ann, ZAK, -, -", "a1 ∧ ¬b2", "[6,8)", 0.28},
		{"Jim, WEN, -, -", "a2", "[7,10)", 0.80},
	}
	if q.Len() != len(want) {
		t.Fatalf("result has %d tuples, want %d:\n%v", q.Len(), len(want), q)
	}
	match := func(w row) bool {
		for _, tu := range q.Tuples {
			if tu.Fact.String() == w.fact && tu.Lineage.String() == w.lam &&
				tu.T.String() == w.iv {
				if d := tu.Prob - w.p; d > -1e-9 && d < 1e-9 {
					return true
				}
			}
		}
		return false
	}
	for _, w := range want {
		if !match(w) {
			t.Errorf("missing Fig. 1b tuple ('%s', %s, %s, %g)\ngot:\n%v",
				w.fact, w.lam, w.iv, w.p, q)
		}
	}
}

func TestAntiJoinPaperExample(t *testing.T) {
	a, b := paperA(), paperB()
	q := AntiJoin(a, b, theta)
	// Expected: Ann [2,4) 0.7; [4,5) 0.21; [5,6) 0.084; [6,8) 0.28; Jim [7,10) 0.8.
	if q.Len() != 5 {
		t.Fatalf("anti join has %d tuples, want 5:\n%v", q.Len(), q)
	}
	for _, tu := range q.Tuples {
		if len(tu.Fact) != 2 {
			t.Errorf("anti join schema must be r's, got fact %v", tu.Fact)
		}
	}
	pm, err := tp.Expand(q)
	if err != nil {
		t.Fatalf("invalid anti join result: %v", err)
	}
	ref := tp.RefJoin(tp.OpAnti, a, b, theta)
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Errorf("anti join differs from reference: %v", err)
	}
}

func TestAllOperatorsAgainstReference(t *testing.T) {
	a, b := paperA(), paperB()
	for _, op := range []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull} {
		q := Join(op, a, b, theta)
		pm, err := tp.Expand(q)
		if err != nil {
			t.Fatalf("%v: invalid result: %v", op, err)
		}
		ref := tp.RefJoin(op, a, b, theta)
		if err := pm.EqualProb(ref, 1e-9); err != nil {
			t.Errorf("%v differs from reference: %v", op, err)
		}
		if err := pm.EqualLineage(ref); err != nil {
			t.Errorf("%v lineages differ from reference: %v", op, err)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	a, b := paperA(), paperB()
	empty := tp.NewRelation("e", "X", "Loc")

	q := LeftOuterJoin(empty, b, theta)
	if q.Len() != 0 {
		t.Errorf("empty ⟕ b must be empty, got %v", q)
	}
	q = LeftOuterJoin(a, tp.NewRelation("e", "Hotel", "Loc"), theta)
	if q.Len() != a.Len() {
		t.Errorf("a ⟕ empty must preserve a's tuples, got %d", q.Len())
	}
	for _, tu := range q.Tuples {
		if tu.Lineage.Kind() != lineage.KindVar {
			t.Errorf("unmatched lineage must be the base event, got %v", tu.Lineage)
		}
	}
	q = AntiJoin(a, tp.NewRelation("e", "Hotel", "Loc"), theta)
	if q.Len() != a.Len() {
		t.Errorf("a ▷ empty must equal a")
	}
	q = FullOuterJoin(empty, b, theta)
	if q.Len() != b.Len() {
		t.Errorf("empty ⟗ b must preserve b, got %d", q.Len())
	}
}

func TestAdjacentIntervalsProduceNoOverlap(t *testing.T) {
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("k"), interval.New(0, 5), 0.5)
	s := tp.NewRelation("s", "K")
	s.Append(tp.Strings("k"), interval.New(5, 9), 0.5)
	q := LeftOuterJoin(r, s, tp.Equi(0, 0))
	if q.Len() != 1 {
		t.Fatalf("meets-only tuples must not join: %v", q)
	}
	if !q.Tuples[0].T.Equal(interval.New(0, 5)) {
		t.Errorf("unmatched interval wrong: %v", q.Tuples[0].T)
	}
}

func TestContainedMatch(t *testing.T) {
	// s tuple strictly inside r: unmatched head and tail plus negating middle.
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("k"), interval.New(0, 10), 0.5)
	s := tp.NewRelation("s", "K")
	s.Append(tp.Strings("k"), interval.New(3, 6), 0.4)
	q := AntiJoin(r, s, tp.Equi(0, 0))
	pm, err := tp.Expand(q)
	if err != nil {
		t.Fatalf("%v", err)
	}
	ref := tp.RefJoin(tp.OpAnti, r, s, tp.Equi(0, 0))
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Errorf("contained match: %v", err)
	}
	if q.Len() != 3 {
		t.Errorf("want 3 output tuples (head, negated middle, tail), got %v", q)
	}
}

func TestMultipleRTuplesSameFact(t *testing.T) {
	// Two disjoint r tuples with the same fact: groups must not merge.
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("k"), interval.New(0, 4), 0.5)
	r.Append(tp.Strings("k"), interval.New(6, 9), 0.6)
	s := tp.NewRelation("s", "K")
	s.Append(tp.Strings("k"), interval.New(2, 8), 0.4)
	q := LeftOuterJoin(r, s, tp.Equi(0, 0))
	pm, err := tp.Expand(q)
	if err != nil {
		t.Fatalf("%v", err)
	}
	ref := tp.RefJoin(tp.OpLeft, r, s, tp.Equi(0, 0))
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Errorf("same-fact groups: %v", err)
	}
}

// TestSweepsMatchSpecRandom is the central property test: on random
// databases, the pipelined LAWAU/LAWAN output must equal the set-level
// specification of the three window sets, and every window must satisfy
// its Table I checker.
func TestSweepsMatchSpecRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	eq := tp.Equi(0, 0)
	for trial := 0; trial < 150; trial++ {
		r := randRelation(rng, "r")
		s := randRelation(rng, "s")

		th := tp.Theta(eq)
		if trial%2 == 1 {
			th = loopTheta(eq) // exercise the nested-loop join too
		}

		gotWUO := Drain(LAWAU(OverlapJoin(r, s, th)))
		wantWUO := append(window.SpecOverlapping(r, s, eq), window.SpecUnmatched(r, s, eq)...)
		if !window.SetEqual(gotWUO, wantWUO) {
			t.Fatalf("trial %d: WUO mismatch\n got %v\nwant %v\nr=%v\ns=%v",
				trial, gotWUO, wantWUO, r, s)
		}

		gotAll := Drain(LAWAN(NewSliceIterator(gotWUO)))
		wantAll := append(wantWUO, window.SpecNegating(r, s, eq)...)
		if !window.SetEqual(gotAll, wantAll) {
			t.Fatalf("trial %d: WUON mismatch\n got %v\nwant %v\nr=%v\ns=%v",
				trial, gotAll, wantAll, r, s)
		}

		for _, w := range gotAll {
			if !window.Check(w, r, s, eq) {
				t.Fatalf("trial %d: window fails Table I checker: %v\nr=%v\ns=%v",
					trial, w, r, s)
			}
		}
	}
}

// TestOperatorsMatchReferenceRandom validates all five operators point-wise
// against the declarative semantics on random databases.
func TestOperatorsMatchReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	eq := tp.Equi(0, 0)
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	for trial := 0; trial < 80; trial++ {
		r := randRelation(rng, "r")
		s := randRelation(rng, "s")
		op := ops[trial%len(ops)]
		q := Join(op, r, s, eq)
		pm, err := tp.Expand(q)
		if err != nil {
			t.Fatalf("trial %d %v: invalid result: %v\nr=%v\ns=%v\nq=%v", trial, op, err, r, s, q)
		}
		ref := tp.RefJoin(op, r, s, eq)
		if err := pm.EqualProb(ref, 1e-9); err != nil {
			t.Fatalf("trial %d %v: %v\nr=%v\ns=%v\nq=%v", trial, op, err, r, s, q)
		}
	}
}

func TestCountAndDrain(t *testing.T) {
	a, b := paperA(), paperB()
	n := Count(LAWAN(LAWAU(OverlapJoin(a, b, theta))))
	if n != 7 {
		t.Errorf("Count = %d, want 7 windows (Fig. 2)", n)
	}
	ws := WUON(a, b, theta)
	if len(ws) != 7 {
		t.Errorf("WUON = %d windows, want 7", len(ws))
	}
	if len(WUO(a, b, theta)) != 4 {
		t.Errorf("WUO must have 4 windows (w1..w4)")
	}
}

func TestJoinPanicsOnUnknownOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Join(tp.Op(99), paperA(), paperB(), theta)
}

// randRelation builds a small random sequenced-TP relation.
func randRelation(rng *rand.Rand, name string) *tp.Relation {
	keys := []string{"k1", "k2", "k3"}
	rel := tp.NewRelation(name, "K")
	type span struct{ s, e interval.Time }
	used := make(map[string][]span)
	n := rng.Intn(7)
	for i := 0; i < n; i++ {
		k := keys[rng.Intn(len(keys))]
		s := interval.Time(rng.Intn(18))
		e := s + 1 + interval.Time(rng.Intn(8))
		ok := true
		for _, u := range used[k] {
			if s < u.e && u.s < e {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		used[k] = append(used[k], span{s, e})
		rel.Append(tp.Strings(k), interval.New(s, e), 0.1+0.8*rng.Float64())
	}
	return rel
}
