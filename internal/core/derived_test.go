package core

import (
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// Joins over *derived* relations produce lineages that share base events
// across the two inputs, so output formulas are no longer read-once and
// probability computation must fall back to Shannon expansion. These
// tests exercise that end-to-end path.

func TestJoinOverDerivedRelations(t *testing.T) {
	a, b := paperA(), paperB()
	q := LeftOuterJoin(a, b, theta) // derived: lineages over {a*, b*}

	// Join the result with b again on Loc (columns: q.Loc is index 1).
	q2 := InnerJoin(q, b, tp.Equi(1, 1))
	if q2.Len() == 0 {
		t.Fatalf("derived join is empty")
	}
	pm, err := tp.Expand(q2)
	if err != nil {
		t.Fatalf("derived join result invalid: %v", err)
	}
	ref := tp.RefJoin(tp.OpInner, q, b, tp.Equi(1, 1))
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Fatalf("derived inner join differs from reference: %v", err)
	}
}

func TestDerivedAntiJoinSharedEvents(t *testing.T) {
	// r' = a ▷ b (lineages mention b negatively), then r' ▷ b again:
	// lineages like (a1 ∧ ¬b3) ∧ ¬(b3 ∨ b2) share b3 — not read-once.
	a, b := paperA(), paperB()
	r1 := AntiJoin(a, b, theta)
	r2 := AntiJoin(r1, b, theta)
	pm, err := tp.Expand(r2)
	if err != nil {
		t.Fatalf("%v", err)
	}
	ref := tp.RefJoin(tp.OpAnti, r1, b, theta)
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Fatalf("derived anti join differs from reference: %v", err)
	}
	// The shared-event probability must differ from the independence
	// assumption: verify at one point via direct computation.
	// At t=4: r1 has (Ann, a1∧¬b3) valid; matching b tuple is b3 ([4,6)).
	// Output lineage: (a1∧¬b3) ∧ ¬b3 ≡ a1∧¬b3, prob 0.7·0.3 = 0.21 — NOT
	// 0.21·0.3 as independence would give.
	annKey := tp.Strings("Ann", "ZAK").Key()
	row, ok := pm[annKey][4]
	if !ok {
		t.Fatalf("missing Ann at t=4 in %v", r2)
	}
	if d := row.Prob - 0.21; d < -1e-9 || d > 1e-9 {
		t.Errorf("shared-event probability = %g, want 0.21 (idempotent ¬b3)", row.Prob)
	}
}

func TestDerivedJoinTriggersShannon(t *testing.T) {
	// Confirm the Shannon path actually fires on a shared-event join (the
	// read-once fast path would silently give wrong numbers otherwise).
	// Anti-joining a left-outer result against b produces lineages like
	// (a1 ∧ b3) ∧ ¬(b3 ∨ b2), which genuinely share b3 across subformulas.
	// (Plain anti-over-anti chains simplify back to read-once form via
	// operand deduplication, so they do NOT need Shannon — also asserted.)
	a, b := paperA(), paperB()
	q := LeftOuterJoin(a, b, theta)
	probs := tp.MergeProbs(q, b)
	ev := prob.NewEvaluator(probs)
	for _, tu := range AntiJoin(q, b, tp.Equi(1, 1)).Tuples {
		ev.Prob(tu.Lineage)
	}
	if ev.ShannonSteps() == 0 {
		t.Errorf("expected Shannon expansion on shared-event lineages")
	}

	r1 := AntiJoin(a, b, theta)
	ev2 := prob.NewEvaluator(tp.MergeProbs(r1, b))
	for _, tu := range AntiJoin(r1, b, theta).Tuples {
		ev2.Prob(tu.Lineage)
	}
	if ev2.ShannonSteps() != 0 {
		t.Errorf("anti-over-anti lineages simplify to read-once; Shannon should not fire")
	}
}

func TestSelfJoin(t *testing.T) {
	// a ⟕ a on Loc: every tuple matches itself; lineage a1 ∧ a1 = a1.
	a := paperA()
	q := LeftOuterJoin(a, a.Clone(), tp.Equi(1, 1))
	pm, err := tp.Expand(q)
	if err != nil {
		t.Fatalf("%v", err)
	}
	ref := tp.RefJoin(tp.OpLeft, a, a.Clone(), tp.Equi(1, 1))
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Fatalf("self join differs from reference: %v", err)
	}
	// The pairing (Ann, Ann) over [2,8) must have probability 0.7, not 0.49.
	pairKey := tp.Strings("Ann", "ZAK").Concat(tp.Strings("Ann", "ZAK")).Key()
	row, ok := pm[pairKey][3]
	if !ok {
		t.Fatalf("missing self pairing")
	}
	if d := row.Prob - 0.7; d < -1e-9 || d > 1e-9 {
		t.Errorf("self-pair probability = %g, want 0.7 (a1 ∧ a1 ≡ a1)", row.Prob)
	}
}

func TestChainedJoinsLongPipeline(t *testing.T) {
	// Three-way chain through the streaming API: ((a ⟕ b) ▷ b) ∩-style
	// inner with a — mixing operators across derived inputs.
	a, b := paperA(), paperB()
	step1 := LeftOuterJoin(a, b, theta)
	step2 := AntiJoin(step1, b, tp.Equi(1, 1))
	step3 := InnerJoin(step2, a, tp.Equi(1, 1))
	pm, err := tp.Expand(step3)
	if err != nil {
		t.Fatalf("%v", err)
	}
	ref := tp.RefJoin(tp.OpInner, step2, a, tp.Equi(1, 1))
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Fatalf("three-way chain differs from reference: %v", err)
	}
}

func TestIntervalClipsThroughChain(t *testing.T) {
	// Output intervals of chained joins stay within the original tuples'.
	a, b := paperA(), paperB()
	q := FullOuterJoin(LeftOuterJoin(a, b, theta), b, tp.Equi(1, 1))
	horizon := interval.New(1, 10)
	for _, tu := range q.Tuples {
		if !horizon.ContainsInterval(tu.T) {
			t.Errorf("interval %v escapes the data horizon", tu.T)
		}
	}
}
