package core

import (
	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/window"
)

// LAWAN (Lineage-Aware Window Advancer, Negating) extends the WUO stream
// produced by LAWAU with the negating windows (paper, Section III-C,
// Fig. 4): for every group of overlapping windows that share the same r
// tuple, a negating window is created between every two consecutive event
// points — the starting and ending points of the matching s tuples — with
// λs the disjunction of the lineages of all s tuples active over the
// subinterval.
//
// The ending points and lineages of the active s tuples are kept in a
// priority queue ordered by ending point. Copies of the incoming windows
// and newly created negating windows alternate in the output, exactly as
// described in the paper. State per group is bounded by the maximal number
// of concurrently valid matching s tuples.
type lawan struct {
	in  Iterator
	out queue

	// Batched-input state; see lawau.
	inBuf      *[]window.Window
	inPos, inN int

	inGroup  bool
	rid      int
	rt       interval.Interval
	frLr     window.Window
	active   activeSet
	curStart interval.Time
	done     bool
}

// LAWAN returns the negating-window sweep over in. The input must be
// grouped by r tuple with overlapping windows sorted by starting point
// (the order LAWAU preserves from OverlapJoin).
func LAWAN(in Iterator) Iterator { return &lawan{in: in} }

// nextInput returns the next input window, consuming any batched leftovers
// before falling back to a scalar pull.
func (l *lawan) nextInput() (window.Window, bool) {
	if l.inPos < l.inN {
		w := (*l.inBuf)[l.inPos]
		l.inPos++
		return w, true
	}
	return l.in.Next()
}

func (l *lawan) releaseBuf() {
	if l.inBuf != nil {
		putBatchBuf(l.inBuf)
		l.inBuf = nil
	}
	l.inPos, l.inN = 0, 0
}

// consume folds one input window into the sweep state.
func (l *lawan) consume(w *window.Window) {
	l.consumeInto(w, nil, 0)
}

// consumeInto is consume with direct emission; see lawau.consumeInto.
func (l *lawan) consumeInto(w *window.Window, buf []window.Window, n int) int {
	if !l.inGroup || w.RID != l.rid {
		n = l.flushInto(buf, n)
		l.startGroup(w)
	}
	if w.Class() != window.Overlapping {
		// Unmatched windows need no negation; copy them through (Case 1).
		return l.emitInto(w, buf, n)
	}
	// Close the elementary intervals that end before this window starts
	// (Cases 2 and 3 of Fig. 4), then activate its s tuple.
	n = l.advanceInto(w.T.Start, buf, n)
	n = l.emitInto(w, buf, n)
	if l.active.empty() {
		l.curStart = w.T.Start
	}
	l.active.push(w.T.End, w.Ls)
	return n
}

func (l *lawan) emitInto(w *window.Window, buf []window.Window, n int) int {
	if n < len(buf) && l.out.empty() {
		buf[n] = *w
		return n + 1
	}
	l.out.push(*w)
	return n
}

func (l *lawan) Next() (window.Window, bool) {
	for {
		if w, ok := l.out.pop(); ok {
			return w, true
		}
		if l.done {
			return window.Window{}, false
		}
		w, ok := l.nextInput()
		if !ok {
			l.flush()
			l.done = true
			l.releaseBuf()
			continue
		}
		l.consume(&w)
	}
}

// NextBatch implements BatchIterator; see lawau.NextBatch.
func (l *lawan) NextBatch(buf []window.Window) int {
	n := l.out.popInto(buf)
	for n < len(buf) {
		if l.done {
			return n
		}
		if l.inPos == l.inN {
			if l.inBuf == nil {
				l.inBuf = getBatchBuf()
			}
			l.inN = NextBatch(l.in, *l.inBuf)
			l.inPos = 0
			if l.inN == 0 {
				l.flush()
				l.done = true
				l.releaseBuf()
				return n + l.out.popInto(buf[n:])
			}
		}
		for l.inPos < l.inN {
			n = l.consumeInto(&(*l.inBuf)[l.inPos], buf, n)
			l.inPos++
		}
		n += l.out.popInto(buf[n:])
	}
	return n
}

func (l *lawan) startGroup(w *window.Window) {
	l.inGroup = true
	l.rid = w.RID
	l.rt = w.RT
	l.frLr = *w
	l.active.reset()
}

// advanceInto emits the negating windows of all elementary intervals that
// are completed at sweep position `to`.
func (l *lawan) advanceInto(to interval.Time, buf []window.Window, n int) int {
	for !l.active.empty() {
		e := l.active.minEnd()
		if e > to {
			break
		}
		if l.curStart < e {
			n = l.emitNegating(l.curStart, e, buf, n)
		}
		for !l.active.empty() && l.active.minEnd() == e {
			l.active.pop()
		}
		l.curStart = e
	}
	if !l.active.empty() && l.curStart < to {
		n = l.emitNegating(l.curStart, to, buf, n)
		l.curStart = to
	}
	return n
}

// flush drains the remaining elementary intervals of the group being
// closed.
func (l *lawan) flush() {
	l.flushInto(nil, 0)
}

func (l *lawan) flushInto(buf []window.Window, n int) int {
	if !l.inGroup {
		return n
	}
	return l.advanceInto(interval.MaxTime, buf, n)
}

func (l *lawan) emitNegating(start, end interval.Time, buf []window.Window, n int) int {
	// Single active s tuple (the common case): its lineage IS the
	// disjunction; skip lineage.Or's operand-slice allocation.
	var ls *lineage.Expr
	if len(l.active.lams) == 1 {
		ls = l.active.lams[0]
	} else {
		ls = lineage.Or(l.active.lineages()...)
	}
	w := window.Window{
		Fr:  l.frLr.Fr,
		T:   interval.Interval{Start: start, End: end},
		Lr:  l.frLr.Lr,
		Ls:  ls,
		RID: l.rid, RT: l.rt,
	}
	return l.emitInto(&w, buf, n)
}

// activeSet is the priority queue of the active s tuples: a min-heap on
// ending points plus the lineages in activation order (so that printed
// disjunctions follow the paper's reading order, e.g. b3 ∨ b2). The heap
// is hand-rolled rather than container/heap: the interface-based API
// boxes every pushed entry, which would cost one allocation per
// overlapping window.
type activeSet struct {
	ends endHeap
	lams []*lineage.Expr // activation order
	scr  []*lineage.Expr // scratch for lineages()
}

type endEntry struct {
	end interval.Time
	lam *lineage.Expr
}

type endHeap []endEntry

func (h endHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].end <= h[i].end {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h endHeap) siftDown(i int) {
	n := len(h)
	for {
		least := i
		if l := 2*i + 1; l < n && h[l].end < h[least].end {
			least = l
		}
		if r := 2*i + 2; r < n && h[r].end < h[least].end {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func (a *activeSet) reset() {
	a.ends = a.ends[:0]
	a.lams = a.lams[:0]
}

func (a *activeSet) empty() bool { return len(a.ends) == 0 }

func (a *activeSet) minEnd() interval.Time { return a.ends[0].end }

func (a *activeSet) push(end interval.Time, lam *lineage.Expr) {
	a.ends = append(a.ends, endEntry{end: end, lam: lam})
	a.ends.siftUp(len(a.ends) - 1)
	a.lams = append(a.lams, lam)
}

// pop removes the active tuple with the minimal ending point, both from
// the heap and from the activation-order list.
func (a *activeSet) pop() {
	e := a.ends[0]
	last := len(a.ends) - 1
	a.ends[0] = a.ends[last]
	a.ends = a.ends[:last]
	if last > 0 {
		a.ends.siftDown(0)
	}
	for i, lam := range a.lams {
		if lam == e.lam {
			a.lams = append(a.lams[:i], a.lams[i+1:]...)
			break
		}
	}
}

// lineages returns the active lineages in activation order. The returned
// slice is reused across calls; lineage.Or copies what it keeps.
func (a *activeSet) lineages() []*lineage.Expr {
	a.scr = a.scr[:0]
	a.scr = append(a.scr, a.lams...)
	return a.scr
}
