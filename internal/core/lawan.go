package core

import (
	"container/heap"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/window"
)

// LAWAN (Lineage-Aware Window Advancer, Negating) extends the WUO stream
// produced by LAWAU with the negating windows (paper, Section III-C,
// Fig. 4): for every group of overlapping windows that share the same r
// tuple, a negating window is created between every two consecutive event
// points — the starting and ending points of the matching s tuples — with
// λs the disjunction of the lineages of all s tuples active over the
// subinterval.
//
// The ending points and lineages of the active s tuples are kept in a
// priority queue ordered by ending point. Copies of the incoming windows
// and newly created negating windows alternate in the output, exactly as
// described in the paper. State per group is bounded by the maximal number
// of concurrently valid matching s tuples.
type lawan struct {
	in  Iterator
	out queue

	inGroup  bool
	rid      int
	rt       interval.Interval
	frLr     window.Window
	active   activeSet
	curStart interval.Time
	done     bool
}

// LAWAN returns the negating-window sweep over in. The input must be
// grouped by r tuple with overlapping windows sorted by starting point
// (the order LAWAU preserves from OverlapJoin).
func LAWAN(in Iterator) Iterator { return &lawan{in: in} }

func (l *lawan) Next() (window.Window, bool) {
	for {
		if w, ok := l.out.pop(); ok {
			return w, true
		}
		if l.done {
			return window.Window{}, false
		}
		w, ok := l.in.Next()
		if !ok {
			l.flush()
			l.done = true
			continue
		}
		if !l.inGroup || w.RID != l.rid {
			l.flush()
			l.startGroup(w)
		}
		l.feed(w)
	}
}

func (l *lawan) startGroup(w window.Window) {
	l.inGroup = true
	l.rid = w.RID
	l.rt = w.RT
	l.frLr = w
	l.active.reset()
}

func (l *lawan) feed(w window.Window) {
	if w.Class() != window.Overlapping {
		// Unmatched windows need no negation; copy them through (Case 1).
		l.out.push(w)
		return
	}
	// Close the elementary intervals that end before this window starts
	// (Cases 2 and 3 of Fig. 4), then activate its s tuple.
	l.advance(w.T.Start)
	l.out.push(w)
	if l.active.empty() {
		l.curStart = w.T.Start
	}
	l.active.push(w.T.End, w.Ls)
}

// advance emits the negating windows of all elementary intervals that are
// completed at sweep position `to`.
func (l *lawan) advance(to interval.Time) {
	for !l.active.empty() {
		e := l.active.minEnd()
		if e > to {
			break
		}
		if l.curStart < e {
			l.emitNegating(l.curStart, e)
		}
		for !l.active.empty() && l.active.minEnd() == e {
			l.active.pop()
		}
		l.curStart = e
	}
	if !l.active.empty() && l.curStart < to {
		l.emitNegating(l.curStart, to)
		l.curStart = to
	}
}

// flush drains the remaining elementary intervals of the group being
// closed.
func (l *lawan) flush() {
	if !l.inGroup {
		return
	}
	l.advance(interval.MaxTime)
}

func (l *lawan) emitNegating(start, end interval.Time) {
	l.out.push(window.Window{
		Fr:  l.frLr.Fr,
		T:   interval.Interval{Start: start, End: end},
		Lr:  l.frLr.Lr,
		Ls:  lineage.Or(l.active.lineages()...),
		RID: l.rid, RT: l.rt,
	})
}

// activeSet is the priority queue of the active s tuples: a min-heap on
// ending points plus the lineages in activation order (so that printed
// disjunctions follow the paper's reading order, e.g. b3 ∨ b2).
type activeSet struct {
	ends endHeap
	lams []*lineage.Expr // activation order
	scr  []*lineage.Expr // scratch for lineages()
}

type endEntry struct {
	end interval.Time
	lam *lineage.Expr
}

type endHeap []endEntry

func (h endHeap) Len() int            { return len(h) }
func (h endHeap) Less(i, j int) bool  { return h[i].end < h[j].end }
func (h endHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x interface{}) { *h = append(*h, x.(endEntry)) }
func (h *endHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (a *activeSet) reset() {
	a.ends = a.ends[:0]
	a.lams = a.lams[:0]
}

func (a *activeSet) empty() bool { return len(a.ends) == 0 }

func (a *activeSet) minEnd() interval.Time { return a.ends[0].end }

func (a *activeSet) push(end interval.Time, lam *lineage.Expr) {
	heap.Push(&a.ends, endEntry{end: end, lam: lam})
	a.lams = append(a.lams, lam)
}

// pop removes the active tuple with the minimal ending point, both from
// the heap and from the activation-order list.
func (a *activeSet) pop() {
	e := heap.Pop(&a.ends).(endEntry)
	for i, lam := range a.lams {
		if lam == e.lam {
			a.lams = append(a.lams[:i], a.lams[i+1:]...)
			break
		}
	}
}

// lineages returns the active lineages in activation order. The returned
// slice is reused across calls; lineage.Or copies what it keeps.
func (a *activeSet) lineages() []*lineage.Expr {
	a.scr = a.scr[:0]
	a.scr = append(a.scr, a.lams...)
	return a.scr
}
