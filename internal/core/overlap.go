package core

import (
	"sort"

	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// OverlapJoin computes the conventional outer join r ⟕_{θo∧θ} s of the
// paper's Section III-A: for every tuple of r, the overlapping windows
// against all matching tuples of s (sorted by starting point), or a single
// unmatched window spanning the tuple's whole interval when nothing
// matches. Every window is enhanced with the original interval of its r
// tuple (Window.RT) and the tuple's identity (Window.RID), which is the
// grouping the downstream sweeps rely on.
//
// For equi conditions the join hash-partitions s once (build side) and
// probes per r tuple; for general θ it falls back to a nested loop over s
// presorted by starting point. Either way the output streams one r-tuple
// group at a time: memory is bounded by the largest per-tuple match set,
// not by the result size.
func OverlapJoin(r, s *tp.Relation, theta tp.Theta) Iterator {
	if eq, ok := theta.(tp.EquiTheta); ok {
		return newHashOverlapJoin(r, s, eq)
	}
	return newLoopOverlapJoin(r, s, theta)
}

// sEntry is one build-side tuple with its precomputed fields.
type sEntry struct {
	idx int // index in s.Tuples
}

type hashOverlapJoin struct {
	r     *tp.Relation
	s     *tp.Relation
	eq    tp.EquiTheta
	table map[string][]int // equi key → s tuple indexes, sorted by T.Start
	ri    int
	out   queue
}

func newHashOverlapJoin(r, s *tp.Relation, eq tp.EquiTheta) *hashOverlapJoin {
	j := &hashOverlapJoin{r: r, s: s, eq: eq, table: make(map[string][]int)}
	for i := range s.Tuples {
		k, ok := eq.SKey(s.Tuples[i].Fact)
		if !ok {
			continue // NULL join key matches nothing
		}
		j.table[k] = append(j.table[k], i)
	}
	for _, bucket := range j.table {
		sort.SliceStable(bucket, func(a, b int) bool {
			return s.Tuples[bucket[a]].T.Less(s.Tuples[bucket[b]].T)
		})
	}
	return j
}

func (j *hashOverlapJoin) Next() (window.Window, bool) {
	for {
		if w, ok := j.out.pop(); ok {
			return w, true
		}
		if j.ri >= len(j.r.Tuples) {
			return window.Window{}, false
		}
		rt := &j.r.Tuples[j.ri]
		matched := false
		if key, ok := j.eq.RKey(rt.Fact); ok {
			for _, si := range j.table[key] {
				st := &j.s.Tuples[si]
				if st.T.Start >= rt.T.End {
					break // bucket sorted by start: nothing later overlaps
				}
				if !st.T.Overlaps(rt.T) {
					continue
				}
				matched = true
				j.out.push(window.Window{
					Fr: rt.Fact, Fs: st.Fact,
					T:  rt.T.Intersect(st.T),
					Lr: rt.Lineage, Ls: st.Lineage,
					RID: j.ri, RT: rt.T,
				})
			}
		}
		if !matched {
			j.out.push(window.Window{
				Fr: rt.Fact, T: rt.T, Lr: rt.Lineage,
				RID: j.ri, RT: rt.T,
			})
		}
		j.ri++
	}
}

type loopOverlapJoin struct {
	r     *tp.Relation
	s     *tp.Relation
	theta tp.Theta
	order []int // s tuple indexes sorted by T.Start
	ri    int
	out   queue
}

func newLoopOverlapJoin(r, s *tp.Relation, theta tp.Theta) *loopOverlapJoin {
	j := &loopOverlapJoin{r: r, s: s, theta: theta}
	j.order = make([]int, len(s.Tuples))
	for i := range j.order {
		j.order[i] = i
	}
	sort.SliceStable(j.order, func(a, b int) bool {
		return s.Tuples[j.order[a]].T.Less(s.Tuples[j.order[b]].T)
	})
	return j
}

func (j *loopOverlapJoin) Next() (window.Window, bool) {
	for {
		if w, ok := j.out.pop(); ok {
			return w, true
		}
		if j.ri >= len(j.r.Tuples) {
			return window.Window{}, false
		}
		rt := &j.r.Tuples[j.ri]
		matched := false
		for _, si := range j.order {
			st := &j.s.Tuples[si]
			if st.T.Start >= rt.T.End {
				break
			}
			if !st.T.Overlaps(rt.T) || !j.theta.Match(rt.Fact, st.Fact) {
				continue
			}
			matched = true
			j.out.push(window.Window{
				Fr: rt.Fact, Fs: st.Fact,
				T:  rt.T.Intersect(st.T),
				Lr: rt.Lineage, Ls: st.Lineage,
				RID: j.ri, RT: rt.T,
			})
		}
		if !matched {
			j.out.push(window.Window{
				Fr: rt.Fact, T: rt.T, Lr: rt.Lineage,
				RID: j.ri, RT: rt.T,
			})
		}
		j.ri++
	}
}
