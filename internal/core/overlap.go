package core

import (
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"
	"weak"

	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// OverlapJoin computes the conventional outer join r ⟕_{θo∧θ} s of the
// paper's Section III-A: for every tuple of r, the overlapping windows
// against all matching tuples of s (sorted by starting point), or a single
// unmatched window spanning the tuple's whole interval when nothing
// matches. Every window is enhanced with the original interval of its r
// tuple (Window.RT) and the tuple's identity (Window.RID), which is the
// grouping the downstream sweeps rely on.
//
// For equi conditions the join hash-partitions s once (build side) and
// probes per r tuple; for general θ it falls back to a nested loop over s
// presorted by starting point. Either way the output streams one r-tuple
// group at a time: memory is bounded by the largest per-tuple match set,
// not by the result size.
func OverlapJoin(r, s *tp.Relation, theta tp.Theta) Iterator {
	if eq, ok := theta.(tp.EquiTheta); ok {
		return newHashOverlapJoin(r, s, eq)
	}
	return newLoopOverlapJoin(r, s, theta)
}

// keySlot is one distinct (interned) equi key of the build side in the
// join's open-addressing dictionary: a representative tuple for exact key
// comparison (distinct keys can share a 64-bit hash, so every probe must
// verify), and the key's bucket as a span of the flat order slice. rep1 is
// the representative index + 1; 0 marks an empty slot.
type keySlot struct {
	hash uint64
	rep1 int32
	lo   int32
	n    int32 // member count during build, then fill cursor, finally count
}

// keyTable dictionary-encodes the equi-key column(s) of the build relation
// once per join: every distinct key becomes one slot, addressed by its
// 64-bit hash with linear probing, and all bucket members live in a single
// flat slice. Building it allocates exactly three slices regardless of key
// count, and probing it is one or two array accesses — no map, no string
// keys.
type keyTable struct {
	slots []keySlot
	mask  uint64
	order []int32 // all build tuples, bucketed per key, (T, index)-sorted
}

func buildKeyTable(s *tp.Relation, eq tp.EquiTheta) *keyTable {
	size := uint64(8)
	for size < 2*uint64(len(s.Tuples)) {
		size *= 2 // ≤ 50% load factor keeps probe chains short
	}
	t := &keyTable{slots: make([]keySlot, size), mask: size - 1}

	// Pass 1: claim one slot per distinct key, counting members and
	// remembering each tuple's slot so later passes probe nothing. Like
	// the probe side, consecutive tuples usually share their key (chain
	// order), so one strict key comparison frequently replaces the hash +
	// table probe.
	slotOf := make([]int32, len(s.Tuples))
	valid := 0
	var lastFact tp.Fact
	lastSlot := int32(-1)
	for i := range s.Tuples {
		f := s.Tuples[i].Fact
		if lastFact == nil || !eq.SKeyEqual(f, lastFact) {
			lastFact = f
			lastSlot = -1
			if h, ok := eq.SKeyHash(f); ok {
				lastSlot = int32(t.findOrClaim(s, eq, h, int32(i)))
			}
		}
		slotOf[i] = lastSlot
		if lastSlot >= 0 {
			t.slots[lastSlot].n++
			valid++
		}
	}
	// Pass 2: prefix-sum the counts into bucket offsets.
	off := int32(0)
	for i := range t.slots {
		sl := &t.slots[i]
		if sl.rep1 == 0 {
			continue
		}
		sl.lo = off
		off += sl.n
		sl.n = 0 // reused as the fill cursor
	}
	// Pass 3: scatter the tuple indexes into their buckets, in index order.
	t.order = make([]int32, valid)
	for i := range s.Tuples {
		if slotOf[i] < 0 {
			continue
		}
		sl := &t.slots[slotOf[i]]
		t.order[sl.lo+sl.n] = int32(i)
		sl.n++
	}
	// Pass 4: order each bucket by starting point. A plain sort with an
	// explicit index tie-break replaces the former stable sort (buckets
	// were filled in index order, so the tie-break reproduces it); the
	// generic sort avoids sort.Slice's per-call reflection allocation.
	for i := range t.slots {
		sl := &t.slots[i]
		if sl.rep1 == 0 || sl.n < 2 {
			continue
		}
		slices.SortFunc(t.order[sl.lo:sl.lo+sl.n], func(a, b int32) int {
			if c := s.Tuples[a].T.Compare(s.Tuples[b].T); c != 0 {
				return c
			}
			return int(a) - int(b)
		})
	}
	return t
}

// findOrClaim returns the slot index of s tuple i's key, claiming an empty
// slot on first sight. Linear probing; 64-bit hash collisions between
// distinct keys simply occupy the next free slot and are disambiguated by
// the SKeyEqual verification.
func (t *keyTable) findOrClaim(s *tp.Relation, eq tp.EquiTheta, h uint64, i int32) uint64 {
	for idx := h & t.mask; ; idx = (idx + 1) & t.mask {
		sl := &t.slots[idx]
		if sl.rep1 == 0 {
			sl.hash = h
			sl.rep1 = i + 1
			return idx
		}
		if sl.hash == h && eq.SKeyEqual(s.Tuples[sl.rep1-1].Fact, s.Tuples[i].Fact) {
			return idx
		}
	}
}

// lookup returns the bucket of build tuples whose key matches the probe
// fact, or nil.
func (t *keyTable) lookup(s *tp.Relation, eq tp.EquiTheta, h uint64, f tp.Fact) []int32 {
	for idx := h & t.mask; ; idx = (idx + 1) & t.mask {
		sl := &t.slots[idx]
		if sl.rep1 == 0 {
			return nil
		}
		if sl.hash == h && eq.KeyMatch(f, s.Tuples[sl.rep1-1].Fact) {
			return t.order[sl.lo : sl.lo+sl.n]
		}
	}
}

type hashOverlapJoin struct {
	r     *tp.Relation
	s     *tp.Relation
	eq    tp.EquiTheta
	table *keyTable
	ri    int
	out   queue

	// Last-probe memo: relations are commonly ordered by fact chains
	// (consecutive r tuples share their equi key), so one strict key
	// comparison frequently replaces the hash + table probe.
	lastFact   tp.Fact
	lastBucket []int32
}

func newHashOverlapJoin(r, s *tp.Relation, eq tp.EquiTheta) *hashOverlapJoin {
	return &hashOverlapJoin{r: r, s: s, eq: eq, table: cachedKeyTable(s, eq)}
}

// bucketFor returns the build-side bucket matching the probe fact's equi
// key (nil when the key is NULL or absent).
func (j *hashOverlapJoin) bucketFor(f tp.Fact) []int32 {
	if j.lastFact != nil && j.eq.RKeyEqual(f, j.lastFact) {
		return j.lastBucket
	}
	j.lastFact = f
	j.lastBucket = nil
	if h, ok := j.eq.RKeyHash(f); ok {
		j.lastBucket = j.table.lookup(j.s, j.eq, h, f)
	}
	return j.lastBucket
}

// step processes the next r tuple, pushing its windows onto the output
// queue. It reports false when r is exhausted.
func (j *hashOverlapJoin) step() bool {
	if j.ri >= len(j.r.Tuples) {
		return false
	}
	rt := &j.r.Tuples[j.ri]
	matched := false
	for _, si := range j.bucketFor(rt.Fact) {
		st := &j.s.Tuples[si]
		if st.T.Start >= rt.T.End {
			break // bucket sorted by start: nothing later overlaps
		}
		if !st.T.Overlaps(rt.T) {
			continue
		}
		matched = true
		j.out.push(window.Window{
			Fr: rt.Fact, Fs: st.Fact,
			T:  rt.T.Intersect(st.T),
			Lr: rt.Lineage, Ls: st.Lineage,
			RID: j.ri, RT: rt.T,
		})
	}
	if !matched {
		j.out.push(window.Window{
			Fr: rt.Fact, T: rt.T, Lr: rt.Lineage,
			RID: j.ri, RT: rt.T,
		})
	}
	j.ri++
	return true
}

func (j *hashOverlapJoin) Next() (window.Window, bool) {
	for {
		if w, ok := j.out.pop(); ok {
			return w, true
		}
		if !j.step() {
			return window.Window{}, false
		}
	}
}

// NextBatch implements BatchIterator. Windows are emitted straight into
// buf — the queue is only used by the scalar path and as overflow for an
// r tuple whose window burst exceeds the batch — which saves the
// push/pop copy pair per window.
func (j *hashOverlapJoin) NextBatch(buf []window.Window) int {
	n := j.out.popInto(buf)
	for n < len(buf) {
		if j.ri >= len(j.r.Tuples) {
			return n
		}
		rt := &j.r.Tuples[j.ri]
		matched := false
		for _, si := range j.bucketFor(rt.Fact) {
			st := &j.s.Tuples[si]
			if st.T.Start >= rt.T.End {
				break
			}
			if !st.T.Overlaps(rt.T) {
				continue
			}
			matched = true
			w := window.Window{
				Fr: rt.Fact, Fs: st.Fact,
				T:  rt.T.Intersect(st.T),
				Lr: rt.Lineage, Ls: st.Lineage,
				RID: j.ri, RT: rt.T,
			}
			if n < len(buf) {
				buf[n] = w
				n++
			} else {
				j.out.push(w)
			}
		}
		if !matched {
			buf[n] = window.Window{
				Fr: rt.Fact, T: rt.T, Lr: rt.Lineage,
				RID: j.ri, RT: rt.T,
			}
			n++
		}
		j.ri++
	}
	return n
}

// relCache memoizes per-relation derived structures — the start-sorted
// permutation of a loop join's build side and the hash join's key
// dictionary — so that instantiating many joins against one relation (the
// REPL, the server, benchmark iterations) derives them once instead of
// per instantiation. Relations published through the catalog are
// immutable (catalog.Register documents this), which makes the entries
// stable; a defensive length check invalidates entries for relations
// still being appended to. Keys hold the relation weakly and every entry
// registers a cleanup, so transient relations do not pin their derived
// structures in memory.
var relCache sync.Map // relCacheKey → relCacheEntry

type relCacheKey struct {
	rel weak.Pointer[tp.Relation]
	// sub discriminates the derived structure: "start" for the sorted
	// permutation, "dict:<cols>" for a key dictionary.
	sub string
}

type relCacheEntry struct {
	n   int    // len(rel.Tuples) at build time; a mismatch invalidates
	ver uint64 // rel.Version() at build time; a mismatch invalidates
	v   any
}

// relCached returns the cached derived structure for (rel, sub), building
// and publishing it on a miss. Entries are invalidated by the relation's
// (length, Version) pair, so appends and sorts through tp.Relation's
// methods rebuild instead of serving stale structures. Transient
// relations (per-query temporaries) bypass the cache entirely — their
// entries could never be re-hit. Concurrent builders race benignly: one
// entry wins, both results are valid.
func relCached(rel *tp.Relation, sub string, build func() any) any {
	if rel.Transient {
		return build()
	}
	key := relCacheKey{rel: weak.Make(rel), sub: sub}
	if e, ok := relCache.Load(key); ok {
		if ent := e.(relCacheEntry); ent.n == len(rel.Tuples) && ent.ver == rel.Version() {
			return ent.v
		}
	}
	v := build()
	ent := relCacheEntry{n: len(rel.Tuples), ver: rel.Version(), v: v}
	if _, loaded := relCache.Swap(key, ent); !loaded {
		runtime.AddCleanup(rel, func(k relCacheKey) {
			relCache.Delete(k)
		}, key)
	}
	return v
}

func startSorted(s *tp.Relation) []int {
	return relCached(s, "start", func() any { return sortByStart(s) }).([]int)
}

func sortByStart(s *tp.Relation) []int {
	order := make([]int, len(s.Tuples))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if c := s.Tuples[order[a]].T.Compare(s.Tuples[order[b]].T); c != 0 {
			return c < 0
		}
		return order[a] < order[b]
	})
	return order
}

// cachedKeyTable returns the relation's key dictionary for the given equi
// columns, building it at most once per relation (the "dictionary-encode
// once per relation" fast path: repeated joins against a catalog relation
// reuse the interned keys).
func cachedKeyTable(s *tp.Relation, eq tp.EquiTheta) *keyTable {
	sub := "dict:"
	for _, c := range eq.SCols {
		sub += strconv.Itoa(c) + ","
	}
	return relCached(s, sub, func() any { return buildKeyTable(s, eq) }).(*keyTable)
}

type loopOverlapJoin struct {
	r     *tp.Relation
	s     *tp.Relation
	theta tp.Theta
	order []int // s tuple indexes sorted by T.Start
	ri    int
	out   queue
}

func newLoopOverlapJoin(r, s *tp.Relation, theta tp.Theta) *loopOverlapJoin {
	return &loopOverlapJoin{r: r, s: s, theta: theta, order: startSorted(s)}
}

// step processes the next r tuple; see hashOverlapJoin.step.
func (j *loopOverlapJoin) step() bool {
	if j.ri >= len(j.r.Tuples) {
		return false
	}
	rt := &j.r.Tuples[j.ri]
	matched := false
	for _, si := range j.order {
		st := &j.s.Tuples[si]
		if st.T.Start >= rt.T.End {
			break
		}
		if !st.T.Overlaps(rt.T) || !j.theta.Match(rt.Fact, st.Fact) {
			continue
		}
		matched = true
		j.out.push(window.Window{
			Fr: rt.Fact, Fs: st.Fact,
			T:  rt.T.Intersect(st.T),
			Lr: rt.Lineage, Ls: st.Lineage,
			RID: j.ri, RT: rt.T,
		})
	}
	if !matched {
		j.out.push(window.Window{
			Fr: rt.Fact, T: rt.T, Lr: rt.Lineage,
			RID: j.ri, RT: rt.T,
		})
	}
	j.ri++
	return true
}

func (j *loopOverlapJoin) Next() (window.Window, bool) {
	for {
		if w, ok := j.out.pop(); ok {
			return w, true
		}
		if !j.step() {
			return window.Window{}, false
		}
	}
}

// NextBatch implements BatchIterator.
func (j *loopOverlapJoin) NextBatch(buf []window.Window) int {
	n := j.out.popInto(buf)
	for n < len(buf) {
		if !j.step() {
			return n
		}
		n += j.out.popInto(buf[n:])
	}
	return n
}
