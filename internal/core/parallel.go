package core

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"tpjoin/internal/par"
	"tpjoin/internal/tp"
)

// ParallelJoin evaluates a TP join with equi-θ by hash-partitioning both
// inputs on the join key and running the NJ pipeline on every partition
// concurrently. Facts with different keys never match, and all windows of
// one r tuple are confined to its partition, so partition results simply
// concatenate. Output tuple order is deterministic (partition-major,
// pipeline order within a partition) regardless of scheduling.
//
// This is the parallelism model a partitioned DBMS executor would apply
// to the paper's operators; the sweep algorithms themselves stay strictly
// sequential per partition, as their correctness depends on group order.
func ParallelJoin(op tp.Op, r, s *tp.Relation, eq tp.EquiTheta, workers int) *tp.Relation {
	out, _ := parallelJoinCtx(context.Background(), op, r, s, eq, workers, true, nil)
	return out
}

// ParallelJoinContext is ParallelJoin under a query context: the partition
// workers observe ctx between partitions and every cancelCheck tuples
// while draining one, so a timeout or client disconnect aborts the
// materializing Open mid-build instead of running every partition to
// completion. On cancellation all workers are joined before returning, so
// no partition goroutine outlives the call; the result is nil and the
// error is ctx.Err(). A non-nil st additionally accounts partitions and
// output tuples for EXPLAIN ANALYZE.
func ParallelJoinContext(ctx context.Context, op tp.Op, r, s *tp.Relation, eq tp.EquiTheta, workers int, st *ParallelStats) (*tp.Relation, error) {
	return parallelJoinCtx(ctx, op, r, s, eq, workers, true, st)
}

// MaxWorkers bounds the goroutine and partition count regardless of the
// caller's request; plan.MaxJoinWorkers applies the same cap at SET time
// so rejected values never reach the executor.
const MaxWorkers = par.MaxWorkers

// cancelCheck is how many tuples a partition worker drains between
// context checks: frequent enough that cancellation bites within
// microseconds, rare enough that the (atomic-load) check never shows in
// profiles.
const cancelCheck = 256

// ParallelStats accounts one ParallelJoin run for EXPLAIN ANALYZE. The
// fields are written by the partition workers through atomics; read them
// only after the join returned.
type ParallelStats struct {
	// Workers is the effective worker count after defaulting and capping.
	Workers int64
	// Partitions is the total partition count (workers × 4).
	Partitions int64
	// PartitionsDone is how many partitions completed; under an aborted
	// run it shows how far the join got before cancellation.
	PartitionsDone atomic.Int64
	// Tuples is the number of output tuples produced across partitions
	// (counted even for partitions whose results were discarded by a
	// later abort).
	Tuples atomic.Int64
}

// parallelJoin is ParallelJoinContext with the batched window transport
// made explicit, so tests can pin batch/scalar equality of the
// partitioned executor too.
func parallelJoin(op tp.Op, r, s *tp.Relation, eq tp.EquiTheta, workers int, batch bool) *tp.Relation {
	out, _ := parallelJoinCtx(context.Background(), op, r, s, eq, workers, batch, nil)
	return out
}

func parallelJoinCtx(ctx context.Context, op tp.Op, r, s *tp.Relation, eq tp.EquiTheta, workers int, batch bool, st *ParallelStats) (*tp.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}
	parts := workers * 4 // over-partition to smooth skew
	if parts < 1 {
		parts = 1
	}
	if st != nil {
		st.Workers = int64(workers)
		st.Partitions = int64(parts)
	}

	rParts := par.PartitionByKey(r, eq.RCols, parts)
	sParts := par.PartitionByKey(s, eq.SCols, parts)

	// Merge the base-event probabilities once; the map is only read by
	// the workers' evaluators, so sharing it across goroutines is safe.
	merged := tp.MergeProbs(r, s)

	results := make([]*tp.Relation, parts)
	err := par.Run(ctx, parts, workers, func(p int) error {
		res, err := drainJoinCtx(ctx, op, rParts[p], sParts[p], eq, merged, batch, st)
		if err != nil {
			return err
		}
		results[p] = res
		if st != nil {
			st.PartitionsDone.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &tp.Relation{
		Name:  fmt.Sprintf("%s_%s_%s", r.Name, opTag(op), s.Name),
		Attrs: results[0].Attrs,
		Probs: merged,
	}
	n := 0
	for _, res := range results {
		n += res.Len()
	}
	out.Tuples = make([]tp.Tuple, 0, n)
	for _, res := range results {
		out.Tuples = append(out.Tuples, res.Tuples...)
	}
	return out, nil
}
