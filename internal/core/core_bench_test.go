package core

import (
	"testing"

	"tpjoin/internal/dataset"
	"tpjoin/internal/tp"
)

// Micro-benchmarks of the pipeline stages, used to attribute the figure-
// level results to individual operators.

func benchInput(b *testing.B, n int) (*tp.Relation, *tp.Relation, tp.EquiTheta) {
	b.Helper()
	r, s := dataset.Webkit(n, 1)
	return r, s, dataset.WebkitTheta()
}

func BenchmarkOverlapJoinHash(b *testing.B) {
	r, s, theta := benchInput(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(OverlapJoin(r, s, theta))
	}
}

func BenchmarkOverlapJoinNestedLoop(b *testing.B) {
	r, s, theta := benchInput(b, 2000)
	loop := tp.FuncTheta(func(x, y tp.Fact) bool { return theta.Match(x, y) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(OverlapJoin(r, s, loop))
	}
}

func BenchmarkLAWAUSweep(b *testing.B) {
	r, s, theta := benchInput(b, 20000)
	wo := Drain(OverlapJoin(r, s, theta))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(LAWAU(NewSliceIterator(wo)))
	}
}

func BenchmarkLAWANSweep(b *testing.B) {
	r, s, theta := benchInput(b, 20000)
	wuo := Drain(LAWAU(OverlapJoin(r, s, theta)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(LAWAN(NewSliceIterator(wuo)))
	}
}

func BenchmarkLeftOuterJoinComplete(b *testing.B) {
	r, s, theta := benchInput(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LeftOuterJoin(r, s, theta)
	}
}

func BenchmarkJoinStreamPipelined(b *testing.B) {
	// The streaming API: first 100 tuples only — pipelining means cost is
	// proportional to consumption, not to the full result.
	r, s, theta := benchInput(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, _ := JoinStream(tp.OpLeft, r, s, theta)
		for j := 0; j < 100; j++ {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}

// Ablation: interval-tree access path vs. the default start-sorted bucket
// scan on the probe side of the overlap join.
func BenchmarkAblation_OverlapJoinSortedBucket(b *testing.B) {
	r, s, theta := benchInput(b, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(OverlapJoin(r, s, theta))
	}
}

func BenchmarkAblation_OverlapJoinIntervalTree(b *testing.B) {
	r, s, theta := benchInput(b, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(OverlapJoinIndexed(r, s, theta))
	}
}
