package core

import (
	"context"
	"fmt"

	"tpjoin/internal/lineage"
	"tpjoin/internal/mem"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// This file composes the window streams into the TP join operators
// following Table II of the paper:
//
//	r ▷ s   : WU(r;s,θ) ∪ WN(r;s,θ)
//	r ⟕ s  : WU(r;s,θ) ∪ WN(r;s,θ) ∪ WO(r;s,θ)
//	r ⟖ s  : WO(r;s,θ) ∪ WU(s;r,θ) ∪ WN(s;r,θ)
//	r ⟗ s  : all five sets
//	r ⋈ s   : WO(r;s,θ)
//
// and forms one output tuple per window with the lineage-concatenation
// function of its class: and(λr,λs) for overlapping, λr for unmatched and
// andNot(λr,λs) = λr ∧ ¬λs for negating windows.

// TupleIterator is a pull-based stream of output tuples; the join
// operators produce their results through it without materializing, which
// is how they plug into the pipelined executor (internal/engine).
type TupleIterator interface {
	Next() (tp.Tuple, bool)
}

// JoinStream returns the pipelined result stream of the TP join `op` and
// the output attribute names. The input relations must satisfy the
// sequenced-TP constraint (see Relation.ValidateSequenced); output tuple
// probabilities are exact. Windows move through the pipeline in pooled
// batches (BatchSize at a time); the produced tuples are identical to the
// scalar reference path (ScalarJoinStream).
func JoinStream(op tp.Op, r, s *tp.Relation, theta tp.Theta) (TupleIterator, []string) {
	return joinStreamWithProbs(op, r, s, theta, tp.MergeProbs(r, s), true, nil)
}

// JoinStreamInstrumented is JoinStream with per-stage accounting: every
// window-pipeline stage is wrapped in a counting iterator and the returned
// JoinInstr exposes windows/batches per stage (EXPLAIN ANALYZE reads it
// after draining the stream). The counting wrappers only exist on this
// path; plain JoinStream stays allocation- and indirection-free.
func JoinStreamInstrumented(op tp.Op, r, s *tp.Relation, theta tp.Theta) (TupleIterator, []string, *JoinInstr) {
	instr := &JoinInstr{}
	it, attrs := joinStreamWithProbs(op, r, s, theta, tp.MergeProbs(r, s), true, instr)
	return it, attrs, instr
}

// ScalarJoinStream is JoinStream with the batched window transport
// disabled: every window moves through one Next call at a time. It is the
// reference implementation the batched path is validated against
// (TestBatchScalarEquivalence) and exists only for that purpose.
func ScalarJoinStream(op tp.Op, r, s *tp.Relation, theta tp.Theta) (TupleIterator, []string) {
	return joinStreamWithProbs(op, r, s, theta, tp.MergeProbs(r, s), false, nil)
}

// joinStreamWithProbs is JoinStream with a pre-merged base-event
// probability map, letting callers that evaluate many partitioned joins
// over the same database (ParallelJoin) amortize the merge. A non-nil
// instr interposes counting wrappers between the pipeline stages
// (EXPLAIN ANALYZE); nil leaves the stages directly connected.
func joinStreamWithProbs(op tp.Op, r, s *tp.Relation, theta tp.Theta, probs prob.Probs, batch bool, instr *JoinInstr) (TupleIterator, []string) {
	attrs := joinAttrs(r, s)
	// pipeline assembles one phase's window stages, wrapping each in a
	// counting iterator when instrumented. suffix distinguishes the
	// mirrored phase of a full outer join.
	pipeline := func(base Iterator, suffix string, negating bool) Iterator {
		if instr == nil {
			if !negating {
				return base
			}
			return LAWAN(LAWAU(base))
		}
		it := instr.stage("overlap"+suffix, base)
		if !negating {
			return it
		}
		it = instr.stage("lawau"+suffix, LAWAU(it))
		return instr.stage("lawan"+suffix, LAWAN(it))
	}
	var phases []phase
	switch op {
	case tp.OpInner:
		phases = []phase{{
			it:   pipeline(OverlapJoin(r, s, theta), "", false),
			opts: emitOpts{keepOverlap: true, sArity: s.Arity()},
		}}
	case tp.OpAnti:
		attrs = append([]string(nil), r.Attrs...)
		phases = []phase{{
			it:   pipeline(OverlapJoin(r, s, theta), "", true),
			opts: emitOpts{keepUnmatched: true, keepNegating: true, antiSchema: true, sArity: s.Arity()},
		}}
	case tp.OpLeft:
		phases = []phase{{
			it:   pipeline(OverlapJoin(r, s, theta), "", true),
			opts: emitOpts{keepOverlap: true, keepUnmatched: true, keepNegating: true, sArity: s.Arity()},
		}}
	case tp.OpRight:
		phases = []phase{{
			it:   pipeline(OverlapJoin(s, r, tp.Swap(theta)), "", true),
			opts: emitOpts{keepOverlap: true, keepUnmatched: true, keepNegating: true, mirror: true, sArity: r.Arity()},
		}}
	case tp.OpFull:
		phases = []phase{
			{
				it:   pipeline(OverlapJoin(r, s, theta), "", true),
				opts: emitOpts{keepOverlap: true, keepUnmatched: true, keepNegating: true, sArity: s.Arity()},
			},
			{
				it:   pipeline(OverlapJoin(s, r, tp.Swap(theta)), "/mirror", true),
				opts: emitOpts{keepUnmatched: true, keepNegating: true, mirror: true, sArity: r.Arity()},
			},
		}
	default:
		panic(fmt.Sprintf("core: unknown operator %v", op))
	}
	js := &joinStream{phases: phases, batch: batch, instr: instr}
	if batch {
		js.bev = prob.NewBatchEvaluator(probs)
	} else {
		js.ev = prob.NewEvaluator(probs)
	}
	return js, attrs
}

// Join computes the TP join of the given operator, materializing the
// stream of JoinStream into a new relation.
func Join(op tp.Op, r, s *tp.Relation, theta tp.Theta) *tp.Relation {
	return joinWithProbs(op, r, s, theta, tp.MergeProbs(r, s), true)
}

func joinWithProbs(op tp.Op, r, s *tp.Relation, theta tp.Theta, probs prob.Probs, batch bool) *tp.Relation {
	out, _ := drainJoinCtx(context.Background(), op, r, s, theta, probs, batch, nil)
	return out
}

// drainJoinCtx materializes the join stream into a relation, observing
// ctx every cancelCheck tuples (trivial for the Background context, so
// the uncancellable callers above pay nothing measurable). It is the
// single drain loop shared by the sequential joins and the PNJ partition
// workers; a non-nil st additionally accounts the produced tuples. A
// memory budget on ctx (mem.WithGauge) is charged for the pooled pipeline
// buffers up front and for the materialized tuples at every checkpoint —
// the PNJ partition workers all charge the one per-query gauge, so the
// whole parallel join shares one budget.
func drainJoinCtx(ctx context.Context, op tp.Op, r, s *tp.Relation, theta tp.Theta, probs prob.Probs, batch bool, st *ParallelStats) (*tp.Relation, error) {
	gauge := mem.FromContext(ctx)
	if err := gauge.Charge(PipelineBytes(op)); err != nil {
		return nil, err
	}
	it, attrs := joinStreamWithProbs(op, r, s, theta, probs, batch, nil)
	out := &tp.Relation{
		Name:  fmt.Sprintf("%s_%s_%s", r.Name, opTag(op), s.Name),
		Attrs: attrs,
		Probs: probs,
	}
	perCheck := cancelCheck * mem.TupleBytes(len(attrs))
	for n := 0; ; n++ {
		if n%cancelCheck == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if n > 0 {
				if err := gauge.Charge(perCheck); err != nil {
					return nil, err
				}
			}
		}
		t, ok := it.Next()
		if !ok {
			break
		}
		out.Tuples = append(out.Tuples, t)
	}
	if st != nil {
		st.Tuples.Add(int64(out.Len()))
	}
	return out, nil
}

// InnerJoin computes r ⋈Tp s: output tuples for the overlapping windows only.
func InnerJoin(r, s *tp.Relation, theta tp.Theta) *tp.Relation {
	return Join(tp.OpInner, r, s, theta)
}

// AntiJoin computes r ▷Tp s: at each time point the probability that the
// r tuple matches none of the valid s tuples. The output schema is r's.
func AntiJoin(r, s *tp.Relation, theta tp.Theta) *tp.Relation {
	return Join(tp.OpAnti, r, s, theta)
}

// LeftOuterJoin computes r ⟕Tp s: pairings plus, at each time point, the
// probability that the r tuple matches no valid s tuple.
func LeftOuterJoin(r, s *tp.Relation, theta tp.Theta) *tp.Relation {
	return Join(tp.OpLeft, r, s, theta)
}

// RightOuterJoin computes r ⟖Tp s, running the window pipeline with the
// inputs swapped and mirroring the output facts back into (r, s) order.
func RightOuterJoin(r, s *tp.Relation, theta tp.Theta) *tp.Relation {
	return Join(tp.OpRight, r, s, theta)
}

// FullOuterJoin computes r ⟗Tp s: the overlapping windows once, plus the
// unmatched and negating windows of both directions.
func FullOuterJoin(r, s *tp.Relation, theta tp.Theta) *tp.Relation {
	return Join(tp.OpFull, r, s, theta)
}

func opTag(op tp.Op) string {
	switch op {
	case tp.OpInner:
		return "join"
	case tp.OpAnti:
		return "anti"
	case tp.OpLeft:
		return "louter"
	case tp.OpRight:
		return "router"
	default:
		return "fouter"
	}
}

// phase is one window pipeline with its tuple-formation options.
type phase struct {
	it   Iterator
	opts emitOpts
}

// joinStream converts window streams into output tuples lazily. With
// batch set, windows are pulled from each phase through the pooled batched
// transport and probabilities are evaluated in BatchSize batches through
// prob.BatchEvaluator (one memo across the join); the scalar path pulls
// one window per Next call, evaluates per tuple, and is the reference
// implementation.
type joinStream struct {
	phases []phase
	cur    int
	ev     *prob.Evaluator // scalar reference path
	instr  *JoinInstr      // nil unless EXPLAIN ANALYZE instrumented

	batch        bool
	bev          *prob.BatchEvaluator
	buf          *[]window.Window
	bufPos, bufN int
	// The batched probability tail: tuples of the current batch with
	// their lineages collected, awaiting one EvalBatch call. Allocated on
	// the first batch (PipelineBytes charges them up front).
	tbuf     []tp.Tuple
	lams     []*lineage.Expr
	ps       []float64
	tpos, tn int
}

func (j *joinStream) Next() (tp.Tuple, bool) {
	if j.batch {
		return j.nextBatched()
	}
	for j.cur < len(j.phases) {
		ph := &j.phases[j.cur]
		w, ok := ph.it.Next()
		if !ok {
			j.cur++
			continue
		}
		if t, ok := ph.opts.tuple(w, j.ev); ok {
			return t, true
		}
	}
	return tp.Tuple{}, false
}

func (j *joinStream) nextBatched() (tp.Tuple, bool) {
	for {
		if j.tpos < j.tn {
			t := j.tbuf[j.tpos]
			j.tpos++
			return t, true
		}
		if !j.fillBatch() {
			return tp.Tuple{}, false
		}
	}
}

// fillBatch forms up to BatchSize output tuples from the window stream —
// fact and lineage only — then evaluates all their probabilities in one
// EvalBatch call. Deferring the probability to the batch boundary is what
// turns the per-tuple scalar tail into batched work over the shared memo.
func (j *joinStream) fillBatch() bool {
	if j.tbuf == nil {
		j.tbuf = make([]tp.Tuple, BatchSize)
		j.lams = make([]*lineage.Expr, BatchSize)
		j.ps = make([]float64, BatchSize)
	}
	j.tpos, j.tn = 0, 0
	for j.cur < len(j.phases) && j.tn < BatchSize {
		if j.bufPos == j.bufN {
			if j.buf == nil {
				j.buf = getBatchBuf()
			}
			j.bufN = NextBatch(j.phases[j.cur].it, *j.buf)
			j.bufPos = 0
			if j.bufN == 0 {
				j.cur++
				continue
			}
		}
		ph := &j.phases[j.cur]
		for j.bufPos < j.bufN && j.tn < BatchSize {
			w := (*j.buf)[j.bufPos]
			j.bufPos++
			if t, ok := ph.opts.tupleLam(w); ok {
				j.tbuf[j.tn] = t
				j.lams[j.tn] = t.Lineage
				j.tn++
			}
		}
	}
	if j.tn == 0 {
		if j.buf != nil {
			putBatchBuf(j.buf)
			j.buf = nil
		}
		clear(j.tbuf) // drop fact/lineage references past end of stream
		clear(j.lams)
		return false
	}
	j.bev.EvalBatch(j.lams[:j.tn], j.ps)
	for i := 0; i < j.tn; i++ {
		j.tbuf[i].Prob = j.ps[i]
	}
	if j.instr != nil {
		j.instr.ProbBatches = j.bev.Batches()
		j.instr.MemoHits = j.bev.MemoHits()
	}
	return true
}

// emitOpts selects which window classes contribute output tuples and how
// facts are assembled.
type emitOpts struct {
	keepOverlap   bool
	keepUnmatched bool
	keepNegating  bool
	// mirror indicates the pipeline ran with swapped inputs: the window's
	// Fr is a fact of s, and output facts must be reassembled in (r, s)
	// attribute order.
	mirror bool
	// sArity is the arity of the NULL-extended side.
	sArity int
	// antiSchema drops the NULL-extension entirely (anti join outputs have
	// r's schema).
	antiSchema bool
}

// tuple forms the output tuple of window w with its exact probability, or
// reports false when w's class is not part of the operator. This is the
// scalar reference path; the batched path forms tuples via tupleLam and
// fills probabilities per batch.
func (o emitOpts) tuple(w window.Window, ev *prob.Evaluator) (tp.Tuple, bool) {
	t, ok := o.tupleLam(w)
	if !ok {
		return tp.Tuple{}, false
	}
	t.Prob = ev.Prob(t.Lineage)
	return t, true
}

// tupleLam forms the output tuple of window w — fact, lineage and
// interval, probability left unset — or reports false when w's class is
// not part of the operator.
func (o emitOpts) tupleLam(w window.Window) (tp.Tuple, bool) {
	var f tp.Fact
	var lam *lineage.Expr
	switch w.Class() {
	case window.Overlapping:
		if !o.keepOverlap {
			return tp.Tuple{}, false
		}
		if o.mirror {
			f = w.Fs.Concat(w.Fr)
		} else {
			f = w.Fr.Concat(w.Fs)
		}
		lam = lineage.And(w.Lr, w.Ls)
	case window.Unmatched:
		if !o.keepUnmatched {
			return tp.Tuple{}, false
		}
		f = o.negFact(w)
		lam = w.Lr
	default: // Negating
		if !o.keepNegating {
			return tp.Tuple{}, false
		}
		f = o.negFact(w)
		lam = lineage.AndNot(w.Lr, w.Ls)
	}
	return tp.Tuple{Fact: f, Lineage: lam, T: w.T}, true
}

func (o emitOpts) negFact(w window.Window) tp.Fact {
	if o.antiSchema {
		return w.Fr
	}
	if o.mirror {
		return tp.Nulls(o.sArity).Concat(w.Fr)
	}
	return w.Fr.Concat(tp.Nulls(o.sArity))
}

func joinAttrs(r, s *tp.Relation) []string {
	attrs := make([]string, 0, len(r.Attrs)+len(s.Attrs))
	attrs = append(attrs, r.Attrs...)
	attrs = append(attrs, s.Attrs...)
	return attrs
}

// WUO materializes the overlapping and unmatched windows of r with respect
// to s (the quantity measured in the paper's Fig. 5).
func WUO(r, s *tp.Relation, theta tp.Theta) []window.Window {
	return Drain(LAWAU(OverlapJoin(r, s, theta)))
}

// WUON materializes all three window sets (the quantity measured in the
// paper's Fig. 6 as NJ-WUON).
func WUON(r, s *tp.Relation, theta tp.Theta) []window.Window {
	return Drain(LAWAN(LAWAU(OverlapJoin(r, s, theta))))
}
