package core

import (
	"math/rand"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// The paper's windows are defined for arbitrary θ conditions, not just
// equalities; the nested-loop overlap join handles them. These tests
// exercise inequality and band conditions against the reference
// semantics and the Table I spec.

// bandTheta matches when the numeric keys differ by at most 1.
var bandTheta = tp.FuncTheta(func(r, s tp.Fact) bool {
	d := r[0].AsInt() - s[0].AsInt()
	return d >= -1 && d <= 1
})

// lessTheta matches when r's key is strictly smaller.
var lessTheta = tp.FuncTheta(func(r, s tp.Fact) bool {
	return r[0].AsInt() < s[0].AsInt()
})

func randIntRelation(rng *rand.Rand, name string, maxKey int64) *tp.Relation {
	rel := tp.NewRelation(name, "K")
	type span struct{ s, e interval.Time }
	used := make(map[int64][]span)
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		k := rng.Int63n(maxKey)
		st := interval.Time(rng.Intn(15))
		e := st + 1 + interval.Time(rng.Intn(6))
		ok := true
		for _, u := range used[k] {
			if st < u.e && u.s < e {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		used[k] = append(used[k], span{st, e})
		rel.Append(tp.Fact{tp.Int(k)}, interval.New(st, e), 0.1+0.8*rng.Float64())
	}
	return rel
}

func TestGeneralThetaSweepsMatchSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	thetas := []tp.Theta{bandTheta, lessTheta, tp.TrueTheta{}}
	for trial := 0; trial < 90; trial++ {
		r := randIntRelation(rng, "r", 4)
		s := randIntRelation(rng, "s", 4)
		th := thetas[trial%len(thetas)]

		got := Drain(LAWAN(LAWAU(OverlapJoin(r, s, th))))
		want := append(window.SpecOverlapping(r, s, th), window.SpecUnmatched(r, s, th)...)
		want = append(want, window.SpecNegating(r, s, th)...)
		if !window.SetEqual(got, want) {
			t.Fatalf("trial %d (θ #%d): window mismatch\n got %v\nwant %v\nr=%v\ns=%v",
				trial, trial%len(thetas), got, want, r, s)
		}
		for _, w := range got {
			if !window.Check(w, r, s, th) {
				t.Fatalf("trial %d: window fails Table I checker under general θ: %v", trial, w)
			}
		}
	}
}

func TestGeneralThetaOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	for trial := 0; trial < 60; trial++ {
		r := randIntRelation(rng, "r", 4)
		s := randIntRelation(rng, "s", 4)
		op := ops[trial%len(ops)]
		th := tp.Theta(bandTheta)
		if trial%2 == 1 {
			th = lessTheta
		}
		q := Join(op, r, s, th)
		pm, err := tp.Expand(q)
		if err != nil {
			t.Fatalf("trial %d %v: %v\nr=%v\ns=%v\nq=%v", trial, op, err, r, s, q)
		}
		ref := tp.RefJoin(op, r, s, th)
		if err := pm.EqualProb(ref, 1e-9); err != nil {
			t.Fatalf("trial %d %v under general θ: %v\nr=%v\ns=%v", trial, op, err, r, s)
		}
	}
}

func TestCrossProductTheta(t *testing.T) {
	// TrueTheta: every pair of overlapping tuples joins (temporal cross
	// product); the anti join keeps only intervals where *nothing* on the
	// other side is valid.
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("x"), interval.New(0, 10), 0.5)
	s := tp.NewRelation("s", "K")
	s.Append(tp.Strings("p"), interval.New(2, 4), 0.5)
	s.Append(tp.Strings("q"), interval.New(6, 8), 0.5)
	q := AntiJoin(r, s, tp.TrueTheta{})
	pm, err := tp.Expand(q)
	if err != nil {
		t.Fatal(err)
	}
	ref := tp.RefJoin(tp.OpAnti, r, s, tp.TrueTheta{})
	if err := pm.EqualProb(ref, 1e-9); err != nil {
		t.Fatal(err)
	}
	// [0,2) and [4,6) and [8,10) must be fully unmatched (prob 0.5);
	// [2,4) and [6,8) negated (0.25).
	xKey := tp.Strings("x").Key()
	for _, c := range []struct {
		t    interval.Time
		want float64
	}{{0, 0.5}, {3, 0.25}, {5, 0.5}, {7, 0.25}, {9, 0.5}} {
		row := pm[xKey][c.t]
		if d := row.Prob - c.want; d < -1e-9 || d > 1e-9 {
			t.Errorf("t=%d: prob %g, want %g", c.t, row.Prob, c.want)
		}
	}
}

func TestOverlapJoinIndexedMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	eq := tp.Equi(0, 0)
	for trial := 0; trial < 80; trial++ {
		r := randRelation(rng, "r")
		s := randRelation(rng, "s")
		def := Drain(OverlapJoin(r, s, eq))
		idx := Drain(OverlapJoinIndexed(r, s, eq))
		if !window.SetEqual(def, idx) {
			t.Fatalf("trial %d: indexed overlap join differs\n def %v\n idx %v\nr=%v\ns=%v",
				trial, def, idx, r, s)
		}
		// Full pipeline over the indexed source must equal the spec too.
		got := Drain(LAWAN(LAWAU(OverlapJoinIndexed(r, s, eq))))
		want := append(window.SpecOverlapping(r, s, eq), window.SpecUnmatched(r, s, eq)...)
		want = append(want, window.SpecNegating(r, s, eq)...)
		if !window.SetEqual(got, want) {
			t.Fatalf("trial %d: indexed pipeline mismatch", trial)
		}
	}
}
