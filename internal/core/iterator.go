// Package core implements the paper's contribution: the pipelined
// computation of generalized lineage-aware temporal windows and, on top of
// them, the temporal-probabilistic joins with negation (anti, left outer,
// right outer, full outer) plus the inner join.
//
// The computation is structured exactly as in Section III of the paper:
//
//	OverlapJoin   — the conventional outer join r ⟕_{θo∧θ} s, producing
//	                the overlapping windows (enhanced with the original
//	                interval of the r tuple) and the unmatched windows of
//	                r tuples that match no tuple of s at all;
//	LAWAU         — extends that stream with the remaining unmatched
//	                windows (gaps inside partially covered r tuples);
//	LAWAN         — extends the WUO stream with the negating windows,
//	                using a priority queue over the end points of the
//	                active s tuples.
//
// All three are pull-based iterators: windows stream through without
// materializing intermediate sets and without replicating input tuples,
// which is what allows the approach to run inside a pipelined DBMS
// executor (internal/engine).
package core

import (
	"sync"
	"unsafe"

	"tpjoin/internal/lineage"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// Iterator is a pull-based stream of windows. Next returns the next window
// and true, or a zero window and false when the stream is exhausted.
type Iterator interface {
	Next() (window.Window, bool)
}

// BatchIterator is the batched counterpart of Iterator: NextBatch fills
// buf with up to len(buf) windows and returns how many it wrote; 0 means
// the stream is exhausted. Windows arrive in exactly the order Next would
// produce them, and Next/NextBatch calls may be freely interleaved on one
// iterator. The batched path exists purely for throughput — one virtual
// call moves BatchSize windows between pipeline stages instead of one —
// while the scalar Next path remains the reference implementation
// (TestBatchScalarEquivalence pins their equality).
type BatchIterator interface {
	Iterator
	NextBatch(buf []window.Window) int
}

// BatchSize is the number of windows that move per NextBatch hop between
// pipeline stages. 256 windows ≈ 26 KiB: large enough to amortize call
// overhead, small enough to stay cache-resident.
const BatchSize = 256

// batchPool recycles transfer buffers across pipeline instantiations, so
// repeated joins (REPL statements, server queries, benchmark iterations)
// do not allocate a fresh BatchSize buffer per operator.
var batchPool = sync.Pool{
	New: func() any {
		s := make([]window.Window, BatchSize)
		return &s
	},
}

// PipelineBytes reports the fixed per-stream buffer bytes a join stream
// over op owns: one BatchSize window transfer buffer from the batch pool
// plus, on the negating operators, one input buffer each for LAWAU and
// LAWAN (two pipelines for FULL, which runs a mirror phase), plus the
// batched probability tail's tuple/lineage/probability arenas. The
// buffers are checked out or allocated lazily, but budget-wise the query
// owns them for its lifetime, so a per-query memory gauge charges this
// amount at stream construction.
func PipelineBytes(op tp.Op) int64 {
	stages := 1
	switch op {
	case tp.OpAnti, tp.OpLeft, tp.OpRight:
		stages = 3
	case tp.OpFull:
		stages = 5
	}
	windows := int64(stages) * BatchSize * int64(unsafe.Sizeof(window.Window{}))
	probTail := int64(BatchSize) * int64(unsafe.Sizeof(tp.Tuple{})+
		unsafe.Sizeof((*lineage.Expr)(nil))+unsafe.Sizeof(float64(0)))
	return windows + probTail
}

func getBatchBuf() *[]window.Window { return batchPool.Get().(*[]window.Window) }

func putBatchBuf(b *[]window.Window) {
	clear(*b) // drop fact/lineage references so the pool does not pin them
	batchPool.Put(b)
}

// NextBatch fills buf from it, using the batched fast path when the
// iterator provides one and falling back to scalar Next calls otherwise.
func NextBatch(it Iterator, buf []window.Window) int {
	if b, ok := it.(BatchIterator); ok {
		return b.NextBatch(buf)
	}
	n := 0
	for n < len(buf) {
		w, ok := it.Next()
		if !ok {
			break
		}
		buf[n] = w
		n++
	}
	return n
}

// Drain materializes the remainder of an iterator into a slice, one scalar
// Next call per window (the reference path).
func Drain(it Iterator) []window.Window {
	var out []window.Window
	for {
		w, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, w)
	}
}

// DrainBatched materializes the remainder of an iterator through the
// batched transport.
func DrainBatched(it Iterator) []window.Window {
	buf := getBatchBuf()
	defer putBatchBuf(buf)
	var out []window.Window
	for {
		n := NextBatch(it, *buf)
		if n == 0 {
			return out
		}
		out = append(out, (*buf)[:n]...)
	}
}

// Count consumes the iterator and returns the number of windows; used by
// benchmarks to force full evaluation without retaining memory. It pulls
// through the batched transport when available.
func Count(it Iterator) int {
	if b, ok := it.(BatchIterator); ok {
		buf := getBatchBuf()
		defer putBatchBuf(buf)
		n := 0
		for {
			c := b.NextBatch(*buf)
			if c == 0 {
				return n
			}
			n += c
		}
	}
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// SliceIterator replays a materialized window slice.
type SliceIterator struct {
	ws []window.Window
	i  int
}

// NewSliceIterator returns an iterator over ws.
func NewSliceIterator(ws []window.Window) *SliceIterator {
	return &SliceIterator{ws: ws}
}

// Next implements Iterator.
func (s *SliceIterator) Next() (window.Window, bool) {
	if s.i >= len(s.ws) {
		return window.Window{}, false
	}
	w := s.ws[s.i]
	s.i++
	return w, true
}

// NextBatch implements BatchIterator.
func (s *SliceIterator) NextBatch(buf []window.Window) int {
	n := copy(buf, s.ws[s.i:])
	s.i += n
	return n
}

// queue is a simple FIFO used by operators that may emit several windows
// per input window.
type queue struct {
	buf  []window.Window
	head int
}

func (q *queue) push(w window.Window) { q.buf = append(q.buf, w) }

func (q *queue) pop() (window.Window, bool) {
	if q.head >= len(q.buf) {
		return window.Window{}, false
	}
	w := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		// Reuse storage once fully drained to keep the queue allocation
		// bounded by the burst size, not the stream length.
		q.buf = q.buf[:0]
		q.head = 0
	}
	return w, true
}

// popInto moves up to len(buf) queued windows into buf and returns how
// many it moved — the batched counterpart of pop.
func (q *queue) popInto(buf []window.Window) int {
	n := copy(buf, q.buf[q.head:])
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return n
}

func (q *queue) empty() bool { return q.head >= len(q.buf) }
