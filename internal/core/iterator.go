// Package core implements the paper's contribution: the pipelined
// computation of generalized lineage-aware temporal windows and, on top of
// them, the temporal-probabilistic joins with negation (anti, left outer,
// right outer, full outer) plus the inner join.
//
// The computation is structured exactly as in Section III of the paper:
//
//	OverlapJoin   — the conventional outer join r ⟕_{θo∧θ} s, producing
//	                the overlapping windows (enhanced with the original
//	                interval of the r tuple) and the unmatched windows of
//	                r tuples that match no tuple of s at all;
//	LAWAU         — extends that stream with the remaining unmatched
//	                windows (gaps inside partially covered r tuples);
//	LAWAN         — extends the WUO stream with the negating windows,
//	                using a priority queue over the end points of the
//	                active s tuples.
//
// All three are pull-based iterators: windows stream through without
// materializing intermediate sets and without replicating input tuples,
// which is what allows the approach to run inside a pipelined DBMS
// executor (internal/engine).
package core

import "tpjoin/internal/window"

// Iterator is a pull-based stream of windows. Next returns the next window
// and true, or a zero window and false when the stream is exhausted.
type Iterator interface {
	Next() (window.Window, bool)
}

// Drain materializes the remainder of an iterator into a slice.
func Drain(it Iterator) []window.Window {
	var out []window.Window
	for {
		w, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, w)
	}
}

// Count consumes the iterator and returns the number of windows; used by
// benchmarks to force full evaluation without retaining memory.
func Count(it Iterator) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// SliceIterator replays a materialized window slice.
type SliceIterator struct {
	ws []window.Window
	i  int
}

// NewSliceIterator returns an iterator over ws.
func NewSliceIterator(ws []window.Window) *SliceIterator {
	return &SliceIterator{ws: ws}
}

// Next implements Iterator.
func (s *SliceIterator) Next() (window.Window, bool) {
	if s.i >= len(s.ws) {
		return window.Window{}, false
	}
	w := s.ws[s.i]
	s.i++
	return w, true
}

// queue is a simple FIFO used by operators that may emit several windows
// per input window.
type queue struct {
	buf  []window.Window
	head int
}

func (q *queue) push(w window.Window) { q.buf = append(q.buf, w) }

func (q *queue) pop() (window.Window, bool) {
	if q.head >= len(q.buf) {
		return window.Window{}, false
	}
	w := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		// Reuse storage once fully drained to keep the queue allocation
		// bounded by the burst size, not the stream length.
		q.buf = q.buf[:0]
		q.head = 0
	}
	return w, true
}

func (q *queue) empty() bool { return q.head >= len(q.buf) }
