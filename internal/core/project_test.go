package core

import (
	"math"
	"math/rand"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

func TestProjectLineageMergesDuplicates(t *testing.T) {
	// Two hotels in ZAK: projecting availability to the location merges
	// them with OR lineage on the overlap.
	b := paperB()
	p := ProjectLineage(b, []int{1}, []string{"Loc"})
	pm, err := tp.Expand(p)
	if err != nil {
		t.Fatalf("projection invalid: %v", err)
	}
	zak := tp.Strings("ZAK").Key()
	// At t=5 both hotel1 (0.7) and hotel2 (0.6) offer ZAK:
	// Pr(b2 ∨ b3) = 1 − 0.4·0.3 = 0.88.
	row, ok := pm[zak][5]
	if !ok {
		t.Fatalf("missing ZAK at 5")
	}
	if math.Abs(row.Prob-0.88) > 1e-9 {
		t.Errorf("merged probability = %g, want 0.88", row.Prob)
	}
	// At t=4 only hotel1: 0.7.
	if got := pm[zak][4].Prob; math.Abs(got-0.7) > 1e-9 {
		t.Errorf("t=4 prob = %g, want 0.7", got)
	}
	// SOR untouched.
	sor := tp.Strings("SOR").Key()
	if got := pm[sor][2].Prob; math.Abs(got-0.9) > 1e-9 {
		t.Errorf("SOR prob = %g", got)
	}
}

func TestProjectLineageCoalesces(t *testing.T) {
	// Adjacent chunks with the same surviving lineage merge back into
	// maximal intervals.
	r := tp.NewRelation("r", "K", "Sub")
	r.Append(tp.Strings("x", "p1"), interval.New(0, 5), 0.5)
	r.Append(tp.Strings("x", "p2"), interval.New(5, 9), 0.5) // different sub-fact, adjacent
	p := ProjectLineage(r, []int{0}, []string{"K"})
	if p.Len() != 2 {
		// r1 over [0,5) and r2 over [5,9) have different lineages — they
		// must NOT merge (they are different events).
		t.Fatalf("projection has %d tuples, want 2: %v", p.Len(), p)
	}

	// Same fact and same tuple split artificially: chunks share lineage →
	// they must re-coalesce into one.
	s := tp.NewRelation("s", "K", "Sub")
	v := s.Append(tp.Strings("y", "q"), interval.New(0, 4), 0.5)
	_ = v
	s2 := ProjectLineage(s, []int{0}, []string{"K"})
	if s2.Len() != 1 || !s2.Tuples[0].T.Equal(interval.New(0, 4)) {
		t.Errorf("single-tuple projection wrong: %v", s2)
	}
}

func TestProjectLineagePointwise(t *testing.T) {
	// Oracle: at each time point, the projected fact's probability is
	// Pr(∨ lineages of valid tuples mapping to it).
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 80; trial++ {
		r := tp.NewRelation("r", "K", "Sub")
		type span struct{ s, e interval.Time }
		used := make(map[string][]span)
		for i := 0; i < rng.Intn(8); i++ {
			k := []string{"x", "y"}[rng.Intn(2)]
			sub := []string{"u", "v", "w"}[rng.Intn(3)]
			st := interval.Time(rng.Intn(12))
			e := st + 1 + interval.Time(rng.Intn(5))
			key := k + "|" + sub
			ok := true
			for _, u := range used[key] {
				if st < u.e && u.s < e {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[key] = append(used[key], span{st, e})
			r.Append(tp.Strings(k, sub), interval.New(st, e), 0.1+0.8*rng.Float64())
		}
		p := ProjectLineage(r, []int{0}, []string{"K"})
		pm, err := tp.Expand(p)
		if err != nil {
			t.Fatalf("trial %d: %v\n%v", trial, err, p)
		}
		ev := prob.NewEvaluator(r.Probs)
		for _, k := range []string{"x", "y"} {
			fk := tp.Strings(k).Key()
			for tt := interval.Time(0); tt < 20; tt++ {
				var parts []float64
				q := 1.0
				for _, tu := range r.Tuples {
					if tu.Fact[0].AsString() == k && tu.T.Contains(tt) {
						pr := ev.Prob(tu.Lineage)
						parts = append(parts, pr)
						q *= 1 - pr
					}
				}
				row, ok := pm[fk][tt]
				if len(parts) == 0 {
					if ok {
						t.Fatalf("trial %d: spurious row at (%s,%d)", trial, k, tt)
					}
					continue
				}
				if !ok {
					t.Fatalf("trial %d: missing row at (%s,%d)", trial, k, tt)
				}
				want := 1 - q
				if math.Abs(row.Prob-want) > 1e-9 {
					t.Fatalf("trial %d: (%s,%d): got %g want %g", trial, k, tt, row.Prob, want)
				}
			}
		}
		// Maximality: no two adjacent output tuples of the same fact with
		// equal lineage.
		for i, a := range p.Tuples {
			for j, b2 := range p.Tuples {
				if i != j && a.Fact.Equal(b2.Fact) && a.T.End == b2.T.Start && a.Lineage.Equal(b2.Lineage) {
					t.Fatalf("trial %d: non-coalesced output: %v then %v", trial, a, b2)
				}
			}
		}
	}
}

func TestProjectLineagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ProjectLineage(paperA(), []int{0, 1}, []string{"only-one"})
}
