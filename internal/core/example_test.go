package core_test

import (
	"fmt"

	"tpjoin/internal/core"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// The paper's running example: who finds accommodation at their preferred
// location, and with which probability — at each time point.
func ExampleLeftOuterJoin() {
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	a.Append(tp.Strings("Jim", "WEN"), interval.New(7, 10), 0.8)

	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)

	q := core.LeftOuterJoin(a, b, tp.Equi(1, 1)) // θ: a.Loc = b.Loc
	for _, t := range q.Tuples {
		fmt.Println(t)
	}
	// Output:
	// ('Ann, ZAK, -, -', a1, [2,4), 0.7)
	// ('Ann, ZAK, hotel1, ZAK', a1 ∧ b3, [4,6), 0.49)
	// ('Ann, ZAK, -, -', a1 ∧ ¬b3, [4,5), 0.21)
	// ('Ann, ZAK, hotel2, ZAK', a1 ∧ b2, [5,8), 0.42)
	// ('Ann, ZAK, -, -', a1 ∧ ¬(b3 ∨ b2), [5,6), 0.084)
	// ('Ann, ZAK, -, -', a1 ∧ ¬b2, [6,8), 0.28)
	// ('Jim, WEN, -, -', a2, [7,10), 0.8)
}

// The anti join keeps, per time point, the probability that a positive
// tuple matches nothing on the negative side.
func ExampleAntiJoin() {
	r := tp.NewRelation("state", "Machine")
	r.Append(tp.Strings("m1"), interval.New(0, 10), 0.9)

	s := tp.NewRelation("service", "Machine")
	s.Append(tp.Strings("m1"), interval.New(4, 7), 0.5)

	for _, t := range core.AntiJoin(r, s, tp.Equi(0, 0)).Tuples {
		fmt.Println(t)
	}
	// Output:
	// ('m1', state1, [0,4), 0.9)
	// ('m1', state1, [7,10), 0.9)
	// ('m1', state1 ∧ ¬service1, [4,7), 0.45)
}

// Windows stream through the pipeline without materialization; the three
// classes carry the facts and lineages needed to form output tuples.
func ExampleLAWAN() {
	a := tp.NewRelation("a", "K")
	a.Append(tp.Strings("x"), interval.New(0, 10), 0.5)
	b := tp.NewRelation("b", "K")
	b.Append(tp.Strings("x"), interval.New(2, 5), 0.4)
	b.Append(tp.Strings("x"), interval.New(4, 8), 0.6)

	it := core.LAWAN(core.LAWAU(core.OverlapJoin(a, b, tp.Equi(0, 0))))
	for {
		w, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("%-11s %s %s\n", w.Class(), w.T, w.Ls)
	}
	// Output:
	// unmatched   [0,2) null
	// overlapping [2,5) b1
	// negating    [2,4) b1
	// overlapping [4,8) b2
	// unmatched   [8,10) null
	// negating    [4,5) b1 ∨ b2
	// negating    [5,8) b2
}
