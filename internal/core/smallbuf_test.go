package core

import (
	"testing"

	"tpjoin/internal/dataset"
	"tpjoin/internal/window"
)

// Tiny transfer buffers force every overflow/ordering corner of the
// direct-emit batched path (bursts larger than the buffer, queue
// spill-then-drain, group flushes at buffer boundaries).
func TestNextBatchTinyBuffers(t *testing.T) {
	r, s := dataset.Meteo(600, 5)
	theta := dataset.MeteoTheta()
	want := Drain(LAWAN(LAWAU(OverlapJoin(r, s, theta))))
	for _, size := range []int{1, 2, 3, 7} {
		it := LAWAN(LAWAU(OverlapJoin(r, s, theta)))
		buf := make([]window.Window, size)
		var got []window.Window
		for {
			n := NextBatch(it, buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: %d windows, want %d", size, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("size %d: window %d differs", size, i)
			}
		}
	}
}
