package core

import (
	"math/rand"
	"testing"

	"tpjoin/internal/dataset"
	"tpjoin/internal/tp"
)

func TestParallelJoinMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	eq := tp.Equi(0, 0)
	ops := []tp.Op{tp.OpInner, tp.OpAnti, tp.OpLeft, tp.OpRight, tp.OpFull}
	for trial := 0; trial < 60; trial++ {
		r := randRelation(rng, "r")
		s := randRelation(rng, "s")
		op := ops[trial%len(ops)]
		workers := 1 + trial%4

		serial := Join(op, r, s, eq)
		par := ParallelJoin(op, r, s, eq, workers)

		sPM, err := tp.Expand(serial)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pPM, err := tp.Expand(par)
		if err != nil {
			t.Fatalf("trial %d: parallel result invalid: %v", trial, err)
		}
		if err := sPM.EqualProb(pPM, 1e-12); err != nil {
			t.Fatalf("trial %d %v workers=%d: parallel differs: %v", trial, op, workers, err)
		}
		if serial.Len() != par.Len() {
			t.Fatalf("trial %d: tuple counts differ: %d vs %d", trial, serial.Len(), par.Len())
		}
	}
}

func TestParallelJoinDeterministic(t *testing.T) {
	r, s := dataset.Webkit(2000, 9)
	eq := dataset.WebkitTheta()
	a := ParallelJoin(tp.OpLeft, r, s, eq, 4)
	b := ParallelJoin(tp.OpLeft, r, s, eq, 4)
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic sizes")
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Fact.Equal(b.Tuples[i].Fact) || !a.Tuples[i].T.Equal(b.Tuples[i].T) {
			t.Fatalf("tuple %d order differs between runs", i)
		}
	}
}

func TestParallelJoinPaperExample(t *testing.T) {
	a, b := paperA(), paperB()
	q := ParallelJoin(tp.OpLeft, a, b, theta, 3)
	if q.Len() != 7 {
		t.Fatalf("parallel Fig. 1b has %d tuples, want 7", q.Len())
	}
	pm, err := tp.Expand(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.EqualProb(tp.RefJoin(tp.OpLeft, a, b, theta), 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestParallelJoinDefaultWorkers(t *testing.T) {
	a, b := paperA(), paperB()
	q := ParallelJoin(tp.OpAnti, a, b, theta, 0) // 0 → GOMAXPROCS
	if q.Len() != 5 {
		t.Fatalf("default-workers anti join has %d tuples, want 5", q.Len())
	}
}

// The worker-scaling pair below shows near-identical numbers on a
// single-core host (like the reference CI box); on multi-core machines
// the 4-worker variant scales with the partition parallelism.
func BenchmarkParallelJoin1Worker(b *testing.B) {
	r, s := dataset.Webkit(40000, 1)
	eq := dataset.WebkitTheta()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelJoin(tp.OpLeft, r, s, eq, 1)
	}
}

func BenchmarkParallelJoin4Workers(b *testing.B) {
	r, s := dataset.Webkit(40000, 1)
	eq := dataset.WebkitTheta()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelJoin(tp.OpLeft, r, s, eq, 4)
	}
}
