package core

import (
	"fmt"
	"testing"

	"tpjoin/internal/dataset"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// Allocation-regression pins: the interned-key probe path and the batched
// sweeps must not allocate per window. The ceilings below are generous
// multiples of the measured values (≤ 30 small allocations for pipelines
// producing tens of thousands of windows), so they tolerate runtime
// changes while still failing loudly if a per-probe or per-window
// allocation (like the former strings.Builder equi keys, one per hash
// probe) ever comes back.

// TestKeyHashZeroAlloc pins the hashed key computations themselves: the
// per-probe cost of the interned-key path must be allocation-free.
func TestKeyHashZeroAlloc(t *testing.T) {
	f := tp.Strings("some-file-name.cpp", "rev-source")
	eq := tp.Equi(0, 0)
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := eq.RKeyHash(f); !ok {
			t.Fatal("unexpected NULL key")
		}
	}); n != 0 {
		t.Errorf("RKeyHash allocates %v per probe, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = f.KeyHash()
	}); n != 0 {
		t.Errorf("Fact.KeyHash allocates %v per call, want 0", n)
	}
	g := tp.Strings("some-file-name.cpp", "rev-other")
	if n := testing.AllocsPerRun(100, func() {
		_ = eq.KeyMatch(f, g)
	}); n != 0 {
		t.Errorf("KeyMatch allocates %v per call, want 0", n)
	}
}

// TestProbeAllocsPinned pins the whole interned-key probe path: building
// the dictionary and probing thousands of r tuples must cost a small
// constant number of allocations, independent of the probe count.
func TestProbeAllocsPinned(t *testing.T) {
	r, s := dataset.Webkit(4000, 11)
	theta := dataset.WebkitTheta()
	windows := Count(OverlapJoin(r, s, theta))
	if windows < 2000 {
		t.Fatalf("workload too small to be meaningful: %d windows", windows)
	}
	const ceiling = 30 // measured ~10: table build + batch bookkeeping
	if n := testing.AllocsPerRun(5, func() {
		Count(OverlapJoin(r, s, theta))
	}); n > ceiling {
		t.Errorf("overlap-join probe path allocates %v per run for %d windows, want ≤ %d",
			n, windows, ceiling)
	}
}

// TestBatchedLAWANAllocsPinned pins the batched LAWAN sweep (the full
// OverlapJoin → LAWAU → LAWAN pipeline): allocations must stay a small
// constant, not O(windows). Negating windows inherently allocate their
// λs disjunction, so the input here is built gap-free per chain (one
// active s tuple at a time keeps lineage.Or at its single-operand
// fast path, which does not allocate).
func TestBatchedLAWANAllocsPinned(t *testing.T) {
	mk := func(name string, seed int64) *tp.Relation {
		rel := tp.NewRelation(name, "Key", "Group")
		for k := 0; k < 40; k++ {
			start := interval.Time(seed)
			for c := 0; c < 25; c++ {
				iv := interval.New(start, start+10)
				rel.Append(tp.Strings(fmt.Sprintf("k%02d", k), name), iv, 0.5)
				start += 10 // adjacent: no gaps, single coverage
			}
		}
		return rel
	}
	r, s := mk("r", 1), mk("s", 3)
	theta := tp.Equi(0, 0)
	windows := Count(LAWAN(LAWAU(OverlapJoin(r, s, theta))))
	if windows < 1000 {
		t.Fatalf("workload too small to be meaningful: %d windows", windows)
	}
	const ceiling = 40 // measured ~12: table build + heap/queue warmup
	if n := testing.AllocsPerRun(5, func() {
		Count(LAWAN(LAWAU(OverlapJoin(r, s, theta))))
	}); n > ceiling {
		t.Errorf("batched LAWAN sweep allocates %v per run for %d windows, want ≤ %d",
			n, windows, ceiling)
	}
}
