package core

import (
	"sort"

	"tpjoin/internal/index"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// OverlapJoinIndexed is OverlapJoin with an interval-tree access path on
// the probe side: one centered interval tree per join-key bucket instead
// of a start-sorted scan. The paper runs without indexes; this variant
// exists for the access-path ablation (BenchmarkAblation_OverlapJoin*).
// It produces exactly the same window stream, including the per-group
// ordering by starting point.
func OverlapJoinIndexed(r, s *tp.Relation, eq tp.EquiTheta) Iterator {
	j := &indexedOverlapJoin{r: r, s: s, eq: eq, trees: make(map[string]*index.Tree)}
	buckets := make(map[string][]index.Entry)
	for i := range s.Tuples {
		k, ok := eq.SKey(s.Tuples[i].Fact)
		if !ok {
			continue
		}
		buckets[k] = append(buckets[k], index.Entry{T: s.Tuples[i].T, ID: i})
	}
	for k, es := range buckets {
		j.trees[k] = index.Build(es)
	}
	return j
}

type indexedOverlapJoin struct {
	r     *tp.Relation
	s     *tp.Relation
	eq    tp.EquiTheta
	trees map[string]*index.Tree
	ri    int
	out   queue
	hits  []int // reusable scratch
}

func (j *indexedOverlapJoin) Next() (window.Window, bool) {
	for {
		if w, ok := j.out.pop(); ok {
			return w, true
		}
		if j.ri >= len(j.r.Tuples) {
			return window.Window{}, false
		}
		rt := &j.r.Tuples[j.ri]
		j.hits = j.hits[:0]
		if key, ok := j.eq.RKey(rt.Fact); ok {
			if tree := j.trees[key]; tree != nil {
				tree.Overlapping(rt.T, func(e index.Entry) bool {
					j.hits = append(j.hits, e.ID)
					return true
				})
			}
		}
		if len(j.hits) == 0 {
			j.out.push(window.Window{
				Fr: rt.Fact, T: rt.T, Lr: rt.Lineage,
				RID: j.ri, RT: rt.T,
			})
		} else {
			// The tree returns matches in tree order; restore the
			// start-point order LAWAU requires.
			sort.Slice(j.hits, func(a, b int) bool {
				return j.s.Tuples[j.hits[a]].T.Less(j.s.Tuples[j.hits[b]].T)
			})
			for _, si := range j.hits {
				st := &j.s.Tuples[si]
				j.out.push(window.Window{
					Fr: rt.Fact, Fs: st.Fact,
					T:  rt.T.Intersect(st.T),
					Lr: rt.Lineage, Ls: st.Lineage,
					RID: j.ri, RT: rt.T,
				})
			}
		}
		j.ri++
	}
}
