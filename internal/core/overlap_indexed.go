package core

import (
	"sort"

	"tpjoin/internal/index"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// OverlapJoinIndexed is OverlapJoin with an interval-tree access path on
// the probe side: one centered interval tree per join-key bucket instead
// of a start-sorted scan. The paper runs without indexes; this variant
// exists for the access-path ablation (BenchmarkAblation_OverlapJoin*).
// It produces exactly the same window stream, including the per-group
// ordering by starting point.
func OverlapJoinIndexed(r, s *tp.Relation, eq tp.EquiTheta) Iterator {
	j := &indexedOverlapJoin{r: r, s: s, eq: eq, keys: tp.NewKeyGroups[index.Entry]()}
	for i := range s.Tuples {
		h, ok := eq.SKeyHash(s.Tuples[i].Fact)
		if !ok {
			continue
		}
		g := j.keys.Group(h, s.Tuples[i].Fact, eq.SKeyEqual)
		g.Vals = append(g.Vals, index.Entry{T: s.Tuples[i].T, ID: i})
	}
	groups := j.keys.Groups()
	j.trees = make([]*index.Tree, len(groups))
	for gi := range groups {
		j.trees[gi] = index.Build(groups[gi].Vals)
	}
	return j
}

type indexedOverlapJoin struct {
	r     *tp.Relation
	s     *tp.Relation
	eq    tp.EquiTheta
	keys  *tp.KeyGroups[index.Entry]
	trees []*index.Tree // one per key group, same indexing
	ri    int
	out   queue
	hits  []int // reusable scratch
}

// step processes the next r tuple; see hashOverlapJoin.step.
func (j *indexedOverlapJoin) step() bool {
	if j.ri >= len(j.r.Tuples) {
		return false
	}
	rt := &j.r.Tuples[j.ri]
	j.hits = j.hits[:0]
	if h, ok := j.eq.RKeyHash(rt.Fact); ok {
		gi := j.keys.Find(h, rt.Fact, func(group, probe tp.Fact) bool {
			return j.eq.KeyMatch(probe, group)
		})
		if gi >= 0 {
			j.trees[gi].Overlapping(rt.T, func(e index.Entry) bool {
				j.hits = append(j.hits, e.ID)
				return true
			})
		}
	}
	if len(j.hits) == 0 {
		j.out.push(window.Window{
			Fr: rt.Fact, T: rt.T, Lr: rt.Lineage,
			RID: j.ri, RT: rt.T,
		})
	} else {
		// The tree returns matches in tree order; restore the
		// start-point order LAWAU requires.
		sort.Slice(j.hits, func(a, b int) bool {
			return j.s.Tuples[j.hits[a]].T.Less(j.s.Tuples[j.hits[b]].T)
		})
		for _, si := range j.hits {
			st := &j.s.Tuples[si]
			j.out.push(window.Window{
				Fr: rt.Fact, Fs: st.Fact,
				T:  rt.T.Intersect(st.T),
				Lr: rt.Lineage, Ls: st.Lineage,
				RID: j.ri, RT: rt.T,
			})
		}
	}
	j.ri++
	return true
}

func (j *indexedOverlapJoin) Next() (window.Window, bool) {
	for {
		if w, ok := j.out.pop(); ok {
			return w, true
		}
		if !j.step() {
			return window.Window{}, false
		}
	}
}

// NextBatch implements BatchIterator.
func (j *indexedOverlapJoin) NextBatch(buf []window.Window) int {
	n := j.out.popInto(buf)
	for n < len(buf) {
		if !j.step() {
			return n
		}
		n += j.out.popInto(buf[n:])
	}
	return n
}
