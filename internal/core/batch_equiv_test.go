package core

import (
	"testing"

	"tpjoin/internal/align"
	"tpjoin/internal/dataset"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// These tests pin the batched window transport to the scalar reference
// path: every join variant must produce byte-identical results whether
// windows hop the pipeline one Next call or one NextBatch at a time, on
// both evaluation workloads.

func equivInputs(t *testing.T) []struct {
	name  string
	r, s  *tp.Relation
	theta tp.EquiTheta
} {
	t.Helper()
	wr, ws := dataset.Webkit(3000, 7)
	mr, ms := dataset.Meteo(1200, 7)
	return []struct {
		name  string
		r, s  *tp.Relation
		theta tp.EquiTheta
	}{
		{"webkit", wr, ws, dataset.WebkitTheta()},
		{"meteo", mr, ms, dataset.MeteoTheta()},
	}
}

// renderTuples gives the byte-exact comparison key of a result.
func renderTuples(rel *tp.Relation) []string {
	out := make([]string, rel.Len())
	for i, tu := range rel.Tuples {
		out[i] = tu.String()
	}
	return out
}

func drainStream(it TupleIterator, attrs []string) *tp.Relation {
	out := &tp.Relation{Name: "drained", Attrs: attrs}
	for {
		tu, ok := it.Next()
		if !ok {
			return out
		}
		out.Tuples = append(out.Tuples, tu)
	}
}

var equivOps = []tp.Op{tp.OpInner, tp.OpLeft, tp.OpFull, tp.OpAnti}

// TestBatchScalarEquivalence: NJ — the batched JoinStream must be
// byte-identical to the scalar reference for every operator.
func TestBatchScalarEquivalence(t *testing.T) {
	for _, in := range equivInputs(t) {
		for _, op := range equivOps {
			batched, attrs := JoinStream(op, in.r, in.s, in.theta)
			scalar, _ := ScalarJoinStream(op, in.r, in.s, in.theta)
			got := renderTuples(drainStream(batched, attrs))
			want := renderTuples(drainStream(scalar, attrs))
			if len(got) != len(want) {
				t.Fatalf("%s %v: batched %d tuples, scalar %d", in.name, op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s %v: tuple %d differs:\n batched: %s\n scalar:  %s",
						in.name, op, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchScalarEquivalencePNJ: the partitioned-parallel executor must be
// byte-identical under both transports (same partition-major order).
func TestBatchScalarEquivalencePNJ(t *testing.T) {
	for _, in := range equivInputs(t) {
		for _, op := range equivOps {
			batched := parallelJoin(op, in.r, in.s, in.theta, 4, true)
			scalar := parallelJoin(op, in.r, in.s, in.theta, 4, false)
			got, want := renderTuples(batched), renderTuples(scalar)
			if len(got) != len(want) {
				t.Fatalf("%s %v: batched %d tuples, scalar %d", in.name, op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s %v: tuple %d differs:\n batched: %s\n scalar:  %s",
						in.name, op, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchScalarEquivalenceTA: the TA baseline has a single (blocking)
// code path; pin its run-to-run determinism so the three strategies stay
// comparable byte-for-byte across the equivalence suite.
func TestBatchScalarEquivalenceTA(t *testing.T) {
	for _, in := range equivInputs(t) {
		for _, op := range equivOps {
			a := renderTuples(align.Join(op, in.r, in.s, in.theta, align.Config{}))
			b := renderTuples(align.Join(op, in.r, in.s, in.theta, align.Config{}))
			if len(a) != len(b) {
				t.Fatalf("%s %v: TA nondeterministic sizes", in.name, op)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s %v: TA tuple %d differs between runs", in.name, op, i)
				}
			}
		}
	}
}

// TestWindowBatchEquivalence pins the window-level transport: draining
// OverlapJoin → LAWAU → LAWAN via NextBatch yields exactly the scalar
// stream, stage by stage.
func TestWindowBatchEquivalence(t *testing.T) {
	for _, in := range equivInputs(t) {
		pipelines := map[string]func() Iterator{
			"overlap": func() Iterator { return OverlapJoin(in.r, in.s, in.theta) },
			"wuo":     func() Iterator { return LAWAU(OverlapJoin(in.r, in.s, in.theta)) },
			"wuon":    func() Iterator { return LAWAN(LAWAU(OverlapJoin(in.r, in.s, in.theta))) },
		}
		for name, mk := range pipelines {
			scalar := Drain(mk())
			batched := DrainBatched(mk())
			if len(scalar) != len(batched) {
				t.Fatalf("%s/%s: scalar %d windows, batched %d", in.name, name, len(scalar), len(batched))
			}
			for i := range scalar {
				if !scalar[i].Equal(batched[i]) {
					t.Fatalf("%s/%s: window %d differs:\n scalar:  %v\n batched: %v",
						in.name, name, i, scalar[i], batched[i])
				}
			}
		}
	}
}

// TestMixedNextAndNextBatch interleaves scalar and batched pulls on one
// iterator; the combined stream must equal the scalar drain.
func TestMixedNextAndNextBatch(t *testing.T) {
	in := equivInputs(t)[0]
	want := Drain(LAWAN(LAWAU(OverlapJoin(in.r, in.s, in.theta))))

	it := LAWAN(LAWAU(OverlapJoin(in.r, in.s, in.theta)))
	var got []window.Window
	buf := make([]window.Window, 17) // deliberately not BatchSize
	scalarTurn := true
	for {
		if scalarTurn {
			w, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, w)
		} else {
			n := NextBatch(it, buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		scalarTurn = !scalarTurn
	}
	if len(got) != len(want) {
		t.Fatalf("mixed drain: %d windows, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("mixed drain: window %d differs", i)
		}
	}
}

// TestRelCacheInvalidatesOnSort pins the derived-structure cache's
// staleness detection: re-sorting a relation through tp.Relation's
// methods (which bump its version) must rebuild the cached key
// dictionary instead of serving stale tuple indexes.
func TestRelCacheInvalidatesOnSort(t *testing.T) {
	r, s := dataset.Webkit(800, 13)
	theta := dataset.WebkitTheta()
	before := Drain(LAWAU(OverlapJoin(r, s, theta))) // populates the cache for s

	s.SortByStart() // same length, new tuple order: version bump must invalidate
	after := Drain(LAWAU(OverlapJoin(r, s, theta)))

	// The window multiset is order-insensitive except for RID/RT, which
	// track r (untouched); s's reordering must not change the result set.
	if len(before) != len(after) {
		t.Fatalf("window count changed after build-side re-sort: %d vs %d", len(before), len(after))
	}
	window.Sort(before)
	window.Sort(after)
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatalf("window %d differs after build-side re-sort (stale cache?)", i)
		}
	}
}
