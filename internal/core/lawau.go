package core

import (
	"tpjoin/internal/interval"
	"tpjoin/internal/window"
)

// LAWAU (Lineage-Aware Window Advancer, Unmatched) extends the output of
// the overlap join with the remaining unmatched windows: the maximal
// subintervals of each r tuple's validity interval during which no tuple
// of s is valid or satisfies θ (paper, Section III-B, Fig. 3).
//
// The input stream must be grouped by r tuple (Window.RID) with each
// group's overlapping windows sorted by starting point — exactly the order
// OverlapJoin produces. LAWAU performs a single sweep over each group:
// it copies every input window to the output and, tracking the maximal
// covered end point, emits an unmatched window for every gap between
// consecutive overlapping windows as well as for the uncovered head and
// tail of the tuple's interval. Windows stream through with O(1) state per
// group; no tuple is replicated.
type lawau struct {
	in  Iterator
	out queue

	// Batched-input state: when the consumer pulls through NextBatch, the
	// sweep pulls its own input in pooled batches too, so windows hop the
	// whole pipeline BatchSize at a time. The scalar Next path only drains
	// leftovers from the buffer and otherwise pulls one window at a time.
	inBuf      *[]window.Window
	inPos, inN int

	inGroup bool
	rid     int
	rt      interval.Interval
	frLr    window.Window // carries Fr/Lr of the current group for gap windows
	maxEnd  interval.Time
	sawBase bool // group consists of a base unmatched window (no matches at all)
	done    bool
}

// LAWAU returns the unmatched-window sweep over in. See the package
// documentation for the required input order.
func LAWAU(in Iterator) Iterator { return &lawau{in: in} }

// nextInput returns the next input window, consuming any batched leftovers
// before falling back to a scalar pull.
func (l *lawau) nextInput() (window.Window, bool) {
	if l.inPos < l.inN {
		w := (*l.inBuf)[l.inPos]
		l.inPos++
		return w, true
	}
	return l.in.Next()
}

func (l *lawau) releaseBuf() {
	if l.inBuf != nil {
		putBatchBuf(l.inBuf)
		l.inBuf = nil
	}
	l.inPos, l.inN = 0, 0
}

// consume folds one input window into the sweep state, pushing output
// windows onto l.out.
func (l *lawau) consume(w *window.Window) {
	l.consumeInto(w, nil, 0)
}

// consumeInto is consume with direct emission: output windows are written
// to buf[n:] while space remains (and the queue is empty, preserving
// order) and overflow onto the queue. The scalar path passes a nil buf,
// so every window takes the queue. Returns the new fill count.
func (l *lawau) consumeInto(w *window.Window, buf []window.Window, n int) int {
	if !l.inGroup || w.RID != l.rid {
		n = l.flushInto(buf, n)
		l.startGroup(w)
	}
	if w.Class() == window.Unmatched {
		// Base unmatched window from the overlap join: the r tuple has no
		// match at all; its window already spans the whole interval.
		l.sawBase = true
		return l.emitInto(w, buf, n)
	}
	// Case analysis of Fig. 3: a gap exists iff the next overlapping
	// window starts after the covered prefix ends.
	if w.T.Start > l.maxEnd {
		g := l.gap(l.maxEnd, w.T.Start)
		n = l.emitInto(&g, buf, n)
	}
	n = l.emitInto(w, buf, n)
	if w.T.End > l.maxEnd {
		l.maxEnd = w.T.End
	}
	return n
}

func (l *lawau) emitInto(w *window.Window, buf []window.Window, n int) int {
	if n < len(buf) && l.out.empty() {
		buf[n] = *w
		return n + 1
	}
	l.out.push(*w)
	return n
}

func (l *lawau) Next() (window.Window, bool) {
	for {
		if w, ok := l.out.pop(); ok {
			return w, true
		}
		if l.done {
			return window.Window{}, false
		}
		w, ok := l.nextInput()
		if !ok {
			l.flush()
			l.done = true
			l.releaseBuf()
			continue
		}
		l.consume(&w)
	}
}

// NextBatch implements BatchIterator: input windows are pulled in pooled
// batches and swept a batch at a time.
func (l *lawau) NextBatch(buf []window.Window) int {
	n := l.out.popInto(buf)
	for n < len(buf) {
		if l.done {
			return n
		}
		if l.inPos == l.inN {
			if l.inBuf == nil {
				l.inBuf = getBatchBuf()
			}
			l.inN = NextBatch(l.in, *l.inBuf)
			l.inPos = 0
			if l.inN == 0 {
				l.flush()
				l.done = true
				l.releaseBuf()
				return n + l.out.popInto(buf[n:])
			}
		}
		for l.inPos < l.inN {
			n = l.consumeInto(&(*l.inBuf)[l.inPos], buf, n)
			l.inPos++
		}
		n += l.out.popInto(buf[n:])
	}
	return n
}

func (l *lawau) startGroup(w *window.Window) {
	l.inGroup = true
	l.rid = w.RID
	l.rt = w.RT
	l.frLr = *w
	l.maxEnd = w.RT.Start
	l.sawBase = false
}

// flush emits the tail gap of the group being closed, if any.
func (l *lawau) flush() {
	l.flushInto(nil, 0)
}

func (l *lawau) flushInto(buf []window.Window, n int) int {
	if !l.inGroup || l.sawBase {
		return n
	}
	if l.maxEnd < l.rt.End {
		g := l.gap(l.maxEnd, l.rt.End)
		n = l.emitInto(&g, buf, n)
	}
	return n
}

func (l *lawau) gap(start, end interval.Time) window.Window {
	return window.Window{
		Fr: l.frLr.Fr, T: interval.Interval{Start: start, End: end},
		Lr: l.frLr.Lr, RID: l.rid, RT: l.rt,
	}
}
