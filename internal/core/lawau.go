package core

import (
	"tpjoin/internal/interval"
	"tpjoin/internal/window"
)

// LAWAU (Lineage-Aware Window Advancer, Unmatched) extends the output of
// the overlap join with the remaining unmatched windows: the maximal
// subintervals of each r tuple's validity interval during which no tuple
// of s is valid or satisfies θ (paper, Section III-B, Fig. 3).
//
// The input stream must be grouped by r tuple (Window.RID) with each
// group's overlapping windows sorted by starting point — exactly the order
// OverlapJoin produces. LAWAU performs a single sweep over each group:
// it copies every input window to the output and, tracking the maximal
// covered end point, emits an unmatched window for every gap between
// consecutive overlapping windows as well as for the uncovered head and
// tail of the tuple's interval. Windows stream through with O(1) state per
// group; no tuple is replicated.
type lawau struct {
	in  Iterator
	out queue

	inGroup bool
	rid     int
	rt      interval.Interval
	frLr    window.Window // carries Fr/Lr of the current group for gap windows
	maxEnd  interval.Time
	sawBase bool // group consists of a base unmatched window (no matches at all)
	done    bool
}

// LAWAU returns the unmatched-window sweep over in. See the package
// documentation for the required input order.
func LAWAU(in Iterator) Iterator { return &lawau{in: in} }

func (l *lawau) Next() (window.Window, bool) {
	for {
		if w, ok := l.out.pop(); ok {
			return w, true
		}
		if l.done {
			return window.Window{}, false
		}
		w, ok := l.in.Next()
		if !ok {
			l.flush()
			l.done = true
			continue
		}
		if !l.inGroup || w.RID != l.rid {
			l.flush()
			l.startGroup(w)
		}
		l.feed(w)
	}
}

func (l *lawau) startGroup(w window.Window) {
	l.inGroup = true
	l.rid = w.RID
	l.rt = w.RT
	l.frLr = w
	l.maxEnd = w.RT.Start
	l.sawBase = false
}

func (l *lawau) feed(w window.Window) {
	if w.Class() == window.Unmatched {
		// Base unmatched window from the overlap join: the r tuple has no
		// match at all; its window already spans the whole interval.
		l.sawBase = true
		l.out.push(w)
		return
	}
	// Case analysis of Fig. 3: a gap exists iff the next overlapping
	// window starts after the covered prefix ends.
	if w.T.Start > l.maxEnd {
		l.out.push(l.gap(l.maxEnd, w.T.Start))
	}
	l.out.push(w)
	if w.T.End > l.maxEnd {
		l.maxEnd = w.T.End
	}
}

// flush emits the tail gap of the group being closed, if any.
func (l *lawau) flush() {
	if !l.inGroup || l.sawBase {
		return
	}
	if l.maxEnd < l.rt.End {
		l.out.push(l.gap(l.maxEnd, l.rt.End))
	}
}

func (l *lawau) gap(start, end interval.Time) window.Window {
	return window.Window{
		Fr: l.frLr.Fr, T: interval.Interval{Start: start, End: end},
		Lr: l.frLr.Lr, RID: l.rid, RT: l.rt,
	}
}
