package core

import (
	"sort"

	"tpjoin/internal/interval"
	"tpjoin/internal/lineage"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// ProjectLineage computes the temporal-probabilistic projection of rel to
// the given fact columns *with duplicate elimination*: tuples that agree
// on the projected fact and are valid at the same time point merge, and
// the merged tuple is true when any of the originals is — its lineage is
// the disjunction of theirs. (Without lineages this is sequenced
// DISTINCT; with them it is the standard probabilistic-database
// projection, here combined with temporal splitting.)
//
// The implementation follows the same sweeping scheme as the negating
// windows: per projected fact, the validity intervals of the contributing
// tuples are split at every start/end point, and each elementary interval
// carries the disjunction of the lineages valid over it. Adjacent
// intervals whose disjunctions are structurally equal are re-coalesced,
// so maximal intervals come out (e.g. a projection that drops a column
// distinguishing two adjacent chunks yields one merged tuple).
func ProjectLineage(rel *tp.Relation, cols []int, names []string) *tp.Relation {
	if len(cols) != len(names) {
		panic("core: ProjectLineage arity mismatch")
	}
	out := &tp.Relation{
		Name:  rel.Name + "_proj",
		Attrs: append([]string(nil), names...),
		Probs: rel.Probs,
	}

	type entry struct {
		t   interval.Interval
		lam *lineage.Expr
	}
	// Group by hashed projected-fact key in first-seen order.
	byFact := tp.NewKeyGroups[entry]()
	for _, tu := range rel.Tuples {
		f := make(tp.Fact, len(cols))
		for i, c := range cols {
			f[i] = tu.Fact[c]
		}
		g := byFact.Group(f.KeyHash(), f, tp.Fact.KeyEqual)
		g.Vals = append(g.Vals, entry{t: tu.T, lam: tu.Lineage})
	}

	// Output probabilities are evaluated in BatchSize batches over one
	// shared memo: projection groups repeat the same disjunction shapes,
	// so distinct sub-lineages are evaluated once, not once per chunk.
	bev := prob.NewBatchEvaluator(rel.Probs)
	type outRow struct {
		fact tp.Fact
		lam  *lineage.Expr
		t    interval.Interval
	}
	pend := make([]outRow, 0, BatchSize)
	lams := make([]*lineage.Expr, BatchSize)
	ps := make([]float64, BatchSize)
	flush := func() {
		for i := range pend {
			lams[i] = pend[i].lam
		}
		bev.EvalBatch(lams[:len(pend)], ps)
		for i := range pend {
			out.AppendDerived(pend[i].fact, pend[i].lam, pend[i].t, ps[i])
		}
		pend = pend[:0]
	}
	list := byFact.Groups()
	for gi := range list {
		es := list[gi].Vals
		// Elementary intervals of the group's coverage.
		ivs := make([]interval.Interval, len(es))
		for i, e := range es {
			ivs[i] = e.t
		}
		elem := interval.Elementary(ivs)
		// Build one tuple per elementary interval, then coalesce runs with
		// equal lineage.
		type chunk struct {
			t   interval.Interval
			lam *lineage.Expr
		}
		chunks := make([]chunk, 0, len(elem))
		for _, el := range elem {
			var parts []*lineage.Expr
			for _, e := range es {
				if e.t.ContainsInterval(el) {
					parts = append(parts, e.lam)
				}
			}
			chunks = append(chunks, chunk{t: el, lam: lineage.Or(parts...)})
		}
		sort.SliceStable(chunks, func(i, j int) bool { return chunks[i].t.Less(chunks[j].t) })
		for i := 0; i < len(chunks); {
			j := i + 1
			cur := chunks[i]
			for j < len(chunks) && chunks[j].t.Start == cur.t.End && chunks[j].lam.Equal(cur.lam) {
				cur.t.End = chunks[j].t.End
				j++
			}
			pend = append(pend, outRow{fact: list[gi].Fact, lam: cur.lam, t: cur.t})
			if len(pend) == BatchSize {
				flush()
			}
			i = j
		}
	}
	flush()
	return out
}
