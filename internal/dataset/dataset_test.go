package dataset

import (
	"testing"

	"tpjoin/internal/align"
	"tpjoin/internal/core"
	"tpjoin/internal/tp"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "r", N: 500, Keys: 20, KeyPrefix: "k", Groups: 2,
		GroupPrefix: "g", MeanDur: 10, MeanGap: 2, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ")
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Fact.Equal(b.Tuples[i].Fact) ||
			!a.Tuples[i].T.Equal(b.Tuples[i].T) ||
			a.Tuples[i].Prob != b.Tuples[i].Prob {
			t.Fatalf("tuple %d differs between equal-seed runs", i)
		}
	}
	c := Generate(Config{Name: "r", N: 500, Keys: 20, KeyPrefix: "k", Groups: 2,
		GroupPrefix: "g", MeanDur: 10, MeanGap: 2, Seed: 8})
	same := true
	for i := range a.Tuples {
		if !a.Tuples[i].T.Equal(c.Tuples[i].T) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds must produce different data")
	}
}

func TestGenerateSequencedValid(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "r", N: 2000, Keys: 50, KeyPrefix: "f", Groups: 1, GroupPrefix: "s",
			MeanDur: 30, SkewDur: true, MeanGap: 3, Seed: 1},
		{Name: "r", N: 2000, Keys: 10, KeyPrefix: "m", Groups: 8, GroupPrefix: "st",
			MeanDur: 50, SkewDur: false, MeanGap: 10, Seed: 2},
	} {
		rel := Generate(cfg)
		if rel.Len() != cfg.N {
			t.Errorf("generated %d tuples, want %d", rel.Len(), cfg.N)
		}
		if err := rel.ValidateSequenced(); err != nil {
			t.Errorf("generated relation violates sequenced constraint: %v", err)
		}
		for _, tu := range rel.Tuples {
			if tu.Prob <= 0 || tu.Prob >= 1 {
				t.Fatalf("probability out of (0,1): %g", tu.Prob)
			}
			if tu.T.Duration() < 1 {
				t.Fatalf("degenerate interval %v", tu.T)
			}
		}
	}
}

func TestGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Generate(Config{N: 10, Keys: 0, Groups: 1})
}

func TestWebkitShape(t *testing.T) {
	r, s := Webkit(4000, 42)
	if r.Len()+s.Len() != 4000 {
		t.Fatalf("total tuples = %d", r.Len()+s.Len())
	}
	if err := r.ValidateSequenced(); err != nil {
		t.Fatalf("webkit r invalid: %v", err)
	}
	if err := s.ValidateSequenced(); err != nil {
		t.Fatalf("webkit s invalid: %v", err)
	}
	// Many distinct keys: ≈ N/2/8.
	keys := distinctKeys(r)
	if keys < 200 || keys > 260 {
		t.Errorf("webkit distinct keys = %d, want ≈ 250", keys)
	}
}

func TestMeteoShape(t *testing.T) {
	r, s := Meteo(4000, 42)
	if r.Len()+s.Len() != 4000 {
		t.Fatalf("total tuples = %d", r.Len()+s.Len())
	}
	if err := r.ValidateSequenced(); err != nil {
		t.Fatalf("meteo r invalid: %v", err)
	}
	if err := s.ValidateSequenced(); err != nil {
		t.Fatalf("meteo s invalid: %v", err)
	}
	// Few distinct keys (the paper's low-selectivity property).
	keys := distinctKeys(r)
	if keys > 40 {
		t.Errorf("meteo distinct keys = %d, want ≤ 40", keys)
	}
	// Meteo groups must be much larger than Webkit groups: compare the
	// overlap-join output sizes at equal input size.
	wr, ws := Webkit(4000, 1)
	meteoWindows := core.Count(core.OverlapJoin(r, s, MeteoTheta()))
	webkitWindows := core.Count(core.OverlapJoin(wr, ws, WebkitTheta()))
	if meteoWindows < 4*webkitWindows {
		t.Errorf("meteo must be far less selective: meteo=%d webkit=%d windows",
			meteoWindows, webkitWindows)
	}
}

func TestWorkloadsJoinable(t *testing.T) {
	// End-to-end smoke: the generated workloads run through both engines
	// and agree point-wise on a small instance.
	r, s := Webkit(300, 5)
	nj := core.LeftOuterJoin(r, s, WebkitTheta())
	if nj.Len() == 0 {
		t.Fatalf("empty join result on webkit workload")
	}
	if err := nj.ValidateSequenced(); err == nil {
		// Join results can legitimately repeat facts at a time point only
		// across different facts; Expand double-checks per fact.
		if _, err2 := tp.Expand(nj); err2 != nil {
			t.Fatalf("webkit NJ result not point-wise consistent: %v", err2)
		}
	}
}

func distinctKeys(r *tp.Relation) int {
	m := make(map[string]struct{})
	for _, tu := range r.Tuples {
		m[tu.Fact[0].AsString()] = struct{}{}
	}
	return len(m)
}

// TestWorkloadNJEqualsTA is the medium-scale end-to-end soak: on real
// generated workloads (not just the tiny random relations of the unit
// tests), NJ and TA must produce point-wise identical left outer joins.
func TestWorkloadNJEqualsTA(t *testing.T) {
	for _, ds := range []string{"webkit", "meteo"} {
		var r, s *tp.Relation
		var theta tp.EquiTheta
		if ds == "webkit" {
			r, s = Webkit(1200, 3)
			theta = WebkitTheta()
		} else {
			r, s = Meteo(600, 3)
			theta = MeteoTheta()
		}
		nj := core.LeftOuterJoin(r, s, theta)
		njPM, err := tp.Expand(nj)
		if err != nil {
			t.Fatalf("%s: NJ result invalid: %v", ds, err)
		}
		ta := align.LeftOuterJoin(r, s, theta, align.Config{})
		taPM, err := tp.Expand(ta)
		if err != nil {
			t.Fatalf("%s: TA result invalid: %v", ds, err)
		}
		if err := njPM.EqualProb(taPM, 1e-9); err != nil {
			t.Fatalf("%s: NJ and TA disagree at scale: %v", ds, err)
		}
	}
}
