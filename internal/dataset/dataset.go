// Package dataset generates the synthetic workloads that stand in for the
// two real-world datasets of the paper's evaluation. The real data is not
// redistributable, so the generators reproduce the structural properties
// the paper identifies as performance-relevant (see DESIGN.md §4):
//
//   - Webkit (SVN history of webkit.org): tuples are predictions that a
//     file remains unchanged over an interval. Very many distinct join
//     keys (files), short per-key histories of adjacent revision
//     intervals with skewed durations ⇒ a selective θ and small per-key
//     groups.
//
//   - Meteo (MeteoSwiss): tuples are predictions that a metric at a
//     station does not vary by more than 0.1 over an interval. The paper
//     joins tuples "with measurements on the same metric but in different
//     stations" and notes that the dataset "contains a number of distinct
//     values much smaller than its size" with keys drawn uniformly ⇒ a
//     non-selective θ and large per-key groups, which makes Meteo run one
//     to two orders of magnitude slower than Webkit for both approaches.
//
// All generators are deterministic in the seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

// Config parametrizes the generic generator. The Webkit and Meteo
// functions provide the calibrated presets used by the benchmarks.
type Config struct {
	// Name is the relation name (and lineage variable prefix).
	Name string
	// N is the number of tuples to generate.
	N int
	// Keys is the number of distinct join-key values.
	Keys int
	// KeyPrefix labels the key strings, e.g. "file" or "metric".
	KeyPrefix string
	// Groups is the number of distinct group attributes per key (e.g.
	// stations measuring a metric). A fact is (key, group); tuples of the
	// same fact form a chain of disjoint intervals, so Groups controls how
	// many tuples of one key may be valid simultaneously.
	Groups int
	// GroupPrefix labels the group strings, e.g. "rev-source" or "station".
	GroupPrefix string
	// MeanDur is the mean interval duration in time points.
	MeanDur float64
	// SkewDur selects log-normal-like (true) or uniform (false) durations.
	SkewDur bool
	// MeanGap is the mean gap between consecutive intervals of a chain.
	MeanGap float64
	// Seed drives the deterministic PRNG.
	Seed int64
}

// Generate builds a sequenced-TP relation according to cfg. Tuples are
// produced per (key, group) chain: consecutive intervals separated by
// non-negative gaps, so the sequenced constraint holds by construction.
func Generate(cfg Config) *tp.Relation {
	if cfg.N < 0 || cfg.Keys <= 0 || cfg.Groups <= 0 {
		panic(fmt.Sprintf("dataset: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rel := tp.NewRelation(cfg.Name, "Key", "Group")

	chains := cfg.Keys * cfg.Groups
	// Current end of each chain, staggered so that chains overlap each
	// other rather than all starting at zero.
	cursor := make([]interval.Time, chains)
	for i := range cursor {
		cursor[i] = interval.Time(rng.Intn(int(cfg.MeanDur*4) + 1))
	}
	facts := make([]tp.Fact, chains)
	for k := 0; k < cfg.Keys; k++ {
		for g := 0; g < cfg.Groups; g++ {
			facts[k*cfg.Groups+g] = tp.Strings(
				fmt.Sprintf("%s%05d", cfg.KeyPrefix, k),
				fmt.Sprintf("%s%03d", cfg.GroupPrefix, g),
			)
		}
	}

	for i := 0; i < cfg.N; i++ {
		c := rng.Intn(chains)
		gap := interval.Time(rng.Float64() * 2 * cfg.MeanGap)
		start := cursor[c] + gap
		dur := duration(rng, cfg)
		end := start + dur
		cursor[c] = end
		p := 0.05 + 0.9*rng.Float64()
		rel.Append(facts[c], interval.New(start, end), p)
	}
	return rel
}

func duration(rng *rand.Rand, cfg Config) interval.Time {
	if cfg.SkewDur {
		// Log-normal-like: most revisions are short-lived, a few survive
		// for a long time (the shape of the Webkit revision history).
		d := math.Exp(rng.NormFloat64()*1.1) * cfg.MeanDur / math.Exp(1.1*1.1/2)
		if d < 1 {
			d = 1
		}
		return interval.Time(d)
	}
	d := 1 + rng.Float64()*2*(cfg.MeanDur-1)
	return interval.Time(d)
}

// WebkitTheta is the join condition of the Webkit workload: equality on
// the file (key) attribute.
func WebkitTheta() tp.EquiTheta { return tp.Equi(0, 0) }

// MeteoTheta is the join condition of the Meteo workload: equality on the
// metric (key) attribute — stations are intentionally not compared.
func MeteoTheta() tp.EquiTheta { return tp.Equi(0, 0) }

// Webkit generates the two input relations of the Webkit workload with n
// tuples in total (n/2 each): many distinct files, short per-file chains
// with skewed durations. The relations model predictions about the same
// file population from two sources.
func Webkit(n int, seed int64) (r, s *tp.Relation) {
	half := n / 2
	keys := half / 8 // ≈ 8 revisions per file and source
	if keys < 1 {
		keys = 1
	}
	r = Generate(Config{
		Name: "r", N: half, Keys: keys, KeyPrefix: "file",
		Groups: 1, GroupPrefix: "src",
		MeanDur: 40, SkewDur: true, MeanGap: 4, Seed: seed,
	})
	s = Generate(Config{
		Name: "s", N: n - half, Keys: keys, KeyPrefix: "file",
		Groups: 1, GroupPrefix: "src",
		MeanDur: 40, SkewDur: true, MeanGap: 4, Seed: seed + 1,
	})
	return r, s
}

// Meteo generates the two input relations of the Meteo workload with n
// tuples in total: few distinct metrics drawn uniformly (the paper's
// subset construction), several stations per metric, long measurement
// histories. The join on the metric alone is highly non-selective.
func Meteo(n int, seed int64) (r, s *tp.Relation) {
	half := n / 2
	r = Generate(Config{
		Name: "r", N: half, Keys: 40, KeyPrefix: "metric",
		Groups: 12, GroupPrefix: "station",
		MeanDur: 60, SkewDur: false, MeanGap: 10, Seed: seed,
	})
	s = Generate(Config{
		Name: "s", N: n - half, Keys: 40, KeyPrefix: "metric",
		Groups: 12, GroupPrefix: "station",
		MeanDur: 60, SkewDur: false, MeanGap: 10, Seed: seed + 1,
	})
	return r, s
}
