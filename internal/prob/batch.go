package prob

import (
	"cmp"
	"fmt"
	"math/rand/v2"
	"slices"
	"strings"
	"sync"

	"tpjoin/internal/lineage"
)

// This file is the batched side of the probability layer: the pipeline
// operators form 256-row batches everywhere else, and the probability
// evaluation used to be their last per-tuple scalar stage. Two batch
// entry points fix that:
//
//   - BatchEvaluator.EvalBatch evaluates a batch of lineages exactly,
//     sharing one memo (hash-consed sub-lineage → probability) across
//     the whole join so the chain-shaped lineages TP joins produce are
//     evaluated once per distinct sub-expression, not once per row. Its
//     fast path replaces the scalar evaluator's allocating
//     independence-partition (union-find + per-operand Vars sets) with
//     a generation-stamped ownership map reused across rows.
//   - MonteCarloBatch draws one PCG stream family per batch (stream i
//     is seed+i), reusing one pooled sample scratch for every row.
//
// Both are drop-in value-identical to their scalar counterparts: the
// exact path computes bit-identical float64s (same multiplication
// order, same memo values), and MonteCarloBatch's out[i] equals
// MonteCarlo(es[i], probs, n, seed+int64(i)) exactly.

// BatchEvaluator evaluates lineage probabilities in batches on top of an
// exact Evaluator, sharing its memo. It is not safe for concurrent use.
type BatchEvaluator struct {
	ev *Evaluator

	// owners is the reusable independence scratch: one map lives for the
	// evaluator's lifetime, and each disjointness check stamps entries
	// with a fresh generation instead of clearing. This is what replaces
	// the scalar path's per-node union-find + per-operand Vars() sets.
	owners map[lineage.Var]ownerMark
	gen    uint64

	batches  int64
	memoHits int64
}

type ownerMark struct {
	gen uint64
	kid int32
}

// NewBatchEvaluator returns a batch evaluator over the given base-event
// probabilities.
func NewBatchEvaluator(probs Probs) *BatchEvaluator {
	return &BatchEvaluator{
		ev:     NewEvaluator(probs),
		owners: make(map[lineage.Var]ownerMark),
	}
}

// Batches reports how many EvalBatch calls the evaluator has served.
func (b *BatchEvaluator) Batches() int64 { return b.batches }

// MemoHits reports how many n-ary sub-lineages were answered from the
// shared memo instead of being re-evaluated.
func (b *BatchEvaluator) MemoHits() int64 { return b.memoHits }

// ShannonSteps reports the underlying evaluator's Shannon expansions.
func (b *BatchEvaluator) ShannonSteps() int { return b.ev.shannonSteps }

// EvalBatch computes out[i] = Pr(es[i]) for every expression of the
// batch. out must have at least len(es) entries; a nil expression (the
// "null" lineage of unmatched windows) panics, matching Evaluator.Prob.
func (b *BatchEvaluator) EvalBatch(es []*lineage.Expr, out []float64) {
	if len(out) < len(es) {
		panic(fmt.Sprintf("prob: EvalBatch output has %d slots for %d expressions", len(out), len(es)))
	}
	b.batches++
	for i, e := range es {
		if e == nil {
			panic("prob: EvalBatch(nil lineage)")
		}
		out[i] = b.eval(e)
	}
}

// Prob returns the exact probability of e through the same memo and fast
// path as EvalBatch — the scalar entry point for stragglers (partial
// batches, single-row paths). It panics on nil.
func (b *BatchEvaluator) Prob(e *lineage.Expr) float64 {
	if e == nil {
		panic("prob: Prob(nil lineage)")
	}
	return b.eval(e)
}

// eval mirrors Evaluator.eval with one difference: when an n-ary node's
// operands are pairwise variable-disjoint (the read-once case — every
// lineage the TP operators build over base relations), it composes the
// operand probabilities directly in operand order, skipping the
// allocating independence partition. That is exactly what the scalar
// path computes for all-singleton groups, so results are bit-identical.
func (b *BatchEvaluator) eval(e *lineage.Expr) float64 {
	ev := b.ev
	switch e.Kind() {
	case lineage.KindFalse:
		return 0
	case lineage.KindTrue:
		return 1
	case lineage.KindVar:
		v := e.Variable()
		p, ok := ev.probs[v]
		if !ok {
			panic(fmt.Sprintf("prob: no probability for base event %v", v))
		}
		return p
	case lineage.KindNot:
		return 1 - b.eval(e.Operands()[0])
	}

	if p, ok := ev.lookup(e); ok {
		b.memoHits++
		return p
	}
	kids := e.Operands()
	var p float64
	if b.pairwiseDisjoint(kids) {
		if e.Kind() == lineage.KindAnd {
			p = 1.0
			for _, k := range kids {
				p *= b.eval(k)
			}
		} else {
			q := 1.0
			for _, k := range kids {
				q *= 1 - b.eval(k)
			}
			p = 1 - q
		}
	} else {
		// Shared variables: fall back to the scalar evaluator's full
		// grouping / Shannon machinery (same code, same results).
		p = ev.evalNary(e)
	}
	ev.store(e, p)
	return p
}

// pairwiseDisjoint reports whether no variable occurs in two different
// operands. It completes before any recursive evaluation, so the
// generation-stamped scratch is never observed mid-recursion.
func (b *BatchEvaluator) pairwiseDisjoint(kids []*lineage.Expr) bool {
	b.gen++
	for i, k := range kids {
		if !b.markOwned(k, int32(i)) {
			return false
		}
	}
	return true
}

// markOwned stamps every variable of e as owned by operand kid,
// reporting false on the first variable already owned by another
// operand this generation.
func (b *BatchEvaluator) markOwned(e *lineage.Expr, kid int32) bool {
	if e.Kind() == lineage.KindVar {
		v := e.Variable()
		if m, ok := b.owners[v]; ok && m.gen == b.gen && m.kid != kid {
			return false
		}
		b.owners[v] = ownerMark{gen: b.gen, kid: kid}
		return true
	}
	for _, k := range e.Operands() {
		if !b.markOwned(k, kid) {
			return false
		}
	}
	return true
}

// --- Monte Carlo batching ---

// mcScratch is the per-estimate sample state: the sorted variable list
// driving RNG consumption order and the truth assignment the samples are
// evaluated under. Pooled so neither is reallocated per tuple.
type mcScratch struct {
	vars   []lineage.Var
	assign map[lineage.Var]bool
}

var mcScratchPool = sync.Pool{
	New: func() any {
		return &mcScratch{assign: make(map[lineage.Var]bool, 16)}
	},
}

// release clears the scratch and returns it to the pool.
func (sc *mcScratch) release() {
	sc.vars = sc.vars[:0]
	clear(sc.assign)
	mcScratchPool.Put(sc)
}

// reset prepares the scratch to carry e's variables: vars holds e's
// distinct variables sorted by (Rel, ID) — the same order e.Vars()
// returns, which fixes the RNG consumption order — and assign doubles as
// the seen-set during collection before the sampling loop overwrites it.
func (sc *mcScratch) reset(e *lineage.Expr) {
	sc.vars = sc.vars[:0]
	clear(sc.assign)
	sc.collect(e)
	slices.SortFunc(sc.vars, func(a, b lineage.Var) int {
		if c := strings.Compare(a.Rel, b.Rel); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

func (sc *mcScratch) collect(e *lineage.Expr) {
	if e.Kind() == lineage.KindVar {
		v := e.Variable()
		if _, seen := sc.assign[v]; !seen {
			sc.assign[v] = false
			sc.vars = append(sc.vars, v)
		}
		return
	}
	for _, k := range e.Operands() {
		sc.collect(k)
	}
}

// mcStreamSelector is the fixed second PCG word: distinct seeds give
// distinct streams, the same seed replays the same estimate.
const mcStreamSelector = 0x7079746167726173

// monteCarloInto runs one estimate on a caller-provided scratch.
func monteCarloInto(e *lineage.Expr, probs Probs, n int, seed int64, sc *mcScratch) float64 {
	rng := rand.New(rand.NewPCG(uint64(seed), mcStreamSelector))
	sc.reset(e)
	hits := 0
	for i := 0; i < n; i++ {
		for _, v := range sc.vars {
			sc.assign[v] = rng.Float64() < probs[v]
		}
		if e.Eval(sc.assign) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// MonteCarloBatch estimates Pr(es[i]) for every expression of a batch,
// writing the estimates into out (which must have at least len(es)
// slots). The batch draws one PCG stream family anchored at seed:
// expression i samples stream seed+i, so
//
//	out[i] == MonteCarlo(es[i], probs, n, seed+int64(i))
//
// exactly — estimates are independent of how rows were grouped into
// batches and individually reproducible from their stream seeds. One
// pooled sample scratch is reused across the whole batch. Panics for
// n <= 0, matching MonteCarlo.
func MonteCarloBatch(es []*lineage.Expr, probs Probs, n int, seed int64, out []float64) {
	if n <= 0 {
		panic(fmt.Sprintf("prob: MonteCarloBatch needs a positive sample count, got %d", n))
	}
	if len(out) < len(es) {
		panic(fmt.Sprintf("prob: MonteCarloBatch output has %d slots for %d expressions", len(out), len(es)))
	}
	sc := mcScratchPool.Get().(*mcScratch)
	defer sc.release()
	for i, e := range es {
		out[i] = monteCarloInto(e, probs, n, seed+int64(i), sc)
	}
}
