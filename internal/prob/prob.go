// Package prob computes the probability of lineage formulas under the
// tuple-independence assumption of probabilistic databases: every base
// event (lineage variable) is an independent Bernoulli variable.
//
// Computing Pr(λ) is #P-hard in general. The evaluator uses the standard
// exact strategy:
//
//  1. constants and literals are immediate;
//  2. negation complements;
//  3. conjunctions/disjunctions are partitioned into variable-disjoint
//     groups (independent sub-formulas), whose probabilities compose by
//     multiplication (AND) or inclusion-exclusion of complements (OR);
//  4. otherwise Shannon expansion on the most frequent variable, with
//     memoization of intermediate results.
//
// Every lineage produced by the TP join operators over base relations is
// read-once (each base event occurs at most once), so step 3 always
// applies and evaluation is linear in formula size — the paper's operators
// never pay the exponential branch. Step 4 exists for completeness, e.g.
// when joining derived relations, and is exercised by tests.
package prob

import (
	"fmt"

	"tpjoin/internal/lineage"
)

// Probs assigns a probability to every base event.
type Probs map[lineage.Var]float64

// Clone returns a copy of p.
func (p Probs) Clone() Probs {
	out := make(Probs, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Evaluator computes exact probabilities of lineage expressions, caching
// intermediate results across calls. It is not safe for concurrent use.
type Evaluator struct {
	probs Probs
	memo  map[uint64][]memoEntry
	// stats
	shannonSteps int
}

type memoEntry struct {
	expr *lineage.Expr
	p    float64
}

// NewEvaluator returns an evaluator over the given base-event
// probabilities. Probabilities must lie in [0, 1]; Prob panics on a
// variable absent from probs, which indicates an inconsistent database.
func NewEvaluator(probs Probs) *Evaluator {
	return &Evaluator{probs: probs, memo: make(map[uint64][]memoEntry)}
}

// ShannonSteps reports how many Shannon expansions the evaluator has
// performed; zero for purely read-once workloads.
func (ev *Evaluator) ShannonSteps() int { return ev.shannonSteps }

// Prob returns the exact probability of e. A nil expression (the "null"
// lineage of unmatched windows) has no probability; Prob panics on it.
func (ev *Evaluator) Prob(e *lineage.Expr) float64 {
	if e == nil {
		panic("prob: Prob(nil lineage)")
	}
	return ev.eval(e)
}

func (ev *Evaluator) eval(e *lineage.Expr) float64 {
	switch e.Kind() {
	case lineage.KindFalse:
		return 0
	case lineage.KindTrue:
		return 1
	case lineage.KindVar:
		v := e.Variable()
		p, ok := ev.probs[v]
		if !ok {
			panic(fmt.Sprintf("prob: no probability for base event %v", v))
		}
		return p
	case lineage.KindNot:
		return 1 - ev.eval(e.Operands()[0])
	}

	if p, ok := ev.lookup(e); ok {
		return p
	}
	p := ev.evalNary(e)
	ev.store(e, p)
	return p
}

func (ev *Evaluator) evalNary(e *lineage.Expr) float64 {
	kids := e.Operands()
	groups := independentGroups(kids)
	isAnd := e.Kind() == lineage.KindAnd

	if len(groups) == 1 && len(groups[0]) == len(kids) {
		// No independence structure at this level: Shannon expansion.
		return ev.shannon(e)
	}

	if isAnd {
		p := 1.0
		for _, g := range groups {
			p *= ev.evalGroup(lineage.KindAnd, g)
		}
		return p
	}
	q := 1.0
	for _, g := range groups {
		q *= 1 - ev.evalGroup(lineage.KindOr, g)
	}
	return 1 - q
}

// evalGroup evaluates the conjunction/disjunction of a variable-connected
// group of sub-formulas.
func (ev *Evaluator) evalGroup(kind lineage.Kind, g []*lineage.Expr) float64 {
	if len(g) == 1 {
		return ev.eval(g[0])
	}
	var comb *lineage.Expr
	if kind == lineage.KindAnd {
		comb = lineage.And(g...)
	} else {
		comb = lineage.Or(g...)
	}
	if p, ok := ev.lookup(comb); ok {
		return p
	}
	p := ev.shannon(comb)
	ev.store(comb, p)
	return p
}

// shannon expands e on its most frequently occurring variable:
// Pr(e) = p(v)·Pr(e|v=⊤) + (1−p(v))·Pr(e|v=⊥).
func (ev *Evaluator) shannon(e *lineage.Expr) float64 {
	v, ok := mostFrequentVar(e)
	if !ok {
		// No variables at all: constant-only n-ary node cannot occur
		// (the constructors fold constants), but stay total.
		if e.Kind() == lineage.KindAnd {
			return 1
		}
		return 0
	}
	ev.shannonSteps++
	pv, okp := ev.probs[v]
	if !okp {
		panic(fmt.Sprintf("prob: no probability for base event %v", v))
	}
	hi := ev.eval(e.Restrict(v, true))
	lo := ev.eval(e.Restrict(v, false))
	return pv*hi + (1-pv)*lo
}

func (ev *Evaluator) lookup(e *lineage.Expr) (float64, bool) {
	for _, ent := range ev.memo[e.Hash()] {
		if ent.expr.Equal(e) {
			return ent.p, true
		}
	}
	return 0, false
}

func (ev *Evaluator) store(e *lineage.Expr, p float64) {
	h := e.Hash()
	ev.memo[h] = append(ev.memo[h], memoEntry{expr: e, p: p})
}

// independentGroups partitions kids into groups such that formulas in
// different groups share no variables (and are therefore independent under
// tuple independence). Singleton partitioning is returned in input order.
func independentGroups(kids []*lineage.Expr) [][]*lineage.Expr {
	n := len(kids)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	owner := make(map[lineage.Var]int)
	for i, k := range kids {
		for _, v := range k.Vars() {
			if j, ok := owner[v]; ok {
				union(i, j)
			} else {
				owner[v] = i
			}
		}
	}
	order := make([]int, 0, n)
	buckets := make(map[int][]*lineage.Expr)
	for i, k := range kids {
		r := find(i)
		if _, seen := buckets[r]; !seen {
			order = append(order, r)
		}
		buckets[r] = append(buckets[r], k)
	}
	out := make([][]*lineage.Expr, 0, len(order))
	for _, r := range order {
		out = append(out, buckets[r])
	}
	return out
}

// mostFrequentVar returns the variable with the most occurrences in e,
// breaking ties toward the smaller variable for determinism.
func mostFrequentVar(e *lineage.Expr) (lineage.Var, bool) {
	counts := make(map[lineage.Var]int)
	countVars(e, counts)
	var best lineage.Var
	bestN := 0
	for v, n := range counts {
		if n > bestN || (n == bestN && v.Less(best)) {
			best, bestN = v, n
		}
	}
	return best, bestN > 0
}

func countVars(e *lineage.Expr, counts map[lineage.Var]int) {
	if e.Kind() == lineage.KindVar {
		counts[e.Variable()]++
		return
	}
	for _, k := range e.Operands() {
		countVars(k, counts)
	}
}

// Enumerate computes Pr(e) by summing over all 2^n assignments of e's
// variables. Exponential; used as a test oracle only.
func Enumerate(e *lineage.Expr, probs Probs) float64 {
	vars := e.Vars()
	if len(vars) > 24 {
		panic("prob: Enumerate on too many variables")
	}
	assign := make(map[lineage.Var]bool, len(vars))
	var rec func(i int, weight float64) float64
	rec = func(i int, weight float64) float64 {
		if weight == 0 {
			return 0
		}
		if i == len(vars) {
			if e.Eval(assign) {
				return weight
			}
			return 0
		}
		v := vars[i]
		p, ok := probs[v]
		if !ok {
			panic(fmt.Sprintf("prob: no probability for base event %v", v))
		}
		assign[v] = true
		t := rec(i+1, weight*p)
		assign[v] = false
		f := rec(i+1, weight*(1-p))
		return t + f
	}
	return rec(0, 1)
}

// MonteCarlo estimates Pr(e) from n independent samples drawn with the
// given seed. The standard error is about sqrt(p(1-p)/n). It panics for
// n <= 0 (the estimate hits/n would silently be NaN), matching the
// package's contract style for programmer errors.
//
// Each call owns a private PCG stream (math/rand/v2), so concurrent
// estimators — one per worker in a parallel aggregation — never contend
// on a shared locked source and stay individually reproducible from
// their seeds. The sample scratch (variable list + truth assignment) is
// checked out of a sync.Pool rather than allocated per call; see
// MonteCarloBatch for the batched entry point that amortizes one
// checkout over a whole row batch.
func MonteCarlo(e *lineage.Expr, probs Probs, n int, seed int64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("prob: MonteCarlo needs a positive sample count, got %d", n))
	}
	sc := mcScratchPool.Get().(*mcScratch)
	defer sc.release()
	return monteCarloInto(e, probs, n, seed, sc)
}
