package prob

import (
	"sync/atomic"
	"testing"

	"tpjoin/internal/lineage"
)

func mcFixture() (*lineage.Expr, Probs) {
	probs := Probs{{Rel: "v", ID: 1}: 0.3, {Rel: "v", ID: 2}: 0.6, {Rel: "v", ID: 3}: 0.5}
	e := lineage.Or(lineage.And(v("v", 1), v("v", 2)), v("v", 3))
	return e, probs
}

// TestMonteCarloReproduciblePerSeed pins the per-call PCG stream
// contract: the same seed replays the same estimate exactly, distinct
// seeds draw distinct streams.
func TestMonteCarloReproduciblePerSeed(t *testing.T) {
	e, probs := mcFixture()
	a := MonteCarlo(e, probs, 10000, 42)
	b := MonteCarlo(e, probs, 10000, 42)
	if a != b {
		t.Errorf("same seed must replay the same estimate: %v vs %v", a, b)
	}
	c := MonteCarlo(e, probs, 10000, 43)
	if a == c {
		t.Errorf("distinct seeds drew identical samples (p = %v) — stream selection broken", a)
	}
}

// TestMonteCarloConcurrentCallsAgree: concurrent estimators with the same
// seed produce the estimate a lone caller does — each call owns its
// private generator, so parallelism cannot perturb the draw sequence.
func TestMonteCarloConcurrentCallsAgree(t *testing.T) {
	e, probs := mcFixture()
	want := MonteCarlo(e, probs, 5000, 7)
	var bad atomic.Int32
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			if MonteCarlo(e, probs, 5000, 7) != want {
				bad.Add(1)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if n := bad.Load(); n != 0 {
		t.Errorf("%d concurrent calls diverged from the sequential estimate", n)
	}
}

func BenchmarkMonteCarlo(b *testing.B) {
	e, probs := mcFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MonteCarlo(e, probs, 1000, int64(i))
	}
}

// BenchmarkMonteCarloParallel exercises concurrent estimators — one per
// worker, as a parallel aggregation runs them. With the per-call PCG
// stream this scales with GOMAXPROCS; a shared locked source would
// serialize on the mutex instead.
func BenchmarkMonteCarloParallel(b *testing.B) {
	e, probs := mcFixture()
	b.ReportAllocs()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			MonteCarlo(e, probs, 1000, seed.Add(1))
		}
	})
}
