package prob

import (
	"math"
	"math/rand"
	"testing"

	"tpjoin/internal/lineage"
)

// TestBatchEvaluatorBitIdenticalToScalar: the batch evaluator's fast
// path must compute the exact float64 the scalar evaluator computes —
// same multiplication order, same memo values — across random formulas
// including shared-variable (Shannon) shapes.
func TestBatchEvaluatorBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 400; trial++ {
		e := randExpr(rng, 3)
		probs := make(Probs)
		for _, vr := range e.Vars() {
			probs[vr] = rng.Float64()
		}
		scalar := NewEvaluator(probs).Prob(e)
		bev := NewBatchEvaluator(probs)
		var out [1]float64
		bev.EvalBatch([]*lineage.Expr{e}, out[:])
		if out[0] != scalar {
			t.Fatalf("trial %d: EvalBatch(%v) = %v, scalar = %v", trial, e, out[0], scalar)
		}
		if p := bev.Prob(e); p != scalar {
			t.Fatalf("trial %d: batch Prob(%v) = %v, scalar = %v", trial, e, p, scalar)
		}
	}
}

// TestBatchEvaluatorReadOnceChain exercises the fast path on the
// chain-shaped read-once lineages TP joins produce and checks the memo
// counters: re-evaluating the same batch must answer from the memo.
func TestBatchEvaluatorReadOnceChain(t *testing.T) {
	probs := make(Probs)
	var es []*lineage.Expr
	for i := 0; i < 64; i++ {
		a := lineage.NewVar("a", i)
		b1 := lineage.NewVar("b", 2*i)
		b2 := lineage.NewVar("b", 2*i+1)
		probs[lineage.Var{Rel: "a", ID: i}] = 0.7
		probs[lineage.Var{Rel: "b", ID: 2 * i}] = 0.4
		probs[lineage.Var{Rel: "b", ID: 2*i + 1}] = 0.9
		es = append(es, lineage.AndNot(a, lineage.Or(b1, b2)))
	}
	bev := NewBatchEvaluator(probs)
	out := make([]float64, len(es))
	bev.EvalBatch(es, out)
	want := 0.7 * (1 - (1 - 0.6*0.1)) // a ∧ ¬(b1 ∨ b2)
	for i, p := range out {
		if math.Abs(p-want) > 1e-12 {
			t.Fatalf("row %d: got %v, want %v", i, p, want)
		}
	}
	if bev.Batches() != 1 {
		t.Errorf("Batches() = %d, want 1", bev.Batches())
	}
	if bev.ShannonSteps() != 0 {
		t.Errorf("read-once batch must not trigger Shannon, got %d steps", bev.ShannonSteps())
	}
	hits := bev.MemoHits()
	bev.EvalBatch(es, out)
	if bev.MemoHits() <= hits {
		t.Errorf("re-evaluating the batch must hit the memo (hits %d → %d)", hits, bev.MemoHits())
	}
	if bev.Batches() != 2 {
		t.Errorf("Batches() = %d, want 2", bev.Batches())
	}
}

// TestBatchEvaluatorAgainstEnumeration: exactness on dense shared-variable
// formulas (the fallback path through the scalar grouping machinery).
func TestBatchEvaluatorAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rng, 4)
		probs := make(Probs)
		for _, vr := range e.Vars() {
			probs[vr] = rng.Float64()
		}
		bev := NewBatchEvaluator(probs)
		got := bev.Prob(e)
		want := Enumerate(e, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Prob(%v) = %g, enumeration = %g", trial, e, got, want)
		}
	}
}

// TestBatchEvaluatorAgainstBDD cross-checks the batch evaluator against
// the independent BDD engine.
func TestBatchEvaluatorAgainstBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 100; trial++ {
		e := randExpr(rng, 3)
		probs := make(Probs)
		for _, vr := range e.Vars() {
			probs[vr] = rng.Float64()
		}
		got := NewBatchEvaluator(probs).Prob(e)
		want := CompileBDD(e).Prob(probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: batch %g vs BDD %g for %v", trial, got, want, e)
		}
	}
}

func TestEvalBatchPanicsOnNil(t *testing.T) {
	bev := NewBatchEvaluator(Probs{})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on nil lineage in a batch")
		}
	}()
	bev.EvalBatch([]*lineage.Expr{nil}, make([]float64, 1))
}

func TestEvalBatchPanicsOnShortOutput(t *testing.T) {
	bev := NewBatchEvaluator(Probs{})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on short output slice")
		}
	}()
	bev.EvalBatch([]*lineage.Expr{lineage.True(), lineage.True()}, make([]float64, 1))
}

// TestMonteCarloBatchMatchesScalar pins the stream-family contract:
// out[i] must equal MonteCarlo(es[i], probs, n, seed+i) bit for bit, so
// estimates are independent of batching.
func TestMonteCarloBatchMatchesScalar(t *testing.T) {
	e, probs := mcFixture()
	e2 := lineage.And(v("v", 1), lineage.Not(v("v", 3)))
	es := []*lineage.Expr{e, e2, e, lineage.Or(v("v", 2), v("v", 3))}
	out := make([]float64, len(es))
	const n, seed = 4000, 11
	MonteCarloBatch(es, probs, n, seed, out)
	for i, ei := range es {
		want := MonteCarlo(ei, probs, n, seed+int64(i))
		if out[i] != want {
			t.Errorf("batch slot %d: %v, scalar stream seed+%d: %v", i, out[i], i, want)
		}
	}
	// Replay: same batch, same seed, same estimates.
	out2 := make([]float64, len(es))
	MonteCarloBatch(es, probs, n, seed, out2)
	for i := range out {
		if out[i] != out2[i] {
			t.Errorf("slot %d not reproducible: %v vs %v", i, out[i], out2[i])
		}
	}
}

func TestMonteCarloBatchRejectsNonPositiveN(t *testing.T) {
	e, probs := mcFixture()
	defer func() {
		if recover() == nil {
			t.Fatalf("MonteCarloBatch(n=0) must panic")
		}
	}()
	MonteCarloBatch([]*lineage.Expr{e}, probs, 0, 1, make([]float64, 1))
}

// TestMonteCarloAllocs is the allocation regression test for the pooled
// sample scratch: after warm-up the per-call allocations are the private
// RNG only (rand.New + NewPCG), not the variable list or assignment map.
func TestMonteCarloAllocs(t *testing.T) {
	e, probs := mcFixture()
	MonteCarlo(e, probs, 10, 1) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		MonteCarlo(e, probs, 100, 7)
	})
	if allocs > 3 {
		t.Errorf("MonteCarlo allocates %.1f objects/op, want <= 3 (pooled scratch regressed)", allocs)
	}
}

// TestEvalBatchAllocsSteadyState: once the memo holds a batch's distinct
// sub-lineages, re-evaluating allocates nothing — the independence check
// runs on the generation-stamped scratch, not fresh sets.
func TestEvalBatchAllocsSteadyState(t *testing.T) {
	probs := make(Probs)
	var es []*lineage.Expr
	for i := 0; i < 32; i++ {
		probs[lineage.Var{Rel: "a", ID: i}] = 0.5
		probs[lineage.Var{Rel: "b", ID: i}] = 0.25
		es = append(es, lineage.And(lineage.NewVar("a", i), lineage.NewVar("b", i)))
	}
	bev := NewBatchEvaluator(probs)
	out := make([]float64, len(es))
	bev.EvalBatch(es, out) // populate the memo
	allocs := testing.AllocsPerRun(20, func() {
		bev.EvalBatch(es, out)
	})
	if allocs > 0 {
		t.Errorf("steady-state EvalBatch allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkEvalBatchReadOnce(b *testing.B) {
	probs := make(Probs)
	var es []*lineage.Expr
	for i := 0; i < 256; i++ {
		probs[lineage.Var{Rel: "a", ID: i}] = 0.7
		probs[lineage.Var{Rel: "b", ID: i}] = 0.4
		probs[lineage.Var{Rel: "b", ID: i + 1000}] = 0.9
		es = append(es, lineage.AndNot(lineage.NewVar("a", i),
			lineage.Or(lineage.NewVar("b", i), lineage.NewVar("b", i+1000))))
	}
	out := make([]float64, len(es))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bev := NewBatchEvaluator(probs)
		bev.EvalBatch(es, out)
	}
}

func BenchmarkScalarEvalReadOnce(b *testing.B) {
	probs := make(Probs)
	var es []*lineage.Expr
	for i := 0; i < 256; i++ {
		probs[lineage.Var{Rel: "a", ID: i}] = 0.7
		probs[lineage.Var{Rel: "b", ID: i}] = 0.4
		probs[lineage.Var{Rel: "b", ID: i + 1000}] = 0.9
		es = append(es, lineage.AndNot(lineage.NewVar("a", i),
			lineage.Or(lineage.NewVar("b", i), lineage.NewVar("b", i+1000))))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator(probs)
		for _, e := range es {
			_ = ev.Prob(e)
		}
	}
}

func BenchmarkMonteCarloBatch(b *testing.B) {
	e, probs := mcFixture()
	es := make([]*lineage.Expr, 256)
	for i := range es {
		es[i] = e
	}
	out := make([]float64, len(es))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MonteCarloBatch(es, probs, 100, int64(i), out)
	}
}
