package prob

import (
	"fmt"

	"tpjoin/internal/lineage"
)

// This file provides a second exact inference engine: reduced ordered
// binary decision diagrams (OBDDs), the standard compilation target for
// lineage probability in probabilistic databases. Compiling a lineage
// once into a BDD makes repeated probability computations (e.g. under
// changing base probabilities, for sensitivity analysis) linear in the
// BDD size, and serves as an independent oracle for the Shannon-expansion
// evaluator.

// BDD is a reduced ordered binary decision diagram over lineage
// variables. Node 0 is the ⊥ terminal, node 1 the ⊤ terminal.
type BDD struct {
	vars   []lineage.Var       // variable order: vars[i] has level i
	level  map[lineage.Var]int // variable → level
	nodes  []bddNode           // nodes[0] = ⊥, nodes[1] = ⊤
	unique map[bddNode]int     // hash-consing of nodes
	cache  map[applyKey]int    // memoized apply results
	root   int
}

type bddNode struct {
	level int // variable level; terminals use a sentinel
	lo    int // node id when the variable is false
	hi    int // node id when the variable is true
}

type applyKey struct {
	op   byte // '&', '|', '!'
	a, b int
}

const terminalLevel = int(^uint(0) >> 1) // max int: terminals sort last

// CompileBDD builds the reduced OBDD of e, ordering variables by first
// occurrence (a good default for the chain-shaped lineages TP joins
// produce).
func CompileBDD(e *lineage.Expr) *BDD {
	b := &BDD{
		level:  make(map[lineage.Var]int),
		nodes:  []bddNode{{level: terminalLevel}, {level: terminalLevel}},
		unique: make(map[bddNode]int),
		cache:  make(map[applyKey]int),
	}
	b.collectOrder(e)
	b.root = b.build(e)
	return b
}

func (b *BDD) collectOrder(e *lineage.Expr) {
	if e.Kind() == lineage.KindVar {
		v := e.Variable()
		if _, ok := b.level[v]; !ok {
			b.level[v] = len(b.vars)
			b.vars = append(b.vars, v)
		}
		return
	}
	for _, k := range e.Operands() {
		b.collectOrder(k)
	}
}

func (b *BDD) build(e *lineage.Expr) int {
	switch e.Kind() {
	case lineage.KindFalse:
		return 0
	case lineage.KindTrue:
		return 1
	case lineage.KindVar:
		return b.mk(b.level[e.Variable()], 0, 1)
	case lineage.KindNot:
		return b.not(b.build(e.Operands()[0]))
	case lineage.KindAnd:
		acc := 1
		for _, k := range e.Operands() {
			acc = b.apply('&', acc, b.build(k))
			if acc == 0 {
				return 0
			}
		}
		return acc
	case lineage.KindOr:
		acc := 0
		for _, k := range e.Operands() {
			acc = b.apply('|', acc, b.build(k))
			if acc == 1 {
				return 1
			}
		}
		return acc
	default:
		panic("prob: invalid lineage expression")
	}
}

// mk returns the node (level, lo, hi), applying the reduction rules
// (redundant-test elimination and hash-consing).
func (b *BDD) mk(level, lo, hi int) int {
	if lo == hi {
		return lo
	}
	n := bddNode{level: level, lo: lo, hi: hi}
	if id, ok := b.unique[n]; ok {
		return id
	}
	id := len(b.nodes)
	b.nodes = append(b.nodes, n)
	b.unique[n] = id
	return id
}

func (b *BDD) not(a int) int {
	switch a {
	case 0:
		return 1
	case 1:
		return 0
	}
	key := applyKey{op: '!', a: a}
	if r, ok := b.cache[key]; ok {
		return r
	}
	n := b.nodes[a]
	r := b.mk(n.level, b.not(n.lo), b.not(n.hi))
	b.cache[key] = r
	return r
}

func (b *BDD) apply(op byte, x, y int) int {
	// Terminal short-circuits.
	switch op {
	case '&':
		if x == 0 || y == 0 {
			return 0
		}
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		if x == y {
			return x
		}
	case '|':
		if x == 1 || y == 1 {
			return 1
		}
		if x == 0 {
			return y
		}
		if y == 0 {
			return x
		}
		if x == y {
			return x
		}
	}
	// Normalize operand order for the cache (both ops are commutative).
	if x > y {
		x, y = y, x
	}
	key := applyKey{op: op, a: x, b: y}
	if r, ok := b.cache[key]; ok {
		return r
	}
	nx, ny := b.nodes[x], b.nodes[y]
	var level, xlo, xhi, ylo, yhi int
	switch {
	case nx.level < ny.level:
		level, xlo, xhi, ylo, yhi = nx.level, nx.lo, nx.hi, y, y
	case nx.level > ny.level:
		level, xlo, xhi, ylo, yhi = ny.level, x, x, ny.lo, ny.hi
	default:
		level, xlo, xhi, ylo, yhi = nx.level, nx.lo, nx.hi, ny.lo, ny.hi
	}
	r := b.mk(level, b.apply(op, xlo, ylo), b.apply(op, xhi, yhi))
	b.cache[key] = r
	return r
}

// Size returns the number of nodes reachable from the root, including the
// terminals. (Construction may allocate garbage nodes for intermediate
// results; they do not affect evaluation and are not counted.)
func (b *BDD) Size() int {
	seen := make(map[int]bool)
	var rec func(id int)
	rec = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		if id > 1 {
			rec(b.nodes[id].lo)
			rec(b.nodes[id].hi)
		}
	}
	rec(b.root)
	if b.root > 1 {
		// Terminals are always conceptually present.
		seen[0] = true
		seen[1] = true
	}
	return len(seen)
}

// Vars returns the variable order of the diagram.
func (b *BDD) Vars() []lineage.Var { return b.vars }

// Prob computes the exact probability of the compiled formula in time
// linear in the BDD size. It panics on a variable missing from probs.
func (b *BDD) Prob(probs Probs) float64 {
	memo := make([]float64, len(b.nodes))
	seen := make([]bool, len(b.nodes))
	var rec func(id int) float64
	rec = func(id int) float64 {
		if id == 0 {
			return 0
		}
		if id == 1 {
			return 1
		}
		if seen[id] {
			return memo[id]
		}
		n := b.nodes[id]
		v := b.vars[n.level]
		p, ok := probs[v]
		if !ok {
			panic(fmt.Sprintf("prob: no probability for base event %v", v))
		}
		r := p*rec(n.hi) + (1-p)*rec(n.lo)
		seen[id] = true
		memo[id] = r
		return r
	}
	return rec(b.root)
}

// Eval evaluates the compiled formula under a truth assignment (absent
// variables default to false).
func (b *BDD) Eval(assign map[lineage.Var]bool) bool {
	id := b.root
	for id > 1 {
		n := b.nodes[id]
		if assign[b.vars[n.level]] {
			id = n.hi
		} else {
			id = n.lo
		}
	}
	return id == 1
}

// Tautology reports whether the compiled formula is ⊤ (the BDD is
// canonical, so this is a root check).
func (b *BDD) Tautology() bool { return b.root == 1 }

// Unsatisfiable reports whether the compiled formula is ⊥.
func (b *BDD) Unsatisfiable() bool { return b.root == 0 }
