package prob

import (
	"math"
	"math/rand"
	"testing"

	"tpjoin/internal/lineage"
)

func TestBDDConstants(t *testing.T) {
	if !CompileBDD(lineage.True()).Tautology() {
		t.Errorf("⊤ must compile to the ⊤ terminal")
	}
	if !CompileBDD(lineage.False()).Unsatisfiable() {
		t.Errorf("⊥ must compile to the ⊥ terminal")
	}
	x := v("a", 1)
	b := CompileBDD(lineage.Or(x, lineage.Not(x)))
	if !b.Tautology() {
		t.Errorf("x ∨ ¬x must reduce to ⊤, size %d", b.Size())
	}
	b = CompileBDD(lineage.And(x, lineage.Not(x)))
	if !b.Unsatisfiable() {
		t.Errorf("x ∧ ¬x must reduce to ⊥")
	}
}

func TestBDDPaperLineage(t *testing.T) {
	a1 := v("a", 1)
	b2, b3 := v("b", 2), v("b", 3)
	e := lineage.AndNot(a1, lineage.Or(b3, b2))
	bdd := CompileBDD(e)
	probs := Probs{
		{Rel: "a", ID: 1}: 0.7, {Rel: "b", ID: 2}: 0.6, {Rel: "b", ID: 3}: 0.7,
	}
	if got := bdd.Prob(probs); math.Abs(got-0.084) > 1e-12 {
		t.Errorf("BDD prob = %g, want 0.084", got)
	}
	// Read-once formula over 3 variables: BDD has ≤ 3 internal nodes + 2
	// terminals.
	if bdd.Size() > 5 {
		t.Errorf("read-once BDD unexpectedly large: %d nodes", bdd.Size())
	}
	if len(bdd.Vars()) != 3 {
		t.Errorf("vars = %v", bdd.Vars())
	}
}

func TestBDDAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		e := randExpr(rng, 3)
		probs := make(Probs)
		for _, vr := range e.Vars() {
			probs[vr] = rng.Float64()
		}
		bdd := CompileBDD(e)
		got := bdd.Prob(probs)
		want := Enumerate(e, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: BDD prob %g, enumeration %g for %v", trial, got, want, e)
		}
		// Shannon evaluator and BDD must agree too.
		ev := NewEvaluator(probs)
		if s := ev.Prob(e); math.Abs(got-s) > 1e-9 {
			t.Fatalf("trial %d: BDD %g vs Shannon %g for %v", trial, got, s, e)
		}
	}
}

func TestBDDEvalAgainstExpr(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rng, 3)
		bdd := CompileBDD(e)
		vars := e.Vars()
		assign := make(map[lineage.Var]bool)
		for i := 0; i < 20; i++ {
			for _, vr := range vars {
				assign[vr] = rng.Intn(2) == 1
			}
			if bdd.Eval(assign) != e.Eval(assign) {
				t.Fatalf("trial %d: BDD eval disagrees on %v under %v", trial, e, assign)
			}
		}
	}
}

func TestBDDCanonicity(t *testing.T) {
	// Equivalent formulas must compile to identical root structure
	// (checked via Tautology of the XNOR... simpler: equal Prob under
	// many random probability assignments AND equal size for De Morgan
	// pairs compiled under the same variable order).
	x, y := v("a", 1), v("a", 2)
	e1 := lineage.Not(lineage.And(x, y))
	e2 := lineage.Or(lineage.Not(x), lineage.Not(y))
	b1, b2 := CompileBDD(e1), CompileBDD(e2)
	if b1.Size() != b2.Size() {
		t.Errorf("De Morgan twins compiled to different sizes: %d vs %d", b1.Size(), b2.Size())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		probs := Probs{{Rel: "a", ID: 1}: rng.Float64(), {Rel: "a", ID: 2}: rng.Float64()}
		if math.Abs(b1.Prob(probs)-b2.Prob(probs)) > 1e-12 {
			t.Fatalf("De Morgan twins disagree")
		}
	}
}

func TestBDDSharedVariable(t *testing.T) {
	// (x∧y) ∨ (x∧z): BDD handles the shared variable exactly.
	probs := Probs{
		{Rel: "v", ID: 1}: 0.5, {Rel: "v", ID: 2}: 0.5, {Rel: "v", ID: 3}: 0.5,
	}
	x, y, z := v("v", 1), v("v", 2), v("v", 3)
	e := lineage.Or(lineage.And(x, y), lineage.And(x, z))
	if got := CompileBDD(e).Prob(probs); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("BDD prob = %g, want 0.375", got)
	}
}

func TestBDDPanicsOnMissingProb(t *testing.T) {
	bdd := CompileBDD(v("a", 1))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	bdd.Prob(Probs{})
}

func TestBDDRepeatedProbCalls(t *testing.T) {
	// Compiling once and evaluating under different probabilities is the
	// BDD's use case; results must track the probabilities.
	x, y := v("a", 1), v("a", 2)
	bdd := CompileBDD(lineage.Or(x, y))
	p1 := bdd.Prob(Probs{{Rel: "a", ID: 1}: 0.5, {Rel: "a", ID: 2}: 0.5})
	p2 := bdd.Prob(Probs{{Rel: "a", ID: 1}: 0.9, {Rel: "a", ID: 2}: 0.9})
	if math.Abs(p1-0.75) > 1e-12 || math.Abs(p2-0.99) > 1e-12 {
		t.Errorf("repeated Prob wrong: %g, %g", p1, p2)
	}
}
