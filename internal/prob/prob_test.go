package prob

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"tpjoin/internal/lineage"
)

func v(rel string, id int) *lineage.Expr { return lineage.NewVar(rel, id) }

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestConstantsAndLiterals(t *testing.T) {
	ev := NewEvaluator(Probs{{Rel: "a", ID: 1}: 0.7})
	approx(t, ev.Prob(lineage.False()), 0, 0, "Pr(⊥)")
	approx(t, ev.Prob(lineage.True()), 1, 0, "Pr(⊤)")
	approx(t, ev.Prob(v("a", 1)), 0.7, 0, "Pr(a1)")
	approx(t, ev.Prob(lineage.Not(v("a", 1))), 0.3, 1e-15, "Pr(¬a1)")
}

func TestPaperExampleProbabilities(t *testing.T) {
	// Base probabilities from Fig. 1a.
	probs := Probs{
		{Rel: "a", ID: 1}: 0.7, {Rel: "a", ID: 2}: 0.8,
		{Rel: "b", ID: 1}: 0.9, {Rel: "b", ID: 2}: 0.6, {Rel: "b", ID: 3}: 0.7,
	}
	ev := NewEvaluator(probs)
	a1, a2 := v("a", 1), v("a", 2)
	b2, b3 := v("b", 2), v("b", 3)

	// The seven output probabilities of Fig. 1b.
	approx(t, ev.Prob(a1), 0.70, 1e-12, "a1")
	approx(t, ev.Prob(lineage.And(a1, b3)), 0.49, 1e-12, "a1∧b3")
	approx(t, ev.Prob(lineage.And(a1, b2)), 0.42, 1e-12, "a1∧b2")
	approx(t, ev.Prob(lineage.AndNot(a1, b3)), 0.21, 1e-12, "a1∧¬b3")
	approx(t, ev.Prob(lineage.AndNot(a1, lineage.Or(b3, b2))), 0.084, 1e-12, "a1∧¬(b3∨b2)")
	approx(t, ev.Prob(lineage.AndNot(a1, b2)), 0.28, 1e-12, "a1∧¬b2")
	approx(t, ev.Prob(a2), 0.80, 1e-12, "a2")

	if ev.ShannonSteps() != 0 {
		t.Errorf("read-once formulas must not trigger Shannon expansion, got %d steps",
			ev.ShannonSteps())
	}
}

func TestIndependentDecomposition(t *testing.T) {
	probs := Probs{
		{Rel: "x", ID: 1}: 0.5, {Rel: "x", ID: 2}: 0.5,
		{Rel: "y", ID: 1}: 0.25, {Rel: "y", ID: 2}: 0.75,
	}
	ev := NewEvaluator(probs)
	e := lineage.And(
		lineage.Or(v("x", 1), v("x", 2)),
		lineage.Or(v("y", 1), v("y", 2)),
	)
	// (1-(0.5·0.5)) · (1-(0.75·0.25)) = 0.75 · 0.8125
	approx(t, ev.Prob(e), 0.75*0.8125, 1e-12, "independent AND of ORs")
	if ev.ShannonSteps() != 0 {
		t.Errorf("variable-disjoint children must not trigger Shannon, got %d",
			ev.ShannonSteps())
	}
}

func TestSharedVariableNeedsShannon(t *testing.T) {
	// (x ∧ y) ∨ (x ∧ z): not read-once in this form, needs expansion on x.
	probs := Probs{
		{Rel: "v", ID: 1}: 0.5, {Rel: "v", ID: 2}: 0.5, {Rel: "v", ID: 3}: 0.5,
	}
	x, y, z := v("v", 1), v("v", 2), v("v", 3)
	e := lineage.Or(lineage.And(x, y), lineage.And(x, z))
	ev := NewEvaluator(probs)
	got := ev.Prob(e)
	want := Enumerate(e, probs) // 0.5 * (1 - 0.25) = 0.375
	approx(t, got, want, 1e-12, "shared-variable Or")
	approx(t, got, 0.375, 1e-12, "shared-variable Or closed form")
	if ev.ShannonSteps() == 0 {
		t.Errorf("expected at least one Shannon step")
	}
}

func TestXorStyleFormula(t *testing.T) {
	// (x ∧ ¬y) ∨ (¬x ∧ y) with p(x)=0.3, p(y)=0.6 → 0.3·0.4 + 0.7·0.6 = 0.54
	probs := Probs{{Rel: "v", ID: 1}: 0.3, {Rel: "v", ID: 2}: 0.6}
	x, y := v("v", 1), v("v", 2)
	e := lineage.Or(
		lineage.And(x, lineage.Not(y)),
		lineage.And(lineage.Not(x), y),
	)
	ev := NewEvaluator(probs)
	approx(t, ev.Prob(e), 0.54, 1e-12, "xor")
}

func TestEvaluatorAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		e := randExpr(rng, 3)
		probs := make(Probs)
		for _, vr := range e.Vars() {
			probs[vr] = rng.Float64()
		}
		ev := NewEvaluator(probs)
		got := ev.Prob(e)
		want := Enumerate(e, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Prob(%v) = %g, enumeration = %g", trial, e, got, want)
		}
		if got < -1e-12 || got > 1+1e-12 {
			t.Fatalf("trial %d: probability out of range: %g", trial, got)
		}
	}
}

func TestMemoizationAcrossCalls(t *testing.T) {
	probs := Probs{{Rel: "v", ID: 1}: 0.5, {Rel: "v", ID: 2}: 0.5, {Rel: "v", ID: 3}: 0.5}
	x, y, z := v("v", 1), v("v", 2), v("v", 3)
	e := lineage.Or(lineage.And(x, y), lineage.And(x, z), lineage.And(y, z))
	ev := NewEvaluator(probs)
	p1 := ev.Prob(e)
	steps := ev.ShannonSteps()
	p2 := ev.Prob(e)
	if p1 != p2 {
		t.Errorf("memoized result differs: %g vs %g", p1, p2)
	}
	if ev.ShannonSteps() != steps {
		t.Errorf("second call must hit the memo (steps %d → %d)", steps, ev.ShannonSteps())
	}
}

func TestPanicsOnMissingProbability(t *testing.T) {
	ev := NewEvaluator(Probs{})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on unknown base event")
		}
	}()
	ev.Prob(v("a", 1))
}

func TestPanicsOnNil(t *testing.T) {
	ev := NewEvaluator(Probs{})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on nil lineage")
		}
	}()
	ev.Prob(nil)
}

func TestMonteCarloConverges(t *testing.T) {
	probs := Probs{{Rel: "v", ID: 1}: 0.3, {Rel: "v", ID: 2}: 0.6}
	x, y := v("v", 1), v("v", 2)
	e := lineage.Or(x, y) // 1 - 0.7*0.4 = 0.72
	got := MonteCarlo(e, probs, 200000, 1)
	approx(t, got, 0.72, 0.01, "MonteCarlo")
}

func TestProbsClone(t *testing.T) {
	p := Probs{{Rel: "a", ID: 1}: 0.5}
	q := p.Clone()
	q[lineage.Var{Rel: "a", ID: 1}] = 0.9
	if p[lineage.Var{Rel: "a", ID: 1}] != 0.5 {
		t.Errorf("Clone must not alias")
	}
}

func TestEnumerateZeroVars(t *testing.T) {
	approx(t, Enumerate(lineage.True(), Probs{}), 1, 0, "enumerate ⊤")
	approx(t, Enumerate(lineage.False(), Probs{}), 0, 0, "enumerate ⊥")
}

func randExpr(rng *rand.Rand, depth int) *lineage.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return lineage.NewVar("v", 1+rng.Intn(5))
	}
	switch rng.Intn(3) {
	case 0:
		return lineage.Not(randExpr(rng, depth-1))
	case 1:
		return lineage.And(randExpr(rng, depth-1), randExpr(rng, depth-1), randExpr(rng, depth-1))
	default:
		return lineage.Or(randExpr(rng, depth-1), randExpr(rng, depth-1))
	}
}

// TestMonteCarloRejectsNonPositiveN is the regression test for the NaN
// bug: hits/n with n == 0 silently returned NaN (and a negative n
// returned 0 without sampling). Both now panic with a clear message, per
// the package's contract style for programmer errors.
func TestMonteCarloRejectsNonPositiveN(t *testing.T) {
	e := lineage.NewVar("a", 1)
	probs := Probs{lineage.Var{Rel: "a", ID: 1}: 0.5}
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("MonteCarlo(n=%d) must panic", n)
					return
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "positive sample count") {
					t.Errorf("MonteCarlo(n=%d) panic message %q lacks the contract text", n, msg)
				}
			}()
			MonteCarlo(e, probs, n, 1)
		}()
	}
}
