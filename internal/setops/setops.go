// Package setops implements temporal-probabilistic set operations —
// union, intersection and difference — as instances of the generalized
// lineage-aware temporal window framework, following the companion paper
// the authors build on (Papaioannou, Theobald, Böhlen: "Supporting Set
// Operations in Temporal-Probabilistic Databases", ICDE 2018, reference
// [1] of the reproduced paper).
//
// Set operations are TP joins whose θ is equality on *all* non-temporal
// attributes (the two relations must be union-compatible):
//
//	r ∪Tp s : overlapping windows → λr ∨ λs,
//	          unmatched windows of either side → that side's lineage;
//	r ∩Tp s : overlapping windows → λr ∧ λs;
//	r −Tp s : the TP anti join with full-fact equality —
//	          unmatched → λr, negating → λr ∧ ¬λs.
//
// Under the sequenced-TP constraint at most one tuple per fact is valid
// at any time point on each side, so the window sets are disjoint per
// fact and the results are valid sequenced-TP relations.
package setops

import (
	"fmt"

	"tpjoin/internal/core"
	"tpjoin/internal/lineage"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
	"tpjoin/internal/window"
)

// allTheta builds the full-fact equality condition for two
// union-compatible relations.
func allTheta(r, s *tp.Relation) (tp.EquiTheta, error) {
	if r.Arity() != s.Arity() {
		return tp.EquiTheta{}, fmt.Errorf(
			"setops: relations %s(%d attrs) and %s(%d attrs) are not union-compatible",
			r.Name, r.Arity(), s.Name, s.Arity())
	}
	eq := tp.EquiTheta{RCols: make([]int, r.Arity()), SCols: make([]int, s.Arity())}
	for i := range eq.RCols {
		eq.RCols[i] = i
		eq.SCols[i] = i
	}
	return eq, nil
}

// Union computes r ∪Tp s: at each time point, a fact is true when it is
// true in either input.
func Union(r, s *tp.Relation) (*tp.Relation, error) {
	theta, err := allTheta(r, s)
	if err != nil {
		return nil, err
	}
	out := &tp.Relation{
		Name:  fmt.Sprintf("%s_union_%s", r.Name, s.Name),
		Attrs: append([]string(nil), r.Attrs...),
		Probs: tp.MergeProbs(r, s),
	}
	ev := prob.NewEvaluator(out.Probs)

	// Forward pass: overlapping windows (λr ∨ λs) and r's unmatched (λr).
	fwd := core.LAWAU(core.OverlapJoin(r, s, theta))
	for {
		w, ok := fwd.Next()
		if !ok {
			break
		}
		switch w.Class() {
		case window.Overlapping:
			lam := lineage.Or(w.Lr, w.Ls)
			out.AppendDerived(w.Fr, lam, w.T, ev.Prob(lam))
		case window.Unmatched:
			out.AppendDerived(w.Fr, w.Lr, w.T, ev.Prob(w.Lr))
		}
	}
	// Backward pass: s's unmatched windows (λs).
	bwd := core.LAWAU(core.OverlapJoin(s, r, tp.Swap(theta)))
	for {
		w, ok := bwd.Next()
		if !ok {
			break
		}
		if w.Class() == window.Unmatched {
			out.AppendDerived(w.Fr, w.Lr, w.T, ev.Prob(w.Lr))
		}
	}
	return out, nil
}

// Intersect computes r ∩Tp s: a fact is true when it is true in both
// inputs.
func Intersect(r, s *tp.Relation) (*tp.Relation, error) {
	theta, err := allTheta(r, s)
	if err != nil {
		return nil, err
	}
	out := &tp.Relation{
		Name:  fmt.Sprintf("%s_intersect_%s", r.Name, s.Name),
		Attrs: append([]string(nil), r.Attrs...),
		Probs: tp.MergeProbs(r, s),
	}
	ev := prob.NewEvaluator(out.Probs)
	it := core.OverlapJoin(r, s, theta)
	for {
		w, ok := it.Next()
		if !ok {
			return out, nil
		}
		if w.Class() != window.Overlapping {
			continue
		}
		lam := lineage.And(w.Lr, w.Ls)
		out.AppendDerived(w.Fr, lam, w.T, ev.Prob(lam))
	}
}

// Difference computes r −Tp s: at each time point the probability that
// the fact is true in r and not true in s. It is exactly the TP anti join
// with full-fact equality.
func Difference(r, s *tp.Relation) (*tp.Relation, error) {
	theta, err := allTheta(r, s)
	if err != nil {
		return nil, err
	}
	out := core.AntiJoin(r, s, theta)
	out.Name = fmt.Sprintf("%s_minus_%s", r.Name, s.Name)
	return out, nil
}
