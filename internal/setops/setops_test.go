package setops

import (
	"math"
	"math/rand"
	"testing"

	"tpjoin/internal/interval"
	"tpjoin/internal/prob"
	"tpjoin/internal/tp"
)

// pointwiseRef computes the reference result of a set operation at every
// time point: for each fact and t, the probabilities pr (valid in r) and
// ps (valid in s) combine as union 1-(1-pr)(1-ps), intersection pr·ps, or
// difference pr·(1-ps); a side that is not valid contributes "absent".
func pointwiseRef(op string, r, s *tp.Relation) map[string]map[interval.Time]float64 {
	type sideVal struct {
		p     float64
		valid bool
	}
	collect := func(rel *tp.Relation) map[string]map[interval.Time]sideVal {
		ev := prob.NewEvaluator(rel.Probs)
		out := make(map[string]map[interval.Time]sideVal)
		for _, t := range rel.Tuples {
			k := t.Fact.Key()
			if out[k] == nil {
				out[k] = make(map[interval.Time]sideVal)
			}
			p := ev.Prob(t.Lineage)
			for tt := t.T.Start; tt < t.T.End; tt++ {
				out[k][tt] = sideVal{p: p, valid: true}
			}
		}
		return out
	}
	rv, sv := collect(r), collect(s)
	out := make(map[string]map[interval.Time]float64)
	add := func(k string, t interval.Time, p float64) {
		if out[k] == nil {
			out[k] = make(map[interval.Time]float64)
		}
		out[k][t] = p
	}
	keys := make(map[string]bool)
	for k := range rv {
		keys[k] = true
	}
	for k := range sv {
		keys[k] = true
	}
	for k := range keys {
		times := make(map[interval.Time]bool)
		for t := range rv[k] {
			times[t] = true
		}
		for t := range sv[k] {
			times[t] = true
		}
		for t := range times {
			a, b := rv[k][t], sv[k][t]
			switch op {
			case "union":
				switch {
				case a.valid && b.valid:
					add(k, t, 1-(1-a.p)*(1-b.p))
				case a.valid:
					add(k, t, a.p)
				default:
					add(k, t, b.p)
				}
			case "intersect":
				if a.valid && b.valid {
					add(k, t, a.p*b.p)
				}
			case "difference":
				switch {
				case a.valid && b.valid:
					add(k, t, a.p*(1-b.p))
				case a.valid:
					add(k, t, a.p)
				}
			}
		}
	}
	return out
}

func expandProbs(t *testing.T, rel *tp.Relation) map[string]map[interval.Time]float64 {
	t.Helper()
	pm, err := tp.Expand(rel)
	if err != nil {
		t.Fatalf("result not sequenced-valid: %v\n%v", err, rel)
	}
	out := make(map[string]map[interval.Time]float64)
	for k, times := range pm {
		out[k] = make(map[interval.Time]float64)
		for tt, row := range times {
			out[k][tt] = row.Prob
		}
	}
	return out
}

func equalMaps(t *testing.T, got, want map[string]map[interval.Time]float64, label string) {
	t.Helper()
	for k, times := range want {
		for tt, p := range times {
			g, ok := got[k][tt]
			if !ok {
				t.Fatalf("%s: missing (%q, %d)", label, k, tt)
			}
			if math.Abs(g-p) > 1e-9 {
				t.Fatalf("%s: (%q, %d): got %g want %g", label, k, tt, g, p)
			}
		}
	}
	for k, times := range got {
		for tt := range times {
			if _, ok := want[k][tt]; !ok {
				t.Fatalf("%s: extra (%q, %d)", label, k, tt)
			}
		}
	}
}

func demo() (*tp.Relation, *tp.Relation) {
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("x"), interval.New(0, 6), 0.8)
	r.Append(tp.Strings("y"), interval.New(2, 5), 0.5)
	s := tp.NewRelation("s", "K")
	s.Append(tp.Strings("x"), interval.New(3, 9), 0.4)
	s.Append(tp.Strings("z"), interval.New(0, 4), 0.9)
	return r, s
}

func TestUnionDemo(t *testing.T) {
	r, s := demo()
	u, err := Union(r, s)
	if err != nil {
		t.Fatal(err)
	}
	equalMaps(t, expandProbs(t, u), pointwiseRef("union", r, s), "union")
	// x over [3,6) must have lineage r1 ∨ s1 with prob 1-0.2*0.6 = 0.88.
	found := false
	for _, tu := range u.Tuples {
		if tu.Fact.String() == "x" && tu.T.Equal(interval.New(3, 6)) {
			found = true
			if math.Abs(tu.Prob-0.88) > 1e-9 {
				t.Errorf("union overlap prob = %g, want 0.88", tu.Prob)
			}
			if tu.Lineage.String() != "r1 ∨ s1" {
				t.Errorf("union lineage = %v, want r1 ∨ s1", tu.Lineage)
			}
		}
	}
	if !found {
		t.Errorf("missing overlap tuple in union: %v", u)
	}
}

func TestIntersectDemo(t *testing.T) {
	r, s := demo()
	x, err := Intersect(r, s)
	if err != nil {
		t.Fatal(err)
	}
	equalMaps(t, expandProbs(t, x), pointwiseRef("intersect", r, s), "intersect")
	if x.Len() != 1 {
		t.Fatalf("intersection must have exactly the x overlap, got %v", x)
	}
	if got := x.Tuples[0].Prob; math.Abs(got-0.32) > 1e-9 {
		t.Errorf("intersect prob = %g, want 0.32", got)
	}
}

func TestDifferenceDemo(t *testing.T) {
	r, s := demo()
	d, err := Difference(r, s)
	if err != nil {
		t.Fatal(err)
	}
	equalMaps(t, expandProbs(t, d), pointwiseRef("difference", r, s), "difference")
	// x on [3,6): 0.8 * 0.6 = 0.48; x on [0,3): 0.8; y untouched 0.5.
	want := map[string]float64{"[0,3)": 0.8, "[3,6)": 0.48, "[2,5)": 0.5}
	for _, tu := range d.Tuples {
		if w, ok := want[tu.T.String()]; ok {
			if math.Abs(tu.Prob-w) > 1e-9 {
				t.Errorf("difference %v prob = %g, want %g", tu.T, tu.Prob, w)
			}
		}
	}
}

func TestUnionCompatibility(t *testing.T) {
	r := tp.NewRelation("r", "A", "B")
	s := tp.NewRelation("s", "A")
	if _, err := Union(r, s); err == nil {
		t.Errorf("arity mismatch must error")
	}
	if _, err := Intersect(r, s); err == nil {
		t.Errorf("arity mismatch must error")
	}
	if _, err := Difference(r, s); err == nil {
		t.Errorf("arity mismatch must error")
	}
}

func TestSetOpsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		r := randRelation(rng, "r")
		s := randRelation(rng, "s")
		u, err := Union(r, s)
		if err != nil {
			t.Fatal(err)
		}
		equalMaps(t, expandProbs(t, u), pointwiseRef("union", r, s), "union")
		x, err := Intersect(r, s)
		if err != nil {
			t.Fatal(err)
		}
		equalMaps(t, expandProbs(t, x), pointwiseRef("intersect", r, s), "intersect")
		d, err := Difference(r, s)
		if err != nil {
			t.Fatal(err)
		}
		equalMaps(t, expandProbs(t, d), pointwiseRef("difference", r, s), "difference")
	}
}

func TestSetOpsIdentities(t *testing.T) {
	// r − r is nonempty in the probabilistic sense? No: every fact/time of
	// r matches itself, giving λ ∧ ¬λ = ⊥, probability 0. The companion
	// paper keeps such tuples (they are valid windows); check prob 0.
	r, _ := demo()
	d, err := Difference(r, r.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range d.Tuples {
		if tu.Prob != 0 {
			t.Errorf("r − r must have probability 0 everywhere, got %v", tu)
		}
	}
	// r ∪ r: 1-(1-p)² pointwise? No — both sides share base events, so
	// λ ∨ λ = λ and the probability stays p.
	u, err := Union(r, r.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range u.Tuples {
		if tu.Lineage.Kind().String() == "or" {
			// λr ∨ λr must have been simplified to λr by construction.
			t.Errorf("self-union lineage not simplified: %v", tu.Lineage)
		}
	}
}

func randRelation(rng *rand.Rand, name string) *tp.Relation {
	keys := []string{"x", "y", "z"}
	rel := tp.NewRelation(name, "K")
	type span struct{ s, e interval.Time }
	used := make(map[string][]span)
	n := rng.Intn(7)
	for i := 0; i < n; i++ {
		k := keys[rng.Intn(len(keys))]
		st := interval.Time(rng.Intn(15))
		e := st + 1 + interval.Time(rng.Intn(6))
		ok := true
		for _, u := range used[k] {
			if st < u.e && u.s < e {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		used[k] = append(used[k], span{st, e})
		rel.Append(tp.Strings(k), interval.New(st, e), 0.1+0.8*rng.Float64())
	}
	return rel
}
