package setops_test

import (
	"fmt"

	"tpjoin/internal/interval"
	"tpjoin/internal/setops"
	"tpjoin/internal/tp"
)

// Two sensors report the same fact over overlapping intervals; the TP
// union holds when either report does.
func ExampleUnion() {
	r := tp.NewRelation("r", "Service")
	r.Append(tp.Strings("api"), interval.New(0, 6), 0.3)
	s := tp.NewRelation("s", "Service")
	s.Append(tp.Strings("api"), interval.New(4, 10), 0.25)

	u, _ := setops.Union(r, s)
	for _, t := range u.Tuples {
		fmt.Println(t)
	}
	// Output:
	// ('api', r1, [0,4), 0.3)
	// ('api', r1 ∨ s1, [4,6), 0.475)
	// ('api', s1, [6,10), 0.25)
}

// The TP difference is the anti join with full-fact equality: the
// probability the fact holds in r and not in s, per time point.
func ExampleDifference() {
	r := tp.NewRelation("r", "Service")
	r.Append(tp.Strings("api"), interval.New(0, 6), 0.3)
	s := tp.NewRelation("s", "Service")
	s.Append(tp.Strings("api"), interval.New(4, 10), 0.25)

	d, _ := setops.Difference(r, s)
	for _, t := range d.Tuples {
		fmt.Println(t)
	}
	// Output:
	// ('api', r1, [0,4), 0.3)
	// ('api', r1 ∧ ¬s1, [4,6), 0.225)
}
