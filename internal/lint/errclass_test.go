package lint

import (
	"reflect"
	"testing"

	"tpjoin/internal/server"
)

func TestErrClassFixture(t *testing.T) {
	testFixture(t, []*Analyzer{ErrClass}, "errclass", "fixture/errclass")
}

// TestErrClassVocabularySync pins the analyzer's canonical set to the
// wire constants in internal/server/proto.go: the two lists cannot
// drift without failing tier-1 tests. Order matters — both sides list
// success ("") first, then the classes in severity-of-surprise order.
func TestErrClassVocabularySync(t *testing.T) {
	fromProto := []string{
		"",
		server.ErrClassOverloaded,
		server.ErrClassBudget,
		server.ErrClassTimeout,
		server.ErrClassCanceled,
		server.ErrClassUsage,
		server.ErrClassPanic,
		server.ErrClassError,
	}
	if !reflect.DeepEqual(CanonicalErrClasses, fromProto) {
		t.Fatalf("lint.CanonicalErrClasses = %q, but internal/server/proto.go declares %q — update both sides together",
			CanonicalErrClasses, fromProto)
	}
}
