package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// EnumSync enforces the strategy-enum synchronization contract
// established by PR 2 (NumStrategies sizes the per-strategy metrics
// arrays, with a loud-failure enum-sync test) and stressed every time a
// strategy was added (PNJ in PR 2, PTA in PR 5): code indexed or sized
// by a Strategy enum must stay mechanically in sync with the enum.
//
// Two rules:
//
//  1. A `switch` over a Strategy-typed value must either cover every
//     declared constant of the enum or carry an explicit default clause
//     — adding StrategyXYZ must not leave silent fallthrough holes.
//  2. An array type that is indexed by (or keyed with) Strategy
//     constants must take its length from the enum's NumStrategies-style
//     constant, never from an integer literal that silently goes stale.
var EnumSync = &Analyzer{
	Name: "enumsync",
	Doc: "Strategy switches must be exhaustive (or default); strategy-sized arrays must use the NumStrategies constant\n\n" +
		"Adding an enum member must either be compile-checked (array bounds\n" +
		"via NumStrategies) or flagged here (non-exhaustive switch without\n" +
		"default).",
	Run: runEnumSync,
}

// isStrategyType returns the named enum type when t is a (pointer to a)
// named type called Strategy.
func strategyType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Strategy" {
		return nil
	}
	return named
}

// enumMembers lists the constants of the enum declared in its defining
// package (NumStrategies-style untyped counters are excluded because
// their type is not the enum).
func enumMembers(named *types.Named) []*types.Const {
	var members []*types.Const
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Val().String() < members[j].Val().String() })
	return members
}

func runEnumSync(pass *Pass) error {
	// Pass 1: find array types that are strategy-indexed or
	// strategy-keyed anywhere in the package.
	strategyArrays := collectStrategyArrays(pass)

	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			checkStrategySwitch(pass, n)
		case *ast.ArrayType:
			checkArrayLen(pass, n, strategyArrays)
		}
		return true
	})
	return nil
}

func checkStrategySwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named := strategyType(pass.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: the enum may grow safely
		}
		for _, e := range clause.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.String()] = true
			}
		}
	}
	var missing []string
	for _, m := range enumMembers(named) {
		if !covered[m.Val().String()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Pos(), "switch over %s is not exhaustive and has no default: missing %s — a new strategy would fall through silently",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// collectStrategyArrays returns the array types the package indexes by a
// Strategy-typed expression.
func collectStrategyArrays(pass *Pass) []*types.Array {
	var arrays []*types.Array
	seen := func(a *types.Array) bool {
		for _, b := range arrays {
			if types.Identical(a, b) {
				return true
			}
		}
		return false
	}
	record := func(t types.Type) {
		if t == nil {
			return
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if arr, ok := t.Underlying().(*types.Array); ok && !seen(arr) {
			arrays = append(arrays, arr)
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if strategyType(pass.TypeOf(n.Index)) != nil {
				record(pass.TypeOf(n.X))
			}
		case *ast.CompositeLit:
			// [N]T{StrategyNJ: ..., StrategyTA: ...} — keyed by the enum.
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok && strategyType(pass.TypeOf(kv.Key)) != nil {
					record(pass.TypeOf(n))
					break
				}
			}
		}
		return true
	})
	return arrays
}

// checkArrayLen flags literal-sized array types that the package indexes
// by Strategy, and literal-sized composite arrays keyed by Strategy
// constants.
func checkArrayLen(pass *Pass, at *ast.ArrayType, strategyArrays []*types.Array) {
	lit, ok := at.Len.(*ast.BasicLit)
	if !ok {
		return
	}
	t := pass.TypeOf(at)
	if t == nil {
		return
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return
	}
	for _, sa := range strategyArrays {
		if types.Identical(arr, sa) {
			pass.Reportf(at.Pos(), "array indexed by Strategy is sized with the literal %s — size it with the enum's NumStrategies-style constant so a new strategy grows it automatically",
				lit.Value)
			return
		}
	}
}
