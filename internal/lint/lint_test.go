package lint

import (
	"go/token"
	"testing"
)

// TestAnalyzerMetadata: every analyzer must carry the metadata the
// drivers and the suppression machinery rely on.
func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || !token.IsIdentifier(a.Name) {
			t.Errorf("analyzer name %q is not a valid identifier", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
		if a.Name == "tplint" {
			t.Errorf("analyzer name %q collides with the suppression machinery's pseudo-analyzer", a.Name)
		}
	}
	if len(seen) != 5 {
		t.Errorf("expected the 5-analyzer suite, got %d", len(seen))
	}
}

// TestSuppressionHonored: a well-formed //tplint:ignore with a reason
// silences the finding on the next line and is counted as used.
func TestSuppressionHonored(t *testing.T) {
	pkg := loadFixture(t, "suppress", "fixture/internal/engine/supfix")
	diags := RunAnalyzers(Analyzers(), []*Package{pkg})
	if len(diags) != 0 {
		t.Fatalf("suppressed fixture should be clean, got:\n%v", diagsByMessage(diags))
	}
}

// TestSuppressionMisuse: a reason-less ignore, an unknown analyzer name
// and a stale ignore are each their own diagnostic — and a malformed
// ignore does not suppress the violation it sits on.
func TestSuppressionMisuse(t *testing.T) {
	pkg := loadFixture(t, "suppressbad", "fixture/internal/engine/supbad")
	rendered := diagsByMessage(RunAnalyzers(Analyzers(), []*Package{pkg}))

	for _, want := range []string{
		// missingReason: the malformed ignore is reported...
		"tplint: tplint:ignore ctxcheck needs a written reason",
		// ...and does not suppress the drain-loop finding under it.
		"ctxcheck: drain loop has no cancellation checkpoint",
		// unknownAnalyzer names no real analyzer.
		"tplint: tplint:ignore needs a known analyzer name",
		// unusedSuppression covers nothing.
		"tplint: tplint:ignore ctxcheck suppresses nothing on this or the next line",
	} {
		if !containsDiag(rendered, want) {
			t.Errorf("missing diagnostic containing %q in:\n%v", want, rendered)
		}
	}
	// Exactly: 2 malformed + 1 unused + 2 unsuppressed ctxcheck findings
	// (missingReason's and unknownAnalyzer's loops both violate).
	if len(rendered) != 5 {
		t.Errorf("expected 5 diagnostics, got %d:\n%v", len(rendered), rendered)
	}
}
