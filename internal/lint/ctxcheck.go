package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CtxCheck enforces the cancellation-checkpoint contract established by
// PR 3 (cooperative mid-Open cancellation) and extended by PR 7 (memory
// budgets charged at the same checkpoints): inside the execution
// packages (internal/core, internal/align, internal/par,
// internal/engine), any loop that drains tuples, batches or fragments in
// a function that has the query context in scope must observe that
// context — directly (ctx.Err(), ctx.Done(), a select on it), by passing
// it to a callee, or through a budget checkpoint ((*mem.Gauge).Charge).
// A drain loop that never touches the context is a blocking hang under
// per-query timeouts, admission-control cancellation and graceful drain.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc: "drain loops in the execution packages must reach a cancellation checkpoint\n\n" +
		"A for/range loop that pulls tuples (Next/NextBatch) or ranges over\n" +
		"relation tuples, inside a function where a context.Context is in\n" +
		"scope, must reference the context (ctx.Err, ctx.Done, passing it on)\n" +
		"or hit a budget checkpoint (Gauge.Charge) somewhere in its body.",
	Run: runCtxCheck,
}

// ctxScopeRe names the packages the checkpoint contract covers. Fixture
// packages mimic the layout (".../internal/core/...") to opt in.
var ctxScopeRe = regexp.MustCompile(`internal/(core|align|par|engine)(/|$)`)

func runCtxCheck(pass *Pass) error {
	if !ctxScopeRe.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasCtxInScope(pass, fd) {
				continue
			}
			checkLoops(pass, fd.Body)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// hasCtxInScope reports whether fd declares (as parameter or local,
// including nested function literals' parameters) a value of type
// context.Context. Functions that never see a context cannot checkpoint
// one; their blocking behavior is their caller's problem — the contract
// binds the functions the context was threaded into.
func hasCtxInScope(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Defs[id]; obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}

// checkLoops walks body and reports drain loops without a checkpoint.
func checkLoops(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		var isDrain bool
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
			isDrain = bodyDrains(loopBody)
		case *ast.RangeStmt:
			loopBody = loop.Body
			isDrain = bodyDrains(loopBody) || rangesOverTuples(loop.X)
		default:
			return true
		}
		if isDrain && !bodyCheckpoints(pass, loopBody) {
			pass.Reportf(n.Pos(), "drain loop has no cancellation checkpoint: reference the query context (ctx.Err/ctx.Done/pass it to a callee) or charge a budget gauge inside the loop")
		}
		return true
	})
}

// rangesOverTuples reports whether x is a relation-tuple range target
// (any expression mentioning a .Tuples selector).
func rangesOverTuples(x ast.Expr) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Tuples" {
			found = true
		}
		return !found
	})
	return found
}

// drainCallNames are the method/function names whose presence makes a
// loop a tuple/batch/fragment drain.
var drainCallNames = map[string]bool{
	"Next": true, "NextBatch": true, "Drain": true, "DrainBatched": true,
}

// bodyDrains reports whether the loop body pulls from an iterator.
func bodyDrains(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if drainCallNames[fn.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if drainCallNames[fn.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyCheckpoints reports whether the loop body observes the query
// context or a budget gauge: any expression of type context.Context, or
// a call to a Charge method on a mem.Gauge-shaped receiver.
func bodyCheckpoints(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			// A use of any context-typed value counts: ctx.Err(), a select
			// on ctx.Done(), or threading ctx into a callee that checks.
			if obj := pass.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.SelectorExpr:
			// Field access to a stored context (e.g. j.ctx bound by
			// BindContext) counts the same as a parameter use.
			if isContextType(pass.TypeOf(n)) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Charge" {
				if isGaugeType(pass.TypeOf(sel.X)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isGaugeType reports whether t is a (pointer to a) named type called
// Gauge — the budget checkpoint receiver (internal/mem.Gauge; fixtures
// declare their own).
func isGaugeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Gauge"
}
