package lint

import "testing"

func TestCacheKeyFixture(t *testing.T) {
	testFixture(t, []*Analyzer{CacheKey}, "cachekey", "fixture/cachekey")
}
