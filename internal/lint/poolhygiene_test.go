package lint

import "testing"

func TestPoolHygieneFixture(t *testing.T) {
	testFixture(t, []*Analyzer{PoolHygiene}, "poolhygiene", "fixture/poolhygiene")
}
