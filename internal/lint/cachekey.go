package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CacheKey enforces the relation-cache staleness contract established by
// PR 2 (core relCache), PR 4 (stats.Cache) and PR 8 (plan.Cache): any
// cache keyed on relation state must snapshot and re-check BOTH the
// relation's length (Len() / len(rel.Tuples)) and its mutation counter
// (Version()). Length alone misses in-place mutations at equal length
// (SortByStart, element updates) — the exact PR 8-style stale-plan bug;
// Version alone misses nothing today but the pair is the documented
// invariant and the cheap double-check keeps it that way.
//
// Two rules:
//
//  1. A function that reads a relation's Version() must also read a
//     relation length in the same function (snapshot and check sides both
//     satisfy this by construction when written correctly).
//  2. A comparison of a relation length against stored state (a struct
//     field or captured variable — not a literal, not another live
//     relation) in a function that never reads Version() is a
//     length-only staleness check.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc: "relation-derived caches must validate on the (length, Version) pair\n\n" +
		"Reading rel.Version() without rel.Len()/len(rel.Tuples) nearby, or\n" +
		"comparing a relation length against cached state without consulting\n" +
		"Version(), is a stale-cache bug waiting for an equal-length mutation.",
	Run: runCacheKey,
}

func runCacheKey(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The Relation type's own method set defines Version/Len — the
			// contract binds their callers, not their bodies.
			if isRelationMethod(pass, fd) {
				continue
			}
			checkCacheKeys(pass, fd)
		}
	}
	return nil
}

// isRelationType reports whether t is a (pointer to a) named struct type
// called Relation — tp.Relation in the repo, mini stand-ins in fixtures.
func isRelationType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Relation"
}

func isRelationMethod(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isRelationType(pass.TypeOf(fd.Recv.List[0].Type))
}

// relVersionCall matches `x.Version()` where x is a Relation.
func relVersionCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Version" && isRelationType(pass.TypeOf(sel.X))
}

// relLenExpr matches a relation length read: `x.Len()` or
// `len(x.Tuples)` with x a Relation.
func relLenExpr(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Len" {
		return isRelationType(pass.TypeOf(sel.X))
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
		if sel, ok := call.Args[0].(*ast.SelectorExpr); ok && sel.Sel.Name == "Tuples" {
			return isRelationType(pass.TypeOf(sel.X))
		}
	}
	return false
}

func checkCacheKeys(pass *Pass, fd *ast.FuncDecl) {
	var versionCalls []token.Pos
	var lenReads int
	var lengthOnlyCompares []token.Pos

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if relVersionCall(pass, n) {
				versionCalls = append(versionCalls, n.Pos())
			}
			if relLenExpr(pass, n) {
				lenReads++
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			var lenSide, otherSide ast.Expr
			if relLenExpr(pass, n.X) {
				lenSide, otherSide = n.X, n.Y
			} else if relLenExpr(pass, n.Y) {
				lenSide, otherSide = n.Y, n.X
			}
			if lenSide == nil {
				return true
			}
			// Comparing against a literal (emptiness checks) or another
			// live relation (size heuristics) is not a staleness check;
			// comparing against stored state is.
			if isStoredState(pass, otherSide) {
				lengthOnlyCompares = append(lengthOnlyCompares, n.Pos())
			}
		}
		return true
	})

	if len(versionCalls) > 0 && lenReads == 0 {
		for _, pos := range versionCalls {
			pass.Reportf(pos, "Version() read without a companion length read (Len()/len(rel.Tuples)) — relation caches must snapshot and check the (length, Version) pair")
		}
	}
	if len(versionCalls) == 0 {
		for _, pos := range lengthOnlyCompares {
			pass.Reportf(pos, "relation length compared against cached state without checking Version() — an equal-length mutation (sort, in-place update) would pass this staleness check")
		}
	}
}

// isStoredState reports whether e looks like cached/snapshot state: a
// selector on a non-relation value (e.g. entry.len) or a plain variable
// of integer type that is not itself a fresh relation read. Literals and
// relation-derived reads are not stored state.
func isStoredState(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return !isRelationType(pass.TypeOf(e.X))
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			return false
		}
		// A constant is a literal threshold, not cached state.
		_, isConst := obj.(*types.Const)
		return !isConst
	default:
		return false
	}
}
