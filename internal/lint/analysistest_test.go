package lint

// This file is the suite's fixture runner: a minimal reimplementation
// of golang.org/x/tools/go/analysis/analysistest (the toolchain image
// has no module cache, so the upstream harness is unavailable) over the
// same testdata/src layout and `// want "regex"` convention.
//
// Each fixture directory under testdata/src is one package of
// deliberately violating and conforming code. A `// want "pattern"`
// comment expects exactly one diagnostic on its line whose rendered
// "analyzer: message" matches the pattern; multiple patterns on one
// line expect that many diagnostics. Diagnostics with no matching want,
// and wants with no matching diagnostic, fail the test.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across every fixture test: the source
// importer's std-library type-checking (sync, context, errors) is paid
// once per `go test` process instead of once per fixture.
var (
	fixtureLoader     *Loader
	fixtureLoaderOnce sync.Once
)

func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	fixtureLoaderOnce.Do(func() { fixtureLoader = NewLoader() })
	pkg, err := fixtureLoader.LoadDir(importPath, filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// testFixture runs analyzers over testdata/src/<dir> (type-checked as
// importPath — ctxcheck fixtures opt into scope through it) and matches
// the diagnostics against the fixture's want comments.
func testFixture(t *testing.T, analyzers []*Analyzer, dir, importPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, importPath)
	diags := RunAnalyzers(analyzers, []*Package{pkg})
	wants := collectWants(t, pkg)

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		rendered := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(rendered) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, rendered)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: no diagnostic matching want %q", key, w.re)
			}
		}
	}
}

type wantExpectation struct {
	re   *regexp.Regexp
	used bool
}

// wantRe matches a `// want "p1" "p2"` comment; the quoted patterns are
// extracted by quotedRe.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// collectWants parses every fixture file's want comments, keyed by
// "filename:line".
func collectWants(t *testing.T, pkg *Package) map[string][]*wantExpectation {
	t.Helper()
	wants := make(map[string][]*wantExpectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: want pattern %q: %v", key, pattern, err)
					}
					wants[key] = append(wants[key], &wantExpectation{re: re})
				}
			}
		}
	}
	return wants
}

// diagsByMessage renders diagnostics for the direct-assertion tests
// (suppression machinery) that check output without want comments.
func diagsByMessage(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d: %s: %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message))
	}
	return out
}

// containsDiag reports whether some rendered diagnostic contains substr.
func containsDiag(diags []string, substr string) bool {
	for _, d := range diags {
		if strings.Contains(d, substr) {
			return true
		}
	}
	return false
}
