// Package errfix exercises the errclass analyzer: every syntactic
// channel an error-class string travels (field assignment, composite
// literal, comparison, switch case, classifier return) must carry a
// member of the canonical vocabulary.
package errfix

import "errors"

type Response struct {
	ErrClass string
}

type QueryRecord struct {
	ErrClass string
}

// Canonical values through every channel: conforming.
func setOK(r *Response) { r.ErrClass = "timeout" }
func litOK() Response   { return Response{ErrClass: "budget"} }
func cmpOK(r *Response) bool {
	return r.ErrClass == "overloaded" || r.ErrClass != "canceled"
}
func recOK() QueryRecord { return QueryRecord{ErrClass: ""} }

func switchOK(r *Response) int {
	switch r.ErrClass {
	case "", "usage":
		return 0
	case "panic", "error":
		return 2
	default:
		return 1
	}
}

// Off-vocabulary literals: each one is a silent contract break for
// clients dispatching on the string.
func setBad(r *Response) {
	r.ErrClass = "time-out" // want "errclass: \"time-out\" is not a canonical error class"
}

func litBad() Response {
	return Response{ErrClass: "oom"} // want "errclass: \"oom\" is not a canonical error class"
}

func cmpBad(r *Response) bool {
	return r.ErrClass == "overload" // want "errclass: \"overload\" is not a canonical error class"
}

func switchBad(r *Response) int {
	switch r.ErrClass {
	case "timeout":
		return 1
	case "dead": // want "errclass: \"dead\" is not a canonical error class"
		return 2
	}
	return 0
}

// errClass mirrors the server's classifier: its returns are on the
// wire.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, errTooBig):
		return "budget"
	default:
		return "failure" // want "errclass: \"failure\" is not a canonical error class"
	}
}

var errTooBig = errors.New("too big")
