// Package supbad holds every way a suppression can be wrong: a missing
// reason (the violation it meant to cover must still be reported, plus
// a malformed-suppression diagnostic), an unknown analyzer name, and a
// well-formed suppression covering nothing. lint_test.go asserts the
// exact diagnostics — want comments cannot sit on directive lines, so
// this fixture is checked directly rather than through the runner.
package supbad

import "context"

type Operator interface {
	Next() (int, bool, error)
}

// missingReason: the ignore has no written reason, so it suppresses
// nothing and is itself reported.
func missingReason(ctx context.Context, op Operator) int {
	_ = ctx
	n := 0
	//tplint:ignore ctxcheck
	for {
		_, ok, _ := op.Next()
		if !ok {
			return n
		}
		n++
	}
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer(ctx context.Context, op Operator) int {
	_ = ctx
	n := 0
	//tplint:ignore nosuchanalyzer the loop below is fine
	for {
		_, ok, _ := op.Next()
		if !ok {
			return n
		}
		n++
	}
}

// unusedSuppression is well-formed but the loop below it violates
// nothing: stale ignores must not accumulate.
func unusedSuppression(ctx context.Context, xs []int) int {
	s := 0
	if err := ctx.Err(); err != nil {
		return 0
	}
	//tplint:ignore ctxcheck this loop does not even drain anything
	for _, x := range xs {
		s += x
	}
	return s
}
