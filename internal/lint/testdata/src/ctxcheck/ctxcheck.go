// Package ctxfix exercises the ctxcheck analyzer. It is loaded under
// the import path fixture/internal/engine/ctxfix so the execution-scope
// regexp applies; the same shapes under a non-matching path must stay
// silent (see the ctxscope fixture).
package ctxfix

import "context"

type Tuple struct{ Prob float64 }

type Relation struct{ Tuples []Tuple }

type Operator interface {
	Next() (Tuple, bool, error)
}

// Gauge mirrors mem.Gauge: Charge is a budget checkpoint.
type Gauge struct{ used int64 }

func (g *Gauge) Charge(n int64) error {
	g.used += n
	return nil
}

// drainNoCheckpoint pulls tuples forever without ever observing the
// context it was handed — the PR 3 contract violation.
func drainNoCheckpoint(ctx context.Context, op Operator) (n int, err error) {
	_ = ctx
	for { // want "ctxcheck: drain loop has no cancellation checkpoint"
		_, ok, err := op.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// rangeNoCheckpoint scans relation tuples with a context in scope and
// no checkpoint.
func rangeNoCheckpoint(ctx context.Context, rel *Relation) float64 {
	_ = ctx
	s := 0.0
	for _, t := range rel.Tuples { // want "ctxcheck: drain loop has no cancellation checkpoint"
		s += t.Prob
	}
	return s
}

// drainWithErrCheck checkpoints via ctx.Err every iteration: conforming.
func drainWithErrCheck(ctx context.Context, op Operator) (n int, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		_, ok, err := op.Next()
		if err != nil || !ok {
			return n, err
		}
		n++
	}
}

// drainWithGauge checkpoints through the budget gauge: conforming.
func drainWithGauge(g *Gauge, ctx context.Context, op Operator) (n int, err error) {
	_ = ctx
	for {
		_, ok, err := op.Next()
		if err != nil || !ok {
			return n, err
		}
		if err := g.Charge(1); err != nil {
			return n, err
		}
		n++
	}
}

// drainPassingCtx threads the context into a callee: conforming — the
// callee owns the checkpoint.
func drainPassingCtx(ctx context.Context, op Operator, step func(context.Context) error) (n int, err error) {
	for {
		_, ok, err := op.Next()
		if err != nil || !ok {
			return n, err
		}
		if err := step(ctx); err != nil {
			return n, err
		}
		n++
	}
}

// drainNoCtxInScope has no context anywhere: the contract binds only
// functions the context was threaded into.
func drainNoCtxInScope(op Operator) (n int) {
	for {
		_, ok, _ := op.Next()
		if !ok {
			return n
		}
		n++
	}
}

// BatchSource mirrors core.BatchIterator: one NextBatch call moves a
// whole batch between stages.
type BatchSource interface {
	NextBatch(buf []Tuple) int
}

// batchTailNoCheckpoint is the batched probability tail's shape minus
// its checkpoint: batches are pulled and processed in a loop that never
// observes the context — one giant tail runs to completion under a
// cancelled query.
func batchTailNoCheckpoint(ctx context.Context, src BatchSource, buf []Tuple) (n int) {
	_ = ctx
	for { // want "ctxcheck: drain loop has no cancellation checkpoint"
		k := src.NextBatch(buf)
		if k == 0 {
			return n
		}
		n += k
	}
}

// batchTailPerBatchErr checkpoints once per batch, not per tuple — the
// conforming batched-tail idiom (the checkpoint cost amortizes over the
// whole batch).
func batchTailPerBatchErr(ctx context.Context, src BatchSource, buf []Tuple) (n int, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		k := src.NextBatch(buf)
		if k == 0 {
			return n, nil
		}
		n += k
	}
}

// nonDrainLoop has a context in scope but pulls nothing: not a drain.
func nonDrainLoop(ctx context.Context, xs []int) int {
	_ = ctx
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
