// Package poolfix exercises the poolhygiene analyzer: a sync.Pool with
// getter/putter wrappers in the repo's idiom (core.batchPool,
// align.alignerPool), conforming release shapes, and every escape and
// leak the analyzer must catch.
package poolfix

import (
	"errors"
	"sync"
)

type buffer struct{ data []byte }

var bufPool = sync.Pool{New: func() any { return new(buffer) }}

// getBuf is a getter wrapper: returning the checked-out value hands the
// release obligation to the caller.
func getBuf() *buffer { return bufPool.Get().(*buffer) }

func putBuf(b *buffer) {
	b.data = b.data[:0]
	bufPool.Put(b)
}

// okDefer releases through the canonical defer.
func okDefer() int {
	b := getBuf()
	defer putBuf(b)
	return len(b.data)
}

// okDominatingPut releases with a plain Put that dominates the only
// return.
func okDominatingPut() int {
	b := getBuf()
	n := len(b.data)
	putBuf(b)
	return n
}

// okCheckout is itself a getter wrapper (returns the pooled value).
func okCheckout() *buffer {
	b := getBuf()
	b.data = b.data[:0]
	return b
}

// stream owns its buffer: Close is its release path, so handing a
// pooled buffer into stream.buf is a handoff, not an escape.
type stream struct{ buf *buffer }

func (s *stream) Close() {
	if s.buf != nil {
		putBuf(s.buf)
		s.buf = nil
	}
}

func newStream() *stream {
	s := &stream{}
	s.buf = getBuf()
	return s
}

// leak drops the buffer on the floor.
func leak() int {
	b := getBuf() // want "poolhygiene: value checked out of bufPool is never released"
	return len(b.data)
}

// leakOnError releases on the happy path but not on the error return —
// the early-exit leak the analyzer exists for.
func leakOnError(fail bool) error {
	b := getBuf()
	if fail {
		return errors.New("boom") // want "poolhygiene: return without releasing the value checked out of bufPool"
	}
	putBuf(b)
	return nil
}

// discard can never release what it checked out.
func discard() {
	_ = bufPool.Get() // want "poolhygiene: value checked out of bufPool is discarded"
}

var retained []*buffer

// escapeAppend retains the pooled value in a package-level slice: the
// pool may hand the same buffer to another query while it is live.
func escapeAppend() {
	b := getBuf()                  // want "poolhygiene: value checked out of bufPool is never released"
	retained = append(retained, b) // want "poolhygiene: pooled value from bufPool escapes via append"
}

// holder has no release method: storing a pooled value in it strands
// the buffer.
type holder struct{ b *buffer }

func escapeField(h *holder) {
	h.b = getBuf() // want "poolhygiene: value checked out of bufPool is stored in a type with no release path"
}

func escapeChan(ch chan *buffer) {
	b := getBuf() // want "poolhygiene: value checked out of bufPool is never released"
	ch <- b       // want "poolhygiene: pooled value from bufPool escapes over a channel"
}

// scratch is a sample arena in the Monte Carlo idiom: the release path
// is a method on the pooled type itself, and the getter resizes the
// arena before handing it out.
type scratch struct{ samples []float64 }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.samples) < n {
		sc.samples = make([]float64, n)
	}
	sc.samples = sc.samples[:n]
	return sc
}

func (sc *scratch) release() { scratchPool.Put(sc) }

// okArenaDefer checks a sample arena out and releases it through the
// deferred method.
func okArenaDefer(n int) float64 {
	sc := getScratch(n)
	defer sc.release()
	return sc.samples[0]
}

// leakArenaOnError releases on the happy path but loses the arena on
// the error return.
func leakArenaOnError(n int, fail bool) (float64, error) {
	sc := getScratch(n)
	if fail {
		return 0, errors.New("boom") // want "poolhygiene: return without releasing the value checked out of scratchPool"
	}
	v := sc.samples[0]
	sc.release()
	return v, nil
}
