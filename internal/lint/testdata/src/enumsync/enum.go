// Package enumfix exercises the enumsync analyzer with a miniature of
// engine.Strategy: typed iota members, an untyped NumStrategies
// counter, strategy-indexed arrays and switches over the enum.
package enumfix

type Strategy uint8

const (
	StrategyNJ Strategy = iota
	StrategyTA
	StrategyPNJ
	// NumStrategies counts the members above; untyped, like
	// engine.NumStrategies.
	NumStrategies = iota
)

// name covers every member: conforming.
func name(s Strategy) string {
	switch s {
	case StrategyNJ:
		return "nj"
	case StrategyTA:
		return "ta"
	case StrategyPNJ:
		return "pnj"
	}
	return "?"
}

// pick carries an explicit default — the enum may grow safely. This is
// the shape the bench AUTO-series switch (internal/bench/json.go) was
// fixed into by this PR: a regression here means the fix's idiom stopped
// being accepted.
func pick(s Strategy) bool {
	switch s {
	case StrategyTA:
		return true
	default:
		// every other strategy, current or future, is not TA.
		return false
	}
}

// incomplete misses StrategyPNJ with no default: the silent-fallthrough
// hole enumsync exists for (the pre-fix bench switch shape).
func incomplete(s Strategy) string {
	switch s { // want "enumsync: switch over Strategy is not exhaustive and has no default: missing StrategyPNJ"
	case StrategyNJ:
		return "nj"
	case StrategyTA:
		return "ta"
	}
	return "?"
}

// perStrategyOK takes its size from the counter: adding a member grows
// it automatically.
var perStrategyOK [NumStrategies]int64

func bumpOK(s Strategy) { perStrategyOK[s]++ }

// perStrategyBad is strategy-indexed but literal-sized: a new member
// would index out of range (or worse, silently alias) at runtime.
var perStrategyBad [3]int64 // want "enumsync: array indexed by Strategy is sized with the literal 3"

func bumpBad(s Strategy) { perStrategyBad[s]++ }

// costsBad is keyed by the enum in its composite literal but sized by a
// literal.
var costsBad = [3]float64{StrategyNJ: 1, StrategyTA: 2, StrategyPNJ: 4} // want "enumsync: array indexed by Strategy is sized with the literal 3"

// unrelated is the same length but never touched by a Strategy: out of
// the analyzer's reach.
var unrelated [3]string

func fill() { unrelated[0] = "x" }
