// Package supfix holds a real ctxcheck violation silenced by a
// well-formed suppression: the fixture must produce zero diagnostics —
// the finding is suppressed and the suppression is used (so no
// stale-ignore complaint either).
package supfix

import "context"

type Operator interface {
	Next() (int, bool, error)
}

// drainSuppressed blocks deliberately; the suppression documents why
// that is acceptable here.
func drainSuppressed(ctx context.Context, op Operator) int {
	_ = ctx
	n := 0
	//tplint:ignore ctxcheck fixture demonstrates an accepted, documented violation
	for {
		_, ok, _ := op.Next()
		if !ok {
			return n
		}
		n++
	}
}
