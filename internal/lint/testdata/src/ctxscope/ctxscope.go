// Package ctxscope holds a shape ctxcheck would flag — a drain loop
// with an unobserved context — but is loaded under a non-execution
// import path (fixture/util/ctxscope): the analyzer's scope regexp must
// keep it silent. Utility and tooling packages are allowed to block.
package ctxscope

import "context"

type Operator interface {
	Next() (int, bool, error)
}

func drainOutOfScope(ctx context.Context, op Operator) (n int, err error) {
	_ = ctx
	for {
		_, ok, err := op.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
