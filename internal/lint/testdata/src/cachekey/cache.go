// Package cachefix exercises the cachekey analyzer: relation-derived
// cache entries must snapshot and re-check the (length, Version) pair.
// Relation mirrors tp.Relation's cache-relevant surface.
package cachefix

type Tuple struct{ Key string }

type Relation struct {
	Tuples  []Tuple
	version uint64
}

func (r *Relation) Version() uint64 { return r.version }
func (r *Relation) Len() int        { return len(r.Tuples) }

type entry struct {
	n       int
	version uint64
	cost    float64
}

// lookupOK validates on the full pair: conforming.
func lookupOK(c map[string]*entry, key string, r *Relation) (float64, bool) {
	e, ok := c[key]
	if !ok || e.n != r.Len() || e.version != r.Version() {
		return 0, false
	}
	return e.cost, true
}

// lookupOKTuples uses the len(rel.Tuples) spelling of the length read.
func lookupOKTuples(c map[string]*entry, key string, r *Relation) (float64, bool) {
	e, ok := c[key]
	if !ok || e.n != len(r.Tuples) || e.version != r.Version() {
		return 0, false
	}
	return e.cost, true
}

// snapshotOK stores both halves of the key: conforming.
func snapshotOK(c map[string]*entry, key string, r *Relation, cost float64) {
	c[key] = &entry{n: r.Len(), version: r.Version(), cost: cost}
}

// lookupStale validates on length alone — the PR 8 stale-plan bug: an
// equal-length mutation (sort, in-place update) passes this check.
func lookupStale(c map[string]*entry, key string, r *Relation) (float64, bool) {
	e, ok := c[key]
	if !ok || e.n != r.Len() { // want "cachekey: relation length compared against cached state without checking Version"
		return 0, false
	}
	return e.cost, true
}

// snapshotHalf records Version with no companion length read.
func snapshotHalf(c map[string]*entry, key string, r *Relation) {
	c[key] = &entry{version: r.Version()} // want "cachekey: Version.. read without a companion length read"
}

// emptiness and relative-size checks are not staleness checks:
// conforming.
func isEmpty(r *Relation) bool      { return r.Len() == 0 }
func sameSize(r, s *Relation) bool  { return r.Len() == s.Len() }
func tinyInput(r *Relation) bool    { return len(r.Tuples) == smallRelation }
func halfOf(r *Relation, n int) int { return n / max(r.Len(), 1) }

const smallRelation = 64
