package lint

import "testing"

func TestCtxCheckFixture(t *testing.T) {
	testFixture(t, []*Analyzer{CtxCheck}, "ctxcheck", "fixture/internal/engine/ctxfix")
}

// TestCtxCheckOutOfScope loads a drain-loop violation under a
// non-execution import path: the scope regexp must keep utility and
// tooling packages out of the contract.
func TestCtxCheckOutOfScope(t *testing.T) {
	testFixture(t, []*Analyzer{CtxCheck}, "ctxscope", "fixture/util/ctxscope")
}
