package lint

import (
	"go/ast"
)

// parentMap records each node's syntactic parent within one subtree.
type parentMap map[ast.Node]ast.Node

func buildParents(root ast.Node) parentMap {
	pm := parentMap{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// enclosingStmt returns the innermost statement containing n (or n
// itself when n is a statement).
func (pm parentMap) enclosingStmt(n ast.Node) ast.Stmt {
	for n != nil {
		if s, ok := n.(ast.Stmt); ok {
			return s
		}
		n = pm[n]
	}
	return nil
}

// blockStep is one hop of a statement path: the statement list the node
// sits in (identified by the slice's owning node) and its index there.
type blockStep struct {
	owner ast.Node // *ast.BlockStmt, *ast.CaseClause or *ast.CommClause
	index int
}

// stmtPaths maps every statement in a function body to its chain of
// (statement list, index) hops from the body downward. Used for the
// syntactic-dominance approximation: a release at path P covers a return
// at path R when P's final hop lands in a block on R's chain at an
// earlier index — i.e. the release ran on every straight-line route to
// that return.
func stmtPaths(body *ast.BlockStmt) map[ast.Stmt][]blockStep {
	paths := make(map[ast.Stmt][]blockStep)
	var walkList func(owner ast.Node, list []ast.Stmt, prefix []blockStep)
	var walkStmt func(s ast.Stmt, path []blockStep)

	walkList = func(owner ast.Node, list []ast.Stmt, prefix []blockStep) {
		for i, s := range list {
			step := append(append([]blockStep(nil), prefix...), blockStep{owner, i})
			walkStmt(s, step)
		}
	}
	walkStmt = func(s ast.Stmt, path []blockStep) {
		paths[s] = path
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s, s.List, path)
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init, path)
			}
			walkStmt(s.Body, path)
			if s.Else != nil {
				walkStmt(s.Else, path)
			}
		case *ast.ForStmt:
			walkStmt(s.Body, path)
		case *ast.RangeStmt:
			walkStmt(s.Body, path)
		case *ast.SwitchStmt:
			walkStmt(s.Body, path)
		case *ast.TypeSwitchStmt:
			walkStmt(s.Body, path)
		case *ast.SelectStmt:
			walkStmt(s.Body, path)
		case *ast.CaseClause:
			walkList(s, s.Body, path)
		case *ast.CommClause:
			walkList(s, s.Body, path)
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, path)
		}
	}
	walkList(body, body.List, nil)
	return paths
}

// dominates reports whether a statement at relPath runs before — on
// every straight-line path — a statement at retPath: its last hop's
// statement list appears on retPath's chain at a strictly earlier index,
// and every hop above it matches.
func dominates(relPath, retPath []blockStep) bool {
	if len(relPath) == 0 || len(relPath) > len(retPath) {
		return false
	}
	for i := 0; i < len(relPath)-1; i++ {
		if relPath[i] != retPath[i] {
			return false
		}
	}
	last := relPath[len(relPath)-1]
	at := retPath[len(relPath)-1]
	return last.owner == at.owner && last.index < at.index
}
