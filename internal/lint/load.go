package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages for analysis. One Loader shares
// a FileSet and an importer across every package it loads, so dependency
// type-checking (done from source — the toolchain image carries no
// export data for x/tools-style loaders) is paid once per dependency,
// not once per target package.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader resolving imports from source relative to
// the current directory's module.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Load resolves patterns with `go list` and type-checks every matched
// package (non-test Go files; the analyzers encode production-code
// contracts and test files routinely violate them on purpose).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := l.check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the non-test .go files of one
// directory under the given import path. Used by the analysistest-style
// fixture runner, whose testdata directories `go list` does not see.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := l.check(importPath, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// check parses files and type-checks them as one package.
func (l *Loader) check(importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
