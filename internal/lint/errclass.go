package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"sort"
	"strings"
)

// CanonicalErrClasses is the wire error-class vocabulary established by
// PR 6 (query log err_class) and PR 7 (admission "overloaded", budget
// "budget"): every value that reaches Response.ErrClass,
// QueryRecord.ErrClass or ServerError.ErrClass must come from this set
// (or be empty, meaning success). Clients key retry behavior off these
// strings (client.IsOverloaded → backoff-and-resend), dashboards key
// alerts off them; a misspelled class silently breaks both.
//
// The authoritative constants live in internal/server/proto.go
// (ErrClassOverloaded etc.); TestErrClassVocabularySync pins this list to
// them so the analyzer and the wire cannot drift.
var CanonicalErrClasses = []string{
	"", "overloaded", "budget", "timeout", "canceled", "usage", "panic", "error",
}

// ErrClass enforces the error-class vocabulary on every syntactic
// channel a class string can travel: assignments and composite-literal
// values for fields named ErrClass, comparisons and switch cases against
// such fields, and return values of errClass-named classifier functions.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "wire error-class strings must come from the canonical vocabulary\n\n" +
		"Values assigned to or compared with ErrClass fields, and returns of\n" +
		"errClass classifier functions, must be members of the canonical set\n" +
		"(see internal/server/proto.go). Clients and dashboards dispatch on\n" +
		"these strings; an off-vocabulary literal is a silent contract break.",
	Run: runErrClass,
}

func errClassOK(s string) bool {
	for _, c := range CanonicalErrClasses {
		if s == c {
			return true
		}
	}
	return false
}

func canonicalList() string {
	var quoted []string
	for _, c := range CanonicalErrClasses {
		if c != "" {
			quoted = append(quoted, `"`+c+`"`)
		}
	}
	sort.Strings(quoted)
	return strings.Join(quoted, ", ")
}

// constString returns the compile-time string value of e, if any.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrClassSel matches a selector for a field named ErrClass.
func isErrClassSel(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "ErrClass"
}

func checkValue(pass *Pass, e ast.Expr, context string) {
	if s, ok := constString(pass, e); ok && !errClassOK(s) {
		pass.Reportf(e.Pos(), "%q is not a canonical error class %s — use one of %s (internal/server/proto.go)",
			s, context, canonicalList())
	}
}

func runErrClass(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if isErrClassSel(lhs) && i < len(n.Rhs) {
					checkValue(pass, n.Rhs[i], "assigned to an ErrClass field")
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && key.Name == "ErrClass" {
				checkValue(pass, n.Value, "assigned to an ErrClass field")
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if isErrClassSel(n.X) {
				checkValue(pass, n.Y, "compared with an ErrClass field")
			}
			if isErrClassSel(n.Y) {
				checkValue(pass, n.X, "compared with an ErrClass field")
			}
		case *ast.SwitchStmt:
			if n.Tag == nil || !isErrClassSel(n.Tag) {
				return true
			}
			for _, stmt := range n.Body.List {
				if clause, ok := stmt.(*ast.CaseClause); ok {
					for _, e := range clause.List {
						checkValue(pass, e, "in a switch over an ErrClass field")
					}
				}
			}
		case *ast.FuncDecl:
			if n.Body == nil || !strings.EqualFold(n.Name.Name, "errClass") {
				return true
			}
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if ret, ok := inner.(*ast.ReturnStmt); ok {
					for _, res := range ret.Results {
						checkValue(pass, res, "returned by an error classifier")
					}
				}
				return true
			})
		}
		return true
	})
	return nil
}
