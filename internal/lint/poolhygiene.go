package lint

import (
	"go/ast"
	"go/types"
)

// PoolHygiene enforces the pooled-buffer contract established by PR 2
// (batch-buffer pool) and PR 5 (aligner arena pool): every value taken
// from a sync.Pool — directly or through a getter wrapper like
// getBatchBuf/newIndexedAligner — must have a release path back to the
// same pool. Acceptable shapes, matching the repo's idiom:
//
//   - the acquiring function defers the matching Put (defer putBatchBuf(buf),
//     defer al.release());
//   - the value is handed off into a field of a type that owns a release
//     method for the pool (j.buf = getBatchBuf(): the stream's own
//     Close/exhaustion path puts it back);
//   - the acquiring function returns the value, making it a getter
//     wrapper whose callers carry the obligation;
//   - a non-deferred Put that syntactically dominates every later return
//     (put before the final return, no early return in between).
//
// Everything else — a dropped Get result, an early error return that
// skips the Put, a pooled value stored into a map/slice/chan or a
// non-owning struct — leaks the buffer or, worse, lets two queries share
// one buffer after a double-checkout.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc: "sync.Pool values must be released on every path and must not escape\n\n" +
		"Pool.Get results (including via getter wrappers) need a deferred Put,\n" +
		"a handoff to a type that releases them, a dominating Put before every\n" +
		"return, or to be returned to the caller. Storing pooled values into\n" +
		"non-owning structures is an escape.",
	Run: runPoolHygiene,
}

// poolFacts is the per-package classification the checker runs against.
type poolFacts struct {
	pools map[types.Object]bool // package-level sync.Pool vars
	// getters maps a function object to the pool its return value is
	// checked out of; putters maps a function object to the pool it
	// releases to. Both are transitive (a wrapper of a getter is a
	// getter).
	getters map[*types.Func]types.Object
	putters map[*types.Func]types.Object
	// putterNames maps putter *method names* to their pool: calls through
	// an interface (al.release() on the aligner interface) resolve to the
	// interface's method object, not the concrete putter, so they are
	// matched by name.
	putterNames map[string]types.Object
	// releasers maps a named type to the pool some method of it puts to:
	// assigning a pooled value into a field of such a type is a handoff,
	// not an escape.
	releasers map[*types.TypeName]types.Object
}

func runPoolHygiene(pass *Pass) error {
	facts := collectPoolFacts(pass)
	if len(facts.pools) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolUse(pass, facts, fd)
		}
	}
	return nil
}

// collectPoolFacts finds the package's pools and computes the
// getter/putter/releaser closure.
func collectPoolFacts(pass *Pass) *poolFacts {
	facts := &poolFacts{
		pools:       make(map[types.Object]bool),
		getters:     make(map[*types.Func]types.Object),
		putters:     make(map[*types.Func]types.Object),
		putterNames: make(map[string]types.Object),
		releasers:   make(map[*types.TypeName]types.Object),
	}
	// Package-level sync.Pool variables.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if v, ok := scope.Lookup(name).(*types.Var); ok && isSyncPool(v.Type()) {
			facts.pools[v] = true
		}
	}
	if len(facts.pools) == 0 {
		return facts
	}

	// Seed: functions that call P.Put directly are putters; functions
	// that return a value derived from P.Get are getters. Then iterate:
	// callers of putters are putters, return-forwarders of getters are
	// getters — until fixed point (two passes suffice for any sane depth,
	// but loop to be safe).
	decls := packageFuncDecls(pass)
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if _, done := facts.putters[fn]; !done {
				if p := directPutPool(pass, facts, fd); p != nil {
					facts.putters[fn] = p
					changed = true
				}
			}
			if _, done := facts.getters[fn]; !done {
				if p := returnedPoolValue(pass, facts, fd); p != nil {
					facts.getters[fn] = p
					changed = true
				}
			}
		}
	}
	for fn, pool := range facts.putters {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if tn := namedTypeName(recv.Type()); tn != nil {
				facts.releasers[tn] = pool
			}
			facts.putterNames[fn.Name()] = pool
		}
	}
	return facts
}

func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t != nil && t.String() == "sync.Pool"
}

func namedTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// packageFuncDecls maps each function object to its declaration.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	return decls
}

// calleeFunc resolves a call's target to a function object, if static.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// poolOfGetCall returns the pool a call checks a value out of: P.Get()
// on a known pool, or a call to a known getter. nil otherwise.
func poolOfGetCall(pass *Pass, facts *poolFacts, call *ast.CallExpr) types.Object {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && facts.pools[obj] {
				return obj
			}
		}
	}
	if fn := calleeFunc(pass, call); fn != nil {
		if p, ok := facts.getters[fn]; ok {
			return p
		}
	}
	return nil
}

// poolOfPutCall returns the pool a call releases to (P.Put or a putter).
func poolOfPutCall(pass *Pass, facts *poolFacts, call *ast.CallExpr) types.Object {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && facts.pools[obj] {
				return obj
			}
		}
	}
	if fn := calleeFunc(pass, call); fn != nil {
		if p, ok := facts.putters[fn]; ok {
			return p
		}
		// Interface dispatch: a release method invoked through an
		// interface resolves to the interface's method object; match it to
		// the concrete putters by name.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				if p, ok := facts.putterNames[fn.Name()]; ok {
					return p
				}
			}
		}
	}
	return nil
}

// directPutPool reports the pool fd releases to, if any.
func directPutPool(pass *Pass, facts *poolFacts, fd *ast.FuncDecl) types.Object {
	var pool types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pool != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if p := poolOfPutCall(pass, facts, call); p != nil {
				pool = p
			}
		}
		return true
	})
	return pool
}

// returnedPoolValue reports the pool whose checked-out value fd returns,
// if any: `return P.Get().(T)`, `return getter(...)`, or returning a
// local bound to either.
func returnedPoolValue(pass *Pass, facts *poolFacts, fd *ast.FuncDecl) types.Object {
	pooledVars := pooledLocals(pass, facts, fd)
	var pool types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pool != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if p := poolOfExpr(pass, facts, pooledVars, res); p != nil {
				pool = p
			}
		}
		return true
	})
	return pool
}

// pooledLocals maps local variables to the pool their value came from
// (x := P.Get().(T), x := getter()).
func pooledLocals(pass *Pass, facts *poolFacts, fd *ast.FuncDecl) map[types.Object]types.Object {
	vars := make(map[types.Object]types.Object)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			p := poolOfExpr(pass, facts, vars, rhs)
			if p == nil {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.ObjectOf(id); obj != nil {
					vars[obj] = p
				}
			}
		}
		return true
	})
	return vars
}

// poolOfExpr resolves the pool an expression's value was checked out of:
// an acquisition call (possibly behind a type assertion) or a tracked
// local.
func poolOfExpr(pass *Pass, facts *poolFacts, vars map[types.Object]types.Object, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.CallExpr:
		return poolOfGetCall(pass, facts, e)
	case *ast.TypeAssertExpr:
		return poolOfExpr(pass, facts, vars, e.X)
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil {
			return vars[obj]
		}
	}
	return nil
}

// checkPoolUse verifies one function's acquisitions.
func checkPoolUse(pass *Pass, facts *poolFacts, fd *ast.FuncDecl) {
	parents := buildParents(fd)
	paths := stmtPaths(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pool := poolOfGetCall(pass, facts, call)
		if pool == nil {
			return true
		}
		// Climb through a type assertion to the acquisition's real
		// consumer.
		var node ast.Node = call
		parent := parents[node]
		if pa, ok := parent.(*ast.TypeAssertExpr); ok {
			node, parent = pa, parents[pa]
		}
		switch p := parent.(type) {
		case *ast.ReturnStmt:
			// Getter wrapper: the caller owns the value now.
			return true
		case *ast.AssignStmt:
			lhs := assignTargetFor(p, node)
			switch lhs := lhs.(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(), "value checked out of %s is discarded — it can never be released", pool.Name())
					return true
				}
				obj := pass.ObjectOf(lhs)
				if obj == nil {
					return true
				}
				checkLocalRelease(pass, facts, fd, parents, paths, call, obj, pool)
			case *ast.SelectorExpr:
				// Field handoff: the owning type must release to the pool.
				if tn := namedTypeName(pass.TypeOf(lhs.X)); tn == nil || facts.releasers[tn] != pool {
					pass.Reportf(call.Pos(), "value checked out of %s is stored in a type with no release path back to the pool", pool.Name())
				}
			default:
				pass.Reportf(call.Pos(), "value checked out of %s escapes into a container — pooled buffers must stay function- or struct-owned", pool.Name())
			}
		default:
			pass.Reportf(call.Pos(), "result of checking out of %s is not bound to a variable, returned or handed off — it can never be released", pool.Name())
		}
		return true
	})
}

// assignTargetFor returns the LHS expression matching rhs in as.
func assignTargetFor(as *ast.AssignStmt, rhs ast.Node) ast.Expr {
	for i, r := range as.Rhs {
		if r == rhs && i < len(as.Lhs) {
			return as.Lhs[i]
		}
	}
	if len(as.Lhs) == 1 {
		return as.Lhs[0]
	}
	return nil
}

// checkLocalRelease verifies that local variable obj, checked out of
// pool at acq, is released on every path: deferred put, handoff into a
// releaser type, returned to the caller, or a dominating put before each
// later return. It also flags escapes into containers.
func checkLocalRelease(pass *Pass, facts *poolFacts, fd *ast.FuncDecl, parents parentMap,
	paths map[ast.Stmt][]blockStep, acq *ast.CallExpr, obj types.Object, pool types.Object) {

	usesObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.Info.Uses[id] == obj
	}
	var deferred, handedOff, returned bool
	var releasePaths [][]blockStep

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if poolOfPutCall(pass, facts, n.Call) == pool && callReferences(pass, n.Call, obj) {
				deferred = true
			}
		case *ast.CallExpr:
			if poolOfPutCall(pass, facts, n) == pool && callReferences(pass, n, obj) {
				if _, isDefer := parents[n].(*ast.DeferStmt); !isDefer {
					if s := parents.enclosingStmt(n); s != nil {
						releasePaths = append(releasePaths, paths[s])
					}
				}
			}
			// Escape: pooled value appended into a slice.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range n.Args[1:] {
					if usesObj(arg) {
						pass.Reportf(arg.Pos(), "pooled value from %s escapes via append — the pool may hand it to another query while it is still referenced", pool.Name())
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObj(res) {
					returned = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !usesObj(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					if tn := namedTypeName(pass.TypeOf(lhs.X)); tn != nil && facts.releasers[tn] == pool {
						handedOff = true
					} else {
						pass.Reportf(rhs.Pos(), "pooled value from %s is stored in a type with no release path back to the pool", pool.Name())
					}
				case *ast.IndexExpr:
					pass.Reportf(rhs.Pos(), "pooled value from %s escapes into an indexed container", pool.Name())
				}
			}
		case *ast.SendStmt:
			if usesObj(n.Value) {
				pass.Reportf(n.Value.Pos(), "pooled value from %s escapes over a channel", pool.Name())
			}
		}
		return true
	})

	if deferred || handedOff || returned {
		return
	}
	if len(releasePaths) == 0 {
		pass.Reportf(acq.Pos(), "value checked out of %s is never released (no Put, no defer, no handoff, not returned)", pool.Name())
		return
	}
	// Non-deferred release: every return after the acquisition must be
	// dominated by one. The end of a function falling off the final brace
	// counts as a return point.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() < acq.Pos() {
			return true
		}
		retPath := paths[ret]
		covered := false
		for _, rp := range releasePaths {
			if dominates(rp, retPath) {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(ret.Pos(), "return without releasing the value checked out of %s at %s (add a defer, or Put before this return)",
				pool.Name(), pass.Fset.Position(acq.Pos()))
		}
		return true
	})
	// Falling off the end of the body: covered when some release sits at
	// the body's top level after the acquisition.
	if !terminatesWithReturn(fd.Body) {
		endPath := []blockStep{{fd.Body, len(fd.Body.List)}}
		covered := false
		for _, rp := range releasePaths {
			if dominates(rp, endPath) {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(fd.Body.Rbrace, "function ends without releasing the value checked out of %s at %s",
				pool.Name(), pass.Fset.Position(acq.Pos()))
		}
	}
}

// callReferences reports whether the call mentions obj as an argument or
// as its receiver (al.release()).
func callReferences(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// terminatesWithReturn reports whether the block's last statement is a
// return or a panic-like terminator.
func terminatesWithReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		// `for { ... }` with no condition never falls through.
		return last.Cond == nil
	}
	return false
}
