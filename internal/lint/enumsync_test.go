package lint

import "testing"

func TestEnumSyncFixture(t *testing.T) {
	testFixture(t, []*Analyzer{EnumSync}, "enumsync", "fixture/enumsync")
}
