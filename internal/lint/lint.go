// Package lint is tplint's analysis framework: a vet-style static
// checker that mechanically enforces the engine's hand-maintained
// invariants — cancellation checkpoints in drain loops (ctxcheck),
// pooled-buffer hygiene (poolhygiene), (length, Version) cache validity
// (cachekey), strategy-enum/array synchronization (enumsync) and the
// wire error-class vocabulary (errclass).
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can be ported to the upstream framework
// mechanically, but it is built entirely on the standard library
// (go/ast, go/types, go/importer): this repo vendors nothing and the
// checker must build from a bare toolchain. cmd/tplint is the driver; it
// runs standalone over package patterns and also speaks the go vet
// -vettool unitchecker protocol.
//
// # Suppressions
//
// A finding is suppressed by a comment on the flagged line or the line
// directly above it:
//
//	//tplint:ignore <analyzer> <reason>
//
// The reason is mandatory — a suppression without one is itself a
// diagnostic — so every accepted violation documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer for the fields this suite
// needs.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tplint:ignore comments. It must be a valid identifier.
	Name string
	// Doc states the enforced invariant: first line is a summary, the
	// rest elaborates (which PR established the contract, what a
	// violation costs at runtime).
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.Info.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers is the full tplint suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CtxCheck, PoolHygiene, CacheKey, EnumSync, ErrClass}
}

// ignoreRe matches the suppression comment syntax. The analyzer name and
// reason groups are validated separately so a malformed suppression gets
// a precise complaint instead of silently not suppressing.
var ignoreRe = regexp.MustCompile(`//\s*tplint:ignore(?:\s+(\S+))?\s*(.*)`)

// suppression is one parsed //tplint:ignore comment.
type suppression struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// collectSuppressions parses every //tplint:ignore comment in files.
// Malformed suppressions (missing analyzer name or empty reason) are
// reported as diagnostics of the pseudo-analyzer "tplint".
func collectSuppressions(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) []*suppression {
	var sups []*suppression
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Like all Go directives, the suppression must start the
				// comment ("//tplint:ignore ..."): mentions inside prose —
				// docs quoting the syntax — are not directives.
				if !strings.HasPrefix(c.Text, "//tplint:ignore") {
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				name, reason := m[1], strings.TrimSpace(m[2])
				switch {
				case name == "" || !known[name]:
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "tplint",
						Message: fmt.Sprintf("tplint:ignore needs a known analyzer name (one of %s)", analyzerNames())})
				case reason == "":
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "tplint",
						Message: fmt.Sprintf("tplint:ignore %s needs a written reason", name)})
				default:
					sups = append(sups, &suppression{file: pos.Filename, line: pos.Line,
						analyzer: name, reason: reason, pos: c.Pos()})
				}
			}
		}
	}
	return sups
}

func analyzerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// applySuppressions drops diagnostics covered by a suppression on the
// same line or the line directly above, and reports suppressions that
// cover nothing (stale ignores must not accumulate).
func applySuppressions(diags []Diagnostic, sups []*suppression) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.analyzer == d.Analyzer && s.file == d.Pos.Filename &&
				(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// RunAnalyzers applies analyzers to pkgs and returns the surviving
// diagnostics sorted by position. Suppression comments are honored per
// package; unused and malformed suppressions are themselves reported.
//
// Test sources (*_test.go) are excluded here, at the single choke point
// both drivers share: the suite encodes production contracts, and test
// code legitimately uses shapes the analyzers reject (length-only
// assertions on generated relations, un-pooled scratch buffers, loops
// with no query context). The standalone loader never parses test
// files; the go vet protocol hands them to us in test-variant package
// units, and this filter keeps the two modes in agreement.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		files := make([]*ast.File, 0, len(pkg.Files))
		for _, f := range pkg.Files {
			if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				files = append(files, f)
			}
		}
		var diags []Diagnostic
		sups := collectSuppressions(pkg.Fset, files, &diags)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Files: files,
				Pkg: pkg.Types, Info: pkg.Info, diags: &diags}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{Analyzer: a.Name,
					Message: fmt.Sprintf("internal error: %v", err)})
			}
		}
		diags = applySuppressions(diags, sups)
		ran := make(map[string]bool)
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, s := range sups {
			// A suppression is "unused" only when its analyzer actually ran
			// this invocation — running a single analyzer must not condemn
			// the others' suppressions.
			if !s.used && ran[s.analyzer] {
				diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(s.pos), Analyzer: "tplint",
					Message: fmt.Sprintf("tplint:ignore %s suppresses nothing on this or the next line", s.analyzer)})
			}
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all
}
