package agg

import (
	"math"
	"math/rand"
	"testing"

	"tpjoin/internal/core"
	"tpjoin/internal/interval"
	"tpjoin/internal/tp"
)

func paperB() *tp.Relation {
	b := tp.NewRelation("b", "Hotel", "Loc")
	b.Append(tp.Strings("hotel3", "SOR"), interval.New(1, 4), 0.9)
	b.Append(tp.Strings("hotel2", "ZAK"), interval.New(5, 8), 0.6)
	b.Append(tp.Strings("hotel1", "ZAK"), interval.New(4, 6), 0.7)
	return b
}

func approx(t *testing.T, got, want float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s: got %g, want %g", msg, got, want)
	}
}

func TestExpectedCountPaperExample(t *testing.T) {
	s := ExpectedCount(paperB())
	// Elementary intervals: [1,4) b1; [4,5) b3; [5,6) b3+b2; [6,8) b2.
	if len(s) != 4 {
		t.Fatalf("series has %d points, want 4: %v", len(s), s)
	}
	approx(t, s[0].Expected, 0.9, "[1,4)")
	approx(t, s[1].Expected, 0.7, "[4,5)")
	approx(t, s[2].Expected, 1.3, "[5,6)")
	approx(t, s[3].Expected, 0.6, "[6,8)")
	if s[2].N != 2 || !s[2].T.Equal(interval.New(5, 6)) {
		t.Errorf("point 2 wrong: %+v", s[2])
	}
}

func TestCountDistributionPaperExample(t *testing.T) {
	s := CountDistribution(paperB())
	// Over [5,6): hotels with p 0.7 and 0.6 → P(0)=0.12 P(1)=0.46 P(2)=0.42.
	pt := s[2]
	if pt.Dist == nil {
		t.Fatalf("distribution missing for independent base tuples")
	}
	approx(t, pt.Dist[0], 0.12, "P(0)")
	approx(t, pt.Dist[1], 0.46, "P(1)")
	approx(t, pt.Dist[2], 0.42, "P(2)")
	approx(t, pt.AtLeast(1), 0.88, "P(≥1)")
	approx(t, pt.AtLeast(0), 1.0, "P(≥0)")
	// Expectation must match the distribution's mean.
	mean := 0.0
	for k, p := range pt.Dist {
		mean += float64(k) * p
	}
	approx(t, pt.Expected, mean, "expectation vs distribution mean")
}

func TestDependentLineagesNoDistribution(t *testing.T) {
	// A derived relation whose tuples share base events: the distribution
	// must be reported absent, not wrong.
	a := tp.NewRelation("a", "Name", "Loc")
	a.Append(tp.Strings("Ann", "ZAK"), interval.New(2, 8), 0.7)
	b := paperB()
	q := core.LeftOuterJoin(a, b, tp.Equi(1, 1))
	s := CountDistribution(q)
	foundAbsent := false
	for _, pt := range s {
		if pt.N >= 2 && pt.Dist == nil {
			foundAbsent = true
		}
	}
	if !foundAbsent {
		t.Errorf("dependent lineages must suppress the distribution: %+v", s)
	}
	// Panic on AtLeast without a distribution.
	defer func() {
		if recover() == nil {
			t.Fatalf("AtLeast on absent distribution must panic")
		}
	}()
	Point{}.AtLeast(1)
}

func TestExpectedSum(t *testing.T) {
	r := tp.NewRelation("r", "Sensor", "Load")
	r.Append(tp.Fact{tp.String_("s1"), tp.Int(100)}, interval.New(0, 4), 0.5)
	r.Append(tp.Fact{tp.String_("s2"), tp.Int(50)}, interval.New(2, 6), 0.8)
	s := ExpectedSum(r, 1)
	// [0,2): 0.5·100 = 50; [2,4): 50 + 0.8·50 = 90; [4,6): 40.
	if len(s) != 3 {
		t.Fatalf("series %v", s)
	}
	approx(t, s[0].Expected, 50, "[0,2)")
	approx(t, s[1].Expected, 90, "[2,4)")
	approx(t, s[2].Expected, 40, "[4,6)")
}

func TestExpectedSumPanicsOnString(t *testing.T) {
	r := tp.NewRelation("r", "K")
	r.Append(tp.Strings("oops"), interval.New(0, 1), 0.5)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on non-numeric sum column")
		}
	}()
	ExpectedSum(r, 0)
}

func TestEmptyRelation(t *testing.T) {
	if s := ExpectedCount(tp.NewRelation("r", "K")); s != nil {
		t.Errorf("empty relation must give nil series")
	}
}

func TestExpectedCountMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := tp.NewRelation("r", "K")
	type span struct{ s, e interval.Time }
	var used []span
	for i := 0; i < 6; i++ {
		st := interval.Time(rng.Intn(10))
		e := st + 1 + interval.Time(rng.Intn(6))
		ok := true
		for _, u := range used {
			if st < u.e && u.s < e {
				ok = false
			}
		}
		if !ok {
			continue
		}
		used = append(used, span{st, e})
		r.Append(tp.Strings("k"), interval.New(st, e), 0.2+0.6*rng.Float64())
	}
	series := CountDistribution(r)
	for _, pt := range series {
		if pt.Dist == nil {
			t.Fatalf("base tuples must be independent")
		}
		// Distribution sums to 1.
		sum := 0.0
		for _, p := range pt.Dist {
			sum += p
		}
		approx(t, sum, 1.0, "distribution normalization")
	}
}

func TestSweepCoversExactlyValidity(t *testing.T) {
	b := paperB()
	s := ExpectedCount(b)
	covered := func(tt interval.Time) bool {
		for _, pt := range s {
			if pt.T.Contains(tt) {
				return true
			}
		}
		return false
	}
	for tt := interval.Time(0); tt < 10; tt++ {
		want := false
		for _, tu := range b.Tuples {
			if tu.T.Contains(tt) {
				want = true
			}
		}
		if covered(tt) != want {
			t.Errorf("coverage mismatch at %d", tt)
		}
	}
}
